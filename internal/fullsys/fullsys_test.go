package fullsys

import (
	"testing"

	"hybridmem/internal/memspec"
	"hybridmem/internal/trace"
	"hybridmem/internal/workload"
)

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Options{InstrPerAccess: -1}).Validate(); err == nil {
		t.Error("negative instr should error")
	}
	if err := (Options{InstrPerAccess: 2, CodeFootprintBytes: 0}).Validate(); err == nil {
		t.Error("instr stream without code footprint should error")
	}
}

// stream builds a CPU-level source of repeated line-aligned accesses.
func stream(addrs []uint64, op trace.Op) trace.Source {
	recs := make([]trace.Record, len(addrs))
	for i, a := range addrs {
		recs[i] = trace.Record{Addr: a, Op: op, GapNS: 10}
	}
	return trace.NewSliceSource(recs)
}

func TestCaptureFiltersRepeatedAccesses(t *testing.T) {
	// 100 accesses to the same line: exactly one memory read escapes.
	addrs := make([]uint64, 100)
	for i := range addrs {
		addrs[i] = 0x4000
	}
	c, err := New(stream(addrs, trace.OpRead), memspec.DefaultMachine(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := trace.Materialize(c, 0)
	if c.Err() != nil {
		t.Fatal(c.Err())
	}
	if len(got) != 1 || got[0].Op != trace.OpRead || got[0].Addr != 0x4000 {
		t.Fatalf("memory traffic = %v, want single read of 0x4000", got)
	}
	if c.CPUAccesses != 100 {
		t.Errorf("consumed %d CPU accesses, want 100", c.CPUAccesses)
	}
}

func TestCaptureGapAccumulatesCPUTime(t *testing.T) {
	// Two accesses to distinct cold lines: each miss carries the gap since
	// the previous memory access (input gap + cache latencies).
	c, err := New(stream([]uint64{0x4000, 0x8000}, trace.OpRead),
		memspec.DefaultMachine(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := trace.Materialize(c, 0)
	if len(got) != 2 {
		t.Fatalf("traffic = %v", got)
	}
	// Gap = input 10ns + L1 latency 1 + LLC latency 10.
	if got[0].GapNS != 21 || got[1].GapNS != 21 {
		t.Errorf("gaps = %d/%d, want 21/21", got[0].GapNS, got[1].GapNS)
	}
}

func TestCaptureEmitsWritebacks(t *testing.T) {
	// Dirty many distinct lines so LLC evictions write back to memory.
	m := memspec.DefaultMachine()
	lines := m.LLC.SizeBytes/m.LLC.LineBytes + 4096
	addrs := make([]uint64, lines)
	for i := range addrs {
		addrs[i] = uint64(i) * 64
	}
	c, err := New(stream(addrs, trace.OpWrite), m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	writes := 0
	for {
		r, ok := c.Next()
		if !ok {
			break
		}
		if r.Op == trace.OpWrite {
			writes++
		}
	}
	if c.Err() != nil {
		t.Fatal(c.Err())
	}
	if writes == 0 {
		t.Error("no writebacks reached memory")
	}
	if err := c.Hierarchy().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCaptureInstructionStreamStaysWarm(t *testing.T) {
	// A code loop within the L1I: after the cold pass the instruction
	// stream adds no memory traffic beyond its footprint.
	addrs := make([]uint64, 2000)
	for i := range addrs {
		addrs[i] = 0x4000 // single hot data line
	}
	opts := Options{InstrPerAccess: 2, CodeFootprintBytes: 8 << 10}
	c, err := New(stream(addrs, trace.OpRead), memspec.DefaultMachine(), opts)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := trace.Materialize(c, 0)
	if c.Err() != nil {
		t.Fatal(c.Err())
	}
	// Expected cold misses: 1 data line + 8KB/64B code lines.
	want := 1 + (8<<10)/64
	if len(got) != want {
		t.Errorf("memory traffic = %d records, want %d (cold code+data only)", len(got), want)
	}
	if ratio := c.Hierarchy().L1I(0).Stats.HitRatio(); ratio < 0.9 {
		t.Errorf("L1I hit ratio = %v, want warm (>0.9)", ratio)
	}
}

func TestCaptureOnWorkloadGenerator(t *testing.T) {
	// End-to-end: a PARSEC-like generator filtered by the hierarchy yields
	// fewer memory accesses than CPU accesses, all invariants hold.
	spec, _ := workload.ByName("bodytrack")
	g, err := workload.NewGenerator(spec, 0.02, 9)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(g, memspec.DefaultMachine(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	st := trace.CollectStats(c, 4096)
	if c.Err() != nil {
		t.Fatal(c.Err())
	}
	if st.Total() == 0 {
		t.Fatal("no memory traffic")
	}
	if st.Total() >= c.CPUAccesses {
		t.Errorf("cache filtered nothing: %d memory vs %d CPU", st.Total(), c.CPUAccesses)
	}
	if err := c.Hierarchy().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The hierarchy absorbed the hot set: L1D should show real locality.
	if ratio := c.Hierarchy().L1D(0).Stats.HitRatio(); ratio < 0.2 {
		t.Errorf("L1D hit ratio %v suspiciously low", ratio)
	}
}

func TestCaptureDeterministic(t *testing.T) {
	spec, _ := workload.ByName("freqmine")
	run := func() []trace.Record {
		g, _ := workload.NewGenerator(spec, 0.005, 4)
		c, err := New(g, memspec.DefaultMachine(), DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		recs, _ := trace.Materialize(c, 0)
		return recs
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}
