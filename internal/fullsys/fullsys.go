// Package fullsys is the trace-capture front end of the COTSon substitute:
// it executes a CPU-level access stream on the Table II machine model —
// per-core instruction fetches plus data accesses filtered through the
// MOESI-coherent cache hierarchy — and emits the main-memory access trace
// (LLC miss fills and dirty writebacks) with CPU-time gaps attached, exactly
// the shape the hybrid-memory simulator consumes.
//
// The paper obtains its traces by running PARSEC inside COTSon and keeping
// only the ROI's main-memory accesses; this package reproduces that pipeline
// over the synthetic workload generators. The headline experiments use the
// generators' calibrated direct mode (Table III exactness); fullsys powers
// the trace-methodology ablation and the fullsystem example.
package fullsys

import (
	"fmt"

	"hybridmem/internal/cache"
	"hybridmem/internal/memspec"
	"hybridmem/internal/trace"
)

// Options tune the synthetic instruction stream that accompanies the data
// accesses.
type Options struct {
	// InstrPerAccess is the number of instruction fetches issued before
	// each data access (0 disables the instruction stream).
	InstrPerAccess int
	// CodeFootprintBytes is each core's looping code region. Footprints
	// within the L1I keep the instruction stream off the memory bus after
	// the first pass, like a warm inner loop.
	CodeFootprintBytes int
}

// DefaultOptions returns a 4-instruction-per-access, 16KB-loop stream.
func DefaultOptions() Options {
	return Options{InstrPerAccess: 4, CodeFootprintBytes: 16 << 10}
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	if o.InstrPerAccess < 0 {
		return fmt.Errorf("fullsys: negative InstrPerAccess")
	}
	if o.InstrPerAccess > 0 && o.CodeFootprintBytes <= 0 {
		return fmt.Errorf("fullsys: instruction stream needs a code footprint")
	}
	return nil
}

// codeBase places per-core code regions far above any data address the
// workload generators emit.
const codeBase = uint64(1) << 40

// Capture runs a CPU-level stream through the machine and yields the
// main-memory trace. It implements trace.Source.
type Capture struct {
	src     trace.Source
	h       *cache.Hierarchy
	opts    Options
	machine memspec.Machine

	pending  []trace.Record
	pendIdx  int
	gapNS    float64 // CPU time since the last emitted memory access
	lastTime float64
	pcs      []uint64
	err      error

	// CPUAccesses counts input records consumed (the pre-filter stream).
	CPUAccesses int64
}

// New builds a capture over src for the given machine.
func New(src trace.Source, m memspec.Machine, opts Options) (*Capture, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	h, err := cache.NewHierarchy(m)
	if err != nil {
		return nil, err
	}
	return &Capture{
		src:     src,
		h:       h,
		opts:    opts,
		machine: m,
		pcs:     make([]uint64, m.Cores),
	}, nil
}

// Hierarchy exposes the cache model (hit ratios, invariants).
func (c *Capture) Hierarchy() *cache.Hierarchy { return c.h }

// Err returns the error that terminated the stream, if any.
func (c *Capture) Err() error { return c.err }

// emit converts this step's memory traffic into trace records. The first
// record carries the accumulated CPU gap; writebacks ride along with no gap.
func (c *Capture) emit(mem []cache.MemAccess) {
	c.pending = c.pending[:0]
	c.pendIdx = 0
	for i, m := range mem {
		op := trace.OpRead
		if m.Write {
			op = trace.OpWrite
		}
		var gap uint32
		if i == 0 {
			gap = uint32(c.gapNS + 0.5)
			c.gapNS = 0
		}
		c.pending = append(c.pending, trace.Record{
			Addr: m.Addr, Op: op, GapNS: gap, CPU: m.CPU,
		})
	}
}

// step consumes one CPU record, returning false at end of stream.
func (c *Capture) step() bool {
	rec, ok := c.src.Next()
	if !ok {
		return false
	}
	c.CPUAccesses++
	cpu := int(rec.CPU) % c.machine.Cores
	// The input record's own gap is CPU compute time.
	c.gapNS += float64(rec.GapNS)

	var traffic []cache.MemAccess
	for i := 0; i < c.opts.InstrPerAccess; i++ {
		line := uint64(c.machine.L1I.LineBytes)
		span := uint64(c.opts.CodeFootprintBytes)
		addr := codeBase + uint64(cpu)<<30 + (c.pcs[cpu]%span)&^(line-1)
		c.pcs[cpu] += line
		mem, err := c.h.Access(cpu, addr, false, true)
		if err != nil {
			c.err = err
			return false
		}
		traffic = append(traffic, mem...)
	}
	mem, err := c.h.Access(cpu, rec.Addr, rec.Op == trace.OpWrite, false)
	if err != nil {
		c.err = err
		return false
	}
	traffic = append(traffic, mem...)

	// CPU time advanced by cache activity becomes gap time.
	c.gapNS += c.h.TimeNS - c.lastTime
	c.lastTime = c.h.TimeNS

	c.emit(traffic)
	return true
}

// Next implements trace.Source.
func (c *Capture) Next() (trace.Record, bool) {
	for {
		if c.pendIdx < len(c.pending) {
			r := c.pending[c.pendIdx]
			c.pendIdx++
			return r, true
		}
		if c.err != nil || !c.step() {
			return trace.Record{}, false
		}
	}
}
