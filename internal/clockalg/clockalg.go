// Package clockalg implements the CLOCK (second-chance) page ring used by the
// CLOCK-DWF baseline (Lee, Bahn & Noh, IEEE TC 2013) and by CLOCK-Pro.
//
// Pages sit on a circular list with per-page reference bits. A clock hand
// sweeps the ring on eviction: referenced pages lose their bit and survive
// the lap; the first page failing the policy's keep test is the victim.
// Beyond the classic algorithm, EvictFunc lets a policy inject extra survival
// rules (CLOCK-DWF keeps write-dominant pages in DRAM this way).
package clockalg

import (
	"fmt"
)

type node[V any] struct {
	key        uint64
	val        V
	ref        bool
	prev, next *node[V]
}

// Ring is a clock of pages keyed by page number. The zero value is not
// usable; call New.
type Ring[V any] struct {
	nodes map[uint64]*node[V]
	hand  *node[V]
}

// New returns an empty ring.
func New[V any]() *Ring[V] {
	return &Ring[V]{nodes: make(map[uint64]*node[V])}
}

// Len returns the number of pages in the ring.
func (r *Ring[V]) Len() int { return len(r.nodes) }

// Contains reports whether key is present.
func (r *Ring[V]) Contains(key uint64) bool {
	_, ok := r.nodes[key]
	return ok
}

// Get returns a pointer to key's value without touching its reference bit.
func (r *Ring[V]) Get(key uint64) (*V, bool) {
	n, ok := r.nodes[key]
	if !ok {
		return nil, false
	}
	return &n.val, true
}

// Reference sets key's reference bit (a page hit) and returns a pointer to
// its value.
func (r *Ring[V]) Reference(key uint64) (*V, bool) {
	n, ok := r.nodes[key]
	if !ok {
		return nil, false
	}
	n.ref = true
	return &n.val, true
}

// Ref reports the current reference bit of key.
func (r *Ring[V]) Ref(key uint64) bool {
	n, ok := r.nodes[key]
	return ok && n.ref
}

// Insert adds a new page just behind the hand (the position the hand will
// reach last), with the given initial reference bit. It is an error if the
// key is already present.
func (r *Ring[V]) Insert(key uint64, v V, ref bool) error {
	if _, ok := r.nodes[key]; ok {
		return fmt.Errorf("clockalg: key %d already present", key)
	}
	n := &node[V]{key: key, val: v, ref: ref}
	r.nodes[key] = n
	if r.hand == nil {
		n.prev, n.next = n, n
		r.hand = n
		return nil
	}
	// Insert before the hand: hand.prev <-> n <-> hand.
	n.prev = r.hand.prev
	n.next = r.hand
	n.prev.next = n
	n.next.prev = n
	return nil
}

func (r *Ring[V]) unlink(n *node[V]) {
	if n.next == n { // last node
		r.hand = nil
	} else {
		n.prev.next = n.next
		n.next.prev = n.prev
		if r.hand == n {
			r.hand = n.next
		}
	}
	n.prev, n.next = nil, nil
	delete(r.nodes, n.key)
}

// Remove deletes key from the ring (a migration, not an eviction) and
// returns its value. The hand skips to the next page if it pointed here.
func (r *Ring[V]) Remove(key uint64) (V, bool) {
	n, ok := r.nodes[key]
	if !ok {
		var zero V
		return zero, false
	}
	v := n.val
	r.unlink(n)
	return v, true
}

// KeepFunc lets a policy grant extra survival laps to the page under the
// hand (its value may be mutated, e.g. decaying a write-history counter).
// Returning true skips the page this lap.
type KeepFunc[V any] func(key uint64, v *V) bool

// EvictFunc runs the clock sweep and removes the chosen victim:
//
//  1. a page with its reference bit set gets it cleared and survives,
//  2. otherwise, if keep (when non-nil) returns true the page survives,
//  3. otherwise the page is evicted.
//
// After maxLaps full sweeps without a victim (possible only with a keep
// function that never yields), the page under the hand is evicted anyway.
// It returns false only if the ring is empty.
func (r *Ring[V]) EvictFunc(keep KeepFunc[V], maxLaps int) (uint64, V, bool) {
	if r.hand == nil {
		var zero V
		return 0, zero, false
	}
	if maxLaps < 1 {
		maxLaps = 1
	}
	limit := len(r.nodes) * maxLaps
	for i := 0; i <= limit; i++ {
		n := r.hand
		if n.ref {
			n.ref = false
			r.hand = n.next
			continue
		}
		if i < limit && keep != nil && keep(n.key, &n.val) {
			r.hand = n.next
			continue
		}
		key, v := n.key, n.val
		r.unlink(n)
		return key, v, true
	}
	// Unreachable: the loop always evicts by i == limit.
	panic("clockalg: sweep failed to evict")
}

// Evict runs the classic second-chance sweep (no extra keep rules).
func (r *Ring[V]) Evict() (uint64, V, bool) {
	return r.EvictFunc(nil, 1)
}

// Keys returns the keys in ring order starting at the hand. O(n); for tests.
func (r *Ring[V]) Keys() []uint64 {
	if r.hand == nil {
		return nil
	}
	keys := make([]uint64, 0, len(r.nodes))
	for n := r.hand; ; n = n.next {
		keys = append(keys, n.key)
		if n.next == r.hand {
			break
		}
	}
	return keys
}

// CheckInvariants validates the circular links against the key map.
func (r *Ring[V]) CheckInvariants() error {
	if r.hand == nil {
		if len(r.nodes) != 0 {
			return fmt.Errorf("clockalg: nil hand with %d nodes", len(r.nodes))
		}
		return nil
	}
	seen := 0
	for n := r.hand; ; n = n.next {
		if got, ok := r.nodes[n.key]; !ok || got != n {
			return fmt.Errorf("clockalg: node %d linked but not mapped", n.key)
		}
		if n.next.prev != n || n.prev.next != n {
			return fmt.Errorf("clockalg: broken links at %d", n.key)
		}
		seen++
		if seen > len(r.nodes) {
			return fmt.Errorf("clockalg: ring longer than map (%d > %d)", seen, len(r.nodes))
		}
		if n.next == r.hand {
			break
		}
	}
	if seen != len(r.nodes) {
		return fmt.Errorf("clockalg: ring has %d nodes, map has %d", seen, len(r.nodes))
	}
	return nil
}
