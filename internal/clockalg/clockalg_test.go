package clockalg

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestEmptyRing(t *testing.T) {
	r := New[int]()
	if r.Len() != 0 {
		t.Error("new ring not empty")
	}
	if _, _, ok := r.Evict(); ok {
		t.Error("Evict on empty returned ok")
	}
	if _, ok := r.Remove(1); ok {
		t.Error("Remove on empty returned ok")
	}
	if _, ok := r.Reference(1); ok {
		t.Error("Reference on empty returned ok")
	}
	if err := r.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestInsertAndDuplicate(t *testing.T) {
	r := New[int]()
	if err := r.Insert(1, 10, false); err != nil {
		t.Fatal(err)
	}
	if err := r.Insert(1, 11, false); err == nil {
		t.Error("duplicate insert should error")
	}
	if v, ok := r.Get(1); !ok || *v != 10 {
		t.Errorf("Get = %v, %v", v, ok)
	}
}

func TestSecondChanceOrder(t *testing.T) {
	r := New[int]()
	// Insert 1, 2, 3 with no reference bits: FIFO eviction order.
	for i := uint64(1); i <= 3; i++ {
		r.Insert(i, 0, false)
	}
	if got := r.Keys(); !reflect.DeepEqual(got, []uint64{1, 2, 3}) {
		t.Fatalf("keys = %v, want [1 2 3]", got)
	}
	k, _, _ := r.Evict()
	if k != 1 {
		t.Errorf("first eviction = %d, want 1", k)
	}
	// Reference 2: it survives one lap, so 3 goes next.
	r.Reference(2)
	k, _, _ = r.Evict()
	if k != 3 {
		t.Errorf("second eviction = %d, want 3", k)
	}
	k, _, _ = r.Evict()
	if k != 2 {
		t.Errorf("third eviction = %d, want 2", k)
	}
	if r.Len() != 0 {
		t.Errorf("ring not empty: %d", r.Len())
	}
}

func TestInsertWithRefGetsSecondChance(t *testing.T) {
	r := New[int]()
	r.Insert(1, 0, true)
	r.Insert(2, 0, false)
	// Hand at 1 (ref) -> cleared, skip; 2 (no ref) -> evicted.
	k, _, _ := r.Evict()
	if k != 2 {
		t.Errorf("evicted %d, want 2", k)
	}
	k, _, _ = r.Evict()
	if k != 1 {
		t.Errorf("evicted %d, want 1", k)
	}
}

func TestEvictFuncKeepRule(t *testing.T) {
	r := New[int]()
	// Values act as write-history counters; keep decrements them.
	r.Insert(1, 2, false)
	r.Insert(2, 0, false)
	r.Insert(3, 1, false)
	keep := func(_ uint64, v *int) bool {
		if *v > 0 {
			*v--
			return true
		}
		return false
	}
	// Sweep: 1 has credit 2 -> keep (1 left), 2 has 0 -> evict.
	k, _, ok := r.EvictFunc(keep, 4)
	if !ok || k != 2 {
		t.Errorf("evicted %d, want 2", k)
	}
	if v, _ := r.Get(1); *v != 1 {
		t.Errorf("credit of 1 = %d, want 1", *v)
	}
	// Next sweep: 3 has 1 -> keep (0), 1 has 1 -> keep (0), 3 -> evict.
	k, _, ok = r.EvictFunc(keep, 4)
	if !ok || k != 3 {
		t.Errorf("evicted %d, want 3", k)
	}
}

func TestEvictFuncLapBound(t *testing.T) {
	r := New[int]()
	for i := uint64(1); i <= 3; i++ {
		r.Insert(i, 0, true)
	}
	// A keep function that never yields: the lap bound must force eviction.
	alwaysKeep := func(_ uint64, _ *int) bool { return true }
	if _, _, ok := r.EvictFunc(alwaysKeep, 2); !ok {
		t.Fatal("lap-bounded sweep failed to evict")
	}
	if r.Len() != 2 {
		t.Errorf("len = %d, want 2", r.Len())
	}
}

func TestRemoveMovesHand(t *testing.T) {
	r := New[int]()
	for i := uint64(1); i <= 3; i++ {
		r.Insert(i, int(i), false)
	}
	// Hand is at 1; removing it moves the hand to 2.
	v, ok := r.Remove(1)
	if !ok || v != 1 {
		t.Fatalf("Remove = %v, %v", v, ok)
	}
	if got := r.Keys(); !reflect.DeepEqual(got, []uint64{2, 3}) {
		t.Errorf("keys = %v, want [2 3]", got)
	}
	r.Remove(3)
	r.Remove(2)
	if r.Len() != 0 {
		t.Error("ring should be empty")
	}
	if err := r.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestSingleNodeEvictWithRef(t *testing.T) {
	r := New[int]()
	r.Insert(1, 0, true)
	k, _, ok := r.Evict()
	if !ok || k != 1 {
		t.Errorf("Evict = %d, %v; want 1, true", k, ok)
	}
}

func TestRandomOpsInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	r := New[int]()
	live := map[uint64]bool{}
	nextKey := uint64(1)
	for step := 0; step < 3000; step++ {
		switch op := rng.Intn(10); {
		case op < 4:
			r.Insert(nextKey, step, rng.Intn(2) == 0)
			live[nextKey] = true
			nextKey++
		case op < 6:
			if len(live) > 0 {
				k := anyKey(rng, live)
				if _, ok := r.Reference(k); !ok {
					t.Fatalf("step %d: Reference(%d) missed", step, k)
				}
			}
		case op < 8:
			if len(live) > 0 {
				k := anyKey(rng, live)
				if _, ok := r.Remove(k); !ok {
					t.Fatalf("step %d: Remove(%d) missed", step, k)
				}
				delete(live, k)
			}
		default:
			if k, _, ok := r.Evict(); ok {
				if !live[k] {
					t.Fatalf("step %d: evicted dead key %d", step, k)
				}
				delete(live, k)
			} else if len(live) != 0 {
				t.Fatalf("step %d: Evict failed with %d live", step, len(live))
			}
		}
		if err := r.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if r.Len() != len(live) {
			t.Fatalf("step %d: len %d, want %d", step, r.Len(), len(live))
		}
	}
}

func anyKey(rng *rand.Rand, m map[uint64]bool) uint64 {
	i := rng.Intn(len(m))
	for k := range m {
		if i == 0 {
			return k
		}
		i--
	}
	panic("unreachable")
}
