// Package model implements the paper's analytical models: the Average
// Memory Access Time of Eq. 1, the Average Power Per Request of Eq. 2 with
// the prorated static power of Eq. 3, the per-source NVM write accounting of
// the endurance analysis (Section III-C), and the Table I probability
// vocabulary, all computed from simulation counts.
//
// Every component is exposed separately because the paper's figures are
// stacked breakdowns: static/dynamic/migration power (Figs. 1, 2a, 4a),
// request/migration AMAT (Figs. 2b, 4c) and page-fault/migration/request NVM
// writes (Figs. 2c, 4b).
package model

import (
	"errors"

	"hybridmem/internal/memspec"
	"hybridmem/internal/sim"
)

// Probabilities are the Table I request probabilities extracted from a run.
// Hit/miss/migration probabilities are per access; the read/write and
// disk-destination splits are conditional, exactly as Eqs. 1-2 use them.
type Probabilities struct {
	PHitDRAM, PHitNVM, PMiss float64 // per access
	PRDRAM, PWDRAM           float64 // conditional on a DRAM hit
	PRNVM, PWNVM             float64 // conditional on an NVM hit
	PMigD, PMigN             float64 // migrations per access (to DRAM / to NVM)
	PDiskToD, PDiskToN       float64 // conditional on a miss
	// PMigNStall is the subset of PMigN that stalls the application:
	// demotions forced by promotions. Demotions forced by page faults
	// overlap the disk DMA (Section II-A) and appear only in the energy
	// model.
	PMigNStall float64
}

// probabilitiesFrom derives the Table I values from raw counts.
func probabilitiesFrom(c sim.Counts) (Probabilities, error) {
	if c.Accesses == 0 {
		return Probabilities{}, errors.New("model: no accesses")
	}
	n := float64(c.Accesses)
	p := Probabilities{
		PHitDRAM:   float64(c.HitsDRAM()) / n,
		PHitNVM:    float64(c.HitsNVM()) / n,
		PMiss:      float64(c.Faults) / n,
		PMigD:      float64(c.Promotions) / n,
		PMigN:      float64(c.Demotions) / n,
		PMigNStall: float64(c.DemotionsPromo) / n,
	}
	if h := float64(c.HitsDRAM()); h > 0 {
		p.PRDRAM = float64(c.ReadsDRAM) / h
		p.PWDRAM = float64(c.WritesDRAM) / h
	}
	if h := float64(c.HitsNVM()); h > 0 {
		p.PRNVM = float64(c.ReadsNVM) / h
		p.PWNVM = float64(c.WritesNVM) / h
	}
	if f := float64(c.Faults); f > 0 {
		p.PDiskToD = float64(c.FaultsToDRAM) / f
		p.PDiskToN = float64(c.FaultsToNVM) / f
	}
	return p, nil
}

// AMAT is the Eq. 1 breakdown, in nanoseconds per access.
type AMAT struct {
	HitDRAM    float64 // PHitDRAM * (PRDRAM*TRDRAM + PWDRAM*TWDRAM)
	HitNVM     float64 // PHitNVM  * (PRNVM*TRNVM + PWNVM*TWNVM)
	Miss       float64 // PMiss * TDisk
	MigrationD float64 // PMigD * PageFactor * (TRNVM + TWDRAM)
	MigrationN float64 // PMigNStall * PageFactor * (TRDRAM + TWNVM)
}

// Total returns the full AMAT.
func (a AMAT) Total() float64 {
	return a.HitDRAM + a.HitNVM + a.Miss + a.MigrationD + a.MigrationN
}

// Requests returns the non-migration component (the figures' "Read/Write
// Requests" bars, which include page-fault stalls).
func (a AMAT) Requests() float64 { return a.HitDRAM + a.HitNVM + a.Miss }

// Migrations returns the migration component of AMAT.
func (a AMAT) Migrations() float64 { return a.MigrationD + a.MigrationN }

// APPR is the Eq. 2 + Eq. 3 breakdown, in nanojoules per access.
type APPR struct {
	DynamicDRAM float64 // hit term for DRAM
	DynamicNVM  float64 // hit term for NVM
	FaultDRAM   float64 // PMiss * PDiskToD * PageFactor * PoWDRAM
	FaultNVM    float64 // PMiss * PDiskToN * PageFactor * PoWNVM
	MigrationD  float64 // PMigD * PageFactor * (PoRNVM + PoWDRAM)
	MigrationN  float64 // PMigN * PageFactor * (PoRDRAM + PoWNVM)
	Static      float64 // Eq. 3: static energy prorated per access
}

// Total returns the full per-request energy.
func (p APPR) Total() float64 {
	return p.DynamicDRAM + p.DynamicNVM + p.FaultDRAM + p.FaultNVM +
		p.MigrationD + p.MigrationN + p.Static
}

// Dynamic returns the hit-servicing energy.
func (p APPR) Dynamic() float64 { return p.DynamicDRAM + p.DynamicNVM }

// PageFault returns the page-load write energy.
func (p APPR) PageFault() float64 { return p.FaultDRAM + p.FaultNVM }

// Migration returns the migration copy energy.
func (p APPR) Migration() float64 { return p.MigrationD + p.MigrationN }

// NVMWrites splits the line-granularity writes arriving at NVM by source,
// the quantity behind the endurance analysis (Figs. 2c and 4b).
type NVMWrites struct {
	// Requests are write accesses serviced in place by NVM.
	Requests int64
	// PageFault are disk->NVM page loads (PageFactor lines each).
	PageFault int64
	// Migration are DRAM->NVM page copies (PageFactor lines each).
	Migration int64
}

// Total returns all line writes arriving at NVM.
func (w NVMWrites) Total() int64 { return w.Requests + w.PageFault + w.Migration }

// Report is the full model evaluation of one simulation run.
type Report struct {
	Policy        string
	Probabilities Probabilities
	AMAT          AMAT
	APPR          APPR
	NVMWrites     NVMWrites
	// RuntimeNS and Accesses echo the run for downstream normalization.
	RuntimeNS float64
	Accesses  int64
}

// Evaluate applies Eqs. 1-3 to a simulation result.
func Evaluate(r *sim.Result, spec memspec.Spec) (*Report, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	p, err := probabilitiesFrom(r.Counts)
	if err != nil {
		return nil, err
	}
	pf := float64(spec.Geometry.PageFactor())
	d, n := spec.DRAM, spec.NVM

	amat := AMAT{
		HitDRAM:    p.PHitDRAM * (p.PRDRAM*d.ReadLatencyNS + p.PWDRAM*d.WriteLatencyNS),
		HitNVM:     p.PHitNVM * (p.PRNVM*n.ReadLatencyNS + p.PWNVM*n.WriteLatencyNS),
		Miss:       p.PMiss * spec.Disk.AccessLatencyNS,
		MigrationD: p.PMigD * pf * (n.ReadLatencyNS + d.WriteLatencyNS),
		MigrationN: p.PMigNStall * pf * (d.ReadLatencyNS + n.WriteLatencyNS),
	}

	appr := APPR{
		DynamicDRAM: p.PHitDRAM * (p.PRDRAM*d.ReadEnergyNJ + p.PWDRAM*d.WriteEnergyNJ),
		DynamicNVM:  p.PHitNVM * (p.PRNVM*n.ReadEnergyNJ + p.PWNVM*n.WriteEnergyNJ),
		FaultDRAM:   p.PMiss * p.PDiskToD * pf * d.WriteEnergyNJ,
		FaultNVM:    p.PMiss * p.PDiskToN * pf * n.WriteEnergyNJ,
		MigrationD:  p.PMigD * pf * (n.ReadEnergyNJ + d.WriteEnergyNJ),
		MigrationN:  p.PMigN * pf * (d.ReadEnergyNJ + n.WriteEnergyNJ),
		Static:      staticPerAccess(r, spec),
	}

	pfLines := int64(spec.Geometry.PageFactor())
	writes := NVMWrites{
		Requests:  r.Counts.WritesNVM,
		PageFault: r.Counts.FaultsToNVM * pfLines,
		Migration: r.Counts.Demotions * pfLines,
	}

	return &Report{
		Policy:        r.Policy,
		Probabilities: p,
		AMAT:          amat,
		APPR:          appr,
		NVMWrites:     writes,
		RuntimeNS:     r.RuntimeNS,
		Accesses:      r.Counts.Accesses,
	}, nil
}

// staticPerAccess implements Eq. 3: the static power of the provisioned
// memory, integrated over the run's wall-clock time and prorated over all
// requests. StperPage/AccessperPage per page, summed over pages, equals
// total static energy divided by total accesses.
func staticPerAccess(r *sim.Result, spec memspec.Spec) float64 {
	pageBytes := spec.Geometry.PageSizeBytes
	perSec := float64(r.DRAMPages)*spec.DRAM.StaticPowerNJPerPageSec(pageBytes) +
		float64(r.NVMPages)*spec.NVM.StaticPowerNJPerPageSec(pageBytes)
	seconds := r.RuntimeNS * 1e-9
	return perSec * seconds / float64(r.Counts.Accesses)
}
