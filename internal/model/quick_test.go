package model

import (
	"math"
	"testing"
	"testing/quick"

	"hybridmem/internal/memspec"
	"hybridmem/internal/sim"
)

// arbitraryCounts builds a consistent Counts from quick-generated raw
// numbers: hit/fault splits always sum correctly.
func arbitraryCounts(rd, wd, rn, wn, fd, fn, promo, demoF, demoP uint16) sim.Counts {
	c := sim.Counts{
		ReadsDRAM: int64(rd), WritesDRAM: int64(wd),
		ReadsNVM: int64(rn), WritesNVM: int64(wn),
		FaultsToDRAM: int64(fd), FaultsToNVM: int64(fn),
		Promotions:     int64(promo),
		DemotionsFault: int64(demoF), DemotionsPromo: int64(demoP),
	}
	c.Faults = c.FaultsToDRAM + c.FaultsToNVM
	c.Demotions = c.DemotionsFault + c.DemotionsPromo
	c.Accesses = c.Hits() + c.Faults
	return c
}

// TestQuickModelIdentities checks, over arbitrary consistent event counts:
//  1. Eq. 1 evaluated on the extracted probabilities equals the per-access
//     costs computed directly from the counts;
//  2. the probability splits are normalized;
//  3. the NVM write sources match the count-based formula.
func TestQuickModelIdentities(t *testing.T) {
	spec := memspec.Default()
	pf := float64(spec.Geometry.PageFactor())
	f := func(rd, wd, rn, wn, fd, fn, promo, demoF, demoP uint16) bool {
		c := arbitraryCounts(rd, wd, rn, wn, fd, fn, promo, demoF, demoP)
		if c.Accesses == 0 {
			return true
		}
		res := &sim.Result{Counts: c, DRAMPages: 10, NVMPages: 90, RuntimeNS: 1e6}
		rep, err := Evaluate(res, spec)
		if err != nil {
			return false
		}

		// (1) direct per-access cost.
		n := float64(c.Accesses)
		direct := (float64(c.ReadsDRAM)*50 + float64(c.WritesDRAM)*50 +
			float64(c.ReadsNVM)*100 + float64(c.WritesNVM)*350 +
			float64(c.Faults)*5e6 +
			float64(c.Promotions)*pf*(100+50) +
			float64(c.DemotionsPromo)*pf*(50+350)) / n
		if math.Abs(rep.AMAT.Total()-direct) > 1e-6*math.Max(1, direct) {
			return false
		}

		// (2) normalization.
		p := rep.Probabilities
		if math.Abs(p.PHitDRAM+p.PHitNVM+p.PMiss-1) > 1e-9 {
			return false
		}
		if c.HitsNVM() > 0 && math.Abs(p.PRNVM+p.PWNVM-1) > 1e-9 {
			return false
		}

		// (3) write sources.
		w := rep.NVMWrites
		if w.Requests != c.WritesNVM ||
			w.PageFault != c.FaultsToNVM*int64(pf) ||
			w.Migration != c.Demotions*int64(pf) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickStaticMonotone checks that static energy per access grows with
// runtime and with memory size, for arbitrary positive inputs.
func TestQuickStaticMonotone(t *testing.T) {
	spec := memspec.Default()
	f := func(dramPages, nvmPages uint8, runtimeMS uint16) bool {
		d := int(dramPages)%100 + 1
		nv := int(nvmPages)%1000 + 1
		rt := (float64(runtimeMS) + 1) * 1e6
		mk := func(d, n int, rt float64) float64 {
			res := &sim.Result{DRAMPages: d, NVMPages: n, RuntimeNS: rt}
			res.Counts.Accesses = 1000
			res.Counts.ReadsDRAM = 1000
			rep, err := Evaluate(res, spec)
			if err != nil {
				return math.NaN()
			}
			return rep.APPR.Static
		}
		base := mk(d, nv, rt)
		if !(mk(d, nv, 2*rt) > base) {
			return false
		}
		if !(mk(2*d, nv, rt) > base) {
			return false
		}
		return mk(d, 2*nv, rt) > base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
