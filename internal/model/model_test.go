package model

import (
	"math"
	"math/rand"
	"testing"

	"hybridmem/internal/clockdwf"
	"hybridmem/internal/core"
	"hybridmem/internal/memspec"
	"hybridmem/internal/mm"
	"hybridmem/internal/policy"
	"hybridmem/internal/sim"
	"hybridmem/internal/trace"
)

func approx(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// runRandom simulates a skewed random workload on the given policy.
func runRandom(t *testing.T, p policy.Policy, n int, seed int64) *sim.Result {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	recs := make([]trace.Record, n)
	for i := range recs {
		page := uint64(rng.Intn(60))
		if rng.Intn(10) < 6 {
			page = uint64(rng.Intn(10))
		}
		op := trace.OpRead
		if rng.Intn(3) == 0 {
			op = trace.OpWrite
		}
		recs[i] = trace.Record{Addr: page * 4096, Op: op, GapNS: uint32(rng.Intn(200))}
	}
	r, err := sim.Run(trace.NewSliceSource(recs), p, memspec.Default(), sim.Options{Shadow: true})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func allPolicies(t *testing.T) map[string]policy.Policy {
	t.Helper()
	out := map[string]policy.Policy{}
	d, err := policy.NewDRAMOnly(45)
	if err != nil {
		t.Fatal(err)
	}
	out["dram-only"] = d
	nv, err := policy.NewNVMOnly(45)
	if err != nil {
		t.Fatal(err)
	}
	out["nvm-only"] = nv
	cd, err := clockdwf.New(5, 40, clockdwf.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	out["clock-dwf"] = cd
	pr, err := core.New(5, 40, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	out["proposed"] = pr
	return out
}

// TestAMATIdentity checks the central model cross-check: Eq. 1 evaluated on
// the extracted probabilities equals the simulator's directly accumulated
// service time per access, for every policy.
func TestAMATIdentity(t *testing.T) {
	for name, p := range allPolicies(t) {
		r := runRandom(t, p, 20000, 7)
		rep, err := Evaluate(r, memspec.Default())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		direct := r.ServiceNS / float64(r.Counts.Accesses)
		if !approx(rep.AMAT.Total(), direct, 1e-9) {
			t.Errorf("%s: AMAT %v != service/access %v", name, rep.AMAT.Total(), direct)
		}
	}
}

// TestNVMWritesMatchWear checks that the model's per-source NVM write split
// sums to the wear the simulator charged frame by frame.
func TestNVMWritesMatchWear(t *testing.T) {
	for name, p := range allPolicies(t) {
		r := runRandom(t, p, 20000, 8)
		rep, err := Evaluate(r, memspec.Default())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got, want := rep.NVMWrites.Total(), int64(r.NVMWear.Total); got != want {
			t.Errorf("%s: modeled NVM writes %d != accumulated wear %d", name, got, want)
		}
	}
}

func TestProbabilitiesSumToOne(t *testing.T) {
	for name, p := range allPolicies(t) {
		r := runRandom(t, p, 15000, 9)
		rep, err := Evaluate(r, memspec.Default())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		pr := rep.Probabilities
		if !approx(pr.PHitDRAM+pr.PHitNVM+pr.PMiss, 1, 1e-12) {
			t.Errorf("%s: hit+miss = %v", name, pr.PHitDRAM+pr.PHitNVM+pr.PMiss)
		}
		if pr.PHitDRAM > 0 && !approx(pr.PRDRAM+pr.PWDRAM, 1, 1e-12) {
			t.Errorf("%s: DRAM r/w split = %v", name, pr.PRDRAM+pr.PWDRAM)
		}
		if pr.PMiss > 0 && !approx(pr.PDiskToD+pr.PDiskToN, 1, 1e-12) {
			t.Errorf("%s: disk split = %v", name, pr.PDiskToD+pr.PDiskToN)
		}
	}
}

func TestAPPRComponentsSum(t *testing.T) {
	r := runRandom(t, mustCore(t), 10000, 10)
	rep, err := Evaluate(r, memspec.Default())
	if err != nil {
		t.Fatal(err)
	}
	sum := rep.APPR.Dynamic() + rep.APPR.PageFault() + rep.APPR.Migration() + rep.APPR.Static
	if !approx(sum, rep.APPR.Total(), 1e-12) {
		t.Errorf("components %v != total %v", sum, rep.APPR.Total())
	}
	if rep.APPR.Static <= 0 {
		t.Error("static component should be positive")
	}
}

func mustCore(t *testing.T) policy.Policy {
	t.Helper()
	p, err := core.New(5, 40, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCLOCKDWFNeverWritesNVMRequests(t *testing.T) {
	cd, _ := clockdwf.New(5, 40, clockdwf.DefaultConfig())
	r := runRandom(t, cd, 20000, 11)
	rep, _ := Evaluate(r, memspec.Default())
	// Section III: "no write access will be responded by NVM".
	if rep.NVMWrites.Requests != 0 {
		t.Errorf("CLOCK-DWF serviced %d writes in NVM", rep.NVMWrites.Requests)
	}
	if rep.Probabilities.PWNVM != 0 {
		t.Errorf("PWNVM = %v, want 0", rep.Probabilities.PWNVM)
	}
}

func TestDRAMOnlyHasNoNVMTerms(t *testing.T) {
	d, _ := policy.NewDRAMOnly(45)
	r := runRandom(t, d, 10000, 12)
	rep, _ := Evaluate(r, memspec.Default())
	if rep.AMAT.HitNVM != 0 || rep.AMAT.Migrations() != 0 {
		t.Error("DRAM-only should have no NVM or migration AMAT")
	}
	if rep.APPR.DynamicNVM != 0 || rep.APPR.Migration() != 0 || rep.APPR.FaultNVM != 0 {
		t.Error("DRAM-only should have no NVM energy")
	}
	if rep.NVMWrites.Total() != 0 {
		t.Error("DRAM-only should have no NVM writes")
	}
}

func TestEvaluateEmptyRunErrors(t *testing.T) {
	r := &sim.Result{}
	if _, err := Evaluate(r, memspec.Default()); err == nil {
		t.Error("empty run should error")
	}
}

func TestStaticProrationScalesWithMemoryAndTime(t *testing.T) {
	// Two synthetic runs identical except runtime: static per access must
	// scale linearly with runtime (Eq. 3).
	base := &sim.Result{
		DRAMPages: 100, NVMPages: 900,
		RuntimeNS: 1e9,
	}
	base.Counts.Accesses = 1000
	base.Counts.ReadsDRAM = 1000
	repA, err := Evaluate(base, memspec.Default())
	if err != nil {
		t.Fatal(err)
	}
	doubled := *base
	doubled.RuntimeNS = 2e9
	repB, _ := Evaluate(&doubled, memspec.Default())
	if !approx(repB.APPR.Static, 2*repA.APPR.Static, 1e-12) {
		t.Errorf("static did not scale with runtime: %v vs %v", repB.APPR.Static, repA.APPR.Static)
	}
	// Known value: 100 DRAM pages at 4KB * 1 W/GB for 1 s over 1000 accesses,
	// plus 900 NVM pages at 0.1 W/GB.
	wantPerSec := 100*1e9*4096/float64(memspec.BytesPerGB) +
		900*0.1*1e9*4096/float64(memspec.BytesPerGB)
	want := wantPerSec * 1.0 / 1000
	if !approx(repA.APPR.Static, want, 1e-9) {
		t.Errorf("static = %v, want %v", repA.APPR.Static, want)
	}
}

func TestEndurance(t *testing.T) {
	pr, _ := core.New(5, 40, core.DefaultConfig())
	r := runRandom(t, pr, 20000, 13)
	e, err := EvaluateEndurance(r, memspec.Default())
	if err != nil {
		t.Fatal(err)
	}
	if e.TotalLineWrites != int64(r.NVMWear.Total) {
		t.Errorf("total = %d, want %d", e.TotalLineWrites, r.NVMWear.Total)
	}
	if e.LifetimeYearsLeveled <= 0 {
		t.Error("leveled lifetime should be positive")
	}
	if e.LifetimeYearsWorstFrame <= 0 {
		t.Error("worst-frame lifetime should be positive")
	}
	if e.LifetimeYearsWorstFrame > e.LifetimeYearsLeveled {
		t.Error("worst frame cannot outlive the leveled estimate")
	}
}

func TestEnduranceErrors(t *testing.T) {
	if _, err := EvaluateEndurance(&sim.Result{NVMPages: 0, RuntimeNS: 1}, memspec.Default()); err == nil {
		t.Error("no NVM zone should error")
	}
	spec := memspec.Default()
	spec.NVM.WriteEnduranceCycles = 0
	if _, err := EvaluateEndurance(&sim.Result{NVMPages: 1, RuntimeNS: 1}, spec); err == nil {
		t.Error("no endurance spec should error")
	}
	if _, err := EvaluateEndurance(&sim.Result{NVMPages: 1, RuntimeNS: 0}, memspec.Default()); err == nil {
		t.Error("zero runtime should error")
	}
}

func TestWearImbalance(t *testing.T) {
	if got := WearImbalance(mm.WearStats{Total: 100, Max: 10}, 10); !approx(got, 1.0, 1e-12) {
		t.Errorf("imbalance = %v, want 1.0", got)
	}
	if got := WearImbalance(mm.WearStats{Total: 100, Max: 50}, 10); !approx(got, 5.0, 1e-12) {
		t.Errorf("imbalance = %v, want 5.0", got)
	}
	if WearImbalance(mm.WearStats{}, 10) != 0 {
		t.Error("zero wear should give 0")
	}
}
