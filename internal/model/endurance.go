package model

import (
	"errors"

	"hybridmem/internal/memspec"
	"hybridmem/internal/mm"
	"hybridmem/internal/sim"
)

// Endurance estimates NVM lifetime from write traffic (Section III-C /
// Section V-B: the proposed scheme "will prolong its lifetime up to 4x").
type Endurance struct {
	// TotalLineWrites is all line writes that reached NVM.
	TotalLineWrites int64
	// LineWritesPerSec is the write rate over the simulated runtime.
	LineWritesPerSec float64
	// LifetimeYearsLeveled assumes ideal wear leveling: every cell ages at
	// the average rate.
	LifetimeYearsLeveled float64
	// LifetimeYearsWorstFrame uses the most-written frame's observed rate:
	// the no-wear-leveling bound.
	LifetimeYearsWorstFrame float64
}

const secondsPerYear = 365.25 * 24 * 3600

// EvaluateEndurance estimates lifetime for a run. The NVM zone must be
// non-empty and the technology must declare a write endurance.
func EvaluateEndurance(r *sim.Result, spec memspec.Spec) (*Endurance, error) {
	if r.NVMPages == 0 {
		return nil, errors.New("model: no NVM zone to evaluate")
	}
	if spec.NVM.WriteEnduranceCycles <= 0 {
		return nil, errors.New("model: NVM endurance cycles not specified")
	}
	if r.RuntimeNS <= 0 {
		return nil, errors.New("model: non-positive runtime")
	}
	seconds := r.RuntimeNS * 1e-9
	pf := float64(spec.Geometry.PageFactor())
	total := int64(r.NVMWear.Total)
	rate := float64(total) / seconds

	e := &Endurance{
		TotalLineWrites:  total,
		LineWritesPerSec: rate,
	}
	// Ideal leveling: the zone has NVMPages*PageFactor line slots; each can
	// take WriteEnduranceCycles writes. Lifetime = capacity budget / rate.
	if rate > 0 {
		budget := spec.NVM.WriteEnduranceCycles * float64(r.NVMPages) * pf
		e.LifetimeYearsLeveled = budget / rate / secondsPerYear
	}
	// Worst frame: its PageFactor lines absorb MaxWear writes uniformly, so
	// per-line wear rate is MaxWear/PageFactor per runtime.
	if r.NVMWear.Max > 0 {
		perLineRate := float64(r.NVMWear.Max) / pf / seconds
		e.LifetimeYearsWorstFrame = spec.NVM.WriteEnduranceCycles / perLineRate / secondsPerYear
	}
	return e, nil
}

// WearImbalance returns max-frame wear divided by mean-frame wear for the
// NVM zone (1.0 is perfectly even; large values motivate wear leveling).
func WearImbalance(ws mm.WearStats, frames int) float64 {
	if ws.Total == 0 || frames == 0 {
		return 0
	}
	mean := float64(ws.Total) / float64(frames)
	return float64(ws.Max) / mean
}
