package memspec

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTableIVValues(t *testing.T) {
	d := DDR2DRAM()
	if d.ReadLatencyNS != 50 || d.WriteLatencyNS != 50 {
		t.Errorf("DRAM latency = %v/%v, want 50/50", d.ReadLatencyNS, d.WriteLatencyNS)
	}
	if d.ReadEnergyNJ != 3.2 || d.WriteEnergyNJ != 3.2 {
		t.Errorf("DRAM energy = %v/%v, want 3.2/3.2", d.ReadEnergyNJ, d.WriteEnergyNJ)
	}
	if d.StaticPowerWPerGB != 1.0 {
		t.Errorf("DRAM static = %v, want 1.0", d.StaticPowerWPerGB)
	}
	n := PCM()
	if n.ReadLatencyNS != 100 || n.WriteLatencyNS != 350 {
		t.Errorf("NVM latency = %v/%v, want 100/350", n.ReadLatencyNS, n.WriteLatencyNS)
	}
	if n.ReadEnergyNJ != 6.4 || n.WriteEnergyNJ != 32 {
		t.Errorf("NVM energy = %v/%v, want 6.4/32", n.ReadEnergyNJ, n.WriteEnergyNJ)
	}
	if n.StaticPowerWPerGB != 0.1 {
		t.Errorf("NVM static = %v, want 0.1", n.StaticPowerWPerGB)
	}
}

func TestStaticPowerPerPage(t *testing.T) {
	// 1 J/(GB*s) over a 4KB page = 1e9 nJ * 4096/2^30 per second.
	got := DDR2DRAM().StaticPowerNJPerPageSec(4096)
	want := 1e9 * 4096 / float64(BytesPerGB)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("StaticPowerNJPerPageSec = %v, want %v", got, want)
	}
	// NVM is exactly 10x cheaper.
	if got, want := PCM().StaticPowerNJPerPageSec(4096), want/10; math.Abs(got-want) > 1e-9 {
		t.Errorf("NVM static per page = %v, want %v", got, want)
	}
}

func TestPageFactor(t *testing.T) {
	if pf := DefaultGeometry().PageFactor(); pf != 64 {
		t.Errorf("default PageFactor = %d, want 64", pf)
	}
	if pf := WordGeometry().PageFactor(); pf != 1024 {
		t.Errorf("word PageFactor = %d, want 1024", pf)
	}
}

func TestSpecValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default spec invalid: %v", err)
	}
	bad := Default()
	bad.Geometry.LineSizeBytes = 48
	if err := bad.Validate(); err == nil {
		t.Error("expected error for non-divisible line size")
	}
	bad = Default()
	bad.DRAM.ReadLatencyNS = 0
	if err := bad.Validate(); err == nil {
		t.Error("expected error for zero latency")
	}
	bad = Default()
	bad.Disk.AccessLatencyNS = -1
	if err := bad.Validate(); err == nil {
		t.Error("expected error for negative disk latency")
	}
}

func TestSizingPartition(t *testing.T) {
	z := DefaultSizing()
	if err := z.Validate(); err != nil {
		t.Fatalf("default sizing invalid: %v", err)
	}
	dram, nvm := z.Partition(1000)
	if total := dram + nvm; total != 750 {
		t.Errorf("total = %d, want 750 (75%% of 1000)", total)
	}
	if dram != 75 {
		t.Errorf("dram = %d, want 75 (10%% of 750)", dram)
	}
}

func TestSizingPartitionSmall(t *testing.T) {
	// Tiny footprints must still yield at least one frame per zone.
	for _, fp := range []int{1, 2, 3, 5, 10} {
		dram, nvm := DefaultSizing().Partition(fp)
		if dram < 1 || nvm < 1 {
			t.Errorf("Partition(%d) = %d, %d; each zone needs >= 1 frame", fp, dram, nvm)
		}
	}
}

func TestSizingValidateRejectsBadFractions(t *testing.T) {
	for _, z := range []Sizing{
		{MemFractionOfFootprint: 0, DRAMFractionOfMem: 0.1},
		{MemFractionOfFootprint: 0.75, DRAMFractionOfMem: 0},
		{MemFractionOfFootprint: 1.5, DRAMFractionOfMem: 0.1},
		{MemFractionOfFootprint: 0.75, DRAMFractionOfMem: -0.2},
	} {
		if err := z.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", z)
		}
	}
}

func TestPartitionInvariants(t *testing.T) {
	// Property: for any footprint and legal fractions, both zones get at
	// least one frame and the sum never exceeds the footprint-derived total.
	f := func(fp uint16, memFrac, dramFrac uint8) bool {
		z := Sizing{
			MemFractionOfFootprint: 0.05 + float64(memFrac%90)/100,
			DRAMFractionOfMem:      0.05 + float64(dramFrac%90)/100,
		}
		dram, nvm := z.Partition(int(fp))
		return dram >= 1 && nvm >= 1 && dram+nvm == z.TotalPages(int(fp))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDefaultMachine(t *testing.T) {
	m := DefaultMachine()
	if err := m.Validate(); err != nil {
		t.Fatalf("default machine invalid: %v", err)
	}
	if m.Cores != 4 {
		t.Errorf("cores = %d, want 4 (Table II quad-core)", m.Cores)
	}
	if m.LLC.Sets() != 2<<20/(16*64) {
		t.Errorf("LLC sets = %d, want %d", m.LLC.Sets(), 2<<20/(16*64))
	}
	if m.L1D.Sets() != 128 {
		t.Errorf("L1D sets = %d, want 128", m.L1D.Sets())
	}
}

func TestMachineValidateRejectsBadConfigs(t *testing.T) {
	m := DefaultMachine()
	m.Cores = 0
	if err := m.Validate(); err == nil {
		t.Error("expected error for zero cores")
	}
	m = DefaultMachine()
	m.L1D.Ways = 3 // 32KB/(3*64) is not an integer number of sets
	if err := m.Validate(); err == nil {
		t.Error("expected error for non-power-of-two sets")
	}
	m = DefaultMachine()
	m.LLC.LineBytes = 128
	if err := m.Validate(); err == nil {
		t.Error("expected error for mixed line sizes")
	}
}
