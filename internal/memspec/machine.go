package memspec

import "fmt"

// CacheSpec describes one cache level of the simulated machine (Table II).
type CacheSpec struct {
	Name      string
	SizeBytes int
	Ways      int
	LineBytes int
	WriteBack bool
	// LatencyNS is the CPU-visible hit latency, used by the time model that
	// prorates static power over wall-clock time (Eq. 3).
	LatencyNS float64
}

// Sets returns the number of sets in the cache.
func (c CacheSpec) Sets() int { return c.SizeBytes / (c.Ways * c.LineBytes) }

// Validate reports whether the cache geometry is realizable.
func (c CacheSpec) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("memspec: cache %q has non-positive geometry", c.Name)
	}
	if c.SizeBytes%(c.Ways*c.LineBytes) != 0 {
		return fmt.Errorf("memspec: cache %q size %dB not divisible into %d ways of %dB lines",
			c.Name, c.SizeBytes, c.Ways, c.LineBytes)
	}
	if s := c.Sets(); s&(s-1) != 0 {
		return fmt.Errorf("memspec: cache %q has %d sets, not a power of two", c.Name, s)
	}
	return nil
}

// Machine is the COTSon configuration of Table II: a quad-core with MOESI
// coherence, split 32KB 4-way L1s, a shared 2MB 16-way LLC, 64B lines,
// 4GB of main memory and a 5 ms HDD.
type Machine struct {
	Cores           int
	L1D, L1I, LLC   CacheSpec
	MainMemoryBytes int64
	Disk            Disk
}

// DefaultMachine returns the Table II configuration.
func DefaultMachine() Machine {
	return Machine{
		Cores: 4,
		L1D: CacheSpec{Name: "L1D", SizeBytes: 32 << 10, Ways: 4,
			LineBytes: 64, WriteBack: true, LatencyNS: 1},
		L1I: CacheSpec{Name: "L1I", SizeBytes: 32 << 10, Ways: 4,
			LineBytes: 64, WriteBack: true, LatencyNS: 1},
		LLC: CacheSpec{Name: "LLC", SizeBytes: 2 << 20, Ways: 16,
			LineBytes: 64, WriteBack: true, LatencyNS: 10},
		MainMemoryBytes: 4 << 30,
		Disk:            DefaultDisk(),
	}
}

// Validate reports whether the machine description is consistent.
func (m Machine) Validate() error {
	if m.Cores <= 0 {
		return fmt.Errorf("memspec: machine needs at least one core, got %d", m.Cores)
	}
	for _, c := range []CacheSpec{m.L1D, m.L1I, m.LLC} {
		if err := c.Validate(); err != nil {
			return err
		}
	}
	if m.L1D.LineBytes != m.LLC.LineBytes || m.L1I.LineBytes != m.LLC.LineBytes {
		return fmt.Errorf("memspec: mixed line sizes across cache levels")
	}
	if m.MainMemoryBytes <= 0 {
		return fmt.Errorf("memspec: main memory size must be positive")
	}
	return nil
}
