// Package memspec defines the timing, energy and geometry parameters of the
// simulated memory system: the DRAM and NVM (PCM) characteristics of Table IV,
// the disk model, the page/line geometry that determines the migration
// PageFactor of Section II, and the memory-provisioning rule of Section V-A.
//
// All latencies are in nanoseconds, all energies in nanojoules, and static
// power in watts per gigabyte (equivalently J/(GB*s)), exactly as the paper
// reports them.
package memspec

import (
	"errors"
	"fmt"
)

// BytesPerGB is the number of bytes in one gigabyte (2^30), used to convert
// Table IV's static power (J/(GB*s)) into per-page figures.
const BytesPerGB = 1 << 30

// Tech describes one memory technology (one row of Table IV).
type Tech struct {
	// Name identifies the technology in reports ("DRAM", "NVM (PCM)", ...).
	Name string
	// ReadLatencyNS and WriteLatencyNS are the service latencies of one
	// line-sized access, in nanoseconds (Table IV "Latency r/w").
	ReadLatencyNS  float64
	WriteLatencyNS float64
	// ReadEnergyNJ and WriteEnergyNJ are the dynamic energies of one
	// line-sized access, in nanojoules (Table IV "Power r/w").
	ReadEnergyNJ  float64
	WriteEnergyNJ float64
	// StaticPowerWPerGB is the background power (refresh/leakage) drawn per
	// gigabyte of capacity regardless of traffic (Table IV "Static Power").
	StaticPowerWPerGB float64
	// WriteEnduranceCycles is the number of writes a cell sustains before
	// wearing out. Zero means effectively unlimited (DRAM).
	WriteEnduranceCycles float64
}

// StaticPowerNJPerPageSec returns the static energy one page of the given
// size consumes per second, in nanojoules (the StperPage parameter of Eq. 3).
func (t Tech) StaticPowerNJPerPageSec(pageBytes int) float64 {
	return t.StaticPowerWPerGB * 1e9 * float64(pageBytes) / BytesPerGB
}

// DDR2DRAM returns the DRAM parameters of Table IV.
func DDR2DRAM() Tech {
	return Tech{
		Name:              "DRAM",
		ReadLatencyNS:     50,
		WriteLatencyNS:    50,
		ReadEnergyNJ:      3.2,
		WriteEnergyNJ:     3.2,
		StaticPowerWPerGB: 1.0,
	}
}

// PCM returns the NVM (phase-change memory) parameters of Table IV.
// The endurance figure (1e8 cycles) is the commonly cited PCM cell lifetime
// and is used only by the endurance/lifetime model, not by AMAT or APPR.
func PCM() Tech {
	return Tech{
		Name:                 "NVM (PCM)",
		ReadLatencyNS:        100,
		WriteLatencyNS:       350,
		ReadEnergyNJ:         6.4,
		WriteEnergyNJ:        32,
		StaticPowerWPerGB:    0.1,
		WriteEnduranceCycles: 1e8,
	}
}

// Disk models the secondary storage of Table II: a constant-latency HDD.
// Page-fault reads stall for AccessLatencyNS; evictions are write-behind via
// DMA and do not stall the faulting request (Section II-A).
type Disk struct {
	AccessLatencyNS float64
}

// DefaultDisk returns the 5 ms HDD of Table II.
func DefaultDisk() Disk { return Disk{AccessLatencyNS: 5e6} }

// Geometry fixes the data-page size and the granularity of one main-memory
// access (one cache line for post-LLC traffic). Their ratio is the PageFactor
// coefficient of Eq. 1/2: the number of memory accesses needed to move one
// data page.
type Geometry struct {
	PageSizeBytes int
	LineSizeBytes int
}

// DefaultGeometry returns 4KB pages moved as 64B lines (PageFactor 64).
func DefaultGeometry() Geometry {
	return Geometry{PageSizeBytes: 4096, LineSizeBytes: 64}
}

// WordGeometry returns the paper's alternative accounting where CPU requests
// are 4B words, making a page three orders of magnitude larger than an access
// (PageFactor 1024). Used by the granularity ablation.
func WordGeometry() Geometry {
	return Geometry{PageSizeBytes: 4096, LineSizeBytes: 4}
}

// PageFactor returns the number of line-sized memory accesses required to
// read or write one full data page.
func (g Geometry) PageFactor() int { return g.PageSizeBytes / g.LineSizeBytes }

// Validate reports whether the geometry is internally consistent.
func (g Geometry) Validate() error {
	if g.PageSizeBytes <= 0 || g.LineSizeBytes <= 0 {
		return errors.New("memspec: page and line sizes must be positive")
	}
	if g.PageSizeBytes%g.LineSizeBytes != 0 {
		return fmt.Errorf("memspec: page size %d not a multiple of line size %d",
			g.PageSizeBytes, g.LineSizeBytes)
	}
	return nil
}

// Spec aggregates every hardware parameter a simulation needs.
type Spec struct {
	DRAM     Tech
	NVM      Tech
	Disk     Disk
	Geometry Geometry
}

// Default returns the paper's experimental configuration: Table IV DRAM and
// PCM, the 5 ms disk, and 4KB pages accessed as 64B lines.
func Default() Spec {
	return Spec{
		DRAM:     DDR2DRAM(),
		NVM:      PCM(),
		Disk:     DefaultDisk(),
		Geometry: DefaultGeometry(),
	}
}

// Validate reports whether every parameter is physically meaningful.
func (s Spec) Validate() error {
	if err := s.Geometry.Validate(); err != nil {
		return err
	}
	for _, t := range []Tech{s.DRAM, s.NVM} {
		if t.ReadLatencyNS <= 0 || t.WriteLatencyNS <= 0 {
			return fmt.Errorf("memspec: %s latencies must be positive", t.Name)
		}
		if t.ReadEnergyNJ < 0 || t.WriteEnergyNJ < 0 || t.StaticPowerWPerGB < 0 {
			return fmt.Errorf("memspec: %s energies must be non-negative", t.Name)
		}
	}
	if s.Disk.AccessLatencyNS <= 0 {
		return errors.New("memspec: disk latency must be positive")
	}
	return nil
}

// Sizing encodes the experimental provisioning rule of Section V-A: the total
// main memory holds MemFractionOfFootprint of the workload's distinct pages,
// and DRAM gets DRAMFractionOfMem of that total (the rest is NVM).
type Sizing struct {
	MemFractionOfFootprint float64
	DRAMFractionOfMem      float64
}

// DefaultSizing returns the paper's 75% / 10% rule.
func DefaultSizing() Sizing {
	return Sizing{MemFractionOfFootprint: 0.75, DRAMFractionOfMem: 0.10}
}

// Validate reports whether both fractions are in (0, 1].
func (z Sizing) Validate() error {
	if z.MemFractionOfFootprint <= 0 || z.MemFractionOfFootprint > 1 {
		return fmt.Errorf("memspec: memory fraction %v outside (0,1]", z.MemFractionOfFootprint)
	}
	if z.DRAMFractionOfMem <= 0 || z.DRAMFractionOfMem > 1 {
		return fmt.Errorf("memspec: DRAM fraction %v outside (0,1]", z.DRAMFractionOfMem)
	}
	return nil
}

// TotalPages returns the provisioned main-memory capacity, in pages, for a
// workload touching footprintPages distinct pages. Always at least 2 so that
// a hybrid split can give each zone one frame.
func (z Sizing) TotalPages(footprintPages int) int {
	total := int(z.MemFractionOfFootprint * float64(footprintPages))
	if total < 2 {
		total = 2
	}
	return total
}

// Partition splits the provisioned capacity into DRAM and NVM frame counts.
// Both zones receive at least one frame.
func (z Sizing) Partition(footprintPages int) (dramPages, nvmPages int) {
	total := z.TotalPages(footprintPages)
	dramPages = int(z.DRAMFractionOfMem * float64(total))
	if dramPages < 1 {
		dramPages = 1
	}
	if dramPages >= total {
		dramPages = total - 1
	}
	return dramPages, total - dramPages
}
