package memspec

import "fmt"

// NUMA models the socket topology of a hybrid-memory machine: how many
// nodes the DRAM and NVM pools are split across, and how much more a
// cross-node (remote) access costs than a node-local one. The paper's
// experimental machine is a single uniform node; production DRAM-NVM
// systems (Memos, and the asymmetry study of Song et al.) expose one
// DRAM+NVM pool per socket, where a remote access traverses the
// interconnect and pays a multiplicative latency penalty.
type NUMA struct {
	// Nodes is the socket count. 1 reproduces the paper's uniform machine.
	Nodes int
	// RemoteFactor is the multiplier a cross-node access pays on top of the
	// local access latency (>= 1). Typical QPI/UPI-class interconnects land
	// in the 1.3-2.0 range.
	RemoteFactor float64
}

// DefaultNUMA returns the paper's configuration: one uniform node. The
// remote factor is still populated (1.5, a mid-range interconnect penalty)
// so multi-node emulations that start from the default only override Nodes.
func DefaultNUMA() NUMA { return NUMA{Nodes: 1, RemoteFactor: 1.5} }

// Validate reports whether the topology parameters are physically
// meaningful.
func (n NUMA) Validate() error {
	if n.Nodes < 1 {
		return fmt.Errorf("memspec: NUMA needs at least 1 node, got %d", n.Nodes)
	}
	if n.RemoteFactor < 1 {
		return fmt.Errorf("memspec: NUMA remote factor %g below 1 (remote cannot be cheaper than local)", n.RemoteFactor)
	}
	return nil
}

// Remote returns the technology as seen from a different node: the same
// cell parameters with access latencies scaled by the remote factor.
// Energies and static power are per-cell properties and do not change with
// the requester's distance.
func (n NUMA) Remote(t Tech) Tech {
	t.ReadLatencyNS *= n.RemoteFactor
	t.WriteLatencyNS *= n.RemoteFactor
	return t
}

// MigrationCostNS returns the latency cost of migrating one page between
// the given technologies when the destination is remote×(the remote
// factor applies to the writes into the destination and the reads out of
// the source's far side). With remote=false this is the paper's local
// migration cost: PageFactor line reads from src plus line writes to dst.
func (n NUMA) MigrationCostNS(spec Spec, src, dst Tech, remote bool) float64 {
	read, write := src.ReadLatencyNS, dst.WriteLatencyNS
	if remote {
		read, write = n.Remote(src).ReadLatencyNS, n.Remote(dst).WriteLatencyNS
	}
	return float64(spec.Geometry.PageFactor()) * (read + write)
}
