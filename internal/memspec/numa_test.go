package memspec

import "testing"

func TestNUMAValidate(t *testing.T) {
	if err := DefaultNUMA().Validate(); err != nil {
		t.Fatalf("default NUMA invalid: %v", err)
	}
	if err := (NUMA{Nodes: 0, RemoteFactor: 1.5}).Validate(); err == nil {
		t.Fatal("0 nodes accepted")
	}
	if err := (NUMA{Nodes: 2, RemoteFactor: 0.9}).Validate(); err == nil {
		t.Fatal("sub-unity remote factor accepted")
	}
}

func TestNUMARemoteScalesLatenciesOnly(t *testing.T) {
	n := NUMA{Nodes: 2, RemoteFactor: 2}
	local := PCM()
	remote := n.Remote(local)
	if remote.ReadLatencyNS != 2*local.ReadLatencyNS || remote.WriteLatencyNS != 2*local.WriteLatencyNS {
		t.Fatalf("remote latencies %g/%g, want doubled %g/%g",
			remote.ReadLatencyNS, remote.WriteLatencyNS, 2*local.ReadLatencyNS, 2*local.WriteLatencyNS)
	}
	if remote.ReadEnergyNJ != local.ReadEnergyNJ || remote.StaticPowerWPerGB != local.StaticPowerWPerGB {
		t.Fatal("remote access changed per-cell energy/static parameters")
	}
}

func TestNUMAMigrationCost(t *testing.T) {
	spec := Default()
	n := NUMA{Nodes: 2, RemoteFactor: 1.5}
	local := n.MigrationCostNS(spec, spec.NVM, spec.DRAM, false)
	remote := n.MigrationCostNS(spec, spec.NVM, spec.DRAM, true)
	wantLocal := float64(spec.Geometry.PageFactor()) * (spec.NVM.ReadLatencyNS + spec.DRAM.WriteLatencyNS)
	if local != wantLocal {
		t.Fatalf("local migration cost %g, want %g", local, wantLocal)
	}
	if remote != 1.5*local {
		t.Fatalf("remote migration cost %g, want %g", remote, 1.5*local)
	}
}
