package clockdwf

import (
	"math/rand"
	"testing"

	"hybridmem/internal/mm"
	"hybridmem/internal/policy"
	"hybridmem/internal/trace"
)

func mustNew(t *testing.T, dram, nvm int) *Policy {
	t.Helper()
	p, err := New(dram, nvm, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 4, DefaultConfig()); err == nil {
		t.Error("zero DRAM frames should error")
	}
	if _, err := New(4, 0, DefaultConfig()); err == nil {
		t.Error("zero NVM frames should error")
	}
	if _, err := New(4, 4, Config{MaxWriteCredit: -1, MaxScanLaps: 1}); err == nil {
		t.Error("negative credit should error")
	}
	if _, err := New(4, 4, Config{MaxWriteCredit: 1, MaxScanLaps: 0}); err == nil {
		t.Error("zero laps should error")
	}
}

func TestFaultPlacementByRequestType(t *testing.T) {
	p := mustNew(t, 2, 2)
	// Write fault -> DRAM.
	res, err := p.Access(1, trace.OpWrite)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fault || res.ServedFrom != mm.LocDRAM {
		t.Errorf("write fault: %+v", res)
	}
	if p.System().Loc(1) != mm.LocDRAM {
		t.Error("write-faulted page should be in DRAM")
	}
	// Read fault -> NVM.
	res, _ = p.Access(2, trace.OpRead)
	if !res.Fault || res.ServedFrom != mm.LocNVM {
		t.Errorf("read fault: %+v", res)
	}
	if p.System().Loc(2) != mm.LocNVM {
		t.Error("read-faulted page should be in NVM")
	}
}

func TestNVMNeverServicesWrites(t *testing.T) {
	p := mustNew(t, 2, 2)
	p.Access(1, trace.OpRead) // into NVM
	// Write hit on the NVM page: it must migrate to DRAM.
	res, err := p.Access(1, trace.OpWrite)
	if err != nil {
		t.Fatal(err)
	}
	if res.ServedFrom != mm.LocDRAM {
		t.Errorf("served from %v, want DRAM", res.ServedFrom)
	}
	if len(res.Moves) != 1 || res.Moves[0].Reason != policy.ReasonPromotion {
		t.Errorf("moves = %v", res.Moves)
	}
	if p.System().Loc(1) != mm.LocDRAM {
		t.Error("page should now be in DRAM")
	}
}

func TestPromotionSwapsWhenBothFull(t *testing.T) {
	p := mustNew(t, 1, 1)
	p.Access(1, trace.OpWrite) // 1 -> DRAM
	p.Access(2, trace.OpRead)  // 2 -> NVM
	// Write to the NVM page with both zones full: 2 and 1 must swap.
	res, err := p.Access(2, trace.OpWrite)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Moves) != 2 {
		t.Fatalf("moves = %v", res.Moves)
	}
	if res.Moves[0].Reason != policy.ReasonPromotion || res.Moves[0].Page != 2 {
		t.Errorf("move 0 = %v", res.Moves[0])
	}
	if res.Moves[1].Reason != policy.ReasonDemotePromo || res.Moves[1].Page != 1 {
		t.Errorf("move 1 = %v", res.Moves[1])
	}
	if p.System().Loc(2) != mm.LocDRAM || p.System().Loc(1) != mm.LocNVM {
		t.Error("swap did not happen")
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMigrationPingPong(t *testing.T) {
	// The pathology motivating the reproduced paper: alternating writes to
	// pages that keep landing in NVM cause a migration on every write.
	p := mustNew(t, 1, 2)
	p.Access(1, trace.OpWrite) // 1 -> DRAM
	p.Access(2, trace.OpRead)  // 2 -> NVM
	p.Access(3, trace.OpRead)  // 3 -> NVM
	promotions := 0
	for i := 0; i < 10; i++ {
		page := uint64(2 + i%2)
		res, err := p.Access(page, trace.OpWrite)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range res.Moves {
			if m.Reason == policy.ReasonPromotion {
				promotions++
			}
		}
	}
	if promotions < 9 {
		t.Errorf("promotions = %d, want ping-pong on nearly every write", promotions)
	}
}

func TestReadFaultEvictsNVMToDisk(t *testing.T) {
	p := mustNew(t, 1, 1)
	p.Access(1, trace.OpRead) // NVM
	res, _ := p.Access(2, trace.OpRead)
	if len(res.Moves) != 2 {
		t.Fatalf("moves = %v", res.Moves)
	}
	if res.Moves[0].Reason != policy.ReasonEvict || res.Moves[0].Page != 1 {
		t.Errorf("eviction = %v", res.Moves[0])
	}
	if res.Moves[0].To != mm.LocDisk {
		t.Error("eviction should go to disk")
	}
}

func TestWriteFaultDemotesDRAMVictim(t *testing.T) {
	p := mustNew(t, 1, 2)
	p.Access(1, trace.OpWrite) // 1 -> DRAM
	res, _ := p.Access(2, trace.OpWrite)
	// 1 demoted to NVM, 2 faulted into DRAM.
	if len(res.Moves) != 2 {
		t.Fatalf("moves = %v", res.Moves)
	}
	if res.Moves[0].Reason != policy.ReasonDemoteFault || res.Moves[0].Page != 1 ||
		res.Moves[0].To != mm.LocNVM {
		t.Errorf("demotion = %v", res.Moves[0])
	}
	if p.System().Loc(1) != mm.LocNVM || p.System().Loc(2) != mm.LocDRAM {
		t.Error("placement wrong after write-fault demotion")
	}
}

func TestWriteHistoryProtectsDRAMPages(t *testing.T) {
	// Build up write credit on page 1, then force demotions: the
	// write-dominant page survives sweeps that evict read-only pages.
	p := mustNew(t, 2, 4)
	p.Access(1, trace.OpWrite)
	p.Access(1, trace.OpWrite) // credit 2 (capped by config at 3)
	p.Access(2, trace.OpWrite) // DRAM now [1, 2]
	// Faulting write 3: sweep must evict 2 (credit 1 spent... ) or keep
	// the higher-credit page 1 in DRAM.
	p.Access(3, trace.OpWrite)
	if p.System().Loc(1) != mm.LocDRAM {
		t.Error("write-dominant page 1 should survive the first demotion")
	}
}

func TestRandomWorkloadInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	p := mustNew(t, 8, 24)
	for i := 0; i < 8000; i++ {
		page := uint64(rng.Intn(100))
		op := trace.OpRead
		if rng.Intn(3) == 0 {
			op = trace.OpWrite
		}
		res, err := p.Access(page, op)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		// Where the policy says it served from must match the map.
		if got := p.System().Loc(page); got != res.ServedFrom {
			t.Fatalf("step %d: served from %v but page at %v", i, res.ServedFrom, got)
		}
		// CLOCK-DWF invariant: a write is never serviced by NVM.
		if op == trace.OpWrite && res.ServedFrom == mm.LocNVM {
			t.Fatalf("step %d: write serviced by NVM", i)
		}
		if i%500 == 0 {
			if err := p.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	dram, nvm := p.Residents()
	if dram > 8 || nvm > 24 {
		t.Errorf("over capacity: %d/%d", dram, nvm)
	}
}
