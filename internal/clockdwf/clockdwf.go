// Package clockdwf implements the CLOCK-DWF baseline (Lee, Bahn & Noh,
// "CLOCK-DWF: A write-history-aware page replacement algorithm for hybrid
// PCM and DRAM memory architectures", IEEE TC 2013), as characterized in
// Section III of the reproduced paper:
//
//   - Two clock algorithms, one over DRAM and one over NVM.
//   - On a page fault, a write loads the page into DRAM and a read loads it
//     into NVM.
//   - A write hitting a page in NVM immediately migrates that page to DRAM,
//     so NVM never services a write request.
//   - The DRAM clock is write-history aware: it keeps write-dominant pages
//     and preferentially evicts read-dominant pages to NVM.
//
// The reproduced paper's central observation is that this design triggers
// large numbers of non-beneficial page migrations whose cost CLOCK-DWF's own
// evaluation never accounted for; the simulator charges them faithfully.
package clockdwf

import (
	"fmt"

	"hybridmem/internal/clockalg"
	"hybridmem/internal/mm"
	"hybridmem/internal/policy"
	"hybridmem/internal/trace"
)

// Config tunes the write-history mechanism of the DRAM clock.
type Config struct {
	// MaxWriteCredit caps a DRAM page's write-history counter. Each write
	// hit adds one credit (up to the cap); each eviction-scan pass over an
	// unreferenced page spends one credit to survive. Higher values keep
	// write-dominant pages in DRAM longer.
	MaxWriteCredit int
	// MaxScanLaps bounds the DRAM eviction sweep; after this many full laps
	// the page under the hand is evicted regardless of remaining credit.
	MaxScanLaps int
}

// DefaultConfig returns the configuration used in the paper's comparisons.
// MaxScanLaps is MaxWriteCredit+1 so that a sweep can always drain every
// page's credit before the lap bound forces an eviction.
func DefaultConfig() Config {
	return Config{MaxWriteCredit: 3, MaxScanLaps: 4}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.MaxWriteCredit < 0 {
		return fmt.Errorf("clockdwf: MaxWriteCredit %d < 0", c.MaxWriteCredit)
	}
	if c.MaxScanLaps < 1 {
		return fmt.Errorf("clockdwf: MaxScanLaps %d < 1", c.MaxScanLaps)
	}
	return nil
}

// dramPage is the DRAM clock's per-page state.
type dramPage struct {
	writeCredit int
}

// Policy is the CLOCK-DWF hybrid memory manager.
type Policy struct {
	cfg   Config
	dram  *clockalg.Ring[dramPage]
	nvm   *clockalg.Ring[struct{}]
	sys   *mm.System
	moves []policy.Move
}

var _ policy.Policy = (*Policy)(nil)

// New returns a CLOCK-DWF policy over the given zone sizes.
func New(dramFrames, nvmFrames int, cfg Config) (*Policy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if dramFrames < 1 || nvmFrames < 1 {
		return nil, fmt.Errorf("clockdwf: both zones need frames, got %d/%d",
			dramFrames, nvmFrames)
	}
	sys, err := mm.NewSystem(dramFrames, nvmFrames)
	if err != nil {
		return nil, err
	}
	return &Policy{
		cfg:  cfg,
		dram: clockalg.New[dramPage](),
		nvm:  clockalg.New[struct{}](),
		sys:  sys,
	}, nil
}

// Name implements policy.Policy.
func (p *Policy) Name() string { return "clock-dwf" }

// System implements policy.Policy.
func (p *Policy) System() *mm.System { return p.sys }

// keepWriteDominant is the DRAM sweep rule: an unreferenced page survives a
// lap by spending one write credit, so write-dominant pages stay in DRAM and
// read-dominant pages are demoted first.
func keepWriteDominant(_ uint64, v *dramPage) bool {
	if v.writeCredit > 0 {
		v.writeCredit--
		return true
	}
	return false
}

// evictNVMToDisk frees one NVM frame via the NVM clock.
func (p *Policy) evictNVMToDisk() error {
	victim, _, ok := p.nvm.Evict()
	if !ok {
		return fmt.Errorf("clockdwf: NVM ring empty on eviction")
	}
	if err := p.sys.EvictToDisk(victim); err != nil {
		return err
	}
	p.moves = append(p.moves, policy.Move{
		Page: victim, From: mm.LocNVM, To: mm.LocDisk, Reason: policy.ReasonEvict})
	return nil
}

// demoteDRAMVictim frees one DRAM frame, pushing the victim into NVM
// (evicting from NVM to disk first if NVM is full).
func (p *Policy) demoteDRAMVictim(reason policy.Reason) error {
	victim, _, ok := p.dram.EvictFunc(keepWriteDominant, p.cfg.MaxScanLaps)
	if !ok {
		return fmt.Errorf("clockdwf: DRAM ring empty on demotion")
	}
	if p.nvm.Len() == p.sys.Cap(mm.LocNVM) {
		if err := p.evictNVMToDisk(); err != nil {
			return err
		}
	}
	if _, err := p.sys.Migrate(victim, mm.LocNVM); err != nil {
		return err
	}
	if err := p.nvm.Insert(victim, struct{}{}, false); err != nil {
		return err
	}
	p.moves = append(p.moves, policy.Move{
		Page: victim, From: mm.LocDRAM, To: mm.LocNVM, Reason: reason})
	return nil
}

// Access implements policy.Policy.
func (p *Policy) Access(page uint64, op trace.Op) (policy.Result, error) {
	p.moves = p.moves[:0]

	if v, ok := p.dram.Reference(page); ok {
		if op == trace.OpWrite && v.writeCredit < p.cfg.MaxWriteCredit {
			v.writeCredit++
		}
		return policy.Result{ServedFrom: mm.LocDRAM}, nil
	}

	if p.nvm.Contains(page) {
		if op == trace.OpRead {
			p.nvm.Reference(page)
			return policy.Result{ServedFrom: mm.LocNVM, Moves: p.moves}, nil
		}
		// Write hit in NVM: CLOCK-DWF never writes to NVM; migrate the page
		// to DRAM and service the write there.
		p.nvm.Remove(page)
		if p.dram.Len() == p.sys.Cap(mm.LocDRAM) {
			// Both zones are full: the promotion displaces a DRAM victim
			// into the frame the promoted page vacates (a DMA-buffered
			// exchange, no disk eviction needed).
			victim, _, ok := p.dram.EvictFunc(keepWriteDominant, p.cfg.MaxScanLaps)
			if !ok {
				return policy.Result{}, fmt.Errorf("clockdwf: DRAM ring empty on promotion")
			}
			if err := p.sys.Swap(page, victim); err != nil {
				return policy.Result{}, err
			}
			if err := p.nvm.Insert(victim, struct{}{}, false); err != nil {
				return policy.Result{}, err
			}
			p.moves = append(p.moves,
				policy.Move{Page: page, From: mm.LocNVM, To: mm.LocDRAM, Reason: policy.ReasonPromotion},
				policy.Move{Page: victim, From: mm.LocDRAM, To: mm.LocNVM, Reason: policy.ReasonDemotePromo})
		} else {
			if _, err := p.sys.Migrate(page, mm.LocDRAM); err != nil {
				return policy.Result{}, err
			}
			p.moves = append(p.moves, policy.Move{
				Page: page, From: mm.LocNVM, To: mm.LocDRAM, Reason: policy.ReasonPromotion})
		}
		if err := p.dram.Insert(page, dramPage{writeCredit: 1}, true); err != nil {
			return policy.Result{}, err
		}
		return policy.Result{ServedFrom: mm.LocDRAM, Moves: p.moves}, nil
	}

	// Page fault: writes load into DRAM, reads into NVM (Section III).
	if op == trace.OpWrite {
		if p.dram.Len() == p.sys.Cap(mm.LocDRAM) {
			if err := p.demoteDRAMVictim(policy.ReasonDemoteFault); err != nil {
				return policy.Result{}, err
			}
		}
		if _, err := p.sys.Place(page, mm.LocDRAM); err != nil {
			return policy.Result{}, err
		}
		if err := p.dram.Insert(page, dramPage{writeCredit: 1}, true); err != nil {
			return policy.Result{}, err
		}
		p.moves = append(p.moves, policy.Move{
			Page: page, From: mm.LocDisk, To: mm.LocDRAM, Reason: policy.ReasonFault})
		return policy.Result{ServedFrom: mm.LocDRAM, Fault: true, Moves: p.moves}, nil
	}
	if p.nvm.Len() == p.sys.Cap(mm.LocNVM) {
		if err := p.evictNVMToDisk(); err != nil {
			return policy.Result{}, err
		}
	}
	if _, err := p.sys.Place(page, mm.LocNVM); err != nil {
		return policy.Result{}, err
	}
	if err := p.nvm.Insert(page, struct{}{}, true); err != nil {
		return policy.Result{}, err
	}
	p.moves = append(p.moves, policy.Move{
		Page: page, From: mm.LocDisk, To: mm.LocNVM, Reason: policy.ReasonFault})
	return policy.Result{ServedFrom: mm.LocNVM, Fault: true, Moves: p.moves}, nil
}

// Residents returns the page counts of the two rings (for tests).
func (p *Policy) Residents() (dram, nvm int) { return p.dram.Len(), p.nvm.Len() }

// CheckInvariants cross-validates the clock rings against the physical
// memory map.
func (p *Policy) CheckInvariants() error {
	if err := p.dram.CheckInvariants(); err != nil {
		return err
	}
	if err := p.nvm.CheckInvariants(); err != nil {
		return err
	}
	if err := p.sys.CheckInvariants(); err != nil {
		return err
	}
	if p.dram.Len() != p.sys.Residents(mm.LocDRAM) {
		return fmt.Errorf("clockdwf: DRAM ring %d pages, system %d",
			p.dram.Len(), p.sys.Residents(mm.LocDRAM))
	}
	if p.nvm.Len() != p.sys.Residents(mm.LocNVM) {
		return fmt.Errorf("clockdwf: NVM ring %d pages, system %d",
			p.nvm.Len(), p.sys.Residents(mm.LocNVM))
	}
	for _, k := range p.dram.Keys() {
		if p.sys.Loc(k) != mm.LocDRAM {
			return fmt.Errorf("clockdwf: page %d in DRAM ring but at %s", k, p.sys.Loc(k))
		}
	}
	for _, k := range p.nvm.Keys() {
		if p.sys.Loc(k) != mm.LocNVM {
			return fmt.Errorf("clockdwf: page %d in NVM ring but at %s", k, p.sys.Loc(k))
		}
	}
	return nil
}
