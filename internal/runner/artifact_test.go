package runner

import (
	"bytes"
	"strings"
	"testing"
)

func testArtifact() *Artifact {
	a := NewArtifact("sweep", "threshold", 0.02, 1)
	a.Add(Result{
		ID: "raytrace/thr4-6/proposed", Workload: "raytrace", Policy: "proposed", Seed: 1,
		Params: map[string]float64{"read_threshold": 4, "write_threshold": 6},
		Pages:  1200, DRAMPages: 90, NVMPages: 810,
		Metrics: &Metrics{Accesses: 1000, AMATTotalNS: 123.5, PowerTotalNJ: 9.25},
		Values:  map[string]float64{"amat_vs_clock_dwf": 0.4},
	})
	return a
}

func TestArtifactRoundTrip(t *testing.T) {
	a := testArtifact()
	var buf bytes.Buffer
	if err := a.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != Schema || got.Tool != "sweep" || got.Kind != "threshold" {
		t.Errorf("header mangled: %+v", got)
	}
	if len(got.Results) != 1 {
		t.Fatalf("got %d results", len(got.Results))
	}
	r := got.Results[0]
	if r.ID != "raytrace/thr4-6/proposed" || r.Metrics == nil || r.Metrics.AMATTotalNS != 123.5 {
		t.Errorf("result mangled: %+v", r)
	}
	if r.Params["write_threshold"] != 6 || r.Values["amat_vs_clock_dwf"] != 0.4 {
		t.Errorf("maps mangled: %+v", r)
	}
}

func TestArtifactEncodingIsStable(t *testing.T) {
	// Two encodings of equal artifacts are byte-identical (struct field
	// order is fixed and encoding/json sorts map keys).
	a, b := testArtifact(), testArtifact()
	ab, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, bb) {
		t.Error("encodings differ")
	}
	if ab[len(ab)-1] != '\n' {
		t.Error("missing trailing newline")
	}
}

func TestReadArtifactRejectsWrongSchema(t *testing.T) {
	if _, err := ReadArtifact(strings.NewReader(`{"schema":"other/v9"}`)); err == nil {
		t.Error("wrong schema accepted")
	}
	if _, err := ReadArtifact(strings.NewReader(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

func TestArtifactOmitsEmptyFields(t *testing.T) {
	a := NewArtifact("sweep", "wearlevel", 0.02, 1)
	a.Add(Result{ID: "vips/startgap64", Seed: 1, Values: map[string]float64{"gap_moves": 3}})
	b, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	for _, absent := range []string{"metrics", "params", "workload", "dram_pages"} {
		if strings.Contains(s, `"`+absent+`"`) {
			t.Errorf("empty field %q serialized:\n%s", absent, s)
		}
	}
}
