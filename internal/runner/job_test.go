package runner

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"hybridmem/internal/memspec"
	"hybridmem/internal/policy"
	"hybridmem/internal/sim"
)

func testJobs(t *testing.T, n int, tr *Traces) []Job {
	t.Helper()
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{
			ID:    fmt.Sprintf("fake/job%d", i),
			Seed:  int64(i),
			Trace: tr,
			Spec:  memspec.Default(),
			Build: func() (policy.Policy, error) {
				_, _, pages, err := tr.Materialize()
				if err != nil {
					return nil, err
				}
				return policy.NewDRAMOnly(pages)
			},
		}
	}
	return jobs
}

func TestRunJobsPositionalResults(t *testing.T) {
	tr := newFakeTraces(8, 200, nil)
	for _, workers := range []int{1, 8} {
		rs, err := New(workers).RunJobs(testJobs(t, 6, tr))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, r := range rs {
			if r.ID != fmt.Sprintf("fake/job%d", i) {
				t.Errorf("workers=%d: slot %d holds %q", workers, i, r.ID)
			}
			if r.Err != nil {
				t.Errorf("%s: %v", r.ID, r.Err)
			}
			if r.Report == nil || r.Result == nil || r.Policy == nil {
				t.Fatalf("%s: incomplete result", r.ID)
			}
			if r.Report.Accesses != 200 {
				t.Errorf("%s: %d accesses, want 200", r.ID, r.Report.Accesses)
			}
			if r.Elapsed <= 0 {
				t.Errorf("%s: elapsed %v not captured", r.ID, r.Elapsed)
			}
		}
	}
}

func TestRunJobsErrorCapture(t *testing.T) {
	tr := newFakeTraces(8, 100, nil)
	sentinel := errors.New("bad policy")
	jobs := testJobs(t, 4, tr)
	jobs[2].Build = func() (policy.Policy, error) { return nil, sentinel }
	rs, err := New(4).RunJobs(jobs)
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if !strings.Contains(err.Error(), "fake/job2") {
		t.Errorf("error %q does not name the failing job", err)
	}
	if rs[2].Err == nil || rs[2].Report != nil {
		t.Error("failing slot should carry the error and no report")
	}
	// Siblings complete despite the failure.
	for _, i := range []int{0, 1, 3} {
		if rs[i].Err != nil || rs[i].Report == nil {
			t.Errorf("job %d should have succeeded: %v", i, rs[i].Err)
		}
	}
}

func TestRunJobsTraceErrorPropagates(t *testing.T) {
	sentinel := errors.New("trace failed")
	tr := NewTraces(1, func() (TraceGen, error) { return nil, sentinel })
	rs, err := New(2).RunJobs(testJobs(t, 3, tr))
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	for _, r := range rs {
		if !errors.Is(r.Err, sentinel) {
			t.Errorf("%s: err = %v", r.ID, r.Err)
		}
	}
}

// TestRunJobsDeterministicAcrossWidths is the runner-level half of the
// acceptance criterion: identical jobs produce byte-identical artifacts at
// any pool width.
func TestRunJobsDeterministicAcrossWidths(t *testing.T) {
	encode := func(workers int) []byte {
		tr := newFakeTraces(16, 500, nil)
		rs, err := New(workers).RunJobs(testJobs(t, 8, tr))
		if err != nil {
			t.Fatal(err)
		}
		a := NewArtifact("test", "grid", 1, 1)
		for _, r := range rs {
			a.Add(Result{ID: r.ID, Seed: r.Seed, Metrics: MetricsFrom(r.Report)})
		}
		b, err := a.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	serial := encode(1)
	for _, workers := range []int{2, 8, 32} {
		if par := encode(workers); !bytes.Equal(serial, par) {
			t.Errorf("workers=%d: artifact bytes differ from serial run", workers)
		}
	}
}

func TestRunJobsUsesSimOptions(t *testing.T) {
	// CheckEvery exercises the simulator's invariant-checking path end to
	// end through the runner.
	tr := newFakeTraces(8, 100, nil)
	jobs := testJobs(t, 1, tr)
	jobs[0].Opts = sim.Options{CheckEvery: 10}
	rs, err := New(1).RunJobs(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Err != nil {
		t.Fatal(rs[0].Err)
	}
}
