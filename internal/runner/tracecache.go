package runner

import (
	"sync"
	"sync/atomic"

	"hybridmem/internal/trace"
	"hybridmem/internal/workload"
)

// TraceGen is the generator shape the cache materializes: a deterministic
// ROI stream plus the pre-ROI warmup stream and the scaled footprint.
// workload.Generator and workload.Mix both satisfy it.
type TraceGen interface {
	trace.Source
	WarmupSource(seed int64) trace.Source
	Pages() int
}

// Traces is a lazily materialized (warmup, ROI) trace pair. Materialize is
// safe for concurrent use and generates at most once; every caller after
// the first gets the same read-only slices. Jobs replay them through fresh
// trace.SliceSource cursors, so one cached trace feeds any number of
// concurrent simulations.
type Traces struct {
	seed int64
	make func() (TraceGen, error)

	once  sync.Once
	ready atomic.Bool
	onGen func()

	warm, roi []trace.Record
	pages     int
	err       error
}

// Ready reports whether the traces are already materialized. Callers that
// can stream a generator in constant memory (characterization passes) use
// it to reuse an existing materialization without forcing one.
func (t *Traces) Ready() bool { return t.ready.Load() }

// NewTraces returns an uncached handle over an arbitrary generator factory
// (used for mixes and other one-off streams). The warmup stream is seeded
// with seed+1, matching the evaluation methodology: the warmup is a
// distinct pre-ROI initialization pass, not a replay of the ROI.
func NewTraces(seed int64, gen func() (TraceGen, error)) *Traces {
	return &Traces{seed: seed, make: gen}
}

// Materialize generates (once) and returns the warmup stream, the ROI
// stream and the scaled page footprint. The returned slices are shared:
// callers must treat them as read-only and wrap them in trace.SliceSource
// for replay.
func (t *Traces) Materialize() (warm, roi []trace.Record, pages int, err error) {
	t.once.Do(func() {
		gen, err := t.make()
		if err != nil {
			t.err = err
			return
		}
		if t.warm, err = trace.Materialize(gen.WarmupSource(t.seed+1), 0); err != nil {
			t.err = err
			return
		}
		if t.roi, err = trace.Materialize(gen, 0); err != nil {
			t.err = err
			return
		}
		t.pages = gen.Pages()
		t.ready.Store(true)
		if t.onGen != nil {
			t.onGen()
		}
	})
	return t.warm, t.roi, t.pages, t.err
}

// Sources returns warmup and ROI streams plus the scaled footprint:
// replaying the materialized slices when generation already happened,
// otherwise streaming a fresh generator in constant memory. For
// consumers that only fold the stream into counters (characterization,
// hit-ratio studies), this avoids pinning full record slices just to
// read them once.
func (t *Traces) Sources() (warm, roi trace.Source, pages int, err error) {
	if t.Ready() {
		w, r, p, err := t.Materialize()
		if err != nil {
			return nil, nil, 0, err
		}
		return trace.NewSliceSource(w), trace.NewSliceSource(r), p, nil
	}
	gen, err := t.make()
	if err != nil {
		return nil, nil, 0, err
	}
	return gen.WarmupSource(t.seed + 1), gen, gen.Pages(), nil
}

// traceKey identifies one deterministic trace: a workload name at a scale
// and seed. Everything else (thresholds, sizing, memory technology) leaves
// the trace untouched, which is what makes the cache profitable — an
// 8-point threshold sweep replays one generation 8×4 times.
type traceKey struct {
	name  string
	scale float64
	seed  int64
}

// TraceCache shares materialized traces across jobs. It is safe for
// concurrent use; each distinct (workload, scale, seed) is generated
// exactly once no matter how many jobs request it or how wide the pool is.
type TraceCache struct {
	mu      sync.Mutex
	entries map[traceKey]*Traces
	gens    atomic.Int64
}

// NewTraceCache returns an empty cache.
func NewTraceCache() *TraceCache {
	return &TraceCache{entries: make(map[traceKey]*Traces)}
}

// Get returns the cache's handle for spec at (scale, seed), creating it on
// first request. Generation is deferred to the first Materialize call, so
// it runs on a pool worker rather than the scheduling goroutine.
func (c *TraceCache) Get(spec workload.Spec, scale float64, seed int64) *Traces {
	k := traceKey{name: spec.Name, scale: scale, seed: seed}
	c.mu.Lock()
	defer c.mu.Unlock()
	if t, ok := c.entries[k]; ok {
		return t
	}
	t := NewTraces(seed, func() (TraceGen, error) {
		return workload.NewGenerator(spec, scale, seed)
	})
	t.onGen = func() { c.gens.Add(1) }
	c.entries[k] = t
	return t
}

// Generations reports how many traces have actually been generated — the
// observable behind the cache's "exactly once per spec" contract.
func (c *TraceCache) Generations() int64 { return c.gens.Load() }

// Len returns the number of distinct trace keys requested so far.
func (c *TraceCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
