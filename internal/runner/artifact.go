package runner

import (
	"encoding/json"
	"fmt"
	"io"

	"hybridmem/internal/model"
)

// Schema is the artifact format identifier. Bump the suffix on any
// breaking change to the JSON layout so downstream diff tooling can
// refuse mixed-version comparisons.
const Schema = "hybridmem.results/v1"

// Artifact is the machine-readable outcome of one experiment invocation:
// a header identifying the run configuration plus one Result per job.
// Encoding is deterministic — struct field order is fixed, map keys are
// sorted by encoding/json, and no wall-clock values are included — so the
// same (tool, kind, scale, seed) produces byte-identical bytes at any
// parallelism, which CI exploits to diff results run over run.
type Artifact struct {
	Schema string `json:"schema"`
	// Tool and Kind identify the producer ("sweep"/"threshold",
	// "figures"/"grid", ...).
	Tool string `json:"tool"`
	Kind string `json:"kind"`
	// Scale and Seed echo the invocation's trace configuration.
	Scale float64 `json:"scale"`
	Seed  int64   `json:"seed"`
	// Adaptive records whether the proposed scheme ran with adaptive
	// thresholds, so fixed and adaptive grids are never silently
	// diff-compared as the same experiment.
	Adaptive bool `json:"adaptive,omitempty"`
	// Results holds one entry per job, in job order.
	Results []Result `json:"results"`
}

// Result is one job's evaluated outcome.
type Result struct {
	ID       string `json:"id"`
	Workload string `json:"workload,omitempty"`
	Policy   string `json:"policy,omitempty"`
	Seed     int64  `json:"seed"`
	// Params records the sweep knobs that produced this point
	// (thresholds, DRAM share, page factor, ...).
	Params map[string]float64 `json:"params,omitempty"`
	// Pages/DRAMPages/NVMPages echo the provisioning.
	Pages     int `json:"pages,omitempty"`
	DRAMPages int `json:"dram_pages,omitempty"`
	NVMPages  int `json:"nvm_pages,omitempty"`
	// Metrics is the model evaluation (absent for results that are not
	// simulation runs, e.g. wear-leveling ablations).
	Metrics *Metrics `json:"metrics,omitempty"`
	// Values carries derived or auxiliary scalars (normalized ratios,
	// endurance figures).
	Values map[string]float64 `json:"values,omitempty"`
}

// Metrics flattens a model.Report into stable JSON fields: the Eq. 1 AMAT
// breakdown (ns/access), the Eq. 2+3 energy breakdown (nJ/access), the
// endurance write counts and the Table I probabilities that downstream
// analyses normalize by.
type Metrics struct {
	Accesses            int64   `json:"accesses"`
	AMATTotalNS         float64 `json:"amat_total_ns"`
	AMATHitsNS          float64 `json:"amat_hits_ns"`
	AMATMigrationsNS    float64 `json:"amat_migrations_ns"`
	AMATMissNS          float64 `json:"amat_miss_ns"`
	PowerTotalNJ        float64 `json:"power_total_nj"`
	PowerStaticNJ       float64 `json:"power_static_nj"`
	PowerDynamicNJ      float64 `json:"power_dynamic_nj"`
	PowerPageFaultNJ    float64 `json:"power_pagefault_nj"`
	PowerMigrationNJ    float64 `json:"power_migration_nj"`
	NVMWritesTotal      int64   `json:"nvm_writes_total"`
	NVMWritesRequests   int64   `json:"nvm_writes_requests"`
	NVMWritesPageFault  int64   `json:"nvm_writes_pagefault"`
	NVMWritesMigration  int64   `json:"nvm_writes_migration"`
	DRAMHitRatio        float64 `json:"dram_hit_ratio"`
	NVMHitRatio         float64 `json:"nvm_hit_ratio"`
	MissRatio           float64 `json:"miss_ratio"`
	PromotionsPerAccess float64 `json:"promotions_per_access"`
	DemotionsPerAccess  float64 `json:"demotions_per_access"`
	RuntimeNS           float64 `json:"runtime_ns"`
}

// MetricsFrom flattens a report.
func MetricsFrom(r *model.Report) *Metrics {
	return &Metrics{
		Accesses:            r.Accesses,
		AMATTotalNS:         r.AMAT.Total(),
		AMATHitsNS:          r.AMAT.HitDRAM + r.AMAT.HitNVM,
		AMATMigrationsNS:    r.AMAT.Migrations(),
		AMATMissNS:          r.AMAT.Miss,
		PowerTotalNJ:        r.APPR.Total(),
		PowerStaticNJ:       r.APPR.Static,
		PowerDynamicNJ:      r.APPR.Dynamic(),
		PowerPageFaultNJ:    r.APPR.PageFault(),
		PowerMigrationNJ:    r.APPR.Migration(),
		NVMWritesTotal:      r.NVMWrites.Total(),
		NVMWritesRequests:   r.NVMWrites.Requests,
		NVMWritesPageFault:  r.NVMWrites.PageFault,
		NVMWritesMigration:  r.NVMWrites.Migration,
		DRAMHitRatio:        r.Probabilities.PHitDRAM,
		NVMHitRatio:         r.Probabilities.PHitNVM,
		MissRatio:           r.Probabilities.PMiss,
		PromotionsPerAccess: r.Probabilities.PMigD,
		DemotionsPerAccess:  r.Probabilities.PMigN,
		RuntimeNS:           r.RuntimeNS,
	}
}

// NewArtifact returns an artifact header for one invocation.
func NewArtifact(tool, kind string, scale float64, seed int64) *Artifact {
	return &Artifact{Schema: Schema, Tool: tool, Kind: kind, Scale: scale, Seed: seed}
}

// Add appends a result.
func (a *Artifact) Add(r Result) { a.Results = append(a.Results, r) }

// Encode renders the artifact as indented JSON with a trailing newline.
func (a *Artifact) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("runner: encoding artifact: %w", err)
	}
	return append(b, '\n'), nil
}

// Write encodes the artifact to w.
func (a *Artifact) Write(w io.Writer) error {
	b, err := a.Encode()
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// ReadArtifact decodes an artifact and checks its schema, the entry point
// for run-over-run diff tooling.
func ReadArtifact(r io.Reader) (*Artifact, error) {
	var a Artifact
	dec := json.NewDecoder(r)
	if err := dec.Decode(&a); err != nil {
		return nil, fmt.Errorf("runner: decoding artifact: %w", err)
	}
	if a.Schema != Schema {
		return nil, fmt.Errorf("runner: artifact schema %q, want %q", a.Schema, Schema)
	}
	return &a, nil
}
