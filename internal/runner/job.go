package runner

import (
	"fmt"
	"time"

	"hybridmem/internal/memspec"
	"hybridmem/internal/model"
	"hybridmem/internal/policy"
	"hybridmem/internal/sim"
	"hybridmem/internal/trace"
)

// Job is one schedulable simulation unit: a policy instance replaying one
// cached trace under one memory spec. The runner materializes the trace
// (shared, at most once), builds the policy, services the warmup pass with
// statistics discarded, simulates the ROI and evaluates the paper's models.
type Job struct {
	// ID names the job in results, errors and artifacts
	// (e.g. "ferret/proposed" or "raytrace/thr16-24/proposed").
	ID string
	// Seed is the RNG seed governing the job's trace, recorded into the
	// result for artifact provenance.
	Seed int64
	// Trace is the shared trace handle; jobs with equal configuration
	// should share one handle so generation happens once.
	Trace *Traces
	// Build constructs the policy. It runs after the trace is
	// materialized, so it may call Trace.Materialize to size zones from
	// the scaled footprint at no extra cost.
	Build func() (policy.Policy, error)
	// Spec is the memory-technology parameter set for timing and energy.
	Spec memspec.Spec
	// Opts forwards simulator options (invariant checking).
	Opts sim.Options
}

// JobResult captures one job's outcome: the simulation counters, the model
// evaluation, the policy instance (for post-run introspection such as the
// adaptive controller's settled thresholds), wall-clock timing and any
// error. Timing is diagnostic only and deliberately excluded from JSON
// artifacts, which must be byte-stable across runs.
type JobResult struct {
	ID      string
	Seed    int64
	Policy  policy.Policy
	Result  *sim.Result
	Report  *model.Report
	Elapsed time.Duration
	Err     error
}

// RunJobs executes jobs across the pool and returns their results in job
// order. Every job runs even when siblings fail; per-job errors land in
// JobResult.Err, and the returned error is the lowest-index failure (nil
// when all jobs succeed). Slot i always belongs to jobs[i], so downstream
// assembly is deterministic at any pool width.
func (p *Pool) RunJobs(jobs []Job) ([]JobResult, error) {
	results, err := Map(p, len(jobs), func(i int) (JobResult, error) {
		r := runJob(&jobs[i])
		return r, r.Err
	})
	return results, err
}

func runJob(j *Job) JobResult {
	start := time.Now()
	res := JobResult{ID: j.ID, Seed: j.Seed}
	fail := func(err error) JobResult {
		res.Err = fmt.Errorf("%s: %w", j.ID, err)
		res.Elapsed = time.Since(start)
		return res
	}
	warm, roi, _, err := j.Trace.Materialize()
	if err != nil {
		return fail(err)
	}
	pol, err := j.Build()
	if err != nil {
		return fail(err)
	}
	// Warmup pass: fills memory, statistics discarded.
	if _, err := sim.Run(trace.NewSliceSource(warm), pol, j.Spec, j.Opts); err != nil {
		return fail(fmt.Errorf("warmup: %w", err))
	}
	simRes, err := sim.Run(trace.NewSliceSource(roi), pol, j.Spec, j.Opts)
	if err != nil {
		return fail(err)
	}
	rep, err := model.Evaluate(simRes, j.Spec)
	if err != nil {
		return fail(fmt.Errorf("evaluate: %w", err))
	}
	res.Policy = pol
	res.Result = simRes
	res.Report = rep
	res.Elapsed = time.Since(start)
	return res
}
