package runner

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestPoolWidths(t *testing.T) {
	if got := New(0).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("New(0) = %d workers, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := New(-3).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("New(-3) = %d workers, want GOMAXPROCS", got)
	}
	if got := New(7).Workers(); got != 7 {
		t.Errorf("New(7) = %d workers", got)
	}
}

func TestDoRunsEveryIndexAtAnyWidth(t *testing.T) {
	for _, workers := range []int{1, 2, 16, 100} {
		var hits [57]atomic.Int64
		err := New(workers).Do(len(hits), func(i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if n := hits[i].Load(); n != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, n)
			}
		}
	}
}

func TestDoEmpty(t *testing.T) {
	if err := New(4).Do(0, func(int) error { t.Fatal("fn called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestDoReturnsLowestIndexError(t *testing.T) {
	sentinel := errors.New("boom")
	for _, workers := range []int{1, 8} {
		var ran atomic.Int64
		err := New(workers).Do(20, func(i int) error {
			ran.Add(1)
			if i == 3 || i == 17 {
				return fmt.Errorf("index %d: %w", i, sentinel)
			}
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: err = %v, want wrapped sentinel", workers, err)
		}
		// The reported failure is the lowest failing index, so error
		// output is deterministic regardless of scheduling.
		if want := "runner: job 3:"; err == nil || len(err.Error()) < len(want) || err.Error()[:len(want)] != want {
			t.Errorf("workers=%d: err = %q, want prefix %q", workers, err, want)
		}
		// All indices still ran despite the failures.
		if n := ran.Load(); n != 20 {
			t.Errorf("workers=%d: ran %d of 20 indices", workers, n)
		}
	}
}

func TestMapPreservesOrder(t *testing.T) {
	for _, workers := range []int{1, 4, 32} {
		out, err := Map(New(workers), 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapPartialResultsOnError(t *testing.T) {
	out, err := Map(New(4), 10, func(i int) (string, error) {
		if i == 5 {
			return "", errors.New("nope")
		}
		return fmt.Sprintf("v%d", i), nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if out[4] != "v4" || out[6] != "v6" {
		t.Errorf("successful slots not populated: %q %q", out[4], out[6])
	}
	if out[5] != "" {
		t.Errorf("failed slot = %q, want zero value", out[5])
	}
}

func TestDeriveSeed(t *testing.T) {
	a := DeriveSeed(1, "job/a")
	if b := DeriveSeed(1, "job/a"); b != a {
		t.Errorf("not deterministic: %d vs %d", a, b)
	}
	if b := DeriveSeed(1, "job/b"); b == a {
		t.Errorf("identity collision: %d", b)
	}
	if b := DeriveSeed(2, "job/a"); b == a {
		t.Errorf("base seed ignored: %d", b)
	}
	seen := make(map[int64]bool)
	for i := 0; i < 1000; i++ {
		s := DeriveSeed(42, fmt.Sprintf("seed-study/%d", i))
		if s < 0 {
			t.Fatalf("negative seed %d", s)
		}
		if seen[s] {
			t.Fatalf("collision at %d", i)
		}
		seen[s] = true
	}
}
