package runner

import (
	"fmt"
	"testing"

	"hybridmem/internal/memspec"
	"hybridmem/internal/policy"
)

// BenchmarkRunJobs measures worker-pool scheduling plus simulation over a
// cached trace at serial and parallel widths.
func BenchmarkRunJobs(b *testing.B) {
	for _, workers := range []int{1, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=gomaxprocs"
		}
		b.Run(name, func(b *testing.B) {
			tr := newFakeTraces(64, 20000, nil)
			if _, _, _, err := tr.Materialize(); err != nil {
				b.Fatal(err)
			}
			pool := New(workers)
			jobs := make([]Job, 8)
			for j := range jobs {
				jobs[j] = Job{
					ID:    fmt.Sprintf("bench/job%d", j),
					Trace: tr,
					Spec:  memspec.Default(),
					Build: func() (policy.Policy, error) {
						_, _, pages, err := tr.Materialize()
						if err != nil {
							return nil, err
						}
						return policy.NewDRAMOnly(pages)
					},
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pool.RunJobs(jobs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
