package runner

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"hybridmem/internal/trace"
	"hybridmem/internal/workload"
)

// fakeGen is a tiny deterministic TraceGen for unit tests: a round-robin
// sweep over pages with alternating reads and writes.
type fakeGen struct {
	pages, total, emitted int
}

func (g *fakeGen) Next() (trace.Record, bool) {
	if g.emitted >= g.total {
		return trace.Record{}, false
	}
	i := g.emitted
	g.emitted++
	op := trace.OpRead
	if i%2 == 1 {
		op = trace.OpWrite
	}
	return trace.Record{Addr: uint64(i%g.pages) * 4096, Op: op, GapNS: 10}, true
}

func (g *fakeGen) WarmupSource(seed int64) trace.Source {
	i := 0
	return trace.FuncSource(func() (trace.Record, bool) {
		if i >= g.pages {
			return trace.Record{}, false
		}
		r := trace.Record{Addr: uint64(i) * 4096, Op: trace.OpRead}
		i++
		return r, true
	})
}

func (g *fakeGen) Pages() int { return g.pages }

func newFakeTraces(pages, total int, gens *atomic.Int64) *Traces {
	tr := NewTraces(1, func() (TraceGen, error) {
		return &fakeGen{pages: pages, total: total}, nil
	})
	if gens != nil {
		tr.onGen = func() { gens.Add(1) }
	}
	return tr
}

func TestTracesMaterializeOnce(t *testing.T) {
	var gens atomic.Int64
	tr := newFakeTraces(8, 100, &gens)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			warm, roi, pages, err := tr.Materialize()
			if err != nil {
				t.Error(err)
				return
			}
			if len(warm) != 8 || len(roi) != 100 || pages != 8 {
				t.Errorf("got warm=%d roi=%d pages=%d", len(warm), len(roi), pages)
			}
		}()
	}
	wg.Wait()
	if n := gens.Load(); n != 1 {
		t.Errorf("generated %d times, want exactly 1", n)
	}
}

func TestTracesError(t *testing.T) {
	sentinel := errors.New("gen failed")
	tr := NewTraces(1, func() (TraceGen, error) { return nil, sentinel })
	if _, _, _, err := tr.Materialize(); !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want sentinel", err)
	}
	// The error is sticky: generation is not retried.
	if _, _, _, err := tr.Materialize(); !errors.Is(err, sentinel) {
		t.Errorf("second call err = %v", err)
	}
}

func TestTraceCacheExactlyOncePerSpec(t *testing.T) {
	spec, ok := workload.ByName("blackscholes")
	if !ok {
		t.Fatal("blackscholes missing")
	}
	c := NewTraceCache()
	tr := c.Get(spec, 0.01, 1)
	if again := c.Get(spec, 0.01, 1); again != tr {
		t.Error("same key returned a different handle")
	}
	// Concurrent materialization through the pool: one generation.
	err := New(8).Do(32, func(i int) error {
		_, _, _, err := c.Get(spec, 0.01, 1).Materialize()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := c.Generations(); n != 1 {
		t.Errorf("generated %d times, want exactly 1", n)
	}
	// A different seed or scale is a different trace.
	if c.Get(spec, 0.01, 2) == tr || c.Get(spec, 0.02, 1) == tr {
		t.Error("distinct keys shared a handle")
	}
	if c.Len() != 3 {
		t.Errorf("cache has %d entries, want 3", c.Len())
	}
	if n := c.Generations(); n != 1 {
		t.Errorf("Get alone should not generate: %d", n)
	}
}

func TestTraceCacheReplayIsStable(t *testing.T) {
	spec, _ := workload.ByName("blackscholes")
	c := NewTraceCache()
	_, roi, _, err := c.Get(spec, 0.01, 1).Materialize()
	if err != nil {
		t.Fatal(err)
	}
	// A second cache regenerates; streams must be bit-identical.
	_, roi2, _, err := NewTraceCache().Get(spec, 0.01, 1).Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if len(roi) != len(roi2) {
		t.Fatalf("lengths differ: %d vs %d", len(roi), len(roi2))
	}
	for i := range roi {
		if roi[i] != roi2[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, roi[i], roi2[i])
		}
	}
}
