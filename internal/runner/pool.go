// Package runner is the shared experiment-execution layer: a worker pool
// that schedules simulation jobs across CPUs, a trace cache that generates
// each workload trace once and replays it read-only into every run, and a
// stable JSON artifact schema for machine-readable results.
//
// The package sits between the simulation driver (internal/sim and the
// policies) and the evaluation harness (internal/experiments): experiments
// decomposes grids and sweeps into Jobs, the runner executes them with
// deterministic ordering, and artifacts make the outcome diffable run over
// run. Results are positional — job i's result lands in slot i regardless
// of scheduling — so the same configuration and seed produce byte-identical
// artifacts at any parallelism.
package runner

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
)

// Pool schedules work across a fixed number of workers. The zero-cost way
// to run serially is New(1); New(0) sizes the pool to GOMAXPROCS.
type Pool struct {
	workers int
}

// New returns a pool of the given width. Non-positive widths (including 0,
// the "auto" value of the -parallel CLI flags) select GOMAXPROCS workers.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the pool width.
func (p *Pool) Workers() int { return p.workers }

// Do runs fn(i) for every i in [0, n) across the pool's workers and waits
// for all of them. Every index runs even when some fail; the returned error
// is the failure with the lowest index, so error reporting is deterministic
// regardless of scheduling order.
func (p *Pool) Do(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
		}
		return firstError(errs)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return firstError(errs)
}

func firstError(errs []error) error {
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("runner: job %d: %w", i, err)
		}
	}
	return nil
}

// Map runs fn(i) for every i in [0, n) on the pool and returns the results
// in index order. Like Do, all indices run; the error is the lowest-index
// failure. The partially filled slice is returned alongside the error so
// callers that tolerate per-item failures can inspect it.
func Map[T any](p *Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := p.Do(n, func(i int) error {
		v, err := fn(i)
		out[i] = v
		return err
	})
	return out, err
}

// DeriveSeed maps a base seed and a job identity string to a new seed,
// deterministically and with good dispersion (FNV-1a over the identity,
// mixed with the base through a splitmix64 round). Jobs that need distinct
// RNG streams — seed studies, replicated runs — derive them from one
// user-facing seed without coordinating offsets.
func DeriveSeed(base int64, id string) int64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	z := uint64(base) + 0x9e3779b97f4a7c15 + h.Sum64()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	// Keep seeds non-negative: CLI flags and specs treat seeds as int64
	// values that should survive round-trips through decimal text.
	return int64(z &^ (1 << 63))
}
