package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestMean(t *testing.T) {
	m, err := Mean([]float64{1, 2, 3, 4})
	if err != nil || !almostEqual(m, 2.5) {
		t.Errorf("Mean = %v, %v; want 2.5, nil", m, err)
	}
	if _, err := Mean(nil); err != ErrEmpty {
		t.Errorf("Mean(nil) err = %v, want ErrEmpty", err)
	}
}

func TestGeoMean(t *testing.T) {
	m, err := GeoMean([]float64{1, 4})
	if err != nil || !almostEqual(m, 2) {
		t.Errorf("GeoMean = %v, %v; want 2, nil", m, err)
	}
	if _, err := GeoMean([]float64{1, 0}); err == nil {
		t.Error("GeoMean with zero should error")
	}
	if _, err := GeoMean(nil); err != ErrEmpty {
		t.Errorf("GeoMean(nil) err = %v, want ErrEmpty", err)
	}
}

func TestGeoMeanLEMeanProperty(t *testing.T) {
	// AM-GM inequality: geometric mean never exceeds arithmetic mean.
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, r := range raw {
			if v := math.Abs(r); v > 1e-6 && v < 1e6 && !math.IsNaN(v) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		g := MustGeoMean(xs)
		a := MustMean(xs)
		return g <= a*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	for _, x := range []float64{3, 1, 4, 1, 5} {
		s.Add(x)
	}
	if s.N() != 5 {
		t.Errorf("N = %d, want 5", s.N())
	}
	if !almostEqual(s.Sum(), 14) {
		t.Errorf("Sum = %v, want 14", s.Sum())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Errorf("Min/Max = %v/%v, want 1/5", s.Min(), s.Max())
	}
	if !almostEqual(s.Mean(), 2.8) {
		t.Errorf("Mean = %v, want 2.8", s.Mean())
	}
	wantVar := (9.0+1+16+1+25)/5 - 2.8*2.8
	if !almostEqual(s.Variance(), wantVar) {
		t.Errorf("Variance = %v, want %v", s.Variance(), wantVar)
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 || s.N() != 0 {
		t.Error("empty summary should be all zeros")
	}
}

func TestSummaryMatchesBatchProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				clean = append(clean, x)
			}
		}
		var s Summary
		for _, x := range clean {
			s.Add(x)
		}
		if len(clean) == 0 {
			return s.N() == 0
		}
		batch := MustMean(clean)
		return math.Abs(s.Mean()-batch) <= 1e-6*(1+math.Abs(batch))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	for _, tc := range []struct{ p, want float64 }{
		{0, 10}, {20, 10}, {50, 30}, {100, 50},
	} {
		got, err := Percentile(xs, tc.p)
		if err != nil || got != tc.want {
			t.Errorf("Percentile(%v) = %v, %v; want %v", tc.p, got, err, tc.want)
		}
	}
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Error("Percentile(nil) should return ErrEmpty")
	}
	if _, err := Percentile(xs, 150); err == nil {
		t.Error("Percentile(150) should error")
	}
	// Input must not be reordered.
	if xs[0] != 10 || xs[4] != 50 {
		t.Error("Percentile modified its input")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 100} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d, want 7", h.Total())
	}
	// -1, 0, 1.9 in bucket 0; 2 in bucket 1; 9.99, 10, 100 in bucket 4.
	want := []int64{3, 1, 0, 0, 3}
	for i, w := range want {
		if h.Count(i) != w {
			t.Errorf("bucket %d = %d, want %d", i, h.Count(i), w)
		}
	}
	if !almostEqual(h.Fraction(0), 3.0/7) {
		t.Errorf("Fraction(0) = %v, want 3/7", h.Fraction(0))
	}
}

func TestHistogramPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for hi <= lo")
		}
	}()
	NewHistogram(5, 5, 3)
}
