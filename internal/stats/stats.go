// Package stats provides the small statistical toolkit used across the
// simulator: arithmetic and geometric means (the paper reports both as
// "A-Mean" and "G-Mean" columns), streaming summaries, and histograms for
// workload characterization.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by aggregate functions invoked on empty inputs.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// GeoMean returns the geometric mean of xs. All values must be positive;
// the paper's normalized metrics always are.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	logSum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, errors.New("stats: geometric mean requires positive values")
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs))), nil
}

// MustMean is Mean for inputs known to be non-empty (panics otherwise).
func MustMean(xs []float64) float64 {
	m, err := Mean(xs)
	if err != nil {
		panic(err)
	}
	return m
}

// MustGeoMean is GeoMean for inputs known to be valid (panics otherwise).
func MustGeoMean(xs []float64) float64 {
	m, err := GeoMean(xs)
	if err != nil {
		panic(err)
	}
	return m
}

// Summary accumulates order-free statistics of a value stream.
type Summary struct {
	n          int64
	sum, sumSq float64
	min, max   float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	if s.n == 0 || x < s.min {
		s.min = x
	}
	if s.n == 0 || x > s.max {
		s.max = x
	}
	s.n++
	s.sum += x
	s.sumSq += x * x
}

// N returns the number of observations recorded.
func (s *Summary) N() int64 { return s.n }

// Sum returns the total of all observations.
func (s *Summary) Sum() float64 { return s.sum }

// Min returns the smallest observation (0 if none).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 if none).
func (s *Summary) Max() float64 { return s.max }

// Mean returns the arithmetic mean (0 if no observations).
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Variance returns the population variance (0 if fewer than 2 observations).
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	m := s.Mean()
	v := s.sumSq/float64(s.n) - m*m
	if v < 0 { // numerical noise
		return 0
	}
	return v
}

// StdDev returns the population standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// nearest-rank on a sorted copy. It does not modify xs.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile outside [0,100]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p == 0 {
		return sorted[0], nil
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	return sorted[rank-1], nil
}

// Histogram counts observations into fixed-width buckets over [lo, hi).
// Out-of-range observations land in saturating end buckets.
type Histogram struct {
	lo, width float64
	counts    []int64
	total     int64
}

// NewHistogram creates a histogram with n buckets spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{lo: lo, width: (hi - lo) / float64(n), counts: make([]int64, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := int((x - h.lo) / h.width)
	if i < 0 {
		i = 0
	}
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	h.counts[i]++
	h.total++
}

// Count returns the number of observations in bucket i.
func (h *Histogram) Count(i int) int64 { return h.counts[i] }

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int { return len(h.counts) }

// Total returns the number of observations recorded.
func (h *Histogram) Total() int64 { return h.total }

// Fraction returns the share of observations in bucket i (0 if empty).
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[i]) / float64(h.total)
}
