package workload

import (
	"testing"
	"testing/quick"

	"hybridmem/internal/trace"
)

func TestAllSpecsValid(t *testing.T) {
	specs := PARSEC()
	if len(specs) != 12 {
		t.Fatalf("got %d workloads, want 12 (Table III minus swaptions)", len(specs))
	}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestTableIIIValues(t *testing.T) {
	// Spot-check the characterization columns against Table III verbatim.
	cases := []struct {
		name   string
		wssKB  int
		reads  int64
		writes int64
	}{
		{"blackscholes", 5188, 26242, 0},
		{"canneal", 164768, 24432900, 653623},
		{"streamcluster", 15452, 168666464, 448612},
		{"vips", 115380, 5802657, 4117660},
	}
	for _, c := range cases {
		s, ok := ByName(c.name)
		if !ok {
			t.Fatalf("%s missing", c.name)
		}
		if s.WorkingSetKB != c.wssKB || s.Reads != c.reads || s.Writes != c.writes {
			t.Errorf("%s = %d KB / %d R / %d W, want %d/%d/%d",
				c.name, s.WorkingSetKB, s.Reads, s.Writes, c.wssKB, c.reads, c.writes)
		}
	}
}

func TestByNameMissing(t *testing.T) {
	if _, ok := ByName("swaptions"); ok {
		t.Error("swaptions is excluded by the paper and must not exist")
	}
	if len(Names()) != 12 {
		t.Error("Names() length wrong")
	}
}

func TestGeneratorValidation(t *testing.T) {
	spec, _ := ByName("bodytrack")
	if _, err := NewGenerator(spec, 0, 1); err == nil {
		t.Error("zero scale should error")
	}
	if _, err := NewGenerator(spec, 1.5, 1); err == nil {
		t.Error("scale > 1 should error")
	}
	bad := spec
	bad.Pattern.HotFraction = 0.9 // > ResidentFraction
	if _, err := NewGenerator(bad, 1, 1); err == nil {
		t.Error("invalid pattern should error")
	}
	// A pathological archive-visit rate leaves no room in the stream.
	dense := spec
	dense.Pattern.ROIArchiveVisits = 1e7
	if _, err := NewGenerator(dense, 0.01, 1); err == nil {
		t.Error("archive visits exceeding the stream length should error")
	}
}

// characterize drains a generator and verifies its advertised exactness.
func characterize(t *testing.T, name string, scale float64) (*Generator, *trace.Stats) {
	t.Helper()
	spec, ok := ByName(name)
	if !ok {
		t.Fatalf("%s missing", name)
	}
	g, err := NewGenerator(spec, scale, 42)
	if err != nil {
		t.Fatal(err)
	}
	st := trace.CollectStats(g, PageSizeBytes)
	return g, st
}

func TestExactCountsAndFootprint(t *testing.T) {
	for _, name := range Names() {
		spec, _ := ByName(name)
		scale := 0.01
		g, st := characterize(t, name, scale)
		wantReads := scaleInt64(spec.Reads, scale)
		wantWrites := scaleInt64(spec.Writes, scale)
		if st.Reads != wantReads || st.Writes != wantWrites {
			t.Errorf("%s: reads/writes = %d/%d, want %d/%d",
				name, st.Reads, st.Writes, wantReads, wantWrites)
		}
		// The ROI stays inside the footprint; the exact working set is the
		// union with the warmup stream (tested below).
		if st.FootprintPages() > g.Pages() {
			t.Errorf("%s: ROI footprint %d pages exceeds %d",
				name, st.FootprintPages(), g.Pages())
		}
		if st.Total() != g.TotalAccesses() {
			t.Errorf("%s: total %d, want %d", name, st.Total(), g.TotalAccesses())
		}
	}
}

func TestWarmupPlusROIFootprintExact(t *testing.T) {
	for _, name := range Names() {
		spec, _ := ByName(name)
		g, err := NewGenerator(spec, 0.01, 42)
		if err != nil {
			t.Fatal(err)
		}
		st := trace.CollectStats(trace.Concat(g.WarmupSource(43), g), PageSizeBytes)
		if st.FootprintPages() != g.Pages() {
			t.Errorf("%s: warmup+ROI footprint %d pages, want exactly %d",
				name, st.FootprintPages(), g.Pages())
		}
	}
}

func TestFullScaleCharacterizationBlackscholes(t *testing.T) {
	// blackscholes is small enough to regenerate Table III at scale 1: the
	// ROI reproduces the request counts exactly and the whole trace
	// (warmup + ROI) reproduces the working-set size exactly.
	spec, _ := ByName("blackscholes")
	g, err := NewGenerator(spec, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	st := trace.CollectStats(trace.Concat(g.WarmupSource(43), g), PageSizeBytes)
	if st.Reads < 26242 || st.Writes != 0 {
		t.Errorf("reads/writes = %d/%d, want >= 26242 reads (warmup adds reads), 0 writes", st.Reads, st.Writes)
	}
	if st.WorkingSetKB() != 5188 {
		t.Errorf("WSS = %d KB, want 5188", st.WorkingSetKB())
	}
	g2, _ := NewGenerator(spec, 1, 42)
	roi := trace.CollectStats(g2, PageSizeBytes)
	if roi.Reads != 26242 || roi.Writes != 0 {
		t.Errorf("ROI reads/writes = %d/%d, want 26242/0", roi.Reads, roi.Writes)
	}
}

func TestDeterminism(t *testing.T) {
	spec, _ := ByName("raytrace")
	g1, _ := NewGenerator(spec, 0.01, 7)
	g2, _ := NewGenerator(spec, 0.01, 7)
	g3, _ := NewGenerator(spec, 0.01, 8)
	same, diff := true, false
	for {
		r1, ok1 := g1.Next()
		r2, ok2 := g2.Next()
		r3, ok3 := g3.Next()
		if ok1 != ok2 || ok1 != ok3 {
			t.Fatal("stream lengths diverged")
		}
		if !ok1 {
			break
		}
		if r1 != r2 {
			same = false
		}
		if r1 != r3 {
			diff = true
		}
	}
	if !same {
		t.Error("same seed must replay the same stream")
	}
	if !diff {
		t.Error("different seed should produce a different stream")
	}
}

func TestAddressesWithinFootprint(t *testing.T) {
	for _, name := range []string{"canneal", "streamcluster", "dedup"} {
		spec, _ := ByName(name)
		g, err := NewGenerator(spec, 0.005, 3)
		if err != nil {
			t.Fatal(err)
		}
		limit := uint64(g.Pages()) * PageSizeBytes
		for {
			r, ok := g.Next()
			if !ok {
				break
			}
			if r.Addr >= limit {
				t.Fatalf("%s: address %#x beyond footprint %#x", name, r.Addr, limit)
			}
			if r.Addr%lineBytes != 0 {
				t.Fatalf("%s: address %#x not line aligned", name, r.Addr)
			}
			if r.CPU >= cores {
				t.Fatalf("%s: cpu %d out of range", name, r.CPU)
			}
		}
	}
}

func TestWarmupTouchesEveryPageOnce(t *testing.T) {
	spec, _ := ByName("ferret")
	g, err := NewGenerator(spec, 0.01, 5)
	if err != nil {
		t.Fatal(err)
	}
	st := trace.CollectStats(g.WarmupSource(1), PageSizeBytes)
	if st.Total() != int64(g.Pages()) {
		t.Errorf("warmup emitted %d accesses, want %d", st.Total(), g.Pages())
	}
	if st.FootprintPages() != g.Pages() {
		t.Errorf("warmup covered %d pages, want %d", st.FootprintPages(), g.Pages())
	}
	// Warmup ends on the resident structure so it stays memory-resident:
	// the last record must be a resident page.
	recs, _ := trace.Materialize(g.WarmupSource(1), 0)
	last := recs[len(recs)-1]
	if got := int(last.Page(PageSizeBytes)); got >= g.resident {
		t.Errorf("warmup ends on archive page %d (resident=%d)", got, g.resident)
	}
}

func TestWriteFractionMatchesSpec(t *testing.T) {
	spec, _ := ByName("vips")
	_, st := characterize(t, "vips", 0.01)
	got := st.WriteFraction()
	want := spec.WriteFraction()
	if got < want-0.01 || got > want+0.01 {
		t.Errorf("write fraction = %v, want ~%v", got, want)
	}
}

func TestGapMeansAreCalibrated(t *testing.T) {
	// The mean gap must land near MeanGapNS/scale (within 15%): the gap is
	// inflated by 1/scale so the static-power proration of Eq. 3 is
	// scale-invariant (see NewGenerator).
	const scale = 0.02
	for _, name := range []string{"blackscholes", "streamcluster", "bodytrack"} {
		spec, _ := ByName(name)
		g, st := characterize(t, name, scale)
		got := st.TotalGapNS / float64(g.TotalAccesses())
		want := spec.Pattern.MeanGapNS / scale
		if want == 0 {
			continue
		}
		if got < want*0.85 || got > want*1.15 {
			t.Errorf("%s: mean gap %.1f, want ~%.1f", name, got, want)
		}
	}
}

func TestPhaseRotationMovesHotSet(t *testing.T) {
	// canneal rotates its hot set; the set of most-frequent pages in an
	// early window must differ from a late window.
	spec, _ := ByName("canneal")
	g, err := NewGenerator(spec, 0.01, 11)
	if err != nil {
		t.Fatal(err)
	}
	counts := func(n int) map[uint64]int {
		m := map[uint64]int{}
		for i := 0; i < n; i++ {
			r, ok := g.Next()
			if !ok {
				break
			}
			m[r.Page(PageSizeBytes)]++
		}
		return m
	}
	early := counts(20000)
	// Skip ahead several phases.
	for i := 0; i < 150000; i++ {
		g.Next()
	}
	late := counts(20000)
	topPage := func(m map[uint64]int) (best uint64) {
		bestN := -1
		for p, n := range m {
			if n > bestN || (n == bestN && p < best) {
				best, bestN = p, n
			}
		}
		return best
	}
	if topPage(early) == topPage(late) {
		t.Error("hot set did not rotate between phases")
	}
}

// TestQuickExactCounts verifies across arbitrary (workload, scale, seed)
// triples that the generator's advertised exactness holds: the ROI stream
// has exactly the scaled read and write counts and never leaves the
// footprint.
func TestQuickExactCounts(t *testing.T) {
	names := Names()
	f := func(wl uint8, scalePct uint8, seed int64) bool {
		spec, _ := ByName(names[int(wl)%len(names)])
		scale := 0.002 + float64(scalePct%20)/2000 // 0.002 .. 0.0115
		g, err := NewGenerator(spec, scale, seed)
		if err != nil {
			// Tiny scales can leave no room for archive visits; that is a
			// documented, validated failure, not a property violation.
			return true
		}
		limit := uint64(g.Pages()) * PageSizeBytes
		var reads, writes int64
		for {
			r, ok := g.Next()
			if !ok {
				break
			}
			if r.Addr >= limit {
				return false
			}
			if r.Op == trace.OpWrite {
				writes++
			} else {
				reads++
			}
		}
		return reads == scaleInt64(spec.Reads, scale) &&
			writes == scaleInt64(spec.Writes, scale)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
