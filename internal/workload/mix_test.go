package workload

import (
	"testing"

	"hybridmem/internal/trace"
)

func mixOf(t *testing.T, names []string, scale float64, seed int64) *Mix {
	t.Helper()
	var specs []Spec
	for _, n := range names {
		s, ok := ByName(n)
		if !ok {
			t.Fatalf("unknown %s", n)
		}
		specs = append(specs, s)
	}
	m, err := NewMix(specs, scale, seed)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMixValidation(t *testing.T) {
	s, _ := ByName("ferret")
	if _, err := NewMix([]Spec{s}, 0.01, 1); err == nil {
		t.Error("single-tenant mix should error")
	}
	bad := s
	bad.Pattern.HotFraction = 2
	if _, err := NewMix([]Spec{s, bad}, 0.01, 1); err == nil {
		t.Error("invalid tenant should error")
	}
}

func TestMixPreservesTenantCounts(t *testing.T) {
	m := mixOf(t, []string{"bodytrack", "raytrace"}, 0.01, 5)
	perTenant := map[uint64]*trace.Stats{}
	total := int64(0)
	for {
		r, ok := m.Next()
		if !ok {
			break
		}
		tenant := r.Addr >> tenantShift
		st := perTenant[tenant]
		if st == nil {
			st = trace.NewStats(PageSizeBytes)
			perTenant[tenant] = st
		}
		st.Observe(r)
		total++
	}
	if total != m.TotalAccesses() {
		t.Fatalf("emitted %d, want %d", total, m.TotalAccesses())
	}
	if len(perTenant) != 2 {
		t.Fatalf("tenants = %d, want 2", len(perTenant))
	}
	bt, _ := ByName("bodytrack")
	rt, _ := ByName("raytrace")
	btStats := perTenant[1]
	rtStats := perTenant[2]
	if btStats.Reads != scaleInt64(bt.Reads, 0.01) || btStats.Writes != scaleInt64(bt.Writes, 0.01) {
		t.Errorf("bodytrack counts %d/%d wrong", btStats.Reads, btStats.Writes)
	}
	if rtStats.Reads != scaleInt64(rt.Reads, 0.01) || rtStats.Writes != scaleInt64(rt.Writes, 0.01) {
		t.Errorf("raytrace counts %d/%d wrong", rtStats.Reads, rtStats.Writes)
	}
}

func TestMixTenantsAreInterleaved(t *testing.T) {
	m := mixOf(t, []string{"bodytrack", "raytrace"}, 0.01, 7)
	// Within the first 1000 accesses both tenants must appear (no serial
	// phases).
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		r, ok := m.Next()
		if !ok {
			t.Fatal("stream too short")
		}
		seen[r.Addr>>tenantShift] = true
	}
	if len(seen) != 2 {
		t.Errorf("tenants in first 1000 accesses: %d, want 2", len(seen))
	}
}

func TestMixWarmupCoversCombinedFootprint(t *testing.T) {
	m := mixOf(t, []string{"bodytrack", "raytrace"}, 0.01, 9)
	st := trace.CollectStats(m.WarmupSource(1), PageSizeBytes)
	if st.FootprintPages() != m.Pages() {
		t.Errorf("warmup covered %d pages, want %d", st.FootprintPages(), m.Pages())
	}
}

func TestMixDeterminism(t *testing.T) {
	m1 := mixOf(t, []string{"freqmine", "x264"}, 0.005, 11)
	m2 := mixOf(t, []string{"freqmine", "x264"}, 0.005, 11)
	for {
		r1, ok1 := m1.Next()
		r2, ok2 := m2.Next()
		if ok1 != ok2 {
			t.Fatal("lengths diverged")
		}
		if !ok1 {
			break
		}
		if r1 != r2 {
			t.Fatal("streams diverged")
		}
	}
}
