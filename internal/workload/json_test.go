package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestSpecsJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveSpecs(&buf, PARSEC()); err != nil {
		t.Fatal(err)
	}
	specs, err := LoadSpecs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 12 {
		t.Fatalf("round-trip lost specs: %d", len(specs))
	}
	orig := PARSEC()
	for i := range specs {
		if specs[i] != orig[i] {
			t.Errorf("spec %s changed in round-trip:\n got %+v\nwant %+v",
				orig[i].Name, specs[i], orig[i])
		}
	}
}

func TestLoadSpecsValidation(t *testing.T) {
	cases := map[string]string{
		"empty array":   `[]`,
		"bad json":      `{`,
		"unknown field": `[{"name":"x","working_set_kb":64,"reads":100,"writes":0,"bogus":1,"pattern":{"resident_fraction":0.7,"hot_fraction":0.1,"hot_bias":0.5,"seq_run_len":1,"repeat_burst":1,"write_hot_fraction":0.05,"write_hot_bias":0.5,"roi_archive_visits":1,"mean_gap_ns":10}}]`,
		"invalid spec":  `[{"name":"x","working_set_kb":64,"reads":100,"writes":0,"pattern":{"resident_fraction":2.0,"hot_fraction":0.1,"hot_bias":0.5,"seq_run_len":1,"repeat_burst":1,"write_hot_fraction":0.05,"write_hot_bias":0.5,"roi_archive_visits":1,"mean_gap_ns":10}}]`,
	}
	for name, input := range cases {
		if _, err := LoadSpecs(strings.NewReader(input)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	dup := `[
	  {"name":"x","working_set_kb":64,"reads":100,"writes":0,"pattern":{"resident_fraction":0.7,"hot_fraction":0.1,"hot_bias":0.5,"seq_run_len":1,"repeat_burst":1,"write_hot_fraction":0.05,"write_hot_bias":0.5,"roi_archive_visits":1,"mean_gap_ns":10}},
	  {"name":"x","working_set_kb":64,"reads":100,"writes":0,"pattern":{"resident_fraction":0.7,"hot_fraction":0.1,"hot_bias":0.5,"seq_run_len":1,"repeat_burst":1,"write_hot_fraction":0.05,"write_hot_bias":0.5,"roi_archive_visits":1,"mean_gap_ns":10}}
	]`
	if _, err := LoadSpecs(strings.NewReader(dup)); err == nil {
		t.Error("duplicate names should error")
	}
}

func TestLoadedSpecGenerates(t *testing.T) {
	input := `[{"name":"custom","working_set_kb":512,"reads":5000,"writes":2000,
	  "pattern":{"resident_fraction":0.7,"hot_fraction":0.06,"hot_bias":0.8,
	  "seq_run_len":4,"repeat_burst":2,"write_hot_fraction":0.03,
	  "write_hot_bias":0.9,"roi_archive_visits":0.5,"mean_gap_ns":100}}]`
	specs, err := LoadSpecs(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(specs[0], 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, ok := g.Next(); !ok {
			break
		}
		n++
	}
	if n != 7000 {
		t.Errorf("generated %d accesses, want 7000", n)
	}
}
