// Package workload generates the synthetic PARSEC-like memory traces the
// experiments run on. Each generator is calibrated to the paper's Table III
// characterization — working-set size, read count and write count are exact
// (up to a uniform scale factor) — and carries a per-benchmark access-pattern
// model reproducing the qualitative behaviour the paper attributes to the
// workload: hotspot skew, sequential streaming, temporal bursts, phase
// rotation (the canneal/fluidanimate "migrate and come right back" pathology)
// and write clustering.
//
// This package is the substitution for running real PARSEC 3.0 binaries
// inside the COTSon full-system simulator (see DESIGN.md): the paper's
// evaluation consumes only the main-memory access stream, so the generators
// synthesize streams with the same characterization and locality structure.
// The trace's GapNS field models the CPU time spent in cache hits and
// computation between main-memory accesses, calibrated per workload so the
// prorated static power (Eq. 3) lands in the band Fig. 1 reports.
package workload

import (
	"fmt"
	"sort"
)

// Pattern is the access-pattern model of one benchmark.
type Pattern struct {
	// ResidentFraction is the share of the footprint forming the actively
	// reused structure; it must fit inside the provisioned memory (75% of
	// the footprint), leaving the rest as rarely-touched "archive" pages
	// whose visits produce the workload's page faults.
	ResidentFraction float64
	// HotFraction is the share of the footprint forming the hot set.
	HotFraction float64
	// HotBias is the probability that a structured access targets the hot
	// set rather than the whole resident range.
	HotBias float64
	// SeqRunLen is the mean length of sequential runs (spatial locality);
	// 1 disables streaming.
	SeqRunLen int
	// RepeatBurst is the mean number of consecutive accesses to the same
	// page (temporal bursts); 1 disables bursts.
	RepeatBurst int
	// PhaseAccesses is the number of accesses between hot-set rotations
	// (0 = static hot set). Rotation creates the migratory behaviour that
	// makes CLOCK-DWF ping-pong pages between the memories.
	PhaseAccesses int64
	// PhaseShiftPages is how far the hot set slides at each rotation.
	PhaseShiftPages int
	// WriteHotFraction is the share of the footprint forming the
	// write-favoured subset (within the hot region).
	WriteHotFraction float64
	// WriteHotBias is the probability that a write is redirected to the
	// write-favoured subset.
	WriteHotBias float64
	// ROIArchiveVisits is how many times each archive page is visited
	// during the measured (ROI) window. It directly sets the page-fault
	// rate: the full footprint is touched during warmup (so the Table III
	// working set is exact over warmup+ROI, as the paper characterizes the
	// whole trace), but the ROI revisits cold data only sparsely.
	// Fractional values visit that fraction of archive pages once.
	ROIArchiveVisits float64
	// MeanGapNS is the mean CPU gap between main-memory accesses.
	MeanGapNS float64
}

// Validate reports whether the pattern is internally consistent.
func (p Pattern) Validate() error {
	switch {
	case p.ResidentFraction <= 0 || p.ResidentFraction >= 1:
		return fmt.Errorf("workload: ResidentFraction %v outside (0,1)", p.ResidentFraction)
	case p.HotFraction <= 0 || p.HotFraction > p.ResidentFraction:
		return fmt.Errorf("workload: HotFraction %v outside (0,ResidentFraction]", p.HotFraction)
	case p.HotBias < 0 || p.HotBias > 1:
		return fmt.Errorf("workload: HotBias %v outside [0,1]", p.HotBias)
	case p.SeqRunLen < 1 || p.RepeatBurst < 1:
		return fmt.Errorf("workload: run/burst lengths must be >= 1")
	case p.PhaseAccesses < 0 || p.PhaseShiftPages < 0:
		return fmt.Errorf("workload: negative phase parameters")
	case p.WriteHotFraction < 0 || p.WriteHotFraction > p.HotFraction:
		return fmt.Errorf("workload: WriteHotFraction %v outside [0,HotFraction]", p.WriteHotFraction)
	case p.WriteHotBias < 0 || p.WriteHotBias > 1:
		return fmt.Errorf("workload: WriteHotBias %v outside [0,1]", p.WriteHotBias)
	case p.ROIArchiveVisits < 0:
		return fmt.Errorf("workload: ROIArchiveVisits %v < 0", p.ROIArchiveVisits)
	case p.MeanGapNS < 0:
		return fmt.Errorf("workload: negative MeanGapNS")
	}
	return nil
}

// Spec describes one benchmark: its Table III characterization plus its
// access-pattern model.
type Spec struct {
	Name         string
	WorkingSetKB int
	Reads        int64
	Writes       int64
	Pattern      Pattern
}

// Accesses returns the total request count.
func (s Spec) Accesses() int64 { return s.Reads + s.Writes }

// Pages returns the footprint in 4KB pages.
func (s Spec) Pages() int { return s.WorkingSetKB / 4 }

// WriteFraction returns writes / total.
func (s Spec) WriteFraction() float64 {
	if t := s.Accesses(); t > 0 {
		return float64(s.Writes) / float64(t)
	}
	return 0
}

// Validate reports whether the spec is usable.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("workload: empty name")
	}
	if s.Pages() < 4 {
		return fmt.Errorf("workload %s: footprint %d pages too small", s.Name, s.Pages())
	}
	if s.Reads < 0 || s.Writes < 0 || s.Accesses() == 0 {
		return fmt.Errorf("workload %s: bad request counts %d/%d", s.Name, s.Reads, s.Writes)
	}
	return s.Pattern.Validate()
}

// PARSEC returns the twelve Table III workloads (swaptions is excluded by
// the paper itself). Characterization columns are verbatim from Table III;
// pattern parameters encode the per-benchmark behaviour discussed in
// Sections III and V.
func PARSEC() []Spec {
	specs := []Spec{
		{
			// Read-only option pricing over a small input set: long compute
			// phases between memory visits, gentle streaming, a stable hot
			// set that fits in a DRAM-sized fraction of the footprint.
			Name: "blackscholes", WorkingSetKB: 5188, Reads: 26242, Writes: 0,
			Pattern: Pattern{
				ResidentFraction: 0.70, HotFraction: 0.05, HotBias: 0.55,
				SeqRunLen: 8, RepeatBurst: 2,
				WriteHotFraction: 0.01, WriteHotBias: 0,
				ROIArchiveVisits: 0.1, MeanGapNS: 9000,
			},
		},
		{
			// Body tracking: write-heavy particle state updated in place on
			// a compact, DRAM-sized write set.
			Name: "bodytrack", WorkingSetKB: 25304, Reads: 658606, Writes: 403835,
			Pattern: Pattern{
				ResidentFraction: 0.70, HotFraction: 0.06, HotBias: 0.82,
				SeqRunLen: 4, RepeatBurst: 3,
				WriteHotFraction: 0.03, WriteHotBias: 0.95,
				ROIArchiveVisits: 0.2, MeanGapNS: 650,
			},
		},
		{
			// Simulated annealing over a big netlist: scattered writes and a
			// rotating region of interest. The scatter plus rotation is what
			// drags pages to DRAM and right back (Section III-A), making
			// canneal one of the hybrid-unfriendly workloads.
			Name: "canneal", WorkingSetKB: 164768, Reads: 24432900, Writes: 653623,
			Pattern: Pattern{
				ResidentFraction: 0.70, HotFraction: 0.05, HotBias: 0.60,
				SeqRunLen: 2, RepeatBurst: 2,
				PhaseAccesses: 60000, PhaseShiftPages: 600,
				WriteHotFraction: 0.02, WriteHotBias: 0.85,
				ROIArchiveVisits: 2, MeanGapNS: 30,
			},
		},
		{
			// Pipelined dedup: streaming input, hash-table hot spots, large
			// footprint with real fault pressure.
			Name: "dedup", WorkingSetKB: 512460, Reads: 17187130, Writes: 6998314,
			Pattern: Pattern{
				ResidentFraction: 0.70, HotFraction: 0.05, HotBias: 0.80,
				SeqRunLen: 10, RepeatBurst: 2,
				WriteHotFraction: 0.02, WriteHotBias: 0.95,
				ROIArchiveVisits: 1, MeanGapNS: 10,
			},
		},
		{
			// Physics solver on a face mesh: iterative sweeps over large
			// state with moderate writes into a compact solution region.
			Name: "facesim", WorkingSetKB: 210368, Reads: 11730278, Writes: 6137519,
			Pattern: Pattern{
				ResidentFraction: 0.70, HotFraction: 0.06, HotBias: 0.78,
				SeqRunLen: 12, RepeatBurst: 2,
				WriteHotFraction: 0.025, WriteHotBias: 0.95,
				ROIArchiveVisits: 0.5, MeanGapNS: 15,
			},
		},
		{
			// Content-based similarity search: zipf-like hot database pages,
			// read-dominant with a small writable working area.
			Name: "ferret", WorkingSetKB: 68904, Reads: 54538546, Writes: 7033936,
			Pattern: Pattern{
				ResidentFraction: 0.70, HotFraction: 0.06, HotBias: 0.86,
				SeqRunLen: 6, RepeatBurst: 3,
				WriteHotFraction: 0.02, WriteHotBias: 0.93,
				ROIArchiveVisits: 1, MeanGapNS: 100,
			},
		},
		{
			// Particle fluid simulation: neighbour sweeps with a rotating
			// active region and a quarter of writes landing outside the
			// write-hot set; the second ping-pong workload of Section V.
			Name: "fluidanimate", WorkingSetKB: 266120, Reads: 9951202, Writes: 4492775,
			Pattern: Pattern{
				ResidentFraction: 0.70, HotFraction: 0.05, HotBias: 0.60,
				SeqRunLen: 12, RepeatBurst: 2,
				PhaseAccesses: 60000, PhaseShiftPages: 800,
				WriteHotFraction: 0.02, WriteHotBias: 0.95,
				ROIArchiveVisits: 0.5, MeanGapNS: 10,
			},
		},
		{
			// FP-growth frequent itemset mining: hot tree upper levels,
			// read-mostly traversals with localized counter updates.
			Name: "freqmine", WorkingSetKB: 156108, Reads: 8427181, Writes: 3947122,
			Pattern: Pattern{
				ResidentFraction: 0.70, HotFraction: 0.05, HotBias: 0.85,
				SeqRunLen: 3, RepeatBurst: 2,
				WriteHotFraction: 0.02, WriteHotBias: 0.95,
				ROIArchiveVisits: 0.5, MeanGapNS: 40,
			},
		},
		{
			// Real-time raytracing: medium repeat bursts that sit right at
			// the migration-benefit boundary (the threshold anomaly of V-B),
			// with a rotating view-dependent hot set.
			Name: "raytrace", WorkingSetKB: 57116, Reads: 1807142, Writes: 370573,
			Pattern: Pattern{
				ResidentFraction: 0.70, HotFraction: 0.06, HotBias: 0.70,
				SeqRunLen: 5, RepeatBurst: 6,
				PhaseAccesses: 100000, PhaseShiftPages: 300,
				WriteHotFraction: 0.03, WriteHotBias: 0.95,
				ROIArchiveVisits: 0.3, MeanGapNS: 250,
			},
		},
		{
			// Streaming k-median clustering: an enormous burst of reads over
			// a tiny footprint — the Fig. 1 outlier where dynamic power
			// dwarfs static power. Its rare writes are fully scattered, so
			// every one of them costs CLOCK-DWF a migration.
			Name: "streamcluster", WorkingSetKB: 15452, Reads: 168666464, Writes: 448612,
			Pattern: Pattern{
				ResidentFraction: 0.70, HotFraction: 0.05, HotBias: 0.30,
				SeqRunLen: 48, RepeatBurst: 2,
				WriteHotFraction: 0.02, WriteHotBias: 0.90,
				ROIArchiveVisits: 2, MeanGapNS: 2,
			},
		},
		{
			// Image pipeline: streaming through scanlines with write bursts
			// near the migration-benefit threshold (Section V-B) and a
			// slowly advancing active window.
			Name: "vips", WorkingSetKB: 115380, Reads: 5802657, Writes: 4117660,
			Pattern: Pattern{
				ResidentFraction: 0.70, HotFraction: 0.05, HotBias: 0.72,
				SeqRunLen: 16, RepeatBurst: 4,
				PhaseAccesses: 160000, PhaseShiftPages: 200,
				WriteHotFraction: 0.025, WriteHotBias: 0.95,
				ROIArchiveVisits: 0.5, MeanGapNS: 35,
			},
		},
		{
			// H.264 encoding: reference-frame reuse plus motion-search
			// streaming, moderately write-heavy on compact encode state.
			Name: "x264", WorkingSetKB: 80232, Reads: 14669353, Writes: 5220400,
			Pattern: Pattern{
				ResidentFraction: 0.70, HotFraction: 0.06, HotBias: 0.82,
				SeqRunLen: 10, RepeatBurst: 2,
				WriteHotFraction: 0.03, WriteHotBias: 0.95,
				ROIArchiveVisits: 0.5, MeanGapNS: 70,
			},
		},
	}
	sort.Slice(specs, func(i, j int) bool { return specs[i].Name < specs[j].Name })
	return specs
}

// ByName returns the named PARSEC spec.
func ByName(name string) (Spec, bool) {
	for _, s := range PARSEC() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Names returns the workload names in report order.
func Names() []string {
	specs := PARSEC()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}
