package workload

import (
	"fmt"
	"math/rand"

	"hybridmem/internal/trace"
)

// tenantShift places each tenant's pages in a disjoint address region,
// above any address a single generator emits.
const tenantShift = 44

// Mix interleaves several workloads into one multiprogrammed stream: the
// consolidation scenario of the paper's server setting (Section V-A uses a
// quad-core "to ensure there is always enough requests issued to the memory
// to simulate a production server"). Each tenant keeps its own address
// space; accesses are drawn proportionally to the tenants' remaining
// request budgets, so the mix preserves every tenant's total counts exactly.
type Mix struct {
	gens    []*Generator
	rng     *rand.Rand
	remain  []int64
	total   int64
	emitted int64
}

// NewMix builds a multiprogrammed stream over the given specs, all at the
// same scale. Streams are deterministic in (specs, scale, seed).
func NewMix(specs []Spec, scale float64, seed int64) (*Mix, error) {
	if len(specs) < 2 {
		return nil, fmt.Errorf("workload: a mix needs >= 2 tenants, got %d", len(specs))
	}
	if len(specs) > 1<<8 {
		return nil, fmt.Errorf("workload: too many tenants (%d)", len(specs))
	}
	m := &Mix{rng: rand.New(rand.NewSource(seed))}
	for i, s := range specs {
		g, err := NewGenerator(s, scale, seed+int64(i)+1)
		if err != nil {
			return nil, fmt.Errorf("workload: tenant %s: %w", s.Name, err)
		}
		m.gens = append(m.gens, g)
		m.remain = append(m.remain, g.TotalAccesses())
		m.total += g.TotalAccesses()
	}
	return m, nil
}

// Pages returns the combined footprint (tenants do not share pages).
func (m *Mix) Pages() int {
	total := 0
	for _, g := range m.gens {
		total += g.Pages()
	}
	return total
}

// TotalAccesses returns the combined request count.
func (m *Mix) TotalAccesses() int64 { return m.total }

// rebase moves a tenant's record into its private address region.
func rebase(r trace.Record, tenant int) trace.Record {
	r.Addr |= uint64(tenant+1) << tenantShift
	return r
}

// Next implements trace.Source.
func (m *Mix) Next() (trace.Record, bool) {
	if m.emitted >= m.total {
		return trace.Record{}, false
	}
	// Draw a tenant proportionally to its remaining budget (exact totals,
	// like the generators' read/write draw).
	pick := m.rng.Int63n(m.total - m.emitted)
	for i, rem := range m.remain {
		if pick < rem {
			r, ok := m.gens[i].Next()
			if !ok {
				// Defensive: budgets and generator lengths agree by
				// construction.
				return trace.Record{}, false
			}
			m.remain[i]--
			m.emitted++
			return rebase(r, i), true
		}
		pick -= rem
	}
	return trace.Record{}, false
}

// WarmupSource returns the combined initialization phase: each tenant's
// warmup in turn, rebased into its region.
func (m *Mix) WarmupSource(seed int64) trace.Source {
	srcs := make([]trace.Source, len(m.gens))
	for i, g := range m.gens {
		tenant := i
		inner := g.WarmupSource(seed + int64(i))
		srcs[i] = trace.FuncSource(func() (trace.Record, bool) {
			r, ok := inner.Next()
			if !ok {
				return trace.Record{}, false
			}
			return rebase(r, tenant), true
		})
	}
	return trace.Concat(srcs...)
}
