package workload

import (
	"fmt"
	"math/rand"

	"hybridmem/internal/trace"
)

// PageSizeBytes is the data-page size the generators emit addresses for.
const PageSizeBytes = 4096

// lineBytes is the line granularity of emitted addresses.
const lineBytes = 64

// cores is the number of CPUs accesses are attributed to (Table II).
const cores = 4

// Generator emits one benchmark's measured (ROI) main-memory access stream.
// It implements trace.Source. Streams are deterministic functions of
// (spec, scale, seed).
//
// Guarantees (all verified by tests):
//   - exactly round(scale*Reads) reads and round(scale*Writes) writes;
//   - no address falls outside the scaled footprint, and the union of the
//     warmup stream and the ROI touches exactly the scaled page count (the
//     Table III working set characterizes the whole trace);
//   - archive pages (the share beyond Pattern.ResidentFraction) receive
//     round(ROIArchiveVisits*archive) visits, evenly spread through the
//     ROI — the workload's page-fault pressure.
type Generator struct {
	spec  Spec
	rng   *rand.Rand
	pages int
	// page-space layout: [0, resident) is the reused structure, of which
	// [hotStart, hotStart+hot) (mod resident) is the rotating hot set and
	// its first writeHot pages are the write-favoured subset;
	// [resident, pages) is the archive.
	resident, archive  int
	hot, writeHot      int
	total              int64
	remReads, remWrite int64
	emitted            int64

	// coverage schedule (Bresenham-interleaved into the stream)
	schedTotal, schedDone int64

	// pattern state
	phaseAccesses int64
	phaseShift    int
	hotStart      int
	lastPage      uint64
	havePage      bool
	seqOff        int  // run position, an offset within the current region
	hotRun        bool // whether the current run lives in the hot region
	pRepeat       float64
	pRun          float64
	meanGap       float64
	cpu           uint8
}

// NewGenerator returns the stream for spec scaled by scale (1.0 = the full
// Table III trace). Page counts and request counts scale together, so
// accesses-per-page — which drives fault pressure and static-power proration
// — is preserved.
func NewGenerator(spec Spec, scale float64, seed int64) (*Generator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("workload %s: scale %v outside (0,1]", spec.Name, scale)
	}
	pages := scaleInt(spec.Pages(), scale, 16)
	reads := scaleInt64(spec.Reads, scale)
	writes := scaleInt64(spec.Writes, scale)
	if reads+writes == 0 {
		return nil, fmt.Errorf("workload %s: no requests after scaling", spec.Name)
	}

	g := &Generator{
		spec:     spec,
		rng:      rand.New(rand.NewSource(seed)),
		pages:    pages,
		total:    reads + writes,
		remReads: reads, remWrite: writes,
		pRepeat: 1 - 1/float64(spec.Pattern.RepeatBurst),
		pRun:    1 - 1/float64(spec.Pattern.SeqRunLen),
		// Scaling shrinks the provisioned memory (static power) but not the
		// per-access service time, so the CPU gap is inflated by 1/scale to
		// keep the Eq. 3 static-energy-per-request scale-invariant:
		// memGB * time-per-access stays what the full-size trace yields.
		meanGap: spec.Pattern.MeanGapNS / scale,
	}
	g.resident = clampInt(int(spec.Pattern.ResidentFraction*float64(pages)+0.5), 1, pages-1)
	g.archive = pages - g.resident
	g.hot = clampInt(int(spec.Pattern.HotFraction*float64(pages)+0.5), 1, g.resident)
	g.writeHot = clampInt(int(spec.Pattern.WriteHotFraction*float64(pages)+0.5), 1, g.hot)
	g.schedTotal = int64(spec.Pattern.ROIArchiveVisits*float64(g.archive) + 0.5)
	if g.schedTotal > g.total {
		return nil, fmt.Errorf("workload %s: scale %v leaves %d accesses for %d scheduled archive visits",
			spec.Name, scale, g.total, g.schedTotal)
	}
	if spec.Pattern.PhaseAccesses > 0 {
		g.phaseAccesses = int64(scaleInt(int(spec.Pattern.PhaseAccesses), scale, 1))
		g.phaseShift = scaleInt(spec.Pattern.PhaseShiftPages, scale, 1)
	}
	return g, nil
}

func scaleInt(v int, scale float64, min int) int {
	s := int(float64(v)*scale + 0.5)
	if s < min {
		s = min
	}
	return s
}

func scaleInt64(v int64, scale float64) int64 {
	return int64(float64(v)*scale + 0.5)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// regionPage maps the current run offset into the run's region: the rotating
// hot window for hot runs, the whole resident structure otherwise.
func (g *Generator) regionPage() uint64 {
	if g.hotRun {
		return uint64((g.hotStart + g.seqOff%g.hot) % g.resident)
	}
	return uint64(g.seqOff % g.resident)
}

// Pages returns the scaled footprint in pages.
func (g *Generator) Pages() int { return g.pages }

// TotalAccesses returns the scaled request count.
func (g *Generator) TotalAccesses() int64 { return g.total }

// Spec returns the workload description this generator was built from.
func (g *Generator) Spec() Spec { return g.spec }

// Next implements trace.Source.
func (g *Generator) Next() (trace.Record, bool) {
	if g.emitted >= g.total {
		return trace.Record{}, false
	}

	// Archive visits: cold data touched sparsely during the ROI (the page
	// faults of the measured window), round-robin over the archive range,
	// Bresenham-interleaved so they spread evenly through the stream.
	var page uint64
	scheduled := false
	if g.schedDone < g.schedTotal && g.schedDone*g.total <= g.emitted*g.schedTotal {
		page = uint64(g.resident + int(g.schedDone%int64(g.archive)))
		g.schedDone++
		scheduled = true
	}

	if !scheduled {
		switch {
		case g.havePage && g.rng.Float64() < g.pRepeat:
			// Temporal burst: stay on the same page.
			page = g.lastPage
		case g.havePage && g.rng.Float64() < g.pRun:
			// Sequential run: advance within the region it started in, so
			// hot runs keep hammering the hot set (the hot bias applies to
			// runs, not just their first access).
			g.seqOff++
			page = g.regionPage()
		default:
			// Start a new run: in the hot window with probability HotBias,
			// anywhere in the resident structure otherwise.
			g.hotRun = g.rng.Float64() < g.spec.Pattern.HotBias
			if g.hotRun {
				g.seqOff = g.rng.Intn(g.hot)
			} else {
				g.seqOff = g.rng.Intn(g.resident)
			}
			page = g.regionPage()
		}
	}

	// Exact op accounting: draw proportionally to the remaining budget.
	op := trace.OpRead
	if g.rng.Int63n(g.remReads+g.remWrite) < g.remWrite {
		op = trace.OpWrite
		g.remWrite--
	} else {
		g.remReads--
	}

	// Writes cluster on the write-favoured subset (never overriding a
	// scheduled coverage touch).
	if op == trace.OpWrite && !scheduled && g.rng.Float64() < g.spec.Pattern.WriteHotBias {
		page = uint64((g.hotStart + g.rng.Intn(g.writeHot)) % g.resident)
	}

	g.lastPage = page
	g.havePage = true
	g.emitted++

	// Phase rotation: slide the hot window through the resident range.
	if g.phaseAccesses > 0 && g.emitted%g.phaseAccesses == 0 {
		g.hotStart = (g.hotStart + g.phaseShift) % g.resident
	}

	gap := 0.0
	if m := g.meanGap; m > 0 {
		gap = g.rng.ExpFloat64() * m
		if gap > 20*m {
			gap = 20 * m
		}
	}
	g.cpu = (g.cpu + 1) % cores

	line := uint64(g.rng.Intn(PageSizeBytes / lineBytes))
	return trace.Record{
		Addr:  page*PageSizeBytes + line*lineBytes,
		GapNS: uint32(gap + 0.5),
		Op:    op,
		CPU:   g.cpu,
	}, true
}

// WarmupSource returns the pre-ROI initialization stream: every page touched
// exactly once — archive first, then the resident structure so it ends up
// memory-resident — with ops drawn at the workload's write ratio and no CPU
// gaps. Experiments run it through the policy without recording statistics,
// mirroring the paper's use of the benchmark ROI only.
func (g *Generator) WarmupSource(seed int64) trace.Source {
	rng := rand.New(rand.NewSource(seed))
	wf := g.spec.WriteFraction()
	i := 0
	var cpu uint8
	return trace.FuncSource(func() (trace.Record, bool) {
		if i >= g.pages {
			return trace.Record{}, false
		}
		var page int
		if i < g.archive {
			page = g.resident + i
		} else {
			page = i - g.archive
		}
		i++
		op := trace.OpRead
		if rng.Float64() < wf {
			op = trace.OpWrite
		}
		cpu = (cpu + 1) % cores
		line := uint64(rng.Intn(PageSizeBytes / lineBytes))
		return trace.Record{
			Addr: uint64(page)*PageSizeBytes + line*lineBytes,
			Op:   op,
			CPU:  cpu,
		}, true
	})
}
