package workload

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonSpec mirrors Spec for JSON (de)serialization with explicit field
// names, so users can define custom workloads in configuration files and
// run them through cmd/tracegen or the experiments API.
type jsonSpec struct {
	Name         string      `json:"name"`
	WorkingSetKB int         `json:"working_set_kb"`
	Reads        int64       `json:"reads"`
	Writes       int64       `json:"writes"`
	Pattern      jsonPattern `json:"pattern"`
}

type jsonPattern struct {
	ResidentFraction float64 `json:"resident_fraction"`
	HotFraction      float64 `json:"hot_fraction"`
	HotBias          float64 `json:"hot_bias"`
	SeqRunLen        int     `json:"seq_run_len"`
	RepeatBurst      int     `json:"repeat_burst"`
	PhaseAccesses    int64   `json:"phase_accesses,omitempty"`
	PhaseShiftPages  int     `json:"phase_shift_pages,omitempty"`
	WriteHotFraction float64 `json:"write_hot_fraction"`
	WriteHotBias     float64 `json:"write_hot_bias"`
	ROIArchiveVisits float64 `json:"roi_archive_visits"`
	MeanGapNS        float64 `json:"mean_gap_ns"`
}

func fromJSON(j jsonSpec) Spec {
	return Spec{
		Name:         j.Name,
		WorkingSetKB: j.WorkingSetKB,
		Reads:        j.Reads,
		Writes:       j.Writes,
		Pattern: Pattern{
			ResidentFraction: j.Pattern.ResidentFraction,
			HotFraction:      j.Pattern.HotFraction,
			HotBias:          j.Pattern.HotBias,
			SeqRunLen:        j.Pattern.SeqRunLen,
			RepeatBurst:      j.Pattern.RepeatBurst,
			PhaseAccesses:    j.Pattern.PhaseAccesses,
			PhaseShiftPages:  j.Pattern.PhaseShiftPages,
			WriteHotFraction: j.Pattern.WriteHotFraction,
			WriteHotBias:     j.Pattern.WriteHotBias,
			ROIArchiveVisits: j.Pattern.ROIArchiveVisits,
			MeanGapNS:        j.Pattern.MeanGapNS,
		},
	}
}

func toJSON(s Spec) jsonSpec {
	return jsonSpec{
		Name:         s.Name,
		WorkingSetKB: s.WorkingSetKB,
		Reads:        s.Reads,
		Writes:       s.Writes,
		Pattern: jsonPattern{
			ResidentFraction: s.Pattern.ResidentFraction,
			HotFraction:      s.Pattern.HotFraction,
			HotBias:          s.Pattern.HotBias,
			SeqRunLen:        s.Pattern.SeqRunLen,
			RepeatBurst:      s.Pattern.RepeatBurst,
			PhaseAccesses:    s.Pattern.PhaseAccesses,
			PhaseShiftPages:  s.Pattern.PhaseShiftPages,
			WriteHotFraction: s.Pattern.WriteHotFraction,
			WriteHotBias:     s.Pattern.WriteHotBias,
			ROIArchiveVisits: s.Pattern.ROIArchiveVisits,
			MeanGapNS:        s.Pattern.MeanGapNS,
		},
	}
}

// LoadSpecs reads and validates a JSON array of workload specs.
func LoadSpecs(r io.Reader) ([]Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var raw []jsonSpec
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("workload: parsing specs: %w", err)
	}
	if len(raw) == 0 {
		return nil, fmt.Errorf("workload: no specs in input")
	}
	specs := make([]Spec, 0, len(raw))
	seen := map[string]bool{}
	for _, j := range raw {
		s := fromJSON(j)
		if err := s.Validate(); err != nil {
			return nil, err
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("workload: duplicate spec %q", s.Name)
		}
		seen[s.Name] = true
		specs = append(specs, s)
	}
	return specs, nil
}

// SaveSpecs writes specs as indented JSON (the format LoadSpecs reads).
func SaveSpecs(w io.Writer, specs []Spec) error {
	raw := make([]jsonSpec, len(specs))
	for i, s := range specs {
		raw[i] = toJSON(s)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(raw)
}
