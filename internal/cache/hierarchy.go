package cache

import (
	"fmt"

	"hybridmem/internal/memspec"
)

// MemAccess is one line-sized access that escaped the cache hierarchy and
// must be serviced by main memory: an LLC miss fill (read) or a dirty
// writeback (write).
type MemAccess struct {
	Addr  uint64
	Write bool
	CPU   uint8
}

// Hierarchy is the Table II machine: per-core split L1s over a shared,
// inclusive, write-back LLC, kept coherent with MOESI snooping. Main-memory
// latency is *not* modeled here — the emitted MemAccess stream is exactly
// what the hybrid-memory simulator charges.
type Hierarchy struct {
	machine  memspec.Machine
	l1d, l1i []*Cache
	llc      *Cache
	// TimeNS accumulates CPU-side time: L1 hit latency per access plus LLC
	// latency on L1 misses. The capture layer turns it into trace gaps.
	TimeNS float64
	// emitted collects this access's memory traffic (reused buffer).
	emitted []MemAccess
}

// NewHierarchy builds the machine's cache hierarchy.
func NewHierarchy(m memspec.Machine) (*Hierarchy, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	h := &Hierarchy{machine: m}
	for i := 0; i < m.Cores; i++ {
		d, err := New(m.L1D)
		if err != nil {
			return nil, err
		}
		ins, err := New(m.L1I)
		if err != nil {
			return nil, err
		}
		h.l1d = append(h.l1d, d)
		h.l1i = append(h.l1i, ins)
	}
	llc, err := New(m.LLC)
	if err != nil {
		return nil, err
	}
	h.llc = llc
	return h, nil
}

// L1D returns core i's data cache (for tests and stats).
func (h *Hierarchy) L1D(i int) *Cache { return h.l1d[i] }

// L1I returns core i's instruction cache.
func (h *Hierarchy) L1I(i int) *Cache { return h.l1i[i] }

// LLC returns the shared last-level cache.
func (h *Hierarchy) LLC() *Cache { return h.llc }

// everyL1 iterates all L1 caches (data and instruction).
func (h *Hierarchy) everyL1(fn func(c *Cache)) {
	for i := range h.l1d {
		fn(h.l1d[i])
		fn(h.l1i[i])
	}
}

// Access services one CPU access from the given core. instr selects the
// instruction cache (instruction fetches are always reads). It returns the
// main-memory traffic the access caused; the slice is reused across calls.
func (h *Hierarchy) Access(cpu int, addr uint64, write, instr bool) ([]MemAccess, error) {
	if cpu < 0 || cpu >= h.machine.Cores {
		return nil, fmt.Errorf("cache: cpu %d out of range", cpu)
	}
	if instr && write {
		return nil, fmt.Errorf("cache: instruction writes not supported")
	}
	h.emitted = h.emitted[:0]
	c := h.l1d[cpu]
	spec := h.machine.L1D
	if instr {
		c = h.l1i[cpu]
		spec = h.machine.L1I
	}
	h.TimeNS += spec.LatencyNS

	if st := c.Touch(addr); st != Invalid {
		c.Stats.Hits++
		if write {
			if err := h.writeUpgrade(c, addr, st); err != nil {
				return nil, err
			}
		}
		return h.emitted, nil
	}
	c.Stats.Misses++
	h.TimeNS += h.machine.LLC.LatencyNS

	// Snoop the other L1s to find sharers and the owner of dirty data.
	otherDirty, otherShared := false, false
	h.everyL1(func(o *Cache) {
		if o == c {
			return
		}
		s := o.Lookup(addr)
		if s == Invalid {
			return
		}
		if write {
			// The write invalidates every other copy; dirty data is
			// forwarded cache-to-cache to the requester.
			o.Invalidate(addr)
			return
		}
		switch s {
		case Modified:
			// The owner degrades to Owned and supplies the data.
			o.SetState(addr, Owned)
			otherDirty = true
		case Owned:
			otherDirty = true
		case Exclusive:
			o.SetState(addr, Shared)
			otherShared = true
		case Shared:
			otherShared = true
		}
	})

	// LLC lookup; a miss goes to main memory.
	if h.llc.Touch(addr) == Invalid {
		h.llc.Stats.Misses++
		h.emitted = append(h.emitted, MemAccess{Addr: addr, CPU: uint8(cpu)})
		if err := h.llcFill(addr); err != nil {
			return nil, err
		}
	} else {
		h.llc.Stats.Hits++
	}

	// Choose the requester's state and fill its L1.
	newState := Exclusive
	switch {
	case write:
		newState = Modified
	case otherDirty || otherShared:
		newState = Shared
	}
	victim, evicted, err := c.Fill(addr, newState)
	if err != nil {
		return nil, err
	}
	if evicted && victim.State.Dirty() {
		// Dirty L1 victims land in the LLC (write-back), marking it dirty.
		if err := h.llc.SetState(victim.Addr, Modified); err != nil {
			return nil, fmt.Errorf("cache: inclusion broken on writeback: %w", err)
		}
	}
	return h.emitted, nil
}

// writeUpgrade handles a write hit: gaining exclusivity if needed.
func (h *Hierarchy) writeUpgrade(c *Cache, addr uint64, st State) error {
	switch st {
	case Modified:
		return nil
	case Exclusive:
		return c.SetState(addr, Modified)
	case Shared, Owned:
		h.everyL1(func(o *Cache) {
			if o != c {
				o.Invalidate(addr)
			}
		})
		return c.SetState(addr, Modified)
	default:
		return fmt.Errorf("cache: write upgrade from %v", st)
	}
}

// llcFill brings a line into the inclusive LLC, back-invalidating L1 copies
// of the victim and writing dirty victims to memory.
func (h *Hierarchy) llcFill(addr uint64) error {
	victim, evicted, err := h.llc.Fill(addr, Exclusive)
	if err != nil {
		return err
	}
	if !evicted {
		return nil
	}
	dirty := victim.State.Dirty()
	h.everyL1(func(o *Cache) {
		if s := o.Invalidate(victim.Addr); s.Dirty() {
			dirty = true
		}
	})
	if dirty {
		h.emitted = append(h.emitted, MemAccess{Addr: victim.Addr, Write: true})
	}
	return nil
}

// CheckInvariants validates MOESI single-writer and LLC inclusion.
func (h *Hierarchy) CheckInvariants() error {
	type holders struct {
		m, e, o, total int
	}
	lines := map[uint64]*holders{}
	var err error
	h.everyL1(func(c *Cache) {
		c.ForEachLine(func(addr uint64, s State) {
			if h.llc.Lookup(addr) == Invalid && err == nil {
				err = fmt.Errorf("cache: L1 line %#x not in inclusive LLC", addr)
			}
			hd := lines[addr]
			if hd == nil {
				hd = &holders{}
				lines[addr] = hd
			}
			hd.total++
			switch s {
			case Modified:
				hd.m++
			case Exclusive:
				hd.e++
			case Owned:
				hd.o++
			}
		})
	})
	if err != nil {
		return err
	}
	for addr, hd := range lines {
		// M and E are exclusive states: no other copy may exist. At most
		// one Owned copy may coexist with Shared copies.
		if (hd.m+hd.e >= 1 && hd.total > 1) || hd.m+hd.e > 1 || hd.o > 1 {
			return fmt.Errorf("cache: line %#x violates single-writer (M=%d E=%d O=%d of %d)",
				addr, hd.m, hd.e, hd.o, hd.total)
		}
	}
	return nil
}
