package cache

import (
	"math/rand"
	"testing"

	"hybridmem/internal/memspec"
)

// tiny returns a 2-set, 2-way, 64B-line cache for deterministic tests.
func tiny(t *testing.T) *Cache {
	t.Helper()
	c, err := New(memspec.CacheSpec{
		Name: "tiny", SizeBytes: 256, Ways: 2, LineBytes: 64, WriteBack: true})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewRejectsBadSpec(t *testing.T) {
	if _, err := New(memspec.CacheSpec{Name: "bad", SizeBytes: 100, Ways: 3, LineBytes: 64}); err == nil {
		t.Error("non-power-of-two sets should error")
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		Invalid: "I", Shared: "S", Exclusive: "E", Owned: "O", Modified: "M", State(9): "?",
	} {
		if s.String() != want {
			t.Errorf("State(%d) = %q, want %q", s, s, want)
		}
	}
	if Invalid.Dirty() || Shared.Dirty() || Exclusive.Dirty() {
		t.Error("clean states reported dirty")
	}
	if !Owned.Dirty() || !Modified.Dirty() {
		t.Error("dirty states reported clean")
	}
}

func TestFillLookupInvalidate(t *testing.T) {
	c := tiny(t)
	if c.Lookup(0) != Invalid {
		t.Error("empty cache should miss")
	}
	if _, _, err := c.Fill(0, Exclusive); err != nil {
		t.Fatal(err)
	}
	if c.Lookup(0) != Exclusive || c.Lookup(63) != Exclusive {
		t.Error("line should cover its full 64B")
	}
	if c.Lookup(64) != Invalid {
		t.Error("adjacent line should miss")
	}
	if got := c.Invalidate(0); got != Exclusive {
		t.Errorf("Invalidate returned %v", got)
	}
	if c.Lookup(0) != Invalid {
		t.Error("line survived invalidation")
	}
	if got := c.Invalidate(0); got != Invalid {
		t.Error("double invalidate should return Invalid")
	}
}

func TestFillInvalidStateRejected(t *testing.T) {
	c := tiny(t)
	if _, _, err := c.Fill(0, Invalid); err == nil {
		t.Error("filling Invalid should error")
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := tiny(t)
	// Set 0 holds lines with addresses 0, 128 (2 sets * 64B lines).
	c.Fill(0, Exclusive)
	c.Fill(128, Exclusive)
	c.Touch(0) // 0 is now MRU; 128 is LRU
	v, evicted, err := c.Fill(256, Exclusive)
	if err != nil {
		t.Fatal(err)
	}
	if !evicted || v.Addr != 128 {
		t.Errorf("victim = %+v, want addr 128", v)
	}
	if c.Stats.Evictions != 1 || c.Stats.Writeback != 0 {
		t.Errorf("stats = %+v", c.Stats)
	}
}

func TestDirtyEvictionCountsWriteback(t *testing.T) {
	c := tiny(t)
	c.Fill(0, Modified)
	c.Fill(128, Exclusive)
	v, _, _ := c.Fill(256, Exclusive) // evicts 0 (LRU, dirty)
	if v.Addr != 0 || !v.State.Dirty() {
		t.Errorf("victim = %+v", v)
	}
	if c.Stats.Writeback != 1 {
		t.Errorf("writebacks = %d", c.Stats.Writeback)
	}
}

func TestSetStateMissingLine(t *testing.T) {
	c := tiny(t)
	if err := c.SetState(0, Modified); err == nil {
		t.Error("SetState on missing line should error")
	}
}

func TestRefillExistingLineNoEviction(t *testing.T) {
	c := tiny(t)
	c.Fill(0, Shared)
	_, evicted, err := c.Fill(0, Modified)
	if err != nil || evicted {
		t.Errorf("refill evicted: %v, %v", evicted, err)
	}
	if c.Lookup(0) != Modified {
		t.Error("refill did not update state")
	}
	if c.Resident() != 1 {
		t.Errorf("resident = %d", c.Resident())
	}
}

func TestHitRatio(t *testing.T) {
	var s Stats
	if s.HitRatio() != 0 {
		t.Error("idle ratio should be 0")
	}
	s.Hits, s.Misses = 3, 1
	if s.HitRatio() != 0.75 {
		t.Errorf("ratio = %v", s.HitRatio())
	}
}

// smallMachine builds a 2-core machine with tiny caches for coherence tests.
func smallMachine() memspec.Machine {
	return memspec.Machine{
		Cores: 2,
		L1D: memspec.CacheSpec{Name: "L1D", SizeBytes: 256, Ways: 2,
			LineBytes: 64, WriteBack: true, LatencyNS: 1},
		L1I: memspec.CacheSpec{Name: "L1I", SizeBytes: 256, Ways: 2,
			LineBytes: 64, WriteBack: true, LatencyNS: 1},
		LLC: memspec.CacheSpec{Name: "LLC", SizeBytes: 1024, Ways: 4,
			LineBytes: 64, WriteBack: true, LatencyNS: 10},
		MainMemoryBytes: 1 << 30,
		Disk:            memspec.DefaultDisk(),
	}
}

func TestHierarchyColdMissEmitsRead(t *testing.T) {
	h, err := NewHierarchy(smallMachine())
	if err != nil {
		t.Fatal(err)
	}
	mem, err := h.Access(0, 0x1000, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(mem) != 1 || mem[0].Write || mem[0].Addr != 0x1000 {
		t.Errorf("traffic = %v", mem)
	}
	// Second access hits in L1: no traffic.
	mem, _ = h.Access(0, 0x1000, false, false)
	if len(mem) != 0 {
		t.Errorf("hit emitted traffic: %v", mem)
	}
	if h.L1D(0).Lookup(0x1000) != Exclusive {
		t.Errorf("solo reader should be Exclusive, got %v", h.L1D(0).Lookup(0x1000))
	}
}

func TestHierarchyReadSharing(t *testing.T) {
	h, _ := NewHierarchy(smallMachine())
	h.Access(0, 0x1000, false, false)
	mem, _ := h.Access(1, 0x1000, false, false)
	if len(mem) != 0 {
		t.Errorf("second reader should hit LLC, traffic: %v", mem)
	}
	if h.L1D(0).Lookup(0x1000) != Shared || h.L1D(1).Lookup(0x1000) != Shared {
		t.Errorf("states = %v/%v, want S/S",
			h.L1D(0).Lookup(0x1000), h.L1D(1).Lookup(0x1000))
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchyWriteInvalidatesSharers(t *testing.T) {
	h, _ := NewHierarchy(smallMachine())
	h.Access(0, 0x1000, false, false)
	h.Access(1, 0x1000, false, false) // both Shared
	h.Access(0, 0x1000, true, false)  // core 0 writes
	if h.L1D(0).Lookup(0x1000) != Modified {
		t.Errorf("writer state = %v, want M", h.L1D(0).Lookup(0x1000))
	}
	if h.L1D(1).Lookup(0x1000) != Invalid {
		t.Errorf("other core still holds %v", h.L1D(1).Lookup(0x1000))
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchyDirtySharingMakesOwned(t *testing.T) {
	h, _ := NewHierarchy(smallMachine())
	h.Access(0, 0x1000, true, false) // core 0: Modified
	mem, _ := h.Access(1, 0x1000, false, false)
	if len(mem) != 0 {
		t.Errorf("cache-to-cache transfer went to memory: %v", mem)
	}
	if h.L1D(0).Lookup(0x1000) != Owned {
		t.Errorf("previous owner = %v, want O", h.L1D(0).Lookup(0x1000))
	}
	if h.L1D(1).Lookup(0x1000) != Shared {
		t.Errorf("reader = %v, want S", h.L1D(1).Lookup(0x1000))
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchyExclusiveToModifiedSilent(t *testing.T) {
	h, _ := NewHierarchy(smallMachine())
	h.Access(0, 0x1000, false, false) // Exclusive
	mem, _ := h.Access(0, 0x1000, true, false)
	if len(mem) != 0 {
		t.Errorf("E->M upgrade emitted traffic: %v", mem)
	}
	if h.L1D(0).Lookup(0x1000) != Modified {
		t.Errorf("state = %v, want M", h.L1D(0).Lookup(0x1000))
	}
}

func TestHierarchyLLCEvictionWritesBackDirty(t *testing.T) {
	h, _ := NewHierarchy(smallMachine())
	// Dirty a line, then stream enough conflicting lines through one LLC set
	// to evict it. LLC: 4 sets of 4 ways; same set every 4*64=256 bytes.
	h.Access(0, 0x0, true, false)
	var wb []MemAccess
	for i := 1; i <= 8; i++ {
		mem, err := h.Access(0, uint64(i)*256, false, false)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mem {
			if m.Write {
				wb = append(wb, m)
			}
		}
	}
	found := false
	for _, m := range wb {
		if m.Addr == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("dirty line 0 never written back; writebacks: %v", wb)
	}
	// Inclusion: the evicted line must be gone from the L1 too.
	if h.L1D(0).Lookup(0) != Invalid {
		t.Error("back-invalidation failed")
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchyInstructionFetch(t *testing.T) {
	h, _ := NewHierarchy(smallMachine())
	mem, err := h.Access(0, 0x2000, false, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(mem) != 1 {
		t.Errorf("cold I-fetch traffic: %v", mem)
	}
	if h.L1I(0).Lookup(0x2000) == Invalid {
		t.Error("I-cache did not keep the line")
	}
	if _, err := h.Access(0, 0x2000, true, true); err == nil {
		t.Error("instruction writes should error")
	}
}

func TestHierarchyCPURange(t *testing.T) {
	h, _ := NewHierarchy(smallMachine())
	if _, err := h.Access(5, 0, false, false); err == nil {
		t.Error("out-of-range cpu should error")
	}
}

func TestHierarchyTimeAccumulates(t *testing.T) {
	h, _ := NewHierarchy(smallMachine())
	h.Access(0, 0x1000, false, false) // miss: L1 + LLC latency
	h.Access(0, 0x1000, false, false) // hit: L1 latency
	if h.TimeNS != 1+10+1 {
		t.Errorf("TimeNS = %v, want 12", h.TimeNS)
	}
}

func TestHierarchyRandomInvariants(t *testing.T) {
	h, err := NewHierarchy(smallMachine())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	reads, writes := 0, 0
	for i := 0; i < 20000; i++ {
		cpu := rng.Intn(2)
		addr := uint64(rng.Intn(64)) * 64 // 64 lines; contention guaranteed
		write := rng.Intn(3) == 0
		instr := !write && rng.Intn(8) == 0
		mem, err := h.Access(cpu, addr, write, instr)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		for _, m := range mem {
			if m.Write {
				writes++
			} else {
				reads++
			}
		}
		if i%500 == 0 {
			if err := h.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if reads == 0 || writes == 0 {
		t.Errorf("expected both fills (%d) and writebacks (%d)", reads, writes)
	}
	// Every line that memory saw was line-aligned.
	if h.LLC().Stats.Misses == 0 {
		t.Error("no LLC misses recorded")
	}
}
