// Package cache implements the CPU cache hierarchy of Table II — split
// 32KB 4-way L1 caches per core and a shared, inclusive 2MB 16-way
// last-level cache, all write-back with 64B lines, kept coherent with the
// MOESI protocol — standing in for the COTSon full-system simulator. Its job
// in the reproduction is to filter CPU-level access streams down to the
// main-memory traffic (LLC miss fills and dirty writebacks) the hybrid
// memory policies actually see.
package cache

import (
	"fmt"

	"hybridmem/internal/memspec"
)

// State is a MOESI coherence state.
type State uint8

// MOESI states.
const (
	Invalid State = iota
	Shared
	Exclusive
	Owned
	Modified
)

// String names the state.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Owned:
		return "O"
	case Modified:
		return "M"
	default:
		return "?"
	}
}

// Dirty reports whether a line in this state holds data newer than the level
// below.
func (s State) Dirty() bool { return s == Owned || s == Modified }

type line struct {
	tag     uint64
	state   State
	lastUse uint64
}

// Stats counts cache events.
type Stats struct {
	Hits, Misses         int64
	Evictions, Writeback int64
}

// HitRatio returns hits / (hits+misses), 0 when idle.
func (s Stats) HitRatio() float64 {
	if t := s.Hits + s.Misses; t > 0 {
		return float64(s.Hits) / float64(t)
	}
	return 0
}

// Cache is one set-associative, write-back cache level with LRU replacement.
type Cache struct {
	spec     memspec.CacheSpec
	sets     [][]line
	setMask  uint64
	lineBits uint
	tick     uint64
	Stats    Stats
}

// New builds a cache from its specification.
func New(spec memspec.CacheSpec) (*Cache, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	sets := spec.Sets()
	c := &Cache{
		spec:    spec,
		sets:    make([][]line, sets),
		setMask: uint64(sets - 1),
	}
	for i := range c.sets {
		c.sets[i] = make([]line, spec.Ways)
	}
	for b := spec.LineBytes; b > 1; b >>= 1 {
		c.lineBits++
	}
	return c, nil
}

// Spec returns the cache's configuration.
func (c *Cache) Spec() memspec.CacheSpec { return c.spec }

func (c *Cache) index(addr uint64) (set uint64, tag uint64) {
	blk := addr >> c.lineBits
	return blk & c.setMask, blk >> uint(popcount(c.setMask))
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// LineAddr reconstructs the line-aligned address of a (set, tag) pair.
func (c *Cache) lineAddr(set, tag uint64) uint64 {
	return ((tag << uint(popcount(c.setMask))) | set) << c.lineBits
}

// Lookup returns the state of the line containing addr without touching LRU.
func (c *Cache) Lookup(addr uint64) State {
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		l := &c.sets[set][i]
		if l.state != Invalid && l.tag == tag {
			return l.state
		}
	}
	return Invalid
}

// Touch refreshes LRU and returns the line's state; Invalid on miss.
// It does not change coherence state (use SetState).
func (c *Cache) Touch(addr uint64) State {
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		l := &c.sets[set][i]
		if l.state != Invalid && l.tag == tag {
			c.tick++
			l.lastUse = c.tick
			return l.state
		}
	}
	return Invalid
}

// SetState changes the coherence state of a resident line. Setting Invalid
// drops the line (a coherence invalidation, not an eviction).
func (c *Cache) SetState(addr uint64, s State) error {
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		l := &c.sets[set][i]
		if l.state != Invalid && l.tag == tag {
			l.state = s
			return nil
		}
	}
	return fmt.Errorf("cache %s: SetState on missing line %#x", c.spec.Name, addr)
}

// Victim describes a line displaced by Fill.
type Victim struct {
	Addr  uint64
	State State
}

// Fill inserts the line containing addr with the given state, evicting the
// LRU way if the set is full. It returns the victim, if any.
func (c *Cache) Fill(addr uint64, s State) (Victim, bool, error) {
	if s == Invalid {
		return Victim{}, false, fmt.Errorf("cache %s: filling %#x with Invalid", c.spec.Name, addr)
	}
	set, tag := c.index(addr)
	c.tick++
	// Already present: just update.
	for i := range c.sets[set] {
		l := &c.sets[set][i]
		if l.state != Invalid && l.tag == tag {
			l.state = s
			l.lastUse = c.tick
			return Victim{}, false, nil
		}
	}
	// Free way?
	for i := range c.sets[set] {
		l := &c.sets[set][i]
		if l.state == Invalid {
			*l = line{tag: tag, state: s, lastUse: c.tick}
			return Victim{}, false, nil
		}
	}
	// Evict LRU.
	lru := 0
	for i := range c.sets[set] {
		if c.sets[set][i].lastUse < c.sets[set][lru].lastUse {
			lru = i
		}
	}
	v := Victim{Addr: c.lineAddr(set, c.sets[set][lru].tag), State: c.sets[set][lru].state}
	c.sets[set][lru] = line{tag: tag, state: s, lastUse: c.tick}
	c.Stats.Evictions++
	if v.State.Dirty() {
		c.Stats.Writeback++
	}
	return v, true, nil
}

// Invalidate drops the line containing addr, returning its prior state.
func (c *Cache) Invalidate(addr uint64) State {
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		l := &c.sets[set][i]
		if l.state != Invalid && l.tag == tag {
			s := l.state
			l.state = Invalid
			return s
		}
	}
	return Invalid
}

// Resident returns the number of valid lines (O(size); for tests).
func (c *Cache) Resident() int {
	n := 0
	for _, set := range c.sets {
		for _, l := range set {
			if l.state != Invalid {
				n++
			}
		}
	}
	return n
}

// ForEachLine calls fn for every valid line (for invariant checks).
func (c *Cache) ForEachLine(fn func(addr uint64, s State)) {
	for si, set := range c.sets {
		for _, l := range set {
			if l.state != Invalid {
				fn(c.lineAddr(uint64(si), l.tag), l.state)
			}
		}
	}
}
