package dramcache

import (
	"math/rand"
	"testing"

	"hybridmem/internal/mm"
	"hybridmem/internal/policy"
	"hybridmem/internal/trace"
)

func mustNew(t *testing.T, dram, nvm int, cfg Config) *Policy {
	t.Helper()
	p, err := New(dram, nvm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 4, DefaultConfig()); err == nil {
		t.Error("zero cache should error")
	}
	if _, err := New(4, 4, DefaultConfig()); err == nil {
		t.Error("cache >= backing should error")
	}
	if _, err := New(2, 8, Config{FillThreshold: 0, CandidateFactor: 1}); err == nil {
		t.Error("zero threshold should error")
	}
	if _, err := New(2, 8, Config{FillThreshold: 1, CandidateFactor: 0}); err == nil {
		t.Error("zero candidate factor should error")
	}
}

func TestFaultsLoadIntoNVM(t *testing.T) {
	p := mustNew(t, 2, 8, DefaultConfig())
	res, err := p.Access(1, trace.OpWrite)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fault || res.ServedFrom != mm.LocNVM {
		t.Errorf("fault: %+v", res)
	}
	if p.sys.Loc(1) != mm.LocNVM {
		t.Error("page should be in NVM (cache fills only after reuse)")
	}
}

func TestFillAfterThresholdAccesses(t *testing.T) {
	p := mustNew(t, 2, 8, Config{FillThreshold: 3, CandidateFactor: 4})
	p.Access(1, trace.OpRead) // fault
	for i := 0; i < 2; i++ {
		res, _ := p.Access(1, trace.OpRead)
		if len(res.Moves) != 0 {
			t.Fatalf("hit %d should not fill yet: %v", i, res.Moves)
		}
		if res.ServedFrom != mm.LocNVM {
			t.Fatalf("pre-fill hit served from %v", res.ServedFrom)
		}
	}
	res, _ := p.Access(1, trace.OpRead) // 3rd NVM hit: fill
	if len(res.Moves) != 1 || res.Moves[0].Reason != policy.ReasonPromotion {
		t.Fatalf("fill moves = %v", res.Moves)
	}
	if p.sys.Loc(1) != mm.LocDRAM || p.Cached() != 1 {
		t.Error("page should be cached now")
	}
	// Subsequent hits are DRAM.
	res, _ = p.Access(1, trace.OpRead)
	if res.ServedFrom != mm.LocDRAM {
		t.Errorf("cached hit served from %v", res.ServedFrom)
	}
}

func TestCleanEvictionIsFree(t *testing.T) {
	p := mustNew(t, 1, 8, Config{FillThreshold: 1, CandidateFactor: 4})
	p.Access(1, trace.OpRead)
	p.Access(1, trace.OpRead) // fills (threshold 1 on first NVM hit)
	if p.Cached() != 1 {
		t.Fatal("page 1 not cached")
	}
	p.Access(2, trace.OpRead)
	res, _ := p.Access(2, trace.OpRead) // fills 2, evicting clean 1
	var sawClean bool
	for _, m := range res.Moves {
		if m.Reason == policy.ReasonDemoteClean && m.Page == 1 {
			sawClean = true
		}
		if m.Reason == policy.ReasonDemotePromo {
			t.Errorf("clean copy evicted as dirty: %v", m)
		}
	}
	if !sawClean {
		t.Errorf("expected clean demotion, moves = %v", res.Moves)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	p := mustNew(t, 1, 8, Config{FillThreshold: 1, CandidateFactor: 4})
	p.Access(1, trace.OpRead)
	p.Access(1, trace.OpRead)  // fill
	p.Access(1, trace.OpWrite) // dirty the cached copy
	p.Access(2, trace.OpRead)
	res, _ := p.Access(2, trace.OpRead) // fill 2, evict dirty 1
	var sawWriteback bool
	for _, m := range res.Moves {
		if m.Reason == policy.ReasonDemotePromo && m.Page == 1 {
			sawWriteback = true
		}
	}
	if !sawWriteback {
		t.Errorf("dirty eviction missing writeback, moves = %v", res.Moves)
	}
}

func TestBackingEvictionInvalidatesCache(t *testing.T) {
	p := mustNew(t, 1, 2, Config{FillThreshold: 1, CandidateFactor: 4})
	p.Access(1, trace.OpRead)
	p.Access(1, trace.OpRead) // cached
	p.Access(2, trace.OpRead)
	// Fault 3: the backing store (2 frames) is full and its LRU page is the
	// cached page 1 (page 2 was faulted in more recently), so the eviction
	// must invalidate the DRAM copy.
	res, err := p.Access(3, trace.OpRead)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cached() != 0 {
		t.Errorf("cache still holds %d pages after backing eviction", p.Cached())
	}
	var evicted []uint64
	for _, m := range res.Moves {
		if m.Reason == policy.ReasonEvict {
			evicted = append(evicted, m.Page)
		}
	}
	if len(evicted) != 1 || evicted[0] != 1 {
		t.Errorf("evicted = %v, want [1]", evicted)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestScanDoesNotPolluteCache(t *testing.T) {
	// One-pass scan pages never reach the fill threshold.
	p := mustNew(t, 4, 64, DefaultConfig())
	for pg := uint64(0); pg < 32; pg++ {
		p.Access(pg, trace.OpRead)
	}
	if p.Cached() != 0 {
		t.Errorf("scan cached %d pages", p.Cached())
	}
}

func TestRandomWorkloadInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	p := mustNew(t, 6, 48, DefaultConfig())
	for i := 0; i < 10000; i++ {
		var page uint64
		if rng.Intn(10) < 7 {
			page = uint64(rng.Intn(8))
		} else {
			page = uint64(8 + rng.Intn(80))
		}
		op := trace.OpRead
		if rng.Intn(3) == 0 {
			op = trace.OpWrite
		}
		res, err := p.Access(page, op)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		// An NVM hit that triggers a fill is served by NVM before the copy,
		// so only move-free hits must match the physical map.
		if got := p.sys.Loc(page); got != res.ServedFrom && !res.Fault && len(res.Moves) == 0 {
			t.Fatalf("step %d: served %v but page at %v", i, res.ServedFrom, got)
		}
		if i%500 == 0 {
			if err := p.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if p.Cached() == 0 {
		t.Error("hot pages never got cached")
	}
}
