// Package dramcache implements the rival architecture the paper's Section
// III describes: DRAM as a page cache in front of an NVM main memory
// ("a group of previous studies tried to use DRAM as a caching layer for
// NVM" [10,14,15]). All resident pages live in NVM; pages that earn enough
// recent accesses are *copied* into a DRAM cache whose hits are served at
// DRAM speed. Dirty cached pages are written back to NVM on eviction; clean
// copies are simply invalidated, which — unlike the exclusive migration
// architectures — costs nothing.
//
// The paper's criticism of this design is that its benefit collapses when
// request locality drops (the cache stops absorbing traffic while its
// capacity is lost to duplication); the architecture-comparison experiment
// reproduces exactly that trade-off against the proposed migration scheme.
package dramcache

import (
	"fmt"

	"hybridmem/internal/lru"
	"hybridmem/internal/mm"
	"hybridmem/internal/policy"
	"hybridmem/internal/trace"
)

// Config tunes the cache-fill filter.
type Config struct {
	// FillThreshold is the number of NVM accesses a page needs while it
	// stays on the candidate list before it is copied into the DRAM cache.
	// 1 caches on first touch.
	FillThreshold int
	// CandidateFactor sizes the candidate list as a multiple of the cache:
	// a page whose re-reference distance exceeds CandidateFactor*cacheFrames
	// distinct recently-referenced pages falls off the list and its count
	// resets. This is the same recency-window idea as the proposed scheme's
	// counters, and it is what keeps slow sweeps from ever qualifying.
	CandidateFactor int
}

// DefaultConfig returns a filter that requires eight hits within a
// 2x-cache-sized recency window, which keeps scans and slow sweeps out of
// the cache.
func DefaultConfig() Config {
	return Config{FillThreshold: 8, CandidateFactor: 2}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.FillThreshold < 1 {
		return fmt.Errorf("dramcache: FillThreshold %d < 1", c.FillThreshold)
	}
	if c.CandidateFactor < 1 {
		return fmt.Errorf("dramcache: CandidateFactor %d < 1", c.CandidateFactor)
	}
	return nil
}

// cacheEntry is the DRAM cache's per-page state.
type cacheEntry struct {
	dirty bool
}

// Policy is the DRAM-as-cache memory manager.
type Policy struct {
	cfg Config
	// backing orders every resident page (the NVM main memory's LRU),
	// including pages currently cached in DRAM.
	backing *lru.List[struct{}]
	// cache is the DRAM page cache (a subset of backing).
	cache *lru.List[cacheEntry]
	sys   *mm.System
	// candidates is the bounded recency list of fill candidates with their
	// hit counts.
	candidates   *lru.List[int]
	candidateCap int
	moves        []policy.Move
}

var _ policy.Policy = (*Policy)(nil)

// New returns a DRAM-cache policy: dramFrames of cache in front of
// nvmFrames of NVM main memory.
func New(dramFrames, nvmFrames int, cfg Config) (*Policy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if dramFrames < 1 || nvmFrames < 1 {
		return nil, fmt.Errorf("dramcache: both zones need frames, got %d/%d",
			dramFrames, nvmFrames)
	}
	if dramFrames >= nvmFrames {
		return nil, fmt.Errorf("dramcache: cache (%d) must be smaller than backing NVM (%d)",
			dramFrames, nvmFrames)
	}
	sys, err := mm.NewSystem(dramFrames, nvmFrames)
	if err != nil {
		return nil, err
	}
	return &Policy{
		cfg:          cfg,
		backing:      lru.New[struct{}](),
		cache:        lru.New[cacheEntry](),
		sys:          sys,
		candidates:   lru.New[int](),
		candidateCap: cfg.CandidateFactor * dramFrames,
	}, nil
}

// Name implements policy.Policy.
func (p *Policy) Name() string { return "dram-cache" }

// System implements policy.Policy.
func (p *Policy) System() *mm.System { return p.sys }

// Capacity: the backing NVM holds every resident page, so residency is
// bounded by the NVM frame count; cached pages occupy DRAM frames instead
// of NVM frames in the physical map, which always leaves the NVM zone with
// room for writebacks.
func (p *Policy) nvmCap() int { return p.sys.Cap(mm.LocNVM) }

// dropCache removes a page's DRAM copy. Dirty copies are written back to
// NVM (a costed move); clean copies are invalidated for free.
func (p *Policy) dropCache(page uint64, e cacheEntry) error {
	reason := policy.ReasonDemoteClean
	if e.dirty {
		reason = policy.ReasonDemotePromo
	}
	if _, err := p.sys.Migrate(page, mm.LocNVM); err != nil {
		return err
	}
	p.moves = append(p.moves, policy.Move{
		Page: page, From: mm.LocDRAM, To: mm.LocNVM, Reason: reason})
	return nil
}

// fill copies a page into the DRAM cache, evicting the cache LRU if full.
func (p *Policy) fill(page uint64) error {
	if p.cache.Len() == p.sys.Cap(mm.LocDRAM) {
		victim, e, _ := p.cache.RemoveBack()
		if err := p.dropCache(victim, e); err != nil {
			return err
		}
	}
	if _, err := p.sys.Migrate(page, mm.LocDRAM); err != nil {
		return err
	}
	if err := p.cache.PushFront(page, cacheEntry{}); err != nil {
		return err
	}
	p.moves = append(p.moves, policy.Move{
		Page: page, From: mm.LocNVM, To: mm.LocDRAM, Reason: policy.ReasonPromotion})
	p.candidates.Remove(page)
	return nil
}

// Access implements policy.Policy.
func (p *Policy) Access(page uint64, op trace.Op) (policy.Result, error) {
	p.moves = p.moves[:0]

	if v, ok := p.cache.Touch(page); ok {
		// Cache hit: refresh the backing recency too.
		p.backing.Touch(page)
		if op == trace.OpWrite {
			v.dirty = true
		}
		return policy.Result{ServedFrom: mm.LocDRAM}, nil
	}

	if _, ok := p.backing.Touch(page); ok {
		// NVM hit: bump the page on the candidate list; pages that fall off
		// the bounded list lose their count, so only pages re-referenced
		// within the recency window can qualify.
		count := 1
		if n, ok := p.candidates.Touch(page); ok {
			*n++
			count = *n
		} else {
			if p.candidates.Len() == p.candidateCap {
				p.candidates.RemoveBack()
			}
			if err := p.candidates.PushFront(page, 1); err != nil {
				return policy.Result{}, err
			}
		}
		if count >= p.cfg.FillThreshold {
			if err := p.fill(page); err != nil {
				return policy.Result{}, err
			}
		}
		return policy.Result{ServedFrom: mm.LocNVM, Moves: p.moves}, nil
	}

	// Page fault: load into the NVM main memory.
	if p.backing.Len() == p.nvmCap() {
		victim, _, _ := p.backing.RemoveBack()
		// A backing eviction invalidates any cached copy; a dirty copy is
		// flushed to disk with the page (write-behind DMA, uncosted like
		// every disk write in the paper's model).
		from := mm.LocNVM
		if _, cached := p.cache.Remove(victim); cached {
			from = mm.LocDRAM
		}
		if err := p.sys.EvictToDisk(victim); err != nil {
			return policy.Result{}, err
		}
		p.moves = append(p.moves, policy.Move{
			Page: victim, From: from, To: mm.LocDisk, Reason: policy.ReasonEvict})
		p.candidates.Remove(victim)
	}
	if _, err := p.sys.Place(page, mm.LocNVM); err != nil {
		return policy.Result{}, err
	}
	if err := p.backing.PushFront(page, struct{}{}); err != nil {
		return policy.Result{}, err
	}
	p.moves = append(p.moves, policy.Move{
		Page: page, From: mm.LocDisk, To: mm.LocNVM, Reason: policy.ReasonFault})
	return policy.Result{ServedFrom: mm.LocNVM, Fault: true, Moves: p.moves}, nil
}

// Cached returns the number of pages currently in the DRAM cache (tests).
func (p *Policy) Cached() int { return p.cache.Len() }

// Resident returns the number of resident pages (tests).
func (p *Policy) Resident() int { return p.backing.Len() }

// CheckInvariants cross-validates the cache and backing structures against
// the physical map.
func (p *Policy) CheckInvariants() error {
	if err := p.backing.CheckInvariants(); err != nil {
		return err
	}
	if err := p.cache.CheckInvariants(); err != nil {
		return err
	}
	if err := p.sys.CheckInvariants(); err != nil {
		return err
	}
	if p.backing.Len() > p.nvmCap() {
		return fmt.Errorf("dramcache: %d resident pages exceed NVM capacity %d",
			p.backing.Len(), p.nvmCap())
	}
	if got := p.sys.Residents(mm.LocDRAM); got != p.cache.Len() {
		return fmt.Errorf("dramcache: cache %d pages, DRAM zone %d", p.cache.Len(), got)
	}
	for _, k := range p.cache.Keys() {
		if !p.backing.Contains(k) {
			return fmt.Errorf("dramcache: cached page %d missing from backing store", k)
		}
		if p.sys.Loc(k) != mm.LocDRAM {
			return fmt.Errorf("dramcache: cached page %d at %s", k, p.sys.Loc(k))
		}
	}
	return nil
}
