// Package report renders experiment results as ASCII tables, stacked-bar
// text charts and CSV, so every figure and table of the paper can be
// regenerated on a terminal and diffed in CI.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row (padded or truncated to the header width).
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// Write renders the table to w.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as CSV (comma-separated, quotes around cells
// containing commas).
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// StackedBars renders grouped stacked bars as text, one row per column.
// Each group's components are drawn with distinct fill runes, scaled so the
// largest total spans width characters.
type StackedBars struct {
	Title   string
	YLabel  string
	Columns []string
	Groups  []BarGroup
	// Width is the maximum bar width in characters (default 60).
	Width int
}

// BarGroup is one bar per column.
type BarGroup struct {
	Name       string
	Components []BarComponent
}

// BarComponent is one stacked segment across all columns.
type BarComponent struct {
	Label  string
	Values []float64
}

// fills are the component fill runes, in order.
var fills = []rune{'#', '=', '.', '+', '~', 'o'}

// Write renders the chart to w.
func (s *StackedBars) Write(w io.Writer) error {
	width := s.Width
	if width <= 0 {
		width = 60
	}
	maxTotal := 0.0
	for _, g := range s.Groups {
		for c := range s.Columns {
			t := 0.0
			for _, comp := range g.Components {
				t += comp.Values[c]
			}
			if t > maxTotal {
				maxTotal = t
			}
		}
	}
	if maxTotal == 0 {
		maxTotal = 1
	}
	var b strings.Builder
	if s.Title != "" {
		fmt.Fprintf(&b, "%s\n", s.Title)
	}
	if s.YLabel != "" {
		fmt.Fprintf(&b, "(%s; full width = %.3g)\n", s.YLabel, maxTotal)
	}
	// Legend.
	for gi, g := range s.Groups {
		if len(s.Groups) > 1 {
			fmt.Fprintf(&b, "group %q: ", g.Name)
		} else {
			_ = gi
			b.WriteString("legend: ")
		}
		for ci, comp := range g.Components {
			if ci > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%c=%s", fills[ci%len(fills)], comp.Label)
		}
		b.WriteString("\n")
	}
	nameW := 0
	for _, c := range s.Columns {
		if len(c) > nameW {
			nameW = len(c)
		}
	}
	for c, col := range s.Columns {
		for gi, g := range s.Groups {
			label := col
			if gi > 0 {
				label = ""
			}
			total := 0.0
			var bar strings.Builder
			for ci, comp := range g.Components {
				v := comp.Values[c]
				total += v
				n := int(v/maxTotal*float64(width) + 0.5)
				for i := 0; i < n; i++ {
					bar.WriteRune(fills[ci%len(fills)])
				}
			}
			tag := ""
			if len(s.Groups) > 1 {
				tag = fmt.Sprintf(" [%s]", g.Name)
			}
			fmt.Fprintf(&b, "%-*s %8.3f |%s%s\n", nameW, label, total, bar.String(), tag)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
