package report

import (
	"io"
	"os"
)

// WithOutput runs emit against the named output: stdout when path is ""
// or "-", otherwise a created/truncated file. File close errors are
// reported — a full disk must not look like a successful run.
func WithOutput(path string, emit func(io.Writer) error) error {
	if path == "" || path == "-" {
		return emit(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = emit(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
