package report

import (
	"strings"
	"testing"
)

func TestTableWrite(t *testing.T) {
	tab := &Table{
		Title:   "Memory Characteristics",
		Headers: []string{"Memory", "Latency", "Power"},
	}
	tab.AddRow("DRAM", "50/50", "3.2/3.2")
	tab.AddRow("NVM (PCM)", "100/350", "6.4/32")
	var b strings.Builder
	if err := tab.Write(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Memory", "NVM (PCM)", "100/350", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title + header + sep + 2 rows
		t.Errorf("got %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestTableShortRow(t *testing.T) {
	tab := &Table{Headers: []string{"a", "b", "c"}}
	tab.AddRow("x") // padded
	var b strings.Builder
	if err := tab.Write(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "x") {
		t.Error("row lost")
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{Headers: []string{"name", "value"}}
	tab.AddRow("plain", "1")
	tab.AddRow("with,comma", "2")
	tab.AddRow(`with"quote`, "3")
	var b strings.Builder
	if err := tab.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "name,value\n") {
		t.Errorf("header wrong:\n%s", out)
	}
	if !strings.Contains(out, `"with,comma",2`) {
		t.Errorf("comma cell not quoted:\n%s", out)
	}
	if !strings.Contains(out, `"with""quote",3`) {
		t.Errorf("quote cell not escaped:\n%s", out)
	}
}

func TestStackedBars(t *testing.T) {
	chart := &StackedBars{
		Title:   "Test Figure",
		YLabel:  "normalized",
		Columns: []string{"wl-a", "wl-b"},
		Width:   20,
		Groups: []BarGroup{{
			Name: "policy",
			Components: []BarComponent{
				{Label: "static", Values: []float64{0.5, 1.0}},
				{Label: "dynamic", Values: []float64{0.5, 1.0}},
			},
		}},
	}
	var b strings.Builder
	if err := chart.Write(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "#=static") && !strings.Contains(out, "#=") {
		t.Errorf("legend missing:\n%s", out)
	}
	// wl-b total (2.0) is the max: its bar should be ~20 chars; wl-a ~10.
	lines := strings.Split(out, "\n")
	var aBar, bBar string
	for _, l := range lines {
		if strings.HasPrefix(l, "wl-a") {
			aBar = l[strings.Index(l, "|")+1:]
		}
		if strings.HasPrefix(l, "wl-b") {
			bBar = l[strings.Index(l, "|")+1:]
		}
	}
	if len(bBar) < 19 || len(bBar) > 21 {
		t.Errorf("wl-b bar length %d, want ~20: %q", len(bBar), bBar)
	}
	if len(aBar) < 9 || len(aBar) > 11 {
		t.Errorf("wl-a bar length %d, want ~10: %q", len(aBar), aBar)
	}
	if !strings.Contains(out, "2.000") {
		t.Errorf("totals missing:\n%s", out)
	}
}

func TestStackedBarsMultiGroup(t *testing.T) {
	chart := &StackedBars{
		Columns: []string{"w"},
		Groups: []BarGroup{
			{Name: "clock-dwf", Components: []BarComponent{{Label: "x", Values: []float64{1}}}},
			{Name: "proposed", Components: []BarComponent{{Label: "x", Values: []float64{0.5}}}},
		},
	}
	var b strings.Builder
	if err := chart.Write(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "[clock-dwf]") || !strings.Contains(out, "[proposed]") {
		t.Errorf("group tags missing:\n%s", out)
	}
}

func TestStackedBarsZeroValues(t *testing.T) {
	chart := &StackedBars{
		Columns: []string{"w"},
		Groups: []BarGroup{{Name: "g", Components: []BarComponent{
			{Label: "x", Values: []float64{0}},
		}}},
	}
	var b strings.Builder
	if err := chart.Write(&b); err != nil {
		t.Fatal(err)
	}
}
