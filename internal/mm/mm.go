// Package mm is the memory-management substrate the migration policies run
// on: physical frame allocation in two zones (DRAM and NVM), an inverted
// page table tracking where every data page resides (DRAM, NVM or disk), and
// per-frame wear counters for the endurance model.
//
// It mirrors the role of the Linux memory-management layer in the paper's
// simulation framework (Section I: "a framework developed similar to Linux
// memory management layer"): policies decide *which* page moves *where*;
// mm enforces that the moves are physically possible (capacity, exclusive
// residence) and keeps the authoritative residence map that the simulator
// cross-checks against policy behaviour.
//
// The trace's addresses are treated as one flat address space, so a single
// page table stands in for the per-process tables of a real kernel; the
// migration scheme operates on physical pages and is agnostic to this.
package mm

import (
	"errors"
	"fmt"
)

// Location says where a data page currently lives.
type Location uint8

// Page locations. LocDisk is both "swapped out" and "never loaded": the
// first access to either costs one disk read (page fault).
const (
	LocDisk Location = iota
	LocDRAM
	LocNVM
)

// String names the location for reports.
func (l Location) String() string {
	switch l {
	case LocDRAM:
		return "DRAM"
	case LocNVM:
		return "NVM"
	default:
		return "disk"
	}
}

// IsMemory reports whether the location is one of the two memory zones.
func (l Location) IsMemory() bool { return l == LocDRAM || l == LocNVM }

// Frame identifies a physical frame: a zone and an index within it.
type Frame struct {
	Zone  Location
	Index int
}

type zone struct {
	capacity int
	free     []int          // free frame indices (LIFO)
	pageOf   map[int]uint64 // frame index -> resident page
	wear     []uint64       // per-physical-frame line-write counters
	// leveler, when set, remaps logical frame indices to physical ones for
	// wear accounting (Start-Gap wear leveling; the zone gets one spare
	// physical frame, so wear has capacity+1 entries).
	leveler *StartGap
}

func newZone(capacity int) *zone {
	z := &zone{
		capacity: capacity,
		free:     make([]int, capacity),
		pageOf:   make(map[int]uint64, capacity),
		wear:     make([]uint64, capacity),
	}
	for i := range z.free {
		// Allocate low indices first: free list is LIFO, so push high first.
		z.free[i] = capacity - 1 - i
	}
	return z
}

func (z *zone) alloc(page uint64) (int, bool) {
	if len(z.free) == 0 {
		return 0, false
	}
	idx := z.free[len(z.free)-1]
	z.free = z.free[:len(z.free)-1]
	z.pageOf[idx] = page
	return idx, true
}

func (z *zone) release(idx int) {
	delete(z.pageOf, idx)
	z.free = append(z.free, idx)
}

// System is the two-zone physical memory with its inverted page table.
type System struct {
	zones map[Location]*zone
	where map[uint64]Frame // resident pages only
}

// NewSystem creates a memory with the given frame counts. A zone may have
// zero frames (the single-technology baselines size the other zone to the
// full capacity).
func NewSystem(dramFrames, nvmFrames int) (*System, error) {
	if dramFrames < 0 || nvmFrames < 0 {
		return nil, errors.New("mm: negative zone size")
	}
	if dramFrames+nvmFrames == 0 {
		return nil, errors.New("mm: memory needs at least one frame")
	}
	return &System{
		zones: map[Location]*zone{
			LocDRAM: newZone(dramFrames),
			LocNVM:  newZone(nvmFrames),
		},
		where: make(map[uint64]Frame),
	}, nil
}

// Cap returns the total frame count of a zone.
func (s *System) Cap(loc Location) int {
	if z, ok := s.zones[loc]; ok {
		return z.capacity
	}
	return 0
}

// Free returns the number of unused frames in a zone.
func (s *System) Free(loc Location) int {
	if z, ok := s.zones[loc]; ok {
		return len(z.free)
	}
	return 0
}

// Residents returns the number of pages currently in a zone.
func (s *System) Residents(loc Location) int {
	if z, ok := s.zones[loc]; ok {
		return len(z.pageOf)
	}
	return 0
}

// Loc returns where a page currently lives (LocDisk if not resident).
func (s *System) Loc(page uint64) Location {
	if f, ok := s.where[page]; ok {
		return f.Zone
	}
	return LocDisk
}

// FrameOf returns the frame a page occupies, if resident.
func (s *System) FrameOf(page uint64) (Frame, bool) {
	f, ok := s.where[page]
	return f, ok
}

// Place loads a non-resident page into the given zone (the page-fault path).
func (s *System) Place(page uint64, loc Location) (Frame, error) {
	if !loc.IsMemory() {
		return Frame{}, fmt.Errorf("mm: cannot place page %d at %s", page, loc)
	}
	if f, ok := s.where[page]; ok {
		return Frame{}, fmt.Errorf("mm: page %d already resident in %s", page, f.Zone)
	}
	idx, ok := s.zones[loc].alloc(page)
	if !ok {
		return Frame{}, fmt.Errorf("mm: %s zone full (%d frames)", loc, s.zones[loc].capacity)
	}
	f := Frame{Zone: loc, Index: idx}
	s.where[page] = f
	return f, nil
}

// Migrate moves a resident page to the other memory zone.
func (s *System) Migrate(page uint64, to Location) (Frame, error) {
	if !to.IsMemory() {
		return Frame{}, fmt.Errorf("mm: cannot migrate page %d to %s", page, to)
	}
	from, ok := s.where[page]
	if !ok {
		return Frame{}, fmt.Errorf("mm: page %d not resident", page)
	}
	if from.Zone == to {
		return Frame{}, fmt.Errorf("mm: page %d already in %s", page, to)
	}
	idx, free := s.zones[to].alloc(page)
	if !free {
		return Frame{}, fmt.Errorf("mm: %s zone full", to)
	}
	s.zones[from.Zone].release(from.Index)
	f := Frame{Zone: to, Index: idx}
	s.where[page] = f
	return f, nil
}

// Swap exchanges the frames of two resident pages in different zones: the
// DMA-buffered page exchange used when a promotion must displace a victim
// and both zones are full.
func (s *System) Swap(a, b uint64) error {
	fa, okA := s.where[a]
	fb, okB := s.where[b]
	if !okA || !okB {
		return fmt.Errorf("mm: swap needs both pages resident (%d:%v, %d:%v)", a, okA, b, okB)
	}
	if fa.Zone == fb.Zone {
		return fmt.Errorf("mm: swap of %d and %d within %s", a, b, fa.Zone)
	}
	s.zones[fa.Zone].pageOf[fa.Index] = b
	s.zones[fb.Zone].pageOf[fb.Index] = a
	s.where[a], s.where[b] = fb, fa
	return nil
}

// EvictToDisk removes a resident page from memory.
func (s *System) EvictToDisk(page uint64) error {
	f, ok := s.where[page]
	if !ok {
		return fmt.Errorf("mm: page %d not resident", page)
	}
	s.zones[f.Zone].release(f.Index)
	delete(s.where, page)
	return nil
}

// EnableWearLeveling routes the zone's wear accounting through a Start-Gap
// leveler with the given gap-move period (in wear events). The zone gains
// one spare physical frame for the rotating gap. Must be called before any
// wear is recorded.
func (s *System) EnableWearLeveling(loc Location, period int) error {
	z, ok := s.zones[loc]
	if !ok || !loc.IsMemory() {
		return fmt.Errorf("mm: no zone at %v", loc)
	}
	if z.leveler != nil {
		return fmt.Errorf("mm: %s wear leveling already enabled", loc)
	}
	for _, w := range z.wear {
		if w != 0 {
			return fmt.Errorf("mm: %s already has wear recorded", loc)
		}
	}
	lv, err := NewStartGap(z.capacity+1, period)
	if err != nil {
		return err
	}
	z.leveler = lv
	z.wear = make([]uint64, z.capacity+1)
	return nil
}

// GapMoves returns the number of Start-Gap rotations a zone's leveler has
// performed (0 without leveling). Each move costs one page copy of
// background overhead.
func (s *System) GapMoves(loc Location) int64 {
	if z, ok := s.zones[loc]; ok && z.leveler != nil {
		return z.leveler.GapMoves
	}
	return 0
}

// chargeWear lands lineWrites on the physical frame behind a logical index.
func (z *zone) chargeWear(index int, lineWrites uint64) error {
	if z.leveler == nil {
		z.wear[index] += lineWrites
		return nil
	}
	// The gap rotates with write volume, as in the original Start-Gap
	// design where the period counts memory writes. Charging line by line
	// lets a page copy straddle gap moves, mirroring the line-granular
	// behaviour of the original design and avoiding resonance between the
	// page size and the rotation step.
	for i := uint64(0); i < lineWrites; i++ {
		phys, err := z.leveler.Remap(index)
		if err != nil {
			return err
		}
		z.wear[phys]++
		z.leveler.RecordWrites(1)
	}
	return nil
}

// AddWear charges lineWrites line-sized writes to the frame holding page.
// The endurance model uses per-frame wear to estimate NVM lifetime.
func (s *System) AddWear(page uint64, lineWrites uint64) error {
	f, ok := s.where[page]
	if !ok {
		return fmt.Errorf("mm: wear on non-resident page %d", page)
	}
	return s.zones[f.Zone].chargeWear(f.Index, lineWrites)
}

// AddWearFrame charges lineWrites to a specific frame. Used when the write
// physically happened on a frame the page has since vacated (e.g. a write
// hit that immediately triggered the page's migration).
func (s *System) AddWearFrame(f Frame, lineWrites uint64) error {
	z, ok := s.zones[f.Zone]
	if !ok {
		return fmt.Errorf("mm: wear on unknown zone %v", f.Zone)
	}
	if f.Index < 0 || f.Index >= z.capacity {
		return fmt.Errorf("mm: wear on out-of-range frame %v", f)
	}
	return z.chargeWear(f.Index, lineWrites)
}

// WearStats summarizes per-frame wear in a zone.
type WearStats struct {
	Total uint64 // line writes summed over all frames
	Max   uint64 // worst single frame
	Used  int    // frames that ever took a write
}

// Wear returns the wear statistics of a zone.
func (s *System) Wear(loc Location) WearStats {
	var ws WearStats
	z, ok := s.zones[loc]
	if !ok {
		return ws
	}
	for _, w := range z.wear {
		ws.Total += w
		if w > ws.Max {
			ws.Max = w
		}
		if w > 0 {
			ws.Used++
		}
	}
	return ws
}

// CheckInvariants validates exclusive residence and zone accounting.
func (s *System) CheckInvariants() error {
	counts := map[Location]int{}
	for page, f := range s.where {
		z, ok := s.zones[f.Zone]
		if !ok {
			return fmt.Errorf("mm: page %d in unknown zone %v", page, f.Zone)
		}
		got, ok := z.pageOf[f.Index]
		if !ok || got != page {
			return fmt.Errorf("mm: page %d claims frame %v, zone says %d (%v)",
				page, f, got, ok)
		}
		counts[f.Zone]++
	}
	for loc, z := range s.zones {
		if counts[loc] != len(z.pageOf) {
			return fmt.Errorf("mm: %s has %d mapped pages but %d residents",
				loc, counts[loc], len(z.pageOf))
		}
		if len(z.pageOf)+len(z.free) != z.capacity {
			return fmt.Errorf("mm: %s frames leaked: %d used + %d free != %d",
				loc, len(z.pageOf), len(z.free), z.capacity)
		}
	}
	return nil
}
