package mm

import "fmt"

// StartGap implements Start-Gap wear leveling (Qureshi et al., MICRO 2009)
// over a zone's frame space: one spare frame plus a gap pointer that rotates
// through the frames, remapping logical frames to physical ones so that
// write-hot logical frames spread their wear over every physical frame.
//
// The endurance analysis (Section III-C) motivates it: without leveling, the
// paper's scheme concentrates NVM writes on the frames that hold demoted
// pages, and the worst frame bounds the memory's lifetime. The wear-leveling
// ablation quantifies how much of that gap Start-Gap closes.
//
// The simulator integrates it at the wear-accounting level: logical wear
// events pass through the remap before landing on physical counters, and
// every GapPeriod writes the gap advances (costing one page copy, which the
// accounting reports).
type StartGap struct {
	frames    int
	gap       int // physical index of the unused spare
	start     int // rotation count (how many full remap steps happened)
	period    int
	sinceMove int
	// GapMoves counts gap advances (each is one page copy of overhead).
	GapMoves int64
}

// NewStartGap creates a leveler for a zone of the given size. period is the
// number of writes between gap moves (the paper's reference uses 100).
func NewStartGap(frames, period int) (*StartGap, error) {
	if frames < 2 {
		return nil, fmt.Errorf("mm: start-gap needs >= 2 frames, got %d", frames)
	}
	if period < 1 {
		return nil, fmt.Errorf("mm: start-gap period %d < 1", period)
	}
	return &StartGap{frames: frames, gap: frames - 1, period: period}, nil
}

// Remap translates a logical frame index to its current physical frame: the
// logical space is laid on the physical ring starting at the start pointer,
// skipping the gap frame. Logical frames before the gap (measured along the
// walk from start) map directly; those at or past it shift by one.
func (s *StartGap) Remap(logical int) (int, error) {
	if logical < 0 || logical >= s.frames-1 {
		// One frame is always the spare, so logical space is frames-1.
		return 0, fmt.Errorf("mm: logical frame %d outside [0,%d)", logical, s.frames-1)
	}
	gapDist := ((s.gap-s.start)%s.frames + s.frames) % s.frames
	phys := logical
	if logical >= gapDist {
		phys++
	}
	return (s.start + phys) % s.frames, nil
}

// RecordWrite notes one write event and advances the gap when the period
// elapses. It returns true when a gap move happened (one page copy of
// overhead).
func (s *StartGap) RecordWrite() bool {
	return s.RecordWrites(1) > 0
}

// RecordWrites notes n write events (e.g. the line writes of a page copy)
// and returns how many gap moves they triggered.
func (s *StartGap) RecordWrites(n uint64) int {
	s.sinceMove += int(n)
	moves := 0
	for s.sinceMove >= s.period {
		s.sinceMove -= s.period
		moves++
		s.GapMoves++
		// Move the gap down one frame; after a full lap, the start pointer
		// advances, shifting the whole mapping by one.
		s.gap--
		if s.gap < 0 {
			s.gap = s.frames - 1
			s.start = (s.start + 1) % s.frames
		}
	}
	return moves
}

// LogicalFrames returns the usable (non-spare) frame count.
func (s *StartGap) LogicalFrames() int { return s.frames - 1 }
