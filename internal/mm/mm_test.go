package mm

import (
	"math/rand"
	"testing"
)

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(-1, 2); err == nil {
		t.Error("negative DRAM size should error")
	}
	if _, err := NewSystem(0, 0); err == nil {
		t.Error("zero total frames should error")
	}
	s, err := NewSystem(0, 4)
	if err != nil {
		t.Fatalf("NVM-only system: %v", err)
	}
	if s.Cap(LocDRAM) != 0 || s.Cap(LocNVM) != 4 {
		t.Errorf("caps = %d/%d", s.Cap(LocDRAM), s.Cap(LocNVM))
	}
}

func TestLocationString(t *testing.T) {
	if LocDRAM.String() != "DRAM" || LocNVM.String() != "NVM" || LocDisk.String() != "disk" {
		t.Error("location names wrong")
	}
	if LocDisk.IsMemory() || !LocDRAM.IsMemory() || !LocNVM.IsMemory() {
		t.Error("IsMemory wrong")
	}
}

func TestPlaceAndCapacity(t *testing.T) {
	s, _ := NewSystem(2, 1)
	if _, err := s.Place(10, LocDRAM); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Place(11, LocDRAM); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Place(12, LocDRAM); err == nil {
		t.Error("placing into a full zone should error")
	}
	if _, err := s.Place(10, LocNVM); err == nil {
		t.Error("placing an already-resident page should error")
	}
	if _, err := s.Place(12, LocDisk); err == nil {
		t.Error("placing to disk should error")
	}
	if s.Free(LocDRAM) != 0 || s.Residents(LocDRAM) != 2 {
		t.Errorf("free/residents = %d/%d", s.Free(LocDRAM), s.Residents(LocDRAM))
	}
	if s.Loc(10) != LocDRAM || s.Loc(99) != LocDisk {
		t.Error("Loc wrong")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMigrate(t *testing.T) {
	s, _ := NewSystem(1, 1)
	s.Place(1, LocDRAM)
	if _, err := s.Migrate(1, LocNVM); err != nil {
		t.Fatal(err)
	}
	if s.Loc(1) != LocNVM {
		t.Errorf("Loc = %v, want NVM", s.Loc(1))
	}
	if s.Free(LocDRAM) != 1 || s.Free(LocNVM) != 0 {
		t.Error("frame accounting after migration wrong")
	}
	if _, err := s.Migrate(1, LocNVM); err == nil {
		t.Error("migrating to current zone should error")
	}
	if _, err := s.Migrate(2, LocDRAM); err == nil {
		t.Error("migrating non-resident page should error")
	}
	s.Place(2, LocDRAM)
	if _, err := s.Migrate(2, LocNVM); err == nil {
		t.Error("migrating into a full zone should error")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEvictToDisk(t *testing.T) {
	s, _ := NewSystem(1, 0)
	s.Place(1, LocDRAM)
	if err := s.EvictToDisk(1); err != nil {
		t.Fatal(err)
	}
	if s.Loc(1) != LocDisk {
		t.Error("page should be on disk")
	}
	if err := s.EvictToDisk(1); err == nil {
		t.Error("evicting non-resident page should error")
	}
	// Frame must be reusable.
	if _, err := s.Place(2, LocDRAM); err != nil {
		t.Fatal(err)
	}
}

func TestWear(t *testing.T) {
	s, _ := NewSystem(1, 2)
	s.Place(1, LocNVM)
	s.Place(2, LocNVM)
	if err := s.AddWear(1, 64); err != nil {
		t.Fatal(err)
	}
	s.AddWear(1, 1)
	s.AddWear(2, 10)
	if err := s.AddWear(3, 1); err == nil {
		t.Error("wear on non-resident page should error")
	}
	ws := s.Wear(LocNVM)
	if ws.Total != 75 || ws.Max != 65 || ws.Used != 2 {
		t.Errorf("wear = %+v, want total 75 max 65 used 2", ws)
	}
	if s.Wear(LocDRAM).Total != 0 {
		t.Error("DRAM wear should be zero")
	}
	// Wear sticks to the frame, not the page: after eviction the frame
	// keeps its history.
	s.EvictToDisk(1)
	if got := s.Wear(LocNVM).Total; got != 75 {
		t.Errorf("wear after eviction = %d, want 75", got)
	}
}

func TestFrameReuseLowIndicesFirst(t *testing.T) {
	s, _ := NewSystem(3, 0)
	f1, _ := s.Place(1, LocDRAM)
	f2, _ := s.Place(2, LocDRAM)
	if f1.Index != 0 || f2.Index != 1 {
		t.Errorf("frames = %d,%d; want 0,1", f1.Index, f2.Index)
	}
}

func TestRandomOpsInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s, _ := NewSystem(8, 16)
	resident := map[uint64]bool{}
	nextPage := uint64(1)
	for step := 0; step < 5000; step++ {
		switch op := rng.Intn(10); {
		case op < 4:
			loc := LocDRAM
			if rng.Intn(2) == 0 {
				loc = LocNVM
			}
			if s.Free(loc) > 0 {
				if _, err := s.Place(nextPage, loc); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				resident[nextPage] = true
				nextPage++
			}
		case op < 7:
			if len(resident) > 0 {
				p := anyPage(rng, resident)
				to := LocDRAM
				if s.Loc(p) == LocDRAM {
					to = LocNVM
				}
				if s.Free(to) > 0 {
					if _, err := s.Migrate(p, to); err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
				}
			}
		case op < 9:
			if len(resident) > 0 {
				p := anyPage(rng, resident)
				if err := s.EvictToDisk(p); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				delete(resident, p)
			}
		default:
			if len(resident) > 0 {
				if err := s.AddWear(anyPage(rng, resident), uint64(rng.Intn(100))); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
			}
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if got := s.Residents(LocDRAM) + s.Residents(LocNVM); got != len(resident) {
			t.Fatalf("step %d: residents %d, want %d", step, got, len(resident))
		}
	}
}

func anyPage(rng *rand.Rand, m map[uint64]bool) uint64 {
	i := rng.Intn(len(m))
	for k := range m {
		if i == 0 {
			return k
		}
		i--
	}
	panic("unreachable")
}
