package mm

import (
	"math/rand"
	"testing"
)

func TestStartGapValidation(t *testing.T) {
	if _, err := NewStartGap(1, 10); err == nil {
		t.Error("1 frame should error")
	}
	if _, err := NewStartGap(8, 0); err == nil {
		t.Error("zero period should error")
	}
}

func TestStartGapRemapBijective(t *testing.T) {
	s, err := NewStartGap(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	// At every rotation state, the remap must be a bijection from logical
	// frames onto physical frames excluding the gap.
	for step := 0; step < 100; step++ {
		seen := map[int]bool{}
		for l := 0; l < s.LogicalFrames(); l++ {
			p, err := s.Remap(l)
			if err != nil {
				t.Fatal(err)
			}
			if p < 0 || p >= 8 {
				t.Fatalf("step %d: physical %d out of range", step, p)
			}
			if p == s.gap {
				t.Fatalf("step %d: logical %d mapped onto the gap", step, l)
			}
			if seen[p] {
				t.Fatalf("step %d: physical %d mapped twice", step, p)
			}
			seen[p] = true
		}
		s.RecordWrite()
	}
}

func TestStartGapRemapBounds(t *testing.T) {
	s, _ := NewStartGap(8, 4)
	if _, err := s.Remap(-1); err == nil {
		t.Error("negative logical should error")
	}
	if _, err := s.Remap(7); err == nil {
		t.Error("logical == frames-1 should error (spare frame)")
	}
}

func TestStartGapPeriod(t *testing.T) {
	s, _ := NewStartGap(8, 3)
	moves := 0
	for i := 0; i < 30; i++ {
		if s.RecordWrite() {
			moves++
		}
	}
	if moves != 10 {
		t.Errorf("gap moves = %d, want 10 (every 3rd write)", moves)
	}
	if s.GapMoves != 10 {
		t.Errorf("GapMoves = %d", s.GapMoves)
	}
}

// TestStartGapLevelsSkewedWear is the point of the mechanism: under a
// heavily skewed write pattern, per-physical-frame wear with Start-Gap is
// far more even than the identity mapping.
func TestStartGapLevelsSkewedWear(t *testing.T) {
	const frames = 64
	const writes = 400000
	rng := rand.New(rand.NewSource(13))

	// 90% of writes hit logical frame 0 (one scorching page slot).
	logical := func() int {
		if rng.Intn(10) < 9 {
			return 0
		}
		return rng.Intn(frames - 1)
	}

	identity := make([]int, frames)
	leveled := make([]int, frames)
	s, _ := NewStartGap(frames, 16)
	for i := 0; i < writes; i++ {
		l := logical()
		identity[l]++
		p, err := s.Remap(l)
		if err != nil {
			t.Fatal(err)
		}
		leveled[p]++
		s.RecordWrite()
	}

	imbalance := func(w []int) float64 {
		max, sum := 0, 0
		for _, v := range w {
			sum += v
			if v > max {
				max = v
			}
		}
		return float64(max) * float64(len(w)) / float64(sum)
	}
	idI, lvI := imbalance(identity), imbalance(leveled)
	if lvI >= idI/4 {
		t.Errorf("start-gap imbalance %.2f not much better than identity %.2f", lvI, idI)
	}
	if lvI > 3 {
		t.Errorf("leveled imbalance %.2f still too skewed", lvI)
	}
}

func TestSystemWearLeveling(t *testing.T) {
	s, _ := NewSystem(0, 8)
	if err := s.EnableWearLeveling(LocNVM, 4); err != nil {
		t.Fatal(err)
	}
	if err := s.EnableWearLeveling(LocNVM, 4); err == nil {
		t.Error("double enable should error")
	}
	if err := s.EnableWearLeveling(LocDisk, 4); err == nil {
		t.Error("disk zone should error")
	}
	// Hammer one page slot; the leveler must spread its wear.
	s.Place(1, LocNVM)
	for i := 0; i < 10000; i++ {
		if err := s.AddWear(1, 1); err != nil {
			t.Fatal(err)
		}
	}
	ws := s.Wear(LocNVM)
	if ws.Total != 10000 {
		t.Fatalf("total wear = %d, want 10000", ws.Total)
	}
	if ws.Used < 8 {
		t.Errorf("wear spread over %d frames, want all 9 physical frames in play", ws.Used)
	}
	// Perfectly even would be 10000/9 ~ 1111; allow slack but demand leveling.
	if ws.Max > 3000 {
		t.Errorf("max frame wear %d: leveling ineffective", ws.Max)
	}
	if s.GapMoves(LocNVM) == 0 {
		t.Error("gap never moved")
	}
	if s.GapMoves(LocDRAM) != 0 {
		t.Error("DRAM should report no gap moves")
	}
}

func TestSystemWearLevelingRejectsDirtyZone(t *testing.T) {
	s, _ := NewSystem(0, 4)
	s.Place(1, LocNVM)
	s.AddWear(1, 5)
	if err := s.EnableWearLeveling(LocNVM, 4); err == nil {
		t.Error("enabling after wear should error")
	}
}
