package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func randomRecords(n int, seed int64) []Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			Addr:  rng.Uint64() &^ 63, // line aligned
			GapNS: rng.Uint32() % 100000,
			Op:    Op(rng.Intn(2)),
			CPU:   uint8(rng.Intn(4)),
		}
	}
	return recs
}

func TestOpString(t *testing.T) {
	if OpRead.String() != "R" || OpWrite.String() != "W" {
		t.Errorf("Op strings = %q/%q, want R/W", OpRead, OpWrite)
	}
}

func TestRecordPage(t *testing.T) {
	r := Record{Addr: 4096*7 + 128}
	if got := r.Page(4096); got != 7 {
		t.Errorf("Page = %d, want 7", got)
	}
}

func TestSliceSource(t *testing.T) {
	recs := randomRecords(10, 1)
	src := NewSliceSource(recs)
	got, err := Materialize(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Error("Materialize over SliceSource did not round-trip")
	}
	// Exhausted source stays exhausted.
	if _, ok := src.Next(); ok {
		t.Error("exhausted source returned a record")
	}
	src.Reset()
	if r, ok := src.Next(); !ok || r != recs[0] {
		t.Error("Reset did not rewind")
	}
}

func TestMaterializeLimit(t *testing.T) {
	recs := randomRecords(10, 2)
	got, err := Materialize(NewSliceSource(recs), 4)
	if err != ErrTruncated {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
	if len(got) != 4 {
		t.Errorf("len = %d, want 4", len(got))
	}
	// Limit exactly at length should not report truncation.
	got, err = Materialize(NewSliceSource(recs), 10)
	if err != nil || len(got) != 10 {
		t.Errorf("exact limit: len=%d err=%v, want 10, nil", len(got), err)
	}
}

func TestConcatAndLimit(t *testing.T) {
	a := randomRecords(3, 3)
	b := randomRecords(2, 4)
	src := Concat(NewSliceSource(a), NewSliceSource(b))
	got, _ := Materialize(src, 0)
	want := append(append([]Record{}, a...), b...)
	if !reflect.DeepEqual(got, want) {
		t.Error("Concat order wrong")
	}
	got, _ = Materialize(Limit(Concat(NewSliceSource(a), NewSliceSource(b)), 4), 0)
	if len(got) != 4 {
		t.Errorf("Limit len = %d, want 4", len(got))
	}
}

func TestFilter(t *testing.T) {
	recs := []Record{{Op: OpRead}, {Op: OpWrite}, {Op: OpRead}}
	got, _ := Materialize(Filter(NewSliceSource(recs), func(r Record) bool {
		return r.Op == OpWrite
	}), 0)
	if len(got) != 1 || got[0].Op != OpWrite {
		t.Errorf("Filter kept %v", got)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	recs := randomRecords(1000, 5)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	n, err := WriteAll(w, NewSliceSource(recs))
	if err != nil || n != 1000 {
		t.Fatalf("WriteAll = %d, %v", n, err)
	}
	r := NewReader(&buf)
	got, err := Materialize(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Err() != nil {
		t.Fatalf("reader error: %v", r.Err())
	}
	if !reflect.DeepEqual(got, recs) {
		t.Error("binary round-trip mismatch")
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(addr uint64, gap uint32, op, cpu uint8) bool {
		rec := Record{Addr: addr, GapNS: gap, Op: Op(op % 2), CPU: cpu}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.Write(rec); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		got, err := NewReader(&buf).Read()
		return err == nil && got == rec
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBinaryRejectsBadMagic(t *testing.T) {
	r := NewReader(bytes.NewBufferString("NOTATRACE-------"))
	if _, err := r.Read(); err == nil {
		t.Error("expected bad-magic error")
	}
	if r.Err() == nil {
		t.Error("Err should report bad magic")
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	got, err := Materialize(r, 0)
	if err != nil || len(got) != 0 {
		t.Errorf("empty trace: %d records, err %v", len(got), err)
	}
	if r.Err() != nil {
		t.Errorf("empty trace Err = %v, want nil", r.Err())
	}
}

func TestTextRoundTrip(t *testing.T) {
	recs := randomRecords(50, 6)
	var buf bytes.Buffer
	if _, err := WriteText(&buf, NewSliceSource(recs)); err != nil {
		t.Fatal(err)
	}
	tr := NewTextReader(&buf)
	got, _ := Materialize(tr, 0)
	if tr.Err() != nil {
		t.Fatal(tr.Err())
	}
	if !reflect.DeepEqual(got, recs) {
		t.Error("text round-trip mismatch")
	}
}

func TestTextReaderSkipsCommentsAndBlank(t *testing.T) {
	input := "# a comment\n\nR 0x00001000 gap=5 cpu=1\n  \nW 0x00002000 gap=0 cpu=0\n"
	tr := NewTextReader(bytes.NewBufferString(input))
	got, _ := Materialize(tr, 0)
	if tr.Err() != nil {
		t.Fatal(tr.Err())
	}
	if len(got) != 2 || got[0].Op != OpRead || got[1].Op != OpWrite {
		t.Errorf("got %v", got)
	}
	if got[0].Addr != 0x1000 || got[0].GapNS != 5 || got[0].CPU != 1 {
		t.Errorf("record fields wrong: %+v", got[0])
	}
}

func TestParseTextLineErrors(t *testing.T) {
	for _, line := range []string{
		"", "R", "X 0x1 gap=0 cpu=0", "R zzz gap=0 cpu=0",
		"R 0x1 gap=x cpu=0", "R 0x1 gap=0 cpu=x", "R 0x1 gap=0 cpu=0 extra",
	} {
		if _, err := ParseTextLine(line); err == nil {
			t.Errorf("ParseTextLine(%q) = nil error", line)
		}
	}
}

func TestStats(t *testing.T) {
	recs := []Record{
		{Addr: 0, Op: OpRead, GapNS: 10},
		{Addr: 100, Op: OpWrite, GapNS: 20},
		{Addr: 4096, Op: OpRead, GapNS: 30},
		{Addr: 8192, Op: OpRead, GapNS: 0},
	}
	s := CollectStats(NewSliceSource(recs), 4096)
	if s.Reads != 3 || s.Writes != 1 || s.Total() != 4 {
		t.Errorf("reads/writes = %d/%d", s.Reads, s.Writes)
	}
	if s.FootprintPages() != 3 {
		t.Errorf("footprint = %d, want 3", s.FootprintPages())
	}
	if s.WorkingSetKB() != 12 {
		t.Errorf("WSS = %dKB, want 12", s.WorkingSetKB())
	}
	if s.TotalGapNS != 60 {
		t.Errorf("gap = %v, want 60", s.TotalGapNS)
	}
	if s.ReadFraction() != 0.75 || s.WriteFraction() != 0.25 {
		t.Errorf("fractions = %v/%v", s.ReadFraction(), s.WriteFraction())
	}
}

func TestStatsEmpty(t *testing.T) {
	s := NewStats(4096)
	if s.ReadFraction() != 0 || s.WriteFraction() != 0 || s.Total() != 0 {
		t.Error("empty stats should be zero")
	}
}
