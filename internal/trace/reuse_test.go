package trace

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func pageRec(page uint64) Record { return Record{Addr: page * 4096} }

func TestReuseAnalyzerValidation(t *testing.T) {
	if _, err := NewReuseAnalyzer(0, 10); err == nil {
		t.Error("zero page size should error")
	}
	if _, err := NewReuseAnalyzer(4096, 0); err == nil {
		t.Error("zero buckets should error")
	}
	if _, err := NewReuseAnalyzer(4096, 64); err == nil {
		t.Error("oversized buckets should error")
	}
}

func TestReuseDistancesExact(t *testing.T) {
	r, err := NewReuseAnalyzer(4096, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Access pattern: A B C A A C. The first reuse of A has distance 2
	// (B and C in between); the immediate repeat has distance 0; the reuse
	// of C sees only the distinct page A above it, distance 1.
	want := []int{-1, -1, -1, 2, 0, 1}
	pages := []uint64{1, 2, 3, 1, 1, 3}
	for i, p := range pages {
		if got := r.Observe(pageRec(p)); got != want[i] {
			t.Errorf("access %d (page %d): distance %d, want %d", i, p, got, want[i])
		}
	}
	if r.Total() != 6 {
		t.Errorf("total = %d", r.Total())
	}
	if got := r.ColdFraction(); got != 0.5 {
		t.Errorf("cold fraction = %v, want 0.5", got)
	}
}

func TestBucketOf(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 2: 2, 3: 2, 4: 3, 7: 3, 8: 4, 1023: 10, 1024: 11}
	for d, want := range cases {
		if got := bucketOf(d); got != want {
			t.Errorf("bucketOf(%d) = %d, want %d", d, got, want)
		}
	}
}

func TestBucketRangesPartition(t *testing.T) {
	// Property: every distance lands in exactly the bucket whose range
	// contains it.
	f := func(raw uint16) bool {
		d := int(raw)
		b := bucketOf(d)
		lo, hi := bucketRange(b)
		return lo <= d && d <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestHitRatioMatchesLRUSimulation cross-validates the analyzer against a
// direct LRU simulation: HitRatioAt(C) must approximate the hit ratio of a
// C-frame LRU memory (exactly on bucket boundaries, interpolated inside).
func TestHitRatioMatchesLRUSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var recs []Record
	for i := 0; i < 20000; i++ {
		var p uint64
		if rng.Intn(10) < 7 {
			p = uint64(rng.Intn(16))
		} else {
			p = uint64(16 + rng.Intn(200))
		}
		recs = append(recs, pageRec(p))
	}
	r, err := AnalyzeReuse(NewSliceSource(recs), 4096, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Direct LRU simulation at power-of-two capacities (bucket boundaries,
	// where the analyzer is exact).
	for _, frames := range []int{16, 32, 64, 128} {
		type node struct{ page uint64 }
		_ = node{}
		order := []uint64{}
		pos := map[uint64]int{}
		hits := 0
		for _, rec := range recs {
			p := rec.Page(4096)
			if i, ok := pos[p]; ok && i < frames {
				hits++
			}
			// Move to front of `order`.
			if i, ok := pos[p]; ok {
				order = append(order[:i], order[i+1:]...)
			}
			order = append([]uint64{p}, order...)
			for i, q := range order {
				pos[q] = i
			}
		}
		want := float64(hits) / float64(len(recs))
		got := r.HitRatioAt(frames)
		if got < want-0.01 || got > want+0.01 {
			t.Errorf("HitRatioAt(%d) = %v, LRU simulation %v", frames, got, want)
		}
	}
}

func TestHistogramOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	r, _ := NewReuseAnalyzer(4096, 16)
	for i := 0; i < 5000; i++ {
		r.Observe(pageRec(uint64(rng.Intn(100))))
	}
	buckets := r.Histogram()
	if len(buckets) == 0 {
		t.Fatal("no buckets")
	}
	total := int64(0)
	for i, b := range buckets {
		if i > 0 && b.LoDistance <= buckets[i-1].LoDistance {
			t.Error("buckets out of order")
		}
		if b.Count <= 0 {
			t.Error("empty bucket reported")
		}
		total += b.Count
	}
	// Histogram counts warm accesses only.
	if total != r.Total()-int64(float64(r.Total())*r.ColdFraction()) {
		t.Errorf("histogram total %d inconsistent with %d accesses", total, r.Total())
	}
}

func TestReuseEmpty(t *testing.T) {
	r, _ := NewReuseAnalyzer(4096, 8)
	if r.ColdFraction() != 0 || r.HitRatioAt(10) != 0 {
		t.Error("empty analyzer should be zero")
	}
}
