package trace

// Stats accumulates the characterization statistics the paper reports in
// Table III: request counts by kind, the distinct-page footprint, and the
// total CPU gap time (used by the timing model).
type Stats struct {
	Reads, Writes int64
	TotalGapNS    float64
	pages         map[uint64]struct{}
	pageSizeBytes int
}

// NewStats returns a Stats accumulator for the given page size.
func NewStats(pageSizeBytes int) *Stats {
	return &Stats{pages: make(map[uint64]struct{}), pageSizeBytes: pageSizeBytes}
}

// Observe records one access.
func (s *Stats) Observe(r Record) {
	if r.Op == OpWrite {
		s.Writes++
	} else {
		s.Reads++
	}
	s.TotalGapNS += float64(r.GapNS)
	s.pages[r.Page(s.pageSizeBytes)] = struct{}{}
}

// Total returns the total number of accesses observed.
func (s *Stats) Total() int64 { return s.Reads + s.Writes }

// FootprintPages returns the number of distinct pages touched.
func (s *Stats) FootprintPages() int { return len(s.pages) }

// WorkingSetKB returns the footprint in kilobytes (Table III "Working Set
// Size (KB)").
func (s *Stats) WorkingSetKB() int {
	return len(s.pages) * s.pageSizeBytes / 1024
}

// ReadFraction returns reads / total (0 for an empty trace).
func (s *Stats) ReadFraction() float64 {
	if t := s.Total(); t > 0 {
		return float64(s.Reads) / float64(t)
	}
	return 0
}

// WriteFraction returns writes / total (0 for an empty trace).
func (s *Stats) WriteFraction() float64 {
	if t := s.Total(); t > 0 {
		return float64(s.Writes) / float64(t)
	}
	return 0
}

// CollectStats drains src and returns its characterization.
func CollectStats(src Source, pageSizeBytes int) *Stats {
	s := NewStats(pageSizeBytes)
	for {
		r, ok := src.Next()
		if !ok {
			return s
		}
		s.Observe(r)
	}
}
