package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary trace format:
//
//	8-byte magic "HMEMTRC1"
//	repeated 14-byte little-endian records:
//	  addr uint64 | gapNS uint32 | op uint8 | cpu uint8
//
// The format is stream-oriented (no record count in the header) so traces can
// be produced and consumed incrementally.
var magic = [8]byte{'H', 'M', 'E', 'M', 'T', 'R', 'C', '1'}

const recordSize = 14

// Writer encodes records to an io.Writer in the binary trace format.
type Writer struct {
	w     *bufio.Writer
	wrote bool
	buf   [recordSize]byte
}

// NewWriter returns a Writer targeting w. The header is written lazily on the
// first record (or on Flush).
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

func (w *Writer) header() error {
	if w.wrote {
		return nil
	}
	w.wrote = true
	_, err := w.w.Write(magic[:])
	return err
}

// Write encodes one record.
func (w *Writer) Write(r Record) error {
	if err := w.header(); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(w.buf[0:8], r.Addr)
	binary.LittleEndian.PutUint32(w.buf[8:12], r.GapNS)
	w.buf[12] = byte(r.Op)
	w.buf[13] = r.CPU
	_, err := w.w.Write(w.buf[:])
	return err
}

// Flush writes any buffered data (and the header, if nothing was written).
func (w *Writer) Flush() error {
	if err := w.header(); err != nil {
		return err
	}
	return w.w.Flush()
}

// Reader decodes records from an io.Reader in the binary trace format.
// It implements Source via Next.
type Reader struct {
	r      *bufio.Reader
	parsed bool
	err    error
	buf    [recordSize]byte
}

// NewReader returns a Reader over r. The header is validated on first read.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// Read returns the next record, or io.EOF at end of stream.
func (r *Reader) Read() (Record, error) {
	if r.err != nil {
		return Record{}, r.err
	}
	if !r.parsed {
		r.parsed = true
		var got [8]byte
		if _, err := io.ReadFull(r.r, got[:]); err != nil {
			r.err = fmt.Errorf("trace: reading header: %w", err)
			return Record{}, r.err
		}
		if got != magic {
			r.err = fmt.Errorf("trace: bad magic %q", got[:])
			return Record{}, r.err
		}
	}
	if _, err := io.ReadFull(r.r, r.buf[:]); err != nil {
		if err == io.EOF {
			r.err = io.EOF
		} else {
			r.err = fmt.Errorf("trace: reading record: %w", err)
		}
		return Record{}, r.err
	}
	return Record{
		Addr:  binary.LittleEndian.Uint64(r.buf[0:8]),
		GapNS: binary.LittleEndian.Uint32(r.buf[8:12]),
		Op:    Op(r.buf[12]),
		CPU:   r.buf[13],
	}, nil
}

// Next implements Source. Decode errors terminate the stream; check Err.
func (r *Reader) Next() (Record, bool) {
	rec, err := r.Read()
	return rec, err == nil
}

// Err returns the error that terminated the stream, or nil. io.EOF is
// reported as nil (normal end of trace).
func (r *Reader) Err() error {
	if r.err == io.EOF {
		return nil
	}
	return r.err
}

// WriteAll drains src into w and returns the number of records written.
func WriteAll(w *Writer, src Source) (int, error) {
	n := 0
	for {
		rec, ok := src.Next()
		if !ok {
			return n, w.Flush()
		}
		if err := w.Write(rec); err != nil {
			return n, err
		}
		n++
	}
}
