package trace

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteText renders records from src to w in a human-readable line format:
//
//	R 0x00001000 gap=120 cpu=0
//	W 0x00002040 gap=0 cpu=2
//
// It returns the number of records written.
func WriteText(w io.Writer, src Source) (int, error) {
	bw := bufio.NewWriter(w)
	n := 0
	for {
		r, ok := src.Next()
		if !ok {
			return n, bw.Flush()
		}
		if _, err := fmt.Fprintf(bw, "%s 0x%08x gap=%d cpu=%d\n",
			r.Op, r.Addr, r.GapNS, r.CPU); err != nil {
			return n, err
		}
		n++
	}
}

// ParseTextLine parses one line of the text format.
func ParseTextLine(line string) (Record, error) {
	fields := strings.Fields(line)
	if len(fields) != 4 {
		return Record{}, fmt.Errorf("trace: want 4 fields, got %d in %q", len(fields), line)
	}
	var rec Record
	switch fields[0] {
	case "R":
		rec.Op = OpRead
	case "W":
		rec.Op = OpWrite
	default:
		return Record{}, fmt.Errorf("trace: bad op %q", fields[0])
	}
	if _, err := fmt.Sscanf(fields[1], "0x%x", &rec.Addr); err != nil {
		return Record{}, fmt.Errorf("trace: bad address %q: %w", fields[1], err)
	}
	if _, err := fmt.Sscanf(fields[2], "gap=%d", &rec.GapNS); err != nil {
		return Record{}, fmt.Errorf("trace: bad gap %q: %w", fields[2], err)
	}
	if _, err := fmt.Sscanf(fields[3], "cpu=%d", &rec.CPU); err != nil {
		return Record{}, fmt.Errorf("trace: bad cpu %q: %w", fields[3], err)
	}
	return rec, nil
}

// TextReader streams records from the text format, skipping blank lines and
// '#' comments. It implements Source.
type TextReader struct {
	sc  *bufio.Scanner
	err error
}

// NewTextReader returns a TextReader over r.
func NewTextReader(r io.Reader) *TextReader {
	return &TextReader{sc: bufio.NewScanner(r)}
}

// Next implements Source.
func (t *TextReader) Next() (Record, bool) {
	if t.err != nil {
		return Record{}, false
	}
	for t.sc.Scan() {
		line := strings.TrimSpace(t.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rec, err := ParseTextLine(line)
		if err != nil {
			t.err = err
			return Record{}, false
		}
		return rec, true
	}
	t.err = t.sc.Err()
	return Record{}, false
}

// Err returns the error that terminated the stream, if any.
func (t *TextReader) Err() error { return t.err }
