package trace

import (
	"fmt"
	"sort"
)

// ReuseAnalyzer measures page-level LRU stack distances (reuse distances):
// for each access, the number of distinct pages touched since the previous
// access to the same page. The distribution determines every LRU-family
// policy's hit ratio directly — an access hits a memory of C frames exactly
// when its reuse distance is < C — so it is the locality ground truth the
// workload generators are calibrated against.
type ReuseAnalyzer struct {
	pageSize int
	// stack is the LRU ordering of pages (front = MRU); index = distance.
	stack *stackList
	// hist counts reuse distances into power-of-two buckets; the last
	// bucket collects cold (first-touch) accesses.
	hist   []int64
	total  int64
	colds  int64
	maxBkt int
}

// stackList is a doubly-linked list with a position-counting walk.
type stackList struct {
	nodes map[uint64]*stackNode
	head  *stackNode
}

type stackNode struct {
	page       uint64
	prev, next *stackNode
}

// NewReuseAnalyzer creates an analyzer with 2^maxBucket as the largest
// distinguished distance.
func NewReuseAnalyzer(pageSizeBytes, maxBucket int) (*ReuseAnalyzer, error) {
	if pageSizeBytes <= 0 {
		return nil, fmt.Errorf("trace: page size %d", pageSizeBytes)
	}
	if maxBucket < 1 || maxBucket > 40 {
		return nil, fmt.Errorf("trace: maxBucket %d outside [1,40]", maxBucket)
	}
	return &ReuseAnalyzer{
		pageSize: pageSizeBytes,
		stack:    &stackList{nodes: make(map[uint64]*stackNode)},
		hist:     make([]int64, maxBucket+1),
		maxBkt:   maxBucket,
	}, nil
}

// Observe processes one access and returns its reuse distance
// (-1 for a cold first touch).
func (r *ReuseAnalyzer) Observe(rec Record) int {
	page := rec.Page(r.pageSize)
	r.total++
	d := r.stack.moveToFront(page)
	if d < 0 {
		r.colds++
		return -1
	}
	b := bucketOf(d)
	if b > r.maxBkt {
		b = r.maxBkt
	}
	r.hist[b]++
	return d
}

// bucketOf maps a distance to its power-of-two bucket: 0 -> 0, 1 -> 1,
// 2..3 -> 2, 4..7 -> 3, ...
func bucketOf(d int) int {
	b := 0
	for v := d; v > 0; v >>= 1 {
		b++
	}
	return b
}

// moveToFront returns the page's current stack depth (distinct pages above
// it) and moves it to the front; -1 if the page was never seen.
//
// The walk makes Observe O(distance); across a trace this is bounded by
// O(n * footprint) worst case but is far cheaper on local workloads, and it
// is exact — the tool is for offline characterization, not the simulation
// hot path.
func (s *stackList) moveToFront(page uint64) int {
	n, ok := s.nodes[page]
	if !ok {
		n = &stackNode{page: page}
		s.nodes[page] = n
		if s.head != nil {
			n.next = s.head
			s.head.prev = n
		}
		s.head = n
		return -1
	}
	d := 0
	for cur := s.head; cur != n; cur = cur.next {
		d++
	}
	if n != s.head {
		n.prev.next = n.next
		if n.next != nil {
			n.next.prev = n.prev
		}
		n.prev = nil
		n.next = s.head
		s.head.prev = n
		s.head = n
	}
	return d
}

// Total returns the number of accesses observed.
func (r *ReuseAnalyzer) Total() int64 { return r.total }

// ColdFraction returns the share of first-touch accesses.
func (r *ReuseAnalyzer) ColdFraction() float64 {
	if r.total == 0 {
		return 0
	}
	return float64(r.colds) / float64(r.total)
}

// HitRatioAt returns the fraction of accesses whose reuse distance is below
// the given frame count: the exact LRU hit ratio of a memory that large.
func (r *ReuseAnalyzer) HitRatioAt(frames int) float64 {
	if r.total == 0 || frames <= 0 {
		return 0
	}
	// Buckets fully below `frames` count entirely; the straddling bucket is
	// interpolated linearly.
	var hits float64
	for b, n := range r.hist {
		lo, hi := bucketRange(b)
		switch {
		case hi < frames:
			hits += float64(n)
		case lo >= frames:
			// beyond
		default:
			span := float64(hi - lo + 1)
			hits += float64(n) * float64(frames-lo) / span
		}
	}
	return hits / float64(r.total)
}

// bucketRange returns the inclusive distance range of bucket b.
func bucketRange(b int) (lo, hi int) {
	if b == 0 {
		return 0, 0
	}
	return 1 << (b - 1), 1<<b - 1
}

// Buckets returns (loDistance, count) pairs for non-empty buckets in order.
type ReuseBucket struct {
	LoDistance, HiDistance int
	Count                  int64
}

// Histogram returns the non-empty buckets in ascending distance order.
func (r *ReuseAnalyzer) Histogram() []ReuseBucket {
	var out []ReuseBucket
	for b, n := range r.hist {
		if n == 0 {
			continue
		}
		lo, hi := bucketRange(b)
		out = append(out, ReuseBucket{LoDistance: lo, HiDistance: hi, Count: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].LoDistance < out[j].LoDistance })
	return out
}

// AnalyzeReuse drains a source through a fresh analyzer.
func AnalyzeReuse(src Source, pageSizeBytes, maxBucket int) (*ReuseAnalyzer, error) {
	r, err := NewReuseAnalyzer(pageSizeBytes, maxBucket)
	if err != nil {
		return nil, err
	}
	for {
		rec, ok := src.Next()
		if !ok {
			return r, nil
		}
		r.Observe(rec)
	}
}
