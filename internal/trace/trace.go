// Package trace defines the memory-access trace format that connects the
// workload generators and the full-system (COTSon-substitute) pipeline to the
// hybrid-memory simulator, together with binary and text codecs and
// characterization statistics (the raw material of the paper's Table III).
//
// A Record is one main-memory access: one line-sized read or write that
// missed (or was written back from) the CPU cache hierarchy. GapNS carries
// the CPU time spent executing since the previous main-memory access, which
// the timing model uses to prorate static power over wall-clock time (Eq. 3).
package trace

import "errors"

// Op distinguishes reads from writes.
type Op uint8

// The two access kinds.
const (
	OpRead Op = iota
	OpWrite
)

// String returns "R" or "W".
func (o Op) String() string {
	if o == OpWrite {
		return "W"
	}
	return "R"
}

// Record is a single main-memory access.
type Record struct {
	// Addr is the byte address of the access (line-aligned for post-LLC
	// traffic).
	Addr uint64
	// GapNS is CPU execution time since the previous record, in nanoseconds:
	// the time the core spent on instructions and cache hits that did not
	// reach main memory.
	GapNS uint32
	// Op is the access kind.
	Op Op
	// CPU is the issuing core (0-based).
	CPU uint8
}

// Page returns the page number of the access for the given page size.
func (r Record) Page(pageSizeBytes int) uint64 {
	return r.Addr / uint64(pageSizeBytes)
}

// Source is a stream of records. Next returns the next record and true, or a
// zero Record and false when the stream is exhausted. Sources are typically
// deterministic generators; re-creating one with the same seed replays the
// same stream.
type Source interface {
	Next() (Record, bool)
}

// SliceSource streams a materialized record slice.
type SliceSource struct {
	recs []Record
	i    int
}

// NewSliceSource returns a Source over recs.
func NewSliceSource(recs []Record) *SliceSource { return &SliceSource{recs: recs} }

// Next implements Source.
func (s *SliceSource) Next() (Record, bool) {
	if s.i >= len(s.recs) {
		return Record{}, false
	}
	r := s.recs[s.i]
	s.i++
	return r, true
}

// Reset rewinds the source to the beginning.
func (s *SliceSource) Reset() { s.i = 0 }

// ErrTruncated reports that Materialize hit its record limit before the
// source was exhausted.
var ErrTruncated = errors.New("trace: materialize limit reached before end of source")

// Materialize drains src into a slice, up to max records (max <= 0 means
// unlimited). It returns ErrTruncated if the limit cut the stream short.
func Materialize(src Source, max int) ([]Record, error) {
	var recs []Record
	for {
		if max > 0 && len(recs) == max {
			if _, ok := src.Next(); ok {
				return recs, ErrTruncated
			}
			return recs, nil
		}
		r, ok := src.Next()
		if !ok {
			return recs, nil
		}
		recs = append(recs, r)
	}
}

// FuncSource adapts a closure to the Source interface.
type FuncSource func() (Record, bool)

// Next implements Source.
func (f FuncSource) Next() (Record, bool) { return f() }

// Concat returns a Source that streams each source in turn.
func Concat(srcs ...Source) Source {
	i := 0
	return FuncSource(func() (Record, bool) {
		for i < len(srcs) {
			if r, ok := srcs[i].Next(); ok {
				return r, true
			}
			i++
		}
		return Record{}, false
	})
}

// Limit returns a Source that stops after n records.
func Limit(src Source, n int) Source {
	seen := 0
	return FuncSource(func() (Record, bool) {
		if seen >= n {
			return Record{}, false
		}
		r, ok := src.Next()
		if ok {
			seen++
		}
		return r, ok
	})
}

// Filter returns a Source yielding only records for which keep returns true.
func Filter(src Source, keep func(Record) bool) Source {
	return FuncSource(func() (Record, bool) {
		for {
			r, ok := src.Next()
			if !ok {
				return Record{}, false
			}
			if keep(r) {
				return r, true
			}
		}
	})
}
