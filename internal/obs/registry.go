// Package obs is the observability layer for the hybrid-memory engine:
// a zero-allocation metrics registry (striped padded counters, padded
// gauges, atomic log-bucket histograms), a lock-free bounded ring of
// migration events, and an admin HTTP plane exposing Prometheus text
// metrics, pprof profiles, health/readiness probes, and the event ring.
//
// Design rules, in the spirit of the engine's serve path:
//
//   - Registration (Counter, Gauge, Histogram, *Func) happens at startup
//     and may allocate; it panics on invalid or duplicate registration
//     because every caller is in-tree and a bad series name is a bug.
//   - The update path (Counter.Inc/Add, Gauge.Set/Add,
//     Histogram.Observe, EventRing.Publish) never allocates, never
//     locks, and is safe for any number of concurrent writers.
//   - Reads (Snapshot, WritePrometheus, EventRing.Snapshot) are
//     lazy sums over the striped cells: each individual value is
//     monotone (for counters) but values read in one pass are not a
//     consistent cut — the same model as tiered.Stats.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

const cacheLine = 64

// maxStripes bounds counter striping, mirroring the engine's serve cells.
const maxStripes = 64

// cpad is one counter cell on its own cache line.
type cpad struct {
	v atomic.Int64
	_ [cacheLine - 8]byte
}

// Counter is a monotonically increasing, striped counter. Writers pick a
// stripe (any value — it is masked down) so unrelated goroutines do not
// share a cache line; Value lazily sums the stripes.
type Counter struct {
	cells []cpad
	mask  uint64
}

// NewCounter returns a standalone counter with the given stripe count
// (rounded up to a power of two, capped at 64; values < 1 mean 1).
// Use Registry.Counter to create and register in one step.
func NewCounter(stripes int) *Counter {
	n := 1
	for n < stripes && n < maxStripes {
		n <<= 1
	}
	return &Counter{cells: make([]cpad, n), mask: uint64(n - 1)}
}

// Inc adds 1 to the stripe selected by key.
func (c *Counter) Inc(key uint64) { c.cells[key&c.mask].v.Add(1) }

// Add adds d (which must be >= 0) to the stripe selected by key.
func (c *Counter) Add(key uint64, d int64) { c.cells[key&c.mask].v.Add(d) }

// Value lazily sums the stripes. Monotone across calls, but stripes are
// read one at a time, so the sum is not a consistent instantaneous cut.
func (c *Counter) Value() int64 {
	var t int64
	for i := range c.cells {
		t += c.cells[i].v.Load()
	}
	return t
}

// Gauge is a settable instantaneous value on its own cache line.
type Gauge struct {
	v atomic.Int64
	_ [cacheLine - 8]byte
}

// NewGauge returns a standalone gauge. Use Registry.Gauge to create and
// register in one step.
func NewGauge() *Gauge { return &Gauge{} }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by d (may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Kind describes how a metric's samples are interpreted.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Label is one name=value pair attached to a series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Sample is one series' value at Snapshot time.
type Sample struct {
	Name   string
	Labels []Label
	Kind   Kind
	// Value is the counter/gauge value; for histograms it is the sum
	// of observed values.
	Value int64
	// Count and Buckets are populated for histograms only. Buckets
	// holds cumulative counts; Bucket i covers observations <= Le[i].
	Count   uint64
	Le      []uint64
	Buckets []uint64
}

// Label returns the value of the label with the given key, or "".
func (s Sample) Label(key string) string {
	for _, l := range s.Labels {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}

type metric struct {
	name   string
	help   string
	labels []Label
	kind   Kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() int64 // counter/gauge backed by an external atomic
}

// Registry holds registered metrics and renders them as snapshots or
// Prometheus text. Registration is mutex-guarded (startup only); the
// metric update paths never touch the registry.
type Registry struct {
	mu      sync.RWMutex
	metrics []*metric
	names   []string // unique metric names in first-registration order
	byName  map[string][]*metric
	kinds   map[string]Kind
	series  map[string]struct{} // name + rendered labels, for duplicate detection
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byName: make(map[string][]*metric),
		kinds:  make(map[string]Kind),
		series: make(map[string]struct{}),
	}
}

func (r *Registry) register(m *metric) {
	if !validName(m.name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", m.name))
	}
	for _, l := range m.labels {
		if !validName(l.Key) {
			panic(fmt.Sprintf("obs: invalid label key %q on %s", l.Key, m.name))
		}
	}
	// Canonical label order so {a=1,b=2} and {b=2,a=1} are one series.
	sort.Slice(m.labels, func(i, j int) bool { return m.labels[i].Key < m.labels[j].Key })
	id := seriesID(m.name, m.labels)

	r.mu.Lock()
	defer r.mu.Unlock()
	if k, ok := r.kinds[m.name]; ok && k != m.kind {
		panic(fmt.Sprintf("obs: metric %s registered as both %s and %s", m.name, k, m.kind))
	}
	if _, dup := r.series[id]; dup {
		panic(fmt.Sprintf("obs: duplicate series %s", id))
	}
	if _, seen := r.kinds[m.name]; !seen {
		r.kinds[m.name] = m.kind
		r.names = append(r.names, m.name)
	}
	r.series[id] = struct{}{}
	r.byName[m.name] = append(r.byName[m.name], m)
	r.metrics = append(r.metrics, m)
}

// Counter creates a striped counter and registers it under name with the
// given labels. stripes <= 1 yields a single cell.
func (r *Registry) Counter(name, help string, stripes int, labels ...Label) *Counter {
	c := NewCounter(stripes)
	r.register(&metric{name: name, help: help, labels: labels, kind: KindCounter, counter: c})
	return c
}

// Gauge creates a gauge and registers it.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := NewGauge()
	r.register(&metric{name: name, help: help, labels: labels, kind: KindGauge, gauge: g})
	return g
}

// Histogram creates a log-bucket histogram and registers it.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	h := NewHistogram()
	r.register(&metric{name: name, help: help, labels: labels, kind: KindHistogram, hist: h})
	return h
}

// CounterFunc registers a counter series whose value is produced by fn
// at read time — the way engine counters that already exist as padded
// atomics are exported without adding a second write on the hot path.
// fn must be safe for concurrent use and monotone non-decreasing.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...Label) {
	r.register(&metric{name: name, help: help, labels: labels, kind: KindCounter, fn: fn})
}

// GaugeFunc registers a gauge series computed by fn at read time.
func (r *Registry) GaugeFunc(name, help string, fn func() int64, labels ...Label) {
	r.register(&metric{name: name, help: help, labels: labels, kind: KindGauge, fn: fn})
}

// AttachHistogram registers an existing standalone histogram (e.g. one a
// subsystem created before it had a registry).
func (r *Registry) AttachHistogram(name, help string, h *Histogram, labels ...Label) {
	r.register(&metric{name: name, help: help, labels: labels, kind: KindHistogram, hist: h})
}

func (m *metric) value() int64 {
	switch {
	case m.counter != nil:
		return m.counter.Value()
	case m.gauge != nil:
		return m.gauge.Value()
	case m.fn != nil:
		return m.fn()
	}
	return 0
}

// Snapshot returns one Sample per registered series. Values are read
// lazily (see the package comment's consistency model). The result is
// freshly allocated and safe to retain.
func (r *Registry) Snapshot() []Sample {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Sample, 0, len(r.metrics))
	for _, name := range r.names {
		for _, m := range r.byName[name] {
			s := Sample{Name: m.name, Kind: m.kind}
			if len(m.labels) > 0 {
				s.Labels = append([]Label(nil), m.labels...)
			}
			if m.kind == KindHistogram {
				s.Count, s.Value, s.Le, s.Buckets = m.hist.snapshot()
			} else {
				s.Value = m.value()
			}
			out = append(out, s)
		}
	}
	return out
}

// Find returns the first snapshot sample matching name and all given
// labels, or false. Convenience for examples and tests.
func Find(samples []Sample, name string, labels ...Label) (Sample, bool) {
outer:
	for _, s := range samples {
		if s.Name != name {
			continue
		}
		for _, want := range labels {
			if s.Label(want.Key) != want.Value {
				continue outer
			}
		}
		return s, true
	}
	return Sample{}, false
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func seriesID(name string, labels []Label) string {
	id := name + "{"
	for i, l := range labels {
		if i > 0 {
			id += ","
		}
		id += l.Key + "=" + l.Value
	}
	return id + "}"
}
