package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"
)

// AdminConfig configures the admin HTTP plane.
type AdminConfig struct {
	// Addr is the listen address, e.g. ":6060" or "127.0.0.1:0".
	Addr string
	// Registry backs /metrics (required for that endpoint).
	Registry *Registry
	// Events backs /events (optional).
	Events *EventRing
	// Ready is consulted by /readyz: nil error (or nil func) = ready.
	Ready func() error
	// Invariants is run by /readyz?invariants=1 — typically the
	// engine's CheckInvariants, which is only meaningful on a
	// quiesced engine. Optional.
	Invariants func() error
	// Profiles enables mutex and block profiling for the lifetime of
	// the server so /debug/pprof/{mutex,block} carry data. Off by
	// default because sampling costs the hot path a little.
	Profiles bool
	// Tool, Scale, Seed fill the artifact header for
	// /events?format=artifact.
	Tool  string
	Scale float64
	Seed  int64
}

// Admin is the observability HTTP server: /metrics (Prometheus text),
// /healthz, /readyz, /events, and /debug/pprof/* on a private mux (the
// package-global http.DefaultServeMux is never touched).
type Admin struct {
	cfg      AdminConfig
	ln       net.Listener
	srv      *http.Server
	serving  atomic.Bool
	prevMu   int // mutex profile fraction to restore on Shutdown
	profiles bool
}

// NewAdmin builds the admin plane. Call Listen to start serving.
func NewAdmin(cfg AdminConfig) (*Admin, error) {
	if cfg.Addr == "" {
		return nil, fmt.Errorf("obs: admin address required")
	}
	if cfg.Tool == "" {
		cfg.Tool = "tierd"
	}
	a := &Admin{cfg: cfg}
	mux := http.NewServeMux()
	mux.HandleFunc("/", a.handleIndex)
	mux.HandleFunc("/metrics", a.handleMetrics)
	mux.HandleFunc("/healthz", a.handleHealthz)
	mux.HandleFunc("/readyz", a.handleReadyz)
	mux.HandleFunc("/events", a.handleEvents)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	a.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	return a, nil
}

// Listen binds the address and serves in a background goroutine.
func (a *Admin) Listen() error {
	ln, err := net.Listen("tcp", a.cfg.Addr)
	if err != nil {
		return fmt.Errorf("obs: admin listen %s: %w", a.cfg.Addr, err)
	}
	a.ln = ln
	if a.cfg.Profiles && !a.profiles {
		a.profiles = true
		a.prevMu = runtime.SetMutexProfileFraction(5)
		runtime.SetBlockProfileRate(10_000) // one sample per 10µs blocked
	}
	a.serving.Store(true)
	go func() {
		// ErrServerClosed is the normal Shutdown result.
		_ = a.srv.Serve(ln)
	}()
	return nil
}

// Addr returns the bound listener address (valid after Listen).
func (a *Admin) Addr() net.Addr {
	if a.ln == nil {
		return nil
	}
	return a.ln.Addr()
}

// URL returns the http base URL of the bound listener.
func (a *Admin) URL() string {
	if a.ln == nil {
		return ""
	}
	return "http://" + a.ln.Addr().String()
}

// Shutdown gracefully stops the server, waiting up to grace for
// in-flight requests, and restores profiling rates it enabled.
func (a *Admin) Shutdown(grace time.Duration) error {
	if !a.serving.Swap(false) {
		return nil
	}
	if a.profiles {
		a.profiles = false
		runtime.SetMutexProfileFraction(a.prevMu)
		runtime.SetBlockProfileRate(0)
	}
	ctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	return a.srv.Shutdown(ctx)
}

func (a *Admin) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, "tierd admin plane\n\n"+
		"/metrics        Prometheus text metrics\n"+
		"/healthz        liveness\n"+
		"/readyz         readiness (?invariants=1 runs engine invariants; quiesced engines only)\n"+
		"/events         migration event ring (?format=artifact for results/v1, ?n=K for last K)\n"+
		"/debug/pprof/   profiles (heap, goroutine, mutex, block, cpu, trace)\n")
}

func (a *Admin) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if a.cfg.Registry == nil {
		http.Error(w, "no registry configured", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = a.cfg.Registry.WritePrometheus(w)
}

func (a *Admin) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (a *Admin) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if a.cfg.Ready != nil {
		if err := a.cfg.Ready(); err != nil {
			http.Error(w, "not ready: "+err.Error(), http.StatusServiceUnavailable)
			return
		}
	}
	if r.URL.Query().Get("invariants") == "1" && a.cfg.Invariants != nil {
		if err := a.cfg.Invariants(); err != nil {
			http.Error(w, "invariants: "+err.Error(), http.StatusServiceUnavailable)
			return
		}
	}
	fmt.Fprintln(w, "ready")
}

// eventJSON is the /events NDJSON shape: stable field names, symbolic
// tier/reason strings.
type eventJSON struct {
	Seq    uint64 `json:"seq"`
	TS     int64  `json:"ts_ns"`
	Epoch  int64  `json:"epoch"`
	Tenant uint16 `json:"tenant"`
	Node   uint8  `json:"node"`
	Page   uint64 `json:"page"`
	From   string `json:"from"`
	To     string `json:"to"`
	Reason string `json:"reason"`
	Score  uint64 `json:"score,omitempty"`
}

func (a *Admin) handleEvents(w http.ResponseWriter, r *http.Request) {
	if a.cfg.Events == nil {
		http.Error(w, "no event ring configured", http.StatusNotFound)
		return
	}
	max := 0
	if s := r.URL.Query().Get("n"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		max = n
	}
	events := a.cfg.Events.Snapshot(max)
	if r.URL.Query().Get("format") == "artifact" {
		w.Header().Set("Content-Type", "application/json")
		_ = WriteEventsArtifact(w, events, a.cfg.Tool, a.cfg.Scale, a.cfg.Seed)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for _, ev := range events {
		_ = enc.Encode(eventJSON{
			Seq: ev.Seq, TS: ev.TS, Epoch: ev.Epoch,
			Tenant: ev.Tenant, Node: ev.Node, Page: ev.Page,
			From: ev.From.String(), To: ev.To.String(),
			Reason: ev.Reason.String(), Score: ev.Score,
		})
	}
}
