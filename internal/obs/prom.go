package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered series in the Prometheus text
// exposition format (version 0.0.4). Series of the same metric name are
// emitted as one group, HELP/TYPE once per name. Histograms are emitted
// as cumulative <name>_bucket{le="..."} series plus <name>_sum and
// <name>_count, with le bounds at the log-bucket upper edges (2^i - 1).
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, name := range r.names {
		ms := r.byName[name]
		if help := firstHelp(ms); help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", name, escapeHelp(help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", name, r.kinds[name])
		for _, m := range ms {
			if m.kind == KindHistogram {
				writeHist(bw, m)
				continue
			}
			bw.WriteString(m.name)
			writeLabels(bw, m.labels, "")
			fmt.Fprintf(bw, " %d\n", m.value())
		}
	}
	return bw.Flush()
}

func firstHelp(ms []*metric) string {
	for _, m := range ms {
		if m.help != "" {
			return m.help
		}
	}
	return ""
}

func writeHist(bw *bufio.Writer, m *metric) {
	count, sum, le, cum := m.hist.snapshot()
	for i := range le {
		bw.WriteString(m.name)
		bw.WriteString("_bucket")
		writeLabels(bw, m.labels, strconv.FormatUint(le[i], 10))
		fmt.Fprintf(bw, " %d\n", cum[i])
	}
	bw.WriteString(m.name)
	bw.WriteString("_bucket")
	writeLabels(bw, m.labels, "+Inf")
	fmt.Fprintf(bw, " %d\n", count)
	bw.WriteString(m.name)
	bw.WriteString("_sum")
	writeLabels(bw, m.labels, "")
	fmt.Fprintf(bw, " %d\n", sum)
	bw.WriteString(m.name)
	bw.WriteString("_count")
	writeLabels(bw, m.labels, "")
	fmt.Fprintf(bw, " %d\n", count)
}

// writeLabels renders {k="v",...}; if le is non-empty it is appended as
// an le label (already last in sort order for our label keys, and
// Prometheus does not require sorted labels).
func writeLabels(bw *bufio.Writer, labels []Label, le string) {
	if len(labels) == 0 && le == "" {
		return
	}
	bw.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(l.Key)
		bw.WriteString(`="`)
		bw.WriteString(escapeLabel(l.Value))
		bw.WriteByte('"')
	}
	if le != "" {
		if len(labels) > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(`le="`)
		bw.WriteString(le)
		bw.WriteByte('"')
	}
	bw.WriteByte('}')
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, "\\", `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// ValidatePrometheus is a minimal Prometheus text-format checker used by
// tests and the smoke harness. It verifies that:
//
//   - every non-comment line parses as <name>[{labels}] <value>
//   - each metric name has exactly one TYPE line, appearing before any
//     of its samples, with a known type
//   - no series (name + label set) appears twice
//   - counter and histogram sample values are non-negative
//   - every histogram has an le="+Inf" bucket whose value equals the
//     metric's _count series, and bucket counts are non-decreasing in
//     file order
//
// It returns the first violation found, or nil.
func ValidatePrometheus(rd io.Reader) error {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	typed := map[string]string{}
	seen := map[string]struct{}{}
	lastBucket := map[string]float64{} // histogram series sans le -> last cumulative
	infBucket := map[string]float64{}
	countSeries := map[string]float64{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), " \t")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) >= 2 && f[1] == "TYPE" {
				if len(f) != 4 {
					return fmt.Errorf("line %d: malformed TYPE line", lineNo)
				}
				name, typ := f[2], f[3]
				if _, dup := typed[name]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown type %q", lineNo, typ)
				}
				typed[name] = typ
			}
			continue
		}
		name, labels, val, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		base := histBase(name, typed)
		typ := typed[base]
		if typ == "" {
			return fmt.Errorf("line %d: sample %s before its TYPE line", lineNo, name)
		}
		series := name + "{" + labels + "}"
		if _, dup := seen[series]; dup {
			return fmt.Errorf("line %d: duplicate series %s", lineNo, series)
		}
		seen[series] = struct{}{}
		if typ == "counter" || typ == "histogram" {
			if val < 0 {
				return fmt.Errorf("line %d: negative %s value on %s", lineNo, typ, series)
			}
		}
		if typ == "histogram" {
			if err := recordHistSample(base, name, labels, val, lineNo, lastBucket, infBucket, countSeries); err != nil {
				return err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for key, c := range countSeries {
		inf, ok := infBucket[key]
		if !ok {
			return fmt.Errorf("histogram %s has no le=\"+Inf\" bucket", key)
		}
		if inf != c {
			return fmt.Errorf("histogram %s: +Inf bucket %v != _count %v", key, inf, c)
		}
	}
	return nil
}

// recordHistSample tracks bucket monotonicity and +Inf/_count agreement
// for one histogram sample line.
func recordHistSample(base, name, labels string, val float64, lineNo int, lastBucket, infBucket, countSeries map[string]float64) error {
	stripLe := func(ls string) string {
		parts := strings.Split(ls, ",")
		out := parts[:0]
		for _, p := range parts {
			if !strings.HasPrefix(p, "le=") {
				out = append(out, p)
			}
		}
		return strings.Join(out, ",")
	}
	key := base + "{" + stripLe(labels) + "}"
	switch {
	case strings.HasSuffix(name, "_bucket"):
		if prev, ok := lastBucket[key]; ok && val < prev {
			return fmt.Errorf("line %d: histogram %s bucket counts decrease (%v -> %v)", lineNo, key, prev, val)
		}
		if strings.Contains(labels, `le="+Inf"`) {
			infBucket[key] = val
		}
		lastBucket[key] = val
	case strings.HasSuffix(name, "_count"):
		countSeries[key] = val
	}
	return nil
}

// histBase maps a histogram sample name (foo_bucket/_sum/_count) to its
// declared metric name, or returns the name itself.
func histBase(name string, typed map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			base := strings.TrimSuffix(name, suf)
			if typed[base] == "histogram" {
				return base
			}
		}
	}
	return name
}

func parseSample(line string) (name, labels string, val float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unbalanced braces in %q", line)
		}
		labels = rest[i+1 : j]
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		f := strings.Fields(rest)
		if len(f) < 2 {
			return "", "", 0, fmt.Errorf("malformed sample %q", line)
		}
		name = f[0]
		rest = f[1]
	}
	if !validName(name) {
		return "", "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	f := strings.Fields(rest)
	if len(f) < 1 || len(f) > 2 { // optional timestamp
		return "", "", 0, fmt.Errorf("malformed sample %q", line)
	}
	val, err = strconv.ParseFloat(f[0], 64)
	if err != nil {
		return "", "", 0, fmt.Errorf("bad value in %q: %v", line, err)
	}
	return name, labels, val, nil
}
