package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestCounterStripedSum(t *testing.T) {
	c := NewCounter(8)
	var wg sync.WaitGroup
	const g, per = 8, 10000
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc(id)
			}
		}(uint64(i))
	}
	wg.Wait()
	if got := c.Value(); got != g*per {
		t.Fatalf("Value = %d, want %d", got, g*per)
	}
}

func TestCounterZeroAllocInc(t *testing.T) {
	c := NewCounter(16)
	g := NewGauge()
	h := NewHistogram()
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc(7)
		c.Add(3, 5)
		g.Set(42)
		g.Add(-1)
		h.Observe(1234)
	}); n != 0 {
		t.Fatalf("metric updates allocated %.1f allocs/op, want 0", n)
	}
}

func TestGaugeAndHistogram(t *testing.T) {
	g := NewGauge()
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
	h := NewHistogram()
	for _, v := range []int64{0, 1, 2, 1000, 1 << 20} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 3+1000+(1<<20) {
		t.Fatalf("sum = %d", h.Sum())
	}
	if h.Max() != 1<<20 {
		t.Fatalf("max = %d", h.Max())
	}
	if q := h.Quantile(0.5); q < 1 || q > 4 {
		t.Fatalf("p50 = %d, want small", q)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "", 1, L("a", "1"))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate series did not panic")
		}
	}()
	r.Counter("dup_total", "", 1, L("a", "1"))
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("conf_total", "", 1, L("a", "1"))
	defer func() {
		if recover() == nil {
			t.Fatal("kind conflict did not panic")
		}
	}()
	r.Gauge("conf_total", "", L("a", "2"))
}

func TestRegistrySnapshotAndFind(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "x", 4, L("tenant", "a"))
	c.Add(1, 41)
	c.Inc(2)
	r.GaugeFunc("y", "y", func() int64 { return 9 }, L("node", "0"))
	h := r.Histogram("z_ns", "z")
	h.Observe(100)
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d samples, want 3", len(snap))
	}
	s, ok := Find(snap, "x_total", L("tenant", "a"))
	if !ok || s.Value != 42 {
		t.Fatalf("x_total = %+v ok=%v", s, ok)
	}
	s, ok = Find(snap, "y", L("node", "0"))
	if !ok || s.Value != 9 {
		t.Fatalf("y = %+v ok=%v", s, ok)
	}
	s, ok = Find(snap, "z_ns")
	if !ok || s.Count != 1 || s.Value != 100 {
		t.Fatalf("z_ns = %+v ok=%v", s, ok)
	}
	if len(s.Le) != len(s.Buckets) || len(s.Le) == 0 {
		t.Fatalf("z_ns buckets malformed: %+v", s)
	}
}

func TestWritePrometheusValidates(t *testing.T) {
	r := NewRegistry()
	for _, tn := range []string{"alpha", "beta"} {
		c := r.Counter("tierd_demo_total", "demo counter", 4, L("tenant", tn))
		c.Add(0, 7)
	}
	r.Gauge("tierd_level", "a gauge", L("node", "0")).Set(-3)
	h := r.Histogram("tierd_lat_ns", "latency", L("op", `q"uo\te`))
	for i := int64(1); i < 5000; i *= 3 {
		h.Observe(i)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`tierd_demo_total{tenant="alpha"} 7`,
		`tierd_demo_total{tenant="beta"} 7`,
		"# TYPE tierd_demo_total counter",
		`tierd_level{node="0"} -3`,
		`le="+Inf"`,
		"tierd_lat_ns_sum",
		"tierd_lat_ns_count",
		`op="q\"uo\\te"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if err := ValidatePrometheus(strings.NewReader(out)); err != nil {
		t.Fatalf("ValidatePrometheus: %v\n%s", err, out)
	}
}

func TestValidatePrometheusRejects(t *testing.T) {
	cases := map[string]string{
		"no type":        "foo 1\n",
		"dup series":     "# TYPE foo counter\nfoo 1\nfoo 2\n",
		"neg counter":    "# TYPE foo counter\nfoo -1\n",
		"bad name":       "# TYPE foo counter\n2foo 1\n",
		"bucket shrinks": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 9\nh_count 3\n",
		"inf mismatch":   "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 9\nh_count 4\n",
	}
	for name, text := range cases {
		if err := ValidatePrometheus(strings.NewReader(text)); err == nil {
			t.Errorf("%s: expected error, got nil", name)
		}
	}
}
