package obs

import (
	"math/bits"
	"sync/atomic"
)

// histBuckets mirrors tiered.Hist: bucket i counts observations whose
// bit length is i, i.e. values in [2^(i-1), 2^i). 64-bit values need 65
// buckets (bit lengths 0..64).
const histBuckets = 65

// Histogram is a concurrent log-bucket histogram of non-negative int64
// observations (typically nanoseconds). It is the atomic twin of
// tiered.Hist — same bucketing by bits.Len64, same geometric-midpoint
// quantiles — but every field is an atomic so Observe is lock-free and
// allocation-free from any number of goroutines. obs cannot import
// tiered (tiered imports obs), hence the reimplementation.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64
	max     atomic.Int64
}

// NewHistogram returns an empty histogram. Use Registry.Histogram to
// create and register in one step.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one value. Negative values clamp to 0.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest observed value.
func (h *Histogram) Max() int64 { return h.max.Load() }

// Quantile returns an estimate of the q-quantile (0 <= q <= 1) as the
// geometric middle of the bucket containing it, matching tiered.Hist.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var seen uint64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen > target {
			if i == 0 {
				return 0
			}
			lo := int64(1) << (i - 1)
			return lo + lo/2
		}
	}
	return h.max.Load()
}

// snapshot returns (count, sum, upper bounds, cumulative counts) for the
// non-empty prefix of buckets. Upper bound of bucket i is 2^i - 1 (the
// largest value with bit length <= i). Counts are read bucket-by-bucket
// while writers proceed, so the cut is approximate; cumulative counts
// are forced monotone.
func (h *Histogram) snapshot() (count uint64, sum int64, le []uint64, cum []uint64) {
	sum = h.sum.Load()
	hi := 0
	var raw [histBuckets]uint64
	for i := 0; i < histBuckets; i++ {
		raw[i] = h.buckets[i].Load()
		if raw[i] != 0 {
			hi = i
		}
	}
	le = make([]uint64, hi+1)
	cum = make([]uint64, hi+1)
	var c uint64
	for i := 0; i <= hi; i++ {
		c += raw[i]
		if i == 64 {
			le[i] = ^uint64(0)
		} else {
			le[i] = (uint64(1) << uint(i)) - 1
		}
		cum[i] = c
	}
	count = c
	return count, sum, le, cum
}
