package obs

import (
	"errors"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hybridmem/internal/runner"
)

func adminGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestAdminEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("tierd_test_total", "test", 1, L("tenant", "a")).Add(0, 5)
	ring := NewEventRing(64)
	ring.Publish(Event{Epoch: 1, Page: 7, Tenant: 2, Node: 1, From: TierNVM, To: TierDRAM, Reason: ReasonPromotion})
	var ready atomic.Bool
	a, err := NewAdmin(AdminConfig{
		Addr:     "127.0.0.1:0",
		Registry: reg,
		Events:   ring,
		Ready: func() error {
			if !ready.Load() {
				return errors.New("engine not started")
			}
			return nil
		},
		Invariants: func() error { return nil },
		Tool:       "obstest",
		Scale:      0.25,
		Seed:       11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Listen(); err != nil {
		t.Fatal(err)
	}
	defer a.Shutdown(time.Second)
	base := a.URL()
	if base == "" {
		t.Fatal("no URL after Listen")
	}

	if code, body := adminGet(t, base+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	// /readyz flips with the Ready callback.
	if code, _ := adminGet(t, base+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before start = %d, want 503", code)
	}
	ready.Store(true)
	if code, _ := adminGet(t, base+"/readyz?invariants=1"); code != 200 {
		t.Fatalf("/readyz after start = %d, want 200", code)
	}
	ready.Store(false)
	if code, _ := adminGet(t, base+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after stop = %d, want 503", code)
	}
	ready.Store(true)

	code, body := adminGet(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	if err := ValidatePrometheus(strings.NewReader(body)); err != nil {
		t.Fatalf("/metrics does not validate: %v\n%s", err, body)
	}
	if !strings.Contains(body, `tierd_test_total{tenant="a"} 5`) {
		t.Fatalf("/metrics missing series:\n%s", body)
	}

	if code, body := adminGet(t, base+"/events"); code != 200 || !strings.Contains(body, `"reason":"promotion"`) {
		t.Fatalf("/events = %d %q", code, body)
	}
	code, body = adminGet(t, base+"/events?format=artifact")
	if code != 200 {
		t.Fatalf("/events artifact = %d", code)
	}
	art, err := runner.ReadArtifact(strings.NewReader(body))
	if err != nil {
		t.Fatalf("artifact: %v", err)
	}
	if art.Tool != "obstest" || art.Kind != "events" || art.Scale != 0.25 || art.Seed != 11 || len(art.Results) != 1 {
		t.Fatalf("artifact header wrong: %+v", art)
	}

	if code, body := adminGet(t, base+"/debug/pprof/heap?debug=1"); code != 200 || body == "" {
		t.Fatalf("/debug/pprof/heap = %d", code)
	}

	if err := a.Shutdown(time.Second); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("server still accepting after Shutdown")
	}
}

func TestAdminRequiresAddr(t *testing.T) {
	if _, err := NewAdmin(AdminConfig{}); err == nil {
		t.Fatal("expected error for empty addr")
	}
}
