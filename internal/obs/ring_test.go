package obs

import (
	"bytes"
	"sync"
	"testing"

	"hybridmem/internal/runner"
)

func TestEventRingRoundTrip(t *testing.T) {
	r := NewEventRing(64)
	ev := Event{
		TS: 123456789, Epoch: 7, Page: 0xABCDEF, Score: 42,
		Tenant: 513, Node: 3, From: TierNVM, To: TierDRAM,
		Reason: ReasonPromotion,
	}
	r.Publish(ev)
	got := r.Snapshot(0)
	if len(got) != 1 {
		t.Fatalf("snapshot len = %d, want 1", len(got))
	}
	ev.Seq = 0
	if got[0] != ev {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got[0], ev)
	}
}

// TestEventRingWraparound is the overflow property test: publish far
// more events than capacity from a single goroutine and assert the
// snapshot is exactly the most recent cap events, in order, with
// Overwritten accounting for the rest.
func TestEventRingWraparound(t *testing.T) {
	r := NewEventRing(64)
	capN := uint64(r.Cap())
	const total = 1000
	for i := uint64(0); i < total; i++ {
		r.Publish(Event{Page: i, Epoch: int64(i), Tenant: uint16(i % 7), Reason: ReasonEviction})
	}
	if r.Published() != total {
		t.Fatalf("Published = %d, want %d", r.Published(), total)
	}
	if r.Overwritten() != total-capN {
		t.Fatalf("Overwritten = %d, want %d", r.Overwritten(), total-capN)
	}
	got := r.Snapshot(0)
	if uint64(len(got)) != capN {
		t.Fatalf("snapshot len = %d, want %d", len(got), capN)
	}
	for i, ev := range got {
		wantSeq := total - capN + uint64(i)
		if ev.Seq != wantSeq || ev.Page != wantSeq || ev.Epoch != int64(wantSeq) {
			t.Fatalf("slot %d: got seq=%d page=%d epoch=%d, want %d", i, ev.Seq, ev.Page, ev.Epoch, wantSeq)
		}
	}
	if limited := r.Snapshot(10); len(limited) != 10 || limited[0].Seq != total-10 {
		t.Fatalf("Snapshot(10) = len %d first %d", len(limited), limited[0].Seq)
	}
}

// TestEventRingConcurrentPublish hammers the ring from many goroutines
// while snapshots run, asserting every returned event is well-formed
// (payload words mutually consistent) and Seqs strictly increase —
// i.e. torn slots are dropped, not returned.
func TestEventRingConcurrentPublish(t *testing.T) {
	r := NewEventRing(128)
	const writers, per = 8, 5000
	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() { // concurrent reader
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := r.Snapshot(0)
			var lastSeq uint64
			for i, ev := range snap {
				if i > 0 && ev.Seq <= lastSeq {
					t.Errorf("snapshot seqs not increasing: %d after %d", ev.Seq, lastSeq)
					return
				}
				lastSeq = ev.Seq
				// Writers encode the same value in Page, Score and
				// Epoch; a torn read would disagree.
				if ev.Page != ev.Score || int64(ev.Page) != ev.Epoch {
					t.Errorf("torn event returned: %+v", ev)
					return
				}
			}
		}
	}()
	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(id uint64) {
			defer writerWG.Done()
			for i := uint64(0); i < per; i++ {
				v := id*per + i
				r.Publish(Event{Page: v, Score: v, Epoch: int64(v), Tenant: uint16(id), Reason: ReasonPromotion})
			}
		}(uint64(w))
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	if r.Published() != writers*per {
		t.Fatalf("Published = %d, want %d", r.Published(), writers*per)
	}
}

func TestEventRingPublishZeroAlloc(t *testing.T) {
	r := NewEventRing(256)
	ev := Event{TS: 1, Epoch: 2, Page: 3, Score: 4, Tenant: 5, Node: 6, From: TierNVM, To: TierDRAM, Reason: ReasonPromotion}
	if n := testing.AllocsPerRun(1000, func() { r.Publish(ev) }); n != 0 {
		t.Fatalf("Publish allocated %.1f allocs/op, want 0", n)
	}
}

func TestWriteEventsArtifact(t *testing.T) {
	r := NewEventRing(64)
	r.Publish(Event{TS: 10, Epoch: 1, Page: 100, Score: 9, Tenant: 2, Node: 1, From: TierNVM, To: TierDRAM, Reason: ReasonPromotion})
	r.Publish(Event{TS: 20, Epoch: 1, Page: 200, Tenant: 3, From: TierDRAM, To: TierNVM, Reason: ReasonDemotionFault})
	var buf bytes.Buffer
	if err := WriteEventsArtifact(&buf, r.Snapshot(0), "obstest", 0.5, 7); err != nil {
		t.Fatal(err)
	}
	art, err := runner.ReadArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if art.Kind != "events" || art.Tool != "obstest" || len(art.Results) != 2 {
		t.Fatalf("artifact header/results wrong: %+v", art)
	}
	promo := art.Results[0]
	if promo.Policy != "promotion" || promo.Values["tenant"] != 2 || promo.Values["node"] != 1 ||
		promo.Values["page"] != 100 || promo.Values["score"] != 9 {
		t.Fatalf("promotion result wrong: %+v", promo)
	}
	demo := art.Results[1]
	if demo.Policy != "demotion-fault" || demo.Params["from"] != float64(TierDRAM) || demo.Params["to"] != float64(TierNVM) {
		t.Fatalf("demotion result wrong: %+v", demo)
	}
}
