package obs

import (
	"fmt"
	"io"
	"sync/atomic"

	"hybridmem/internal/runner"
)

// Tier identifies which memory tier a page occupied. TierNone marks
// "not resident" (the destination of an eviction or drop).
type Tier uint8

const (
	TierNone Tier = iota
	TierDRAM
	TierNVM
)

func (t Tier) String() string {
	switch t {
	case TierDRAM:
		return "dram"
	case TierNVM:
		return "nvm"
	}
	return "none"
}

// Reason says why a migration event happened.
type Reason uint8

const (
	// ReasonPromotion: the daemon (or sync mirror) moved a hot page
	// NVM -> DRAM.
	ReasonPromotion Reason = iota
	// ReasonDemotionFault: a DRAM frame was reclaimed to satisfy a
	// faulting page's DRAM reservation.
	ReasonDemotionFault
	// ReasonDemotionPromotion: a DRAM frame was reclaimed to make room
	// for a promotion.
	ReasonDemotionPromotion
	// ReasonDemotionSpill: a borrower's page was demoted to reclaim
	// spill-pool capacity for a tenant under its own quota.
	ReasonDemotionSpill
	// ReasonDemotionClean: the reference policy retired a clean DRAM
	// page without a write-back (synchronous mode only).
	ReasonDemotionClean
	// ReasonEviction: an NVM frame was reclaimed; the page left memory.
	ReasonEviction
	// ReasonDrop: the page was removed explicitly (RESP DEL / Drop).
	ReasonDrop
	// ReasonRestore: the page was re-inserted into NVM at startup from a
	// persistence checkpoint (crash or drain recovery).
	ReasonRestore
)

func (r Reason) String() string {
	switch r {
	case ReasonPromotion:
		return "promotion"
	case ReasonDemotionFault:
		return "demotion-fault"
	case ReasonDemotionPromotion:
		return "demotion-promotion"
	case ReasonDemotionSpill:
		return "demotion-spill"
	case ReasonDemotionClean:
		return "demotion-clean"
	case ReasonEviction:
		return "eviction"
	case ReasonDrop:
		return "drop"
	case ReasonRestore:
		return "restore"
	}
	return "unknown"
}

// Event is one migration decision. Score carries the policy's windowed
// access counter for the page at decision time (promotions only; zero
// otherwise).
type Event struct {
	Seq    uint64 // publish sequence number, assigned by the ring
	TS     int64  // unix nanoseconds at publish
	Epoch  int64  // daemon scan epoch at publish
	Page   uint64
	Score  uint64
	Tenant uint16
	Node   uint8
	From   Tier
	To     Tier
	Reason Reason
}

// eventSlot packs an Event into six atomic words so concurrent
// publishers and snapshot readers never race on plain memory (the race
// detector sees only atomic ops). seq doubles as the publication stamp:
// 0 = being written, pos+1 = slot holds the event published at
// position pos. A reader that sees any other value skips the slot.
type eventSlot struct {
	seq atomic.Uint64
	w   [5]atomic.Uint64
	_   [cacheLine - 48]byte
}

// EventRing is a lock-free, bounded, multi-producer ring of migration
// events. Publish never allocates and never blocks; when the ring is
// full the oldest events are overwritten. Snapshot returns the most
// recent events, skipping any slot caught mid-write.
type EventRing struct {
	head  atomic.Uint64
	_     [cacheLine - 8]byte
	mask  uint64
	slots []eventSlot
}

// DefaultRingSize is the event capacity used by cmd/tierd.
const DefaultRingSize = 4096

// NewEventRing returns a ring holding the last capacity events
// (rounded up to a power of two, minimum 64).
func NewEventRing(capacity int) *EventRing {
	n := 64
	for n < capacity {
		n <<= 1
	}
	return &EventRing{mask: uint64(n - 1), slots: make([]eventSlot, n)}
}

// Cap returns the ring capacity.
func (r *EventRing) Cap() int { return len(r.slots) }

// Published returns the total number of events ever published.
func (r *EventRing) Published() uint64 { return r.head.Load() }

// Overwritten returns how many events have been lost to wraparound.
func (r *EventRing) Overwritten() uint64 {
	h := r.head.Load()
	if c := uint64(len(r.slots)); h > c {
		return h - c
	}
	return 0
}

func packMeta(ev Event) uint64 {
	return uint64(ev.Tenant)<<32 | uint64(ev.Node)<<24 |
		uint64(ev.From)<<16 | uint64(ev.To)<<8 | uint64(ev.Reason)
}

func unpackMeta(w uint64, ev *Event) {
	ev.Tenant = uint16(w >> 32)
	ev.Node = uint8(w >> 24)
	ev.From = Tier(w >> 16)
	ev.To = Tier(w >> 8)
	ev.Reason = Reason(w)
}

// Publish records ev (Seq is assigned here). Safe for any number of
// concurrent publishers; zero allocations.
func (r *EventRing) Publish(ev Event) {
	pos := r.head.Add(1) - 1
	s := &r.slots[pos&r.mask]
	s.seq.Store(0) // mark mid-write; readers skip
	s.w[0].Store(uint64(ev.TS))
	s.w[1].Store(uint64(ev.Epoch))
	s.w[2].Store(ev.Page)
	s.w[3].Store(ev.Score)
	s.w[4].Store(packMeta(ev))
	s.seq.Store(pos + 1)
}

// read returns the event published at position pos, or false if the
// slot has been overwritten or is mid-write.
func (r *EventRing) read(pos uint64) (Event, bool) {
	s := &r.slots[pos&r.mask]
	if s.seq.Load() != pos+1 {
		return Event{}, false
	}
	var ev Event
	ev.TS = int64(s.w[0].Load())
	ev.Epoch = int64(s.w[1].Load())
	ev.Page = s.w[2].Load()
	ev.Score = s.w[3].Load()
	unpackMeta(s.w[4].Load(), &ev)
	if s.seq.Load() != pos+1 { // torn by a concurrent overwrite
		return Event{}, false
	}
	ev.Seq = pos
	return ev, true
}

// Snapshot returns up to the last max events, oldest first (max <= 0
// means all retained). Slots being overwritten during the scan are
// skipped, so under heavy concurrent publish the result may have gaps;
// Seq values are strictly increasing.
func (r *EventRing) Snapshot(max int) []Event {
	head := r.head.Load()
	n := uint64(len(r.slots))
	if head < n {
		n = head
	}
	if max > 0 && uint64(max) < n {
		n = uint64(max)
	}
	out := make([]Event, 0, n)
	for pos := head - n; pos < head; pos++ {
		if ev, ok := r.read(pos); ok {
			out = append(out, ev)
		}
	}
	return out
}

// WriteEventsArtifact renders events as a hybridmem.results/v1 artifact
// (kind "events"), one result per event: Policy carries the reason,
// Params the tier transition, Values the numeric attribution. This is
// the trace format the future sim-calibration gate will consume.
func WriteEventsArtifact(w io.Writer, events []Event, tool string, scale float64, seed int64) error {
	art := runner.NewArtifact(tool, "events", scale, seed)
	for _, ev := range events {
		res := runner.Result{
			ID:       fmt.Sprintf("event%08d/%s", ev.Seq, ev.Reason),
			Workload: "trace",
			Policy:   ev.Reason.String(),
			Seed:     seed,
			Params: map[string]float64{
				"from": float64(ev.From),
				"to":   float64(ev.To),
			},
			Values: map[string]float64{
				"seq":    float64(ev.Seq),
				"ts_ns":  float64(ev.TS),
				"epoch":  float64(ev.Epoch),
				"tenant": float64(ev.Tenant),
				"node":   float64(ev.Node),
				"page":   float64(ev.Page),
				"score":  float64(ev.Score),
			},
		}
		art.Add(res)
	}
	return art.Write(w)
}
