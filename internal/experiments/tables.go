package experiments

import (
	"fmt"

	"hybridmem/internal/memspec"
	"hybridmem/internal/report"
	"hybridmem/internal/runner"
	"hybridmem/internal/trace"
	"hybridmem/internal/workload"
)

// Table2 renders the simulated machine configuration (Table II).
func Table2(m memspec.Machine) *report.Table {
	t := &report.Table{
		Title:   "Table II: COTSon-substitute configuration",
		Headers: []string{"Component", "Configuration"},
	}
	cache := func(c memspec.CacheSpec) string {
		return fmt.Sprintf("%dKB WB %d-way set associative with %dB line size",
			c.SizeBytes>>10, c.Ways, c.LineBytes)
	}
	t.AddRow("CPU", fmt.Sprintf("%d-core with MOESI protocol", m.Cores))
	t.AddRow("L1 Data Cache", cache(m.L1D))
	t.AddRow("L1 Instruction Cache", cache(m.L1I))
	t.AddRow("Last-Level Cache", fmt.Sprintf("%dMB WB %d-way set associative with %dB line size",
		m.LLC.SizeBytes>>20, m.LLC.Ways, m.LLC.LineBytes))
	t.AddRow("Main Memory", fmt.Sprintf("%dGB", m.MainMemoryBytes>>30))
	t.AddRow("Secondary Storage", fmt.Sprintf("HDD with %g milliseconds response time",
		m.Disk.AccessLatencyNS/1e6))
	return t
}

// Table3Row is one workload's measured characterization.
type Table3Row struct {
	Name          string
	WorkingSetKB  int
	Reads, Writes int64
}

// Table3Measure regenerates the Table III characterization by generating and
// characterizing every workload at the configured scale. Request counts come
// from the measured (ROI) stream; the working set covers the whole trace
// (warmup + ROI), matching how the paper characterizes the benchmarks.
// Traces the grid already materialized into the shared cache are reused;
// otherwise each workload streams through the stats collector in constant
// memory (characterization needs only counters, not record slices).
func Table3Measure(cfg Config) ([]Table3Row, error) {
	names := workload.Names()
	tc := cfg.traceCache()
	return runner.Map(cfg.pool(), len(names), func(i int) (Table3Row, error) {
		spec, _ := workload.ByName(names[i])
		warmSrc, roiSrc, _, err := cfg.traces(tc, spec).Sources()
		if err != nil {
			return Table3Row{}, err
		}
		ws := trace.CollectStats(warmSrc, workload.PageSizeBytes)
		rs := trace.CollectStats(roiSrc, workload.PageSizeBytes)
		return Table3Row{
			Name: names[i],
			// Warmup and ROI touch the same page range; the union's
			// footprint is the warmup's (it covers every page).
			WorkingSetKB: ws.WorkingSetKB(),
			Reads:        rs.Reads,
			Writes:       rs.Writes,
		}, nil
	})
}

// Table3 renders the measured characterization alongside the paper's values.
func Table3(cfg Config) (*report.Table, error) {
	rows, err := Table3Measure(cfg)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title: fmt.Sprintf("Table III: workload characterization (scale %g)", cfg.Scale),
		Headers: []string{"Workload", "WSS (KB)", "# Reads", "# Writes",
			"Write %", "Paper WSS", "Paper Reads", "Paper Writes"},
	}
	for _, r := range rows {
		spec, _ := workload.ByName(r.Name)
		wf := 0.0
		if tot := r.Reads + r.Writes; tot > 0 {
			wf = 100 * float64(r.Writes) / float64(tot)
		}
		t.AddRow(r.Name,
			fmt.Sprintf("%d", r.WorkingSetKB),
			fmt.Sprintf("%d", r.Reads),
			fmt.Sprintf("%d", r.Writes),
			fmt.Sprintf("%.1f%%", wf),
			fmt.Sprintf("%d", spec.WorkingSetKB),
			fmt.Sprintf("%d", spec.Reads),
			fmt.Sprintf("%d", spec.Writes))
	}
	return t, nil
}

// Table4 renders the memory characteristics (Table IV).
func Table4(spec memspec.Spec) *report.Table {
	t := &report.Table{
		Title:   "Table IV: memory characteristics",
		Headers: []string{"Memory", "Latency r/w (ns)", "Power r/w (nJ)", "Static Power (J/GB.s)"},
	}
	for _, tech := range []memspec.Tech{spec.DRAM, spec.NVM} {
		t.AddRow(tech.Name,
			fmt.Sprintf("%g/%g", tech.ReadLatencyNS, tech.WriteLatencyNS),
			fmt.Sprintf("%g/%g", tech.ReadEnergyNJ, tech.WriteEnergyNJ),
			fmt.Sprintf("%g", tech.StaticPowerWPerGB))
	}
	t.AddRow("Disk", fmt.Sprintf("%g/%g", spec.Disk.AccessLatencyNS, spec.Disk.AccessLatencyNS), "-", "-")
	return t
}

// RenderFigure converts an experiments Figure into a text chart.
func RenderFigure(f *Figure) *report.StackedBars {
	groups := make([]report.BarGroup, len(f.Groups))
	for gi, g := range f.Groups {
		comps := make([]report.BarComponent, len(g.Components))
		for ci, c := range g.Components {
			comps[ci] = report.BarComponent{Label: c.Label, Values: c.Values}
		}
		groups[gi] = report.BarGroup{Name: g.Name, Components: comps}
	}
	title := fmt.Sprintf("%s: %s", f.ID, f.Title)
	if f.Notes != "" {
		title += "\n(" + f.Notes + ")"
	}
	return &report.StackedBars{
		Title:   title,
		YLabel:  f.YLabel,
		Columns: f.Columns,
		Groups:  groups,
	}
}

// FigureCSV converts a Figure into a CSV-able table: one row per column,
// one column per (group, component) pair plus totals.
func FigureCSV(f *Figure) *report.Table {
	headers := []string{"workload"}
	for _, g := range f.Groups {
		for _, c := range g.Components {
			headers = append(headers, fmt.Sprintf("%s:%s", g.Name, c.Label))
		}
		headers = append(headers, fmt.Sprintf("%s:total", g.Name))
	}
	t := &report.Table{Title: f.ID, Headers: headers}
	for i, col := range f.Columns {
		row := []string{col}
		for gi, g := range f.Groups {
			for _, c := range g.Components {
				row = append(row, fmt.Sprintf("%.6f", c.Values[i]))
			}
			row = append(row, fmt.Sprintf("%.6f", f.Total(gi, i)))
		}
		t.AddRow(row...)
	}
	return t
}
