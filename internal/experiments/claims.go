package experiments

import (
	"fmt"
	"io"

	"hybridmem/internal/stats"
)

// Claims holds the paper's headline quantitative claims, extracted from a
// full run so EXPERIMENTS.md can record paper-vs-measured side by side.
// All improvement values are fractions (0.43 = 43% reduction); negative
// values mean the proposed scheme was worse.
type Claims struct {
	// PowerVsDRAM: proposed-scheme power reduction vs the DRAM-only
	// baseline (paper: up to 79%, 43% geometric mean).
	PowerVsDRAMMax, PowerVsDRAMAvg float64
	// PowerVsDWF: power reduction vs CLOCK-DWF (paper: up to 48%, 14% avg).
	PowerVsDWFMax, PowerVsDWFAvg float64
	// AMATVsDWF: AMAT improvement vs CLOCK-DWF (paper: up to 70%, 48% avg).
	AMATVsDWFMax, AMATVsDWFAvg float64
	// WritesVsDWF: NVM write reduction vs CLOCK-DWF (paper: up to 93%,
	// 64% avg).
	WritesVsDWFMax, WritesVsDWFAvg float64
	// WritesVsNVMOnly: NVM write reduction vs an NVM-only memory (paper: up
	// to 75%, 49% avg, lifetime up to 4x).
	WritesVsNVMOnlyMax, WritesVsNVMOnlyAvg float64
	// DWFWritesExceedNVMOnlyMax: CLOCK-DWF's worst writes-vs-NVM-only ratio
	// (paper: up to 3.7x).
	DWFWritesExceedNVMOnlyMax float64
	// StaticShareLo/Hi: range of the static component in DRAM-only power
	// across workloads, excluding the streamcluster outlier (paper: 60-80%).
	StaticShareLo, StaticShareHi float64
	// StreamclusterStaticShare is the outlier's static share (paper: small,
	// dynamic-dominated).
	StreamclusterStaticShare float64
	// DWFMigrationPowerShareMax: largest migration share of CLOCK-DWF total
	// power (paper: >40% in many workloads).
	DWFMigrationPowerShareMax float64
	// DWFMigrationAMATShareMax: largest migration share of CLOCK-DWF AMAT
	// (paper: >60%).
	DWFMigrationAMATShareMax float64
}

// reduction converts ratios (policy/baseline) into max/avg reductions.
func reduction(ratios []float64) (max, avg float64) {
	for _, r := range ratios {
		if red := 1 - r; red > max {
			max = red
		}
	}
	g, err := stats.GeoMean(ratios)
	if err != nil {
		return max, 0
	}
	return max, 1 - g
}

// ExtractClaims computes the headline numbers from a full run set.
func ExtractClaims(runs []*WorkloadRun) Claims {
	var c Claims
	var propVsDRAM, propVsDWFPower, propVsDWFAMAT []float64
	var propVsDWFWrites, propVsNVMWrites []float64
	c.StaticShareLo = 1
	for _, r := range runs {
		dram := r.Report(DRAMOnly)
		nvm := r.Report(NVMOnly)
		dwf := r.Report(ClockDWF)
		prop := r.Report(Proposed)

		propVsDRAM = append(propVsDRAM, prop.APPR.Total()/dram.APPR.Total())
		propVsDWFPower = append(propVsDWFPower, prop.APPR.Total()/dwf.APPR.Total())

		dwfAMAT := dwf.AMAT.HitDRAM + dwf.AMAT.HitNVM + dwf.AMAT.Migrations()
		propAMAT := prop.AMAT.HitDRAM + prop.AMAT.HitNVM + prop.AMAT.Migrations()
		propVsDWFAMAT = append(propVsDWFAMAT, propAMAT/dwfAMAT)

		if w := dwf.NVMWrites.Total(); w > 0 {
			propVsDWFWrites = append(propVsDWFWrites, float64(prop.NVMWrites.Total())/float64(w))
		}
		if w := nvm.NVMWrites.Total(); w > 0 {
			propVsNVMWrites = append(propVsNVMWrites, float64(prop.NVMWrites.Total())/float64(w))
			if ratio := float64(dwf.NVMWrites.Total()) / float64(w); ratio > c.DWFWritesExceedNVMOnlyMax {
				c.DWFWritesExceedNVMOnlyMax = ratio
			}
		}

		share := dram.APPR.Static / dram.APPR.Total()
		if r.Workload.Name == "streamcluster" {
			c.StreamclusterStaticShare = share
		} else {
			if share < c.StaticShareLo {
				c.StaticShareLo = share
			}
			if share > c.StaticShareHi {
				c.StaticShareHi = share
			}
		}

		if s := dwf.APPR.Migration() / dwf.APPR.Total(); s > c.DWFMigrationPowerShareMax {
			c.DWFMigrationPowerShareMax = s
		}
		if dwfAMAT > 0 {
			if s := dwf.AMAT.Migrations() / dwfAMAT; s > c.DWFMigrationAMATShareMax {
				c.DWFMigrationAMATShareMax = s
			}
		}
	}
	c.PowerVsDRAMMax, c.PowerVsDRAMAvg = reduction(propVsDRAM)
	c.PowerVsDWFMax, c.PowerVsDWFAvg = reduction(propVsDWFPower)
	c.AMATVsDWFMax, c.AMATVsDWFAvg = reduction(propVsDWFAMAT)
	c.WritesVsDWFMax, c.WritesVsDWFAvg = reduction(propVsDWFWrites)
	c.WritesVsNVMOnlyMax, c.WritesVsNVMOnlyAvg = reduction(propVsNVMWrites)
	return c
}

// Write renders paper-vs-measured claims as text.
func (c Claims) Write(w io.Writer) error {
	type row struct {
		claim, paper, measured string
	}
	pct := func(v float64) string { return fmt.Sprintf("%.0f%%", v*100) }
	rows := []row{
		{"power vs DRAM-only: max reduction", "79%", pct(c.PowerVsDRAMMax)},
		{"power vs DRAM-only: avg reduction", "43%", pct(c.PowerVsDRAMAvg)},
		{"power vs CLOCK-DWF: max reduction", "48%", pct(c.PowerVsDWFMax)},
		{"power vs CLOCK-DWF: avg reduction", "14%", pct(c.PowerVsDWFAvg)},
		{"AMAT vs CLOCK-DWF: max improvement", "70%", pct(c.AMATVsDWFMax)},
		{"AMAT vs CLOCK-DWF: avg improvement", "48%", pct(c.AMATVsDWFAvg)},
		{"NVM writes vs CLOCK-DWF: max reduction", "93%", pct(c.WritesVsDWFMax)},
		{"NVM writes vs CLOCK-DWF: avg reduction", "64%", pct(c.WritesVsDWFAvg)},
		{"NVM writes vs NVM-only: max reduction", "75%", pct(c.WritesVsNVMOnlyMax)},
		{"NVM writes vs NVM-only: avg reduction", "49%", pct(c.WritesVsNVMOnlyAvg)},
		{"CLOCK-DWF writes vs NVM-only: worst ratio", "3.7x",
			fmt.Sprintf("%.1fx", c.DWFWritesExceedNVMOnlyMax)},
		{"DRAM-only static power share (range)", "60-80%",
			fmt.Sprintf("%s-%s", pct(c.StaticShareLo), pct(c.StaticShareHi))},
		{"streamcluster static share (outlier)", "small",
			pct(c.StreamclusterStaticShare)},
		{"CLOCK-DWF migration power share (max)", ">40%", pct(c.DWFMigrationPowerShareMax)},
		{"CLOCK-DWF migration AMAT share (max)", ">60%", pct(c.DWFMigrationAMATShareMax)},
	}
	tab := struct {
		w1, w2 int
	}{}
	for _, r := range rows {
		if len(r.claim) > tab.w1 {
			tab.w1 = len(r.claim)
		}
		if len(r.paper) > tab.w2 {
			tab.w2 = len(r.paper)
		}
	}
	if _, err := fmt.Fprintf(w, "%-*s  %-*s  %s\n", tab.w1, "claim", tab.w2, "paper", "measured"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%-*s  %-*s  %s\n", tab.w1, r.claim, tab.w2, r.paper, r.measured); err != nil {
			return err
		}
	}
	return nil
}
