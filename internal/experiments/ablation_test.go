package experiments

import (
	"testing"

	"hybridmem/internal/fullsys"
)

func TestFullSysAblation(t *testing.T) {
	cfg := testConfig()
	res, err := FullSysAblation("bodytrack", cfg, fullsys.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Direct == nil || res.Filtered == nil {
		t.Fatal("missing reports")
	}
	if res.FilteredAccesses >= res.CPUAccesses {
		t.Errorf("cache filtered nothing: %d of %d", res.FilteredAccesses, res.CPUAccesses)
	}
	if res.L1DHitRatio <= 0 || res.L1DHitRatio > 1 {
		t.Errorf("L1D hit ratio %v out of range", res.L1DHitRatio)
	}
	if res.Filtered.Accesses != res.FilteredAccesses {
		t.Errorf("filtered run accesses %d != trace length %d",
			res.Filtered.Accesses, res.FilteredAccesses)
	}
}

func TestReplacementComparison(t *testing.T) {
	cfg := testConfig()
	row, err := ReplacementComparison("ferret", cfg)
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]float64{
		"lru": row.LRU, "clock": row.Clock, "clockpro": row.ClockPro,
	} {
		if v <= 0 || v > 1 {
			t.Errorf("%s hit ratio %v out of range", name, v)
		}
	}
	// With memory at 75% of the footprint and a locality-heavy trace, all
	// three algorithms should be in the same high band (the paper's "almost
	// the same hit ratio" argument).
	if row.LRU < 0.9 {
		t.Errorf("LRU hit ratio %v unexpectedly low", row.LRU)
	}
	diff := row.LRU - row.Clock
	if diff < -0.05 || diff > 0.05 {
		t.Errorf("LRU and CLOCK diverge: %v vs %v", row.LRU, row.Clock)
	}
	if _, err := ReplacementComparison("swaptions", cfg); err == nil {
		t.Error("unknown workload should error")
	}
}

func TestArchComparison(t *testing.T) {
	cfg := testConfig()
	// ferret: high-locality, read-dominant -- both hybrid architectures
	// should work, with the cache absorbing the hot set.
	row, err := ArchComparison("ferret", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if row.Proposed == nil || row.Cache == nil || row.DWF == nil || row.DRAM == nil {
		t.Fatal("missing reports")
	}
	if row.Cache.Probabilities.PHitDRAM <= 0 {
		t.Error("cache never served a hit")
	}
	// Conservation: the cache architecture's trace is the same length.
	if row.Cache.Accesses != row.Proposed.Accesses {
		t.Errorf("access counts differ: %d vs %d", row.Cache.Accesses, row.Proposed.Accesses)
	}
	// The cache architecture must beat NVM-only-style latency on a
	// high-locality workload (its whole point).
	cacheAMAT := row.Cache.AMAT.HitDRAM + row.Cache.AMAT.HitNVM + row.Cache.AMAT.Migrations()
	if cacheAMAT >= 200 {
		t.Errorf("cache architecture AMAT %v shows no caching benefit", cacheAMAT)
	}
}

func TestWearLevelAblation(t *testing.T) {
	// Start-Gap levels over whole laps of the frame space; the short test
	// trace needs an aggressive gap period (line writes per move) so the
	// mapping rotates through many laps.
	res, err := WearLevelAblation("vips", testConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plain.Total != res.Leveled.Total {
		t.Errorf("leveling changed total wear: %d vs %d", res.Plain.Total, res.Leveled.Total)
	}
	if res.LeveledImbalance >= res.PlainImbalance {
		t.Errorf("leveling did not improve imbalance: %.2f vs %.2f",
			res.LeveledImbalance, res.PlainImbalance)
	}
	if res.LeveledWorstYears <= res.PlainWorstYears {
		t.Errorf("leveling did not extend worst-frame lifetime: %.2f vs %.2f",
			res.LeveledWorstYears, res.PlainWorstYears)
	}
	if res.GapMoves == 0 {
		t.Error("gap never moved")
	}
}

func TestRunSeeds(t *testing.T) {
	cfg := testConfig()
	study, err := RunSeeds(cfg, []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if study.Seeds != 3 {
		t.Errorf("seeds = %d", study.Seeds)
	}
	// The headline ratios must be stable across seeds: the proposed scheme
	// beats CLOCK-DWF on AMAT for every seed.
	if study.AMATVsDWF.Max >= 1 {
		t.Errorf("AMAT ratio exceeded 1 for some seed: %v", study.AMATVsDWF)
	}
	if study.AMATVsDWF.StdDev > 0.2 {
		t.Errorf("AMAT ratio unstable across seeds: %v", study.AMATVsDWF)
	}
	if study.WritesVsNVMOnly.Mean <= 0 {
		t.Errorf("writes summary empty: %v", study.WritesVsNVMOnly)
	}
	if _, err := RunSeeds(cfg, []int64{1}); err == nil {
		t.Error("single seed should error")
	}
}

func TestRunMixed(t *testing.T) {
	cfg := testConfig()
	run, err := RunMixed([]string{"bodytrack", "ferret"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if run.Label() != "bodytrack+ferret" {
		t.Errorf("label = %q", run.Label())
	}
	for _, id := range []PolicyID{DRAMOnly, NVMOnly, ClockDWF, Proposed} {
		if run.Reports[id] == nil {
			t.Fatalf("missing %s", id)
		}
	}
	// The paper's ordering must survive consolidation: the proposed scheme
	// still beats CLOCK-DWF on AMAT and NVM writes on the mixed stream.
	prop, dwf := run.Reports[Proposed], run.Reports[ClockDWF]
	propAMAT := prop.AMAT.HitDRAM + prop.AMAT.HitNVM + prop.AMAT.Migrations()
	dwfAMAT := dwf.AMAT.HitDRAM + dwf.AMAT.HitNVM + dwf.AMAT.Migrations()
	if propAMAT >= dwfAMAT {
		t.Errorf("mixed AMAT: proposed %v >= CLOCK-DWF %v", propAMAT, dwfAMAT)
	}
	if prop.NVMWrites.Total() >= dwf.NVMWrites.Total() {
		t.Errorf("mixed writes: proposed %d >= CLOCK-DWF %d",
			prop.NVMWrites.Total(), dwf.NVMWrites.Total())
	}
	if _, err := RunMixed([]string{"ferret"}, cfg); err == nil {
		t.Error("single workload mix should error")
	}
	if _, err := RunMixed([]string{"ferret", "swaptions"}, cfg); err == nil {
		t.Error("unknown workload should error")
	}
}

func TestArchIncludesStaticPartition(t *testing.T) {
	row, err := ArchComparison("bodytrack", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if row.Static == nil {
		t.Fatal("missing static-partition report")
	}
	// The no-migration hybrid never migrates.
	if row.Static.Probabilities.PMigD != 0 || row.Static.Probabilities.PMigN != 0 {
		t.Error("static partition migrated")
	}
	// Migration must earn its keep: the proposed scheme serves more traffic
	// from DRAM than blind first-touch placement on a hot-set workload.
	if row.Proposed.Probabilities.PHitDRAM <= row.Static.Probabilities.PHitDRAM {
		t.Errorf("migration did not improve DRAM hit ratio: %v vs %v",
			row.Proposed.Probabilities.PHitDRAM, row.Static.Probabilities.PHitDRAM)
	}
}
