package experiments

import (
	"math"
	"strings"
	"sync"
	"testing"

	"hybridmem/internal/memspec"
	"hybridmem/internal/workload"
)

// testConfig is a fast configuration for integration tests.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Scale = 0.002
	cfg.MinPages = 128
	return cfg
}

var (
	allOnce sync.Once
	allRuns []*WorkloadRun
	allErr  error
)

// testRuns runs the full evaluation once and shares it across tests.
func testRuns(t *testing.T) []*WorkloadRun {
	t.Helper()
	allOnce.Do(func() {
		allRuns, allErr = RunAll(testConfig())
	})
	if allErr != nil {
		t.Fatal(allErr)
	}
	return allRuns
}

func TestRunWorkloadUnknown(t *testing.T) {
	if _, err := RunWorkload("swaptions", testConfig()); err == nil {
		t.Error("unknown workload should error")
	}
}

func TestRunAllProducesAllPolicies(t *testing.T) {
	runs := testRuns(t)
	if len(runs) != 12 {
		t.Fatalf("got %d runs, want 12", len(runs))
	}
	for _, r := range runs {
		for _, id := range []PolicyID{DRAMOnly, NVMOnly, ClockDWF, Proposed} {
			rep := r.Report(id)
			if rep == nil {
				t.Fatalf("%s: missing report for %s", r.Workload.Name, id)
			}
			if rep.Accesses == 0 {
				t.Errorf("%s/%s: zero accesses", r.Workload.Name, id)
			}
			if rep.APPR.Total() <= 0 || rep.AMAT.Total() <= 0 {
				t.Errorf("%s/%s: non-positive totals", r.Workload.Name, id)
			}
		}
		// All four policies replay the same trace.
		n := r.Report(DRAMOnly).Accesses
		for _, id := range []PolicyID{NVMOnly, ClockDWF, Proposed} {
			if r.Report(id).Accesses != n {
				t.Errorf("%s: access counts differ across policies", r.Workload.Name)
			}
		}
	}
}

func TestEffectiveScaleFloor(t *testing.T) {
	cfg := testConfig()
	bs, _ := workload.ByName("blackscholes")
	// blackscholes has 1297 pages; at scale 0.002 the floor dominates.
	if got := cfg.effectiveScale(bs); got <= cfg.Scale {
		t.Errorf("effectiveScale = %v, want floored above %v", got, cfg.Scale)
	}
	sc, _ := workload.ByName("streamcluster")
	big, _ := workload.ByName("dedup")
	if got := cfg.effectiveScale(big); got != cfg.Scale {
		t.Errorf("dedup effectiveScale = %v, want %v", got, cfg.Scale)
	}
	_ = sc
	cfg.Scale = 2
	if got := cfg.effectiveScale(big); got != 1 {
		t.Errorf("scale should cap at 1, got %v", got)
	}
}

func TestFig1ComponentsSumToOne(t *testing.T) {
	f := Fig1(testRuns(t))
	if len(f.Columns) != 12 {
		t.Fatalf("fig1 columns = %d", len(f.Columns))
	}
	for i := range f.Columns {
		if total := f.Total(0, i); math.Abs(total-1) > 1e-9 {
			t.Errorf("%s: components sum to %v, want 1", f.Columns[i], total)
		}
	}
}

func TestFiguresHaveMeanColumns(t *testing.T) {
	runs := testRuns(t)
	for _, id := range FigureIDs() {
		f, err := BuildFigure(id, runs)
		if err != nil {
			t.Fatal(err)
		}
		if id == "fig1" {
			continue // fig1 is per-workload normalized, no mean columns
		}
		if len(f.Columns) != 14 {
			t.Errorf("%s: %d columns, want 12 workloads + G-Mean + A-Mean", id, len(f.Columns))
		}
		gi, ok := f.ColumnIndex("G-Mean")
		ai, ok2 := f.ColumnIndex("A-Mean")
		if !ok || !ok2 {
			t.Fatalf("%s: mean columns missing", id)
		}
		for g := range f.Groups {
			if f.Total(g, gi) <= 0 || f.Total(g, ai) <= 0 {
				t.Errorf("%s group %d: non-positive means", id, g)
			}
			// AM-GM: the geometric mean never exceeds the arithmetic mean.
			if f.Total(g, gi) > f.Total(g, ai)*(1+1e-9) {
				t.Errorf("%s group %d: G-Mean %v > A-Mean %v", id,
					g, f.Total(g, gi), f.Total(g, ai))
			}
		}
	}
	if _, err := BuildFigure("fig9z", runs); err == nil {
		t.Error("unknown figure should error")
	}
}

func TestPaperShapeHeadlines(t *testing.T) {
	// The qualitative results the reproduction must preserve, at test scale.
	runs := testRuns(t)
	c := ExtractClaims(runs)

	if c.AMATVsDWFAvg <= 0.15 {
		t.Errorf("proposed scheme should improve AMAT vs CLOCK-DWF by a wide margin, got %v", c.AMATVsDWFAvg)
	}
	if c.WritesVsNVMOnlyAvg <= 0.15 {
		t.Errorf("proposed scheme should cut NVM writes vs NVM-only, got %v", c.WritesVsNVMOnlyAvg)
	}
	if c.PowerVsDWFAvg <= 0 {
		t.Errorf("proposed scheme should use less power than CLOCK-DWF on average, got %v", c.PowerVsDWFAvg)
	}
	if c.DWFWritesExceedNVMOnlyMax <= 1 {
		t.Errorf("CLOCK-DWF should exceed NVM-only writes somewhere (paper: 3.7x), got %v",
			c.DWFWritesExceedNVMOnlyMax)
	}
	if c.StaticShareLo < 0.35 || c.StaticShareHi > 1 {
		t.Errorf("static share range [%v, %v] implausible", c.StaticShareLo, c.StaticShareHi)
	}
	if c.StreamclusterStaticShare > 0.3 {
		t.Errorf("streamcluster must be the dynamic-dominated outlier, static share %v",
			c.StreamclusterStaticShare)
	}
	if c.DWFMigrationAMATShareMax < 0.5 {
		t.Errorf("CLOCK-DWF migrations should dominate AMAT somewhere (paper >60%%), got %v",
			c.DWFMigrationAMATShareMax)
	}
}

func TestStreamclusterIsFig1Outlier(t *testing.T) {
	f := Fig1(testRuns(t))
	i, ok := f.ColumnIndex("streamcluster")
	if !ok {
		t.Fatal("streamcluster column missing")
	}
	static := f.Groups[0].Components[0].Values[i]
	dynamic := f.Groups[0].Components[1].Values[i]
	if dynamic <= static {
		t.Errorf("streamcluster should be dynamic-dominated: static %v, dynamic %v", static, dynamic)
	}
}

func TestClaimsWrite(t *testing.T) {
	var b strings.Builder
	c := ExtractClaims(testRuns(t))
	if err := c.Write(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"power vs DRAM-only", "79%", "measured"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("claims output missing %q", want)
		}
	}
}

func TestTable3MeasureMatchesSpecs(t *testing.T) {
	cfg := testConfig()
	rows, err := Table3Measure(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		spec, ok := workload.ByName(r.Name)
		if !ok {
			t.Fatalf("unknown row %q", r.Name)
		}
		if r.Reads+r.Writes == 0 {
			t.Errorf("%s: empty characterization", r.Name)
		}
		// The measured write fraction must match Table III.
		want := spec.WriteFraction()
		got := float64(r.Writes) / float64(r.Reads+r.Writes)
		if math.Abs(got-want) > 0.02 {
			t.Errorf("%s: write fraction %v, want ~%v", r.Name, got, want)
		}
	}
}

func TestTableRendering(t *testing.T) {
	var b strings.Builder
	if err := Table2(memspec.DefaultMachine()).Write(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "MOESI") {
		t.Error("Table II missing CPU row")
	}
	b.Reset()
	if err := Table4(memspec.Default()).Write(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "100/350") {
		t.Error("Table IV missing NVM latency")
	}
	tab3, err := Table3(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if err := tab3.Write(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "blackscholes") {
		t.Error("Table III missing workloads")
	}
}

func TestRenderFigureAndCSV(t *testing.T) {
	runs := testRuns(t)
	f := Fig4a(runs)
	var b strings.Builder
	if err := RenderFigure(f).Write(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "clock-dwf") || !strings.Contains(b.String(), "proposed") {
		t.Error("rendered figure missing groups")
	}
	b.Reset()
	if err := FigureCSV(f).WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "clock-dwf:Static") {
		t.Errorf("CSV missing component headers:\n%s", b.String()[:200])
	}
}

func TestThresholdSweep(t *testing.T) {
	cfg := testConfig()
	points, err := ThresholdSweep("bodytrack", cfg, [][2]int{{4, 6}, {96, 128}, {1 << 20, 1 << 20}})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points", len(points))
	}
	// An unreachable threshold yields zero promotions.
	last := points[2]
	if last.Proposed.Probabilities.PMigD != 0 {
		t.Errorf("infinite threshold still promoted: %v", last.Proposed.Probabilities.PMigD)
	}
	// Very low thresholds promote more than high ones.
	if points[0].Proposed.Probabilities.PMigD < points[1].Proposed.Probabilities.PMigD {
		t.Errorf("low thresholds should migrate at least as much: %v vs %v",
			points[0].Proposed.Probabilities.PMigD, points[1].Proposed.Probabilities.PMigD)
	}
	if _, err := ThresholdSweep("bodytrack", cfg, nil); err == nil {
		t.Error("empty sweep should error")
	}
}

func TestDRAMSweep(t *testing.T) {
	points, err := DRAMSweep("ferret", testConfig(), []float64{0.05, 0.30})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	// A larger DRAM share gives the hybrid more DRAM hits.
	d0 := points[0].Run.Report(Proposed).Probabilities.PHitDRAM
	d1 := points[1].Run.Report(Proposed).Probabilities.PHitDRAM
	if d1 <= d0 {
		t.Errorf("30%% DRAM should serve more hits than 5%%: %v vs %v", d1, d0)
	}
	if _, err := DRAMSweep("ferret", testConfig(), []float64{1.5}); err == nil {
		t.Error("invalid fraction should error")
	}
}

func TestPageFactorSweep(t *testing.T) {
	points, err := PageFactorSweep("freqmine", testConfig(), []memspec.Geometry{
		memspec.DefaultGeometry(),
		memspec.WordGeometry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if points[0].PageFactor != 64 || points[1].PageFactor != 1024 {
		t.Errorf("page factors = %d/%d", points[0].PageFactor, points[1].PageFactor)
	}
}

func TestCompareAdaptive(t *testing.T) {
	cmp, err := CompareAdaptive("raytrace", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Fixed == nil || cmp.Adaptive == nil {
		t.Fatal("missing reports")
	}
	if cmp.FinalReadThreshold < 1 || cmp.FinalWriteThreshold < 1 {
		t.Errorf("final thresholds %d/%d invalid", cmp.FinalReadThreshold, cmp.FinalWriteThreshold)
	}
}
