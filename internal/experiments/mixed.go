package experiments

import (
	"fmt"
	"strings"

	"hybridmem/internal/clockdwf"
	"hybridmem/internal/core"
	"hybridmem/internal/model"
	"hybridmem/internal/policy"
	"hybridmem/internal/sim"
	"hybridmem/internal/trace"
	"hybridmem/internal/workload"
)

// MixedRun evaluates the policies on a multiprogrammed mix of workloads:
// the consolidated-server scenario the paper's experimental setup implies
// (a quad-core issuing enough parallel traffic "to simulate a production
// server"). Migration quality matters more under consolidation, because a
// DRAM-unfriendly tenant can evict a friendly tenant's hot pages.
type MixedRun struct {
	Names     []string
	Pages     int
	DRAMPages int
	NVMPages  int
	Reports   map[PolicyID]*model.Report
}

// RunMixed runs the standard four policies on the interleaved mix.
func RunMixed(names []string, cfg Config) (*MixedRun, error) {
	if len(names) < 2 {
		return nil, fmt.Errorf("experiments: mix needs >= 2 workloads")
	}
	var specs []workload.Spec
	minScale := 1.0
	for _, n := range names {
		s, ok := workload.ByName(n)
		if !ok {
			return nil, errUnknownWorkload(n)
		}
		specs = append(specs, s)
		if es := cfg.effectiveScale(s); es < minScale {
			minScale = es
		}
	}
	// All tenants run at one scale so their relative intensities match the
	// paper's characterization.
	mix, err := workload.NewMix(specs, minScale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	warm, err := trace.Materialize(mix.WarmupSource(cfg.Seed+1), 0)
	if err != nil {
		return nil, err
	}
	roi, err := trace.Materialize(mix, 0)
	if err != nil {
		return nil, err
	}

	pages := mix.Pages()
	total := cfg.Sizing.TotalPages(pages)
	dram, nvm := cfg.Sizing.Partition(pages)
	run := &MixedRun{
		Names: names, Pages: pages, DRAMPages: dram, NVMPages: nvm,
		Reports: make(map[PolicyID]*model.Report, 4),
	}

	for _, id := range []PolicyID{DRAMOnly, NVMOnly, ClockDWF, Proposed} {
		var pol policy.Policy
		var err error
		switch id {
		case DRAMOnly:
			pol, err = policy.NewDRAMOnly(total)
		case NVMOnly:
			pol, err = policy.NewNVMOnly(total)
		case ClockDWF:
			pol, err = clockdwf.New(dram, nvm, cfg.DWF)
		case Proposed:
			pol, err = core.New(dram, nvm, cfg.Core)
		}
		if err != nil {
			return nil, err
		}
		if _, err := sim.Run(trace.NewSliceSource(warm), pol, cfg.Spec, sim.Options{}); err != nil {
			return nil, fmt.Errorf("experiments: mix warmup %s: %w", id, err)
		}
		res, err := sim.Run(trace.NewSliceSource(roi), pol, cfg.Spec, sim.Options{})
		if err != nil {
			return nil, fmt.Errorf("experiments: mix %s: %w", id, err)
		}
		rep, err := model.Evaluate(res, cfg.Spec)
		if err != nil {
			return nil, err
		}
		run.Reports[id] = rep
	}
	return run, nil
}

// Label returns a display name for the mix.
func (m *MixedRun) Label() string { return strings.Join(m.Names, "+") }
