package experiments

import (
	"fmt"
	"strings"

	"hybridmem/internal/model"
	"hybridmem/internal/runner"
	"hybridmem/internal/workload"
)

// MixedRun evaluates the policies on a multiprogrammed mix of workloads:
// the consolidated-server scenario the paper's experimental setup implies
// (a quad-core issuing enough parallel traffic "to simulate a production
// server"). Migration quality matters more under consolidation, because a
// DRAM-unfriendly tenant can evict a friendly tenant's hot pages.
type MixedRun struct {
	Names     []string
	Pages     int
	DRAMPages int
	NVMPages  int
	Reports   map[PolicyID]*model.Report
}

// RunMixed runs the standard four policies on the interleaved mix. The mix
// trace is materialized once (an uncached runner handle, since mixes fall
// outside the per-workload cache key) and replayed into all four policies
// through the pool.
func RunMixed(names []string, cfg Config) (*MixedRun, error) {
	if len(names) < 2 {
		return nil, fmt.Errorf("experiments: mix needs >= 2 workloads")
	}
	var specs []workload.Spec
	minScale := 1.0
	for _, n := range names {
		s, ok := workload.ByName(n)
		if !ok {
			return nil, errUnknownWorkload(n)
		}
		specs = append(specs, s)
		if es := cfg.effectiveScale(s); es < minScale {
			minScale = es
		}
	}
	// All tenants run at one scale so their relative intensities match the
	// paper's characterization. The mix's adaptive flag is pinned off: the
	// consolidated-server scenario evaluates the paper's fixed scheme.
	c := cfg
	c.Adaptive = false
	c.CheckEvery = 0
	tr := runner.NewTraces(cfg.Seed, func() (runner.TraceGen, error) {
		return workload.NewMix(specs, minScale, cfg.Seed)
	})
	label := strings.Join(names, "+")
	rs, err := c.pool().RunJobs(policyJobs(c, tr, label+"/"))
	if err != nil {
		return nil, fmt.Errorf("experiments: mix: %w", err)
	}
	_, _, pages, err := tr.Materialize()
	if err != nil {
		return nil, err
	}
	dram, nvm := cfg.Sizing.Partition(pages)
	run := &MixedRun{
		Names: names, Pages: pages, DRAMPages: dram, NVMPages: nvm,
		Reports: make(map[PolicyID]*model.Report, len(rs)),
	}
	for i, id := range StandardPolicies() {
		run.Reports[id] = rs[i].Report
	}
	return run, nil
}

// Label returns a display name for the mix.
func (m *MixedRun) Label() string { return strings.Join(m.Names, "+") }
