// Package experiments defines and runs the paper's evaluation: every
// workload of Table III against the DRAM-only, NVM-only, CLOCK-DWF and
// proposed policies, and the figure builders that reproduce Figs. 1, 2a-c
// and 4a-c plus the characterization tables.
//
// Methodology (Section V-A):
//   - total memory = 75% of the workload's distinct pages, DRAM = 10% of
//     that for the hybrid policies; the single-technology baselines get the
//     full total;
//   - each policy first services a warmup pass (every page touched once, as
//     the pre-ROI initialization) whose statistics are discarded, then the
//     measured ROI stream;
//   - all four policies replay bit-identical traces.
//
// Execution goes through internal/runner: grids and sweeps decompose into
// one runner.Job per (workload, configuration, policy), traces are
// generated once per (workload, scale, seed) and replayed read-only into
// every policy, and results assemble positionally so output is identical
// at any parallelism.
package experiments

import (
	"fmt"

	"hybridmem/internal/clockdwf"
	"hybridmem/internal/core"
	"hybridmem/internal/memspec"
	"hybridmem/internal/model"
	"hybridmem/internal/policy"
	"hybridmem/internal/runner"
	"hybridmem/internal/sim"
	"hybridmem/internal/workload"
)

// Config parameterizes an experiment run.
type Config struct {
	// Scale uniformly scales every workload's footprint and request count
	// (1.0 replays full Table III sizes; the default trades a little tail
	// accuracy for CI-friendly runtimes).
	Scale float64
	// Seed drives trace generation; runs are deterministic in (Scale, Seed).
	Seed int64
	// Spec is the memory-technology parameter set (Table IV).
	Spec memspec.Spec
	// Sizing is the provisioning rule (75% / 10%).
	Sizing memspec.Sizing
	// Core configures the proposed scheme; DWF configures CLOCK-DWF.
	Core core.Config
	DWF  clockdwf.Config
	// Adaptive, when true, replaces the fixed-threshold proposed scheme
	// with the adaptive-threshold extension.
	Adaptive bool
	// AdaptiveCfg configures the adaptive controller (used when Adaptive).
	AdaptiveCfg core.AdaptiveConfig
	// CheckEvery enables policy invariant checks every N accesses (0 off).
	CheckEvery int
	// MinPages floors each workload's scaled footprint: tiny workloads
	// (blackscholes) are scaled less aggressively so zone sizes and counter
	// windows stay meaningful.
	MinPages int
	// Parallel is the worker-pool width for grid and sweep execution
	// (0 = GOMAXPROCS, 1 = serial). Results are identical at any width.
	Parallel int
	// Cache, when set, shares materialized traces across calls (one
	// figures/sweep invocation reuses each workload trace everywhere).
	// Nil gives each call a private cache.
	Cache *runner.TraceCache
}

// effectiveScale returns the per-workload scale after the MinPages floor.
func (c Config) effectiveScale(spec workload.Spec) float64 {
	s := c.Scale
	if c.MinPages > 0 && float64(spec.Pages())*s < float64(c.MinPages) {
		s = float64(c.MinPages) / float64(spec.Pages())
	}
	if s > 1 {
		s = 1
	}
	return s
}

// pool returns the worker pool the configuration selects.
func (c Config) pool() *runner.Pool { return runner.New(c.Parallel) }

// traceCache returns the shared cache, or a private one per call.
func (c Config) traceCache() *runner.TraceCache {
	if c.Cache != nil {
		return c.Cache
	}
	return runner.NewTraceCache()
}

// traces returns the (cached) trace handle for spec under this config.
func (c Config) traces(tc *runner.TraceCache, spec workload.Spec) *runner.Traces {
	return tc.Get(spec, c.effectiveScale(spec), c.Seed)
}

// DefaultConfig returns the reproduction settings.
func DefaultConfig() Config {
	return Config{
		Scale:       0.02,
		Seed:        1,
		Spec:        memspec.Default(),
		Sizing:      memspec.DefaultSizing(),
		Core:        core.DefaultConfig(),
		DWF:         clockdwf.DefaultConfig(),
		AdaptiveCfg: core.DefaultAdaptiveConfig(),
		MinPages:    256,
	}
}

// PolicyID names the four standard policies of the evaluation.
type PolicyID string

// The evaluated policies.
const (
	DRAMOnly PolicyID = "dram-only"
	NVMOnly  PolicyID = "nvm-only"
	ClockDWF PolicyID = "clock-dwf"
	Proposed PolicyID = "proposed"
)

// StandardPolicies lists the evaluation's policy set in canonical order.
func StandardPolicies() []PolicyID {
	return []PolicyID{DRAMOnly, NVMOnly, ClockDWF, Proposed}
}

// WorkloadRun holds one workload's results across all policies.
type WorkloadRun struct {
	Workload  workload.Spec
	Pages     int // scaled footprint
	DRAMPages int // hybrid DRAM zone frames
	NVMPages  int // hybrid NVM zone frames
	Reports   map[PolicyID]*model.Report
	Results   map[PolicyID]*sim.Result
	Policies  map[PolicyID]policy.Policy
}

// Report returns the named policy's model evaluation.
func (w *WorkloadRun) Report(id PolicyID) *model.Report { return w.Reports[id] }

// buildPolicy constructs one policy instance for a footprint of pages.
func buildPolicy(id PolicyID, cfg Config, pages int) (policy.Policy, error) {
	total := cfg.Sizing.TotalPages(pages)
	dram, nvm := cfg.Sizing.Partition(pages)
	switch id {
	case DRAMOnly:
		return policy.NewDRAMOnly(total)
	case NVMOnly:
		return policy.NewNVMOnly(total)
	case ClockDWF:
		return clockdwf.New(dram, nvm, cfg.DWF)
	case Proposed:
		if cfg.Adaptive {
			return core.NewAdaptive(dram, nvm, cfg.Core, cfg.AdaptiveCfg)
		}
		return core.New(dram, nvm, cfg.Core)
	default:
		return nil, fmt.Errorf("experiments: unknown policy %q", id)
	}
}

// policyJob builds the runner job for one policy replaying tr under cfg.
func policyJob(id PolicyID, cfg Config, tr *runner.Traces, idPrefix string) runner.Job {
	return runner.Job{
		ID:    idPrefix + string(id),
		Seed:  cfg.Seed,
		Trace: tr,
		Spec:  cfg.Spec,
		Opts:  sim.Options{CheckEvery: cfg.CheckEvery},
		Build: func() (policy.Policy, error) {
			_, _, pages, err := tr.Materialize()
			if err != nil {
				return nil, err
			}
			return buildPolicy(id, cfg, pages)
		},
	}
}

// policyJobs builds the standard four-policy job set for one configuration.
func policyJobs(cfg Config, tr *runner.Traces, idPrefix string) []runner.Job {
	ids := StandardPolicies()
	jobs := make([]runner.Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, policyJob(id, cfg, tr, idPrefix))
	}
	return jobs
}

// assembleRun collects the standard four policy results into a WorkloadRun.
// Results arrive positionally in StandardPolicies order.
func assembleRun(spec workload.Spec, cfg Config, tr *runner.Traces, rs []runner.JobResult) (*WorkloadRun, error) {
	_, _, pages, err := tr.Materialize()
	if err != nil {
		return nil, fmt.Errorf("experiments: trace for %s: %w", spec.Name, err)
	}
	dram, nvm := cfg.Sizing.Partition(pages)
	run := &WorkloadRun{
		Workload:  spec,
		Pages:     pages,
		DRAMPages: dram,
		NVMPages:  nvm,
		Reports:   make(map[PolicyID]*model.Report, len(rs)),
		Results:   make(map[PolicyID]*sim.Result, len(rs)),
		Policies:  make(map[PolicyID]policy.Policy, len(rs)),
	}
	for i, id := range StandardPolicies() {
		r := rs[i]
		if r.Err != nil {
			return nil, fmt.Errorf("experiments: %s on %s: %w", id, spec.Name, r.Err)
		}
		run.Results[id] = r.Result
		run.Reports[id] = r.Report
		run.Policies[id] = r.Policy
	}
	return run, nil
}

// RunWorkload evaluates one Table III workload under all four policies.
func RunWorkload(name string, cfg Config) (*WorkloadRun, error) {
	spec, ok := workload.ByName(name)
	if !ok {
		return nil, errUnknownWorkload(name)
	}
	return RunSpec(spec, cfg)
}

// RunSpec evaluates an arbitrary workload spec under all four policies.
func RunSpec(spec workload.Spec, cfg Config) (*WorkloadRun, error) {
	tr := cfg.traces(cfg.traceCache(), spec)
	rs, err := cfg.pool().RunJobs(policyJobs(cfg, tr, spec.Name+"/"))
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return assembleRun(spec, cfg, tr, rs)
}

// RunAll evaluates every Table III workload, in parallel, returning runs in
// workload name order. The whole grid — every (workload, policy) pair — is
// one runner invocation, so work balances across the pool at job (not
// workload) granularity.
func RunAll(cfg Config) ([]*WorkloadRun, error) {
	names := workload.Names()
	tc := cfg.traceCache()
	specs := make([]workload.Spec, len(names))
	trs := make([]*runner.Traces, len(names))
	jobs := make([]runner.Job, 0, 4*len(names))
	for i, name := range names {
		spec, _ := workload.ByName(name)
		specs[i] = spec
		trs[i] = cfg.traces(tc, spec)
		jobs = append(jobs, policyJobs(cfg, trs[i], name+"/")...)
	}
	rs, err := cfg.pool().RunJobs(jobs)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	width := len(StandardPolicies())
	runs := make([]*WorkloadRun, len(names))
	for i := range names {
		run, err := assembleRun(specs[i], cfg, trs[i], rs[i*width:(i+1)*width])
		if err != nil {
			return nil, err
		}
		runs[i] = run
	}
	return runs, nil
}
