// Package experiments defines and runs the paper's evaluation: every
// workload of Table III against the DRAM-only, NVM-only, CLOCK-DWF and
// proposed policies, and the figure builders that reproduce Figs. 1, 2a-c
// and 4a-c plus the characterization tables.
//
// Methodology (Section V-A):
//   - total memory = 75% of the workload's distinct pages, DRAM = 10% of
//     that for the hybrid policies; the single-technology baselines get the
//     full total;
//   - each policy first services a warmup pass (every page touched once, as
//     the pre-ROI initialization) whose statistics are discarded, then the
//     measured ROI stream;
//   - all four policies replay bit-identical traces.
package experiments

import (
	"fmt"
	"sync"

	"hybridmem/internal/clockdwf"
	"hybridmem/internal/core"
	"hybridmem/internal/memspec"
	"hybridmem/internal/model"
	"hybridmem/internal/policy"
	"hybridmem/internal/sim"
	"hybridmem/internal/trace"
	"hybridmem/internal/workload"
)

// Config parameterizes an experiment run.
type Config struct {
	// Scale uniformly scales every workload's footprint and request count
	// (1.0 replays full Table III sizes; the default trades a little tail
	// accuracy for CI-friendly runtimes).
	Scale float64
	// Seed drives trace generation; runs are deterministic in (Scale, Seed).
	Seed int64
	// Spec is the memory-technology parameter set (Table IV).
	Spec memspec.Spec
	// Sizing is the provisioning rule (75% / 10%).
	Sizing memspec.Sizing
	// Core configures the proposed scheme; DWF configures CLOCK-DWF.
	Core core.Config
	DWF  clockdwf.Config
	// Adaptive, when true, replaces the fixed-threshold proposed scheme
	// with the adaptive-threshold extension.
	Adaptive bool
	// AdaptiveCfg configures the adaptive controller (used when Adaptive).
	AdaptiveCfg core.AdaptiveConfig
	// CheckEvery enables policy invariant checks every N accesses (0 off).
	CheckEvery int
	// MinPages floors each workload's scaled footprint: tiny workloads
	// (blackscholes) are scaled less aggressively so zone sizes and counter
	// windows stay meaningful.
	MinPages int
}

// effectiveScale returns the per-workload scale after the MinPages floor.
func (c Config) effectiveScale(spec workload.Spec) float64 {
	s := c.Scale
	if c.MinPages > 0 && float64(spec.Pages())*s < float64(c.MinPages) {
		s = float64(c.MinPages) / float64(spec.Pages())
	}
	if s > 1 {
		s = 1
	}
	return s
}

// DefaultConfig returns the reproduction settings.
func DefaultConfig() Config {
	return Config{
		Scale:       0.02,
		Seed:        1,
		Spec:        memspec.Default(),
		Sizing:      memspec.DefaultSizing(),
		Core:        core.DefaultConfig(),
		DWF:         clockdwf.DefaultConfig(),
		AdaptiveCfg: core.DefaultAdaptiveConfig(),
		MinPages:    256,
	}
}

// PolicyID names the four standard policies of the evaluation.
type PolicyID string

// The evaluated policies.
const (
	DRAMOnly PolicyID = "dram-only"
	NVMOnly  PolicyID = "nvm-only"
	ClockDWF PolicyID = "clock-dwf"
	Proposed PolicyID = "proposed"
)

// WorkloadRun holds one workload's results across all policies.
type WorkloadRun struct {
	Workload  workload.Spec
	Pages     int // scaled footprint
	DRAMPages int // hybrid DRAM zone frames
	NVMPages  int // hybrid NVM zone frames
	Reports   map[PolicyID]*model.Report
	Results   map[PolicyID]*sim.Result
	Policies  map[PolicyID]policy.Policy
}

// Report returns the named policy's model evaluation.
func (w *WorkloadRun) Report(id PolicyID) *model.Report { return w.Reports[id] }

// RunWorkload evaluates one Table III workload under all four policies.
func RunWorkload(name string, cfg Config) (*WorkloadRun, error) {
	spec, ok := workload.ByName(name)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown workload %q", name)
	}
	return RunSpec(spec, cfg)
}

// RunSpec evaluates an arbitrary workload spec under all four policies.
func RunSpec(spec workload.Spec, cfg Config) (*WorkloadRun, error) {
	gen, err := workload.NewGenerator(spec, cfg.effectiveScale(spec), cfg.Seed)
	if err != nil {
		return nil, err
	}
	warm, err := trace.Materialize(gen.WarmupSource(cfg.Seed+1), 0)
	if err != nil {
		return nil, err
	}
	roi, err := trace.Materialize(gen, 0)
	if err != nil {
		return nil, err
	}

	pages := gen.Pages()
	total := cfg.Sizing.TotalPages(pages)
	dram, nvm := cfg.Sizing.Partition(pages)

	run := &WorkloadRun{
		Workload:  spec,
		Pages:     pages,
		DRAMPages: dram,
		NVMPages:  nvm,
		Reports:   make(map[PolicyID]*model.Report, 4),
		Results:   make(map[PolicyID]*sim.Result, 4),
		Policies:  make(map[PolicyID]policy.Policy, 4),
	}

	build := func(id PolicyID) (policy.Policy, error) {
		switch id {
		case DRAMOnly:
			return policy.NewDRAMOnly(total)
		case NVMOnly:
			return policy.NewNVMOnly(total)
		case ClockDWF:
			return clockdwf.New(dram, nvm, cfg.DWF)
		case Proposed:
			if cfg.Adaptive {
				return core.NewAdaptive(dram, nvm, cfg.Core, cfg.AdaptiveCfg)
			}
			return core.New(dram, nvm, cfg.Core)
		default:
			return nil, fmt.Errorf("experiments: unknown policy %q", id)
		}
	}

	for _, id := range []PolicyID{DRAMOnly, NVMOnly, ClockDWF, Proposed} {
		pol, err := build(id)
		if err != nil {
			return nil, err
		}
		opts := sim.Options{CheckEvery: cfg.CheckEvery}
		// Warmup pass: fills memory, statistics discarded.
		if _, err := sim.Run(trace.NewSliceSource(warm), pol, cfg.Spec, opts); err != nil {
			return nil, fmt.Errorf("experiments: %s warmup on %s: %w", id, spec.Name, err)
		}
		res, err := sim.Run(trace.NewSliceSource(roi), pol, cfg.Spec, opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s on %s: %w", id, spec.Name, err)
		}
		rep, err := model.Evaluate(res, cfg.Spec)
		if err != nil {
			return nil, fmt.Errorf("experiments: evaluating %s on %s: %w", id, spec.Name, err)
		}
		run.Results[id] = res
		run.Reports[id] = rep
		run.Policies[id] = pol
	}
	return run, nil
}

// RunAll evaluates every Table III workload, in parallel, returning runs in
// workload name order.
func RunAll(cfg Config) ([]*WorkloadRun, error) {
	names := workload.Names()
	runs := make([]*WorkloadRun, len(names))
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			runs[i], errs[i] = RunWorkload(name, cfg)
		}(i, name)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", names[i], err)
		}
	}
	return runs, nil
}
