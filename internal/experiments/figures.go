package experiments

import (
	"fmt"

	"hybridmem/internal/model"
	"hybridmem/internal/stats"
)

// Series is one stacked component of a figure: one value per column.
type Series struct {
	Label  string
	Values []float64
}

// Group is one bar per column (the paper's Fig. 4 plots draw one group for
// CLOCK-DWF and one for the proposed scheme).
type Group struct {
	Name       string
	Components []Series
}

// Figure is a reproduction of one paper figure: stacked bars per workload
// with the paper's G-Mean and A-Mean columns appended.
type Figure struct {
	ID      string
	Title   string
	YLabel  string
	Columns []string
	Groups  []Group
	Notes   string
}

// Total returns the stacked total for a group at a column.
func (f *Figure) Total(group, col int) float64 {
	t := 0.0
	for _, c := range f.Groups[group].Components {
		t += c.Values[col]
	}
	return t
}

// ColumnIndex returns the index of a named column.
func (f *Figure) ColumnIndex(name string) (int, bool) {
	for i, c := range f.Columns {
		if c == name {
			return i, true
		}
	}
	return 0, false
}

// figureAMAT is the AMAT the performance figures plot: request service plus
// migrations. The page-fault (disk) term is identical across policies with
// equal total memory and is reported in the tables instead, matching the
// components the paper's Figs. 2b and 4c stack ("Read/Write Requests" and
// "Migrations").
func figureAMAT(r *model.Report) (requests, migrations float64) {
	return r.AMAT.HitDRAM + r.AMAT.HitNVM, r.AMAT.Migrations()
}

// figurePower groups APPR the way Figs. 2a and 4a stack it: static, dynamic
// (request servicing plus page-fault loads) and migration energy.
func figurePower(r *model.Report) (static, dynamic, migration float64) {
	return r.APPR.Static, r.APPR.Dynamic() + r.APPR.PageFault(), r.APPR.Migration()
}

// withMeans appends the paper's G-Mean and A-Mean columns to per-workload
// component rows. The arithmetic mean is taken per component (so components
// still sum to the mean total); the geometric-mean column scales the
// arithmetic component shares to the geometric mean of the totals.
func withMeans(columns []string, groups []Group) ([]string, []Group) {
	out := make([]Group, len(groups))
	for gi, g := range groups {
		n := len(g.Components[0].Values)
		totals := make([]float64, n)
		for _, c := range g.Components {
			for i, v := range c.Values {
				totals[i] += v
			}
		}
		amean := stats.MustMean(totals)
		gmean := 0.0
		if allPositive(totals) {
			gmean = stats.MustGeoMean(totals)
		}
		comps := make([]Series, len(g.Components))
		for ci, c := range g.Components {
			compMean := stats.MustMean(c.Values)
			gVal := 0.0
			if amean > 0 {
				gVal = gmean * compMean / amean
			}
			vals := append(append([]float64(nil), c.Values...), gVal, compMean)
			comps[ci] = Series{Label: c.Label, Values: vals}
		}
		out[gi] = Group{Name: g.Name, Components: comps}
	}
	cols := append(append([]string(nil), columns...), "G-Mean", "A-Mean")
	return cols, out
}

func allPositive(xs []float64) bool {
	for _, x := range xs {
		if x <= 0 {
			return false
		}
	}
	return true
}

func workloadColumns(runs []*WorkloadRun) []string {
	cols := make([]string, len(runs))
	for i, r := range runs {
		cols[i] = r.Workload.Name
	}
	return cols
}

// Fig1 reproduces Fig. 1: the DRAM-only power breakdown (static / dynamic /
// page fault), each workload normalized to its own total.
func Fig1(runs []*WorkloadRun) *Figure {
	n := len(runs)
	static := make([]float64, n)
	dynamic := make([]float64, n)
	fault := make([]float64, n)
	for i, r := range runs {
		p := r.Report(DRAMOnly).APPR
		total := p.Total()
		static[i] = p.Static / total
		dynamic[i] = p.Dynamic() / total
		fault[i] = p.PageFault() / total
	}
	return &Figure{
		ID:      "fig1",
		Title:   "DRAM Power Breakdown",
		YLabel:  "Normalized Power Consumption",
		Columns: workloadColumns(runs),
		Groups: []Group{{Name: "dram-only", Components: []Series{
			{Label: "Static", Values: static},
			{Label: "Dynamic", Values: dynamic},
			{Label: "Page Fault", Values: fault},
		}}},
		Notes: "components of DRAM-only APPR normalized to its own total",
	}
}

// powerGroup builds one policy's power bars normalized to DRAM-only APPR.
func powerGroup(runs []*WorkloadRun, id PolicyID) Group {
	n := len(runs)
	static := make([]float64, n)
	dynamic := make([]float64, n)
	migration := make([]float64, n)
	for i, r := range runs {
		base := r.Report(DRAMOnly).APPR.Total()
		s, d, m := figurePower(r.Report(id))
		static[i], dynamic[i], migration[i] = s/base, d/base, m/base
	}
	return Group{Name: string(id), Components: []Series{
		{Label: "Static", Values: static},
		{Label: "Dynamic", Values: dynamic},
		{Label: "Migration", Values: migration},
	}}
}

// Fig2a reproduces Fig. 2a: CLOCK-DWF power breakdown normalized to the
// DRAM-only power consumption.
func Fig2a(runs []*WorkloadRun) *Figure {
	cols, groups := withMeans(workloadColumns(runs), []Group{powerGroup(runs, ClockDWF)})
	return &Figure{
		ID:      "fig2a",
		Title:   "CLOCK-DWF Power Breakdown Normalized to DRAM",
		YLabel:  "Normalized Power Consumption",
		Columns: cols,
		Groups:  groups,
		Notes:   "page-fault load energy is folded into Dynamic, as in the paper's stacking",
	}
}

// amatGroup builds one policy's AMAT bars normalized to the baseline
// policy's figure-AMAT.
func amatGroup(runs []*WorkloadRun, id, baseline PolicyID) Group {
	n := len(runs)
	req := make([]float64, n)
	mig := make([]float64, n)
	for i, r := range runs {
		bReq, bMig := figureAMAT(r.Report(baseline))
		base := bReq + bMig
		q, m := figureAMAT(r.Report(id))
		req[i], mig[i] = q/base, m/base
	}
	return Group{Name: string(id), Components: []Series{
		{Label: "Read/Write Requests", Values: req},
		{Label: "Migrations", Values: mig},
	}}
}

// Fig2b reproduces Fig. 2b: CLOCK-DWF AMAT normalized to DRAM-only.
func Fig2b(runs []*WorkloadRun) *Figure {
	cols, groups := withMeans(workloadColumns(runs), []Group{amatGroup(runs, ClockDWF, DRAMOnly)})
	return &Figure{
		ID:      "fig2b",
		Title:   "Normalized AMAT of CLOCK-DWF Compared to DRAM-Only Memory",
		YLabel:  "Normalized AMAT",
		Columns: cols,
		Groups:  groups,
		Notes:   "request + migration terms of Eq. 1; the disk term is policy-invariant and tabulated separately",
	}
}

// writesGroup builds one policy's NVM-write bars normalized to the NVM-only
// total write count.
func writesGroup(runs []*WorkloadRun, id PolicyID) Group {
	n := len(runs)
	reqs := make([]float64, n)
	fault := make([]float64, n)
	mig := make([]float64, n)
	for i, r := range runs {
		base := float64(r.Report(NVMOnly).NVMWrites.Total())
		w := r.Report(id).NVMWrites
		reqs[i] = float64(w.Requests) / base
		fault[i] = float64(w.PageFault) / base
		mig[i] = float64(w.Migration) / base
	}
	return Group{Name: string(id), Components: []Series{
		{Label: "Read/Write Requests", Values: reqs},
		{Label: "Page Fault", Values: fault},
		{Label: "Migration", Values: mig},
	}}
}

// Fig2c reproduces Fig. 2c: writes arriving at NVM under CLOCK-DWF,
// normalized to an NVM-only main memory.
func Fig2c(runs []*WorkloadRun) *Figure {
	cols, groups := withMeans(workloadColumns(runs), []Group{writesGroup(runs, ClockDWF)})
	return &Figure{
		ID:      "fig2c",
		Title:   "Number of Writes in CLOCK-DWF Normalized to NVM-Only Memory",
		YLabel:  "Normalized Number of Writes",
		Columns: cols,
		Groups:  groups,
	}
}

// Fig4a reproduces Fig. 4a: power breakdowns of CLOCK-DWF (left bars) and
// the proposed scheme (right bars), normalized to DRAM-only.
func Fig4a(runs []*WorkloadRun) *Figure {
	cols, groups := withMeans(workloadColumns(runs),
		[]Group{powerGroup(runs, ClockDWF), powerGroup(runs, Proposed)})
	return &Figure{
		ID:      "fig4a",
		Title:   "Power Breakdown of CLOCK-DWF and the Proposed Scheme Normalized to DRAM",
		YLabel:  "Normalized Power Consumption",
		Columns: cols,
		Groups:  groups,
	}
}

// Fig4b reproduces Fig. 4b: NVM writes of CLOCK-DWF and the proposed scheme
// normalized to NVM-only.
func Fig4b(runs []*WorkloadRun) *Figure {
	cols, groups := withMeans(workloadColumns(runs),
		[]Group{writesGroup(runs, ClockDWF), writesGroup(runs, Proposed)})
	return &Figure{
		ID:      "fig4b",
		Title:   "Number of Writes in CLOCK-DWF and the Proposed Scheme Normalized to NVM-Only",
		YLabel:  "Normalized Number of Writes",
		Columns: cols,
		Groups:  groups,
	}
}

// Fig4c reproduces Fig. 4c: the proposed scheme's AMAT normalized to
// CLOCK-DWF.
func Fig4c(runs []*WorkloadRun) *Figure {
	cols, groups := withMeans(workloadColumns(runs), []Group{amatGroup(runs, Proposed, ClockDWF)})
	return &Figure{
		ID:      "fig4c",
		Title:   "Normalized AMAT of the Proposed Scheme Compared to CLOCK-DWF",
		YLabel:  "Normalized AMAT",
		Columns: cols,
		Groups:  groups,
	}
}

// BuildFigure dispatches a figure builder by experiment ID.
func BuildFigure(id string, runs []*WorkloadRun) (*Figure, error) {
	switch id {
	case "fig1":
		return Fig1(runs), nil
	case "fig2a":
		return Fig2a(runs), nil
	case "fig2b":
		return Fig2b(runs), nil
	case "fig2c":
		return Fig2c(runs), nil
	case "fig4a":
		return Fig4a(runs), nil
	case "fig4b":
		return Fig4b(runs), nil
	case "fig4c":
		return Fig4c(runs), nil
	default:
		return nil, fmt.Errorf("experiments: unknown figure %q", id)
	}
}

// FigureIDs lists the reproducible figures in paper order.
func FigureIDs() []string {
	return []string{"fig1", "fig2a", "fig2b", "fig2c", "fig4a", "fig4b", "fig4c"}
}
