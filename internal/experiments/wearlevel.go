package experiments

import (
	"fmt"

	"hybridmem/internal/mm"
	"hybridmem/internal/model"
	"hybridmem/internal/policy"
	"hybridmem/internal/sim"
	"hybridmem/internal/trace"
	"hybridmem/internal/workload"
)

// WearLevelResult compares NVM wear distribution with and without Start-Gap
// wear leveling under an NVM-only memory (the endurance extension of the
// Section III-C analysis: total writes set average wear, but the *worst*
// frame bounds lifetime unless wear is leveled).
//
// The ablation uses the NVM-only baseline deliberately: under the proposed
// migration scheme, page movement already spreads wear across frames (an
// interesting secondary benefit the comparison quantifies), whereas a
// static placement pins write-hot pages to fixed frames and shows the
// leveler's full effect.
type WearLevelResult struct {
	Workload string
	// Plain and Leveled are the two runs' wear summaries.
	Plain, Leveled mm.WearStats
	// PlainImbalance and LeveledImbalance are max/mean frame wear.
	PlainImbalance, LeveledImbalance float64
	// PlainWorstYears and LeveledWorstYears are the no-leveling and leveled
	// worst-frame lifetime estimates.
	PlainWorstYears, LeveledWorstYears float64
	// GapMoves is the leveler's background page-copy overhead.
	GapMoves int64
}

// WearLevelAblation runs the proposed scheme twice on one workload: once
// with identity wear accounting and once with Start-Gap (period in wear
// events between gap moves).
func WearLevelAblation(name string, cfg Config, period int) (*WearLevelResult, error) {
	spec, ok := workload.ByName(name)
	if !ok {
		return nil, errUnknownWorkload(name)
	}
	warm, roi, pages, err := cfg.traces(cfg.traceCache(), spec).Materialize()
	if err != nil {
		return nil, err
	}
	dram, nvm := cfg.Sizing.Partition(pages)

	run := func(level bool) (*sim.Result, policy.Policy, error) {
		pol, err := policy.NewNVMOnly(dram + nvm)
		if err != nil {
			return nil, nil, err
		}
		if level {
			if err := pol.System().EnableWearLeveling(mm.LocNVM, period); err != nil {
				return nil, nil, err
			}
		}
		if _, err := sim.Run(trace.NewSliceSource(warm), pol, cfg.Spec, sim.Options{}); err != nil {
			return nil, nil, err
		}
		res, err := sim.Run(trace.NewSliceSource(roi), pol, cfg.Spec, sim.Options{})
		return res, pol, err
	}

	plain, _, err := run(false)
	if err != nil {
		return nil, fmt.Errorf("experiments: wear ablation (plain): %w", err)
	}
	leveled, lvPol, err := run(true)
	if err != nil {
		return nil, fmt.Errorf("experiments: wear ablation (leveled): %w", err)
	}

	out := &WearLevelResult{
		Workload:         name,
		Plain:            plain.NVMWear,
		Leveled:          leveled.NVMWear,
		PlainImbalance:   model.WearImbalance(plain.NVMWear, plain.NVMPages),
		LeveledImbalance: model.WearImbalance(leveled.NVMWear, leveled.NVMPages+1),
	}
	if e, err := model.EvaluateEndurance(plain, cfg.Spec); err == nil {
		out.PlainWorstYears = e.LifetimeYearsWorstFrame
	}
	if e, err := model.EvaluateEndurance(leveled, cfg.Spec); err == nil {
		out.LeveledWorstYears = e.LifetimeYearsWorstFrame
	}
	out.GapMoves = lvPol.System().GapMoves(mm.LocNVM)
	return out, nil
}
