package experiments

import (
	"fmt"

	"hybridmem/internal/core"
	"hybridmem/internal/memspec"
	"hybridmem/internal/model"
)

// ThresholdPoint is one configuration of the threshold sensitivity sweep
// (the Section V-B raytrace discussion: optimal thresholds are workload
// dependent).
type ThresholdPoint struct {
	ReadThreshold, WriteThreshold int
	// Proposed is the proposed scheme's evaluation at these thresholds.
	Proposed *model.Report
	// PowerVsDRAM and AMATVsDWF are the figure-normalized metrics.
	PowerVsDRAM float64
	AMATVsDWF   float64
	// WritesVsNVMOnly is the endurance metric.
	WritesVsNVMOnly float64
}

// ThresholdSweep evaluates the proposed scheme across threshold pairs on one
// workload, holding the baselines fixed.
func ThresholdSweep(name string, cfg Config, pairs [][2]int) ([]ThresholdPoint, error) {
	if len(pairs) == 0 {
		return nil, fmt.Errorf("experiments: empty threshold sweep")
	}
	points := make([]ThresholdPoint, 0, len(pairs))
	for _, pair := range pairs {
		c := cfg
		c.Core.ReadThreshold = pair[0]
		c.Core.WriteThreshold = pair[1]
		run, err := RunWorkload(name, c)
		if err != nil {
			return nil, fmt.Errorf("experiments: thresholds %v: %w", pair, err)
		}
		prop := run.Report(Proposed)
		dwf := run.Report(ClockDWF)
		dram := run.Report(DRAMOnly)
		nvm := run.Report(NVMOnly)
		dwfAMAT := dwf.AMAT.HitDRAM + dwf.AMAT.HitNVM + dwf.AMAT.Migrations()
		propAMAT := prop.AMAT.HitDRAM + prop.AMAT.HitNVM + prop.AMAT.Migrations()
		points = append(points, ThresholdPoint{
			ReadThreshold:   pair[0],
			WriteThreshold:  pair[1],
			Proposed:        prop,
			PowerVsDRAM:     prop.APPR.Total() / dram.APPR.Total(),
			AMATVsDWF:       propAMAT / dwfAMAT,
			WritesVsNVMOnly: float64(prop.NVMWrites.Total()) / float64(nvm.NVMWrites.Total()),
		})
	}
	return points, nil
}

// DefaultThresholdPairs returns the grid used by the sweep experiment.
func DefaultThresholdPairs() [][2]int {
	return [][2]int{
		{4, 6}, {8, 12}, {16, 24}, {32, 48}, {64, 96}, {96, 128}, {128, 192}, {256, 384},
	}
}

// DRAMPoint is one DRAM-share configuration of the provisioning sweep.
type DRAMPoint struct {
	DRAMFraction float64
	Run          *WorkloadRun
	PowerVsDRAM  float64
	AMATVsDWF    float64
}

// DRAMSweep re-runs one workload across DRAM shares of the hybrid memory
// (the paper fixes 10%; the sweep shows how the trade-off moves).
func DRAMSweep(name string, cfg Config, fractions []float64) ([]DRAMPoint, error) {
	if len(fractions) == 0 {
		return nil, fmt.Errorf("experiments: empty DRAM sweep")
	}
	points := make([]DRAMPoint, 0, len(fractions))
	for _, f := range fractions {
		c := cfg
		c.Sizing.DRAMFractionOfMem = f
		if err := c.Sizing.Validate(); err != nil {
			return nil, err
		}
		run, err := RunWorkload(name, c)
		if err != nil {
			return nil, fmt.Errorf("experiments: DRAM share %v: %w", f, err)
		}
		prop := run.Report(Proposed)
		dwf := run.Report(ClockDWF)
		dram := run.Report(DRAMOnly)
		dwfAMAT := dwf.AMAT.HitDRAM + dwf.AMAT.HitNVM + dwf.AMAT.Migrations()
		propAMAT := prop.AMAT.HitDRAM + prop.AMAT.HitNVM + prop.AMAT.Migrations()
		points = append(points, DRAMPoint{
			DRAMFraction: f,
			Run:          run,
			PowerVsDRAM:  prop.APPR.Total() / dram.APPR.Total(),
			AMATVsDWF:    propAMAT / dwfAMAT,
		})
	}
	return points, nil
}

// PageFactorPoint is one access-granularity configuration (Section II: the
// PageFactor coefficient converts page moves into memory accesses).
type PageFactorPoint struct {
	Geometry    memspec.Geometry
	PageFactor  int
	Run         *WorkloadRun
	PowerVsDRAM float64
	AMATVsDWF   float64
}

// PageFactorSweep re-runs one workload across access granularities.
func PageFactorSweep(name string, cfg Config, geometries []memspec.Geometry) ([]PageFactorPoint, error) {
	if len(geometries) == 0 {
		return nil, fmt.Errorf("experiments: empty PageFactor sweep")
	}
	points := make([]PageFactorPoint, 0, len(geometries))
	for _, g := range geometries {
		c := cfg
		c.Spec.Geometry = g
		if err := c.Spec.Validate(); err != nil {
			return nil, err
		}
		run, err := RunWorkload(name, c)
		if err != nil {
			return nil, fmt.Errorf("experiments: geometry %+v: %w", g, err)
		}
		prop := run.Report(Proposed)
		dwf := run.Report(ClockDWF)
		dram := run.Report(DRAMOnly)
		dwfAMAT := dwf.AMAT.HitDRAM + dwf.AMAT.HitNVM + dwf.AMAT.Migrations()
		propAMAT := prop.AMAT.HitDRAM + prop.AMAT.HitNVM + prop.AMAT.Migrations()
		points = append(points, PageFactorPoint{
			Geometry:    g,
			PageFactor:  g.PageFactor(),
			Run:         run,
			PowerVsDRAM: prop.APPR.Total() / dram.APPR.Total(),
			AMATVsDWF:   propAMAT / dwfAMAT,
		})
	}
	return points, nil
}

// AdaptiveComparison runs the fixed-threshold and adaptive-threshold
// variants of the proposed scheme on one workload (the paper's future-work
// ablation).
type AdaptiveComparison struct {
	Fixed    *model.Report
	Adaptive *model.Report
	// FinalReadThreshold/FinalWriteThreshold are where the controller
	// settled.
	FinalReadThreshold, FinalWriteThreshold int
}

// CompareAdaptive evaluates both variants.
func CompareAdaptive(name string, cfg Config) (*AdaptiveComparison, error) {
	fixedRun, err := RunWorkload(name, cfg)
	if err != nil {
		return nil, err
	}
	acfg := cfg
	acfg.Adaptive = true
	adaptRun, err := RunWorkload(name, acfg)
	if err != nil {
		return nil, err
	}
	cmp := &AdaptiveComparison{
		Fixed:    fixedRun.Report(Proposed),
		Adaptive: adaptRun.Report(Proposed),
	}
	if a, ok := adaptRun.Policies[Proposed].(*core.Adaptive); ok {
		cmp.FinalReadThreshold, cmp.FinalWriteThreshold = a.Thresholds()
	}
	return cmp, nil
}
