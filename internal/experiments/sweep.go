package experiments

import (
	"fmt"

	"hybridmem/internal/core"
	"hybridmem/internal/memspec"
	"hybridmem/internal/model"
	"hybridmem/internal/runner"
	"hybridmem/internal/workload"
)

// ThresholdPoint is one configuration of the threshold sensitivity sweep
// (the Section V-B raytrace discussion: optimal thresholds are workload
// dependent).
type ThresholdPoint struct {
	ReadThreshold, WriteThreshold int
	// Proposed is the proposed scheme's evaluation at these thresholds.
	Proposed *model.Report
	// PowerVsDRAM and AMATVsDWF are the figure-normalized metrics.
	PowerVsDRAM float64
	AMATVsDWF   float64
	// WritesVsNVMOnly is the endurance metric.
	WritesVsNVMOnly float64
}

// ThresholdSweep evaluates the proposed scheme across threshold pairs on one
// workload, holding the baselines fixed. Thresholds only parameterize the
// proposed scheme, so the sweep simulates the three baselines once and one
// proposed run per pair — all on one cached trace, in one pool invocation.
func ThresholdSweep(name string, cfg Config, pairs [][2]int) ([]ThresholdPoint, error) {
	if len(pairs) == 0 {
		return nil, fmt.Errorf("experiments: empty threshold sweep")
	}
	spec, ok := workload.ByName(name)
	if !ok {
		return nil, errUnknownWorkload(name)
	}
	tr := cfg.traces(cfg.traceCache(), spec)

	jobs := []runner.Job{
		policyJob(DRAMOnly, cfg, tr, name+"/"),
		policyJob(NVMOnly, cfg, tr, name+"/"),
		policyJob(ClockDWF, cfg, tr, name+"/"),
	}
	for _, pair := range pairs {
		c := cfg
		c.Core.ReadThreshold = pair[0]
		c.Core.WriteThreshold = pair[1]
		jobs = append(jobs, policyJob(Proposed, c, tr,
			fmt.Sprintf("%s/thr%d-%d/", name, pair[0], pair[1])))
	}
	rs, err := cfg.pool().RunJobs(jobs)
	if err != nil {
		return nil, fmt.Errorf("experiments: threshold sweep: %w", err)
	}
	dram, nvm, dwf := rs[0].Report, rs[1].Report, rs[2].Report

	points := make([]ThresholdPoint, 0, len(pairs))
	for i, pair := range pairs {
		prop := rs[3+i].Report
		dwfAMAT := dwf.AMAT.HitDRAM + dwf.AMAT.HitNVM + dwf.AMAT.Migrations()
		propAMAT := prop.AMAT.HitDRAM + prop.AMAT.HitNVM + prop.AMAT.Migrations()
		points = append(points, ThresholdPoint{
			ReadThreshold:   pair[0],
			WriteThreshold:  pair[1],
			Proposed:        prop,
			PowerVsDRAM:     prop.APPR.Total() / dram.APPR.Total(),
			AMATVsDWF:       propAMAT / dwfAMAT,
			WritesVsNVMOnly: float64(prop.NVMWrites.Total()) / float64(nvm.NVMWrites.Total()),
		})
	}
	return points, nil
}

// DefaultThresholdPairs returns the grid used by the sweep experiment.
func DefaultThresholdPairs() [][2]int {
	return [][2]int{
		{4, 6}, {8, 12}, {16, 24}, {32, 48}, {64, 96}, {96, 128}, {128, 192}, {256, 384},
	}
}

// DRAMPoint is one DRAM-share configuration of the provisioning sweep.
type DRAMPoint struct {
	DRAMFraction float64
	Run          *WorkloadRun
	PowerVsDRAM  float64
	AMATVsDWF    float64
}

// DRAMSweep re-runs one workload across DRAM shares of the hybrid memory
// (the paper fixes 10%; the sweep shows how the trade-off moves). All
// points replay one cached trace through one pool invocation.
func DRAMSweep(name string, cfg Config, fractions []float64) ([]DRAMPoint, error) {
	if len(fractions) == 0 {
		return nil, fmt.Errorf("experiments: empty DRAM sweep")
	}
	cfgs := make([]Config, len(fractions))
	for i, f := range fractions {
		c := cfg
		c.Sizing.DRAMFractionOfMem = f
		if err := c.Sizing.Validate(); err != nil {
			return nil, err
		}
		cfgs[i] = c
	}
	runs, err := runPointGrids(name, cfg, cfgs, func(i int) string {
		return fmt.Sprintf("%s/dram%g/", name, fractions[i])
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: DRAM sweep: %w", err)
	}
	points := make([]DRAMPoint, 0, len(fractions))
	for i, run := range runs {
		prop := run.Report(Proposed)
		dwf := run.Report(ClockDWF)
		dram := run.Report(DRAMOnly)
		dwfAMAT := dwf.AMAT.HitDRAM + dwf.AMAT.HitNVM + dwf.AMAT.Migrations()
		propAMAT := prop.AMAT.HitDRAM + prop.AMAT.HitNVM + prop.AMAT.Migrations()
		points = append(points, DRAMPoint{
			DRAMFraction: fractions[i],
			Run:          run,
			PowerVsDRAM:  prop.APPR.Total() / dram.APPR.Total(),
			AMATVsDWF:    propAMAT / dwfAMAT,
		})
	}
	return points, nil
}

// PageFactorPoint is one access-granularity configuration (Section II: the
// PageFactor coefficient converts page moves into memory accesses).
type PageFactorPoint struct {
	Geometry    memspec.Geometry
	PageFactor  int
	Run         *WorkloadRun
	PowerVsDRAM float64
	AMATVsDWF   float64
}

// PageFactorSweep re-runs one workload across access granularities.
func PageFactorSweep(name string, cfg Config, geometries []memspec.Geometry) ([]PageFactorPoint, error) {
	if len(geometries) == 0 {
		return nil, fmt.Errorf("experiments: empty PageFactor sweep")
	}
	cfgs := make([]Config, len(geometries))
	for i, g := range geometries {
		c := cfg
		c.Spec.Geometry = g
		if err := c.Spec.Validate(); err != nil {
			return nil, err
		}
		cfgs[i] = c
	}
	runs, err := runPointGrids(name, cfg, cfgs, func(i int) string {
		g := geometries[i]
		return fmt.Sprintf("%s/pf%d-%d/", name, g.PageSizeBytes, g.LineSizeBytes)
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: PageFactor sweep: %w", err)
	}
	points := make([]PageFactorPoint, 0, len(geometries))
	for i, run := range runs {
		prop := run.Report(Proposed)
		dwf := run.Report(ClockDWF)
		dram := run.Report(DRAMOnly)
		dwfAMAT := dwf.AMAT.HitDRAM + dwf.AMAT.HitNVM + dwf.AMAT.Migrations()
		propAMAT := prop.AMAT.HitDRAM + prop.AMAT.HitNVM + prop.AMAT.Migrations()
		points = append(points, PageFactorPoint{
			Geometry:    geometries[i],
			PageFactor:  geometries[i].PageFactor(),
			Run:         run,
			PowerVsDRAM: prop.APPR.Total() / dram.APPR.Total(),
			AMATVsDWF:   propAMAT / dwfAMAT,
		})
	}
	return points, nil
}

// runPointGrids executes the standard four-policy grid for every per-point
// configuration of a sweep, sharing one cached trace, and assembles one
// WorkloadRun per point. All points' jobs go to the pool together.
func runPointGrids(name string, cfg Config, cfgs []Config, prefix func(i int) string) ([]*WorkloadRun, error) {
	spec, ok := workload.ByName(name)
	if !ok {
		return nil, errUnknownWorkload(name)
	}
	tr := cfg.traces(cfg.traceCache(), spec)
	var jobs []runner.Job
	for i, c := range cfgs {
		jobs = append(jobs, policyJobs(c, tr, prefix(i))...)
	}
	rs, err := cfg.pool().RunJobs(jobs)
	if err != nil {
		return nil, err
	}
	width := len(StandardPolicies())
	runs := make([]*WorkloadRun, len(cfgs))
	for i, c := range cfgs {
		run, err := assembleRun(spec, c, tr, rs[i*width:(i+1)*width])
		if err != nil {
			return nil, err
		}
		runs[i] = run
	}
	return runs, nil
}

// AdaptiveComparison runs the fixed-threshold and adaptive-threshold
// variants of the proposed scheme on one workload (the paper's future-work
// ablation).
type AdaptiveComparison struct {
	Fixed    *model.Report
	Adaptive *model.Report
	// FinalReadThreshold/FinalWriteThreshold are where the controller
	// settled.
	FinalReadThreshold, FinalWriteThreshold int
}

// CompareAdaptive evaluates both variants. Only the proposed scheme
// differs between them, so the comparison is two jobs on one cached trace.
func CompareAdaptive(name string, cfg Config) (*AdaptiveComparison, error) {
	spec, ok := workload.ByName(name)
	if !ok {
		return nil, errUnknownWorkload(name)
	}
	tr := cfg.traces(cfg.traceCache(), spec)
	fixedCfg := cfg
	fixedCfg.Adaptive = false
	adaptCfg := cfg
	adaptCfg.Adaptive = true
	jobs := []runner.Job{
		policyJob(Proposed, fixedCfg, tr, name+"/fixed/"),
		policyJob(Proposed, adaptCfg, tr, name+"/adaptive/"),
	}
	rs, err := cfg.pool().RunJobs(jobs)
	if err != nil {
		return nil, fmt.Errorf("experiments: adaptive comparison: %w", err)
	}
	cmp := &AdaptiveComparison{
		Fixed:    rs[0].Report,
		Adaptive: rs[1].Report,
	}
	if a, ok := rs[1].Policy.(*core.Adaptive); ok {
		cmp.FinalReadThreshold, cmp.FinalWriteThreshold = a.Thresholds()
	}
	return cmp, nil
}
