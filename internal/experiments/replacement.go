package experiments

import (
	"hybridmem/internal/clockalg"
	"hybridmem/internal/clockpro"
	"hybridmem/internal/lru"
	"hybridmem/internal/runner"
	"hybridmem/internal/workload"
)

// ReplacementRow compares single-memory hit ratios of the three replacement
// algorithms the paper's lineage involves: LRU (the proposed scheme's
// building block), CLOCK (second chance, CLOCK-DWF's building block) and
// CLOCK-Pro. It backs two claims: the proposed scheme's queues inherit LRU's
// hit ratio (Section IV), and the related-work ordering of Section III.
type ReplacementRow struct {
	Workload             string
	Frames               int
	LRU, Clock, ClockPro float64
	Accesses             int64
}

// ReplacementComparison measures hit ratios over one workload's ROI stream
// with memory sized by the usual 75% rule. The stream replays from the
// shared trace cache.
func ReplacementComparison(name string, cfg Config) (*ReplacementRow, error) {
	spec, ok := workload.ByName(name)
	if !ok {
		return nil, errUnknownWorkload(name)
	}
	_, gen, pages, err := cfg.traces(cfg.traceCache(), spec).Sources()
	if err != nil {
		return nil, err
	}
	frames := cfg.Sizing.TotalPages(pages)

	lruList := lru.New[struct{}]()
	ring := clockalg.New[struct{}]()
	pro, err := clockpro.New(frames)
	if err != nil {
		return nil, err
	}

	var lruHits, clockHits, accesses int64
	pageSize := cfg.Spec.Geometry.PageSizeBytes
	for {
		rec, ok := gen.Next()
		if !ok {
			break
		}
		page := rec.Page(pageSize)
		accesses++

		if _, ok := lruList.Touch(page); ok {
			lruHits++
		} else {
			if lruList.Len() == frames {
				lruList.RemoveBack()
			}
			if err := lruList.PushFront(page, struct{}{}); err != nil {
				return nil, err
			}
		}

		if _, ok := ring.Reference(page); ok {
			clockHits++
		} else {
			if ring.Len() == frames {
				ring.Evict()
			}
			if err := ring.Insert(page, struct{}{}, true); err != nil {
				return nil, err
			}
		}

		pro.Access(page)
	}

	return &ReplacementRow{
		Workload: name,
		Frames:   frames,
		LRU:      float64(lruHits) / float64(accesses),
		Clock:    float64(clockHits) / float64(accesses),
		ClockPro: pro.HitRatio(),
		Accesses: accesses,
	}, nil
}

// ReplacementAll measures every Table III workload across the pool.
func ReplacementAll(cfg Config) ([]*ReplacementRow, error) {
	names := workload.Names()
	return runner.Map(cfg.pool(), len(names), func(i int) (*ReplacementRow, error) {
		return ReplacementComparison(names[i], cfg)
	})
}

func errUnknownWorkload(name string) error {
	return &unknownWorkloadError{name}
}

type unknownWorkloadError struct{ name string }

func (e *unknownWorkloadError) Error() string {
	return "experiments: unknown workload \"" + e.name + "\""
}
