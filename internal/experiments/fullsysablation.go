package experiments

import (
	"fmt"

	"hybridmem/internal/core"
	"hybridmem/internal/fullsys"
	"hybridmem/internal/memspec"
	"hybridmem/internal/model"
	"hybridmem/internal/sim"
	"hybridmem/internal/trace"
	"hybridmem/internal/workload"
)

// FullSysResult compares the proposed scheme on the calibrated direct trace
// against the cache-filtered (COTSon-substitute) trace of the same workload:
// the trace-methodology ablation of DESIGN.md.
type FullSysResult struct {
	Workload string
	// Direct is the proposed scheme on the generator's direct stream.
	Direct *model.Report
	// Filtered is the proposed scheme on the cache-filtered stream.
	Filtered *model.Report
	// CPUAccesses and FilteredAccesses show the hierarchy's filtering power.
	CPUAccesses, FilteredAccesses int64
	// L1DHitRatio and LLCHitRatio summarize the cache model's behaviour.
	L1DHitRatio, LLCHitRatio float64
}

// FullSysAblation runs the ablation for one workload.
func FullSysAblation(name string, cfg Config, opts fullsys.Options) (*FullSysResult, error) {
	direct, err := RunWorkload(name, cfg)
	if err != nil {
		return nil, err
	}

	spec, _ := workload.ByName(name)
	gen, err := workload.NewGenerator(spec, cfg.effectiveScale(spec), cfg.Seed)
	if err != nil {
		return nil, err
	}
	capture, err := fullsys.New(gen, memspec.DefaultMachine(), opts)
	if err != nil {
		return nil, err
	}
	filtered, err := trace.Materialize(capture, 0)
	if err != nil {
		return nil, err
	}
	if capture.Err() != nil {
		return nil, fmt.Errorf("experiments: capture: %w", capture.Err())
	}
	if len(filtered) == 0 {
		return nil, fmt.Errorf("experiments: cache filtered the whole trace away")
	}

	// Size memory from the filtered trace's own footprint (it includes the
	// instruction pages and loses never-missing lines).
	st := trace.CollectStats(trace.NewSliceSource(filtered), cfg.Spec.Geometry.PageSizeBytes)
	dram, nvm := cfg.Sizing.Partition(st.FootprintPages())
	pol, err := core.New(dram, nvm, cfg.Core)
	if err != nil {
		return nil, err
	}
	// First pass warms memory, second is measured (the filtered stream has
	// no separate warmup phase).
	if _, err := sim.Run(trace.NewSliceSource(filtered), pol, cfg.Spec, sim.Options{}); err != nil {
		return nil, err
	}
	res, err := sim.Run(trace.NewSliceSource(filtered), pol, cfg.Spec, sim.Options{})
	if err != nil {
		return nil, err
	}
	rep, err := model.Evaluate(res, cfg.Spec)
	if err != nil {
		return nil, err
	}

	h := capture.Hierarchy()
	l1 := h.L1D(0).Stats
	for i := 1; i < memspec.DefaultMachine().Cores; i++ {
		s := h.L1D(i).Stats
		l1.Hits += s.Hits
		l1.Misses += s.Misses
	}
	return &FullSysResult{
		Workload:         name,
		Direct:           direct.Report(Proposed),
		Filtered:         rep,
		CPUAccesses:      capture.CPUAccesses,
		FilteredAccesses: int64(len(filtered)),
		L1DHitRatio:      l1.HitRatio(),
		LLCHitRatio:      h.LLC().Stats.HitRatio(),
	}, nil
}
