package experiments

import (
	"fmt"

	"hybridmem/internal/dramcache"
	"hybridmem/internal/model"
	"hybridmem/internal/policy"
	"hybridmem/internal/sim"
	"hybridmem/internal/trace"
	"hybridmem/internal/workload"
)

// ArchRow compares the two hybrid-memory architectures of Section III on one
// workload: exclusive migration (the proposed scheme) against DRAM-as-cache,
// with CLOCK-DWF and DRAM-only for reference. The paper's argument is that
// caching wins only while locality is high — the cache duplicates capacity
// and stops absorbing traffic when the hot set spreads.
type ArchRow struct {
	Workload string
	// Reports per architecture. Static is the no-migration first-touch
	// hybrid, which isolates what migration itself buys.
	Proposed, Cache, Static, DWF, DRAM *model.Report
	// CacheCleanDrops counts the cache architecture's free invalidations.
	CacheCleanDrops int64
}

// ArchComparison runs the comparison for one workload under the standard
// provisioning.
func ArchComparison(name string, cfg Config) (*ArchRow, error) {
	run, err := RunWorkload(name, cfg)
	if err != nil {
		return nil, err
	}
	spec, _ := workload.ByName(name)
	gen, err := workload.NewGenerator(spec, cfg.effectiveScale(spec), cfg.Seed)
	if err != nil {
		return nil, err
	}
	warm, err := trace.Materialize(gen.WarmupSource(cfg.Seed+1), 0)
	if err != nil {
		return nil, err
	}
	roi, err := trace.Materialize(gen, 0)
	if err != nil {
		return nil, err
	}
	dram, nvm := cfg.Sizing.Partition(gen.Pages())
	opts := sim.Options{CheckEvery: cfg.CheckEvery}

	evaluate := func(pol policy.Policy, label string) (*model.Report, *sim.Result, error) {
		if _, err := sim.Run(trace.NewSliceSource(warm), pol, cfg.Spec, opts); err != nil {
			return nil, nil, fmt.Errorf("experiments: %s warmup on %s: %w", label, name, err)
		}
		res, err := sim.Run(trace.NewSliceSource(roi), pol, cfg.Spec, opts)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: %s on %s: %w", label, name, err)
		}
		rep, err := model.Evaluate(res, cfg.Spec)
		if err != nil {
			return nil, nil, err
		}
		return rep, res, nil
	}

	// Same silicon budget as the migration architecture: the DRAM frames
	// become cache, the NVM frames are the sole main memory.
	cachePol, err := dramcache.New(dram, nvm, dramcache.DefaultConfig())
	if err != nil {
		return nil, err
	}
	cacheRep, cacheRes, err := evaluate(cachePol, "dram-cache")
	if err != nil {
		return nil, err
	}

	staticPol, err := policy.NewStaticPartition(dram, nvm)
	if err != nil {
		return nil, err
	}
	staticRep, _, err := evaluate(staticPol, "static-partition")
	if err != nil {
		return nil, err
	}

	return &ArchRow{
		Workload:        name,
		Proposed:        run.Report(Proposed),
		Cache:           cacheRep,
		Static:          staticRep,
		DWF:             run.Report(ClockDWF),
		DRAM:            run.Report(DRAMOnly),
		CacheCleanDrops: cacheRes.Counts.DemotionsClean,
	}, nil
}
