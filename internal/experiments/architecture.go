package experiments

import (
	"fmt"

	"hybridmem/internal/dramcache"
	"hybridmem/internal/model"
	"hybridmem/internal/policy"
	"hybridmem/internal/runner"
	"hybridmem/internal/sim"
	"hybridmem/internal/workload"
)

// ArchRow compares the two hybrid-memory architectures of Section III on one
// workload: exclusive migration (the proposed scheme) against DRAM-as-cache,
// with CLOCK-DWF and DRAM-only for reference. The paper's argument is that
// caching wins only while locality is high — the cache duplicates capacity
// and stops absorbing traffic when the hot set spreads.
type ArchRow struct {
	Workload string
	// Reports per architecture. Static is the no-migration first-touch
	// hybrid, which isolates what migration itself buys.
	Proposed, Cache, Static, DWF, DRAM *model.Report
	// CacheCleanDrops counts the cache architecture's free invalidations.
	CacheCleanDrops int64
}

// archJobs builds one workload's comparison set: the standard four
// policies plus the cache and static-partition architectures, six jobs
// replaying one cached trace.
func archJobs(name string, cfg Config, tr *runner.Traces) []runner.Job {
	opts := sim.Options{CheckEvery: cfg.CheckEvery}
	// Same silicon budget as the migration architecture: the DRAM frames
	// become cache, the NVM frames are the sole main memory.
	zoned := func(build func(dram, nvm int) (policy.Policy, error)) func() (policy.Policy, error) {
		return func() (policy.Policy, error) {
			_, _, pages, err := tr.Materialize()
			if err != nil {
				return nil, err
			}
			dram, nvm := cfg.Sizing.Partition(pages)
			return build(dram, nvm)
		}
	}
	return append(policyJobs(cfg, tr, name+"/"),
		runner.Job{
			ID: name + "/dram-cache", Seed: cfg.Seed, Trace: tr, Spec: cfg.Spec, Opts: opts,
			Build: zoned(func(dram, nvm int) (policy.Policy, error) {
				return dramcache.New(dram, nvm, dramcache.DefaultConfig())
			}),
		},
		runner.Job{
			ID: name + "/static-partition", Seed: cfg.Seed, Trace: tr, Spec: cfg.Spec, Opts: opts,
			Build: zoned(func(dram, nvm int) (policy.Policy, error) {
				return policy.NewStaticPartition(dram, nvm)
			}),
		})
}

// ArchComparison runs the comparison for one workload under the standard
// provisioning.
func ArchComparison(name string, cfg Config) (*ArchRow, error) {
	rows, err := ArchAll([]string{name}, cfg)
	if err != nil {
		return nil, err
	}
	return rows[0], nil
}

// ArchAll runs the architecture comparison for several workloads as one
// pool invocation, so trace generation and simulation overlap across
// workloads.
func ArchAll(names []string, cfg Config) ([]*ArchRow, error) {
	tc := cfg.traceCache()
	specs := make([]workload.Spec, len(names))
	trs := make([]*runner.Traces, len(names))
	var jobs []runner.Job
	for i, name := range names {
		spec, ok := workload.ByName(name)
		if !ok {
			return nil, errUnknownWorkload(name)
		}
		specs[i] = spec
		trs[i] = cfg.traces(tc, spec)
		jobs = append(jobs, archJobs(name, cfg, trs[i])...)
	}
	rs, err := cfg.pool().RunJobs(jobs)
	if err != nil {
		return nil, fmt.Errorf("experiments: architecture comparison: %w", err)
	}
	width := len(StandardPolicies()) + 2
	rows := make([]*ArchRow, len(names))
	for i, name := range names {
		slot := rs[i*width : (i+1)*width]
		run, err := assembleRun(specs[i], cfg, trs[i], slot[:len(StandardPolicies())])
		if err != nil {
			return nil, err
		}
		cacheRes, staticRes := slot[width-2], slot[width-1]
		rows[i] = &ArchRow{
			Workload:        name,
			Proposed:        run.Report(Proposed),
			Cache:           cacheRes.Report,
			Static:          staticRes.Report,
			DWF:             run.Report(ClockDWF),
			DRAM:            run.Report(DRAMOnly),
			CacheCleanDrops: cacheRes.Result.Counts.DemotionsClean,
		}
	}
	return rows, nil
}
