package experiments

import (
	"fmt"

	"hybridmem/internal/runner"
)

// This file maps evaluation outcomes onto the runner's stable artifact
// schema. Artifacts never include wall-clock values, so the same
// (scale, seed) produces byte-identical JSON at any -parallel width — the
// property CI uses to diff results run over run.

// newArtifact builds an artifact header carrying the configuration's
// provenance (scale, seed, adaptive variant).
func newArtifact(tool, kind string, cfg Config) *runner.Artifact {
	a := runner.NewArtifact(tool, kind, cfg.Scale, cfg.Seed)
	a.Adaptive = cfg.Adaptive
	return a
}

// gridResult flattens one (workload, policy) cell.
func gridResult(run *WorkloadRun, id PolicyID, seed int64, idPrefix string) runner.Result {
	return runner.Result{
		ID:        idPrefix + run.Workload.Name + "/" + string(id),
		Workload:  run.Workload.Name,
		Policy:    string(id),
		Seed:      seed,
		Pages:     run.Pages,
		DRAMPages: run.DRAMPages,
		NVMPages:  run.NVMPages,
		Metrics:   runner.MetricsFrom(run.Report(id)),
	}
}

// GridArtifact exports the full evaluation grid — every workload under
// every standard policy — as one artifact.
func GridArtifact(tool string, cfg Config, runs []*WorkloadRun) *runner.Artifact {
	a := newArtifact(tool, "grid", cfg)
	for _, run := range runs {
		for _, id := range StandardPolicies() {
			a.Add(gridResult(run, id, cfg.Seed, ""))
		}
	}
	return a
}

// ThresholdArtifact exports a threshold sweep: one result per pair, with
// the thresholds as params and the normalized headline ratios as values.
func ThresholdArtifact(tool, name string, cfg Config, points []ThresholdPoint) *runner.Artifact {
	a := newArtifact(tool, "threshold", cfg)
	for _, p := range points {
		a.Add(runner.Result{
			ID:       fmt.Sprintf("%s/thr%d-%d/proposed", name, p.ReadThreshold, p.WriteThreshold),
			Workload: name,
			Policy:   string(Proposed),
			Seed:     cfg.Seed,
			Params: map[string]float64{
				"read_threshold":  float64(p.ReadThreshold),
				"write_threshold": float64(p.WriteThreshold),
			},
			Metrics: runner.MetricsFrom(p.Proposed),
			Values: map[string]float64{
				"power_vs_dram_only":     p.PowerVsDRAM,
				"amat_vs_clock_dwf":      p.AMATVsDWF,
				"nvm_writes_vs_nvm_only": p.WritesVsNVMOnly,
				"promotions_per_access":  p.Proposed.Probabilities.PMigD,
			},
		})
	}
	return a
}

// DRAMArtifact exports a DRAM-share sweep.
func DRAMArtifact(tool, name string, cfg Config, points []DRAMPoint) *runner.Artifact {
	a := newArtifact(tool, "dram", cfg)
	for _, p := range points {
		for _, id := range StandardPolicies() {
			r := gridResult(p.Run, id, cfg.Seed, fmt.Sprintf("dram%g/", p.DRAMFraction))
			r.Params = map[string]float64{"dram_fraction": p.DRAMFraction}
			if id == Proposed {
				r.Values = map[string]float64{
					"power_vs_dram_only": p.PowerVsDRAM,
					"amat_vs_clock_dwf":  p.AMATVsDWF,
				}
			}
			a.Add(r)
		}
	}
	return a
}

// PageFactorArtifact exports an access-granularity sweep.
func PageFactorArtifact(tool, name string, cfg Config, points []PageFactorPoint) *runner.Artifact {
	a := newArtifact(tool, "pagefactor", cfg)
	for _, p := range points {
		for _, id := range StandardPolicies() {
			// Key by geometry, not PageFactor: distinct geometries can
			// share a page/line ratio and IDs must stay unique.
			r := gridResult(p.Run, id, cfg.Seed,
				fmt.Sprintf("pf%d-%d/", p.Geometry.PageSizeBytes, p.Geometry.LineSizeBytes))
			r.Params = map[string]float64{
				"page_size_bytes": float64(p.Geometry.PageSizeBytes),
				"line_size_bytes": float64(p.Geometry.LineSizeBytes),
				"page_factor":     float64(p.PageFactor),
			}
			if id == Proposed {
				r.Values = map[string]float64{
					"power_vs_dram_only": p.PowerVsDRAM,
					"amat_vs_clock_dwf":  p.AMATVsDWF,
				}
			}
			a.Add(r)
		}
	}
	return a
}

// AdaptiveArtifact exports the fixed-vs-adaptive threshold ablation.
func AdaptiveArtifact(tool, name string, cfg Config, cmp *AdaptiveComparison) *runner.Artifact {
	a := newArtifact(tool, "adaptive", cfg)
	a.Add(runner.Result{
		ID: name + "/fixed/proposed", Workload: name, Policy: string(Proposed),
		Seed: cfg.Seed, Metrics: runner.MetricsFrom(cmp.Fixed),
	})
	a.Add(runner.Result{
		ID: name + "/adaptive/proposed", Workload: name, Policy: string(Proposed),
		Seed: cfg.Seed, Metrics: runner.MetricsFrom(cmp.Adaptive),
		Values: map[string]float64{
			"final_read_threshold":  float64(cmp.FinalReadThreshold),
			"final_write_threshold": float64(cmp.FinalWriteThreshold),
		},
	})
	return a
}

// MixArtifact exports a consolidated-server mix run.
func MixArtifact(tool string, cfg Config, run *MixedRun) *runner.Artifact {
	a := newArtifact(tool, "mix", cfg)
	// RunMixed pins the adaptive variant off regardless of cfg.
	a.Adaptive = false
	for _, id := range StandardPolicies() {
		a.Add(runner.Result{
			ID:        run.Label() + "/" + string(id),
			Workload:  run.Label(),
			Policy:    string(id),
			Seed:      cfg.Seed,
			Pages:     run.Pages,
			DRAMPages: run.DRAMPages,
			NVMPages:  run.NVMPages,
			Metrics:   runner.MetricsFrom(run.Reports[id]),
		})
	}
	return a
}

// WearLevelArtifact exports Start-Gap ablation results (no model metrics —
// the interesting outputs are the endurance scalars).
func WearLevelArtifact(tool, name string, cfg Config, periods []int, results []*WearLevelResult) *runner.Artifact {
	a := newArtifact(tool, "wearlevel", cfg)
	for i, res := range results {
		a.Add(runner.Result{
			ID:       fmt.Sprintf("%s/startgap%d", name, periods[i]),
			Workload: name,
			Seed:     cfg.Seed,
			Params:   map[string]float64{"period_lines": float64(periods[i])},
			Values: map[string]float64{
				"plain_imbalance":     res.PlainImbalance,
				"leveled_imbalance":   res.LeveledImbalance,
				"plain_worst_years":   res.PlainWorstYears,
				"leveled_worst_years": res.LeveledWorstYears,
				"gap_moves":           float64(res.GapMoves),
			},
		})
	}
	return a
}

// SeedsArtifact exports a seed-sensitivity study.
func SeedsArtifact(tool string, cfg Config, seeds []int64, study *SeedStudy) *runner.Artifact {
	a := newArtifact(tool, "seeds", cfg)
	add := func(metric string, m MetricSummary) {
		a.Add(runner.Result{
			ID:     "seeds/" + metric,
			Seed:   cfg.Seed,
			Params: map[string]float64{"seeds": float64(len(seeds))},
			Values: map[string]float64{
				"mean": m.Mean, "stddev": m.StdDev, "min": m.Min, "max": m.Max,
			},
		})
	}
	add("power_vs_dram_only", study.PowerVsDRAM)
	add("amat_vs_clock_dwf", study.AMATVsDWF)
	add("nvm_writes_vs_nvm_only", study.WritesVsNVMOnly)
	return a
}
