package experiments

import (
	"fmt"

	"hybridmem/internal/stats"
)

// SeedStudy quantifies how sensitive the headline metrics are to the random
// seed of trace generation: the paper reports single runs; this study backs
// the reproduction's numbers with across-seed statistics.
type SeedStudy struct {
	Seeds int
	// Each metric summarizes one headline ratio across seeds.
	PowerVsDRAM     MetricSummary
	AMATVsDWF       MetricSummary
	WritesVsNVMOnly MetricSummary
}

// MetricSummary is mean +/- population standard deviation across seeds.
type MetricSummary struct {
	Mean, StdDev, Min, Max float64
}

func summarize(xs []float64) MetricSummary {
	var s stats.Summary
	for _, x := range xs {
		s.Add(x)
	}
	return MetricSummary{Mean: s.Mean(), StdDev: s.StdDev(), Min: s.Min(), Max: s.Max()}
}

// String renders the summary as "mean ± stddev [min, max]".
func (m MetricSummary) String() string {
	return fmt.Sprintf("%.3f ± %.3f [%.3f, %.3f]", m.Mean, m.StdDev, m.Min, m.Max)
}

// RunSeeds evaluates the full workload set across several seeds and returns
// the distribution of the geometric-mean headline metrics.
func RunSeeds(cfg Config, seeds []int64) (*SeedStudy, error) {
	if len(seeds) < 2 {
		return nil, fmt.Errorf("experiments: seed study needs >= 2 seeds")
	}
	var power, amat, writes []float64
	for _, seed := range seeds {
		c := cfg
		c.Seed = seed
		// A private cache per seed: each seed's traces are distinct, and
		// dropping the cache between seeds keeps the study's footprint at
		// one grid's worth of materialized traces.
		c.Cache = nil
		runs, err := RunAll(c)
		if err != nil {
			return nil, fmt.Errorf("experiments: seed %d: %w", seed, err)
		}
		var pr, ar, wr []float64
		for _, r := range runs {
			prop := r.Report(Proposed)
			dram := r.Report(DRAMOnly)
			dwf := r.Report(ClockDWF)
			nvm := r.Report(NVMOnly)
			pr = append(pr, prop.APPR.Total()/dram.APPR.Total())
			dwfAMAT := dwf.AMAT.HitDRAM + dwf.AMAT.HitNVM + dwf.AMAT.Migrations()
			propAMAT := prop.AMAT.HitDRAM + prop.AMAT.HitNVM + prop.AMAT.Migrations()
			ar = append(ar, propAMAT/dwfAMAT)
			if w := nvm.NVMWrites.Total(); w > 0 {
				wr = append(wr, float64(prop.NVMWrites.Total())/float64(w))
			}
		}
		p, err := stats.GeoMean(pr)
		if err != nil {
			return nil, err
		}
		a, err := stats.GeoMean(ar)
		if err != nil {
			return nil, err
		}
		w, err := stats.GeoMean(wr)
		if err != nil {
			return nil, err
		}
		power = append(power, p)
		amat = append(amat, a)
		writes = append(writes, w)
	}
	return &SeedStudy{
		Seeds:           len(seeds),
		PowerVsDRAM:     summarize(power),
		AMATVsDWF:       summarize(amat),
		WritesVsNVMOnly: summarize(writes),
	}, nil
}
