package experiments

import (
	"bytes"
	"testing"

	"hybridmem/internal/runner"
	"hybridmem/internal/workload"
)

// TestGridArtifactParallelInvariance is the acceptance criterion end to
// end: the same seed produces byte-identical JSON artifacts at any
// -parallel width.
func TestGridArtifactParallelInvariance(t *testing.T) {
	encode := func(parallel int) []byte {
		cfg := testConfig()
		cfg.Parallel = parallel
		runs, err := RunAll(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := GridArtifact("figures", cfg, runs).Encode()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	serial := encode(1)
	if par := encode(8); !bytes.Equal(serial, par) {
		t.Error("grid artifact differs between -parallel 1 and -parallel 8")
	}
}

func TestThresholdArtifactParallelInvariance(t *testing.T) {
	pairs := [][2]int{{4, 6}, {96, 128}}
	encode := func(parallel int) []byte {
		cfg := testConfig()
		cfg.Parallel = parallel
		points, err := ThresholdSweep("bodytrack", cfg, pairs)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ThresholdArtifact("sweep", "bodytrack", cfg, points).Encode()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if !bytes.Equal(encode(1), encode(4)) {
		t.Error("threshold artifact differs between -parallel 1 and -parallel 4")
	}
}

// TestSharedCacheGeneratesOncePerSpec checks the trace-cache contract at
// the harness level: a grid plus a characterization pass over the same
// cache generate each workload exactly once.
func TestSharedCacheGeneratesOncePerSpec(t *testing.T) {
	cfg := testConfig()
	cfg.Cache = runner.NewTraceCache()
	if _, err := RunAll(cfg); err != nil {
		t.Fatal(err)
	}
	n := int64(len(workload.Names()))
	if got := cfg.Cache.Generations(); got != n {
		t.Fatalf("grid generated %d traces, want %d", got, n)
	}
	// Table III characterization and the replacement study replay the
	// cached traces instead of regenerating.
	if _, err := Table3Measure(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := ReplacementAll(cfg); err != nil {
		t.Fatal(err)
	}
	if got := cfg.Cache.Generations(); got != n {
		t.Errorf("after table3+replacement: %d generations, want still %d", got, n)
	}
}

// TestThresholdSweepSharesBaselines checks that a sweep's trace is
// generated once regardless of the number of points.
func TestThresholdSweepTraceReuse(t *testing.T) {
	cfg := testConfig()
	cfg.Cache = runner.NewTraceCache()
	if _, err := ThresholdSweep("bodytrack", cfg, DefaultThresholdPairs()); err != nil {
		t.Fatal(err)
	}
	if got := cfg.Cache.Generations(); got != 1 {
		t.Errorf("8-point sweep generated %d traces, want 1", got)
	}
}

func TestRunSeedsWithDerivedSeeds(t *testing.T) {
	cfg := testConfig()
	seeds := []int64{
		runner.DeriveSeed(cfg.Seed, "seed-study/0"),
		runner.DeriveSeed(cfg.Seed, "seed-study/1"),
	}
	study, err := RunSeeds(cfg, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if study.Seeds != 2 {
		t.Errorf("study.Seeds = %d", study.Seeds)
	}
	if study.AMATVsDWF.Mean <= 0 || study.PowerVsDRAM.Mean <= 0 {
		t.Errorf("implausible means: %+v", study)
	}
}
