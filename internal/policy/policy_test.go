package policy

import (
	"math/rand"
	"testing"

	"hybridmem/internal/mm"
	"hybridmem/internal/trace"
)

func TestNewValidation(t *testing.T) {
	if _, err := NewDRAMOnly(0); err == nil {
		t.Error("0-frame DRAM-only should error")
	}
	if _, err := NewNVMOnly(-1); err == nil {
		t.Error("negative NVM-only should error")
	}
}

func TestDRAMOnlyHitAndFault(t *testing.T) {
	p, err := NewDRAMOnly(2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "dram-only" {
		t.Errorf("name = %q", p.Name())
	}
	res, err := p.Access(1, trace.OpRead)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fault || res.ServedFrom != mm.LocDRAM {
		t.Errorf("first access: %+v", res)
	}
	if len(res.Moves) != 1 || res.Moves[0].Reason != ReasonFault ||
		res.Moves[0].From != mm.LocDisk || res.Moves[0].To != mm.LocDRAM {
		t.Errorf("fault moves = %v", res.Moves)
	}
	res, _ = p.Access(1, trace.OpWrite)
	if res.Fault || len(res.Moves) != 0 {
		t.Errorf("hit should have no moves: %+v", res)
	}
}

func TestDRAMOnlyLRUEviction(t *testing.T) {
	p, _ := NewDRAMOnly(2)
	p.Access(1, trace.OpRead)
	p.Access(2, trace.OpRead)
	p.Access(1, trace.OpRead) // 1 is MRU now
	res, _ := p.Access(3, trace.OpRead)
	if len(res.Moves) != 2 {
		t.Fatalf("moves = %v", res.Moves)
	}
	if res.Moves[0].Reason != ReasonEvict || res.Moves[0].Page != 2 {
		t.Errorf("evicted %v, want page 2", res.Moves[0])
	}
	if res.Moves[1].Reason != ReasonFault || res.Moves[1].Page != 3 {
		t.Errorf("fault move %v", res.Moves[1])
	}
	// Page 2 must fault again.
	res, _ = p.Access(2, trace.OpRead)
	if !res.Fault {
		t.Error("evicted page should fault")
	}
}

func TestNVMOnlyServesFromNVM(t *testing.T) {
	p, err := NewNVMOnly(1)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := p.Access(7, trace.OpWrite)
	if res.ServedFrom != mm.LocNVM || !res.Fault {
		t.Errorf("%+v", res)
	}
	if p.System().Loc(7) != mm.LocNVM {
		t.Error("page not in NVM")
	}
	res, _ = p.Access(8, trace.OpRead)
	if res.Moves[0].From != mm.LocNVM || res.Moves[0].To != mm.LocDisk {
		t.Errorf("eviction edge wrong: %v", res.Moves[0])
	}
}

func TestReasonString(t *testing.T) {
	for r, want := range map[Reason]string{
		ReasonFault: "fault", ReasonPromotion: "promotion",
		ReasonDemoteFault: "demote-fault", ReasonDemotePromo: "demote-promotion",
		ReasonEvict: "evict", Reason(42): "reason(42)",
	} {
		if r.String() != want {
			t.Errorf("Reason(%d) = %q, want %q", r, r, want)
		}
	}
}

// TestSingleZoneMatchesMM drives a random workload and cross-checks the LRU
// list against the physical memory map plus basic conservation properties.
func TestSingleZoneMatchesMM(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p, _ := NewDRAMOnly(16)
	faults := 0
	for i := 0; i < 5000; i++ {
		page := uint64(rng.Intn(64))
		res, err := p.Access(page, trace.Op(rng.Intn(2)))
		if err != nil {
			t.Fatal(err)
		}
		if res.Fault {
			faults++
		}
		if got := p.System().Loc(page); got != mm.LocDRAM {
			t.Fatalf("accessed page %d at %v", page, got)
		}
		if err := p.System().CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if r := p.System().Residents(mm.LocDRAM); r > 16 {
			t.Fatalf("over capacity: %d", r)
		}
	}
	if faults < 64 {
		t.Errorf("faults = %d, want at least one per distinct page", faults)
	}
}
