package policy

import (
	"math/rand"
	"testing"

	"hybridmem/internal/mm"
	"hybridmem/internal/trace"
)

func TestStaticPartitionValidation(t *testing.T) {
	if _, err := NewStaticPartition(0, 4); err == nil {
		t.Error("zero DRAM should error")
	}
	if _, err := NewStaticPartition(4, 0); err == nil {
		t.Error("zero NVM should error")
	}
}

func TestStaticPartitionFirstTouch(t *testing.T) {
	p, err := NewStaticPartition(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	// First two faults fill DRAM, the next three fill NVM.
	for i := uint64(1); i <= 5; i++ {
		res, err := p.Access(i, trace.OpRead)
		if err != nil {
			t.Fatal(err)
		}
		want := mm.LocDRAM
		if i > 2 {
			want = mm.LocNVM
		}
		if res.ServedFrom != want {
			t.Errorf("page %d placed in %v, want %v", i, res.ServedFrom, want)
		}
	}
	// No page ever migrates: hit page 3 (NVM) with writes, stays in NVM.
	for i := 0; i < 200; i++ {
		res, _ := p.Access(3, trace.OpWrite)
		if res.ServedFrom != mm.LocNVM || len(res.Moves) != 0 {
			t.Fatalf("static partition migrated: %+v", res)
		}
	}
}

func TestStaticPartitionEvictsWithinNVM(t *testing.T) {
	p, _ := NewStaticPartition(1, 2)
	p.Access(1, trace.OpRead) // DRAM
	p.Access(2, trace.OpRead) // NVM
	p.Access(3, trace.OpRead) // NVM
	res, _ := p.Access(4, trace.OpRead)
	if len(res.Moves) != 2 || res.Moves[0].Reason != ReasonEvict || res.Moves[0].Page != 2 {
		t.Errorf("moves = %v", res.Moves)
	}
	// The DRAM page is never displaced by NVM pressure.
	if p.sys.Loc(1) != mm.LocDRAM {
		t.Error("DRAM resident displaced")
	}
}

func TestStaticPartitionInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	p, _ := NewStaticPartition(8, 24)
	for i := 0; i < 10000; i++ {
		page := uint64(rng.Intn(60))
		if _, err := p.Access(page, trace.Op(rng.Intn(2))); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if i%1000 == 0 {
			if err := p.System().CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
	}
	if got := p.System().Residents(mm.LocDRAM); got != 8 {
		t.Errorf("DRAM residents = %d, want full 8", got)
	}
}
