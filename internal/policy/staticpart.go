package policy

import (
	"fmt"

	"hybridmem/internal/lru"
	"hybridmem/internal/mm"
	"hybridmem/internal/trace"
)

// StaticPartition is the no-migration hybrid baseline: pages are assigned a
// zone on first touch (DRAM while it has free frames, NVM afterwards) and
// never move between memories. Comparing it against the proposed scheme
// isolates exactly what migration buys — the paper's whole premise is that
// *which* pages sit in DRAM matters, and this baseline gets the same silicon
// without any placement intelligence.
//
// First-touch is ordering-sensitive by nature: whatever faults first owns
// DRAM forever. Under the experiments' warmup (which touches cold archive
// pages first) that pins *cold* data in DRAM — an extreme but honest
// illustration of why static placement fails and migration is needed.
type StaticPartition struct {
	dram  *lru.List[struct{}]
	nvm   *lru.List[struct{}]
	sys   *mm.System
	moves []Move
}

var _ Policy = (*StaticPartition)(nil)

// NewStaticPartition returns a first-touch split hybrid memory.
func NewStaticPartition(dramFrames, nvmFrames int) (*StaticPartition, error) {
	if dramFrames < 1 || nvmFrames < 1 {
		return nil, fmt.Errorf("policy: static partition needs both zones, got %d/%d",
			dramFrames, nvmFrames)
	}
	sys, err := mm.NewSystem(dramFrames, nvmFrames)
	if err != nil {
		return nil, err
	}
	return &StaticPartition{
		dram: lru.New[struct{}](),
		nvm:  lru.New[struct{}](),
		sys:  sys,
	}, nil
}

// Name implements Policy.
func (p *StaticPartition) Name() string { return "static-partition" }

// System implements Policy.
func (p *StaticPartition) System() *mm.System { return p.sys }

// Access implements Policy. Hits stay where they are; faults fill DRAM
// first, then NVM, evicting within the chosen zone thereafter (each zone is
// its own LRU domain, like a hard NUMA binding).
func (p *StaticPartition) Access(page uint64, op trace.Op) (Result, error) {
	p.moves = p.moves[:0]
	if _, ok := p.dram.Touch(page); ok {
		return Result{ServedFrom: mm.LocDRAM}, nil
	}
	if _, ok := p.nvm.Touch(page); ok {
		return Result{ServedFrom: mm.LocNVM}, nil
	}
	// First-touch placement: DRAM while it has room, else NVM; once both
	// are full, faults refill the NVM side (the larger, default zone).
	loc := mm.LocDRAM
	list := p.dram
	if p.dram.Len() == p.sys.Cap(mm.LocDRAM) {
		loc = mm.LocNVM
		list = p.nvm
		if p.nvm.Len() == p.sys.Cap(mm.LocNVM) {
			victim, _, _ := p.nvm.RemoveBack()
			if err := p.sys.EvictToDisk(victim); err != nil {
				return Result{}, err
			}
			p.moves = append(p.moves, Move{
				Page: victim, From: mm.LocNVM, To: mm.LocDisk, Reason: ReasonEvict})
		}
	}
	if _, err := p.sys.Place(page, loc); err != nil {
		return Result{}, err
	}
	if err := list.PushFront(page, struct{}{}); err != nil {
		return Result{}, err
	}
	p.moves = append(p.moves, Move{Page: page, From: mm.LocDisk, To: loc, Reason: ReasonFault})
	return Result{ServedFrom: loc, Fault: true, Moves: p.moves}, nil
}
