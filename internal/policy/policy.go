// Package policy defines the interface every hybrid-memory management
// algorithm implements, the page-movement event vocabulary the simulator
// accounts costs from, and the two single-technology baselines the paper
// normalizes against: a DRAM-only and an NVM-only main memory under LRU.
package policy

import (
	"fmt"

	"hybridmem/internal/lru"
	"hybridmem/internal/mm"
	"hybridmem/internal/trace"
)

// Reason classifies why a page moved.
type Reason uint8

// Movement reasons. The figures aggregate them by edge: disk->memory moves
// are page-fault loads, NVM->DRAM moves are promotions (the paper's "NVM to
// DRAM migration", PMigD), DRAM->NVM moves are demotions (PMigN) split by
// what forced them, and memory->disk moves are evictions.
const (
	// ReasonFault is a demand load from disk into a memory zone.
	ReasonFault Reason = iota
	// ReasonPromotion is an NVM->DRAM migration of a hot page.
	ReasonPromotion
	// ReasonDemoteFault is a DRAM->NVM demotion making room for a fault.
	ReasonDemoteFault
	// ReasonDemotePromo is a DRAM->NVM demotion making room for a promotion.
	ReasonDemotePromo
	// ReasonEvict is a memory->disk eviction.
	ReasonEvict
	// ReasonDemoteClean is a free DRAM->NVM "move": a clean DRAM-cache copy
	// is invalidated while the NVM backing copy is still valid, so no data
	// transfer happens (used by the DRAM-as-cache architecture baseline).
	ReasonDemoteClean
)

// String names the reason for reports.
func (r Reason) String() string {
	switch r {
	case ReasonFault:
		return "fault"
	case ReasonPromotion:
		return "promotion"
	case ReasonDemoteFault:
		return "demote-fault"
	case ReasonDemotePromo:
		return "demote-promotion"
	case ReasonEvict:
		return "evict"
	case ReasonDemoteClean:
		return "demote-clean"
	default:
		return fmt.Sprintf("reason(%d)", uint8(r))
	}
}

// Move is one whole-page movement triggered by an access.
type Move struct {
	Page     uint64
	From, To mm.Location
	Reason   Reason
}

// Result reports everything one access caused. The Moves slice is owned by
// the policy and only valid until the next Access call.
type Result struct {
	// ServedFrom is the zone that serviced the request. For a faulting
	// access it is the zone the page was loaded into.
	ServedFrom mm.Location
	// Fault reports that the page was not resident and was loaded from disk.
	Fault bool
	// Moves lists the page movements in the order they happened.
	Moves []Move
}

// Policy is a hybrid-memory page placement and migration algorithm.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Access services one line-sized access to the given data page.
	Access(page uint64, op trace.Op) (Result, error)
	// System exposes the underlying physical memory for invariant checks
	// and wear statistics.
	System() *mm.System
}

// singleZone is the shared implementation of the DRAM-only and NVM-only
// baselines: a plain LRU over one memory zone, evicting to disk.
type singleZone struct {
	name  string
	loc   mm.Location
	list  *lru.List[struct{}]
	sys   *mm.System
	moves []Move
}

func newSingleZone(name string, loc mm.Location, frames int) (*singleZone, error) {
	if frames < 1 {
		return nil, fmt.Errorf("policy: %s needs at least 1 frame, got %d", name, frames)
	}
	var sys *mm.System
	var err error
	if loc == mm.LocDRAM {
		sys, err = mm.NewSystem(frames, 0)
	} else {
		sys, err = mm.NewSystem(0, frames)
	}
	if err != nil {
		return nil, err
	}
	return &singleZone{name: name, loc: loc, list: lru.New[struct{}](), sys: sys}, nil
}

// Name implements Policy.
func (p *singleZone) Name() string { return p.name }

// System implements Policy.
func (p *singleZone) System() *mm.System { return p.sys }

// Access implements Policy.
func (p *singleZone) Access(page uint64, op trace.Op) (Result, error) {
	p.moves = p.moves[:0]
	if _, ok := p.list.Touch(page); ok {
		return Result{ServedFrom: p.loc}, nil
	}
	// Page fault. Evict the LRU page if the zone is full.
	if p.list.Len() == p.sys.Cap(p.loc) {
		victim, _, _ := p.list.RemoveBack()
		if err := p.sys.EvictToDisk(victim); err != nil {
			return Result{}, fmt.Errorf("policy %s: %w", p.name, err)
		}
		p.moves = append(p.moves, Move{Page: victim, From: p.loc, To: mm.LocDisk, Reason: ReasonEvict})
	}
	if _, err := p.sys.Place(page, p.loc); err != nil {
		return Result{}, fmt.Errorf("policy %s: %w", p.name, err)
	}
	if err := p.list.PushFront(page, struct{}{}); err != nil {
		return Result{}, fmt.Errorf("policy %s: %w", p.name, err)
	}
	p.moves = append(p.moves, Move{Page: page, From: mm.LocDisk, To: p.loc, Reason: ReasonFault})
	return Result{ServedFrom: p.loc, Fault: true, Moves: p.moves}, nil
}

// DRAMOnly is the paper's DRAM-only main memory under LRU (the power and
// AMAT normalization baseline).
type DRAMOnly struct{ singleZone }

// NewDRAMOnly returns a DRAM-only LRU memory with the given frame count.
func NewDRAMOnly(frames int) (*DRAMOnly, error) {
	s, err := newSingleZone("dram-only", mm.LocDRAM, frames)
	if err != nil {
		return nil, err
	}
	return &DRAMOnly{singleZone: *s}, nil
}

// NVMOnly is the paper's NVM-only main memory under LRU (the endurance
// normalization baseline).
type NVMOnly struct{ singleZone }

// NewNVMOnly returns an NVM-only LRU memory with the given frame count.
func NewNVMOnly(frames int) (*NVMOnly, error) {
	s, err := newSingleZone("nvm-only", mm.LocNVM, frames)
	if err != nil {
		return nil, err
	}
	return &NVMOnly{singleZone: *s}, nil
}
