package server

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"hybridmem/internal/mm"
	"hybridmem/internal/tiered"
	"hybridmem/internal/trace"
)

// conn is one client connection: its socket, its tenant binding, its LRU
// links (guarded by the connMap mutex) and its reusable parse/reply
// buffers. A connection is owned by exactly one handler goroutine; only
// kick (eviction, reaping) and Shutdown touch it from outside, and they
// touch only the net.Conn, which is safe for concurrent use.
type conn struct {
	id uint64
	nc connNet

	// tenant is the namespace this connection serves; AUTH rebinds it.
	tenant tiered.TenantID
	authed bool

	// lastActive and the list links are guarded by the connMap mutex.
	lastActive time.Time
	prev, next *conn

	// rbuf[rpos:rend] is the unparsed read data; args and out are the
	// reused parse and reply buffers. All owned by the handler goroutine.
	rbuf       []byte
	rpos, rend int
	args       [][]byte
	out        []byte

	// runAddrs/runOps stage the pending run of consecutive GET/SET
	// commands process groups into one engine batch call; runRes receives
	// the batch results. Reused across batches, owned by the handler
	// goroutine, always empty between process calls.
	runAddrs []uint64
	runOps   []trace.Op
	runRes   []tiered.ServeResult
}

// connNet is the slice of net.Conn the server uses (a seam for tests).
type connNet interface {
	Read(b []byte) (int, error)
	Write(b []byte) (int, error)
	Close() error
	SetReadDeadline(t time.Time) error
	SetWriteDeadline(t time.Time) error
}

// kick closes a connection from outside its handler (LRU eviction, idle
// reap), best-effort telling the client why first.
func (c *conn) kick(msg string) {
	c.nc.SetWriteDeadline(time.Now().Add(100 * time.Millisecond))
	c.nc.Write([]byte("-" + msg + "\r\n"))
	c.nc.Close()
}

// Static replies, preassembled as complete RESP frames so the data-path
// commands emit them with one append and no formatting.
var (
	replyDRAM = []byte("$4\r\nDRAM\r\n")
	replyNVM  = []byte("$3\r\nNVM\r\n")
	replyOK   = []byte("+OK\r\n")
)

// drainReadGrace is the one extra read window a draining connection
// gets: long enough for bytes the client sent before the drain to cross
// the wire, short enough not to stall Shutdown.
const drainReadGrace = 50 * time.Millisecond

// handle is a connection's goroutine: read a batch, parse and dispatch
// every complete command in it, reply in one write. It exits on client
// close, protocol error, eviction, or shutdown. A shutdown interrupts
// the pending read by expiring the deadline; commands the client sent
// before the drain may still sit in the kernel buffer at that moment, so
// the handler takes one short grace pass to answer them before exiting —
// the drain loses nothing that was already on the wire.
func (s *Server) handle(c *conn) {
	defer func() {
		s.cm.remove(c)
		c.nc.Close()
		s.active.Add(-1)
		s.connWG.Done()
	}()
	graced := false
	for {
		if err := c.ensureSpace(s.cfg.ReadBuffer); err != nil {
			s.protocolErrors.Add(1)
			c.out = appendError(c.out, "ERR "+err.Error())
			c.flush()
			return
		}
		n, err := c.nc.Read(c.rbuf[c.rend:])
		if n > 0 {
			c.rend += n
			t0 := time.Now()
			fatal := s.process(c)
			s.batchDur.Observe(time.Since(t0).Nanoseconds())
			if len(c.out) > 0 {
				if c.flush() != nil {
					return
				}
			}
			s.cm.touch(c, time.Now())
			if fatal {
				return
			}
		}
		if err != nil {
			if !graced && s.state.Load() == srvDraining && isTimeout(err) {
				graced = true
				c.nc.SetReadDeadline(time.Now().Add(drainReadGrace))
				continue
			}
			return
		}
	}
}

// isTimeout reports whether a read error is a deadline expiry (the
// drain's interrupt) rather than a closed or broken connection.
func isTimeout(err error) bool {
	var t interface{ Timeout() bool }
	return errors.As(err, &t) && t.Timeout()
}

// flush writes the accumulated replies in one syscall.
func (c *conn) flush() error {
	_, err := c.nc.Write(c.out)
	c.out = c.out[:0]
	return err
}

// ensureSpace makes room for the next read: compact the buffer when the
// parsed prefix can be dropped, grow it (up to the per-connection cap)
// when a single frame outgrows it.
func (c *conn) ensureSpace(min int) error {
	if c.rpos == c.rend {
		c.rpos, c.rend = 0, 0
	}
	if len(c.rbuf)-c.rend >= min {
		return nil
	}
	if c.rpos > 0 {
		c.rend = copy(c.rbuf, c.rbuf[c.rpos:c.rend])
		c.rpos = 0
	}
	for len(c.rbuf)-c.rend < min {
		if len(c.rbuf)*2 > maxConnBuffer {
			return errOversized
		}
		grown := make([]byte, len(c.rbuf)*2)
		c.rend = copy(grown, c.rbuf[c.rpos:c.rend])
		c.rpos = 0
		c.rbuf = grown
	}
	return nil
}

// maxRun caps the pending GET/SET run so a deeply pipelined connection's
// staging slices stay modest; a full run flushes and grouping continues.
const maxRun = 512

// process parses and dispatches every complete command buffered on c,
// appending replies to c.out. Consecutive well-formed GET/SET commands
// are grouped into runs and served through the engine's batch API — the
// per-command replies are still emitted in command order, so the wire
// protocol is byte-identical to one-at-a-time dispatch. Any other command
// (or a malformed GET/SET) flushes the pending run first, then dispatches
// normally. It reports whether the connection must close after the flush
// (QUIT, protocol error, engine shutdown).
func (s *Server) process(c *conn) (fatal bool) {
	batch := int64(0)
	canBatch := (!s.cfg.RequireAuth || c.authed) && !s.loading()
	for {
		args, n, err := parseCommand(c.rbuf[c.rpos:c.rend], c.args)
		c.args = args[:0]
		if err == errIncomplete {
			break
		}
		if err != nil {
			if s.flushRun(c) {
				fatal = true
				break
			}
			s.protocolErrors.Add(1)
			c.out = appendError(c.out, "ERR "+err.Error())
			fatal = true
			break
		}
		c.rpos += n
		if len(args) == 0 {
			continue
		}
		batch++
		if canBatch {
			// Stage well-formed data commands instead of dispatching.
			if cmdIs(args[0], "GET") && len(args) == 2 {
				s.cmds.get.Inc(c.id)
				c.runAddrs = append(c.runAddrs, keyAddr(args[1]))
				c.runOps = append(c.runOps, trace.OpRead)
				if len(c.runAddrs) >= maxRun && s.flushRun(c) {
					fatal = true
					break
				}
				continue
			}
			if cmdIs(args[0], "SET") && len(args) >= 3 {
				s.cmds.set.Inc(c.id)
				c.runAddrs = append(c.runAddrs, keyAddr(args[1]))
				c.runOps = append(c.runOps, trace.OpWrite)
				if len(c.runAddrs) >= maxRun && s.flushRun(c) {
					fatal = true
					break
				}
				continue
			}
		}
		if s.flushRun(c) {
			fatal = true
			break
		}
		if s.dispatch(c, args) {
			fatal = true
			break
		}
		// AUTH may have just bound a tenant; runs never span the rebind.
		canBatch = (!s.cfg.RequireAuth || c.authed) && !s.loading()
	}
	if !fatal && s.flushRun(c) {
		fatal = true
	}
	s.commands.Add(batch)
	if batch > 1 {
		s.pipelined.Add(batch - 1)
	}
	return fatal
}

// flushRun serves the pending GET/SET run through the engine batch API
// and emits the per-command replies in order. If the batch call cannot
// complete (lifecycle, out-of-range address, synchronous engine), the
// unserved tail falls back to one-at-a-time serves so every command still
// gets exactly the reply it would have gotten unbatched. Reports whether
// the connection must close.
func (s *Server) flushRun(c *conn) (closeAfter bool) {
	n := len(c.runAddrs)
	if n == 0 {
		return false
	}
	if cap(c.runRes) < n {
		c.runRes = make([]tiered.ServeResult, n)
	}
	c.runRes = c.runRes[:n]
	done, err := s.engine.ServeTenantBatch(c.tenant, c.runAddrs, c.runOps, c.runRes)
	s.batchedOps.Add(int64(done))
	for i := 0; i < done; i++ {
		if c.runOps[i] == trace.OpRead {
			if c.runRes[i].ServedFrom == mm.LocDRAM {
				c.out = append(c.out, replyDRAM...)
			} else {
				c.out = append(c.out, replyNVM...)
			}
		} else {
			c.out = append(c.out, replyOK...)
		}
	}
	if err != nil {
		for i := done; i < n; i++ {
			if s.accessAddr(c, c.runAddrs[i], c.runOps[i]) {
				closeAfter = true
				break
			}
		}
	}
	c.runAddrs = c.runAddrs[:0]
	c.runOps = c.runOps[:0]
	return closeAfter
}

// cmdIs reports whether b spells s (ASCII case-insensitive, s uppercase).
func cmdIs(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(b); i++ {
		ch := b[i]
		if ch >= 'a' && ch <= 'z' {
			ch -= 'a' - 'A'
		}
		if ch != s[i] {
			return false
		}
	}
	return true
}

// dispatch executes one command, appending its reply to c.out. It reports
// whether the connection must close (QUIT, engine stopped).
func (s *Server) dispatch(c *conn, args [][]byte) (closeAfter bool) {
	cmd := args[0]
	switch {
	case cmdIs(cmd, "GET"):
		s.cmds.get.Inc(c.id)
		if len(args) != 2 {
			c.out = appendError(c.out, "ERR wrong number of arguments for 'get' command")
			return false
		}
		return s.access(c, args[1], trace.OpRead)
	case cmdIs(cmd, "SET"):
		s.cmds.set.Inc(c.id)
		// Extra arguments (value options like EX) are accepted and
		// ignored: the engine records the access, not the payload.
		if len(args) < 3 {
			c.out = appendError(c.out, "ERR wrong number of arguments for 'set' command")
			return false
		}
		return s.access(c, args[1], trace.OpWrite)
	case cmdIs(cmd, "DEL"):
		s.cmds.del.Inc(c.id)
		if len(args) < 2 {
			c.out = appendError(c.out, "ERR wrong number of arguments for 'del' command")
			return false
		}
		if s.needAuth(c) || s.rejectLoading(c) {
			return false
		}
		removed := int64(0)
		for _, key := range args[1:] {
			ok, err := s.engine.Drop(c.tenant, keyAddr(key))
			if err != nil {
				c.out = appendError(c.out, "ERR "+err.Error())
				return errors.Is(err, tiered.ErrStopped) || errors.Is(err, tiered.ErrNotStarted)
			}
			if ok {
				removed++
			}
		}
		c.out = appendInt(c.out, removed)
		return false
	case cmdIs(cmd, "AUTH"):
		s.cmds.auth.Inc(c.id)
		return s.auth(c, args)
	case cmdIs(cmd, "PING"):
		s.cmds.ping.Inc(c.id)
		if len(args) > 1 {
			c.out = appendBulkBytes(c.out, args[1])
		} else {
			c.out = appendSimple(c.out, "PONG")
		}
		return false
	case cmdIs(cmd, "ECHO"):
		s.cmds.other.Inc(c.id)
		if len(args) != 2 {
			c.out = appendError(c.out, "ERR wrong number of arguments for 'echo' command")
			return false
		}
		c.out = appendBulkBytes(c.out, args[1])
		return false
	case cmdIs(cmd, "INFO"):
		s.cmds.info.Inc(c.id)
		c.out = appendBulkString(c.out, s.info())
		return false
	case cmdIs(cmd, "STATS"):
		s.cmds.stats.Inc(c.id)
		if s.needAuth(c) || s.rejectLoading(c) {
			return false
		}
		c.out = s.statsReply(c.out, c.tenant)
		return false
	case cmdIs(cmd, "SELECT"), cmdIs(cmd, "CLIENT"):
		// Database selection and client options have no meaning here;
		// accepted so redis-benchmark and friends can run unmodified.
		s.cmds.other.Inc(c.id)
		c.out = appendSimple(c.out, "OK")
		return false
	case cmdIs(cmd, "COMMAND"):
		// redis-cli probes COMMAND DOCS on startup; an empty array keeps
		// it happy without implementing introspection.
		s.cmds.other.Inc(c.id)
		c.out = appendArrayHeader(c.out, 0)
		return false
	case cmdIs(cmd, "QUIT"):
		s.cmds.other.Inc(c.id)
		c.out = appendSimple(c.out, "OK")
		return true
	}
	s.cmds.other.Inc(c.id)
	c.out = appendError(c.out, "ERR unknown command")
	return false
}

// access serves one GET/SET in the connection's tenant namespace. GET
// replies with the tier that serviced the page (the engine tracks
// placement, not payloads); SET replies +OK.
func (s *Server) access(c *conn, key []byte, op trace.Op) (closeAfter bool) {
	if s.needAuth(c) || s.rejectLoading(c) {
		return false
	}
	return s.accessAddr(c, keyAddr(key), op)
}

// accessAddr serves one already-resolved address — the one-at-a-time
// engine call behind access and the per-command fallback of flushRun.
func (s *Server) accessAddr(c *conn, addr uint64, op trace.Op) (closeAfter bool) {
	res, err := s.engine.ServeTenant(c.tenant, addr, op)
	if err != nil {
		c.out = appendError(c.out, "ERR "+err.Error())
		// An engine past its lifecycle cannot serve this connection
		// anything further; per-access errors (page out of range) can.
		return errors.Is(err, tiered.ErrStopped) || errors.Is(err, tiered.ErrNotStarted)
	}
	if op == trace.OpRead {
		if res.ServedFrom == mm.LocDRAM {
			c.out = append(c.out, replyDRAM...)
		} else {
			c.out = append(c.out, replyNVM...)
		}
		return false
	}
	c.out = append(c.out, replyOK...)
	return false
}

// needAuth rejects a data command on an unauthenticated connection when
// the server requires AUTH. It appends the error itself.
func (s *Server) needAuth(c *conn) bool {
	if s.cfg.RequireAuth && !c.authed {
		c.out = appendError(c.out, "NOAUTH Authentication required.")
		return true
	}
	return false
}

// loading reports whether the engine is still restoring persisted state.
func (s *Server) loading() bool {
	return s.cfg.Loading != nil && s.cfg.Loading()
}

// rejectLoading answers a data command with -LOADING while the engine
// restores. It appends the error itself.
func (s *Server) rejectLoading(c *conn) bool {
	if s.loading() {
		c.out = appendError(c.out, "LOADING tierd is restoring the checkpoint")
		return true
	}
	return false
}

// auth resolves an AUTH token to a tenant: first the explicit Config.Auth
// table, then the engine's tenant names. Both redis forms are accepted —
// AUTH <token> and AUTH <user> <password> (the token is tried from the
// password first, then the user, so "AUTH default <tenant>" works from
// redis-cli --user flows).
func (s *Server) auth(c *conn, args [][]byte) (closeAfter bool) {
	if len(args) != 2 && len(args) != 3 {
		c.out = appendError(c.out, "ERR wrong number of arguments for 'auth' command")
		return false
	}
	for i := len(args) - 1; i >= 1; i-- {
		if id, ok := s.resolveToken(args[i]); ok {
			c.tenant = id
			c.authed = true
			c.out = appendSimple(c.out, "OK")
			return false
		}
	}
	s.authFailures.Add(1)
	c.out = appendError(c.out, "WRONGPASS invalid tenant token")
	return false
}

// resolveToken maps one AUTH token to a tenant.
func (s *Server) resolveToken(token []byte) (tiered.TenantID, bool) {
	if s.cfg.Auth != nil {
		id, ok := s.cfg.Auth[string(token)]
		return id, ok
	}
	return s.engine.TenantByName(string(token))
}

// info renders the INFO reply: redis-style "key:value" lines in sections,
// covering the server's connection fabric and the engine's placement
// counters.
func (s *Server) info() string {
	st := s.Stats()
	es := s.engine.Stats()
	var b strings.Builder
	fmt.Fprintf(&b, "# Server\r\npolicy:%s\r\nuptime_in_seconds:%d\r\n",
		s.engine.PolicyName(), int64(time.Since(s.started).Seconds()))
	fmt.Fprintf(&b, "# Clients\r\nconnected_clients:%d\r\naccepted_connections:%d\r\nevicted_connections:%d\r\nreaped_connections:%d\r\nmax_clients:%d\r\n",
		st.Active, st.Accepted, st.Evicted, st.Reaped, s.cfg.MaxConns)
	fmt.Fprintf(&b, "# Stats\r\ntotal_commands_processed:%d\r\npipelined_commands:%d\r\nbatched_ops:%d\r\nauth_failures:%d\r\nprotocol_errors:%d\r\n",
		st.Commands, st.Pipelined, st.BatchedOps, st.AuthFailures, st.ProtocolErrors)
	fmt.Fprintf(&b, "# Engine\r\naccesses:%d\r\nhits_dram:%d\r\nhits_nvm:%d\r\nfaults:%d\r\npromotions:%d\r\ndemotions:%d\r\nevictions:%d\r\nresident_dram:%d\r\nresident_nvm:%d\r\n",
		es.Accesses, es.HitsDRAM(), es.HitsNVM(), es.Faults,
		es.Promotions, es.Demotions, es.Evictions, es.ResidentDRAM, es.ResidentNVM)
	ds := s.engine.DaemonStats()
	depth := 0
	for _, n := range ds.Nodes {
		depth += n.QueueDepth
	}
	fmt.Fprintf(&b, "# Daemon\r\nscan_epochs:%d\r\nlast_scan_us:%d\r\ncandidates:%d\r\ncoalesced:%d\r\nbatches:%d\r\nbatch_drops:%d\r\nqueue_depth:%d\r\n",
		ds.Epochs, ds.LastScanNS/1000, ds.Candidates, ds.Coalesced,
		ds.Batches, ds.BatchesDropped, depth)
	b.WriteString("# Nodes\r\n")
	for _, n := range s.engine.NodeStats() {
		fmt.Fprintf(&b, "node%d:resident_dram=%d,resident_nvm=%d,faults_local=%d,faults_remote=%d,promotions_local=%d,promotions_remote=%d,demotions_local=%d,demotions_remote=%d\r\n",
			n.ID, n.ResidentDRAM, n.ResidentNVM,
			n.FaultsLocal, n.FaultsRemote,
			n.PromotionsLocal, n.PromotionsRemote,
			n.DemotionsLocal, n.DemotionsRemote)
	}
	return b.String()
}

// statsReply renders STATS: a flat field/value array (machine-readable
// where INFO is human-readable) with the engine aggregate, the server
// fabric counters, and the requesting connection's tenant breakdown.
func (s *Server) statsReply(out []byte, tenant tiered.TenantID) []byte {
	es := s.engine.Stats()
	st := s.Stats()
	type field struct {
		name string
		v    int64
	}
	fields := []field{
		{"accesses", es.Accesses},
		{"hits_dram", es.HitsDRAM()},
		{"hits_nvm", es.HitsNVM()},
		{"faults", es.Faults},
		{"promotions", es.Promotions},
		{"demotions", es.Demotions},
		{"evictions", es.Evictions},
		{"resident_dram", es.ResidentDRAM},
		{"resident_nvm", es.ResidentNVM},
		{"conns_active", st.Active},
		{"conns_accepted", st.Accepted},
		{"conns_evicted", st.Evicted},
		{"conns_reaped", st.Reaped},
		{"commands", st.Commands},
		{"batched_ops", st.BatchedOps},
	}
	if ts, ok := s.engine.TenantStats(tenant); ok {
		fields = append(fields,
			field{"tenant_accesses", ts.Accesses},
			field{"tenant_hits_dram", ts.HitsDRAM},
			field{"tenant_faults", ts.Faults},
			field{"tenant_resident_dram", ts.ResidentDRAM},
		)
	}
	out = appendArrayHeader(out, 2*len(fields))
	for _, f := range fields {
		out = appendBulkString(out, f.name)
		out = appendInt(out, f.v)
	}
	return out
}
