package server

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hybridmem/internal/tiered"
)

// newTestEngine builds and starts a small engine; cleanup stops it.
func newTestEngine(t *testing.T, cfg tiered.Config) *tiered.Engine {
	t.Helper()
	if cfg.DRAMPages == 0 {
		cfg.DRAMPages = 64
	}
	if cfg.NVMPages == 0 {
		cfg.NVMPages = 256
	}
	if cfg.Shards == 0 {
		cfg.Shards = 8
	}
	e, err := tiered.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Stop() })
	return e
}

// newTestServer starts a server on an ephemeral port; cleanup shuts it
// down (ignoring errors: tests may have force-closed clients mid-drain).
func newTestServer(t *testing.T, e *tiered.Engine, cfg Config) *Server {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	s, err := New(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Shutdown(time.Second) })
	return s
}

func dialTest(t *testing.T, s *Server) *Client {
	t.Helper()
	c, err := Dial(s.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestServerBasicCommands(t *testing.T) {
	e := newTestEngine(t, tiered.Config{})
	s := newTestServer(t, e, Config{})
	c := dialTest(t, s)

	if kind, err := c.Do("PING"); err != nil || kind != '+' {
		t.Fatalf("PING: %v %q", err, kind)
	}
	if kind, err := c.Do("SET", "4096", "hello"); err != nil || kind != '+' {
		t.Fatalf("SET: %v %q", err, kind)
	}
	if kind, err := c.Do("GET", "4096"); err != nil || kind != '$' {
		t.Fatalf("GET: %v %q", err, kind)
	}
	// The page was just written: the reply must name its tier.
	c.EnqueueCommand("GET", "4096")
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	zone, err := c.readBulk()
	if err != nil {
		t.Fatal(err)
	}
	if z := string(zone); z != "DRAM" && z != "NVM" {
		t.Fatalf("GET reply %q, want a tier name", z)
	}
	if kind, err := c.Do("DEL", "4096"); err != nil || kind != ':' {
		t.Fatalf("DEL: %v %q", err, kind)
	}
	if _, err := c.Do("NOSUCH"); err == nil || !strings.Contains(err.Error(), "unknown command") {
		t.Fatalf("unknown command error = %v", err)
	}
	// Non-numeric keys hash; echo and quit round-trip.
	if kind, err := c.Do("SET", "user:1001", "v"); err != nil || kind != '+' {
		t.Fatalf("SET hashed key: %v %q", err, kind)
	}
	if kind, err := c.Do("ECHO", "hi"); err != nil || kind != '$' {
		t.Fatalf("ECHO: %v %q", err, kind)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st["accesses"] < 3 || st["conns_active"] != 1 {
		t.Fatalf("stats = %v", st)
	}
}

func TestServerDelRemovesResidency(t *testing.T) {
	e := newTestEngine(t, tiered.Config{})
	s := newTestServer(t, e, Config{})
	c := dialTest(t, s)
	for i := 0; i < 8; i++ {
		if kind, err := c.Do("SET", fmt.Sprint(i*4096), "x"); err != nil || kind != '+' {
			t.Fatalf("SET %d: %v %q", i, err, kind)
		}
	}
	before := e.Stats()
	c.EnqueueCommand("DEL", "0", "4096", "999999999") // two resident, one not
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	line, err := c.readLine()
	if err != nil || string(line) != ":2" {
		t.Fatalf("DEL reply %q (%v), want :2", line, err)
	}
	after := e.Stats()
	if got := before.ResidentDRAM + before.ResidentNVM - after.ResidentDRAM - after.ResidentNVM; got != 2 {
		t.Fatalf("residency shrank by %d, want 2", got)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestServerAuthMapsTenants(t *testing.T) {
	e := newTestEngine(t, tiered.Config{
		DRAMPages: 64, NVMPages: 256,
		Tenants: []tiered.TenantConfig{
			{ID: 0, Name: "alpha", DRAMQuota: 32},
			{ID: 1, Name: "beta", DRAMQuota: 24},
		},
	})
	s := newTestServer(t, e, Config{RequireAuth: true})
	c := dialTest(t, s)

	// Data commands are rejected before AUTH; PING is not.
	if _, err := c.Do("GET", "0"); err == nil || !strings.Contains(err.Error(), "NOAUTH") {
		t.Fatalf("pre-auth GET error = %v", err)
	}
	if kind, err := c.Do("PING"); err != nil || kind != '+' {
		t.Fatalf("pre-auth PING: %v %q", err, kind)
	}
	if err := c.Auth("nosuch"); err == nil {
		t.Fatal("bogus token accepted")
	}
	if err := c.Auth("beta"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if kind, err := c.Do("SET", fmt.Sprint(i*4096), "x"); err != nil || kind != '+' {
			t.Fatalf("SET: %v %q", err, kind)
		}
	}
	// The accesses landed in beta's namespace, not alpha's.
	beta, _ := e.TenantStats(1)
	alpha, _ := e.TenantStats(0)
	if beta.Accesses != 5 || alpha.Accesses != 0 {
		t.Fatalf("beta %d / alpha %d accesses, want 5 / 0", beta.Accesses, alpha.Accesses)
	}
	// The redis-cli two-argument form works too.
	c2 := dialTest(t, s)
	if kind, err := c2.Do("AUTH", "default", "alpha"); err != nil || kind != '+' {
		t.Fatalf("two-arg AUTH: %v %q", err, kind)
	}
	if kind, err := c2.Do("SET", "0", "x"); err != nil || kind != '+' {
		t.Fatalf("SET: %v %q", err, kind)
	}
	if alpha, _ = e.TenantStats(0); alpha.Accesses != 1 {
		t.Fatalf("alpha accesses = %d, want 1", alpha.Accesses)
	}
	if s.Stats().AuthFailures != 1 {
		t.Fatalf("auth failures = %d, want 1", s.Stats().AuthFailures)
	}
}

func TestServerPipelinedBatch(t *testing.T) {
	e := newTestEngine(t, tiered.Config{})
	s := newTestServer(t, e, Config{})
	c := dialTest(t, s)
	const n = 300
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			c.EnqueueSet(uint64(i%32) * 4096)
		} else {
			c.EnqueueGet(uint64(i%32) * 4096)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := c.ReadReply(); err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
	}
	st := s.Stats()
	if st.Commands < n {
		t.Fatalf("commands = %d, want >= %d", st.Commands, n)
	}
	if st.Pipelined == 0 {
		t.Fatal("no commands counted as pipelined despite the batch")
	}
	es := e.Stats()
	if es.Accesses != n {
		t.Fatalf("engine served %d accesses, want %d", es.Accesses, n)
	}
	if es.Hits() == 0 {
		t.Fatal("no hits after re-referencing 32 pages")
	}
}

func TestServerProtocolErrorCloses(t *testing.T) {
	e := newTestEngine(t, tiered.Config{})
	s := newTestServer(t, e, Config{})
	c := dialTest(t, s)
	if _, err := c.nc.Write([]byte("*1\r\n:bogus\r\n")); err != nil {
		t.Fatal(err)
	}
	line, err := c.readLine()
	if err != nil {
		t.Fatal(err)
	}
	if line[0] != '-' {
		t.Fatalf("reply %q, want an error", line)
	}
	if _, err := c.br.ReadByte(); err != io.EOF {
		t.Fatalf("connection still open after protocol error (err=%v)", err)
	}
	if s.Stats().ProtocolErrors != 1 {
		t.Fatalf("protocol errors = %d", s.Stats().ProtocolErrors)
	}
}

func TestServerConnCapEvictsLRU(t *testing.T) {
	e := newTestEngine(t, tiered.Config{})
	s := newTestServer(t, e, Config{MaxConns: 2})
	c1 := dialTest(t, s)
	if kind, err := c1.Do("PING"); err != nil || kind != '+' {
		t.Fatalf("c1 PING: %v %q", err, kind)
	}
	c2 := dialTest(t, s)
	if kind, err := c2.Do("PING"); err != nil || kind != '+' {
		t.Fatalf("c2 PING: %v %q", err, kind)
	}
	// c1 is now the least recently active; the third connection evicts it.
	c3 := dialTest(t, s)
	if kind, err := c3.Do("PING"); err != nil || kind != '+' {
		t.Fatalf("c3 PING: %v %q", err, kind)
	}
	c1.nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c1.ReadReply(); err == nil {
		t.Fatal("evicted connection still serving")
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().Evicted == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := s.Stats().Evicted; got != 1 {
		t.Fatalf("evicted = %d, want 1", got)
	}
	// The survivors still work.
	if kind, err := c2.Do("PING"); err != nil || kind != '+' {
		t.Fatalf("c2 after eviction: %v %q", err, kind)
	}
}

func TestServerIdleReaping(t *testing.T) {
	e := newTestEngine(t, tiered.Config{})
	s := newTestServer(t, e, Config{
		IdleTimeout:  50 * time.Millisecond,
		ReapInterval: 10 * time.Millisecond,
	})
	idle := dialTest(t, s)
	busy := dialTest(t, s)
	if kind, err := idle.Do("PING"); err != nil || kind != '+' {
		t.Fatal(err)
	}
	// Keep one connection chatty while the other goes silent.
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().Reaped == 0 && time.Now().Before(deadline) {
		if kind, err := busy.Do("PING"); err != nil || kind != '+' {
			t.Fatalf("busy PING: %v %q", err, kind)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := s.Stats().Reaped; got != 1 {
		t.Fatalf("reaped = %d, want 1 (the idle conn only)", got)
	}
	idle.nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := idle.ReadReply(); err == nil {
		t.Fatal("reaped connection still serving")
	}
	if kind, err := busy.Do("PING"); err != nil || kind != '+' {
		t.Fatalf("busy conn was reaped too: %v %q", err, kind)
	}
}

// TestServerAcceptEvictChurn races many short-lived clients against a
// tiny connection cap under -race: every client either completes its
// round-trip or observes a clean eviction, and the fabric's counters
// reconcile at the end.
func TestServerAcceptEvictChurn(t *testing.T) {
	e := newTestEngine(t, tiered.Config{})
	s := newTestServer(t, e, Config{
		MaxConns:     4,
		IdleTimeout:  20 * time.Millisecond,
		ReapInterval: 5 * time.Millisecond,
	})
	var wg sync.WaitGroup
	var served atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				c, err := Dial(s.Addr().String(), time.Second)
				if err != nil {
					continue // accept backlog under churn is fine
				}
				for k := 0; k < 4; k++ {
					c.EnqueueSet(uint64(g*64+k) * 4096)
				}
				if c.Flush() == nil {
					ok := true
					for k := 0; k < 4; k++ {
						if _, err := c.ReadReply(); err != nil {
							ok = false // evicted mid-batch: acceptable
							break
						}
					}
					if ok {
						served.Add(4)
					}
				}
				c.Close()
			}
		}(g)
	}
	wg.Wait()
	if served.Load() == 0 {
		t.Fatal("no client ever completed a batch")
	}
	st := s.Stats()
	if st.Accepted == 0 {
		t.Fatal("nothing accepted")
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().Active > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := s.Stats().Active; got != 0 {
		t.Fatalf("%d connections still active after all clients closed", got)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestServerGracefulDrain(t *testing.T) {
	e := newTestEngine(t, tiered.Config{})
	s := newTestServer(t, e, Config{})
	c := dialTest(t, s)
	// A full pipeline lands just before shutdown: every command in it
	// must still be answered (the drain interrupts reads, not replies).
	const n = 64
	for i := 0; i < n; i++ {
		c.EnqueueSet(uint64(i) * 4096)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(2 * time.Second); err != nil {
		t.Fatalf("drain not clean: %v", err)
	}
	got := 0
	c.nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	for i := 0; i < n; i++ {
		if _, err := c.ReadReply(); err != nil {
			break
		}
		got++
	}
	if got != n {
		t.Fatalf("drained server answered %d of %d in-flight commands", got, n)
	}
	// After Shutdown returns the engine is safe to stop; its daemon has
	// no server-side callers left.
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// New connections are refused.
	if _, err := Dial(s.Addr().String(), 200*time.Millisecond); err == nil {
		t.Fatal("drained server accepted a new connection")
	}
}

// TestServerBatchDispatchOrdering pins the run-grouping semantics: a
// pipeline mixing batchable GET/SETs with non-batchable commands,
// per-command errors (an out-of-range hashed address mid-run, which makes
// the engine reject the whole batch and the server fall back to
// one-at-a-time serves) and malformed arity must produce byte-identical
// replies, in command order, to unbatched dispatch — and the well-formed
// GET/SETs must be counted as batched_ops.
func TestServerBatchDispatchOrdering(t *testing.T) {
	e := newTestEngine(t, tiered.Config{})
	s := newTestServer(t, e, Config{})
	var batch []byte
	add := func(args ...string) {
		batch = append(batch, fmt.Sprintf("*%d\r\n", len(args))...)
		for _, a := range args {
			batch = append(batch, fmt.Sprintf("$%d\r\n%s\r\n", len(a), a)...)
		}
	}
	add("SET", "0", "x")
	add("SET", "4096", "x")
	add("GET", "0")
	add("PING") // non-batchable: flushes the pending run first
	add("GET", "4096")
	add("ECHO", "hi")
	add("GET", "18446744073709551615") // page out of range: per-command error via fallback
	add("SET", "8192", "x")
	add("GET") // wrong arity: flushes the run, then errors through dispatch
	add("GET", "0")
	c := &conn{id: 7, tenant: tiered.DefaultTenant, rbuf: append([]byte(nil), batch...), rend: len(batch)}
	if fatal := s.process(c); fatal {
		t.Fatal("pipeline closed the connection")
	}
	want := "+OK\r\n+OK\r\n$4\r\nDRAM\r\n+PONG\r\n$4\r\nDRAM\r\n$2\r\nhi\r\n" +
		"-ERR tiered: page exceeds the 48-bit namespaced keyspace\r\n" +
		"+OK\r\n" +
		"-ERR wrong number of arguments for 'get' command\r\n" +
		"$4\r\nDRAM\r\n"
	if got := string(c.out); got != want {
		t.Fatalf("replies out of order or wrong:\ngot  %q\nwant %q", got, want)
	}
	// Runs of [SET,SET,GET], [GET], [GET(bad),SET] and [GET]: the bad-page
	// run falls back entirely, so 5 commands went through the batch API.
	if got := s.Stats().BatchedOps; got != 5 {
		t.Fatalf("batched_ops = %d, want 5", got)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestServerProcessZeroAlloc pins the per-command serve cost: parsing and
// dispatching a pipelined GET/SET batch over warmed pages must not
// allocate (replies append into the connection's retained buffer).
func TestServerProcessZeroAlloc(t *testing.T) {
	e := newTestEngine(t, tiered.Config{})
	s := newTestServer(t, e, Config{})
	var batch []byte
	for i := 0; i < 16; i++ {
		batch = append(batch, fmt.Sprintf("*3\r\n$3\r\nSET\r\n$%d\r\n%d\r\n$1\r\nx\r\n", len(fmt.Sprint(i*4096)), i*4096)...)
		batch = append(batch, fmt.Sprintf("*2\r\n$3\r\nGET\r\n$%d\r\n%d\r\n", len(fmt.Sprint(i*4096)), i*4096)...)
	}
	c := &conn{id: 999, tenant: tiered.DefaultTenant, rbuf: make([]byte, len(batch))}
	run := func() {
		copy(c.rbuf, batch)
		c.rpos, c.rend = 0, len(batch)
		c.out = c.out[:0]
		if fatal := s.process(c); fatal {
			t.Fatal("batch closed the connection")
		}
	}
	run() // warm: faults populate the table, buffers grow once
	run()
	if allocs := testing.AllocsPerRun(100, run); allocs > 0 {
		t.Fatalf("process allocated %.1f times per batch, want 0", allocs)
	}
}

// TestServerLoadingGate flips a Loading hook and checks that data
// commands are rejected with -LOADING while control commands still work,
// then that the connection recovers in place once the restore finishes.
func TestServerLoadingGate(t *testing.T) {
	e := newTestEngine(t, tiered.Config{})
	var loading atomic.Bool
	loading.Store(true)
	s := newTestServer(t, e, Config{Loading: loading.Load})
	c := dialTest(t, s)

	// Control plane stays up during the restore.
	if kind, err := c.Do("PING"); err != nil || kind != '+' {
		t.Fatalf("PING while loading: %v %q", err, kind)
	}
	if kind, err := c.Do("INFO"); err != nil || kind != '$' {
		t.Fatalf("INFO while loading: %v %q", err, kind)
	}
	// Data plane answers -LOADING, single and pipelined alike.
	for _, args := range [][]string{
		{"GET", "4096"}, {"SET", "4096", "v"}, {"DEL", "4096"}, {"STATS"},
	} {
		_, err := c.Do(args...)
		if err == nil || !strings.Contains(err.Error(), "LOADING") {
			t.Fatalf("%v while loading: err = %v, want LOADING", args, err)
		}
	}
	c.EnqueueGet(4096)
	c.EnqueueSet(8192)
	c.EnqueueGet(4096)
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		_, err := c.ReadReply()
		if err == nil || !strings.Contains(err.Error(), "LOADING") {
			t.Fatalf("pipelined reply %d while loading: %v, want LOADING", i, err)
		}
	}
	if es := e.Stats(); es.Accesses != 0 {
		t.Fatalf("engine served %d accesses while loading, want 0", es.Accesses)
	}

	// Restore done: the same connection serves data again.
	loading.Store(false)
	if kind, err := c.Do("SET", "4096", "v"); err != nil || kind != '+' {
		t.Fatalf("SET after restore: %v %q", err, kind)
	}
	if kind, err := c.Do("GET", "4096"); err != nil || kind != '$' {
		t.Fatalf("GET after restore: %v %q", err, kind)
	}
}
