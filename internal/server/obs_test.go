package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"hybridmem/internal/obs"
	"hybridmem/internal/tiered"
)

// TestInfoDaemonAndNodeSections pins the INFO additions: a # Daemon
// section with the scan-epoch and queue introspection, and a # Nodes
// section with one line per node carrying the local/remote migration
// split.
func TestInfoDaemonAndNodeSections(t *testing.T) {
	e := newTestEngine(t, tiered.Config{
		DRAMPages: 8, NVMPages: 64, Shards: 4,
		Topology: tiered.EvenTopology(2, 8, 64),
	})
	s := newTestServer(t, e, Config{})
	c := dialTest(t, s)

	// Traffic past DRAM capacity, then a scan, so the daemon counters move.
	for p := uint64(0); p < 32; p++ {
		if _, err := c.Do("SET", fmt.Sprint(p*4096), "x"); err != nil {
			t.Fatal(err)
		}
	}
	_ = e.ScanOnce()

	c.EnqueueCommand("INFO")
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	info, err := c.readBulk()
	if err != nil {
		t.Fatal(err)
	}
	text := string(info)
	for _, want := range []string{
		"# Daemon", "scan_epochs:", "candidates:", "batch_drops:", "queue_depth:",
		"# Nodes", "node0:resident_dram=", "node1:resident_dram=",
		"promotions_local=", "demotions_remote=",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("INFO missing %q:\n%s", want, text)
		}
	}
	// The epoch counter must reflect the manual scan.
	if !strings.Contains(text, "scan_epochs:") {
		t.Fatal("no scan_epochs line")
	}
	for _, line := range strings.Split(text, "\r\n") {
		if v, ok := strings.CutPrefix(line, "scan_epochs:"); ok && v == "0" {
			t.Fatalf("scan_epochs is 0 after ScanOnce: %s", line)
		}
	}
}

// TestServerRegisterMetrics scrapes a registry holding both the engine
// and server catalogs after real RESP traffic: the scrape must validate,
// and the per-command counters and batch histogram must have moved.
func TestServerRegisterMetrics(t *testing.T) {
	e := newTestEngine(t, tiered.Config{})
	s := newTestServer(t, e, Config{})
	reg := obs.NewRegistry()
	e.RegisterMetrics(reg)
	s.RegisterMetrics(reg)

	c := dialTest(t, s)
	for p := uint64(0); p < 16; p++ {
		if _, err := c.Do("SET", fmt.Sprint(p*4096), "x"); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Do("GET", fmt.Sprint(p*4096)); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidatePrometheus(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("scrape invalid: %v\n%s", err, buf.String())
	}
	samples := reg.Snapshot()
	for _, cmd := range []string{"get", "set"} {
		smp, ok := obs.Find(samples, "tierd_resp_commands_by_name_total", obs.L("cmd", cmd))
		if !ok || smp.Value != 16 {
			t.Fatalf("%s counter = %+v, %v; want 16", cmd, smp, ok)
		}
	}
	if smp, ok := obs.Find(samples, "tierd_resp_batch_duration_ns"); !ok || smp.Count == 0 {
		t.Fatalf("batch histogram = %+v, %v; want observations", smp, ok)
	}
	if smp, ok := obs.Find(samples, "tierd_resp_connections_active"); !ok || smp.Value != 1 {
		t.Fatalf("active connections = %+v, %v; want 1", smp, ok)
	}
	if smp, ok := obs.Find(samples, "tierd_engine_accesses_total"); !ok || smp.Value != 32 {
		t.Fatalf("engine accesses = %+v, %v; want 32", smp, ok)
	}
}

// TestAdminAlongsideDrain runs the admin plane next to the RESP server
// through a full lifecycle: ready while both are serving, not ready after
// the RESP drain, and the admin socket itself refusing connections after
// its own shutdown.
func TestAdminAlongsideDrain(t *testing.T) {
	e := newTestEngine(t, tiered.Config{})
	s := newTestServer(t, e, Config{})
	reg := obs.NewRegistry()
	e.RegisterMetrics(reg)
	s.RegisterMetrics(reg)

	adm, err := obs.NewAdmin(obs.AdminConfig{
		Addr:     "127.0.0.1:0",
		Registry: reg,
		Ready: func() error {
			if !e.Running() {
				return fmt.Errorf("engine not running")
			}
			if !s.Serving() {
				return fmt.Errorf("resp server not serving")
			}
			return nil
		},
		Invariants: e.CheckInvariants,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := adm.Listen(); err != nil {
		t.Fatal(err)
	}

	get := func(path string) (int, string) {
		resp, err := http.Get(adm.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	c := dialTest(t, s)
	if _, err := c.Do("SET", "4096", "x"); err != nil {
		t.Fatal(err)
	}
	if code, body := get("/readyz?invariants=1"); code != http.StatusOK {
		t.Fatalf("/readyz while serving: %d %q", code, body)
	}
	if code, body := get("/metrics"); code != http.StatusOK ||
		!strings.Contains(body, "tierd_resp_commands_total") {
		t.Fatalf("/metrics: %d, missing resp counters", code)
	}

	// Drain RESP first — the admin plane must outlive it and report
	// not-ready, so an orchestrator sees the drain.
	c.Close()
	if err := s.Shutdown(time.Second); err != nil {
		t.Fatal(err)
	}
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable ||
		!strings.Contains(body, "not serving") {
		t.Fatalf("/readyz after drain: %d %q", code, body)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz after drain: %d, want 200 (liveness outlasts drain)", code)
	}

	if err := adm.Shutdown(time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(adm.URL() + "/healthz"); err == nil {
		t.Fatal("admin still answering after Shutdown")
	}
}
