package server

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// mapConn builds a bare conn for fabric tests (no socket: the map never
// touches nc).
func mapConn(id uint64, at time.Time) *conn {
	return &conn{id: id, lastActive: at}
}

func ids(conns []*conn) []uint64 {
	out := make([]uint64, len(conns))
	for i, c := range conns {
		out[i] = c.id
	}
	return out
}

func TestConnMapEvictsLRU(t *testing.T) {
	m := newConnMap(3)
	t0 := time.Now()
	c1, c2, c3 := mapConn(1, t0), mapConn(2, t0), mapConn(3, t0)
	for _, c := range []*conn{c1, c2, c3} {
		if ev := m.add(c); ev != nil {
			t.Fatalf("premature eviction of %d", ev.id)
		}
	}
	// c1 is the coldest; adding a fourth evicts it.
	c4 := mapConn(4, t0)
	if ev := m.add(c4); ev == nil || ev.id != 1 {
		t.Fatalf("evicted %v, want conn 1", ev)
	}
	// Touch c2 (now: c2 warmest, then c4, then c3): next eviction is c3.
	m.touch(c2, t0.Add(time.Second))
	if ev := m.add(mapConn(5, t0)); ev == nil || ev.id != 3 {
		t.Fatalf("evicted %v, want conn 3", ev)
	}
	if m.len() != 3 {
		t.Fatalf("len = %d, want 3", m.len())
	}
}

func TestConnMapTouchDoesNotResurrect(t *testing.T) {
	m := newConnMap(1)
	c1 := mapConn(1, time.Now())
	m.add(c1)
	m.add(mapConn(2, time.Now())) // evicts c1
	m.touch(c1, time.Now())       // must not re-register it
	if m.len() != 1 {
		t.Fatalf("len = %d after touching an evicted conn", m.len())
	}
	if got := m.reapIdle(time.Now().Add(time.Hour)); len(got) != 1 || got[0].id != 2 {
		t.Fatalf("reaped %v, want only conn 2", ids(got))
	}
}

func TestConnMapReapIdleOrderAndCutoff(t *testing.T) {
	m := newConnMap(10)
	t0 := time.Now()
	for i := 1; i <= 5; i++ {
		m.add(mapConn(uint64(i), t0.Add(time.Duration(i)*time.Second)))
	}
	// Cutoff between conn 3 and conn 4: exactly 1..3 reaped, coldest
	// first.
	got := m.reapIdle(t0.Add(3500 * time.Millisecond))
	if want := []uint64{1, 2, 3}; fmt.Sprint(ids(got)) != fmt.Sprint(want) {
		t.Fatalf("reaped %v, want %v", ids(got), want)
	}
	if m.len() != 2 {
		t.Fatalf("len = %d, want 2", m.len())
	}
	// Nothing else is idle past the same cutoff.
	if got := m.reapIdle(t0.Add(3500 * time.Millisecond)); len(got) != 0 {
		t.Fatalf("second reap returned %v", ids(got))
	}
}

func TestConnMapRemoveIdempotent(t *testing.T) {
	m := newConnMap(2)
	c := mapConn(1, time.Now())
	m.add(c)
	m.remove(c)
	m.remove(c) // no-op
	if m.len() != 0 {
		t.Fatalf("len = %d", m.len())
	}
	if ev := m.add(mapConn(2, time.Now())); ev != nil {
		t.Fatalf("eviction from an empty map: %v", ev.id)
	}
}

// TestConnMapConcurrent hammers add/touch/remove/reap from many
// goroutines under -race: the fabric must stay consistent (list and map
// agree, no double-eviction) no matter the interleaving.
func TestConnMapConcurrent(t *testing.T) {
	m := newConnMap(16)
	var wg sync.WaitGroup
	var mu sync.Mutex
	seen := make(map[uint64]int) // times each conn left the map
	leave := func(cs ...*conn) {
		mu.Lock()
		for _, c := range cs {
			seen[c.id]++
		}
		mu.Unlock()
	}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c := mapConn(uint64(g*1000+i), time.Now())
				if ev := m.add(c); ev != nil {
					leave(ev)
				}
				m.touch(c, time.Now())
				if i%3 == 0 {
					if m.remove(c) {
						leave(c)
					}
				}
				if i%17 == 0 {
					leave(m.reapIdle(time.Now().Add(-time.Millisecond))...)
				}
			}
		}(g)
	}
	wg.Wait()
	// Whatever is left plus everything that left once must cover all
	// conns exactly once: no conn may have been evicted or reaped twice.
	for id, n := range seen {
		if n > 1 {
			t.Fatalf("conn %d left the map %d times", id, n)
		}
	}
	rest := m.reapIdle(time.Now().Add(time.Hour))
	for _, c := range rest {
		if seen[c.id] != 0 {
			t.Fatalf("conn %d both left earlier and was still in the map", c.id)
		}
	}
	if got := len(seen) + len(rest); got != 8*200 {
		t.Fatalf("%d conns accounted for, want %d", got, 8*200)
	}
}
