package server

import (
	"fmt"
	"testing"
	"time"

	"hybridmem/internal/tiered"
)

// benchEngine builds a started engine big enough that the benchmark's
// working set fits in DRAM after warmup, so the numbers measure the
// serve path, not steady-state migration churn.
func benchEngine(b *testing.B) *tiered.Engine {
	b.Helper()
	e, err := tiered.New(tiered.Config{DRAMPages: 4096, NVMPages: 16384, Shards: 16})
	if err != nil {
		b.Fatal(err)
	}
	if err := e.Start(); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { e.Stop() })
	return e
}

// BenchmarkServeRESP measures end-to-end command throughput over a real
// loopback TCP connection at several pipeline depths: the full stack of
// client encode, kernel round-trip, server parse, engine serve, and
// reply flush. Depth 1 is the closed-loop floor (one syscall pair per
// command); deeper pipelines amortize the round-trip exactly as a
// redis-benchmark -P run would.
func BenchmarkServeRESP(b *testing.B) {
	for _, depth := range []int{1, 16, 64} {
		b.Run(fmt.Sprintf("pipeline=%d", depth), func(b *testing.B) {
			e := benchEngine(b)
			s, err := New(e, Config{Addr: "127.0.0.1:0"})
			if err != nil {
				b.Fatal(err)
			}
			if err := s.Listen(); err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { s.Shutdown(time.Second) })
			c, err := Dial(s.Addr().String(), time.Second)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { c.Close() })
			// Warm the working set so the measured loop hits, not faults.
			const pages = 1024
			for p := uint64(0); p < pages; p++ {
				c.EnqueueSet(p * 4096)
			}
			if err := c.Flush(); err != nil {
				b.Fatal(err)
			}
			for p := 0; p < pages; p++ {
				if _, err := c.ReadReply(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			sent := 0
			for sent < b.N {
				batch := depth
				if left := b.N - sent; left < batch {
					batch = left
				}
				for i := 0; i < batch; i++ {
					c.EnqueueGet(uint64((sent+i)%pages) * 4096)
				}
				if err := c.Flush(); err != nil {
					b.Fatal(err)
				}
				for i := 0; i < batch; i++ {
					if _, err := c.ReadReply(); err != nil {
						b.Fatal(err)
					}
				}
				sent += batch
			}
			b.StopTimer()
		})
	}
}

// BenchmarkServeProcess measures the server's in-process command cost —
// parse, dispatch, engine serve, reply append — with the network
// removed, the number the 0 allocs/op acceptance gate pins. One op is
// one GET against a warmed page.
func BenchmarkServeProcess(b *testing.B) {
	e := benchEngine(b)
	s, err := New(e, Config{Addr: "127.0.0.1:0"})
	if err != nil {
		b.Fatal(err)
	}
	const depth = 16
	var batch []byte
	for i := 0; i < depth; i++ {
		addr := fmt.Sprint(i * 4096)
		batch = append(batch, fmt.Sprintf("*2\r\n$3\r\nGET\r\n$%d\r\n%s\r\n", len(addr), addr)...)
	}
	c := &conn{id: 1, tenant: tiered.DefaultTenant, rbuf: make([]byte, len(batch))}
	run := func() {
		copy(c.rbuf, batch)
		c.rpos, c.rend = 0, len(batch)
		c.out = c.out[:0]
		if s.process(c) {
			b.Fatal("batch closed the connection")
		}
	}
	run() // warm: fault the pages in, size the buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += depth {
		run()
	}
	b.StopTimer()
}
