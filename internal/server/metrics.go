package server

import "hybridmem/internal/obs"

// cmdCounters is the server's per-command tally, striped by connection id
// so concurrent handlers don't share cache lines. Always allocated — an
// unscrapped counter is just a padded atomic — and exported through
// RegisterMetrics when an admin plane is attached.
type cmdCounters struct {
	get, set, del    *obs.Counter
	auth, ping, info *obs.Counter
	stats, other     *obs.Counter
}

func newCmdCounters() cmdCounters {
	const stripes = 8
	return cmdCounters{
		get:   obs.NewCounter(stripes),
		set:   obs.NewCounter(stripes),
		del:   obs.NewCounter(stripes),
		auth:  obs.NewCounter(stripes),
		ping:  obs.NewCounter(stripes),
		info:  obs.NewCounter(stripes),
		stats: obs.NewCounter(stripes),
		other: obs.NewCounter(stripes),
	}
}

// Serving reports whether the server is between Listen and Shutdown — the
// admin plane's readiness signal for the RESP front end.
func (s *Server) Serving() bool { return s.state.Load() == srvServing }

// RegisterMetrics registers the server's metric catalog into reg: the
// per-command dispatch counters, the read-batch handling histogram, and
// func-backed views over the connection-fabric counters the server
// already maintains (no second write on any path). Call once per
// registry, before serving traffic.
func (s *Server) RegisterMetrics(reg *obs.Registry) {
	for _, c := range []struct {
		cmd string
		ctr *obs.Counter
	}{
		{"get", s.cmds.get}, {"set", s.cmds.set}, {"del", s.cmds.del},
		{"auth", s.cmds.auth}, {"ping", s.cmds.ping}, {"info", s.cmds.info},
		{"stats", s.cmds.stats}, {"other", s.cmds.other},
	} {
		ctr := c.ctr
		reg.CounterFunc("tierd_resp_commands_by_name_total", "Commands dispatched by name.",
			ctr.Value, obs.L("cmd", c.cmd))
	}
	reg.AttachHistogram("tierd_resp_batch_duration_ns",
		"Time to parse, dispatch and render one read batch.", s.batchDur)
	reg.CounterFunc("tierd_resp_connections_accepted_total", "Connections ever accepted.",
		s.accepted.Load)
	reg.GaugeFunc("tierd_resp_connections_active", "Currently open connections.",
		s.active.Load)
	reg.CounterFunc("tierd_resp_connections_evicted_total", "Connections evicted by the LRU cap.",
		s.evicted.Load)
	reg.CounterFunc("tierd_resp_connections_reaped_total", "Connections closed by the idle reaper.",
		s.reaped.Load)
	reg.CounterFunc("tierd_resp_commands_total", "Commands dispatched.",
		s.commands.Load)
	reg.CounterFunc("tierd_resp_pipelined_commands_total", "Commands that arrived behind another in a batch.",
		s.pipelined.Load)
	reg.CounterFunc("tierd_resp_batched_ops_total", "GET/SET commands served through the engine batch API.",
		s.batchedOps.Load)
	reg.CounterFunc("tierd_resp_auth_failures_total", "Rejected AUTH attempts.",
		s.authFailures.Load)
	reg.CounterFunc("tierd_resp_protocol_errors_total", "Connections closed for malformed frames.",
		s.protocolErrors.Load)
}
