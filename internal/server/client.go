package server

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"time"
)

// Client is a minimal pipelined RESP client: cmd/tierd's benchmarking
// modes, the net smoke test and the server benchmarks all drive the
// server through it. Enqueue* batch encoded commands into a write buffer,
// Flush sends them in one syscall, and ReadReply consumes one reply.
// Reads and writes may run on separate goroutines (the open-loop load
// shape), but each side must be single-threaded.
type Client struct {
	nc   net.Conn
	br   *bufio.Reader
	wbuf []byte
}

// Dial connects to a server.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &Client{nc: nc, br: bufio.NewReaderSize(nc, 64*1024)}, nil
}

// DialRetry redials until the deadline passes — the smoke tests start the
// server and the client as separate processes, so the client must absorb
// the startup race.
func DialRetry(addr string, deadline time.Duration) (*Client, error) {
	var lastErr error
	until := time.Now().Add(deadline)
	for time.Now().Before(until) {
		c, err := Dial(addr, time.Second)
		if err == nil {
			return c, nil
		}
		lastErr = err
		time.Sleep(50 * time.Millisecond)
	}
	return nil, fmt.Errorf("server: no server at %s after %v: %w", addr, deadline, lastErr)
}

// Close closes the connection.
func (c *Client) Close() error { return c.nc.Close() }

// EnqueueGet batches a GET for a numeric address key.
func (c *Client) EnqueueGet(addr uint64) {
	c.wbuf = append(c.wbuf, "*2\r\n$3\r\nGET\r\n"...)
	c.wbuf = appendAddrArg(c.wbuf, addr)
}

// EnqueueSet batches a SET for a numeric address key (one-byte payload;
// the server records the access and discards the value).
func (c *Client) EnqueueSet(addr uint64) {
	c.wbuf = append(c.wbuf, "*3\r\n$3\r\nSET\r\n"...)
	c.wbuf = appendAddrArg(c.wbuf, addr)
	c.wbuf = append(c.wbuf, "$1\r\nx\r\n"...)
}

// EnqueueCommand batches an arbitrary command.
func (c *Client) EnqueueCommand(args ...string) {
	c.wbuf = appendArrayHeader(c.wbuf, len(args))
	for _, a := range args {
		c.wbuf = appendBulkString(c.wbuf, a)
	}
}

// appendAddrArg appends one decimal bulk-string argument.
func appendAddrArg(out []byte, addr uint64) []byte {
	var scratch [20]byte
	dec := strconv.AppendUint(scratch[:0], addr, 10)
	return appendBulkBytes(out, dec)
}

// Flush writes every batched command in one syscall.
func (c *Client) Flush() error {
	if len(c.wbuf) == 0 {
		return nil
	}
	_, err := c.nc.Write(c.wbuf)
	c.wbuf = c.wbuf[:0]
	return err
}

// ReadReply consumes one reply, returning its first byte (the RESP type
// marker: '+', '-', ':', '$' or '*') — or an error for a '-' reply or a
// broken connection. Bulk and array payloads are skimmed, not retained.
func (c *Client) ReadReply() (byte, error) {
	line, err := c.readLine()
	if err != nil {
		return 0, err
	}
	switch line[0] {
	case '+', ':':
		return line[0], nil
	case '-':
		return '-', fmt.Errorf("server error: %s", line[1:])
	case '$':
		n, ok := parseInt(line[1:])
		if !ok {
			return 0, fmt.Errorf("server: bad bulk header %q", line)
		}
		if n >= 0 {
			if _, err := io.CopyN(io.Discard, c.br, n+2); err != nil {
				return 0, err
			}
		}
		return '$', nil
	case '*':
		n, ok := parseInt(line[1:])
		if !ok {
			return 0, fmt.Errorf("server: bad array header %q", line)
		}
		for i := int64(0); i < n; i++ {
			if _, err := c.ReadReply(); err != nil {
				return 0, err
			}
		}
		return '*', nil
	}
	return 0, fmt.Errorf("server: unexpected reply line %q", line)
}

// readBulk consumes one reply that must be a bulk string and returns its
// payload.
func (c *Client) readBulk() ([]byte, error) {
	line, err := c.readLine()
	if err != nil {
		return nil, err
	}
	if line[0] == '-' {
		return nil, fmt.Errorf("server error: %s", line[1:])
	}
	if line[0] != '$' {
		return nil, fmt.Errorf("server: expected bulk reply, got %q", line)
	}
	n, ok := parseInt(line[1:])
	if !ok || n < 0 {
		return nil, fmt.Errorf("server: bad bulk header %q", line)
	}
	buf := make([]byte, n+2)
	if _, err := io.ReadFull(c.br, buf); err != nil {
		return nil, err
	}
	return buf[:n], nil
}

// readLine reads one CRLF-terminated header line (without the CRLF).
func (c *Client) readLine() ([]byte, error) {
	line, err := c.br.ReadSlice('\n')
	if err != nil {
		return nil, err
	}
	if len(line) < 3 || line[len(line)-2] != '\r' {
		return nil, fmt.Errorf("server: malformed reply line %q", line)
	}
	return line[:len(line)-2], nil
}

// Do round-trips one command and returns its reply type.
func (c *Client) Do(args ...string) (byte, error) {
	c.EnqueueCommand(args...)
	if err := c.Flush(); err != nil {
		return 0, err
	}
	return c.ReadReply()
}

// Auth authenticates the connection as a tenant.
func (c *Client) Auth(token string) error {
	kind, err := c.Do("AUTH", token)
	if err != nil {
		return err
	}
	if kind != '+' {
		return fmt.Errorf("server: AUTH reply type %q", kind)
	}
	return nil
}

// Stats fetches the server's STATS array into a map. Field values are the
// engine aggregate, connection-fabric counters and the connection's
// tenant breakdown (see docs/protocol.md).
func (c *Client) Stats() (map[string]int64, error) {
	c.EnqueueCommand("STATS")
	if err := c.Flush(); err != nil {
		return nil, err
	}
	head, err := c.readLine()
	if err != nil {
		return nil, err
	}
	if head[0] != '*' {
		return nil, fmt.Errorf("server: STATS reply %q", head)
	}
	n, ok := parseInt(head[1:])
	if !ok || n < 0 || n%2 != 0 {
		return nil, fmt.Errorf("server: STATS array header %q", head)
	}
	out := make(map[string]int64, n/2)
	for i := int64(0); i < n; i += 2 {
		name, err := c.readBulk()
		if err != nil {
			return nil, err
		}
		line, err := c.readLine()
		if err != nil {
			return nil, err
		}
		if line[0] != ':' {
			return nil, fmt.Errorf("server: STATS value %q", line)
		}
		v, ok := parseInt(line[1:])
		if !ok {
			return nil, fmt.Errorf("server: STATS value %q", line)
		}
		out[string(name)] = v
	}
	return out, nil
}
