package server

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strconv"
	"time"
)

// Client is a minimal pipelined RESP client: cmd/tierd's benchmarking
// modes, the net smoke test and the server benchmarks all drive the
// server through it. Enqueue* batch encoded commands into a write buffer,
// Flush sends them in one syscall, and ReadReply consumes one reply.
// Reads and writes may run on separate goroutines (the open-loop load
// shape), but each side must be single-threaded.
type Client struct {
	nc   net.Conn
	br   *bufio.Reader
	wbuf []byte
}

// Dial connects to a server.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &Client{nc: nc, br: bufio.NewReaderSize(nc, 64*1024)}, nil
}

// Backoff is an exponential-backoff-with-jitter retry schedule: attempt
// n sleeps Base·Factor^n, capped at Max, with a uniformly random slice
// of up to Jitter of the delay subtracted so a fleet of clients redialing
// a restarting server doesn't reconnect in lockstep.
type Backoff struct {
	// Base is the first retry's delay (default 25ms).
	Base time.Duration
	// Max caps the grown delay (default 1s).
	Max time.Duration
	// Factor is the per-attempt growth multiplier (default 2).
	Factor float64
	// Jitter is the fraction of each delay randomized away, in [0,1)
	// (default 0.2: sleeps land in [0.8d, d]).
	Jitter float64
}

// withDefaults fills zero fields.
func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 25 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = time.Second
	}
	if b.Factor <= 1 {
		b.Factor = 2
	}
	if b.Jitter <= 0 || b.Jitter >= 1 {
		b.Jitter = 0.2
	}
	return b
}

// delay returns attempt n's sleep (0-based), before jitter.
func (b Backoff) delay(attempt int) time.Duration {
	d := float64(b.Base)
	for i := 0; i < attempt; i++ {
		d *= b.Factor
		if d >= float64(b.Max) {
			return b.Max
		}
	}
	return time.Duration(d)
}

// dialRetrier separates DialRetryContext's policy from the clock and the
// dialer so the schedule is unit-testable against a fake clock.
type dialRetrier struct {
	bo    Backoff
	dial  func(addr string, timeout time.Duration) (*Client, error)
	sleep func(ctx context.Context, d time.Duration) error
	// rand returns a uniform float64 in [0,1) for the jitter draw.
	rand func() float64
}

// sleepCtx sleeps d or returns early with the context's error.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func (r dialRetrier) retry(ctx context.Context, addr string) (*Client, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("server: no server at %s: %w (last dial error: %v)", addr, err, lastErr)
		}
		c, err := r.dial(addr, time.Second)
		if err == nil {
			return c, nil
		}
		lastErr = err
		d := r.bo.delay(attempt)
		d -= time.Duration(r.rand() * r.bo.Jitter * float64(d))
		if err := r.sleep(ctx, d); err != nil {
			return nil, fmt.Errorf("server: no server at %s: %w (last dial error: %v)", addr, err, lastErr)
		}
	}
}

// DialRetryContext redials addr on bo's exponential-backoff-with-jitter
// schedule until it connects or ctx ends (cancellation or deadline) — the
// reconnect loop that rides out a server's restart window in the chaos
// smoke. A zero Backoff uses the defaults.
func DialRetryContext(ctx context.Context, addr string, bo Backoff) (*Client, error) {
	r := dialRetrier{bo: bo.withDefaults(), dial: Dial, sleep: sleepCtx, rand: rand.Float64}
	return r.retry(ctx, addr)
}

// DialRetry is DialRetryContext with the default backoff and a plain
// timeout — the smoke tests start the server and the client as separate
// processes, so the client must absorb the startup race.
func DialRetry(addr string, deadline time.Duration) (*Client, error) {
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	return DialRetryContext(ctx, addr, Backoff{})
}

// Close closes the connection.
func (c *Client) Close() error { return c.nc.Close() }

// EnqueueGet batches a GET for a numeric address key.
func (c *Client) EnqueueGet(addr uint64) {
	c.wbuf = append(c.wbuf, "*2\r\n$3\r\nGET\r\n"...)
	c.wbuf = appendAddrArg(c.wbuf, addr)
}

// EnqueueSet batches a SET for a numeric address key (one-byte payload;
// the server records the access and discards the value).
func (c *Client) EnqueueSet(addr uint64) {
	c.wbuf = append(c.wbuf, "*3\r\n$3\r\nSET\r\n"...)
	c.wbuf = appendAddrArg(c.wbuf, addr)
	c.wbuf = append(c.wbuf, "$1\r\nx\r\n"...)
}

// EnqueueCommand batches an arbitrary command.
func (c *Client) EnqueueCommand(args ...string) {
	c.wbuf = appendArrayHeader(c.wbuf, len(args))
	for _, a := range args {
		c.wbuf = appendBulkString(c.wbuf, a)
	}
}

// appendAddrArg appends one decimal bulk-string argument.
func appendAddrArg(out []byte, addr uint64) []byte {
	var scratch [20]byte
	dec := strconv.AppendUint(scratch[:0], addr, 10)
	return appendBulkBytes(out, dec)
}

// Flush writes every batched command in one syscall.
func (c *Client) Flush() error {
	if len(c.wbuf) == 0 {
		return nil
	}
	_, err := c.nc.Write(c.wbuf)
	c.wbuf = c.wbuf[:0]
	return err
}

// ReadReply consumes one reply, returning its first byte (the RESP type
// marker: '+', '-', ':', '$' or '*') — or an error for a '-' reply or a
// broken connection. Bulk and array payloads are skimmed, not retained.
func (c *Client) ReadReply() (byte, error) {
	line, err := c.readLine()
	if err != nil {
		return 0, err
	}
	switch line[0] {
	case '+', ':':
		return line[0], nil
	case '-':
		return '-', fmt.Errorf("server error: %s", line[1:])
	case '$':
		n, ok := parseInt(line[1:])
		if !ok {
			return 0, fmt.Errorf("server: bad bulk header %q", line)
		}
		if n >= 0 {
			if _, err := io.CopyN(io.Discard, c.br, n+2); err != nil {
				return 0, err
			}
		}
		return '$', nil
	case '*':
		n, ok := parseInt(line[1:])
		if !ok {
			return 0, fmt.Errorf("server: bad array header %q", line)
		}
		for i := int64(0); i < n; i++ {
			if _, err := c.ReadReply(); err != nil {
				return 0, err
			}
		}
		return '*', nil
	}
	return 0, fmt.Errorf("server: unexpected reply line %q", line)
}

// readBulk consumes one reply that must be a bulk string and returns its
// payload.
func (c *Client) readBulk() ([]byte, error) {
	line, err := c.readLine()
	if err != nil {
		return nil, err
	}
	if line[0] == '-' {
		return nil, fmt.Errorf("server error: %s", line[1:])
	}
	if line[0] != '$' {
		return nil, fmt.Errorf("server: expected bulk reply, got %q", line)
	}
	n, ok := parseInt(line[1:])
	if !ok || n < 0 {
		return nil, fmt.Errorf("server: bad bulk header %q", line)
	}
	buf := make([]byte, n+2)
	if _, err := io.ReadFull(c.br, buf); err != nil {
		return nil, err
	}
	return buf[:n], nil
}

// readLine reads one CRLF-terminated header line (without the CRLF).
func (c *Client) readLine() ([]byte, error) {
	line, err := c.br.ReadSlice('\n')
	if err != nil {
		return nil, err
	}
	if len(line) < 3 || line[len(line)-2] != '\r' {
		return nil, fmt.Errorf("server: malformed reply line %q", line)
	}
	return line[:len(line)-2], nil
}

// Do round-trips one command and returns its reply type.
func (c *Client) Do(args ...string) (byte, error) {
	c.EnqueueCommand(args...)
	if err := c.Flush(); err != nil {
		return 0, err
	}
	return c.ReadReply()
}

// Auth authenticates the connection as a tenant.
func (c *Client) Auth(token string) error {
	kind, err := c.Do("AUTH", token)
	if err != nil {
		return err
	}
	if kind != '+' {
		return fmt.Errorf("server: AUTH reply type %q", kind)
	}
	return nil
}

// Stats fetches the server's STATS array into a map. Field values are the
// engine aggregate, connection-fabric counters and the connection's
// tenant breakdown (see docs/protocol.md).
func (c *Client) Stats() (map[string]int64, error) {
	c.EnqueueCommand("STATS")
	if err := c.Flush(); err != nil {
		return nil, err
	}
	head, err := c.readLine()
	if err != nil {
		return nil, err
	}
	if head[0] != '*' {
		return nil, fmt.Errorf("server: STATS reply %q", head)
	}
	n, ok := parseInt(head[1:])
	if !ok || n < 0 || n%2 != 0 {
		return nil, fmt.Errorf("server: STATS array header %q", head)
	}
	out := make(map[string]int64, n/2)
	for i := int64(0); i < n; i += 2 {
		name, err := c.readBulk()
		if err != nil {
			return nil, err
		}
		line, err := c.readLine()
		if err != nil {
			return nil, err
		}
		if line[0] != ':' {
			return nil, fmt.Errorf("server: STATS value %q", line)
		}
		v, ok := parseInt(line[1:])
		if !ok {
			return nil, fmt.Errorf("server: STATS value %q", line)
		}
		out[string(name)] = v
	}
	return out, nil
}
