package server

import (
	"bytes"
	"errors"
	"strconv"
)

// Parser limits. A command that exceeds them is a protocol error, not
// backpressure: the connection is told why and closed, so a misbehaving
// (or malicious) client cannot make the server buffer without bound.
const (
	// maxArgs bounds the element count of one RESP array command.
	maxArgs = 1024
	// maxBulk bounds one bulk-string argument's byte length.
	maxBulk = 512 * 1024
	// maxInline bounds an inline (plain-text) command line.
	maxInline = 64 * 1024
)

// Parse outcomes that are not commands.
var (
	// errIncomplete reports that the buffer ends mid-frame: the caller
	// should read more bytes and retry. Never sent to the client.
	errIncomplete = errors.New("resp: incomplete frame")
	// errOversized reports a frame past the size limits.
	errOversized = errors.New("resp: command exceeds size limits")
	// errProtocol reports bytes that are not RESP.
	errProtocol = errors.New("resp: protocol error")
)

// parseCommand decodes one client command from the front of buf: either a
// RESP array of bulk strings ("*2\r\n$3\r\nGET\r\n$1\r\n7\r\n") or an
// inline command ("GET 7\r\n"). It returns the argument slices (aliasing
// buf — valid only until the buffer is compacted or refilled), the number
// of bytes consumed, and an error. args is reused to keep the parse
// allocation-free; a nil error with zero args means an empty inline line
// was consumed and should be skipped. errIncomplete means no complete
// frame is buffered yet and nothing was consumed.
func parseCommand(buf []byte, args [][]byte) ([][]byte, int, error) {
	args = args[:0]
	if len(buf) == 0 {
		return args, 0, errIncomplete
	}
	if buf[0] != '*' {
		return parseInline(buf, args)
	}
	line, p, err := crlfLine(buf, 1)
	if err != nil {
		return args, 0, err
	}
	n, ok := parseInt(line)
	if !ok || n < 0 || n > maxArgs {
		return args, 0, errProtocol
	}
	for i := int64(0); i < n; i++ {
		if p >= len(buf) {
			return args, 0, errIncomplete
		}
		if buf[p] != '$' {
			return args, 0, errProtocol
		}
		line, next, err := crlfLine(buf, p+1)
		if err != nil {
			return args, 0, err
		}
		ln, ok := parseInt(line)
		if !ok || ln < 0 || ln > maxBulk {
			if ln > maxBulk {
				return args, 0, errOversized
			}
			return args, 0, errProtocol
		}
		end := next + int(ln)
		if end+2 > len(buf) {
			return args, 0, errIncomplete
		}
		if buf[end] != '\r' || buf[end+1] != '\n' {
			return args, 0, errProtocol
		}
		args = append(args, buf[next:end])
		p = end + 2
	}
	return args, p, nil
}

// parseInline decodes a plain-text command line, splitting on spaces and
// tabs. redis-cli and humans over netcat both speak this form.
func parseInline(buf []byte, args [][]byte) ([][]byte, int, error) {
	i := bytes.IndexByte(buf, '\n')
	if i < 0 {
		if len(buf) > maxInline {
			return args, 0, errOversized
		}
		return args, 0, errIncomplete
	}
	line := buf[:i]
	if len(line) > maxInline {
		return args, 0, errOversized
	}
	if len(line) > 0 && line[len(line)-1] == '\r' {
		line = line[:len(line)-1]
	}
	for len(line) > 0 {
		for len(line) > 0 && (line[0] == ' ' || line[0] == '\t') {
			line = line[1:]
		}
		if len(line) == 0 {
			break
		}
		j := 0
		for j < len(line) && line[j] != ' ' && line[j] != '\t' {
			j++
		}
		args = append(args, line[:j])
		line = line[j:]
	}
	return args, i + 1, nil
}

// crlfLine returns the bytes between p and the next CRLF, and the offset
// just past it. RESP frame headers are strictly CRLF-terminated. Headers
// are a handful of bytes, so a plain byte loop beats the vectorized
// IndexByte, whose call setup alone outweighs scanning such short spans.
func crlfLine(buf []byte, p int) ([]byte, int, error) {
	for i := p; i < len(buf); i++ {
		if buf[i] != '\n' {
			continue
		}
		if i == p || buf[i-1] != '\r' {
			return nil, 0, errProtocol
		}
		return buf[p : i-1], i + 1, nil
	}
	if len(buf)-p > maxInline {
		return nil, 0, errOversized
	}
	return nil, 0, errIncomplete
}

// parseInt decodes a decimal ASCII integer without allocating.
func parseInt(b []byte) (int64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	neg := false
	if b[0] == '-' {
		neg = true
		b = b[1:]
		if len(b) == 0 {
			return 0, false
		}
	}
	var n int64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		if n > (1<<62)/10 {
			return 0, false
		}
		n = n*10 + int64(c-'0')
	}
	if neg {
		n = -n
	}
	return n, true
}

// parseUint decodes a decimal ASCII uint64, rejecting overflow: numeric
// keys map to addresses directly, so "18446744073709551616" must hash
// instead of silently wrapping.
func parseUint(b []byte) (uint64, bool) {
	if len(b) == 0 || len(b) > 20 {
		return 0, false
	}
	var n uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		d := uint64(c - '0')
		if n > (1<<64-1-d)/10 {
			return 0, false
		}
		n = n*10 + d
	}
	return n, true
}

// Reply appenders. All write into a caller-owned buffer, so the serve loop
// accumulates a pipeline's replies and flushes once.

// appendSimple appends a simple-string reply ("+OK\r\n").
func appendSimple(out []byte, s string) []byte {
	out = append(out, '+')
	out = append(out, s...)
	return append(out, '\r', '\n')
}

// appendError appends an error reply ("-ERR ...\r\n").
func appendError(out []byte, msg string) []byte {
	out = append(out, '-')
	out = append(out, msg...)
	return append(out, '\r', '\n')
}

// appendInt appends an integer reply (":7\r\n").
func appendInt(out []byte, n int64) []byte {
	out = append(out, ':')
	out = strconv.AppendInt(out, n, 10)
	return append(out, '\r', '\n')
}

// appendBulkBytes appends a bulk-string reply ("$4\r\nDRAM\r\n").
func appendBulkBytes(out, b []byte) []byte {
	out = append(out, '$')
	out = strconv.AppendInt(out, int64(len(b)), 10)
	out = append(out, '\r', '\n')
	out = append(out, b...)
	return append(out, '\r', '\n')
}

// appendBulkString appends a bulk-string reply from a string.
func appendBulkString(out []byte, s string) []byte {
	out = append(out, '$')
	out = strconv.AppendInt(out, int64(len(s)), 10)
	out = append(out, '\r', '\n')
	out = append(out, s...)
	return append(out, '\r', '\n')
}

// appendArrayHeader appends an array reply header ("*2\r\n").
func appendArrayHeader(out []byte, n int) []byte {
	out = append(out, '*')
	out = strconv.AppendInt(out, int64(n), 10)
	return append(out, '\r', '\n')
}

// keyAddr maps a client key to an engine address: a decimal key is the
// address itself (so benchmark clients can replay trace addresses
// verbatim and hit the same pages the in-process loops do), anything else
// is FNV-1a hashed with the top 16 bits cleared so the derived page always
// fits the table's 48-bit page space.
func keyAddr(key []byte) uint64 {
	if n, ok := parseUint(key); ok {
		return n
	}
	h := uint64(14695981039346656037)
	for _, c := range key {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h >> 16
}
