// Package server exposes the tiered-memory engine over a RESP
// (redis-style) wire protocol, so remote clients — redis-cli,
// redis-benchmark, or the built-in benchmarking client in cmd/tierd —
// generate the load instead of in-process goroutines.
//
// The front end is a goroutine-per-connection TCP server behind a managed
// connection fabric: a bounded LRU connection map (accepting past the cap
// evicts the least-recently-active connection, so the clients actually
// talking keep their sockets) with a background reaper that closes
// connections idle past a timeout. Command parsing is allocation-free —
// argument slices alias the connection's read buffer — and requests are
// pipelined: every complete command in a read batch is parsed, dispatched
// into the engine's lock-free serve path, and answered in one write, so a
// depth-N pipeline costs one syscall pair instead of N.
//
// Each connection serves one tenant: AUTH maps a token to a
// tiered.TenantID (by explicit Config.Auth table or by tenant name via
// Engine.TenantByName), after which GET/SET/DEL run in that tenant's
// namespace against its DRAM quota. Shutdown drains gracefully — the
// listener closes first, in-flight pipelines finish and flush, and only
// then does the caller stop the engine's migration daemon.
package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hybridmem/internal/obs"
	"hybridmem/internal/tiered"
)

// Defaults for the zero Config fields.
const (
	// DefaultMaxConns bounds the connection map when Config.MaxConns is 0.
	DefaultMaxConns = 1024
	// DefaultIdleTimeout reaps connections silent this long when
	// Config.IdleTimeout is 0.
	DefaultIdleTimeout = 5 * time.Minute
	// DefaultReadBuffer is the initial per-connection read buffer size.
	DefaultReadBuffer = 16 * 1024
	// maxConnBuffer caps one connection's buffered partial frame: a
	// command that does not fit is a protocol error, so a stalled or
	// hostile client bounds the server's memory at
	// MaxConns * maxConnBuffer.
	maxConnBuffer = 1 << 20
)

// Config describes a Server. The zero value of every field is usable.
type Config struct {
	// Addr is the TCP listen address (default "127.0.0.1:6380").
	Addr string
	// MaxConns bounds the connection map; accepting past it evicts the
	// least-recently-active connection (default DefaultMaxConns).
	MaxConns int
	// IdleTimeout is how long a connection may stay silent before the
	// reaper closes it. 0 means DefaultIdleTimeout; negative disables
	// reaping.
	IdleTimeout time.Duration
	// ReapInterval is the reaper's sweep period (default IdleTimeout/4,
	// at least 10ms). Tests shorten it.
	ReapInterval time.Duration
	// Auth maps AUTH tokens to tenants. Nil falls back to resolving the
	// token as a tenant name via Engine.TenantByName, so a multi-tenant
	// tierd needs no extra table — tenants authenticate by name.
	Auth map[string]tiered.TenantID
	// RequireAuth rejects data commands (GET/SET/DEL/STATS) until a
	// successful AUTH. Engines with more than one tenant should set it:
	// without it every unauthenticated connection serves the default
	// tenant.
	RequireAuth bool
	// ReadBuffer is the initial per-connection read buffer size
	// (default DefaultReadBuffer); it grows as needed up to the 1 MiB
	// per-connection cap.
	ReadBuffer int
	// Loading, when non-nil and returning true, makes the server answer
	// data commands (GET/SET/DEL/STATS) with a redis-style -LOADING error
	// while the engine restores a persistence checkpoint. Control
	// commands (PING, AUTH, ECHO, INFO) still work, so clients and
	// readiness probes can wait the restore out on a live connection. The
	// function must be safe for concurrent use and cheap — it runs once
	// per read batch plus once per gated command.
	Loading func() bool
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:6380"
	}
	if c.MaxConns == 0 {
		c.MaxConns = DefaultMaxConns
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = DefaultIdleTimeout
	}
	if c.ReapInterval == 0 {
		c.ReapInterval = c.IdleTimeout / 4
		if c.ReapInterval < 10*time.Millisecond {
			c.ReapInterval = 10 * time.Millisecond
		}
	}
	if c.ReadBuffer == 0 {
		c.ReadBuffer = DefaultReadBuffer
	}
	return c
}

// Stats is a snapshot of the server's own counters; engine counters live
// in tiered.Stats.
type Stats struct {
	// Accepted counts connections ever accepted; Active is the current
	// connection count.
	Accepted, Active int64
	// Evicted counts connections closed by the LRU cap, Reaped by the
	// idle reaper.
	Evicted, Reaped int64
	// Commands counts commands dispatched; Pipelined counts the subset
	// that arrived in a read batch behind at least one other command.
	Commands, Pipelined int64
	// BatchedOps counts the GET/SET commands served through the engine's
	// batch API (run grouping); the rest went one at a time.
	BatchedOps int64
	// AuthFailures counts rejected AUTH attempts, ProtocolErrors
	// connections closed for malformed or oversized frames.
	AuthFailures, ProtocolErrors int64
}

// Server lifecycle states.
const (
	srvNew int32 = iota
	srvServing
	srvDraining
	srvClosed
)

// Server is a RESP front end over one tiered.Engine. Listen starts it;
// Shutdown drains it. The engine's lifecycle stays with the caller: it
// must be Started before Listen, and is stopped by the caller after
// Shutdown returns (drain first, then stop the daemon).
type Server struct {
	cfg    Config
	engine *tiered.Engine

	ln       net.Listener
	cm       *connMap
	nextID   atomic.Uint64
	state    atomic.Int32
	stopCh   chan struct{}
	acceptWG sync.WaitGroup
	reapWG   sync.WaitGroup
	connWG   sync.WaitGroup
	started  time.Time

	accepted       atomic.Int64
	active         atomic.Int64
	evicted        atomic.Int64
	reaped         atomic.Int64
	commands       atomic.Int64
	pipelined      atomic.Int64
	batchedOps     atomic.Int64
	authFailures   atomic.Int64
	protocolErrors atomic.Int64

	// Observability: per-command counters (striped by connection id) and
	// the read-batch handling histogram. Maintained unconditionally —
	// they are padded atomics — and exported via RegisterMetrics.
	cmds     cmdCounters
	batchDur *obs.Histogram
}

// New builds a server over an already-constructed engine.
func New(e *tiered.Engine, cfg Config) (*Server, error) {
	if e == nil {
		return nil, errors.New("server: nil engine")
	}
	cfg = cfg.withDefaults()
	if cfg.MaxConns < 1 {
		return nil, fmt.Errorf("server: MaxConns must be at least 1, got %d", cfg.MaxConns)
	}
	if cfg.ReadBuffer < 64 || cfg.ReadBuffer > maxConnBuffer {
		return nil, fmt.Errorf("server: ReadBuffer %d outside [64, %d]", cfg.ReadBuffer, maxConnBuffer)
	}
	return &Server{
		cfg:      cfg,
		engine:   e,
		cm:       newConnMap(cfg.MaxConns),
		cmds:     newCmdCounters(),
		batchDur: obs.NewHistogram(),
	}, nil
}

// Listen binds the configured address and starts the accept loop and the
// idle reaper in the background. It returns once the listener is live, so
// Addr is immediately meaningful (handy with ":0").
func (s *Server) Listen() error {
	if !s.state.CompareAndSwap(srvNew, srvServing) {
		return errors.New("server: already started")
	}
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		s.state.Store(srvClosed)
		return err
	}
	s.ln = ln
	s.stopCh = make(chan struct{})
	s.started = time.Now()
	s.acceptWG.Add(1)
	go s.acceptLoop()
	if s.cfg.IdleTimeout > 0 {
		s.reapWG.Add(1)
		go s.reapLoop()
	}
	return nil
}

// Addr returns the bound listen address (nil before Listen).
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() Stats {
	return Stats{
		Accepted:       s.accepted.Load(),
		Active:         s.active.Load(),
		Evicted:        s.evicted.Load(),
		Reaped:         s.reaped.Load(),
		Commands:       s.commands.Load(),
		Pipelined:      s.pipelined.Load(),
		BatchedOps:     s.batchedOps.Load(),
		AuthFailures:   s.authFailures.Load(),
		ProtocolErrors: s.protocolErrors.Load(),
	}
}

// Shutdown drains the server: stop accepting, interrupt every
// connection's next read so in-flight pipelines finish and flush, and
// wait for the handlers to exit — up to grace, after which the remaining
// connections are force-closed (and still waited for). The engine is not
// stopped here; the caller stops its daemon after Shutdown returns, so
// every served command's migration work is already enqueued.
func (s *Server) Shutdown(grace time.Duration) error {
	if !s.state.CompareAndSwap(srvServing, srvDraining) {
		return errors.New("server: not serving")
	}
	close(s.stopCh)
	s.ln.Close()
	s.acceptWG.Wait()
	s.reapWG.Wait()
	// Every registered connection gets its pending read interrupted;
	// handlers flush what they already parsed and exit. No new
	// connections can appear: the accept loop is done.
	for _, c := range s.cm.snapshot() {
		c.nc.SetReadDeadline(time.Now())
	}
	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	clean := true
	if grace > 0 {
		select {
		case <-done:
		case <-time.After(grace):
			clean = false
			for _, c := range s.cm.snapshot() {
				c.nc.Close()
			}
			<-done
		}
	} else {
		<-done
	}
	s.state.Store(srvClosed)
	if !clean {
		return fmt.Errorf("server: %v grace expired, remaining connections force-closed", grace)
	}
	return nil
}

// acceptLoop owns the listener: one goroutine per accepted connection,
// registered in the fabric (possibly evicting the coldest neighbor).
func (s *Server) acceptLoop() {
	defer s.acceptWG.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.stopCh:
				return // draining: the listener was closed on purpose
			default:
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return
		}
		c := &conn{
			id:         s.nextID.Add(1),
			nc:         nc,
			tenant:     tiered.DefaultTenant,
			lastActive: time.Now(),
			rbuf:       make([]byte, s.cfg.ReadBuffer),
		}
		s.accepted.Add(1)
		s.active.Add(1)
		if evicted := s.cm.add(c); evicted != nil {
			s.evicted.Add(1)
			evicted.kick("ERR connection evicted (server connection cap reached)")
		}
		s.connWG.Add(1)
		go s.handle(c)
	}
}

// reapLoop periodically closes connections idle past IdleTimeout.
func (s *Server) reapLoop() {
	defer s.reapWG.Done()
	t := time.NewTicker(s.cfg.ReapInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case now := <-t.C:
			for _, c := range s.cm.reapIdle(now.Add(-s.cfg.IdleTimeout)) {
				s.reaped.Add(1)
				c.kick("ERR connection closed (idle timeout)")
			}
		}
	}
}
