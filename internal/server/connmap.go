package server

import (
	"sync"
	"time"
)

// connMap is the server's managed connection fabric: a bounded registry of
// live connections threaded onto an intrusive LRU list. Accepting past the
// cap evicts the least-recently-active connection instead of refusing the
// newcomer — under a connection flood the clients actually talking keep
// their sockets — and the reaper closes connections idle past the
// configured timeout by walking the same list from its cold end, stopping
// at the first warm entry. Activity order and list order are kept
// identical by updating both under one mutex, once per read batch, so the
// fabric costs one uncontended lock per pipeline rather than per command.
type connMap struct {
	mu    sync.Mutex
	cap   int
	conns map[uint64]*conn
	// head is the most recently active connection, tail the least.
	head, tail *conn
}

// newConnMap builds a fabric bounded at cap connections (cap >= 1).
func newConnMap(cap int) *connMap {
	return &connMap{cap: cap, conns: make(map[uint64]*conn, cap)}
}

// add registers a connection as most-recent and returns the evicted
// least-recent connection if the map was at capacity, for the caller to
// close outside the lock.
func (m *connMap) add(c *conn) (evicted *conn) {
	m.mu.Lock()
	if len(m.conns) >= m.cap {
		evicted = m.tail
		m.unlink(evicted)
		delete(m.conns, evicted.id)
	}
	m.conns[c.id] = c
	m.pushFront(c)
	m.mu.Unlock()
	return evicted
}

// touch marks a connection most-recently-active. A connection that was
// concurrently evicted or removed stays out: touch must not resurrect it.
func (m *connMap) touch(c *conn, now time.Time) {
	m.mu.Lock()
	if _, ok := m.conns[c.id]; ok {
		c.lastActive = now
		if m.head != c {
			m.unlink(c)
			m.pushFront(c)
		}
	}
	m.mu.Unlock()
}

// remove unregisters a connection, reporting whether it was still
// registered (false when eviction or reaping got there first).
func (m *connMap) remove(c *conn) bool {
	m.mu.Lock()
	_, ok := m.conns[c.id]
	if ok {
		m.unlink(c)
		delete(m.conns, c.id)
	}
	m.mu.Unlock()
	return ok
}

// reapIdle removes and returns every connection whose last activity is
// before cutoff. The list is activity-ordered, so the walk starts at the
// cold tail and stops at the first warm connection. The caller closes the
// victims outside the lock.
func (m *connMap) reapIdle(cutoff time.Time) []*conn {
	var idle []*conn
	m.mu.Lock()
	for m.tail != nil && m.tail.lastActive.Before(cutoff) {
		c := m.tail
		m.unlink(c)
		delete(m.conns, c.id)
		idle = append(idle, c)
	}
	m.mu.Unlock()
	return idle
}

// snapshot returns the current connections (shutdown interrupts them all).
func (m *connMap) snapshot() []*conn {
	m.mu.Lock()
	out := make([]*conn, 0, len(m.conns))
	for _, c := range m.conns {
		out = append(out, c)
	}
	m.mu.Unlock()
	return out
}

// len returns the number of registered connections.
func (m *connMap) len() int {
	m.mu.Lock()
	n := len(m.conns)
	m.mu.Unlock()
	return n
}

// pushFront links c as the list head. Caller holds mu.
func (m *connMap) pushFront(c *conn) {
	c.prev = nil
	c.next = m.head
	if m.head != nil {
		m.head.prev = c
	}
	m.head = c
	if m.tail == nil {
		m.tail = c
	}
}

// unlink detaches c from the list. Caller holds mu.
func (m *connMap) unlink(c *conn) {
	if c.prev != nil {
		c.prev.next = c.next
	} else {
		m.head = c.next
	}
	if c.next != nil {
		c.next.prev = c.prev
	} else {
		m.tail = c.prev
	}
	c.prev, c.next = nil, nil
}
