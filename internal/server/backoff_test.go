package server

import (
	"context"
	"errors"
	"testing"
	"time"
)

// fakeClock records every sleep the retrier asks for and advances a
// virtual time, so the backoff schedule is asserted without real waiting.
type fakeClock struct {
	now    time.Duration
	sleeps []time.Duration
}

func (c *fakeClock) sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.sleeps = append(c.sleeps, d)
	c.now += d
	return nil
}

// TestBackoffSchedule runs the retrier against a dialer that fails a
// fixed number of times and checks the exact sleep sequence: exponential
// from Base by Factor, capped at Max, no jitter.
func TestBackoffSchedule(t *testing.T) {
	clock := &fakeClock{}
	fails := 7
	r := dialRetrier{
		bo: Backoff{Base: 10 * time.Millisecond, Max: 100 * time.Millisecond, Factor: 2, Jitter: 0}.withDefaults(),
		dial: func(string, time.Duration) (*Client, error) {
			if fails > 0 {
				fails--
				return nil, errors.New("refused")
			}
			return &Client{}, nil
		},
		sleep: clock.sleep,
		rand:  func() float64 { return 0 },
	}
	if _, err := r.retry(context.Background(), "x"); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		80 * time.Millisecond, 100 * time.Millisecond, 100 * time.Millisecond,
		100 * time.Millisecond,
	}
	if len(clock.sleeps) != len(want) {
		t.Fatalf("slept %d times (%v), want %d", len(clock.sleeps), clock.sleeps, len(want))
	}
	for i, d := range want {
		if clock.sleeps[i] != d {
			t.Fatalf("sleep %d = %v, want %v (full schedule %v)", i, clock.sleeps[i], d, clock.sleeps)
		}
	}
}

// TestBackoffJitter pins the jitter draw and checks the sleep bounds:
// every delay lands in [d·(1-Jitter), d], a zero draw leaves the delay
// whole, a near-full draw shortens it by almost the whole Jitter slice.
func TestBackoffJitter(t *testing.T) {
	const base = 40 * time.Millisecond // third attempt's pre-jitter delay
	for _, tc := range []struct {
		draw     float64
		min, max time.Duration
	}{
		{0, base, base},
		{0.5, 35 * time.Millisecond, 35 * time.Millisecond}, // 40ms - 0.5·0.25·40ms
		{0.999999, base - base/4, base - base/4 + time.Millisecond},
	} {
		clock := &fakeClock{}
		fails := 3
		r := dialRetrier{
			bo: Backoff{Base: 10 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0.25},
			dial: func(string, time.Duration) (*Client, error) {
				if fails > 0 {
					fails--
					return nil, errors.New("refused")
				}
				return &Client{}, nil
			},
			sleep: clock.sleep,
			rand:  func() float64 { return tc.draw },
		}
		if _, err := r.retry(context.Background(), "x"); err != nil {
			t.Fatal(err)
		}
		got := clock.sleeps[2]
		if got < tc.min || got > tc.max {
			t.Fatalf("draw %v: sleep = %v, want in [%v, %v]", tc.draw, got, tc.min, tc.max)
		}
	}
}

// TestBackoffContextCancel cancels mid-retry: the retrier must stop
// sleeping and surface both the context error and the last dial error.
func TestBackoffContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	clock := &fakeClock{}
	dials := 0
	r := dialRetrier{
		bo: Backoff{}.withDefaults(),
		dial: func(string, time.Duration) (*Client, error) {
			dials++
			if dials == 3 {
				cancel()
			}
			return nil, errors.New("refused")
		},
		sleep: clock.sleep,
		rand:  func() float64 { return 0 },
	}
	_, err := r.retry(ctx, "x")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if dials != 3 {
		t.Fatalf("dialed %d times after cancel, want 3", dials)
	}
}

// TestBackoffDefaults checks the zero value resolves to the documented
// schedule parameters.
func TestBackoffDefaults(t *testing.T) {
	b := Backoff{}.withDefaults()
	if b.Base != 25*time.Millisecond || b.Max != time.Second || b.Factor != 2 || b.Jitter != 0.2 {
		t.Fatalf("defaults = %+v", b)
	}
	if d := b.delay(30); d != b.Max {
		t.Fatalf("deep attempt delay = %v, want cap %v", d, b.Max)
	}
}
