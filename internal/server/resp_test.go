package server

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// collectArgs copies parsed args out of the aliasing buffer for
// comparison.
func collectArgs(args [][]byte) []string {
	out := make([]string, len(args))
	for i, a := range args {
		out[i] = string(a)
	}
	return out
}

func TestParseCommandTable(t *testing.T) {
	cases := []struct {
		name  string
		in    string
		want  []string
		n     int
		err   error
		fully bool // the whole input should be consumed
	}{
		{name: "array", in: "*2\r\n$3\r\nGET\r\n$2\r\n17\r\n", want: []string{"GET", "17"}, fully: true},
		{name: "array empty bulk", in: "*2\r\n$3\r\nGET\r\n$0\r\n\r\n", want: []string{"GET", ""}, fully: true},
		{name: "inline", in: "GET 17\r\n", want: []string{"GET", "17"}, fully: true},
		{name: "inline lf only", in: "PING\n", want: []string{"PING"}, fully: true},
		{name: "inline tabs and spaces", in: "SET \t k1   v1\r\n", want: []string{"SET", "k1", "v1"}, fully: true},
		{name: "inline empty line", in: "\r\n", want: []string{}, fully: true},
		{name: "empty buffer", in: "", err: errIncomplete},
		{name: "partial header", in: "*2\r\n$3\r\nGE", err: errIncomplete},
		{name: "partial bulk body", in: "*1\r\n$5\r\nhel", err: errIncomplete},
		{name: "partial trailing crlf", in: "*1\r\n$3\r\nGET\r", err: errIncomplete},
		{name: "inline no newline", in: "GET 17", err: errIncomplete},
		{name: "negative argc", in: "*-1\r\n", err: errProtocol},
		{name: "huge argc", in: "*99999\r\n", err: errProtocol},
		{name: "bad bulk marker", in: "*1\r\n:3\r\n", err: errProtocol},
		{name: "bulk missing crlf", in: "*1\r\n$3\r\nGETX\r\n", err: errProtocol},
		{name: "lf without cr in header", in: "*1\n$3\r\nGET\r\n", err: errProtocol},
		{name: "oversized bulk", in: fmt.Sprintf("*1\r\n$%d\r\n", maxBulk+1), err: errOversized},
		{name: "oversized inline", in: strings.Repeat("a", maxInline+1), err: errOversized},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			args, n, err := parseCommand([]byte(tc.in), nil)
			if err != tc.err {
				t.Fatalf("err = %v, want %v", err, tc.err)
			}
			if err != nil {
				if err == errIncomplete && n != 0 {
					t.Fatalf("incomplete frame consumed %d bytes", n)
				}
				return
			}
			if got := collectArgs(args); len(got) != len(tc.want) || (len(got) > 0 && strings.Join(got, "\x00") != strings.Join(tc.want, "\x00")) {
				t.Fatalf("args = %q, want %q", got, tc.want)
			}
			if tc.fully && n != len(tc.in) {
				t.Fatalf("consumed %d of %d bytes", n, len(tc.in))
			}
		})
	}
}

// TestParseCommandEveryPrefix asserts that every strict prefix of a valid
// frame parses as incomplete, never as an error or a truncated command —
// the property that makes partial TCP reads safe.
func TestParseCommandEveryPrefix(t *testing.T) {
	frame := "*3\r\n$3\r\nSET\r\n$4\r\nkey1\r\n$6\r\nvalue1\r\n"
	for i := 0; i < len(frame); i++ {
		_, n, err := parseCommand([]byte(frame[:i]), nil)
		if err != errIncomplete || n != 0 {
			t.Fatalf("prefix %d: err=%v n=%d, want errIncomplete, 0", i, err, n)
		}
	}
	args, n, err := parseCommand([]byte(frame), nil)
	if err != nil || n != len(frame) {
		t.Fatalf("full frame: err=%v n=%d", err, n)
	}
	if got := collectArgs(args); got[0] != "SET" || got[1] != "key1" || got[2] != "value1" {
		t.Fatalf("args = %q", got)
	}
}

// TestParseCommandPipelined streams many commands through the parser in
// randomized chunk sizes, exercising the compact-and-refill loop the
// connection handler runs. Every command must come out exactly once, in
// order, regardless of how the stream is fragmented.
func TestParseCommandPipelined(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var stream []byte
	var want []string
	for i := 0; i < 500; i++ {
		switch rng.Intn(3) {
		case 0:
			stream = append(stream, fmt.Sprintf("*2\r\n$3\r\nGET\r\n$%d\r\n%d\r\n", len(fmt.Sprint(i)), i)...)
			want = append(want, fmt.Sprintf("GET %d", i))
		case 1:
			stream = append(stream, fmt.Sprintf("*3\r\n$3\r\nSET\r\n$%d\r\n%d\r\n$1\r\nx\r\n", len(fmt.Sprint(i)), i)...)
			want = append(want, fmt.Sprintf("SET %d x", i))
		case 2:
			stream = append(stream, fmt.Sprintf("PING msg%d\r\n", i)...)
			want = append(want, fmt.Sprintf("PING msg%d", i))
		}
	}
	var got []string
	buf := make([]byte, 0, 256)
	var args [][]byte
	pos := 0
	for pos < len(stream) || len(buf) > 0 {
		// Refill with a random-sized chunk.
		if pos < len(stream) {
			n := 1 + rng.Intn(37)
			if pos+n > len(stream) {
				n = len(stream) - pos
			}
			buf = append(buf, stream[pos:pos+n]...)
			pos += n
		}
		for {
			var n int
			var err error
			args, n, err = parseCommand(buf, args[:0])
			if err == errIncomplete {
				break
			}
			if err != nil {
				t.Fatalf("parse error mid-stream: %v", err)
			}
			if len(args) > 0 {
				got = append(got, strings.Join(collectArgs(args), " "))
			}
			buf = buf[:copy(buf, buf[n:])]
		}
		if pos == len(stream) && len(buf) > 0 {
			t.Fatalf("stream exhausted with %d unparsed bytes: %q", len(buf), buf)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d commands, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("command %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestKeyAddr(t *testing.T) {
	if got := keyAddr([]byte("4096")); got != 4096 {
		t.Fatalf("numeric key mapped to %d", got)
	}
	if got := keyAddr([]byte("0")); got != 0 {
		t.Fatalf("zero key mapped to %d", got)
	}
	// Overflowing decimals and non-numeric keys hash; the result must be
	// stable and fit the page space after the engine divides by page
	// size.
	h1 := keyAddr([]byte("user:1001"))
	h2 := keyAddr([]byte("user:1001"))
	h3 := keyAddr([]byte("user:1002"))
	if h1 != h2 {
		t.Fatal("hashing is not stable")
	}
	if h1 == h3 {
		t.Fatal("distinct keys collided (astronomically unlikely)")
	}
	if h1>>48 != 0 {
		t.Fatalf("hashed key %x exceeds the 48-bit page space", h1)
	}
	over := keyAddr([]byte("18446744073709551616")) // 2^64, must hash not wrap
	if over == 0 {
		t.Fatal("overflowing decimal wrapped to 0")
	}
}

func TestParseIntBounds(t *testing.T) {
	if _, ok := parseInt([]byte("")); ok {
		t.Fatal("empty parsed")
	}
	if n, ok := parseInt([]byte("-42")); !ok || n != -42 {
		t.Fatalf("got %d %v", n, ok)
	}
	if _, ok := parseInt([]byte("12a")); ok {
		t.Fatal("non-digit parsed")
	}
	if _, ok := parseUint([]byte("18446744073709551615")); !ok {
		t.Fatal("max uint64 rejected")
	}
	if _, ok := parseUint([]byte("18446744073709551616")); ok {
		t.Fatal("2^64 accepted")
	}
}

func BenchmarkRESPParse(b *testing.B) {
	frame := []byte("*3\r\n$3\r\nSET\r\n$8\r\n12345678\r\n$1\r\nx\r\n")
	var args [][]byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		args, _, err = parseCommand(frame, args[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}
