package sim

import (
	"math"
	"math/rand"
	"testing"

	"hybridmem/internal/clockdwf"
	"hybridmem/internal/core"
	"hybridmem/internal/memspec"
	"hybridmem/internal/policy"
	"hybridmem/internal/trace"
)

// addr returns a line-aligned address inside the given page.
func addr(page uint64) uint64 { return page*4096 + 64 }

func rec(page uint64, op trace.Op, gap uint32) trace.Record {
	return trace.Record{Addr: addr(page), Op: op, GapNS: gap}
}

func TestRunRejectsBadSpec(t *testing.T) {
	p, _ := policy.NewDRAMOnly(2)
	spec := memspec.Default()
	spec.Geometry.LineSizeBytes = 0
	if _, err := Run(trace.NewSliceSource(nil), p, spec, Options{}); err == nil {
		t.Error("invalid spec should error")
	}
}

func TestCountsDRAMOnly(t *testing.T) {
	p, _ := policy.NewDRAMOnly(2)
	spec := memspec.Default()
	recs := []trace.Record{
		rec(1, trace.OpRead, 100), // fault
		rec(1, trace.OpWrite, 50), // DRAM write hit
		rec(2, trace.OpRead, 0),   // fault
		rec(1, trace.OpRead, 25),  // DRAM read hit
		rec(3, trace.OpRead, 0),   // fault, evicts 2
	}
	r, err := Run(trace.NewSliceSource(recs), p, spec, Options{Shadow: true, CheckEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := r.Counts
	if c.Accesses != 5 || c.Faults != 3 || c.FaultsToDRAM != 3 {
		t.Errorf("accesses/faults = %d/%d/%d", c.Accesses, c.Faults, c.FaultsToDRAM)
	}
	if c.ReadsDRAM != 1 || c.WritesDRAM != 1 {
		t.Errorf("DRAM hits = %d/%d", c.ReadsDRAM, c.WritesDRAM)
	}
	if c.EvictionsDRAM != 1 {
		t.Errorf("evictions = %d", c.EvictionsDRAM)
	}
	if c.TotalGapNS != 175 {
		t.Errorf("gap = %v", c.TotalGapNS)
	}
	// Service time: 3 faults * 5ms + 1 read * 50 + 1 write * 50.
	want := 3*5e6 + 100.0
	if math.Abs(r.ServiceNS-want) > 1e-9 {
		t.Errorf("service = %v, want %v", r.ServiceNS, want)
	}
	if r.RuntimeNS != r.ServiceNS+175 {
		t.Errorf("runtime = %v", r.RuntimeNS)
	}
}

func TestCountsHybridMigration(t *testing.T) {
	// Proposed scheme with write threshold 1 and full-queue windows:
	// the 2nd write to an NVM page promotes it.
	s, err := core.New(1, 2, core.Config{ReadPerc: 1, WritePerc: 1, ReadThreshold: 100, WriteThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	spec := memspec.Default()
	recs := []trace.Record{
		rec(1, trace.OpRead, 0),  // fault -> DRAM
		rec(2, trace.OpRead, 0),  // fault -> DRAM, 1 demoted to NVM
		rec(1, trace.OpWrite, 0), // NVM write hit (counter 1)
		rec(1, trace.OpWrite, 0), // NVM write hit (counter 2 > 1): promote, demote 2
	}
	r, err := Run(trace.NewSliceSource(recs), s, spec, Options{Shadow: true, CheckEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := r.Counts
	if c.WritesNVM != 2 {
		t.Errorf("NVM writes = %d, want 2", c.WritesNVM)
	}
	if c.Promotions != 1 || c.Demotions != 2 || c.DemotionsFault != 1 || c.DemotionsPromo != 1 {
		t.Errorf("moves = P%d D%d (f%d p%d)", c.Promotions, c.Demotions, c.DemotionsFault, c.DemotionsPromo)
	}
	// Wear: 2 NVM write hits + 2 page copies into NVM * 64 lines.
	if r.NVMWear.Total != 2+2*64 {
		t.Errorf("wear = %d, want %d", r.NVMWear.Total, 2+2*64)
	}
	// Service: 2 faults*5ms + 2 NVM writes*350 + 1 promo*64*(100+50) +
	// 1 promotion-forced demotion*64*(50+350); the fault-forced demotion
	// overlaps the disk DMA and adds no time.
	want := 2*5e6 + 2*350 + 1*64*150 + 1*64*400.0
	if math.Abs(r.ServiceNS-want) > 1e-6 {
		t.Errorf("service = %v, want %v", r.ServiceNS, want)
	}
}

func TestHitsPlusFaultsEqualsAccesses(t *testing.T) {
	policies := map[string]policy.Policy{}
	if p, err := policy.NewDRAMOnly(30); err == nil {
		policies["dram"] = p
	}
	if p, err := policy.NewNVMOnly(30); err == nil {
		policies["nvm"] = p
	}
	if p, err := clockdwf.New(3, 27, clockdwf.DefaultConfig()); err == nil {
		policies["clockdwf"] = p
	}
	if p, err := core.New(3, 27, core.DefaultConfig()); err == nil {
		policies["core"] = p
	}
	for name, p := range policies {
		rng := rand.New(rand.NewSource(1))
		recs := make([]trace.Record, 4000)
		for i := range recs {
			recs[i] = rec(uint64(rng.Intn(40)), trace.Op(rng.Intn(2)), uint32(rng.Intn(100)))
		}
		r, err := Run(trace.NewSliceSource(recs), p, memspec.Default(),
			Options{Shadow: true, CheckEvery: 100})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		c := r.Counts
		if c.Hits()+c.Faults != c.Accesses {
			t.Errorf("%s: hits %d + faults %d != accesses %d", name, c.Hits(), c.Faults, c.Accesses)
		}
		if c.FaultsToDRAM+c.FaultsToNVM != c.Faults {
			t.Errorf("%s: fault split broken", name)
		}
		if c.DemotionsFault+c.DemotionsPromo != c.Demotions {
			t.Errorf("%s: demotion split broken", name)
		}
	}
}

func TestShadowCatchesNothingOnHealthyPolicies(t *testing.T) {
	// The shadow map plus per-access checks passing over a long random run
	// is the integration-level proof that policies report truthful moves.
	s, _ := core.New(4, 16, core.DefaultConfig())
	rng := rand.New(rand.NewSource(2))
	recs := make([]trace.Record, 20000)
	for i := range recs {
		page := uint64(rng.Intn(30))
		if rng.Intn(10) < 7 {
			page = uint64(rng.Intn(8))
		}
		recs[i] = rec(page, trace.Op(rng.Intn(2)), 0)
	}
	if _, err := Run(trace.NewSliceSource(recs), s, memspec.Default(),
		Options{Shadow: true, CheckEvery: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyTraceRuns(t *testing.T) {
	p, _ := policy.NewDRAMOnly(2)
	r, err := Run(trace.NewSliceSource(nil), p, memspec.Default(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Counts.Accesses != 0 || r.RuntimeNS != 0 {
		t.Errorf("empty run: %+v", r)
	}
}

func TestSampling(t *testing.T) {
	p, _ := policy.NewDRAMOnly(16)
	rng := rand.New(rand.NewSource(8))
	recs := make([]trace.Record, 1000)
	for i := range recs {
		recs[i] = rec(uint64(rng.Intn(20)), trace.OpRead, 0)
	}
	r, err := Run(trace.NewSliceSource(recs), p, memspec.Default(),
		Options{SampleEvery: 250})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Samples) != 4 {
		t.Fatalf("samples = %d, want 4", len(r.Samples))
	}
	for i, s := range r.Samples {
		if s.Accesses != int64(250*(i+1)) {
			t.Errorf("sample %d at %d accesses", i, s.Accesses)
		}
		if i > 0 {
			prev := r.Samples[i-1]
			if s.Faults < prev.Faults || s.HitsDRAM < prev.HitsDRAM {
				t.Error("cumulative counters went backwards")
			}
		}
	}
	// No sampling requested -> no samples.
	p2, _ := policy.NewDRAMOnly(16)
	r2, _ := Run(trace.NewSliceSource(recs), p2, memspec.Default(), Options{})
	if r2.Samples != nil {
		t.Error("unexpected samples")
	}
}

func TestStaticPartitionThroughSim(t *testing.T) {
	p, err := policy.NewStaticPartition(4, 16)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	recs := make([]trace.Record, 5000)
	for i := range recs {
		recs[i] = rec(uint64(rng.Intn(30)), trace.Op(rng.Intn(2)), 0)
	}
	r, err := Run(trace.NewSliceSource(recs), p, memspec.Default(),
		Options{Shadow: true, CheckEvery: 500})
	if err != nil {
		t.Fatal(err)
	}
	if r.Counts.Promotions != 0 || r.Counts.Demotions != 0 {
		t.Error("static partition must never migrate")
	}
}
