// Package sim drives a memory-access trace through a placement policy and
// accounts every event the paper's performance and power models need:
// hit/miss counts per zone and request kind, page movements by reason, CPU
// gap time, simulated wall-clock time, and NVM wear.
//
// The simulator charges time the way Section II-A models it: hits cost the
// zone's read/write latency, page faults cost one disk access (the page copy
// itself overlaps with the DMA transfer), and each migration costs
// PageFactor line reads on the source plus PageFactor line writes on the
// destination. Energy is not accumulated here; package model derives it from
// the counts via Eq. 2, and tests verify the two views agree by identity.
package sim

import (
	"fmt"

	"hybridmem/internal/memspec"
	"hybridmem/internal/mm"
	"hybridmem/internal/policy"
	"hybridmem/internal/trace"
)

// Counts is the raw event tally of one simulation run.
type Counts struct {
	// Accesses is the total number of trace records serviced.
	Accesses int64
	// ReadsDRAM/WritesDRAM/ReadsNVM/WritesNVM count *hit* accesses serviced
	// by each zone. Faulting accesses are counted separately.
	ReadsDRAM, WritesDRAM int64
	ReadsNVM, WritesNVM   int64
	// Faults counts page faults; FaultsToDRAM/FaultsToNVM split them by the
	// zone the page was loaded into.
	Faults                    int64
	FaultsToDRAM, FaultsToNVM int64
	// Promotions counts NVM->DRAM page migrations (the model's PMigD
	// numerator); Demotions counts DRAM->NVM migrations (PMigN), split by
	// what forced them.
	Promotions     int64
	Demotions      int64
	DemotionsFault int64
	DemotionsPromo int64
	// EvictionsDRAM/EvictionsNVM count memory->disk evictions by source.
	EvictionsDRAM, EvictionsNVM int64
	// DemotionsClean counts free DRAM->NVM moves: clean cache-copy
	// invalidations where the NVM backing copy is still valid (the
	// DRAM-as-cache baseline). They cost no time, energy or wear and are
	// excluded from Demotions.
	DemotionsClean int64
	// TotalGapNS accumulates the trace's CPU execution gaps.
	TotalGapNS float64
}

// Hits returns the number of non-faulting accesses.
func (c Counts) Hits() int64 {
	return c.ReadsDRAM + c.WritesDRAM + c.ReadsNVM + c.WritesNVM
}

// HitsDRAM returns hits serviced by DRAM.
func (c Counts) HitsDRAM() int64 { return c.ReadsDRAM + c.WritesDRAM }

// HitsNVM returns hits serviced by NVM.
func (c Counts) HitsNVM() int64 { return c.ReadsNVM + c.WritesNVM }

// Result is the outcome of one simulation run.
type Result struct {
	Policy string
	Counts Counts
	// ServiceNS is the total memory service time: hit latencies, disk
	// stalls and migration copies. AMAT (Eq. 1) equals ServiceNS/Accesses.
	ServiceNS float64
	// RuntimeNS is the simulated wall-clock time: CPU gaps plus ServiceNS.
	// Eq. 3 prorates static power over it.
	RuntimeNS float64
	// NVMWear is the per-frame wear summary at the end of the run.
	NVMWear mm.WearStats
	// Samples holds the periodic snapshots requested via
	// Options.SampleEvery (nil when sampling is off).
	Samples []Sample
	// DRAMPages/NVMPages record the simulated memory provisioning, for the
	// static power term.
	DRAMPages, NVMPages int
}

// Options control optional validation and sampling during a run.
type Options struct {
	// CheckEvery runs the policy's physical-memory invariant checks every N
	// accesses (0 disables them; they are O(resident pages)).
	CheckEvery int
	// Shadow maintains an independent page-location map and validates every
	// reported move against it. Used by integration tests.
	Shadow bool
	// SampleEvery records a cumulative counter snapshot every N accesses
	// (0 disables sampling). Samples expose behaviour over time, e.g. the
	// adaptive controller's convergence.
	SampleEvery int
}

// Sample is a cumulative counter snapshot taken mid-run.
type Sample struct {
	Accesses   int64
	HitsDRAM   int64
	Promotions int64
	Demotions  int64
	Faults     int64
}

// invariantChecker is implemented by policies that can self-validate.
type invariantChecker interface{ CheckInvariants() error }

// Run services every record of src with p and returns the accounting.
func Run(src trace.Source, p policy.Policy, spec memspec.Spec, opts Options) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	pf := float64(spec.Geometry.PageFactor())
	pfLines := uint64(spec.Geometry.PageFactor())
	pageSize := spec.Geometry.PageSizeBytes
	sys := p.System()
	res := &Result{
		Policy:    p.Name(),
		DRAMPages: sys.Cap(mm.LocDRAM),
		NVMPages:  sys.Cap(mm.LocNVM),
	}
	c := &res.Counts

	promoteNS := pf * (spec.NVM.ReadLatencyNS + spec.DRAM.WriteLatencyNS)
	demoteNS := pf * (spec.DRAM.ReadLatencyNS + spec.NVM.WriteLatencyNS)

	var shadow map[uint64]mm.Location
	if opts.Shadow {
		shadow = make(map[uint64]mm.Location)
	}

	for {
		rec, ok := src.Next()
		if !ok {
			break
		}
		page := rec.Page(pageSize)
		// Capture the frame a write lands on before the policy runs: the
		// access may trigger the page's own migration, and the wear belongs
		// to the frame the page occupied when the write was serviced.
		var preFrame mm.Frame
		var preResident bool
		if rec.Op == trace.OpWrite {
			preFrame, preResident = sys.FrameOf(page)
		}
		r, err := p.Access(page, rec.Op)
		if err != nil {
			return nil, fmt.Errorf("sim: access %d: %w", c.Accesses, err)
		}
		c.Accesses++
		c.TotalGapNS += float64(rec.GapNS)

		if r.Fault {
			c.Faults++
			res.ServiceNS += spec.Disk.AccessLatencyNS
			switch r.ServedFrom {
			case mm.LocDRAM:
				c.FaultsToDRAM++
			case mm.LocNVM:
				c.FaultsToNVM++
			default:
				return nil, fmt.Errorf("sim: fault served from %v", r.ServedFrom)
			}
		} else {
			switch {
			case r.ServedFrom == mm.LocDRAM && rec.Op == trace.OpRead:
				c.ReadsDRAM++
				res.ServiceNS += spec.DRAM.ReadLatencyNS
			case r.ServedFrom == mm.LocDRAM:
				c.WritesDRAM++
				res.ServiceNS += spec.DRAM.WriteLatencyNS
			case r.ServedFrom == mm.LocNVM && rec.Op == trace.OpRead:
				c.ReadsNVM++
				res.ServiceNS += spec.NVM.ReadLatencyNS
			case r.ServedFrom == mm.LocNVM:
				c.WritesNVM++
				res.ServiceNS += spec.NVM.WriteLatencyNS
				// A write serviced in NVM wears by one line the frame the
				// page occupied at service time (it may have migrated away
				// within this very access).
				if !preResident || preFrame.Zone != mm.LocNVM {
					return nil, fmt.Errorf("sim: NVM write hit on page %d not previously in NVM", page)
				}
				if err := sys.AddWearFrame(preFrame, 1); err != nil {
					return nil, fmt.Errorf("sim: %w", err)
				}
			default:
				return nil, fmt.Errorf("sim: hit served from %v", r.ServedFrom)
			}
		}

		for _, m := range r.Moves {
			if shadow != nil {
				if got := shadow[m.Page]; got != m.From {
					return nil, fmt.Errorf("sim: move %+v but shadow says page at %s", m, got)
				}
				shadow[m.Page] = m.To
			}
			switch {
			case m.From == mm.LocNVM && m.To == mm.LocDRAM:
				c.Promotions++
				res.ServiceNS += promoteNS
			case m.From == mm.LocDRAM && m.To == mm.LocNVM && m.Reason == policy.ReasonDemoteClean:
				// A clean cache invalidation: the NVM copy is already
				// up to date, nothing is transferred.
				c.DemotionsClean++
			case m.From == mm.LocDRAM && m.To == mm.LocNVM:
				c.Demotions++
				if m.Reason == policy.ReasonDemoteFault {
					// The eviction copy a fault forces overlaps the 5 ms
					// disk transfer (the paper's DMA-overlap argument for
					// fault-path page writes, Section II-A), so it costs
					// energy and wear but no additional stall time.
					c.DemotionsFault++
				} else {
					c.DemotionsPromo++
					res.ServiceNS += demoteNS
				}
				if err := sys.AddWear(m.Page, pfLines); err != nil {
					return nil, fmt.Errorf("sim: %w", err)
				}
			case m.From == mm.LocDisk && m.To == mm.LocNVM:
				// Page-fault load: PageFactor line writes into NVM. The
				// copy overlaps the disk transfer, so no extra time.
				if err := sys.AddWear(m.Page, pfLines); err != nil {
					return nil, fmt.Errorf("sim: %w", err)
				}
			case m.From == mm.LocDisk && m.To == mm.LocDRAM:
				// Page-fault load into DRAM: energy accounted by Eq. 2,
				// no wear tracking for DRAM.
			case m.To == mm.LocDisk && m.From == mm.LocDRAM:
				c.EvictionsDRAM++
			case m.To == mm.LocDisk && m.From == mm.LocNVM:
				c.EvictionsNVM++
			default:
				return nil, fmt.Errorf("sim: unexpected move %+v", m)
			}
		}

		if opts.SampleEvery > 0 && c.Accesses%int64(opts.SampleEvery) == 0 {
			res.Samples = append(res.Samples, Sample{
				Accesses:   c.Accesses,
				HitsDRAM:   c.HitsDRAM(),
				Promotions: c.Promotions,
				Demotions:  c.Demotions,
				Faults:     c.Faults,
			})
		}

		if opts.CheckEvery > 0 && c.Accesses%int64(opts.CheckEvery) == 0 {
			if ic, ok := p.(invariantChecker); ok {
				if err := ic.CheckInvariants(); err != nil {
					return nil, fmt.Errorf("sim: after %d accesses: %w", c.Accesses, err)
				}
			} else if err := sys.CheckInvariants(); err != nil {
				return nil, fmt.Errorf("sim: after %d accesses: %w", c.Accesses, err)
			}
		}
	}

	res.RuntimeNS = res.ServiceNS + c.TotalGapNS
	res.NVMWear = sys.Wear(mm.LocNVM)
	return res, nil
}
