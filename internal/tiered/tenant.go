package tiered

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// TenantID names one tenant of a multi-tenant engine. Tenants are
// namespaces over the page keyspace: the same page number under two
// tenants is two distinct pages, so consolidated workloads cannot trample
// each other's windowed counters or CLOCK reference bits. The ID is folded
// into the high bits of every table key.
type TenantID uint16

// DefaultTenant is the tenant a single-tenant engine serves. Serve (as
// opposed to ServeTenant) always addresses it, and with only the default
// tenant configured the engine behaves exactly like the pre-tenant,
// single-namespace engine.
const DefaultTenant TenantID = 0

const (
	// pageBits is the page-number width of a table key; the 16 bits above
	// hold the TenantID. Page numbers must fit: with 4 KiB pages that is a
	// 1 EiB per-tenant address space.
	pageBits = 48
	// maxTablePage is the largest page number a key can carry.
	maxTablePage = uint64(1)<<pageBits - 1
)

// tableKey folds a tenant and a page number into one namespaced key.
// Tenant 0 maps page to itself, so single-tenant keys are bit-identical to
// the pre-tenant table's.
func tableKey(t TenantID, page uint64) uint64 {
	return uint64(t)<<pageBits | page
}

// splitKey recovers the tenant and page number from a table key.
func splitKey(k uint64) (TenantID, uint64) {
	return TenantID(k >> pageBits), k & maxTablePage
}

// TenantConfig describes one tenant of an engine.
type TenantConfig struct {
	// ID is the tenant's namespace; IDs must be unique within an engine.
	ID TenantID
	// Name labels the tenant in reports. Empty defaults to "tenant-<ID>".
	Name string
	// DRAMQuota is the tenant's dedicated DRAM frame budget. DRAM frames
	// covered by no quota form the shared spill pool: a tenant's DRAM
	// residency may grow to DRAMQuota + spill, never beyond. Frames above
	// the quota are borrowed from the pool one token at a time, so the
	// tenants' collective borrowing never exceeds the pool either — a
	// tenant that stays within its quota always gets a frame without
	// waiting on (or demoting) anyone else.
	//
	// On a multi-node topology the quota is apportioned across nodes in
	// proportion to each node's share of DRAM: the tenant's dedicated
	// frames on node n are DRAMQuota * nodeDRAM(n)/totalDRAM (remainders
	// to earlier nodes), and a frame above the node share borrows a spill
	// token — the spill pool is borrowable cross-node. On a single node
	// this reduces exactly to the flat quota.
	DRAMQuota int
	// Priority weights the tenant's share of the daemon's promotion
	// budget: the scan interleaves candidates Priority-per-round instead
	// of one-per-round, so a priority-2 tenant gets twice the migration
	// bandwidth of a priority-1 neighbor when both have more candidates
	// than the budget. 0 defaults to 1 (the equal-share round-robin);
	// negative is rejected.
	Priority int
}

// TenantStats is a snapshot of one tenant's counters: the per-tenant view
// of the engine-wide Stats. The Resident and quota fields are levels, the
// rest are cumulative event counts.
type TenantStats struct {
	ID   TenantID
	Name string

	Accesses           int64
	HitsDRAM, HitsNVM  int64
	Faults             int64
	Promotions         int64
	Demotions          int64
	Evictions          int64
	ResidentDRAM       int64
	DRAMQuota, DRAMCap int64
	// Priority is the tenant's promotion-interleave weight.
	Priority int
	// NodeQuota and NodeResidentDRAM are the per-node apportionment of
	// DRAMQuota and the tenant's current DRAM residency on each node, in
	// node order (a single-node engine reports one-element slices equal to
	// DRAMQuota and ResidentDRAM).
	NodeQuota        []int64
	NodeResidentDRAM []int64
}

// Hits returns the tenant's non-faulting accesses.
func (s TenantStats) Hits() int64 { return s.HitsDRAM + s.HitsNVM }

// Sub returns the event-count deltas since prev. Levels (residency and the
// quota geometry) are carried over unchanged.
func (s TenantStats) Sub(prev TenantStats) TenantStats {
	d := s
	d.Accesses -= prev.Accesses
	d.HitsDRAM -= prev.HitsDRAM
	d.HitsNVM -= prev.HitsNVM
	d.Faults -= prev.Faults
	d.Promotions -= prev.Promotions
	d.Demotions -= prev.Demotions
	d.Evictions -= prev.Evictions
	return d
}

// tenantCell is one stripe of a tenant's per-access counters. Serves
// within the same stripe share the line; stripes are padded apart so cores
// serving different pages never contend on tenant accounting.
type tenantCell struct {
	accesses atomic.Int64
	hitsDRAM atomic.Int64
	hitsNVM  atomic.Int64
	_        [104]byte
}

// tenantCounters is one tenant's rare-path atomic tally block. Each field
// sits alone on a cache line (padCounter) so a burst of faults on one
// tenant does not invalidate its neighbors' lines; the per-access counters
// live in the striped cells instead.
type tenantCounters struct {
	faults     padCounter
	promotions padCounter
	demotions  padCounter
	evictions  padCounter
}

// tenantState is the engine's per-tenant bookkeeping: the DRAM quota
// geometry and occupancy, the tenant's own policy instance (so adaptive
// threshold tuning is independent per tenant), and the counters the scan
// epochs and reports read.
type tenantState struct {
	id TenantID
	// idx is the tenant's position in the engine's ID-sorted tenant list —
	// the index the per-node scan scratch is addressed by.
	idx   int
	name  string
	quota int64
	// cap is quota + spill: the hard bound on the tenant's DRAM residency.
	cap int64
	// priority is the tenant's promotion-interleave weight (>= 1).
	priority int
	// pol is the tenant's migration-decision plug (nil in synchronous
	// mode, where the single backing policy decides for the one tenant).
	pol OnlinePolicy

	// nodeQuota apportions the tenant's DRAM quota across nodes in
	// proportion to each node's DRAM share; it sums to quota. Immutable
	// after New.
	nodeQuota []int64

	// resMu serializes the tenant's DRAM reservations and releases so the
	// quota-vs-borrowed classification of each frame is exact (frames
	// above a node share hold spill tokens). Only the fault and migration
	// paths take it; hits never reserve.
	resMu    sync.Mutex
	_        [48]byte
	dramUsed atomic.Int64
	_        [56]byte
	// nodeUsed is the tenant's DRAM residency per node (summing to
	// dramUsed). Mutated only under resMu; atomic so reports and the
	// victim-targeting paths read it lock-free.
	nodeUsed []atomic.Int64
	// cells stripes the tenant's per-access counters; the engine indexes
	// them by the same key-derived stripe as its own serve cells and
	// serveTotals sums them lazily for reports.
	cells []tenantCell
	c     tenantCounters
	// lastEpoch is the previous scan epoch's cumulative counters, guarded
	// by the engine's scanMu.
	lastEpoch EpochStats
}

// overageNode returns a node where the tenant currently holds more DRAM
// frames than its apportioned share (and therefore holds spill tokens),
// or -1. Read lock-free: the demotion paths only use it for victim
// targeting and retry on staleness.
func (ts *tenantState) overageNode() int {
	for n := range ts.nodeUsed {
		if ts.nodeUsed[n].Load() > ts.nodeQuota[n] {
			return n
		}
	}
	return -1
}

// serveTotals sums the tenant's striped per-access counters.
func (ts *tenantState) serveTotals() (accesses, hitsDRAM, hitsNVM int64) {
	for i := range ts.cells {
		c := &ts.cells[i]
		accesses += c.accesses.Load()
		hitsDRAM += c.hitsDRAM.Load()
		hitsNVM += c.hitsNVM.Load()
	}
	return accesses, hitsDRAM, hitsNVM
}

// validateTenants checks a tenant set against the DRAM capacity and
// returns the shared spill pool size.
func validateTenants(tenants []TenantConfig, dramPages int) (spill int64, err error) {
	if len(tenants) == 0 {
		return 0, fmt.Errorf("tiered: engine needs at least one tenant")
	}
	seen := make(map[TenantID]bool, len(tenants))
	sum := 0
	for _, tc := range tenants {
		if seen[tc.ID] {
			return 0, fmt.Errorf("tiered: duplicate tenant ID %d", tc.ID)
		}
		seen[tc.ID] = true
		if tc.DRAMQuota < 0 {
			return 0, fmt.Errorf("tiered: tenant %d has negative DRAM quota %d", tc.ID, tc.DRAMQuota)
		}
		if tc.Priority < 0 {
			return 0, fmt.Errorf("tiered: tenant %d has negative priority %d", tc.ID, tc.Priority)
		}
		sum += tc.DRAMQuota
	}
	if sum > dramPages {
		return 0, fmt.Errorf("tiered: tenant DRAM quotas total %d frames, capacity is %d", sum, dramPages)
	}
	spill = int64(dramPages - sum)
	for _, tc := range tenants {
		if int64(tc.DRAMQuota)+spill < 1 {
			return 0, fmt.Errorf("tiered: tenant %d can never hold a DRAM frame (quota %d, spill %d)",
				tc.ID, tc.DRAMQuota, spill)
		}
	}
	return spill, nil
}

// apportionQuotas splits every tenant's DRAM quota across nodes. Each
// tenant's shares are proportional to the nodes' DRAM sizes and sum to
// its quota, and — the guarantee that keeps a quota a guarantee — the
// tenants' shares on any one node never exceed that node's pool:
// fractional remainders are placed only where headroom is left, not
// blindly on the earliest nodes, so a node can always physically honor
// every share it backs. (The floor shares alone can never oversubscribe
// a node, because the quotas sum to at most the DRAM total; only the
// remainders need steering.) With one node each quota lands whole,
// reproducing the flat accounting exactly. Rows align with quotas.
func apportionQuotas(quotas []int64, nodes []NodeConfig, dramTotal int64) [][]int64 {
	headroom := make([]int64, len(nodes))
	for n, nc := range nodes {
		headroom[n] = int64(nc.DRAMPages)
	}
	out := make([][]int64, len(quotas))
	rem := make([]int64, len(quotas))
	// First pass: every tenant's proportional floor shares. Floors alone
	// can never oversubscribe a node — summed over tenants they stay
	// within the node's proportional slice — so headroom stays >= 0, and
	// only then are any remainders placed. (Interleaving remainder
	// placement with floor subtraction would let an early remainder
	// consume headroom a later tenant's floor still needs.)
	for t, quota := range quotas {
		shares := make([]int64, len(nodes))
		var given int64
		for n, nc := range nodes {
			shares[n] = quota * int64(nc.DRAMPages) / dramTotal
			given += shares[n]
			headroom[n] -= shares[n]
		}
		out[t] = shares
		rem[t] = quota - given
	}
	// Second pass: the fractional remainders go wherever headroom is
	// left. Total headroom covers total remainders (the quotas sum to at
	// most the DRAM total), so every remainder finds a node.
	for t := range out {
		for n := 0; rem[t] > 0; n = (n + 1) % len(nodes) {
			if headroom[n] > 0 {
				out[t][n]++
				headroom[n]--
				rem[t]--
			}
		}
	}
	return out
}
