package tiered

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// TenantID names one tenant of a multi-tenant engine. Tenants are
// namespaces over the page keyspace: the same page number under two
// tenants is two distinct pages, so consolidated workloads cannot trample
// each other's windowed counters or CLOCK reference bits. The ID is folded
// into the high bits of every table key.
type TenantID uint16

// DefaultTenant is the tenant a single-tenant engine serves. Serve (as
// opposed to ServeTenant) always addresses it, and with only the default
// tenant configured the engine behaves exactly like the pre-tenant,
// single-namespace engine.
const DefaultTenant TenantID = 0

const (
	// pageBits is the page-number width of a table key; the 16 bits above
	// hold the TenantID. Page numbers must fit: with 4 KiB pages that is a
	// 1 EiB per-tenant address space.
	pageBits = 48
	// maxTablePage is the largest page number a key can carry.
	maxTablePage = uint64(1)<<pageBits - 1
)

// tableKey folds a tenant and a page number into one namespaced key.
// Tenant 0 maps page to itself, so single-tenant keys are bit-identical to
// the pre-tenant table's.
func tableKey(t TenantID, page uint64) uint64 {
	return uint64(t)<<pageBits | page
}

// splitKey recovers the tenant and page number from a table key.
func splitKey(k uint64) (TenantID, uint64) {
	return TenantID(k >> pageBits), k & maxTablePage
}

// TenantConfig describes one tenant of an engine.
type TenantConfig struct {
	// ID is the tenant's namespace; IDs must be unique within an engine.
	ID TenantID
	// Name labels the tenant in reports. Empty defaults to "tenant-<ID>".
	Name string
	// DRAMQuota is the tenant's dedicated DRAM frame budget. DRAM frames
	// covered by no quota form the shared spill pool: a tenant's DRAM
	// residency may grow to DRAMQuota + spill, never beyond. Frames above
	// the quota are borrowed from the pool one token at a time, so the
	// tenants' collective borrowing never exceeds the pool either — a
	// tenant that stays within its quota always gets a frame without
	// waiting on (or demoting) anyone else.
	DRAMQuota int
}

// TenantStats is a snapshot of one tenant's counters: the per-tenant view
// of the engine-wide Stats. The Resident and quota fields are levels, the
// rest are cumulative event counts.
type TenantStats struct {
	ID   TenantID
	Name string

	Accesses           int64
	HitsDRAM, HitsNVM  int64
	Faults             int64
	Promotions         int64
	Demotions          int64
	Evictions          int64
	ResidentDRAM       int64
	DRAMQuota, DRAMCap int64
}

// Hits returns the tenant's non-faulting accesses.
func (s TenantStats) Hits() int64 { return s.HitsDRAM + s.HitsNVM }

// Sub returns the event-count deltas since prev. Levels (residency and the
// quota geometry) are carried over unchanged.
func (s TenantStats) Sub(prev TenantStats) TenantStats {
	d := s
	d.Accesses -= prev.Accesses
	d.HitsDRAM -= prev.HitsDRAM
	d.HitsNVM -= prev.HitsNVM
	d.Faults -= prev.Faults
	d.Promotions -= prev.Promotions
	d.Demotions -= prev.Demotions
	d.Evictions -= prev.Evictions
	return d
}

// tenantCell is one stripe of a tenant's per-access counters. Serves
// within the same stripe share the line; stripes are padded apart so cores
// serving different pages never contend on tenant accounting.
type tenantCell struct {
	accesses atomic.Int64
	hitsDRAM atomic.Int64
	hitsNVM  atomic.Int64
	_        [104]byte
}

// tenantCounters is one tenant's rare-path atomic tally block. Each field
// sits alone on a cache line (padCounter) so a burst of faults on one
// tenant does not invalidate its neighbors' lines; the per-access counters
// live in the striped cells instead.
type tenantCounters struct {
	faults     padCounter
	promotions padCounter
	demotions  padCounter
	evictions  padCounter
}

// tenantState is the engine's per-tenant bookkeeping: the DRAM quota
// geometry and occupancy, the tenant's own policy instance (so adaptive
// threshold tuning is independent per tenant), and the counters the scan
// epochs and reports read.
type tenantState struct {
	id    TenantID
	name  string
	quota int64
	// cap is quota + spill: the hard bound on the tenant's DRAM residency.
	cap int64
	// pol is the tenant's migration-decision plug (nil in synchronous
	// mode, where the single backing policy decides for the one tenant).
	pol OnlinePolicy

	// resMu serializes the tenant's DRAM reservations and releases so the
	// quota-vs-borrowed classification of each frame is exact (frames
	// above the quota hold spill tokens). Only the fault and migration
	// paths take it; hits never reserve.
	resMu    sync.Mutex
	_        [48]byte
	dramUsed atomic.Int64
	_        [56]byte
	// cells stripes the tenant's per-access counters; the engine indexes
	// them by the same key-derived stripe as its own serve cells and
	// serveTotals sums them lazily for reports.
	cells []tenantCell
	c     tenantCounters
	// scanBuf is the tenant's reusable candidate buffer, guarded by the
	// engine's scanMu; reused across epochs so steady-state scans allocate
	// nothing.
	scanBuf []candidate
	// lastEpoch is the previous scan epoch's cumulative counters, guarded
	// by the engine's scanMu.
	lastEpoch EpochStats
}

// serveTotals sums the tenant's striped per-access counters.
func (ts *tenantState) serveTotals() (accesses, hitsDRAM, hitsNVM int64) {
	for i := range ts.cells {
		c := &ts.cells[i]
		accesses += c.accesses.Load()
		hitsDRAM += c.hitsDRAM.Load()
		hitsNVM += c.hitsNVM.Load()
	}
	return accesses, hitsDRAM, hitsNVM
}

// validateTenants checks a tenant set against the DRAM capacity and
// returns the shared spill pool size.
func validateTenants(tenants []TenantConfig, dramPages int) (spill int64, err error) {
	if len(tenants) == 0 {
		return 0, fmt.Errorf("tiered: engine needs at least one tenant")
	}
	seen := make(map[TenantID]bool, len(tenants))
	sum := 0
	for _, tc := range tenants {
		if seen[tc.ID] {
			return 0, fmt.Errorf("tiered: duplicate tenant ID %d", tc.ID)
		}
		seen[tc.ID] = true
		if tc.DRAMQuota < 0 {
			return 0, fmt.Errorf("tiered: tenant %d has negative DRAM quota %d", tc.ID, tc.DRAMQuota)
		}
		sum += tc.DRAMQuota
	}
	if sum > dramPages {
		return 0, fmt.Errorf("tiered: tenant DRAM quotas total %d frames, capacity is %d", sum, dramPages)
	}
	spill = int64(dramPages - sum)
	for _, tc := range tenants {
		if int64(tc.DRAMQuota)+spill < 1 {
			return 0, fmt.Errorf("tiered: tenant %d can never hold a DRAM frame (quota %d, spill %d)",
				tc.ID, tc.DRAMQuota, spill)
		}
	}
	return spill, nil
}
