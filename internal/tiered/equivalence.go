package tiered

import (
	"fmt"

	"hybridmem/internal/mm"
	"hybridmem/internal/sim"
	"hybridmem/internal/trace"
)

// VerifyAgainstSim replays recs through a Synchronous engine and through
// the single-threaded reference simulator, both built from cfg, and
// compares every event count and the final zone occupancies. It returns
// the engine's stats and a nil error when the two accountings are
// identical — the online engine's equivalence guarantee at one goroutine.
func VerifyAgainstSim(cfg Config, recs []trace.Record) (Stats, error) {
	cfg.Synchronous = true
	cfg = cfg.withDefaults()

	// Reference side: the simulator driving a fresh policy instance.
	pol, err := newBackingPolicy(cfg.Policy, cfg.DRAMPages, cfg.NVMPages, cfg.Core, cfg.Adaptive, cfg.DWF)
	if err != nil {
		return Stats{}, err
	}
	res, err := sim.Run(trace.NewSliceSource(recs), pol, cfg.Spec, sim.Options{})
	if err != nil {
		return Stats{}, err
	}

	// Online side: a synchronous engine over its own fresh policy.
	e, err := New(cfg)
	if err != nil {
		return Stats{}, err
	}
	if err := e.Start(); err != nil {
		return Stats{}, err
	}
	for i, r := range recs {
		if _, err := e.Serve(r.Addr, r.Op); err != nil {
			return Stats{}, fmt.Errorf("tiered: verify access %d: %w", i, err)
		}
	}
	if err := e.Stop(); err != nil {
		return Stats{}, err
	}
	if err := e.CheckInvariants(); err != nil {
		return Stats{}, err
	}

	got := e.Stats()
	c := res.Counts
	checks := []struct {
		name      string
		got, want int64
	}{
		{"accesses", got.Accesses, c.Accesses},
		{"reads-dram", got.ReadsDRAM, c.ReadsDRAM},
		{"writes-dram", got.WritesDRAM, c.WritesDRAM},
		{"reads-nvm", got.ReadsNVM, c.ReadsNVM},
		{"writes-nvm", got.WritesNVM, c.WritesNVM},
		{"faults", got.Faults, c.Faults},
		{"faults-to-dram", got.FaultsToDRAM, c.FaultsToDRAM},
		{"faults-to-nvm", got.FaultsToNVM, c.FaultsToNVM},
		{"promotions", got.Promotions, c.Promotions},
		{"demotions", got.Demotions, c.Demotions},
		{"demotions-fault", got.DemotionsFault, c.DemotionsFault},
		{"demotions-promo", got.DemotionsPromo, c.DemotionsPromo},
		{"demotions-clean", got.DemotionsClean, c.DemotionsClean},
		{"evictions", got.Evictions, c.EvictionsDRAM + c.EvictionsNVM},
		{"resident-dram", got.ResidentDRAM, int64(pol.System().Residents(mm.LocDRAM))},
		{"resident-nvm", got.ResidentNVM, int64(pol.System().Residents(mm.LocNVM))},
	}
	for _, ck := range checks {
		if ck.got != ck.want {
			return got, fmt.Errorf("tiered: %s policy diverges from sim on %s: engine %d, sim %d",
				cfg.Policy, ck.name, ck.got, ck.want)
		}
	}
	return got, nil
}
