package tiered

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"hybridmem/internal/mm"
	"hybridmem/internal/trace"
)

func TestTenantConfigValidation(t *testing.T) {
	base := Config{DRAMPages: 8, NVMPages: 32}
	bad := []struct {
		name    string
		tenants []TenantConfig
	}{
		{"duplicate IDs", []TenantConfig{{ID: 1, DRAMQuota: 2}, {ID: 1, DRAMQuota: 2}}},
		{"quota sum exceeds DRAM", []TenantConfig{{ID: 0, DRAMQuota: 5}, {ID: 1, DRAMQuota: 5}}},
		{"negative quota", []TenantConfig{{ID: 0, DRAMQuota: -1}}},
		{"unreachable DRAM", []TenantConfig{{ID: 0, DRAMQuota: 0}, {ID: 1, DRAMQuota: 8}}},
	}
	for _, c := range bad {
		cfg := base
		cfg.Tenants = c.tenants
		if _, err := New(cfg); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}

	// A quota-free tenant is fine as long as spill frames exist.
	cfg := base
	cfg.Tenants = []TenantConfig{{ID: 0, DRAMQuota: 6}, {ID: 7, DRAMQuota: 0}}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e.SpillPool() != 2 {
		t.Fatalf("spill pool = %d, want 2", e.SpillPool())
	}
	if ids := e.TenantIDs(); len(ids) != 2 || ids[0] != 0 || ids[1] != 7 {
		t.Fatalf("TenantIDs = %v", ids)
	}
	st, ok := e.TenantStats(7)
	if !ok || st.DRAMQuota != 0 || st.DRAMCap != 2 || st.Name != "tenant-7" {
		t.Fatalf("TenantStats(7) = %+v, %v", st, ok)
	}
	if _, ok := e.TenantStats(3); ok {
		t.Fatal("TenantStats for unknown tenant succeeded")
	}
}

func TestSynchronousRejectsMultiTenant(t *testing.T) {
	_, err := New(Config{
		DRAMPages: 8, NVMPages: 8, Synchronous: true,
		Tenants: []TenantConfig{{ID: 0, DRAMQuota: 4}, {ID: 1, DRAMQuota: 4}},
	})
	if err == nil {
		t.Fatal("synchronous multi-tenant engine accepted")
	}
	// A single non-default tenant is equally out: the reference policies
	// know nothing about namespaces.
	_, err = New(Config{
		DRAMPages: 8, NVMPages: 8, Synchronous: true,
		Tenants: []TenantConfig{{ID: 1, DRAMQuota: 8}},
	})
	if err == nil {
		t.Fatal("synchronous non-default tenant accepted")
	}
	// So is a partial quota: the reference policies would ignore it.
	_, err = New(Config{
		DRAMPages: 8, NVMPages: 8, Synchronous: true,
		Tenants: []TenantConfig{{ID: 0, DRAMQuota: 2}},
	})
	if err == nil {
		t.Fatal("synchronous partial quota accepted")
	}
}

// TestQuotalessTenantDemotesBorrowersOnly covers the spill-contention
// corner: a tenant with no resident DRAM pages whose reservation needs a
// token must make room inside an over-quota tenant — within-quota
// neighbors are untouchable.
func TestQuotalessTenantDemotesBorrowersOnly(t *testing.T) {
	e, err := New(Config{
		// DRAM 8: quotas 4 + 3 + 0, spill 1.
		DRAMPages: 8, NVMPages: 64, Core: smallCore(),
		Tenants: []TenantConfig{
			{ID: 0, DRAMQuota: 4},
			{ID: 1, DRAMQuota: 3},
			{ID: 2, DRAMQuota: 0},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()

	// Tenant 1 fills exactly its quota; tenant 0 takes its quota plus the
	// one spill token.
	for p := uint64(0); p < 3; p++ {
		if _, err := e.ServeTenant(1, p*4096, trace.OpRead); err != nil {
			t.Fatal(err)
		}
	}
	for p := uint64(0); p < 5; p++ {
		if _, err := e.ServeTenant(0, p*4096, trace.OpRead); err != nil {
			t.Fatal(err)
		}
	}

	// Quota-less tenant 2 faults: its frames can only come from the spill
	// pool, so tenant 0 (the borrower) must shrink while within-quota
	// tenant 1 keeps every page.
	for p := uint64(0); p < 4; p++ {
		if _, err := e.ServeTenant(2, p*4096, trace.OpRead); err != nil {
			t.Fatal(err)
		}
	}
	s0, _ := e.TenantStats(0)
	s1, _ := e.TenantStats(1)
	s2, _ := e.TenantStats(2)
	if s1.ResidentDRAM != 3 || s1.Demotions != 0 {
		t.Fatalf("within-quota tenant 1 was victimized: %+v", s1)
	}
	if s0.ResidentDRAM != 4 {
		t.Fatalf("borrower tenant 0 residency = %d, want shrunk to quota 4", s0.ResidentDRAM)
	}
	if s2.ResidentDRAM != 1 {
		t.Fatalf("tenant 2 residency = %d, want the 1 spill frame", s2.ResidentDRAM)
	}
	if s2.Demotions == 0 {
		t.Fatal("tenant 2 never recycled its one frame across 4 faults")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestServeUnknownTenant(t *testing.T) {
	e, err := New(Config{
		DRAMPages: 4, NVMPages: 4,
		Tenants: []TenantConfig{{ID: 1, DRAMQuota: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	if _, err := e.ServeTenant(2, 0, trace.OpRead); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("unknown tenant error = %v", err)
	}
	// Serve addresses the default tenant, which this engine lacks.
	if _, err := e.Serve(0, trace.OpRead); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("Serve without default tenant = %v", err)
	}
	if _, err := e.ServeTenant(1, 0, trace.OpRead); err != nil {
		t.Fatal(err)
	}
}

// TestTenantNamespaceIsolation proves two tenants accessing the same
// addresses get distinct pages: each faults its own copy in, and each
// tenant's counters see only its own traffic.
func TestTenantNamespaceIsolation(t *testing.T) {
	e, err := New(Config{
		DRAMPages: 8, NVMPages: 32, Core: smallCore(),
		Tenants: []TenantConfig{{ID: 0, DRAMQuota: 4}, {ID: 1, DRAMQuota: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()

	for p := uint64(0); p < 3; p++ {
		if res, err := e.ServeTenant(0, p*4096, trace.OpRead); err != nil || !res.Fault {
			t.Fatalf("tenant 0 page %d: %+v, %v", p, res, err)
		}
	}
	// Tenant 1 touching the same addresses faults again: nothing shared.
	for p := uint64(0); p < 3; p++ {
		if res, err := e.ServeTenant(1, p*4096, trace.OpRead); err != nil || !res.Fault {
			t.Fatalf("tenant 1 page %d should fault independently: %+v, %v", p, res, err)
		}
	}
	// Re-touching is a hit for both, tallied separately.
	if res, err := e.ServeTenant(0, 0, trace.OpRead); err != nil || res.Fault {
		t.Fatalf("tenant 0 re-access: %+v, %v", res, err)
	}
	s0, _ := e.TenantStats(0)
	s1, _ := e.TenantStats(1)
	if s0.Accesses != 4 || s0.Faults != 3 || s0.Hits() != 1 {
		t.Fatalf("tenant 0 stats: %+v", s0)
	}
	if s1.Accesses != 3 || s1.Faults != 3 || s1.Hits() != 0 {
		t.Fatalf("tenant 1 stats: %+v", s1)
	}
	sum := e.Stats()
	if sum.Accesses != 7 || sum.Faults != 6 {
		t.Fatalf("global stats: %+v", sum)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestTenantQuotaCap drives one tenant far past its DRAM share and checks
// the quota + spill cap holds while the other tenant can still use its
// guaranteed quota afterwards.
func TestTenantQuotaCap(t *testing.T) {
	e, err := New(Config{
		DRAMPages: 16, NVMPages: 256, Core: smallCore(),
		// 6 + 6 quota, 4 spill: each tenant caps at 10.
		Tenants: []TenantConfig{{ID: 0, DRAMQuota: 6}, {ID: 1, DRAMQuota: 6}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()

	// Tenant 0 faults 100 pages (all to DRAM under the proposed policy):
	// its residency must stay at quota 6 + spill 4 = 10, never 16.
	for p := uint64(0); p < 100; p++ {
		if _, err := e.ServeTenant(0, p*4096, trace.OpRead); err != nil {
			t.Fatal(err)
		}
	}
	s0, _ := e.TenantStats(0)
	if s0.ResidentDRAM != 10 {
		t.Fatalf("tenant 0 DRAM residency = %d, want cap 10", s0.ResidentDRAM)
	}
	if s0.Demotions == 0 {
		t.Fatal("tenant 0 never demoted despite exceeding its cap")
	}

	// Tenant 1 still fits its full quota (and can borrow the rest of the
	// free global capacity up to its own cap).
	for p := uint64(0); p < 6; p++ {
		if _, err := e.ServeTenant(1, p*4096, trace.OpRead); err != nil {
			t.Fatal(err)
		}
	}
	s1, _ := e.TenantStats(1)
	if s1.ResidentDRAM != 6 {
		t.Fatalf("tenant 1 DRAM residency = %d, want 6", s1.ResidentDRAM)
	}
	if s1.Demotions != 0 {
		t.Fatalf("tenant 1 was forced to demote within its quota: %+v", s1)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSpillPoolAccounting pins the guarantee that makes a quota a
// guarantee: spill borrowing is token-accounted globally, so tenants
// cannot collectively over-borrow, an under-quota tenant always gets a
// frame without demoting anyone, and over-quota tenants make room in
// their own budget only.
func TestSpillPoolAccounting(t *testing.T) {
	e, err := New(Config{
		// 12 DRAM frames: quotas 3 + 3, spill 6.
		DRAMPages: 12, NVMPages: 256, Core: smallCore(),
		Tenants: []TenantConfig{{ID: 0, DRAMQuota: 3}, {ID: 1, DRAMQuota: 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()

	// Tenant 0 faults 20 pages: it takes its quota 3 plus the whole spill
	// pool, landing at cap 9.
	for p := uint64(0); p < 20; p++ {
		if _, err := e.ServeTenant(0, p*4096, trace.OpRead); err != nil {
			t.Fatal(err)
		}
	}
	s0, _ := e.TenantStats(0)
	if s0.ResidentDRAM != 9 {
		t.Fatalf("tenant 0 residency = %d, want cap 9", s0.ResidentDRAM)
	}

	// Tenant 1 now faults its quota's worth: DRAM is physically full per
	// the old global accounting (9 + 3 = 12), but under token accounting
	// its quota frames are reserved for it — no demotion, no borrowing.
	for p := uint64(0); p < 3; p++ {
		if _, err := e.ServeTenant(1, p*4096, trace.OpRead); err != nil {
			t.Fatal(err)
		}
	}
	s1, _ := e.TenantStats(1)
	if s1.ResidentDRAM != 3 || s1.Demotions != 0 {
		t.Fatalf("tenant 1 under quota: residency %d, demotions %d; want 3, 0", s1.ResidentDRAM, s1.Demotions)
	}

	// A fourth page needs a spill token, and tenant 0 holds them all:
	// tenant 1 demotes its own page, tenant 0's borrowings are untouched.
	if _, err := e.ServeTenant(1, 3*4096, trace.OpRead); err != nil {
		t.Fatal(err)
	}
	s0, _ = e.TenantStats(0)
	s1, _ = e.TenantStats(1)
	if s1.ResidentDRAM != 3 || s1.Demotions != 1 {
		t.Fatalf("tenant 1 over quota: residency %d, demotions %d; want 3, 1", s1.ResidentDRAM, s1.Demotions)
	}
	if s0.ResidentDRAM != 9 || s0.Demotions != 11 {
		// 11 = tenant 0's own 20-9 demotions from its fault burst; tenant
		// 1's contention must not have added any.
		t.Fatalf("tenant 0 disturbed by tenant 1's faults: %+v", s0)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestTwoTenantStress is the multi-tenant acceptance gate, run under
// -race in CI: two tenants with distinct skewed workloads hammer the
// engine concurrently while a sampler asserts that neither tenant's DRAM
// residency ever exceeds its quota plus the shared spill pool; afterwards
// both tenants must have made migration progress (no starvation).
func TestTwoTenantStress(t *testing.T) {
	const (
		dramPages = 64
		quota     = 24 // per tenant; spill = 64 - 48 = 16, cap = 40
		footprint = 512
		opsEach   = 12000
	)
	e, err := New(Config{
		DRAMPages: dramPages, NVMPages: 1024, Shards: 16, Core: smallCore(),
		ScanInterval: 200 * time.Microsecond,
		Workers:      2,
		BatchSize:    16,
		Tenants: []TenantConfig{
			{ID: 0, Name: "alpha", DRAMQuota: quota},
			{ID: 1, Name: "beta", DRAMQuota: quota},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}

	cap := int64(quota) + e.SpillPool()
	var wg sync.WaitGroup
	for _, tenant := range []TenantID{0, 1} {
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(tenant TenantID, seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < opsEach; i++ {
					op := trace.OpRead
					if rng.Intn(4) == 0 {
						op = trace.OpWrite
					}
					// Skewed: half the traffic on 1/8 of the pages, so the
					// daemon has hot NVM pages to promote for both tenants.
					p := uint64(rng.Intn(footprint))
					if rng.Intn(2) == 0 {
						p = uint64(rng.Intn(footprint / 8))
					}
					if _, err := e.ServeTenant(tenant, p*4096, op); err != nil {
						t.Error(err)
						return
					}
				}
			}(tenant, int64(tenant)*31+int64(w))
		}
	}
	// Sampler: the quota cap must hold at every instant, not just at rest.
	// It must not hammer ScanOnce back-to-back — every scan resets the
	// counter windows, and windows of a few microseconds never accumulate
	// past the threshold — so it samples at roughly the ticker's cadence.
	stopObs := make(chan struct{})
	var obsWG sync.WaitGroup
	obsWG.Add(1)
	go func() {
		defer obsWG.Done()
		for {
			select {
			case <-stopObs:
				return
			default:
				for _, id := range []TenantID{0, 1} {
					if st, ok := e.TenantStats(id); ok && st.ResidentDRAM > cap {
						t.Errorf("tenant %d DRAM residency %d exceeds quota+spill %d", id, st.ResidentDRAM, cap)
						return
					}
				}
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()
	wg.Wait()
	close(stopObs)
	obsWG.Wait()

	// Deterministic migration round before shutdown: hammer one
	// NVM-resident page per tenant past the threshold, then scan once.
	// Both tenants' candidates ride the same round-robin batch, so both
	// must make progress regardless of how the concurrent phase's scan
	// timing fell.
	for _, tenant := range []TenantID{0, 1} {
		var hot uint64
		found := false
		for p := uint64(0); p < footprint; p++ {
			if loc, ok := e.tbl.Peek(tenant, p); ok && loc == mm.LocNVM {
				hot, found = p, true
				break
			}
		}
		if !found {
			t.Fatalf("tenant %d has no NVM-resident page to heat", tenant)
		}
		for i := 0; i < 8; i++ {
			if _, err := e.ServeTenant(tenant, hot*4096, trace.OpWrite); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := e.ScanOnce(); err != nil {
		t.Fatal(err)
	}
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}

	for _, id := range []TenantID{0, 1} {
		st, _ := e.TenantStats(id)
		if st.Accesses != 4*opsEach+8 {
			t.Fatalf("tenant %d accesses = %d, want %d", id, st.Accesses, 4*opsEach+8)
		}
		if st.ResidentDRAM > cap {
			t.Fatalf("tenant %d final DRAM residency %d exceeds %d", id, st.ResidentDRAM, cap)
		}
		// No starvation: every tenant's hot pages got promotion budget.
		if st.Promotions == 0 {
			t.Fatalf("tenant %d starved: no promotions (%+v)", id, st)
		}
	}
	st0, _ := e.TenantStats(0)
	st1, _ := e.TenantStats(1)
	agg := e.Stats()
	if st0.Promotions+st1.Promotions != agg.Promotions {
		t.Fatalf("tenant promotions %d+%d != global %d", st0.Promotions, st1.Promotions, agg.Promotions)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSingleTenantDefaultsMatchLegacy pins the compatibility contract: a
// config without Tenants produces one default tenant owning all of DRAM,
// zero spill, and Serve routes to it.
func TestSingleTenantDefaultsMatchLegacy(t *testing.T) {
	e, err := New(Config{DRAMPages: 8, NVMPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	if e.SpillPool() != 0 {
		t.Fatalf("spill = %d on a single-tenant engine", e.SpillPool())
	}
	ids := e.TenantIDs()
	if len(ids) != 1 || ids[0] != DefaultTenant {
		t.Fatalf("TenantIDs = %v", ids)
	}
	st, _ := e.TenantStats(DefaultTenant)
	if st.DRAMQuota != 8 || st.DRAMCap != 8 || st.Name != "default" {
		t.Fatalf("default tenant = %+v", st)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	if _, err := e.Serve(0, trace.OpRead); err != nil {
		t.Fatal(err)
	}
	st, _ = e.TenantStats(DefaultTenant)
	if st.Accesses != 1 || st.Faults != 1 {
		t.Fatalf("default tenant stats after Serve: %+v", st)
	}
}
