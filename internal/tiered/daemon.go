package tiered

import (
	"fmt"
	"time"

	"hybridmem/internal/mm"
)

// Start brings the engine online. In asynchronous mode it launches the
// migration daemon: one scanner that sweeps the shards for hot NVM pages
// every ScanInterval and batches them onto the promotion queue, plus
// Workers goroutines that drain the queue and apply the migrations. In
// synchronous mode there is no daemon (migrations happen inline) and Start
// only flips the lifecycle state.
func (e *Engine) Start() error {
	if !e.state.CompareAndSwap(stateNew, stateStarted) {
		return fmt.Errorf("tiered: engine already started")
	}
	if e.backing != nil {
		return nil
	}
	e.stopCh = make(chan struct{})
	e.batchCh = make(chan []uint64, e.cfg.QueueLen)
	e.scanWG.Add(1)
	go e.scanLoop()
	e.workerWG.Add(e.cfg.Workers)
	for i := 0; i < e.cfg.Workers; i++ {
		go e.workerLoop()
	}
	return nil
}

// Stop shuts the engine down gracefully: new Serve calls are rejected, the
// scanner exits, and the workers drain every batch already enqueued before
// returning. Stop is idempotent, and every Stop call — including one that
// loses the race to a concurrent Stop — only returns after the daemon has
// fully quiesced. Stopping an engine that never started is an error.
func (e *Engine) Stop() error {
	if e.state.CompareAndSwap(stateStarted, stateStopped) {
		if e.backing == nil {
			close(e.stopCh)
			e.scanWG.Wait() // scanner exits and closes the batch channel
			e.workerWG.Wait()
			// Barrier against a concurrent ScanOnce: any scan that won
			// scanMu before this point finishes its inline work here; any
			// that acquires it later sees the stopped state and does
			// nothing. Either way no migration mutates the table after
			// Stop returns.
			e.scanMu.Lock()
			e.scanMu.Unlock() //nolint:staticcheck // empty section is the barrier
		}
		close(e.drained)
		return nil
	}
	if e.state.Load() == stateStopped {
		<-e.drained
		return nil
	}
	return fmt.Errorf("tiered: engine never started")
}

// scanLoop is the daemon's scanner goroutine.
func (e *Engine) scanLoop() {
	defer func() {
		close(e.batchCh)
		e.scanWG.Done()
	}()
	ticker := time.NewTicker(e.cfg.ScanInterval)
	defer ticker.Stop()
	for {
		select {
		case <-e.stopCh:
			return
		case <-ticker.C:
			e.scanEpoch(false)
		}
	}
}

// workerLoop drains promotion batches until the channel closes.
func (e *Engine) workerLoop() {
	defer e.workerWG.Done()
	for batch := range e.batchCh {
		for _, page := range batch {
			e.applyPromotion(page)
		}
	}
}

// ScanOnce runs one hotness scan immediately and applies the resulting
// promotions inline before returning, giving tests and embedders a
// deterministic migration point. Only meaningful in asynchronous mode (the
// synchronous engine migrates inline on every access already).
func (e *Engine) ScanOnce() error {
	if e.state.Load() != stateStarted {
		return ErrNotStarted
	}
	if e.backing != nil {
		return nil
	}
	e.scanEpoch(true)
	return nil
}

// scanEpoch sweeps every shard for NVM pages whose windowed counters the
// policy judges hot, batches them onto the promotion queue (or applies them
// inline), resets the counter windows, and gives the policy its epoch
// hook. Serialized by scanMu so a ticker epoch and a ScanOnce never
// interleave their window resets.
func (e *Engine) scanEpoch(inline bool) {
	e.scanMu.Lock()
	defer e.scanMu.Unlock()
	// Re-check under the lock: a ScanOnce that passed the lifecycle check
	// just before Stop must not mutate anything after Stop's barrier.
	if e.state.Load() != stateStarted {
		return
	}

	batch := make([]uint64, 0, e.cfg.BatchSize)
	flush := func(b []uint64) {
		if len(b) == 0 {
			return
		}
		if inline {
			for _, page := range b {
				e.applyPromotion(page)
			}
			e.c.batches.Add(1)
			return
		}
		select {
		case e.batchCh <- b:
			e.c.batches.Add(1)
		default:
			// Queue full: drop the batch. Promotion is advisory — a page
			// that stays hot re-qualifies next epoch — so shedding load
			// here keeps the scanner from ever blocking on the workers.
			e.c.queueDrops.Add(1)
		}
	}

	for i := 0; i < e.tbl.NumShards(); i++ {
		// Only collect inside the scan: applying a migration takes shard
		// write locks, which must never happen under this shard's read
		// lock. Batches flush between shards.
		e.tbl.ScanShard(i, true, func(page uint64, loc mm.Location, reads, writes uint64) {
			if loc == mm.LocNVM && e.pol.Hot(reads, writes) {
				batch = append(batch, page)
			}
		})
		for len(batch) >= e.cfg.BatchSize {
			flush(batch[:e.cfg.BatchSize:e.cfg.BatchSize])
			batch = append(make([]uint64, 0, e.cfg.BatchSize), batch[e.cfg.BatchSize:]...)
		}
	}
	flush(batch)

	cur := EpochStats{
		Accesses:   e.c.accesses.Load(),
		HitsDRAM:   e.c.readsDRAM.Load() + e.c.writesDRAM.Load(),
		Promotions: e.c.promotions.Load(),
	}
	e.pol.Epoch(EpochStats{
		Accesses:   cur.Accesses - e.lastEpoch.Accesses,
		HitsDRAM:   cur.HitsDRAM - e.lastEpoch.HitsDRAM,
		Promotions: cur.Promotions - e.lastEpoch.Promotions,
	})
	e.lastEpoch = cur
	e.c.scans.Add(1)
}
