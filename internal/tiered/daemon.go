package tiered

import (
	"cmp"
	"fmt"
	"slices"
	"time"

	"hybridmem/internal/mm"
)

// Start brings the engine online. In asynchronous mode it launches the
// migration daemon: one scanner that sweeps the shards for hot NVM pages
// every ScanInterval, driving one scan/promotion pipeline per NUMA node —
// each node has its own candidate buffers and promotion queue, drained by
// that node's own Workers goroutines, so migrations for one node's pages
// are applied by workers pinned to that node's pipeline. In synchronous
// mode there is no daemon (migrations happen inline) and Start only flips
// the lifecycle state.
func (e *Engine) Start() error {
	if !e.state.CompareAndSwap(stateNew, stateStarted) {
		return fmt.Errorf("tiered: engine already started")
	}
	if e.backing != nil {
		return nil
	}
	e.stopCh = make(chan struct{})
	for _, ns := range e.nodes {
		ns.batchCh = make(chan *promoBatch, e.cfg.QueueLen)
		e.workerWG.Add(e.cfg.Workers)
		for i := 0; i < e.cfg.Workers; i++ {
			go e.workerLoop(ns)
		}
	}
	e.scanWG.Add(1)
	go e.scanLoop()
	if len(e.warmup) > 0 {
		e.warmWG.Add(1)
		go e.warmupLoop()
	}
	return nil
}

// Stop shuts the engine down gracefully: new Serve calls are rejected, the
// scanner exits, and the workers drain every batch already enqueued before
// returning. Stop is idempotent, and every Stop call — including one that
// loses the race to a concurrent Stop — only returns after the daemon has
// fully quiesced. Stopping an engine that never started is an error.
func (e *Engine) Stop() error {
	if e.state.CompareAndSwap(stateStarted, stateStopped) {
		if e.backing == nil {
			close(e.stopCh)
			e.scanWG.Wait()
			e.warmWG.Wait()
			// Both producers (scanner and warm-up feeder) have exited; now
			// the queues can close, and the workers drain what's left.
			for _, ns := range e.nodes {
				close(ns.batchCh)
			}
			e.workerWG.Wait()
			// Barrier against a concurrent ScanOnce: any scan that won
			// scanMu before this point finishes its inline work here; any
			// that acquires it later sees the stopped state and does
			// nothing. Either way no migration mutates the table after
			// Stop returns.
			e.scanMu.Lock()
			e.scanMu.Unlock() //nolint:staticcheck // empty section is the barrier
		}
		close(e.drained)
		return nil
	}
	if e.state.Load() == stateStopped {
		<-e.drained
		return nil
	}
	return fmt.Errorf("tiered: engine never started")
}

// scanLoop is the daemon's scanner goroutine. It does not close the batch
// channels on exit — Stop does, after every producer (this scanner and the
// restore warm-up feeder) has quiesced.
func (e *Engine) scanLoop() {
	defer e.scanWG.Done()
	ticker := time.NewTicker(e.cfg.ScanInterval)
	defer ticker.Stop()
	for {
		select {
		case <-e.stopCh:
			return
		case <-ticker.C:
			e.scanEpoch(false)
		}
	}
}

// promoBatch is one promotion batch in flight from the scanner to a
// node's workers: the ranked candidates (key + the windowed score the
// scan saw, which rides into the event ring) and the enqueue timestamp,
// from which the draining worker computes the node's promotion lag.
type promoBatch struct {
	at time.Time
	c  []candidate
}

// workerLoop drains one node's promotion batches until the channel closes,
// returning each drained buffer to the batch pool. A page's in-flight mark
// clears only after its promotion has been applied (or found stale), so
// the scanner cannot re-enqueue it mid-flight.
func (e *Engine) workerLoop(ns *nodeState) {
	defer e.workerWG.Done()
	for b := range ns.batchCh {
		lag := time.Since(b.at).Nanoseconds()
		ns.lagLast.Store(lag)
		for {
			cur := ns.lagMax.Load()
			if lag <= cur || ns.lagMax.CompareAndSwap(cur, lag) {
				break
			}
		}
		for _, cand := range b.c {
			e.applyPromotion(cand.key, cand.score)
			e.unmarkInflight(cand.key)
		}
		e.putBatch(b)
	}
}

// newBatch takes a promotion buffer from the pool (or allocates the pool's
// first few).
func (e *Engine) newBatch() *promoBatch {
	if b, ok := e.batchPool.Get().(*promoBatch); ok {
		return b
	}
	return &promoBatch{c: make([]candidate, 0, e.cfg.BatchSize)}
}

// putBatch resets a buffer and returns it to the pool.
func (e *Engine) putBatch(b *promoBatch) {
	b.c = b.c[:0]
	e.batchPool.Put(b)
}

// ScanOnce runs one hotness scan immediately and applies the resulting
// promotions inline before returning, giving tests and embedders a
// deterministic migration point. Only meaningful in asynchronous mode (the
// synchronous engine migrates inline on every access already).
func (e *Engine) ScanOnce() error {
	if e.state.Load() != stateStarted {
		return ErrNotStarted
	}
	if e.backing != nil {
		return nil
	}
	e.scanEpoch(true)
	return nil
}

// markInflight records a page as enqueued for promotion. It reports false
// — and the caller must skip the page — when a previous epoch's entry is
// still in flight: the dedupe that keeps a page scanned hot in
// consecutive epochs from occupying two queue slots.
func (e *Engine) markInflight(key uint64) bool {
	e.inflightMu.Lock()
	defer e.inflightMu.Unlock()
	if _, dup := e.inflight[key]; dup {
		return false
	}
	e.inflight[key] = struct{}{}
	return true
}

// unmarkInflight clears a page's in-flight mark once its promotion has
// been applied, found stale, or dropped with its batch.
func (e *Engine) unmarkInflight(key uint64) {
	e.inflightMu.Lock()
	delete(e.inflight, key)
	e.inflightMu.Unlock()
}

// candidate is one scan-identified hot page: its namespaced key and the
// windowed counter magnitude the batch ordering ranks by.
type candidate struct {
	key   uint64
	score uint64
}

// orderCandidates sorts a tenant's candidates by descending counter
// magnitude (key ascending on ties, for determinism): every candidate
// already cleared the policy's threshold test, so the magnitude measures
// how far past break-even the page is, and the daemon's bounded budget
// goes to the most profitable migrations first.
func orderCandidates(c []candidate) {
	slices.SortFunc(c, func(a, b candidate) int {
		return cmp.Or(cmp.Compare(b.score, a.score), cmp.Compare(a.key, b.key))
	})
}

// interleaveInto merges per-tenant candidate queues into dst by weighted
// round-robin: each round takes up to weights[i] candidates from queue i
// in order, repeating until all queues drain, so batches cut from the
// result give tenant i weights[i] promotion-budget slots for every one
// slot of a weight-1 neighbor while both have candidates left. A nil
// weights slice means one each — the equal-share round-robin, under which
// no hot tenant can monopolize the queue while another starves. The queue
// headers are consumed; the backing arrays are untouched.
func interleaveInto(dst []candidate, queues [][]candidate, weights []int) []candidate {
	total := 0
	for _, q := range queues {
		total += len(q)
	}
	for len(dst) < total {
		for i := range queues {
			w := 1
			if weights != nil {
				w = weights[i]
			}
			if w > len(queues[i]) {
				w = len(queues[i])
			}
			if w > 0 {
				dst = append(dst, queues[i][:w]...)
				queues[i] = queues[i][w:]
			}
		}
	}
	return dst
}

// interleave is equal-share interleaveInto from scratch, for tests and
// one-shot use.
func interleave(queues [][]candidate) []candidate {
	return interleaveInto(nil, queues, nil)
}

// scanEpoch runs one scan/promotion round for every node in turn — each
// node's pipeline sweeps only the shards homed on that node and feeds only
// that node's promotion queue — then gives each tenant's policy its epoch
// hook with that tenant's deltas. Serialized by scanMu so a ticker epoch
// and a ScanOnce never interleave their window resets (and so the
// per-tenant policies' plain threshold state is never touched from two
// goroutines). The sweeps hold no table lock (they walk the published
// shard snapshots) and recycle all buffers — per-node per-tenant candidate
// lists, interleave orders and promotion batches — so a steady-state epoch
// allocates nothing and never blocks the serve path.
func (e *Engine) scanEpoch(inline bool) {
	e.scanMu.Lock()
	defer e.scanMu.Unlock()
	// Re-check under the lock: a ScanOnce that passed the lifecycle check
	// just before Stop must not mutate anything after Stop's barrier.
	if e.state.Load() != stateStarted {
		return
	}
	start := time.Now()
	var cands int64
	for _, ns := range e.nodes {
		cands += e.scanNode(ns, inline)
	}
	for _, ts := range e.tenantList {
		accesses, hitsDRAM, _ := ts.serveTotals()
		cur := EpochStats{
			Accesses:   accesses,
			HitsDRAM:   hitsDRAM,
			Promotions: ts.c.promotions.Load(),
		}
		ts.pol.Epoch(EpochStats{
			Accesses:   cur.Accesses - ts.lastEpoch.Accesses,
			HitsDRAM:   cur.HitsDRAM - ts.lastEpoch.HitsDRAM,
			Promotions: cur.Promotions - ts.lastEpoch.Promotions,
		})
		ts.lastEpoch = cur
	}
	e.c.scans.Add(1)
	e.c.candidates.Add(cands)
	e.candLast.Store(cands)
	// Single writer (scanMu held), so last/max need no CAS.
	dur := time.Since(start).Nanoseconds()
	e.scanDurLast.Store(dur)
	if dur > e.scanDurMax.Load() {
		e.scanDurMax.Store(dur)
	}
}

// scanNode runs one node's slice of the epoch: it sweeps the node's shard
// range for NVM pages whose windowed counters their tenant's policy judges
// hot, orders each tenant's candidates by counter magnitude, interleaves
// the tenants by priority weight, and cuts the result into batches for the
// node's promotion queue (or applies them inline). Pages already in flight
// from a previous epoch are skipped; the counter windows of the node's
// pages reset as a side effect of the sweep. Caller holds scanMu. Returns
// the number of candidates the sweep found (before in-flight dedupe).
func (e *Engine) scanNode(ns *nodeState, inline bool) int64 {
	// Collect only inside the sweep; promotions apply after it, so a
	// migration's table write never races the sweep's own shard visit.
	for i := range ns.scanBufs {
		ns.scanBufs[i] = ns.scanBufs[i][:0]
	}
	lo, hi := e.tbl.NodeShards(ns.id)
	for i := lo; i < hi; i++ {
		e.tbl.ScanShard(i, true, func(tenant TenantID, page uint64, loc mm.Location, _ int, reads, writes uint64) {
			if loc != mm.LocNVM {
				return
			}
			ts := e.tenants[tenant]
			if ts == nil || !ts.pol.Hot(reads, writes) {
				return
			}
			ns.scanBufs[ts.idx] = append(ns.scanBufs[ts.idx],
				candidate{key: tableKey(tenant, page), score: reads + writes})
		})
	}
	ns.scanQueues = ns.scanQueues[:0]
	ns.scanWeights = ns.scanWeights[:0]
	for _, ts := range e.tenantList {
		if buf := ns.scanBufs[ts.idx]; len(buf) > 0 {
			orderCandidates(buf)
			ns.scanQueues = append(ns.scanQueues, buf)
			ns.scanWeights = append(ns.scanWeights, ts.priority)
		}
	}
	ns.scanOrder = interleaveInto(ns.scanOrder[:0], ns.scanQueues, ns.scanWeights)

	// flush hands the batch off (queue mode) or applies it inline, and
	// returns the buffer to fill next — a fresh one when the queue took
	// ownership, the same one (reset) otherwise.
	flush := func(b *promoBatch) *promoBatch {
		if len(b.c) == 0 {
			return b
		}
		if inline {
			for _, cand := range b.c {
				e.applyPromotion(cand.key, cand.score)
				e.unmarkInflight(cand.key)
			}
			e.c.batches.Add(1)
			b.c = b.c[:0]
			return b
		}
		b.at = time.Now()
		select {
		case ns.batchCh <- b:
			e.c.batches.Add(1)
			// High-water of the queue depth, observed at enqueue. Only
			// the scanner writes it, so load+store suffices.
			if d := int64(len(ns.batchCh)); d > ns.queueHW.Load() {
				ns.queueHW.Store(d)
			}
			return e.newBatch()
		default:
			// Queue full: drop the batch and clear its marks. Promotion is
			// advisory — a page that stays hot re-qualifies next epoch —
			// so shedding load here keeps the scanner from ever blocking
			// on the workers.
			for _, cand := range b.c {
				e.unmarkInflight(cand.key)
			}
			e.c.queueDrops.Add(1)
			ns.drops.Add(1)
			b.c = b.c[:0]
			return b
		}
	}

	b := e.newBatch()
	for _, cand := range ns.scanOrder {
		if !e.markInflight(cand.key) {
			// A previous epoch's promotion of this page is still queued:
			// the epochs coalesce into one migration.
			e.c.coalesced.Add(1)
			continue
		}
		b.c = append(b.c, cand)
		if len(b.c) == e.cfg.BatchSize {
			b = flush(b)
		}
	}
	b = flush(b)
	e.putBatch(b)
	return int64(len(ns.scanOrder))
}
