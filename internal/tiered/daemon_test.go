package tiered

import (
	"sync"
	"testing"
	"time"

	"hybridmem/internal/mm"
	"hybridmem/internal/trace"
)

// TestDaemonLifecycle pins the daemon's lifecycle contract: Start is
// one-shot, Stop is idempotent (including from multiple goroutines), and
// a Stop racing in-flight scans never lets a migration mutate the table
// after Stop returns. Run under -race in CI.
func TestDaemonLifecycle(t *testing.T) {
	e, err := New(Config{
		DRAMPages: 16, NVMPages: 64, Core: smallCore(),
		ScanInterval: 100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err == nil {
		t.Fatal("double Start succeeded")
	}

	// Traffic plus a storm of manual scans, so Stop races in-flight
	// scanEpoch work in both the ticker and the ScanOnce path.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := uint64(0); i < 2000; i++ {
				if _, err := e.Serve(((seed*2000+i)%256)*4096, trace.OpWrite); err != nil {
					return // ErrStopped once Stop lands
				}
				if i%64 == 0 {
					_ = e.ScanOnce()
				}
			}
		}(uint64(w))
	}
	// Concurrent Stops: exactly one wins, every call returns only after
	// the daemon has quiesced, and none errors.
	time.Sleep(2 * time.Millisecond)
	var stopWG sync.WaitGroup
	for i := 0; i < 3; i++ {
		stopWG.Add(1)
		go func() {
			defer stopWG.Done()
			if err := e.Stop(); err != nil {
				t.Errorf("Stop: %v", err)
			}
		}()
	}
	stopWG.Wait()
	wg.Wait()

	// Quiesced: a post-Stop snapshot must be stable against another taken
	// later — no daemon goroutine is still migrating.
	before := e.Stats()
	time.Sleep(2 * time.Millisecond)
	after := e.Stats()
	if before != after {
		t.Fatalf("engine still mutating after Stop: %+v vs %+v", before, after)
	}
	if err := e.Stop(); err != nil {
		t.Fatalf("idempotent Stop: %v", err)
	}
	if err := e.ScanOnce(); err == nil {
		t.Fatal("ScanOnce after Stop succeeded")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStopNeverStartedFails(t *testing.T) {
	e, err := New(Config{DRAMPages: 2, NVMPages: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Stop(); err == nil {
		t.Fatal("Stop on a never-started engine succeeded")
	}
}

// TestInflightDedupe exercises the promotion-queue coalescing: a page
// marked in flight cannot be marked again until its promotion applies,
// so a page scanned hot in consecutive epochs occupies one queue slot.
func TestInflightDedupe(t *testing.T) {
	e, err := New(Config{DRAMPages: 4, NVMPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	key := tableKey(DefaultTenant, 7)
	if !e.markInflight(key) {
		t.Fatal("first mark rejected")
	}
	if e.markInflight(key) {
		t.Fatal("duplicate mark accepted while in flight")
	}
	if !e.markInflight(tableKey(1, 7)) {
		t.Fatal("same page under another tenant is a distinct in-flight entry")
	}
	e.unmarkInflight(key)
	if !e.markInflight(key) {
		t.Fatal("mark rejected after unmark")
	}
}

// TestScanEpochCoalescesAcrossEpochs drives the integration path: with the
// promotion queue wedged (no workers draining, queue length 1), a page
// that stays hot across epochs is enqueued once, and a dropped batch
// releases its pages for future epochs.
func TestScanEpochCoalescesAcrossEpochs(t *testing.T) {
	e, err := New(Config{
		DRAMPages: 4, NVMPages: 16, Shards: 1, Core: smallCore(),
		// A long interval so only our manual scanEpoch calls run; queue
		// of one batch and no chance for the single worker to be sure to
		// drain it before the next epoch.
		ScanInterval: time.Hour,
		QueueLen:     1,
		BatchSize:    8,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Don't Start: drive scanEpoch's queue path directly so the worker
	// pool can't drain the queue under us.
	e.state.Store(stateStarted)
	e.nodes[0].batchCh = make(chan *promoBatch, e.cfg.QueueLen)

	heat := func() {
		// An NVM page with counters above the smallCore threshold (3).
		for i := 0; i < 5; i++ {
			e.tbl.Touch(DefaultTenant, 99, trace.OpWrite)
		}
	}
	e.tbl.Insert(DefaultTenant, 99, mm.LocNVM)
	e.nodes[0].nvmUsed.Add(1)

	heat()
	e.scanEpoch(false) // enqueues the page, marks it in flight
	heat()
	e.scanEpoch(false) // still in flight: must not enqueue again
	st := e.Stats()
	if st.Batches != 1 || st.QueueDrops != 0 {
		t.Fatalf("batches=%d drops=%d, want 1/0 (second epoch coalesced)", st.Batches, st.QueueDrops)
	}
	if got := len(e.nodes[0].batchCh); got != 1 {
		t.Fatalf("queue holds %d batches, want 1", got)
	}

	// A second hot page now overflows the 1-batch queue: the drop must
	// unmark it so a later epoch can retry it.
	e.tbl.Insert(DefaultTenant, 100, mm.LocNVM)
	e.nodes[0].nvmUsed.Add(1)
	for i := 0; i < 5; i++ {
		e.tbl.Touch(DefaultTenant, 100, trace.OpWrite)
	}
	e.scanEpoch(false)
	if st := e.Stats(); st.QueueDrops != 1 {
		t.Fatalf("drops=%d, want 1", st.QueueDrops)
	}
	if !e.markInflight(tableKey(DefaultTenant, 100)) {
		t.Fatal("dropped page still marked in flight")
	}
	e.unmarkInflight(tableKey(DefaultTenant, 100))

	// Draining the queued batch applies the promotion and clears the
	// mark, after which the page may be enqueued again.
	batch := <-e.nodes[0].batchCh
	for _, cand := range batch.c {
		e.applyPromotion(cand.key, cand.score)
		e.unmarkInflight(cand.key)
	}
	if loc, ok := e.tbl.Peek(DefaultTenant, 99); !ok || loc != mm.LocDRAM {
		t.Fatalf("page 99 at %v/%v after drain, want DRAM", loc, ok)
	}
	if !e.markInflight(tableKey(DefaultTenant, 99)) {
		t.Fatal("applied page still marked in flight")
	}
}

func TestOrderCandidates(t *testing.T) {
	c := []candidate{
		{key: 3, score: 5},
		{key: 1, score: 9},
		{key: 2, score: 5},
		{key: 4, score: 20},
	}
	orderCandidates(c)
	wantKeys := []uint64{4, 1, 2, 3} // score desc, key asc on the 5/5 tie
	for i, w := range wantKeys {
		if c[i].key != w {
			t.Fatalf("order[%d] = key %d (score %d), want key %d", i, c[i].key, c[i].score, w)
		}
	}
}

func TestInterleaveRoundRobin(t *testing.T) {
	a := []candidate{{key: 10}, {key: 11}, {key: 12}}
	b := []candidate{{key: 20}}
	c := []candidate{{key: 30}, {key: 31}}
	got := interleave([][]candidate{a, b, c})
	want := []uint64{10, 20, 30, 11, 31, 12}
	if len(got) != len(want) {
		t.Fatalf("interleave returned %d candidates, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].key != w {
			t.Fatalf("interleave[%d] = %d, want %d", i, got[i].key, w)
		}
	}
	if len(interleave(nil)) != 0 {
		t.Fatal("interleave(nil) non-empty")
	}
}

// TestInterleaveWeighted pins the priority-weighted promotion interleave:
// a weight-2 queue contributes two candidates per round to a weight-1
// neighbor's one, the tail drains in order once the heavy queue empties,
// and weight 1 everywhere reproduces the equal-share round-robin.
func TestInterleaveWeighted(t *testing.T) {
	mk := func(keys ...uint64) []candidate {
		c := make([]candidate, len(keys))
		for i, k := range keys {
			c[i].key = k
		}
		return c
	}
	got := interleaveInto(nil, [][]candidate{mk(10, 11, 12, 13), mk(20, 21, 22, 23)}, []int{2, 1})
	want := []uint64{10, 11, 20, 12, 13, 21, 22, 23}
	if len(got) != len(want) {
		t.Fatalf("weighted interleave returned %d candidates, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].key != w {
			t.Fatalf("weighted[%d] = %d, want %d (full order %v)", i, got[i].key, w, got)
		}
	}
	// Equal weights == the unweighted round-robin.
	a, b := mk(1, 2, 3), mk(7, 8)
	eq := interleaveInto(nil, [][]candidate{a, b}, []int{1, 1})
	rr := interleave([][]candidate{mk(1, 2, 3), mk(7, 8)})
	for i := range rr {
		if eq[i].key != rr[i].key {
			t.Fatalf("equal weights diverge from round-robin at %d: %v vs %v", i, eq, rr)
		}
	}
}

// TestScanEpochPriorityWeighting drives the integration path: with two
// tenants both holding hot NVM pages, the priority-2 tenant's candidates
// take two slots per round of the promotion order.
func TestScanEpochPriorityWeighting(t *testing.T) {
	e, err := New(Config{
		DRAMPages: 16, NVMPages: 32, Shards: 1, Core: smallCore(),
		Tenants: []TenantConfig{
			{ID: 0, DRAMQuota: 8, Priority: 2},
			{ID: 1, DRAMQuota: 8}, // default priority 1
		},
		ScanInterval: time.Hour,
		QueueLen:     4,
		BatchSize:    16,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Drive scanEpoch's queue path directly (no worker pool draining).
	e.state.Store(stateStarted)
	e.nodes[0].batchCh = make(chan *promoBatch, e.cfg.QueueLen)

	heat := func(tn TenantID, page uint64, touches int) {
		e.tbl.Insert(tn, page, mm.LocNVM)
		e.nodes[0].nvmUsed.Add(1)
		for i := 0; i < touches; i++ {
			e.tbl.Touch(tn, page, trace.OpWrite)
		}
	}
	// Scores make each tenant's internal order deterministic.
	for i, p := range []uint64{10, 11, 12, 13} {
		heat(0, p, 9-i)
	}
	for i, p := range []uint64{20, 21, 22, 23} {
		heat(1, p, 9-i)
	}
	e.scanEpoch(false)

	batch := <-e.nodes[0].batchCh
	want := []uint64{
		tableKey(0, 10), tableKey(0, 11), tableKey(1, 20),
		tableKey(0, 12), tableKey(0, 13), tableKey(1, 21),
		tableKey(1, 22), tableKey(1, 23),
	}
	if len(batch.c) != len(want) {
		t.Fatalf("batch holds %d keys, want %d", len(batch.c), len(want))
	}
	for i, w := range want {
		if batch.c[i].key != w {
			tn, p := splitKey(batch.c[i].key)
			t.Fatalf("batch[%d] = tenant %d page %d, want tenant %d page %d",
				i, tn, p, w>>pageBits, w&maxTablePage)
		}
	}
	if ts, _ := e.TenantStats(0); ts.Priority != 2 {
		t.Fatalf("tenant 0 priority = %d, want 2", ts.Priority)
	}
}
