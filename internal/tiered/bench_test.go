package tiered

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hybridmem/internal/mm"
	"hybridmem/internal/trace"
)

// benchGoroutines are the fan-outs the ISSUE's scaling story is told at.
var benchGoroutines = []int{1, 4, 16}

// benchShards compares the single-lock baseline against a sharded table.
var benchShards = []int{1, 64}

// BenchmarkShardedTable measures the hit path (lookup + atomic counter
// update) on a pre-populated table, sharded vs single-lock, across
// goroutine counts. b.N operations total, split across the goroutines.
func BenchmarkShardedTable(b *testing.B) {
	const pages = 1 << 14
	for _, shards := range benchShards {
		for _, g := range benchGoroutines {
			b.Run(fmt.Sprintf("shards=%d/goroutines=%d", shards, g), func(b *testing.B) {
				tbl, err := NewTable(shards)
				if err != nil {
					b.Fatal(err)
				}
				for p := uint64(0); p < pages; p++ {
					tbl.Insert(DefaultTenant, p, mm.LocNVM)
				}
				// Per-worker pseudorandom page sequences, generated off
				// the clock.
				seqs := make([][]uint64, g)
				for w := range seqs {
					rng := rand.New(rand.NewSource(int64(w) + 1))
					seqs[w] = make([]uint64, 4096)
					for i := range seqs[w] {
						seqs[w][i] = uint64(rng.Intn(pages))
					}
				}
				b.ResetTimer()
				var wg sync.WaitGroup
				for w := 0; w < g; w++ {
					ops := b.N / g
					if w < b.N%g {
						ops++
					}
					wg.Add(1)
					go func(w, ops int) {
						defer wg.Done()
						seq := seqs[w]
						for i := 0; i < ops; i++ {
							tbl.Touch(DefaultTenant, seq[i%len(seq)], trace.OpRead)
						}
					}(w, ops)
				}
				wg.Wait()
			})
		}
	}
}

// BenchmarkTieredServe measures the full online serve path — sharded
// lookup, fault cascade, background daemon live — replaying a real
// workload trace closed-loop, sharded vs single-lock, across goroutine
// counts.
func BenchmarkTieredServe(b *testing.B) {
	recs, dram, nvm := genTrace(b, "bodytrack", 0.05, 1)
	for _, shards := range benchShards {
		for _, g := range benchGoroutines {
			b.Run(fmt.Sprintf("shards=%d/goroutines=%d", shards, g), func(b *testing.B) {
				e, err := New(Config{DRAMPages: dram, NVMPages: nvm, Shards: shards})
				if err != nil {
					b.Fatal(err)
				}
				if err := e.Start(); err != nil {
					b.Fatal(err)
				}
				defer func() {
					if err := e.Stop(); err != nil {
						b.Fatal(err)
					}
				}()
				// Warm pass so the steady state, not initial faulting,
				// dominates the measurement.
				for _, r := range recs {
					if _, err := e.Serve(r.Addr, r.Op); err != nil {
						b.Fatal(err)
					}
				}
				b.ResetTimer()
				var wg sync.WaitGroup
				for w := 0; w < g; w++ {
					ops := b.N / g
					if w < b.N%g {
						ops++
					}
					wg.Add(1)
					go func(w, ops int) {
						defer wg.Done()
						i := len(recs) * w / g
						for n := 0; n < ops; n++ {
							r := recs[i]
							i++
							if i == len(recs) {
								i = 0
							}
							if _, err := e.Serve(r.Addr, r.Op); err != nil {
								b.Error(err)
								return
							}
						}
					}(w, ops)
				}
				wg.Wait()
			})
		}
	}
}

// BenchmarkServeBatch measures what batch amortization buys the engine
// serve path: the same steady-state hit stream served through
// ServeTenantBatch at sizes 1/16/64/256, single-goroutine so the numbers
// isolate per-call overhead, not contention. size=1 pays the full
// engine-state/tenant/flush cost per access; the larger sizes amortize it
// and replace the per-access striped atomic Adds with one flush per
// touched stripe per batch. ns/op is per access (b.N counts accesses).
// CI gates size=1 and size=64 against BENCH_baseline.json, so the batch
// API's advantage is tracked run over run.
func BenchmarkServeBatch(b *testing.B) {
	const enginePages = 1 << 12
	for _, size := range []int{1, 16, 64, 256} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			e, err := New(Config{
				DRAMPages: enginePages + 64, NVMPages: 64, Shards: 64,
				ScanInterval: time.Hour,
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := e.Start(); err != nil {
				b.Fatal(err)
			}
			defer func() {
				if err := e.Stop(); err != nil {
					b.Fatal(err)
				}
			}()
			for p := uint64(0); p < enginePages; p++ {
				if _, err := e.Serve(p*4096, trace.OpRead); err != nil {
					b.Fatal(err)
				}
			}
			addrs := make([]uint64, size)
			ops := make([]trace.Op, size)
			out := make([]ServeResult, size)
			x := uint64(0x9E3779B97F4A7C15)
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; {
				k := size
				if rem := b.N - n; k > rem {
					k = rem
				}
				for j := 0; j < k; j++ {
					x = x*6364136223846793005 + 1442695040888963407
					addrs[j] = ((x >> 33) & (enginePages - 1)) * 4096
					ops[j] = trace.OpRead
					if x&1 == 0 {
						ops[j] = trace.OpWrite
					}
				}
				if _, err := e.ServeTenantBatch(DefaultTenant, addrs[:k], ops[:k], out[:k]); err != nil {
					b.Fatal(err)
				}
				n += k
			}
		})
	}
}

// touchTable is the hit-path surface BenchmarkServeParallel drives, so the
// lock-free table and the locked reference (table_test.go) are selectable
// per sub-benchmark: -bench 'BenchmarkServeParallel/impl=lockfree' vs
// 'impl=locked'.
type touchTable interface {
	Insert(TenantID, uint64, mm.Location) bool
	Touch(TenantID, uint64, trace.Op) (mm.Location, bool)
}

// BenchmarkServeParallel measures the table hit path under b.RunParallel
// at 1/4/16/64 goroutines (GOMAXPROCS is raised to the goroutine count for
// the duration of each sub-benchmark), lock-free vs the pre-PR locked
// reference implementation, with allocations reported — plus the full
// engine serve path on a single-node vs a two-node topology, so the cost
// of the per-node pools and home-node attribution is tracked run over
// run. This is the CI perf-gated suite: cmd/benchjson diffs the lockfree
// and engine/nodes=1 numbers against BENCH_baseline.json, so the
// single-node serve path (table probe and full engine) must stay within
// the regression budget; the nodes=2 variants are recorded but ungated.
func BenchmarkServeParallel(b *testing.B) {
	const pages = 1 << 14
	impls := []struct {
		name string
		make func() touchTable
	}{
		{"lockfree", func() touchTable {
			tbl, err := NewTable(64)
			if err != nil {
				b.Fatal(err)
			}
			return tbl
		}},
		{"locked", func() touchTable { return newLockedTable(64) }},
	}
	for _, impl := range impls {
		for _, g := range []int{1, 4, 16, 64} {
			b.Run(fmt.Sprintf("impl=%s/goroutines=%d", impl.name, g), func(b *testing.B) {
				tbl := impl.make()
				for p := uint64(0); p < pages; p++ {
					tbl.Insert(DefaultTenant, p, mm.LocNVM)
				}
				prev := runtime.GOMAXPROCS(g)
				defer runtime.GOMAXPROCS(prev)
				var worker atomic.Uint64
				b.ReportAllocs()
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					// Per-goroutine pseudorandom page walk, no shared state.
					x := worker.Add(1) * 0x9E3779B97F4A7C15
					op := trace.OpRead
					if x&1 == 0 {
						op = trace.OpWrite
					}
					for pb.Next() {
						x = x*6364136223846793005 + 1442695040888963407
						tbl.Touch(DefaultTenant, (x>>33)&(pages-1), op)
					}
				})
			})
		}
	}

	// Engine hit path, single-node vs two-node topology. DRAM holds the
	// whole working set (the proposed policy faults into DRAM) and the
	// daemon is quiesced, so the measurement is the steady-state serve
	// path: lock-free probe, striped tallies, and — on the two-node
	// engine — the per-node access attribution.
	const enginePages = 1 << 12
	for _, nodes := range []int{1, 2} {
		for _, g := range []int{1, 16} {
			b.Run(fmt.Sprintf("impl=engine/nodes=%d/goroutines=%d", nodes, g), func(b *testing.B) {
				dram, nvm := enginePages+64, 64
				cfg := Config{
					DRAMPages: dram, NVMPages: nvm, Shards: 64,
					ScanInterval: time.Hour,
				}
				if nodes > 1 {
					cfg.Topology = EvenTopology(nodes, dram, nvm)
				}
				e, err := New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if err := e.Start(); err != nil {
					b.Fatal(err)
				}
				defer func() {
					if err := e.Stop(); err != nil {
						b.Fatal(err)
					}
				}()
				for p := uint64(0); p < enginePages; p++ {
					if _, err := e.Serve(p*4096, trace.OpRead); err != nil {
						b.Fatal(err)
					}
				}
				prev := runtime.GOMAXPROCS(g)
				defer runtime.GOMAXPROCS(prev)
				var worker atomic.Uint64
				b.ReportAllocs()
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					x := worker.Add(1) * 0x9E3779B97F4A7C15
					op := trace.OpRead
					if x&1 == 0 {
						op = trace.OpWrite
					}
					for pb.Next() {
						x = x*6364136223846793005 + 1442695040888963407
						if _, err := e.Serve(((x>>33)&(enginePages-1))*4096, op); err != nil {
							b.Error(err)
							return
						}
					}
				})
			})
		}
	}
}
