package tiered

import (
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hybridmem/internal/clockdwf"
	"hybridmem/internal/core"
	"hybridmem/internal/memspec"
	"hybridmem/internal/mm"
	"hybridmem/internal/obs"
	"hybridmem/internal/policy"
	"hybridmem/internal/trace"
)

// Engine lifecycle errors.
var (
	// ErrNotStarted is returned by Serve before Start.
	ErrNotStarted = errors.New("tiered: engine not started")
	// ErrStopped is returned by Serve after Stop.
	ErrStopped = errors.New("tiered: engine stopped")
	// ErrUnknownTenant is returned by ServeTenant for a tenant the engine
	// was not configured with.
	ErrUnknownTenant = errors.New("tiered: unknown tenant")
)

// ErrPageRange is returned for an address whose page number does not fit
// the namespaced keyspace. It is a prebuilt sentinel, not a per-call
// fmt.Errorf, so a flood of out-of-range addresses (hashed string keys
// cover the full 64-bit space) is rejected without allocating.
var ErrPageRange = fmt.Errorf("tiered: page exceeds the %d-bit namespaced keyspace", pageBits)

// maxFaultRetries bounds the reserve/insert retry loops on the fault path.
// Each retry means another goroutine won a race; hitting the bound would
// take adversarial scheduling, so it is treated as a bug, not backpressure.
const maxFaultRetries = 256

// Config describes an online engine.
type Config struct {
	// Policy selects the migration algorithm (default Proposed). Every
	// tenant runs its own instance of the same policy kind, so adaptive
	// threshold state is independent per tenant.
	Policy Kind
	// DRAMPages and NVMPages are the zone capacities in frames; both must
	// be at least 1.
	DRAMPages, NVMPages int
	// Topology splits the zone capacities across NUMA nodes: per-node
	// DRAM/NVM frame pools, shard groups mapped to home nodes, and one
	// migration pipeline per node. Placement prefers a page's home node
	// and goes remote only when the home node cannot hand the tenant a
	// frame (pool full, or the tenant past its node share with the spill
	// pool fully borrowed). The zero value is a single uniform
	// node, which behaves bit-identically to the pre-topology engine.
	// When Topology.Nodes is set, its pools must sum to DRAMPages and
	// NVMPages exactly. Synchronous mode requires a single node.
	Topology Topology
	// Tenants partitions the engine into isolated page namespaces with
	// per-tenant DRAM quotas. DRAM frames covered by no quota form the
	// shared spill pool every tenant may borrow from; a tenant's DRAM
	// residency never exceeds its quota plus the spill pool. Nil means a
	// single DefaultTenant owning all of DRAM — the engine then behaves
	// exactly like the pre-tenant, single-namespace engine. Quotas must
	// total at most DRAMPages, IDs must be unique, and in Synchronous mode
	// only the single default tenant is allowed.
	Tenants []TenantConfig
	// Shards is the page-table shard count, rounded up to a power of two.
	// 0 picks 4x GOMAXPROCS; 1 is the single-lock baseline.
	Shards int
	// Core carries the proposed scheme's thresholds and windows (zero
	// value = core.DefaultConfig()).
	Core core.Config
	// Adaptive tunes the adaptive controller (zero value =
	// core.DefaultAdaptiveConfig(); only used by Kind Adaptive).
	Adaptive core.AdaptiveConfig
	// DWF tunes the CLOCK-DWF baseline (zero value =
	// clockdwf.DefaultConfig(); only used in Synchronous mode).
	DWF clockdwf.Config
	// Spec supplies the technology parameters the thresholds are costed
	// against (zero value = memspec.Default()).
	Spec memspec.Spec
	// Synchronous runs the single-threaded reference policy inline under
	// one lock instead of the sharded fast path + daemon: every access
	// produces exactly the counts internal/sim would. This is the
	// deterministic mode the equivalence check uses.
	Synchronous bool
	// ScanInterval is the daemon's hotness-scan period (default 2ms).
	ScanInterval time.Duration
	// BatchSize caps the pages per promotion batch (default 128).
	BatchSize int
	// Workers is the number of migration worker goroutines per NUMA node
	// (default 1): every node's promotion pipeline gets its own pinned
	// worker pool, so an N-node engine runs N*Workers workers in total.
	Workers int
	// QueueLen is the promotion-queue depth in batches, per NUMA node
	// (default 16) — each node's pipeline has its own queue. When a queue
	// is full, batches are dropped and counted: migration is a hint, and
	// a page that stays hot is re-found next epoch.
	QueueLen int
	// WarmupRate caps how many restored-hot pages the warm-up feeder may
	// enqueue per node per ScanInterval tick after Restore (default
	// 2*BatchSize). The cap turns the post-restart promotion storm into a
	// paced replay: a few migration epochs instead of one burst that would
	// monopolize the promotion queues against live scan traffic.
	WarmupRate int
	// WarmupDRAMTopK is age-tiered warm-up: Restore places up to this many
	// of the hottest checkpoint-warm pages directly into DRAM (quota- and
	// node-pool-permitting) before serving begins, leaving only the tail
	// to the paced storm. 0 (the default) restores everything into NVM
	// and lets the storm re-promote — the pre-delta-log behavior.
	WarmupDRAMTopK int
	// Events, when non-nil, receives one obs.Event per migration decision
	// (promotion, demotion, eviction, drop) with tenant, node and tier
	// attribution — the trace the admin plane's /events endpoint streams.
	// Publishing is lock-free and allocation-free; a nil ring costs the
	// migration paths a single branch and the serve hit path nothing.
	Events *obs.EventRing
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Policy == "" {
		c.Policy = Proposed
	}
	if c.Shards == 0 {
		c.Shards = 4 * runtime.GOMAXPROCS(0)
	}
	if (c.Core == core.Config{}) {
		c.Core = core.DefaultConfig()
	}
	if (c.Adaptive == core.AdaptiveConfig{}) {
		c.Adaptive = core.DefaultAdaptiveConfig()
	}
	if (c.DWF == clockdwf.Config{}) {
		c.DWF = clockdwf.DefaultConfig()
	}
	if c.Spec.Geometry.PageSizeBytes == 0 {
		c.Spec = memspec.Default()
	}
	if c.ScanInterval == 0 {
		c.ScanInterval = 2 * time.Millisecond
	}
	if c.BatchSize == 0 {
		c.BatchSize = 128
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.QueueLen == 0 {
		c.QueueLen = 16
	}
	if c.WarmupRate == 0 {
		c.WarmupRate = 2 * c.BatchSize
	}
	if len(c.Tenants) == 0 {
		c.Tenants = []TenantConfig{{ID: DefaultTenant, Name: "default", DRAMQuota: c.DRAMPages}}
	} else {
		// Copy before filling defaults: the caller's slice must not be
		// mutated as a side effect of New.
		c.Tenants = append([]TenantConfig(nil), c.Tenants...)
	}
	for i := range c.Tenants {
		if c.Tenants[i].Priority == 0 {
			c.Tenants[i].Priority = 1
		}
	}
	c.Topology = c.Topology.withDefaults(c.DRAMPages, c.NVMPages)
	return c
}

// ServeResult is the outcome of one access.
type ServeResult struct {
	// ServedFrom is the zone that serviced the request (for a fault, the
	// zone the page was loaded into).
	ServedFrom mm.Location
	// Fault reports that the page was not resident.
	Fault bool
}

// Stats is a snapshot of the engine's event counters, summed across
// tenants. The access counters mirror sim.Counts so the two accountings
// are directly comparable; TenantStats breaks them down per tenant.
type Stats struct {
	Accesses                                                  int64
	ReadsDRAM, WritesDRAM, ReadsNVM, WritesNVM                int64
	Faults, FaultsToDRAM, FaultsToNVM                         int64
	Promotions                                                int64
	Demotions, DemotionsFault, DemotionsPromo, DemotionsClean int64
	Evictions                                                 int64
	// Daemon counters: scan epochs run, promotion batches enqueued, and
	// batches dropped on a full queue.
	Scans, Batches, QueueDrops int64
	// Remote placement counters, summed over nodes: faults and promotions
	// whose frame came from a pool other than the page's home node, and
	// demotions that crossed nodes on the way to NVM. All zero on a
	// single-node engine; NodeStats has the per-node breakdown.
	RemoteFaults, RemotePromotions, RemoteDemotions int64
	// ResidentDRAM and ResidentNVM are the current zone occupancies.
	ResidentDRAM, ResidentNVM int64
}

// Hits returns the number of non-faulting accesses.
func (s Stats) Hits() int64 { return s.ReadsDRAM + s.WritesDRAM + s.ReadsNVM + s.WritesNVM }

// HitsDRAM returns hits serviced by DRAM.
func (s Stats) HitsDRAM() int64 { return s.ReadsDRAM + s.WritesDRAM }

// HitsNVM returns hits serviced by NVM.
func (s Stats) HitsNVM() int64 { return s.ReadsNVM + s.WritesNVM }

// Sub returns the event-count deltas since prev. The occupancy fields are
// levels, not counts, and are carried over unchanged.
func (s Stats) Sub(prev Stats) Stats {
	d := Stats{
		Accesses:         s.Accesses - prev.Accesses,
		ReadsDRAM:        s.ReadsDRAM - prev.ReadsDRAM,
		WritesDRAM:       s.WritesDRAM - prev.WritesDRAM,
		ReadsNVM:         s.ReadsNVM - prev.ReadsNVM,
		WritesNVM:        s.WritesNVM - prev.WritesNVM,
		Faults:           s.Faults - prev.Faults,
		FaultsToDRAM:     s.FaultsToDRAM - prev.FaultsToDRAM,
		FaultsToNVM:      s.FaultsToNVM - prev.FaultsToNVM,
		Promotions:       s.Promotions - prev.Promotions,
		Demotions:        s.Demotions - prev.Demotions,
		DemotionsFault:   s.DemotionsFault - prev.DemotionsFault,
		DemotionsPromo:   s.DemotionsPromo - prev.DemotionsPromo,
		DemotionsClean:   s.DemotionsClean - prev.DemotionsClean,
		Evictions:        s.Evictions - prev.Evictions,
		Scans:            s.Scans - prev.Scans,
		Batches:          s.Batches - prev.Batches,
		QueueDrops:       s.QueueDrops - prev.QueueDrops,
		RemoteFaults:     s.RemoteFaults - prev.RemoteFaults,
		RemotePromotions: s.RemotePromotions - prev.RemotePromotions,
		RemoteDemotions:  s.RemoteDemotions - prev.RemoteDemotions,
		ResidentDRAM:     s.ResidentDRAM,
		ResidentNVM:      s.ResidentNVM,
	}
	return d
}

// cacheLine is the padding unit the counter blocks are laid out in.
const cacheLine = 64

// padCounter is an atomic counter alone on its cache line: fields that
// stay engine-global (they are off the hit path) still must not share a
// line, or a fault burst would invalidate every counter next to it on
// every core.
type padCounter struct {
	atomic.Int64
	_ [cacheLine - 8]byte
}

// serveCell is one stripe of the engine's per-access counters: the five
// fields every hit touches, together on one line, padded two lines apart
// so the adjacent-line prefetcher cannot couple neighboring stripes. The
// hit path picks a stripe from the page key, so cores serving different
// pages tally on different lines and never contend.
type serveCell struct {
	accesses   atomic.Int64
	readsDRAM  atomic.Int64
	writesDRAM atomic.Int64
	readsNVM   atomic.Int64
	writesNVM  atomic.Int64
	_          [2*cacheLine - 5*8]byte
}

// maxStripes caps the serve-cell count (per engine and per tenant): beyond
// this, more stripes buy no contention relief, only summing work.
const maxStripes = 64

// counters is the engine's rare-path tally block: everything the fault,
// migration and daemon paths count. The per-access counters live in the
// striped serve cells instead and are aggregated lazily by Stats.
type counters struct {
	faults, faultsToDRAM, faultsToNVM                         padCounter
	promotions                                                padCounter
	demotions, demotionsFault, demotionsPromo, demotionsClean padCounter
	evictions                                                 padCounter
	scans, batches, queueDrops                                padCounter
	// candidates counts scan-identified hot pages across all epochs;
	// coalesced counts candidates skipped because a previous epoch's
	// promotion of the same page was still in flight.
	candidates, coalesced padCounter
}

// Engine lifecycle states.
const (
	stateNew int32 = iota
	stateStarted
	stateStopped
)

// dramReserve is the outcome of a DRAM frame reservation.
type dramReserve int

const (
	// dramReserved: one frame claimed from some node's pool (and, above
	// the tenant's share on that node, one spill token taken).
	dramReserved dramReserve = iota
	// dramTenantFull: the tenant is at quota + spill; it must demote one
	// of its own pages to proceed.
	dramTenantFull
	// dramSpillFull: every node with physical room would put the tenant
	// above its apportioned share there, and the shared spill pool is
	// fully borrowed. A tenant holding DRAM demotes its own coldest
	// (preferring a node where it is over share, which frees a token); a
	// quota-less tenant demotes within some token-holding tenant.
	dramSpillFull
	// dramNodeFull: every node's DRAM pool is physically full. Handled
	// like dramSpillFull — freeing any frame (own page first, else a
	// borrower's) unblocks the retry. Unreachable on a single node, where
	// the tenant-level checks bound total occupancy below capacity.
	dramNodeFull
)

// Engine is the online tiered-memory engine. Serve and ServeTenant are
// safe for concurrent use by any number of goroutines once Start has
// returned; Stop shuts the migration daemon down gracefully (in-flight
// batches drain first).
type Engine struct {
	cfg      Config
	tbl      *Table
	pageSize uint64
	// pageShift is log2(pageSize) when the page size is a power of two —
	// every shipped geometry — so the serve paths derive page numbers with
	// a shift instead of a 64-bit divide; -1 selects the division fallback
	// for exotic geometries (any positive multiple of the line size is
	// legal).
	pageShift int

	// tenants is immutable after New; def caches the DefaultTenant's
	// state so Serve skips the map lookup on the hot path.
	tenants map[TenantID]*tenantState
	// tenantList is ID-sorted, the deterministic iteration order of scans
	// and reports.
	tenantList []*tenantState
	def        *tenantState
	spill      int64
	// nodes is the NUMA topology's runtime state: one CAS-exact DRAM/NVM
	// frame pool per node (the per-node split of the old global
	// dramUsed/nvmUsed), plus each node's placement counters and its
	// slice of the migration daemon. multiNode gates the extra hot-path
	// work (per-node access attribution), so a single-node engine's serve
	// path is exactly the flat engine's.
	nodes     []*nodeState
	multiNode bool
	// spillUsed counts the spill-pool frames currently borrowed across
	// all tenants (every tenant frame above its per-node quota share
	// holds one token; the pool is borrowable from any node). It stays an
	// exact CAS-maintained level on its own cache line: quota enforcement
	// needs a precise value, and hits never touch it.
	_         [cacheLine]byte
	spillUsed atomic.Int64
	_         [cacheLine - 8]byte

	// dramCap and nvmCap are the zone totals (the sums of the node
	// pools), kept for capacity messages and invariant checks.
	dramCap, nvmCap int64

	// serveCells stripes the per-access counters by page key; Stats sums
	// them lazily. stripeMask is len(serveCells)-1 (a power of two).
	serveCells []serveCell
	stripeMask uint64
	// scratchPool recycles ServeTenantBatch staging buffers (batch.go), so
	// steady-state batched serves allocate nothing.
	scratchPool sync.Pool

	c     counters
	state atomic.Int32

	// Synchronous mode: the reference policy behind one lock.
	mu      sync.Mutex
	backing policy.Policy

	// Daemon plumbing (asynchronous mode). One scanner drives a
	// scan/promotion pipeline per node — each node has its own candidate
	// scratch, promotion queue and node-pinned workers (on nodeState) —
	// and batches are pooled: the scanner takes buffers from batchPool
	// and the workers return them after draining, so steady-state epochs
	// allocate nothing.
	stopCh    chan struct{}
	batchPool sync.Pool
	scanWG    sync.WaitGroup
	workerWG  sync.WaitGroup
	scanMu    sync.Mutex
	// inflight holds the table keys of pages enqueued for promotion but
	// not yet applied, so a page scanned hot in consecutive epochs is not
	// enqueued twice.
	inflightMu sync.Mutex
	inflight   map[uint64]struct{}
	// drained closes once the winning Stop has fully quiesced the daemon,
	// so a Stop that loses the race still waits for the drain guarantee.
	drained chan struct{}

	// Restore / warm-up state (restore.go). warmup is the checkpointed hot
	// set queued by Restore (score-descending), fed into the per-node
	// promotion queues by warmupLoop after Start; warmWG tracks that
	// feeder. The counters are read by metrics and artifacts.
	warmup       []candidate
	warmWG       sync.WaitGroup
	restored     atomic.Int64
	restoreSkips atomic.Int64
	warmPending  atomic.Int64
	warmEnqueued atomic.Int64
	warmDirect   atomic.Int64

	// ring is the optional migration-event trace (Config.Events); nil
	// when no observer is attached.
	ring *obs.EventRing
	// Scan-epoch introspection, written only under scanMu (single
	// writer): last/max epoch duration and the candidate count of the
	// last epoch. Read lock-free by DaemonStats.
	scanDurLast, scanDurMax atomic.Int64
	candLast                atomic.Int64
}

// New builds an engine. Call Start before Serve.
func New(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if cfg.DRAMPages < 1 || cfg.NVMPages < 1 {
		return nil, fmt.Errorf("tiered: both zones need frames, got %d/%d", cfg.DRAMPages, cfg.NVMPages)
	}
	if err := cfg.Topology.validate(cfg.DRAMPages, cfg.NVMPages); err != nil {
		return nil, err
	}
	if err := cfg.Core.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if cfg.BatchSize < 1 || cfg.Workers < 1 || cfg.QueueLen < 1 || cfg.ScanInterval < 0 {
		return nil, fmt.Errorf("tiered: invalid daemon config (batch %d, workers %d, queue %d, interval %v)",
			cfg.BatchSize, cfg.Workers, cfg.QueueLen, cfg.ScanInterval)
	}
	if cfg.WarmupRate < 1 {
		return nil, fmt.Errorf("tiered: invalid warm-up rate %d", cfg.WarmupRate)
	}
	if cfg.WarmupDRAMTopK < 0 {
		return nil, fmt.Errorf("tiered: invalid warm-up DRAM top-K %d", cfg.WarmupDRAMTopK)
	}
	spill, err := validateTenants(cfg.Tenants, cfg.DRAMPages)
	if err != nil {
		return nil, err
	}
	if cfg.Synchronous && (len(cfg.Tenants) != 1 || cfg.Tenants[0].ID != DefaultTenant ||
		cfg.Tenants[0].DRAMQuota != cfg.DRAMPages) {
		// The reference policies know nothing about namespaces or quotas:
		// a partial quota would be silently ignored (and then tripped over
		// by CheckInvariants' spill accounting), so reject it up front.
		return nil, fmt.Errorf("tiered: synchronous mode serves only the single default tenant owning all of DRAM")
	}
	numNodes := cfg.Topology.NumNodes()
	if cfg.Synchronous && numNodes != 1 {
		// Same reasoning as quotas: the reference policies model one
		// uniform machine, and sim equivalence is defined on it.
		return nil, fmt.Errorf("tiered: synchronous mode runs on a single-node topology, got %d nodes", numNodes)
	}
	tbl, err := NewTableNUMA(cfg.Shards, numNodes)
	if err != nil {
		return nil, err
	}
	// Record the rounded-up shard count: Config() reports what the table
	// actually uses, and tierd's artifact must attribute results to it.
	cfg.Shards = tbl.NumShards()
	stripes := cfg.Shards
	if stripes > maxStripes {
		stripes = maxStripes
	}
	pageShift := -1
	if ps := uint64(cfg.Spec.Geometry.PageSizeBytes); ps&(ps-1) == 0 {
		pageShift = bits.TrailingZeros64(ps)
	}
	e := &Engine{
		cfg:        cfg,
		tbl:        tbl,
		pageSize:   uint64(cfg.Spec.Geometry.PageSizeBytes),
		pageShift:  pageShift,
		tenants:    make(map[TenantID]*tenantState, len(cfg.Tenants)),
		spill:      spill,
		multiNode:  numNodes > 1,
		dramCap:    int64(cfg.DRAMPages),
		nvmCap:     int64(cfg.NVMPages),
		serveCells: make([]serveCell, stripes),
		stripeMask: uint64(stripes - 1),
		inflight:   make(map[uint64]struct{}),
		drained:    make(chan struct{}),
		ring:       cfg.Events,
	}
	for n, nc := range cfg.Topology.Nodes {
		ns := &nodeState{
			id:      n,
			dramCap: int64(nc.DRAMPages),
			nvmCap:  int64(nc.NVMPages),
		}
		if e.multiNode {
			ns.accesses = make([]padCounter, stripes)
		}
		e.nodes = append(e.nodes, ns)
	}
	for _, tc := range cfg.Tenants {
		name := tc.Name
		if name == "" {
			name = fmt.Sprintf("tenant-%d", tc.ID)
		}
		ts := &tenantState{
			id:       tc.ID,
			name:     name,
			quota:    int64(tc.DRAMQuota),
			cap:      int64(tc.DRAMQuota) + spill,
			priority: tc.Priority,
			nodeUsed: make([]atomic.Int64, numNodes),
			cells:    make([]tenantCell, stripes),
		}
		if !cfg.Synchronous {
			ts.pol, err = newOnlinePolicy(cfg.Policy, cfg.Core, cfg.Adaptive)
			if err != nil {
				return nil, err
			}
		}
		e.tenants[tc.ID] = ts
		e.tenantList = append(e.tenantList, ts)
	}
	sort.Slice(e.tenantList, func(i, j int) bool { return e.tenantList[i].id < e.tenantList[j].id })
	// Apportion the quotas jointly, in ID order, so no node backs more
	// guaranteed shares than its pool holds.
	quotas := make([]int64, len(e.tenantList))
	for i, ts := range e.tenantList {
		ts.idx = i
		quotas[i] = ts.quota
	}
	for i, shares := range apportionQuotas(quotas, cfg.Topology.Nodes, e.dramCap) {
		e.tenantList[i].nodeQuota = shares
	}
	for _, ns := range e.nodes {
		ns.scanBufs = make([][]candidate, len(e.tenantList))
	}
	e.def = e.tenants[DefaultTenant]
	if cfg.Synchronous {
		e.backing, err = newBackingPolicy(cfg.Policy, cfg.DRAMPages, cfg.NVMPages, cfg.Core, cfg.Adaptive, cfg.DWF)
		if err != nil {
			return nil, err
		}
	}
	return e, nil
}

// Config returns the engine's effective (default-filled) configuration.
func (e *Engine) Config() Config { return e.cfg }

// PolicyName returns the name of the policy the engine runs.
func (e *Engine) PolicyName() string {
	if e.backing != nil {
		return e.backing.Name()
	}
	return e.tenantList[0].pol.Name()
}

// SpillPool returns the size of the shared DRAM spill pool: the frames
// covered by no tenant quota, which any tenant may borrow.
func (e *Engine) SpillPool() int64 { return e.spill }

// TenantIDs returns the configured tenants in ascending ID order.
func (e *Engine) TenantIDs() []TenantID {
	ids := make([]TenantID, len(e.tenantList))
	for i, ts := range e.tenantList {
		ids[i] = ts.id
	}
	return ids
}

// TenantByName resolves a tenant by its configured Name (a nil-Tenants
// engine names its implicit tenant "default"; explicitly configured
// tenants without a Name fall back to "tenant-<ID>"). It
// is the network front end's AUTH hook: a connection's token resolves to
// the tenant namespace it will be served under. Names are matched
// exactly; the tenant set is immutable after New, so this is safe to call
// concurrently with Serve.
func (e *Engine) TenantByName(name string) (TenantID, bool) {
	for _, ts := range e.tenantList {
		if ts.name == name {
			return ts.id, true
		}
	}
	return 0, false
}

// Drop removes a resident page from memory entirely, releasing its frame
// back to the node pool it came from (and, for a DRAM frame above the
// tenant's node share, handing its spill token back). It returns whether
// the page was resident. This is the network front end's DEL: unlike
// eviction, which picks its own victim, Drop targets one page. Dropping
// races cleanly with concurrent serves and migrations — if the page moves
// between the observation and the removal, Drop retries against its new
// location. Counted as an eviction in Stats. Not available in synchronous
// mode, where the reference policy owns all residency decisions.
func (e *Engine) Drop(tenant TenantID, addr uint64) (bool, error) {
	switch e.state.Load() {
	case stateStarted:
	case stateNew:
		return false, ErrNotStarted
	default:
		return false, ErrStopped
	}
	ts := e.tenants[tenant]
	if ts == nil {
		return false, fmt.Errorf("%w: %d", ErrUnknownTenant, tenant)
	}
	if e.backing != nil {
		return false, errors.New("tiered: Drop is not available in synchronous mode")
	}
	page := e.pageOf(addr)
	if page > maxTablePage {
		return false, ErrPageRange
	}
	for attempt := 0; attempt < maxFaultRetries; attempt++ {
		loc, ok := e.tbl.Peek(tenant, page)
		if !ok {
			return false, nil
		}
		if node, removed := e.tbl.RemoveIfNode(tenant, page, loc); removed {
			if loc == mm.LocDRAM {
				e.releaseDRAM(ts, node)
			} else {
				e.releaseNVM(node)
			}
			e.c.evictions.Add(1)
			ts.c.evictions.Add(1)
			e.publishEvent(tenant, page, node, tierOf(loc), obs.TierNone, obs.ReasonDrop, 0)
			return true, nil
		}
	}
	return false, errors.New("tiered: drop retries exhausted")
}

// TenantStats returns a snapshot of one tenant's counters, or false for an
// unknown tenant. Safe to call concurrently with Serve, under the same
// lazy-sum consistency model as Stats: each field is summed from its
// striped cells (or read from its own atomic) one at a time while serves
// proceed, so every field is individually exact and monotone
// non-decreasing across snapshots, but different fields may be mutually
// torn — Accesses can already include an access whose hit has not been
// tallied into HitsDRAM/HitsNVM yet. Cross-field identities hold exactly
// only on a quiesced engine.
func (e *Engine) TenantStats(id TenantID) (TenantStats, bool) {
	ts, ok := e.tenants[id]
	if !ok {
		return TenantStats{}, false
	}
	accesses, hitsDRAM, hitsNVM := ts.serveTotals()
	st := TenantStats{
		ID:               ts.id,
		Name:             ts.name,
		Accesses:         accesses,
		HitsDRAM:         hitsDRAM,
		HitsNVM:          hitsNVM,
		Faults:           ts.c.faults.Load(),
		Promotions:       ts.c.promotions.Load(),
		Demotions:        ts.c.demotions.Load(),
		Evictions:        ts.c.evictions.Load(),
		ResidentDRAM:     ts.dramUsed.Load(),
		DRAMQuota:        ts.quota,
		DRAMCap:          ts.cap,
		Priority:         ts.priority,
		NodeQuota:        append([]int64(nil), ts.nodeQuota...),
		NodeResidentDRAM: make([]int64, len(ts.nodeUsed)),
	}
	for n := range ts.nodeUsed {
		st.NodeResidentDRAM[n] = ts.nodeUsed[n].Load()
	}
	return st, true
}

// Stats returns a snapshot of the engine's counters, aggregating the
// striped per-access cells lazily — the hit path never touches a shared
// line for them. Safe to call concurrently with Serve.
//
// Consistency model: the snapshot is a lazy sum, not an atomic cut.
// Each field is read (and its stripes summed) one load at a time while
// serves proceed, so every event-count field is individually exact and
// monotone non-decreasing from one snapshot to the next, but fields may
// be mutually torn mid-sum: identities that relate fields (for example
// Accesses == Hits() + Faults, or Demotions == DemotionsFault +
// DemotionsPromo) can be off by in-flight accesses in a snapshot taken
// under load. They hold exactly once the engine is quiesced. The
// occupancy fields are levels, exact at the instant each is read.
func (e *Engine) Stats() Stats {
	st := Stats{
		Faults:         e.c.faults.Load(),
		FaultsToDRAM:   e.c.faultsToDRAM.Load(),
		FaultsToNVM:    e.c.faultsToNVM.Load(),
		Promotions:     e.c.promotions.Load(),
		Demotions:      e.c.demotions.Load(),
		DemotionsFault: e.c.demotionsFault.Load(),
		DemotionsPromo: e.c.demotionsPromo.Load(),
		DemotionsClean: e.c.demotionsClean.Load(),
		Evictions:      e.c.evictions.Load(),
		Scans:          e.c.scans.Load(),
		Batches:        e.c.batches.Load(),
		QueueDrops:     e.c.queueDrops.Load(),
	}
	for _, ns := range e.nodes {
		st.ResidentDRAM += ns.dramUsed.Load()
		st.ResidentNVM += ns.nvmUsed.Load()
		st.RemoteFaults += ns.faultsRemote.Load()
		st.RemotePromotions += ns.promosRemote.Load()
		st.RemoteDemotions += ns.demosRemote.Load()
	}
	for i := range e.serveCells {
		c := &e.serveCells[i]
		st.Accesses += c.accesses.Load()
		st.ReadsDRAM += c.readsDRAM.Load()
		st.WritesDRAM += c.writesDRAM.Load()
		st.ReadsNVM += c.readsNVM.Load()
		st.WritesNVM += c.writesNVM.Load()
	}
	return st
}

// Serve services one line-sized access for the default tenant. Hot path:
// one lock-free table probe plus striped atomic counter updates — no mutex
// word is written; faults and migrations take per-shard writer locks.
func (e *Engine) Serve(addr uint64, op trace.Op) (ServeResult, error) {
	return e.ServeTenant(DefaultTenant, addr, op)
}

// pageOf maps an address to its page number: a shift on the power-of-two
// geometries every deployment uses, a divide on the rest.
func (e *Engine) pageOf(addr uint64) uint64 {
	if e.pageShift >= 0 {
		return addr >> uint(e.pageShift)
	}
	return addr / e.pageSize
}

// ServeTenant services one line-sized access within a tenant's namespace.
func (e *Engine) ServeTenant(tenant TenantID, addr uint64, op trace.Op) (ServeResult, error) {
	switch e.state.Load() {
	case stateStarted:
	case stateNew:
		return ServeResult{}, ErrNotStarted
	default:
		return ServeResult{}, ErrStopped
	}
	ts := e.def
	if tenant != DefaultTenant {
		ts = e.tenants[tenant]
	}
	if ts == nil {
		return ServeResult{}, fmt.Errorf("%w: %d", ErrUnknownTenant, tenant)
	}
	page := e.pageOf(addr)
	if page > maxTablePage {
		return ServeResult{}, ErrPageRange
	}
	// The key doubles as the counter stripe selector: accesses to different
	// pages tally on different cache lines, so the hot path's only shared
	// writes are the page's own entry and its stripe. The key is hashed
	// exactly once per access — the probe and the home-node lookup share
	// the mix.
	key := tableKey(ts.id, page)
	cell := key & e.stripeMask
	h := mix(key)
	e.serveCells[cell].accesses.Add(1)
	ts.cells[cell].accesses.Add(1)
	home := 0
	if e.multiNode {
		// Per-node ops attribution, striped like the serve cells. Only
		// multi-node engines pay for it: the single-node hot path is
		// exactly the flat engine's.
		home = e.tbl.HomeNodeHash(h)
		e.nodes[home].accesses[cell].Add(1)
	}
	if e.backing != nil {
		return e.serveSync(ts, cell, page, op)
	}
	if loc, ok := e.tbl.TouchHash(key, h, op); ok {
		e.tallyHit(ts, cell, loc, op)
		return ServeResult{ServedFrom: loc}, nil
	}
	return e.serveFault(ts, cell, key, h, page, home, op)
}

// tierOf maps a memory location to its obs tier.
func tierOf(loc mm.Location) obs.Tier {
	switch loc {
	case mm.LocDRAM:
		return obs.TierDRAM
	case mm.LocNVM:
		return obs.TierNVM
	}
	return obs.TierNone
}

// publishEvent records one migration decision in the attached event ring
// (no-op without one). score carries the policy's windowed counter for
// promotions; zero for the reactive moves. Lock-free, allocation-free.
func (e *Engine) publishEvent(tenant TenantID, page uint64, node int, from, to obs.Tier, reason obs.Reason, score uint64) {
	if e.ring == nil {
		return
	}
	e.ring.Publish(obs.Event{
		TS:     time.Now().UnixNano(),
		Epoch:  e.c.scans.Load(),
		Page:   page,
		Score:  score,
		Tenant: uint16(tenant),
		Node:   uint8(node),
		From:   from,
		To:     to,
		Reason: reason,
	})
}

// tallyHit records a non-faulting access, mirroring sim.Run's accounting,
// in the given stripe of both the global and the tenant's cells.
func (e *Engine) tallyHit(ts *tenantState, cell uint64, loc mm.Location, op trace.Op) {
	c := &e.serveCells[cell]
	switch {
	case loc == mm.LocDRAM && op == trace.OpRead:
		c.readsDRAM.Add(1)
	case loc == mm.LocDRAM:
		c.writesDRAM.Add(1)
	case op == trace.OpRead:
		c.readsNVM.Add(1)
	default:
		c.writesNVM.Add(1)
	}
	tc := &ts.cells[cell]
	if loc == mm.LocDRAM {
		tc.hitsDRAM.Add(1)
	} else {
		tc.hitsNVM.Add(1)
	}
}

// tallyFault records a fault of a page homed on node home, served into
// zone by a frame from node's pool.
func (e *Engine) tallyFault(ts *tenantState, zone mm.Location, home, node int) {
	e.c.faults.Add(1)
	ts.c.faults.Add(1)
	if zone == mm.LocDRAM {
		e.c.faultsToDRAM.Add(1)
	} else {
		e.c.faultsToNVM.Add(1)
	}
	ns := e.nodes[home]
	if node == home {
		ns.faultsLocal.Add(1)
	} else {
		ns.faultsRemote.Add(1)
	}
}

// takeFrame claims one free frame from a CAS-exact pool level bounded by
// cap, or reports that the pool is full — the per-node capacity gate for
// both zones.
func takeFrame(pool *atomic.Int64, cap int64) bool {
	for {
		u := pool.Load()
		if u >= cap {
			return false
		}
		if pool.CompareAndSwap(u, u+1) {
			return true
		}
	}
}

// takeNodeDRAM claims one free frame from a node's DRAM pool.
func (e *Engine) takeNodeDRAM(n int) bool {
	ns := e.nodes[n]
	return takeFrame(&ns.dramUsed, ns.dramCap)
}

// reserveDRAM claims one DRAM frame for a tenant, preferring the page's
// home node and falling back to remote nodes only when the home pool
// cannot hold it. On each node, the first nodeQuota frames come from the
// tenant's apportioned budget; every frame above the node share must take
// a token from the shared spill pool (borrowable cross-node), so the
// tenants' collective borrowing never exceeds the pool, no node's pool
// overflows, and the sum of residencies never exceeds DRAM — which is
// what makes a quota a guarantee: a tenant within its apportioned share
// reserves without demoting anyone. Capacity is enforced by the occupancy
// counters, not a free list: a successful reserve is a promise that an
// Insert/MoveIf will follow (or the reservation is released). The
// tenant's resMu makes the share-vs-borrow classification of each frame
// exact. Returns the node the frame came from.
func (e *Engine) reserveDRAM(ts *tenantState, home int) (int, dramReserve) {
	ts.resMu.Lock()
	u := ts.dramUsed.Load()
	if u >= ts.cap {
		ts.resMu.Unlock()
		return 0, dramTenantFull
	}
	starved := false
	for i := 0; i < len(e.nodes); i++ {
		n := home + i
		if n >= len(e.nodes) {
			n -= len(e.nodes)
		}
		nu := ts.nodeUsed[n].Load()
		token := nu+1 > ts.nodeQuota[n]
		if token && !e.takeSpill() {
			// Physical room may exist here, but the tenant cannot pay
			// for it: a borrower holds the token it needs.
			starved = true
			continue
		}
		if !e.takeNodeDRAM(n) {
			if token {
				e.returnSpill()
			}
			continue
		}
		ts.nodeUsed[n].Store(nu + 1)
		ts.dramUsed.Store(u + 1)
		ts.resMu.Unlock()
		return n, dramReserved
	}
	ts.resMu.Unlock()
	if starved {
		return 0, dramSpillFull
	}
	return 0, dramNodeFull
}

// releaseDRAM returns a tenant's reserved DRAM frame to the given node's
// pool, handing back a spill token when the freed frame was above the
// tenant's share on that node.
func (e *Engine) releaseDRAM(ts *tenantState, node int) {
	ts.resMu.Lock()
	nu := ts.nodeUsed[node].Load()
	if nu > ts.nodeQuota[node] {
		e.returnSpill()
	}
	ts.nodeUsed[node].Store(nu - 1)
	ts.dramUsed.Store(ts.dramUsed.Load() - 1)
	ts.resMu.Unlock()
	e.nodes[node].dramUsed.Add(-1)
}

// takeSpill borrows one frame from the shared spill pool, or reports that
// the pool is fully borrowed.
func (e *Engine) takeSpill() bool {
	return takeFrame(&e.spillUsed, e.spill)
}

// returnSpill hands a borrowed frame back to the pool.
func (e *Engine) returnSpill() {
	e.spillUsed.Add(-1)
}

// reserveNVM claims one free NVM frame, preferring the given node's pool
// and spilling to remote pools when it is full; it reports which pool the
// frame came from, or that every pool is full. NVM is shared across
// tenants: only DRAM, the contended resource, is quota'd.
func (e *Engine) reserveNVM(prefer int) (int, bool) {
	for i := 0; i < len(e.nodes); i++ {
		n := prefer + i
		if n >= len(e.nodes) {
			n -= len(e.nodes)
		}
		ns := e.nodes[n]
		if takeFrame(&ns.nvmUsed, ns.nvmCap) {
			return n, true
		}
	}
	return 0, false
}

// releaseNVM returns a reserved NVM frame to the given node's pool.
func (e *Engine) releaseNVM(node int) {
	e.nodes[node].nvmUsed.Add(-1)
}

// serveFault loads a non-resident page into the zone the tenant's policy
// chooses — onto the page's home node when its pool has room, remotely
// otherwise — demoting and evicting colder pages as capacity requires.
// key's hash h and home node are passed down from ServeTenant, which
// already computed them.
func (e *Engine) serveFault(ts *tenantState, cell, key, h, page uint64, home int, op trace.Op) (ServeResult, error) {
	zone := ts.pol.FaultZone(op)
	for attempt := 0; attempt < maxFaultRetries; attempt++ {
		var node int
		if zone == mm.LocNVM {
			n, ok := e.reserveNVM(home)
			if !ok {
				if err := e.evictOne(); err != nil {
					return ServeResult{}, err
				}
				continue
			}
			node = n
		} else {
			n, r := e.reserveDRAM(ts, home)
			if r != dramReserved {
				if err := e.demoteForReserve(ts, obs.ReasonDemotionFault); err != nil {
					return ServeResult{}, err
				}
				continue
			}
			node = n
		}
		if e.tbl.InsertNode(ts.id, page, zone, node) {
			e.tallyFault(ts, zone, home, node)
			return ServeResult{ServedFrom: zone, Fault: true}, nil
		}
		// Another goroutine faulted the page in first: this access is a
		// hit on wherever it landed.
		e.releaseZone(ts, zone, node)
		if loc, ok := e.tbl.TouchHash(key, h, op); ok {
			e.tallyHit(ts, cell, loc, op)
			return ServeResult{ServedFrom: loc}, nil
		}
		// Inserted and already evicted again: fault anew.
	}
	return ServeResult{}, fmt.Errorf("tiered: tenant %d page %d fault retries exhausted", ts.id, page)
}

// releaseZone returns a reserved frame in either zone to the given node's
// pool.
func (e *Engine) releaseZone(ts *tenantState, zone mm.Location, node int) {
	if zone == mm.LocDRAM {
		e.releaseDRAM(ts, node)
	} else {
		e.releaseNVM(node)
	}
}

// demoteForReserve makes room after a failed DRAM reservation. A tenant
// holding DRAM demotes its own coldest page — quota enforcement never
// victimizes a within-share neighbor — preferring a node where it is over
// its apportioned share, so the demotion also frees the spill token the
// retry may need. A tenant with no DRAM pages at all (a quota-less tenant
// racing for spill) instead demotes within some token-holding tenant, on
// the node it borrows on: those are the only victims whose demotion
// releases a token, and an exhausted pool implies one exists. Finding
// none means the borrowers drained concurrently; the caller just retries
// its reserve.
//
// reason labels why DRAM room is needed (obs.ReasonDemotionFault or
// obs.ReasonDemotionPromotion); the borrower-victim branch publishes its
// demotion as obs.ReasonDemotionSpill since the point of that demotion
// is reclaiming a spill token, not the triggering access itself.
func (e *Engine) demoteForReserve(ts *tenantState, reason obs.Reason) error {
	forPromotion := reason == obs.ReasonDemotionPromotion
	if n := ts.overageNode(); n >= 0 {
		return e.demoteOne(ts, true, forPromotion, n, reason)
	}
	if ts.dramUsed.Load() > 0 {
		return e.demoteOne(ts, true, forPromotion, -1, reason)
	}
	for _, vs := range e.tenantList {
		if n := vs.overageNode(); n >= 0 {
			return e.demoteOne(vs, true, forPromotion, n, obs.ReasonDemotionSpill)
		}
	}
	return nil
}

// demoteOne frees one DRAM frame by demoting a cold page into NVM (which
// may cascade into an NVM eviction), preferring an NVM frame on the node
// the victim leaves so demotions stay node-local when they can. With
// tenantOnly, the victim must belong to ts — quota enforcement demotes
// within the over-budget tenant. With frameNode >= 0, the victim's DRAM
// frame must sit in that node's pool — the share-enforcement case, where
// freeing that specific pool (and its spill token) is the point.
// forPromotion only labels the demotion's reason in the stats; reason is
// the same classification for the event ring (which also distinguishes
// spill-reclaim demotions).
func (e *Engine) demoteOne(ts *tenantState, tenantOnly, forPromotion bool, frameNode int, reason obs.Reason) error {
	for attempt := 0; attempt < maxFaultRetries; attempt++ {
		// Pick the victim first: its observed frame node is where the
		// demoted page should land if that NVM pool has room. The NVM
		// frame is still reserved before the move, so the victim always
		// has somewhere to land.
		victimTenant, victim, victimNode, ok := e.tbl.ClockVictimNode(mm.LocDRAM, frameNode, ts.id, tenantOnly)
		if !ok {
			// The zone (or the requested slice of it) drained concurrently;
			// the caller's reserve will now succeed.
			return nil
		}
		nvmNode, ok := e.reserveNVM(victimNode)
		if !ok {
			// NVM full: evict and re-reserve immediately, so the victim
			// sweep above is not repeated on the common full-NVM path.
			if err := e.evictOne(); err != nil {
				return err
			}
			if nvmNode, ok = e.reserveNVM(victimNode); !ok {
				continue // the freed frame was snatched; start over
			}
		}
		vs := e.tenants[victimTenant]
		if fromNode, moved := e.tbl.MoveIfNode(victimTenant, victim, mm.LocDRAM, mm.LocNVM, nvmNode); moved {
			e.releaseDRAM(vs, fromNode)
			e.c.demotions.Add(1)
			vs.c.demotions.Add(1)
			if forPromotion {
				e.c.demotionsPromo.Add(1)
			} else {
				e.c.demotionsFault.Add(1)
			}
			from := e.nodes[fromNode]
			if nvmNode == fromNode {
				from.demosLocal.Add(1)
			} else {
				from.demosRemote.Add(1)
			}
			e.publishEvent(victimTenant, victim, fromNode, obs.TierDRAM, obs.TierNVM, reason, 0)
			return nil
		}
		// The victim moved or vanished under us; retry with a fresh one.
		e.releaseNVM(nvmNode)
	}
	return errors.New("tiered: demotion retries exhausted")
}

// evictOne removes one cold NVM page from memory (the online engine's
// page-out: data pages carry no content here, so eviction is pure
// bookkeeping and the next access to the page faults).
func (e *Engine) evictOne() error {
	for attempt := 0; attempt < maxFaultRetries; attempt++ {
		victimTenant, victim, ok := e.tbl.ClockVictim(mm.LocNVM, 0, false)
		if !ok {
			return nil // zone drained concurrently
		}
		if node, removed := e.tbl.RemoveIfNode(victimTenant, victim, mm.LocNVM); removed {
			e.releaseNVM(node)
			e.c.evictions.Add(1)
			e.tenants[victimTenant].c.evictions.Add(1)
			e.publishEvent(victimTenant, victim, node, obs.TierNVM, obs.TierNone, obs.ReasonEviction, 0)
			return nil
		}
	}
	return errors.New("tiered: eviction retries exhausted")
}

// applyPromotion moves one scan-identified hot page to DRAM, verifying the
// scan's observation still holds at apply time. The key carries the
// tenant, and the DRAM frame is charged to that tenant's quota. The frame
// comes from the page's home node whenever that pool can hold it; a
// remote frame is taken only when the home node is exhausted, and the
// promotion is counted as remote on the home node's stats. score is the
// windowed counter magnitude the scan saw, carried into the event ring
// so a trace records how hot the page was at decision time.
func (e *Engine) applyPromotion(key, score uint64) {
	tenant, page := splitKey(key)
	ts := e.tenants[tenant]
	if ts == nil {
		return
	}
	if loc, ok := e.tbl.Peek(tenant, page); !ok || loc != mm.LocNVM {
		return // stale hint: the page moved or was evicted since the scan
	}
	home := e.tbl.HomeNodeKey(key)
	for attempt := 0; attempt < maxFaultRetries; attempt++ {
		node, r := e.reserveDRAM(ts, home)
		if r != dramReserved {
			if e.demoteForReserve(ts, obs.ReasonDemotionPromotion) != nil {
				return
			}
			continue
		}
		if fromNode, moved := e.tbl.MoveIfNode(tenant, page, mm.LocNVM, mm.LocDRAM, node); moved {
			e.releaseNVM(fromNode)
			e.c.promotions.Add(1)
			ts.c.promotions.Add(1)
			hn := e.nodes[home]
			if node == home {
				hn.promosLocal.Add(1)
			} else {
				hn.promosRemote.Add(1)
			}
			e.publishEvent(tenant, page, node, obs.TierNVM, obs.TierDRAM, obs.ReasonPromotion, score)
		} else {
			e.releaseDRAM(ts, node)
		}
		return
	}
}

// serveSync routes one access through the single-threaded reference policy
// and mirrors its moves into the sharded table, tallying exactly what
// sim.Run would tally for the same access.
func (e *Engine) serveSync(ts *tenantState, cell, page uint64, op trace.Op) (ServeResult, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	r, err := e.backing.Access(page, op)
	if err != nil {
		return ServeResult{}, fmt.Errorf("tiered: %w", err)
	}
	if r.Fault {
		switch r.ServedFrom {
		case mm.LocDRAM, mm.LocNVM:
			// Synchronous mode runs on a single-node topology: every
			// placement is node-local by construction.
			e.tallyFault(ts, r.ServedFrom, 0, 0)
		default:
			return ServeResult{}, fmt.Errorf("tiered: fault served from %v", r.ServedFrom)
		}
	} else {
		e.tallyHit(ts, cell, r.ServedFrom, op)
	}
	for _, m := range r.Moves {
		if err := e.mirrorMove(ts, m); err != nil {
			return ServeResult{}, err
		}
	}
	return ServeResult{ServedFrom: r.ServedFrom, Fault: r.Fault}, nil
}

// mirrorMove applies one reference-policy move to the sharded table and
// the occupancy counters, with the same classification sim.Run uses.
// Synchronous mode runs on a single-node topology, so every frame lives
// in node 0's pools and every migration is node-local.
func (e *Engine) mirrorMove(ts *tenantState, m policy.Move) error {
	fail := func() error {
		return fmt.Errorf("tiered: table out of sync applying %+v", m)
	}
	n0 := e.nodes[0]
	switch {
	case m.From == mm.LocNVM && m.To == mm.LocDRAM:
		if !e.tbl.MoveIf(ts.id, m.Page, mm.LocNVM, mm.LocDRAM) {
			return fail()
		}
		n0.nvmUsed.Add(-1)
		n0.dramUsed.Add(1)
		ts.dramUsed.Add(1)
		ts.nodeUsed[0].Add(1)
		e.c.promotions.Add(1)
		ts.c.promotions.Add(1)
		n0.promosLocal.Add(1)
		e.publishEvent(ts.id, m.Page, 0, obs.TierNVM, obs.TierDRAM, obs.ReasonPromotion, 0)
	case m.From == mm.LocDRAM && m.To == mm.LocNVM:
		if !e.tbl.MoveIf(ts.id, m.Page, mm.LocDRAM, mm.LocNVM) {
			return fail()
		}
		n0.dramUsed.Add(-1)
		ts.dramUsed.Add(-1)
		ts.nodeUsed[0].Add(-1)
		n0.nvmUsed.Add(1)
		n0.demosLocal.Add(1)
		switch m.Reason {
		case policy.ReasonDemoteClean:
			e.c.demotionsClean.Add(1)
			e.publishEvent(ts.id, m.Page, 0, obs.TierDRAM, obs.TierNVM, obs.ReasonDemotionClean, 0)
		case policy.ReasonDemoteFault:
			e.c.demotions.Add(1)
			ts.c.demotions.Add(1)
			e.c.demotionsFault.Add(1)
			e.publishEvent(ts.id, m.Page, 0, obs.TierDRAM, obs.TierNVM, obs.ReasonDemotionFault, 0)
		default:
			e.c.demotions.Add(1)
			ts.c.demotions.Add(1)
			e.c.demotionsPromo.Add(1)
			e.publishEvent(ts.id, m.Page, 0, obs.TierDRAM, obs.TierNVM, obs.ReasonDemotionPromotion, 0)
		}
	case m.From == mm.LocDisk && m.To.IsMemory():
		if !e.tbl.Insert(ts.id, m.Page, m.To) {
			return fail()
		}
		if m.To == mm.LocDRAM {
			n0.dramUsed.Add(1)
			ts.dramUsed.Add(1)
			ts.nodeUsed[0].Add(1)
		} else {
			n0.nvmUsed.Add(1)
		}
	case m.To == mm.LocDisk && m.From.IsMemory():
		if !e.tbl.RemoveIf(ts.id, m.Page, m.From) {
			return fail()
		}
		if m.From == mm.LocDRAM {
			n0.dramUsed.Add(-1)
			ts.dramUsed.Add(-1)
			ts.nodeUsed[0].Add(-1)
		} else {
			n0.nvmUsed.Add(-1)
		}
		e.c.evictions.Add(1)
		ts.c.evictions.Add(1)
		e.publishEvent(ts.id, m.Page, 0, tierOf(m.From), obs.TierNone, obs.ReasonEviction, 0)
	default:
		return fmt.Errorf("tiered: unexpected move %+v", m)
	}
	return nil
}

// CheckInvariants validates the table against the per-node occupancy
// pools, capacities, per-tenant quota caps and the spill-token ledger.
// Call it quiesced (no concurrent Serve); in synchronous mode it
// additionally cross-checks the reference policy's physical memory.
func (e *Engine) CheckInvariants() error {
	// One table pass suffices for everything the table must witness: the
	// zone totals, each node's per-zone residency, and every tenant's
	// per-node DRAM residency.
	var dram, nvm int
	nodeDram := make([]int64, len(e.nodes))
	nodeNvm := make([]int64, len(e.nodes))
	perTenant := make(map[TenantID][]int64, len(e.tenantList))
	for i := 0; i < e.tbl.NumShards(); i++ {
		e.tbl.ScanShard(i, false, func(tenant TenantID, _ uint64, loc mm.Location, node int, _, _ uint64) {
			if loc == mm.LocDRAM {
				dram++
				nodeDram[node]++
				counts := perTenant[tenant]
				if counts == nil {
					counts = make([]int64, len(e.nodes))
					perTenant[tenant] = counts
				}
				counts[node]++
			} else {
				nvm++
				nodeNvm[node]++
			}
		})
	}
	// Per-node pools: each node's pool level must match the table's count
	// of frames in that pool and stay within the node's capacity, and the
	// pools must tile the configured zone totals exactly.
	var capDramSum, capNvmSum int64
	for n, ns := range e.nodes {
		nd, nn := nodeDram[n], nodeNvm[n]
		if nd != ns.dramUsed.Load() || nn != ns.nvmUsed.Load() {
			return fmt.Errorf("tiered: node %d holds %d/%d frames in the table but its pools say %d/%d",
				n, nd, nn, ns.dramUsed.Load(), ns.nvmUsed.Load())
		}
		if nd > ns.dramCap || nn > ns.nvmCap {
			return fmt.Errorf("tiered: node %d occupancy %d/%d exceeds its pools %d/%d",
				n, nd, nn, ns.dramCap, ns.nvmCap)
		}
		capDramSum += ns.dramCap
		capNvmSum += ns.nvmCap
	}
	if capDramSum != e.dramCap || capNvmSum != e.nvmCap {
		return fmt.Errorf("tiered: node pools total %d/%d frames, configured totals are %d/%d",
			capDramSum, capNvmSum, e.dramCap, e.nvmCap)
	}
	// The apportioned quota shares are what makes a quota a guarantee, so
	// they must be physically honorable: no node may back more guaranteed
	// shares than its pool holds.
	for n, ns := range e.nodes {
		var shares int64
		for _, ts := range e.tenantList {
			shares += ts.nodeQuota[n]
		}
		if shares > ns.dramCap {
			return fmt.Errorf("tiered: node %d backs %d guaranteed quota shares, its DRAM pool holds %d",
				n, shares, ns.dramCap)
		}
	}
	var tenantSum, borrowed int64
	for _, ts := range e.tenantList {
		used := ts.dramUsed.Load()
		tenantSum += used
		var nodeSum int64
		for n := range ts.nodeUsed {
			nu := ts.nodeUsed[n].Load()
			nodeSum += nu
			var got int64
			if counts := perTenant[ts.id]; counts != nil {
				got = counts[n]
			}
			if got != nu {
				return fmt.Errorf("tiered: tenant %d holds %d DRAM pages on node %d but occupancy says %d",
					ts.id, got, n, nu)
			}
			if over := nu - ts.nodeQuota[n]; over > 0 {
				borrowed += over
			}
		}
		if nodeSum != used {
			return fmt.Errorf("tiered: tenant %d per-node DRAM residencies total %d, tenant total is %d",
				ts.id, nodeSum, used)
		}
		if used > ts.cap {
			return fmt.Errorf("tiered: tenant %d DRAM residency %d exceeds quota %d + spill %d",
				ts.id, used, ts.quota, e.spill)
		}
	}
	if tenantSum != int64(dram) {
		return fmt.Errorf("tiered: tenant DRAM residencies total %d, table holds %d", tenantSum, dram)
	}
	if got := e.spillUsed.Load(); got != borrowed || got > e.spill {
		return fmt.Errorf("tiered: spill pool accounting says %d borrowed, tenants hold %d over their shares (pool %d)",
			got, borrowed, e.spill)
	}
	if e.backing != nil {
		sys := e.backing.System()
		if dram != sys.Residents(mm.LocDRAM) || nvm != sys.Residents(mm.LocNVM) {
			return fmt.Errorf("tiered: table %d/%d pages, reference system %d/%d",
				dram, nvm, sys.Residents(mm.LocDRAM), sys.Residents(mm.LocNVM))
		}
		if err := sys.CheckInvariants(); err != nil {
			return err
		}
	}
	return nil
}
