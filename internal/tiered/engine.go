package tiered

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hybridmem/internal/clockdwf"
	"hybridmem/internal/core"
	"hybridmem/internal/memspec"
	"hybridmem/internal/mm"
	"hybridmem/internal/policy"
	"hybridmem/internal/trace"
)

// Engine lifecycle errors.
var (
	// ErrNotStarted is returned by Serve before Start.
	ErrNotStarted = errors.New("tiered: engine not started")
	// ErrStopped is returned by Serve after Stop.
	ErrStopped = errors.New("tiered: engine stopped")
)

// maxFaultRetries bounds the reserve/insert retry loops on the fault path.
// Each retry means another goroutine won a race; hitting the bound would
// take adversarial scheduling, so it is treated as a bug, not backpressure.
const maxFaultRetries = 256

// Config describes an online engine.
type Config struct {
	// Policy selects the migration algorithm (default Proposed).
	Policy Kind
	// DRAMPages and NVMPages are the zone capacities in frames; both must
	// be at least 1.
	DRAMPages, NVMPages int
	// Shards is the page-table shard count, rounded up to a power of two.
	// 0 picks 4x GOMAXPROCS; 1 is the single-lock baseline.
	Shards int
	// Core carries the proposed scheme's thresholds and windows (zero
	// value = core.DefaultConfig()).
	Core core.Config
	// Adaptive tunes the adaptive controller (zero value =
	// core.DefaultAdaptiveConfig(); only used by Kind Adaptive).
	Adaptive core.AdaptiveConfig
	// DWF tunes the CLOCK-DWF baseline (zero value =
	// clockdwf.DefaultConfig(); only used in Synchronous mode).
	DWF clockdwf.Config
	// Spec supplies the technology parameters the thresholds are costed
	// against (zero value = memspec.Default()).
	Spec memspec.Spec
	// Synchronous runs the single-threaded reference policy inline under
	// one lock instead of the sharded fast path + daemon: every access
	// produces exactly the counts internal/sim would. This is the
	// deterministic mode the equivalence check uses.
	Synchronous bool
	// ScanInterval is the daemon's hotness-scan period (default 2ms).
	ScanInterval time.Duration
	// BatchSize caps the pages per promotion batch (default 128).
	BatchSize int
	// Workers is the number of migration worker goroutines (default 1).
	Workers int
	// QueueLen is the promotion-queue depth in batches (default 16).
	// When the queue is full, batches are dropped and counted: migration
	// is a hint, and a page that stays hot is re-found next epoch.
	QueueLen int
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Policy == "" {
		c.Policy = Proposed
	}
	if c.Shards == 0 {
		c.Shards = 4 * runtime.GOMAXPROCS(0)
	}
	if (c.Core == core.Config{}) {
		c.Core = core.DefaultConfig()
	}
	if (c.Adaptive == core.AdaptiveConfig{}) {
		c.Adaptive = core.DefaultAdaptiveConfig()
	}
	if (c.DWF == clockdwf.Config{}) {
		c.DWF = clockdwf.DefaultConfig()
	}
	if c.Spec.Geometry.PageSizeBytes == 0 {
		c.Spec = memspec.Default()
	}
	if c.ScanInterval == 0 {
		c.ScanInterval = 2 * time.Millisecond
	}
	if c.BatchSize == 0 {
		c.BatchSize = 128
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.QueueLen == 0 {
		c.QueueLen = 16
	}
	return c
}

// ServeResult is the outcome of one access.
type ServeResult struct {
	// ServedFrom is the zone that serviced the request (for a fault, the
	// zone the page was loaded into).
	ServedFrom mm.Location
	// Fault reports that the page was not resident.
	Fault bool
}

// Stats is a snapshot of the engine's event counters. The access counters
// mirror sim.Counts so the two accountings are directly comparable.
type Stats struct {
	Accesses                                                  int64
	ReadsDRAM, WritesDRAM, ReadsNVM, WritesNVM                int64
	Faults, FaultsToDRAM, FaultsToNVM                         int64
	Promotions                                                int64
	Demotions, DemotionsFault, DemotionsPromo, DemotionsClean int64
	Evictions                                                 int64
	// Daemon counters: scan epochs run, promotion batches enqueued, and
	// batches dropped on a full queue.
	Scans, Batches, QueueDrops int64
	// ResidentDRAM and ResidentNVM are the current zone occupancies.
	ResidentDRAM, ResidentNVM int64
}

// Hits returns the number of non-faulting accesses.
func (s Stats) Hits() int64 { return s.ReadsDRAM + s.WritesDRAM + s.ReadsNVM + s.WritesNVM }

// HitsDRAM returns hits serviced by DRAM.
func (s Stats) HitsDRAM() int64 { return s.ReadsDRAM + s.WritesDRAM }

// HitsNVM returns hits serviced by NVM.
func (s Stats) HitsNVM() int64 { return s.ReadsNVM + s.WritesNVM }

// Sub returns the event-count deltas since prev. The occupancy fields are
// levels, not counts, and are carried over unchanged.
func (s Stats) Sub(prev Stats) Stats {
	d := Stats{
		Accesses:       s.Accesses - prev.Accesses,
		ReadsDRAM:      s.ReadsDRAM - prev.ReadsDRAM,
		WritesDRAM:     s.WritesDRAM - prev.WritesDRAM,
		ReadsNVM:       s.ReadsNVM - prev.ReadsNVM,
		WritesNVM:      s.WritesNVM - prev.WritesNVM,
		Faults:         s.Faults - prev.Faults,
		FaultsToDRAM:   s.FaultsToDRAM - prev.FaultsToDRAM,
		FaultsToNVM:    s.FaultsToNVM - prev.FaultsToNVM,
		Promotions:     s.Promotions - prev.Promotions,
		Demotions:      s.Demotions - prev.Demotions,
		DemotionsFault: s.DemotionsFault - prev.DemotionsFault,
		DemotionsPromo: s.DemotionsPromo - prev.DemotionsPromo,
		DemotionsClean: s.DemotionsClean - prev.DemotionsClean,
		Evictions:      s.Evictions - prev.Evictions,
		Scans:          s.Scans - prev.Scans,
		Batches:        s.Batches - prev.Batches,
		QueueDrops:     s.QueueDrops - prev.QueueDrops,
		ResidentDRAM:   s.ResidentDRAM,
		ResidentNVM:    s.ResidentNVM,
	}
	return d
}

// counters is the engine's atomic tally block.
type counters struct {
	accesses                                                  atomic.Int64
	readsDRAM, writesDRAM, readsNVM, writesNVM                atomic.Int64
	faults, faultsToDRAM, faultsToNVM                         atomic.Int64
	promotions                                                atomic.Int64
	demotions, demotionsFault, demotionsPromo, demotionsClean atomic.Int64
	evictions                                                 atomic.Int64
	scans, batches, queueDrops                                atomic.Int64
}

// Engine lifecycle states.
const (
	stateNew int32 = iota
	stateStarted
	stateStopped
)

// Engine is the online tiered-memory engine. Serve is safe for concurrent
// use by any number of goroutines once Start has returned; Stop shuts the
// migration daemon down gracefully (in-flight batches drain first).
type Engine struct {
	cfg      Config
	tbl      *Table
	pol      OnlinePolicy
	pageSize uint64

	dramCap, nvmCap   int64
	dramUsed, nvmUsed atomic.Int64

	c     counters
	state atomic.Int32

	// Synchronous mode: the reference policy behind one lock.
	mu      sync.Mutex
	backing policy.Policy

	// Daemon plumbing (asynchronous mode).
	stopCh    chan struct{}
	batchCh   chan []uint64
	scanWG    sync.WaitGroup
	workerWG  sync.WaitGroup
	scanMu    sync.Mutex
	lastEpoch EpochStats
	// drained closes once the winning Stop has fully quiesced the daemon,
	// so a Stop that loses the race still waits for the drain guarantee.
	drained chan struct{}
}

// New builds an engine. Call Start before Serve.
func New(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if cfg.DRAMPages < 1 || cfg.NVMPages < 1 {
		return nil, fmt.Errorf("tiered: both zones need frames, got %d/%d", cfg.DRAMPages, cfg.NVMPages)
	}
	if err := cfg.Core.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if cfg.BatchSize < 1 || cfg.Workers < 1 || cfg.QueueLen < 1 || cfg.ScanInterval < 0 {
		return nil, fmt.Errorf("tiered: invalid daemon config (batch %d, workers %d, queue %d, interval %v)",
			cfg.BatchSize, cfg.Workers, cfg.QueueLen, cfg.ScanInterval)
	}
	tbl, err := NewTable(cfg.Shards)
	if err != nil {
		return nil, err
	}
	// Record the rounded-up shard count: Config() reports what the table
	// actually uses, and tierd's artifact must attribute results to it.
	cfg.Shards = tbl.NumShards()
	e := &Engine{
		cfg:      cfg,
		tbl:      tbl,
		pageSize: uint64(cfg.Spec.Geometry.PageSizeBytes),
		dramCap:  int64(cfg.DRAMPages),
		nvmCap:   int64(cfg.NVMPages),
		drained:  make(chan struct{}),
	}
	if cfg.Synchronous {
		e.backing, err = newBackingPolicy(cfg.Policy, cfg.DRAMPages, cfg.NVMPages, cfg.Core, cfg.Adaptive, cfg.DWF)
	} else {
		e.pol, err = newOnlinePolicy(cfg.Policy, cfg.Core, cfg.Adaptive)
	}
	if err != nil {
		return nil, err
	}
	return e, nil
}

// Config returns the engine's effective (default-filled) configuration.
func (e *Engine) Config() Config { return e.cfg }

// PolicyName returns the name of the policy the engine runs.
func (e *Engine) PolicyName() string {
	if e.backing != nil {
		return e.backing.Name()
	}
	return e.pol.Name()
}

// Stats returns a snapshot of the engine's counters. Safe to call
// concurrently with Serve; the fields are read individually, so a snapshot
// taken mid-traffic is approximate across fields but each field is exact.
func (e *Engine) Stats() Stats {
	return Stats{
		Accesses:       e.c.accesses.Load(),
		ReadsDRAM:      e.c.readsDRAM.Load(),
		WritesDRAM:     e.c.writesDRAM.Load(),
		ReadsNVM:       e.c.readsNVM.Load(),
		WritesNVM:      e.c.writesNVM.Load(),
		Faults:         e.c.faults.Load(),
		FaultsToDRAM:   e.c.faultsToDRAM.Load(),
		FaultsToNVM:    e.c.faultsToNVM.Load(),
		Promotions:     e.c.promotions.Load(),
		Demotions:      e.c.demotions.Load(),
		DemotionsFault: e.c.demotionsFault.Load(),
		DemotionsPromo: e.c.demotionsPromo.Load(),
		DemotionsClean: e.c.demotionsClean.Load(),
		Evictions:      e.c.evictions.Load(),
		Scans:          e.c.scans.Load(),
		Batches:        e.c.batches.Load(),
		QueueDrops:     e.c.queueDrops.Load(),
		ResidentDRAM:   e.dramUsed.Load(),
		ResidentNVM:    e.nvmUsed.Load(),
	}
}

// Serve services one line-sized access. Hot path: one sharded lookup plus
// atomic counter updates; faults and migrations take shard write locks.
func (e *Engine) Serve(addr uint64, op trace.Op) (ServeResult, error) {
	switch e.state.Load() {
	case stateStarted:
	case stateNew:
		return ServeResult{}, ErrNotStarted
	default:
		return ServeResult{}, ErrStopped
	}
	page := addr / e.pageSize
	e.c.accesses.Add(1)
	if e.backing != nil {
		return e.serveSync(page, op)
	}
	if loc, ok := e.tbl.Touch(page, op); ok {
		e.tallyHit(loc, op)
		return ServeResult{ServedFrom: loc}, nil
	}
	return e.serveFault(page, op)
}

// tallyHit records a non-faulting access, mirroring sim.Run's accounting.
func (e *Engine) tallyHit(loc mm.Location, op trace.Op) {
	switch {
	case loc == mm.LocDRAM && op == trace.OpRead:
		e.c.readsDRAM.Add(1)
	case loc == mm.LocDRAM:
		e.c.writesDRAM.Add(1)
	case op == trace.OpRead:
		e.c.readsNVM.Add(1)
	default:
		e.c.writesNVM.Add(1)
	}
}

// usedOf returns the occupancy counter and capacity of a zone.
func (e *Engine) usedOf(loc mm.Location) (*atomic.Int64, int64) {
	if loc == mm.LocDRAM {
		return &e.dramUsed, e.dramCap
	}
	return &e.nvmUsed, e.nvmCap
}

// reserve claims one free frame in a zone, or reports that it is full.
// Capacity is enforced by the occupancy counter, not a free list: a
// successful reserve is a promise that an Insert/MoveIf will follow (or the
// reservation is released), so occupancy never exceeds capacity.
func (e *Engine) reserve(loc mm.Location) bool {
	used, capacity := e.usedOf(loc)
	for {
		u := used.Load()
		if u >= capacity {
			return false
		}
		if used.CompareAndSwap(u, u+1) {
			return true
		}
	}
}

// release returns a reserved frame.
func (e *Engine) release(loc mm.Location) {
	used, _ := e.usedOf(loc)
	used.Add(-1)
}

// serveFault loads a non-resident page into the zone the policy chooses,
// demoting and evicting colder pages as capacity requires.
func (e *Engine) serveFault(page uint64, op trace.Op) (ServeResult, error) {
	zone := e.pol.FaultZone(op)
	for attempt := 0; attempt < maxFaultRetries; attempt++ {
		if !e.reserve(zone) {
			if err := e.makeRoom(zone, false); err != nil {
				return ServeResult{}, err
			}
			continue
		}
		if e.tbl.Insert(page, zone) {
			e.c.faults.Add(1)
			if zone == mm.LocDRAM {
				e.c.faultsToDRAM.Add(1)
			} else {
				e.c.faultsToNVM.Add(1)
			}
			return ServeResult{ServedFrom: zone, Fault: true}, nil
		}
		// Another goroutine faulted the page in first: this access is a
		// hit on wherever it landed.
		e.release(zone)
		if loc, ok := e.tbl.Touch(page, op); ok {
			e.tallyHit(loc, op)
			return ServeResult{ServedFrom: loc}, nil
		}
		// Inserted and already evicted again: fault anew.
	}
	return ServeResult{}, fmt.Errorf("tiered: page %d fault retries exhausted", page)
}

// makeRoom frees one frame in a zone: a DRAM demotion (which may cascade
// into an NVM eviction) or an NVM eviction to disk. forPromotion only
// labels the demotion's reason in the stats.
func (e *Engine) makeRoom(zone mm.Location, forPromotion bool) error {
	if zone == mm.LocNVM {
		return e.evictOne()
	}
	// Demote a cold DRAM page into NVM. Reserve the NVM frame first so the
	// victim always has somewhere to land.
	for attempt := 0; attempt < maxFaultRetries; attempt++ {
		if !e.reserve(mm.LocNVM) {
			if err := e.evictOne(); err != nil {
				return err
			}
			continue
		}
		victim, ok := e.tbl.ClockVictim(mm.LocDRAM)
		if !ok {
			// DRAM drained concurrently; the caller's reserve will now
			// succeed.
			e.release(mm.LocNVM)
			return nil
		}
		if e.tbl.MoveIf(victim, mm.LocDRAM, mm.LocNVM) {
			e.release(mm.LocDRAM)
			e.c.demotions.Add(1)
			if forPromotion {
				e.c.demotionsPromo.Add(1)
			} else {
				e.c.demotionsFault.Add(1)
			}
			return nil
		}
		// The victim moved or vanished under us; retry with a fresh one.
		e.release(mm.LocNVM)
	}
	return errors.New("tiered: demotion retries exhausted")
}

// evictOne removes one cold NVM page from memory (the online engine's
// page-out: data pages carry no content here, so eviction is pure
// bookkeeping and the next access to the page faults).
func (e *Engine) evictOne() error {
	for attempt := 0; attempt < maxFaultRetries; attempt++ {
		victim, ok := e.tbl.ClockVictim(mm.LocNVM)
		if !ok {
			return nil // zone drained concurrently
		}
		if e.tbl.RemoveIf(victim, mm.LocNVM) {
			e.release(mm.LocNVM)
			e.c.evictions.Add(1)
			return nil
		}
	}
	return errors.New("tiered: eviction retries exhausted")
}

// applyPromotion moves one scan-identified hot page to DRAM, verifying the
// scan's observation still holds at apply time.
func (e *Engine) applyPromotion(page uint64) {
	if loc, ok := e.tbl.Peek(page); !ok || loc != mm.LocNVM {
		return // stale hint: the page moved or was evicted since the scan
	}
	for attempt := 0; attempt < maxFaultRetries; attempt++ {
		if !e.reserve(mm.LocDRAM) {
			if e.makeRoom(mm.LocDRAM, true) != nil {
				return
			}
			continue
		}
		if e.tbl.MoveIf(page, mm.LocNVM, mm.LocDRAM) {
			e.release(mm.LocNVM)
			e.c.promotions.Add(1)
		} else {
			e.release(mm.LocDRAM)
		}
		return
	}
}

// serveSync routes one access through the single-threaded reference policy
// and mirrors its moves into the sharded table, tallying exactly what
// sim.Run would tally for the same access.
func (e *Engine) serveSync(page uint64, op trace.Op) (ServeResult, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	r, err := e.backing.Access(page, op)
	if err != nil {
		return ServeResult{}, fmt.Errorf("tiered: %w", err)
	}
	if r.Fault {
		e.c.faults.Add(1)
		switch r.ServedFrom {
		case mm.LocDRAM:
			e.c.faultsToDRAM.Add(1)
		case mm.LocNVM:
			e.c.faultsToNVM.Add(1)
		default:
			return ServeResult{}, fmt.Errorf("tiered: fault served from %v", r.ServedFrom)
		}
	} else {
		e.tallyHit(r.ServedFrom, op)
	}
	for _, m := range r.Moves {
		if err := e.mirrorMove(m); err != nil {
			return ServeResult{}, err
		}
	}
	return ServeResult{ServedFrom: r.ServedFrom, Fault: r.Fault}, nil
}

// mirrorMove applies one reference-policy move to the sharded table and the
// occupancy counters, with the same classification sim.Run uses.
func (e *Engine) mirrorMove(m policy.Move) error {
	fail := func() error {
		return fmt.Errorf("tiered: table out of sync applying %+v", m)
	}
	switch {
	case m.From == mm.LocNVM && m.To == mm.LocDRAM:
		if !e.tbl.MoveIf(m.Page, mm.LocNVM, mm.LocDRAM) {
			return fail()
		}
		e.nvmUsed.Add(-1)
		e.dramUsed.Add(1)
		e.c.promotions.Add(1)
	case m.From == mm.LocDRAM && m.To == mm.LocNVM:
		if !e.tbl.MoveIf(m.Page, mm.LocDRAM, mm.LocNVM) {
			return fail()
		}
		e.dramUsed.Add(-1)
		e.nvmUsed.Add(1)
		switch m.Reason {
		case policy.ReasonDemoteClean:
			e.c.demotionsClean.Add(1)
		case policy.ReasonDemoteFault:
			e.c.demotions.Add(1)
			e.c.demotionsFault.Add(1)
		default:
			e.c.demotions.Add(1)
			e.c.demotionsPromo.Add(1)
		}
	case m.From == mm.LocDisk && m.To.IsMemory():
		if !e.tbl.Insert(m.Page, m.To) {
			return fail()
		}
		used, _ := e.usedOf(m.To)
		used.Add(1)
	case m.To == mm.LocDisk && m.From.IsMemory():
		if !e.tbl.RemoveIf(m.Page, m.From) {
			return fail()
		}
		used, _ := e.usedOf(m.From)
		used.Add(-1)
		e.c.evictions.Add(1)
	default:
		return fmt.Errorf("tiered: unexpected move %+v", m)
	}
	return nil
}

// CheckInvariants validates the table against the occupancy counters and
// capacities. Call it quiesced (no concurrent Serve); in synchronous mode
// it additionally cross-checks the reference policy's physical memory.
func (e *Engine) CheckInvariants() error {
	dram, nvm := e.tbl.Residents(mm.LocDRAM), e.tbl.Residents(mm.LocNVM)
	if int64(dram) != e.dramUsed.Load() || int64(nvm) != e.nvmUsed.Load() {
		return fmt.Errorf("tiered: table holds %d/%d pages but occupancy says %d/%d",
			dram, nvm, e.dramUsed.Load(), e.nvmUsed.Load())
	}
	if int64(dram) > e.dramCap || int64(nvm) > e.nvmCap {
		return fmt.Errorf("tiered: occupancy %d/%d exceeds capacity %d/%d",
			dram, nvm, e.dramCap, e.nvmCap)
	}
	if e.backing != nil {
		sys := e.backing.System()
		if dram != sys.Residents(mm.LocDRAM) || nvm != sys.Residents(mm.LocNVM) {
			return fmt.Errorf("tiered: table %d/%d pages, reference system %d/%d",
				dram, nvm, sys.Residents(mm.LocDRAM), sys.Residents(mm.LocNVM))
		}
		if err := sys.CheckInvariants(); err != nil {
			return err
		}
	}
	return nil
}
