package tiered

import (
	"fmt"

	"hybridmem/internal/clockdwf"
	"hybridmem/internal/core"
	"hybridmem/internal/memspec"
	"hybridmem/internal/mm"
	"hybridmem/internal/policy"
	"hybridmem/internal/trace"
)

// Kind selects the migration policy the engine runs online.
type Kind string

// The policies that run online. Each maps to the same-named reference
// policy that internal/sim drives single-threaded.
const (
	// Proposed is the paper's two-LRU scheme with windowed counters.
	Proposed Kind = "proposed"
	// Adaptive is the proposed scheme with the adaptive-threshold
	// controller retuning per scan epoch.
	Adaptive Kind = "proposed-adaptive"
	// ClockDWF is the write-triggered CLOCK-DWF baseline.
	ClockDWF Kind = "clock-dwf"
)

// Kinds lists every policy the online engine supports.
func Kinds() []Kind { return []Kind{Proposed, Adaptive, ClockDWF} }

// ValidKind reports whether k names a supported online policy. CLIs use it
// to reject unknown -policy values before doing any work.
func ValidKind(k Kind) bool {
	for _, v := range Kinds() {
		if v == k {
			return true
		}
	}
	return false
}

// EpochStats is what one scan epoch observed, as deltas since the previous
// epoch. Adaptive policies retune their thresholds from it.
type EpochStats struct {
	Accesses   int64
	HitsDRAM   int64
	Promotions int64
}

// OnlinePolicy is the migration-decision plug of the asynchronous engine.
// It sees only windowed per-page counters (gathered by the shard scans),
// never queue positions: the online engine trades the reference policies'
// exact LRU bookkeeping for a lock-free hit path, and approximates their
// recency windows with scan epochs. The engine builds one instance per
// tenant, each fed only its own tenant's epoch deltas, so adaptive
// threshold tuning is independent per tenant.
//
// Concurrency contract: Hot and Epoch are only ever called under the
// engine's scan lock, so implementations may keep plain (non-atomic)
// mutable threshold state. Hot runs once per swept page inside the
// lock-free shard sweep of every epoch, so it must be cheap and must not
// allocate — the daemon's steady state performs zero allocations per
// epoch, and a policy that allocates in Hot would break that (there is a
// regression test). FaultZone is called from concurrent Serve goroutines
// and must be pure.
type OnlinePolicy interface {
	// Name identifies the policy in reports.
	Name() string
	// Hot reports whether a page with the given windowed counters should
	// be promoted to DRAM.
	Hot(reads, writes uint64) bool
	// FaultZone says which zone a faulting page is loaded into.
	FaultZone(op trace.Op) mm.Location
	// Epoch is called once per scan epoch (under the scan lock) so
	// adaptive implementations can retune.
	Epoch(EpochStats)
}

// BreakEvenHits returns the number of NVM read hits a page must convert to
// DRAM hits to repay one promotion and the demotion it forces — the
// migration-cost model the paper sizes its thresholds against (Section IV:
// thresholds are "closely related to the cost of the migration"). Moving a
// page costs PageFactor line reads plus writes each way; each subsequent
// access saves the NVM-DRAM read latency difference.
func BreakEvenHits(spec memspec.Spec) int {
	pf := float64(spec.Geometry.PageFactor())
	cost := pf * (spec.NVM.ReadLatencyNS + spec.DRAM.WriteLatencyNS +
		spec.DRAM.ReadLatencyNS + spec.NVM.WriteLatencyNS)
	save := spec.NVM.ReadLatencyNS - spec.DRAM.ReadLatencyNS
	if save <= 0 {
		return 1
	}
	n := int(cost/save) + 1
	if n < 1 {
		n = 1
	}
	return n
}

// proposedOnline migrates pages whose windowed counters exceed the
// configured thresholds, the online form of Algorithm 1's migration test.
// Faults always load into DRAM (Section IV).
type proposedOnline struct {
	readThresh  int
	writeThresh int
}

func (p *proposedOnline) Name() string { return string(Proposed) }

func (p *proposedOnline) Hot(reads, writes uint64) bool {
	return reads > uint64(p.readThresh) || writes > uint64(p.writeThresh)
}

func (p *proposedOnline) FaultZone(trace.Op) mm.Location { return mm.LocDRAM }

func (p *proposedOnline) Epoch(EpochStats) {}

// adaptiveOnline hill-climbs the thresholds per scan epoch, the online form
// of core.Adaptive. The reference controller attributes DRAM hits to the
// specific pages it promoted; tracking that per page would put a write on
// the hit path, so the online controller uses the coarser epoch-level proxy
// DRAM-hits-per-promotion and relies on the configured bounds to keep the
// approximation in range.
type adaptiveOnline struct {
	proposedOnline
	cfg core.AdaptiveConfig

	// Adjustments counts threshold changes (for tests and reports).
	Adjustments int
}

func (a *adaptiveOnline) Name() string { return string(Adaptive) }

func (a *adaptiveOnline) Epoch(s EpochStats) {
	if s.Accesses == 0 {
		return
	}
	read, write := a.readThresh, a.writeThresh
	newRead, newWrite := read, write
	switch {
	case s.Promotions == 0:
		// Nothing migrated: probe downward so hot pages stuck in NVM get
		// a chance to move.
		newRead, newWrite = read-1, write-1
	default:
		utility := float64(s.HitsDRAM) / float64(s.Promotions)
		if utility < a.cfg.TargetUtility {
			newRead, newWrite = read*2, write*2
		} else if utility >= 2*a.cfg.TargetUtility {
			newRead, newWrite = read-1, write-1
		}
	}
	newRead = clampInt(newRead, a.cfg.MinThreshold, a.cfg.MaxThreshold)
	newWrite = clampInt(newWrite, a.cfg.MinThreshold, a.cfg.MaxThreshold)
	if newRead != read || newWrite != write {
		a.readThresh, a.writeThresh = newRead, newWrite
		a.Adjustments++
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// clockDWFOnline is the write-triggered baseline: any write to an NVM page
// within the epoch marks it for promotion (CLOCK-DWF never services writes
// in NVM), write faults load into DRAM and read faults into NVM.
type clockDWFOnline struct{}

func (clockDWFOnline) Name() string { return string(ClockDWF) }

func (clockDWFOnline) Hot(_, writes uint64) bool { return writes >= 1 }

func (clockDWFOnline) FaultZone(op trace.Op) mm.Location {
	if op == trace.OpWrite {
		return mm.LocDRAM
	}
	return mm.LocNVM
}

func (clockDWFOnline) Epoch(EpochStats) {}

// newOnlinePolicy builds the asynchronous decision plug for a kind.
func newOnlinePolicy(kind Kind, coreCfg core.Config, adCfg core.AdaptiveConfig) (OnlinePolicy, error) {
	base := proposedOnline{
		readThresh:  coreCfg.ReadThreshold,
		writeThresh: coreCfg.WriteThreshold,
	}
	switch kind {
	case Proposed:
		return &base, nil
	case Adaptive:
		if err := adCfg.Validate(); err != nil {
			return nil, err
		}
		return &adaptiveOnline{proposedOnline: base, cfg: adCfg}, nil
	case ClockDWF:
		return clockDWFOnline{}, nil
	default:
		return nil, fmt.Errorf("tiered: unknown policy %q (have %v)", kind, Kinds())
	}
}

// newBackingPolicy builds the single-threaded reference policy for a kind —
// the exact implementation internal/sim drives — for the synchronous engine
// mode and the equivalence check.
func newBackingPolicy(kind Kind, dramFrames, nvmFrames int, coreCfg core.Config, adCfg core.AdaptiveConfig, dwfCfg clockdwf.Config) (policy.Policy, error) {
	switch kind {
	case Proposed:
		return core.New(dramFrames, nvmFrames, coreCfg)
	case Adaptive:
		return core.NewAdaptive(dramFrames, nvmFrames, coreCfg, adCfg)
	case ClockDWF:
		return clockdwf.New(dramFrames, nvmFrames, dwfCfg)
	default:
		return nil, fmt.Errorf("tiered: unknown policy %q (have %v)", kind, Kinds())
	}
}
