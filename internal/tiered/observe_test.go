package tiered

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"time"

	"hybridmem/internal/obs"
	"hybridmem/internal/trace"
)

// TestStatsMonotonicUnderLoad pins the documented lazy-sum consistency
// model: while concurrent serve traffic and daemon scans run, every
// counter field of Stats and TenantStats must be monotone non-decreasing
// across successive snapshots, even though a single snapshot is not a
// consistent cut across fields.
func TestStatsMonotonicUnderLoad(t *testing.T) {
	e, err := New(Config{
		Policy:    Proposed,
		DRAMPages: 32, NVMPages: 256, Shards: 8, Core: smallCore(),
		Tenants: []TenantConfig{
			{ID: 0, Name: "a", DRAMQuota: 16},
			{ID: 1, Name: "b", DRAMQuota: 16},
		},
		ScanInterval: 200 * time.Microsecond,
		Workers:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}

	const goroutines = 4
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			tn := TenantID(seed % 2)
			for i := 0; i < 8000; i++ {
				op := trace.OpRead
				if rng.Intn(3) == 0 {
					op = trace.OpWrite
				}
				if _, err := e.ServeTenant(tn, uint64(rng.Intn(192))*4096, op); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(w))
	}

	statFields := func(s Stats) []int64 {
		return []int64{
			s.Accesses, s.ReadsDRAM, s.WritesDRAM, s.ReadsNVM, s.WritesNVM,
			s.Faults, s.FaultsToDRAM, s.FaultsToNVM,
			s.Promotions, s.Demotions, s.DemotionsFault, s.DemotionsPromo,
			s.DemotionsClean, s.Evictions, s.Scans, s.Batches, s.QueueDrops,
		}
	}
	tenantFields := func(s TenantStats) []int64 {
		return []int64{
			s.Accesses, s.HitsDRAM, s.HitsNVM, s.Faults,
			s.Promotions, s.Demotions, s.Evictions,
		}
	}

	prev := statFields(e.Stats())
	prevT, _ := e.TenantStats(0)
	prevTF := tenantFields(prevT)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for sampling := true; sampling; {
		select {
		case <-done:
			sampling = false
		default:
		}
		cur := statFields(e.Stats())
		for i := range cur {
			if cur[i] < prev[i] {
				t.Fatalf("Stats field %d went backwards: %d -> %d", i, prev[i], cur[i])
			}
		}
		prev = cur
		ts, _ := e.TenantStats(0)
		curTF := tenantFields(ts)
		for i := range curTF {
			if curTF[i] < prevTF[i] {
				t.Fatalf("TenantStats field %d went backwards: %d -> %d", i, prevTF[i], curTF[i])
			}
		}
		prevTF = curTF
	}
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	// Quiesced, the cross-field identity holds exactly.
	st := e.Stats()
	if st.Hits()+st.Faults != st.Accesses {
		t.Fatalf("quiesced: hits %d + faults %d != accesses %d", st.Hits(), st.Faults, st.Accesses)
	}
}

// TestServeZeroAllocWithRing re-runs the hit-path zero-alloc gate with a
// trace ring attached: instrumentation must not put allocations (or
// publishes — hits are not migration events) on the hit path.
func TestServeZeroAllocWithRing(t *testing.T) {
	ring := obs.NewEventRing(256)
	e, err := New(Config{
		DRAMPages: 64, NVMPages: 64, Shards: 8,
		ScanInterval: time.Hour,
		Events:       ring,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	for p := uint64(0); p < 16; p++ {
		if _, err := e.Serve(p*4096, trace.OpRead); err != nil {
			t.Fatal(err)
		}
	}
	before := ring.Published()
	if n := testing.AllocsPerRun(1000, func() {
		if _, err := e.Serve(3*4096, trace.OpRead); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("Serve hit with ring attached allocates %.1f/op, want 0", n)
	}
	if got := ring.Published(); got != before {
		t.Errorf("hits published %d events, want 0", got-before)
	}
}

// TestMigrationEventsPublished drives promotions and demotions with a ring
// attached and asserts both event kinds land in the trace with tenant and
// node attribution intact.
func TestMigrationEventsPublished(t *testing.T) {
	ring := obs.NewEventRing(1024)
	e, err := New(Config{
		Policy:    Proposed,
		DRAMPages: 8, NVMPages: 128, Shards: 4, Core: smallCore(),
		Tenants: []TenantConfig{
			{ID: 0, Name: "hot", DRAMQuota: 4},
			{ID: 1, Name: "cold", DRAMQuota: 4},
		},
		ScanInterval: time.Hour, // manual scans only
		Events:       ring,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	// A working set far beyond the DRAM quota forces fault demotions;
	// repeated hot touches plus ScanOnce force promotions.
	for round := 0; round < 6; round++ {
		for p := uint64(0); p < 64; p++ {
			if _, err := e.ServeTenant(0, p*4096, trace.OpWrite); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 8; i++ {
			for p := uint64(0); p < 4; p++ {
				if _, err := e.ServeTenant(0, p*4096, trace.OpRead); err != nil {
					t.Fatal(err)
				}
			}
		}
		_ = e.ScanOnce()
	}
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}

	events := ring.Snapshot(0)
	if len(events) == 0 {
		t.Fatal("no events published")
	}
	var promos, demos int
	for _, ev := range events {
		switch {
		case ev.Reason == obs.ReasonPromotion:
			promos++
			if ev.From != obs.TierNVM || ev.To != obs.TierDRAM {
				t.Fatalf("promotion event %v has tiers %v->%v", ev, ev.From, ev.To)
			}
		case ev.Reason == obs.ReasonDemotionFault || ev.Reason == obs.ReasonDemotionPromotion ||
			ev.Reason == obs.ReasonDemotionSpill || ev.Reason == obs.ReasonDemotionClean:
			demos++
			if ev.From != obs.TierDRAM || ev.To != obs.TierNVM {
				t.Fatalf("demotion event %v has tiers %v->%v", ev, ev.From, ev.To)
			}
		}
		if ev.Tenant != 0 && ev.Tenant != 1 {
			t.Fatalf("event carries unknown tenant %d", ev.Tenant)
		}
		if int(ev.Node) >= e.NumNodes() {
			t.Fatalf("event carries unknown node %d", ev.Node)
		}
		if ev.TS == 0 {
			t.Fatal("event missing timestamp")
		}
	}
	if promos == 0 || demos == 0 {
		t.Fatalf("events hold %d promotions, %d demotions; want both > 0", promos, demos)
	}
	st := e.Stats()
	if pub := int64(ring.Published()); pub == 0 || pub > st.Promotions+st.Demotions+st.Evictions {
		t.Fatalf("published %d events vs %d migrations", pub, st.Promotions+st.Demotions+st.Evictions)
	}
}

// TestDaemonStatsIntrospection checks the daemon snapshot after real
// epochs: epoch count and timing move, candidates are tallied, and the
// per-node pipeline fields are internally consistent.
func TestDaemonStatsIntrospection(t *testing.T) {
	e, err := New(Config{
		Policy:    Proposed,
		DRAMPages: 16, NVMPages: 128, Shards: 4, Core: smallCore(),
		ScanInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	// Build an NVM-resident hot set, then scan: candidates must be found.
	for p := uint64(0); p < 64; p++ {
		if _, err := e.Serve(p*4096, trace.OpWrite); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		for p := uint64(40); p < 48; p++ {
			if _, err := e.Serve(p*4096, trace.OpWrite); err != nil {
				t.Fatal(err)
			}
		}
	}
	_ = e.ScanOnce()
	_ = e.ScanOnce()

	ds := e.DaemonStats()
	if ds.Epochs < 2 {
		t.Fatalf("epochs = %d, want >= 2", ds.Epochs)
	}
	if ds.LastScanNS <= 0 || ds.MaxScanNS < ds.LastScanNS {
		t.Fatalf("scan timing last=%dns max=%dns", ds.LastScanNS, ds.MaxScanNS)
	}
	if ds.Candidates == 0 {
		t.Fatal("no candidates tallied across epochs")
	}
	if len(ds.Nodes) != e.NumNodes() {
		t.Fatalf("daemon snapshot covers %d nodes, engine has %d", len(ds.Nodes), e.NumNodes())
	}
	for _, n := range ds.Nodes {
		if int64(n.QueueDepth) > n.QueueHighWater {
			t.Fatalf("node %d: depth %d above high water %d", n.ID, n.QueueDepth, n.QueueHighWater)
		}
	}
	st := e.Stats()
	if ds.Epochs != st.Scans || ds.Batches != st.Batches || ds.BatchesDropped != st.QueueDrops {
		t.Fatalf("daemon snapshot disagrees with Stats: %+v vs %+v", ds, st)
	}
}

// TestRegisterMetricsCatalog registers the engine catalog on a multi-node,
// multi-tenant engine, drives traffic, and checks the scrape is valid
// Prometheus text carrying per-tenant and per-node series with live values.
func TestRegisterMetricsCatalog(t *testing.T) {
	ring := obs.NewEventRing(obs.DefaultRingSize)
	e, err := New(Config{
		Policy:    Proposed,
		DRAMPages: 16, NVMPages: 64, Shards: 4, Core: smallCore(),
		Topology: EvenTopology(2, 16, 64),
		Tenants: []TenantConfig{
			{ID: 0, Name: "bodytrack", DRAMQuota: 8},
			{ID: 1, Name: "canneal", DRAMQuota: 8},
		},
		ScanInterval: time.Hour,
		Events:       ring,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	e.RegisterMetrics(reg)

	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	for p := uint64(0); p < 48; p++ {
		if _, err := e.ServeTenant(0, p*4096, trace.OpWrite); err != nil {
			t.Fatal(err)
		}
		if _, err := e.ServeTenant(1, p*4096, trace.OpRead); err != nil {
			t.Fatal(err)
		}
	}
	_ = e.ScanOnce()

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidatePrometheus(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("scrape invalid: %v\n%s", err, buf.String())
	}

	samples := reg.Snapshot()
	if s, ok := obs.Find(samples, "tierd_engine_accesses_total"); !ok || s.Value != 96 {
		t.Fatalf("engine accesses sample = %+v, %v; want 96", s, ok)
	}
	for _, tenant := range []string{"bodytrack", "canneal"} {
		s, ok := obs.Find(samples, "tierd_tenant_accesses_total", obs.L("tenant", tenant))
		if !ok || s.Value != 48 {
			t.Fatalf("tenant %s accesses = %+v, %v; want 48", tenant, s, ok)
		}
	}
	for _, node := range []string{"0", "1"} {
		if _, ok := obs.Find(samples, "tierd_node_resident_pages",
			obs.L("node", node), obs.L("tier", "dram")); !ok {
			t.Fatalf("no resident-pages series for node %s", node)
		}
		if _, ok := obs.Find(samples, "tierd_node_accesses_total", obs.L("node", node)); !ok {
			t.Fatalf("no accesses series for node %s", node)
		}
	}
	// Residency gauges must agree with NodeStats.
	for i, ns := range e.NodeStats() {
		s, ok := obs.Find(samples, "tierd_node_capacity_pages",
			obs.L("node", []string{"0", "1"}[i]), obs.L("tier", "nvm"))
		if !ok || s.Value != ns.NVMPages {
			t.Fatalf("node %d NVM capacity sample %+v vs NodeStats %d", i, s, ns.NVMPages)
		}
	}
	if s, ok := obs.Find(samples, "tierd_events_published_total"); !ok || s.Value == 0 {
		t.Fatalf("events-published sample = %+v, %v; want > 0", s, ok)
	}
}
