package tiered

import (
	"errors"
	"fmt"

	"hybridmem/internal/mm"
	"hybridmem/internal/trace"
)

// Batch-serve errors.
var (
	// ErrBatchLengths is returned when the addrs, ops and out slices of a
	// batch do not have the same length.
	ErrBatchLengths = errors.New("tiered: batch slices must have equal lengths")
	// ErrBatchSync is returned when the batch API is called on a
	// synchronous engine: the reference policy serializes every access
	// behind one lock, so there is nothing for a batch to amortize and the
	// equivalence harness must see the one-at-a-time path.
	ErrBatchSync = errors.New("tiered: batch serve is not available in synchronous mode")
)

// batchScratch accumulates one ServeTenantBatch call's counter deltas so
// the striped atomics are written once per touched stripe, not once per
// access. hits[stripe] is the whole accumulator: a (location, op) split —
// index 0 = DRAM read, 1 = DRAM write, 2 = NVM read, 3 = NVM write — from
// which everything the flush publishes derives: the stripe's and the
// tenant's access counts are its sum, the tenant's DRAM/NVM hit counts
// its pairwise sums. Misses tally straight to the engine counters on the
// rare fault path and never enter the scratch. The stripe arrays are
// fixed at maxStripes (the hard cap on serve-cell counts); only the
// multi-node attribution slice ever grows, so a pooled scratch makes
// steady-state batches allocation-free.
type batchScratch struct {
	hits [maxStripes][4]int64

	// nodeAcc is the per-node access attribution of this batch's hits on
	// a multi-node engine, indexed node*stripes+stripe.
	nodeAcc []int64

	// touched lists the stripes with pending deltas (marked de-dups), so
	// the flush and the reset touch only stripes the batch actually used —
	// a size-1 batch flushes one stripe, not maxStripes.
	touched []uint32
	marked  [maxStripes]bool
}

// grow sizes the scratch for an engine with nodes striped node-counter
// groups of stripes cells each; the stripe-indexed arrays are fixed-size
// and never grow.
func (s *batchScratch) grow(nodes, stripes int) {
	if need := nodes * stripes; need > len(s.nodeAcc) && nodes > 1 {
		s.nodeAcc = make([]int64, need)
	}
	if s.touched == nil {
		s.touched = make([]uint32, 0, maxStripes)
	}
}

// ServeTenantBatch services a batch of line-sized accesses within a
// tenant's namespace, equivalent to calling ServeTenant(tenant, addrs[i],
// ops[i]) for each i in order, with the per-access bookkeeping amortized
// across the batch: the engine state and tenant resolve once, pass 1
// validates every address up front, pass 2 hashes each key once (shared
// by the table probe and the home-node lookup) and probes the lock-free
// table snapshots, accumulating the striped access/hit counters as plain
// per-stripe deltas flushed with one atomic Add per touched stripe —
// instead of 2–4 shared Adds per access. Faults fall out to the ordinary
// one-at-a-time fault path, so quota enforcement, NUMA placement and
// event publication are identical to the unbatched path.
//
// out[i] receives the i-th access's result; all three slices must have
// equal length. The returned count is how many leading accesses were
// served (and are reflected in out and every counter). A batch with any
// out-of-range address is rejected whole — (0, ErrPageRange) — before
// any access is tallied; lifecycle, unknown-tenant and synchronous-mode
// errors also reject the whole batch. A fault-path error stops the batch
// at the failing access after flushing the deltas of the accesses already
// served, so the counters stay exact.
//
// Safe for concurrent use like ServeTenant. The hits of one batch become
// visible to Stats/TenantStats/NodeStats at the batch's flush (faults
// remain immediately visible), which is within the documented lazy-sum
// consistency model: every field stays individually exact and monotone,
// and cross-field identities hold on a quiesced engine.
func (e *Engine) ServeTenantBatch(tenant TenantID, addrs []uint64, ops []trace.Op, out []ServeResult) (int, error) {
	if len(ops) != len(addrs) || len(out) != len(addrs) {
		return 0, ErrBatchLengths
	}
	switch e.state.Load() {
	case stateStarted:
	case stateNew:
		return 0, ErrNotStarted
	default:
		return 0, ErrStopped
	}
	ts := e.def
	if tenant != DefaultTenant {
		ts = e.tenants[tenant]
	}
	if ts == nil {
		return 0, fmt.Errorf("%w: %d", ErrUnknownTenant, tenant)
	}
	if e.backing != nil {
		return 0, ErrBatchSync
	}
	if len(addrs) == 0 {
		return 0, nil
	}

	// Pass 1: validate the whole batch before any side effect, so a
	// rejected batch leaves no partial accounting.
	for _, addr := range addrs {
		if e.pageOf(addr) > maxTablePage {
			return 0, ErrPageRange
		}
	}

	stripes := int(e.stripeMask) + 1
	s, _ := e.scratchPool.Get().(*batchScratch)
	if s == nil {
		s = &batchScratch{}
	}
	s.grow(len(e.nodes), stripes)

	// Pass 2: derive each key (hashed exactly once, shared by the probe
	// and the home-node lookup, as on the unbatched path) and probe the
	// table snapshots in order. Hits only bump a plain per-stripe delta;
	// misses — rare in steady state — tally their access directly and take
	// the ordinary fault path, exactly as unbatched.
	var err error
	served := len(addrs)
	for i, addr := range addrs {
		page := e.pageOf(addr)
		key := tableKey(ts.id, page)
		cell := key & e.stripeMask
		h := mix(key)
		home := 0
		if e.multiNode {
			home = e.tbl.HomeNodeHash(h)
		}
		op := ops[i]
		if loc, ok := e.tbl.TouchHash(key, h, op); ok {
			if !s.marked[cell] {
				s.marked[cell] = true
				s.touched = append(s.touched, uint32(cell))
			}
			idx := 0
			if loc != mm.LocDRAM {
				idx = 2
			}
			if op != trace.OpRead {
				idx++
			}
			s.hits[cell][idx]++
			if e.multiNode {
				s.nodeAcc[home*stripes+int(cell)]++
			}
			out[i] = ServeResult{ServedFrom: loc}
			continue
		}
		e.serveCells[cell].accesses.Add(1)
		ts.cells[cell].accesses.Add(1)
		if e.multiNode {
			e.nodes[home].accesses[cell].Add(1)
		}
		var res ServeResult
		res, err = e.serveFault(ts, cell, key, h, page, home, op)
		if err != nil {
			served = i
			break
		}
		out[i] = res
	}

	// Flush: one atomic Add per touched stripe per nonzero counter, then
	// reset only what was touched so the scratch returns to the pool clean.
	for _, c := range s.touched {
		hv := &s.hits[c]
		rd, wd, rn, wn := hv[0], hv[1], hv[2], hv[3]
		hv[0], hv[1], hv[2], hv[3] = 0, 0, 0, 0
		sum := rd + wd + rn + wn
		sc := &e.serveCells[c]
		sc.accesses.Add(sum)
		if rd != 0 {
			sc.readsDRAM.Add(rd)
		}
		if wd != 0 {
			sc.writesDRAM.Add(wd)
		}
		if rn != 0 {
			sc.readsNVM.Add(rn)
		}
		if wn != 0 {
			sc.writesNVM.Add(wn)
		}
		tc := &ts.cells[c]
		tc.accesses.Add(sum)
		if d := rd + wd; d != 0 {
			tc.hitsDRAM.Add(d)
		}
		if d := rn + wn; d != 0 {
			tc.hitsNVM.Add(d)
		}
		if e.multiNode {
			for n := range e.nodes {
				idx := n*stripes + int(c)
				if d := s.nodeAcc[idx]; d != 0 {
					e.nodes[n].accesses[c].Add(d)
					s.nodeAcc[idx] = 0
				}
			}
		}
		s.marked[c] = false
	}
	s.touched = s.touched[:0]
	e.scratchPool.Put(s)
	return served, err
}
