package tiered

import (
	"fmt"
	"sync/atomic"

	"hybridmem/internal/memspec"
)

// maxNodes bounds the node count of a topology: more sockets than shards
// (or than any real machine) is a configuration bug, not a scaling axis.
const maxNodes = 64

// NodeConfig is one NUMA node's share of the machine: the DRAM and NVM
// frame pools physically attached to that node.
type NodeConfig struct {
	// DRAMPages and NVMPages are the node's frame pools; both must be at
	// least 1 so every node can host pages in either tier.
	DRAMPages, NVMPages int
}

// Topology describes how the engine's memory is split across NUMA nodes.
// The zero value means a single uniform node owning all of DRAM and NVM —
// the paper's machine, and bit-compatible with the pre-topology engine.
//
// The table maps shard groups to home nodes (contiguous shard ranges, so
// the splitmix64 shard selector doubles as the topology map), the engine
// keeps one CAS-exact DRAM/NVM pool per node, and the daemon runs one
// scan/promotion pipeline per node. A page prefers frames on its home
// node; it is placed remotely only when the home node cannot hand it a
// frame — the pool is physically full, or the tenant is past its node
// share there and the spill pool is fully borrowed.
type Topology struct {
	// Nodes lists the per-node pools. Empty means one node owning the
	// engine's whole DRAMPages/NVMPages. When set, the pools must sum to
	// exactly the engine's configured zone capacities.
	Nodes []NodeConfig
	// RemotePenalty is the cross-node access-cost multiplier used by the
	// cost model and reports (>= 1). 0 takes memspec.DefaultNUMA()'s
	// factor.
	RemotePenalty float64
}

// EvenTopology splits dramPages and nvmPages evenly across nodes (earlier
// nodes take the remainders) — the tierd -numa emulation shape.
func EvenTopology(nodes, dramPages, nvmPages int) Topology {
	t := Topology{Nodes: make([]NodeConfig, nodes)}
	for i := range t.Nodes {
		t.Nodes[i].DRAMPages = dramPages / nodes
		if i < dramPages%nodes {
			t.Nodes[i].DRAMPages++
		}
		t.Nodes[i].NVMPages = nvmPages / nodes
		if i < nvmPages%nodes {
			t.Nodes[i].NVMPages++
		}
	}
	return t
}

// NumNodes returns the node count (1 for the zero value).
func (t Topology) NumNodes() int {
	if len(t.Nodes) == 0 {
		return 1
	}
	return len(t.Nodes)
}

// withDefaults fills the zero value in from the engine's flat zone sizes.
func (t Topology) withDefaults(dramPages, nvmPages int) Topology {
	if len(t.Nodes) == 0 {
		t.Nodes = []NodeConfig{{DRAMPages: dramPages, NVMPages: nvmPages}}
	}
	if t.RemotePenalty == 0 {
		t.RemotePenalty = memspec.DefaultNUMA().RemoteFactor
	}
	return t
}

// validate checks every node's pools (reporting the offending node index)
// and that the pools tile the configured zone capacities exactly.
func (t Topology) validate(dramPages, nvmPages int) error {
	if len(t.Nodes) > maxNodes {
		return fmt.Errorf("tiered: topology has %d nodes, limit is %d", len(t.Nodes), maxNodes)
	}
	if t.RemotePenalty < 1 {
		return fmt.Errorf("tiered: topology remote penalty %g below 1 (remote cannot be cheaper than local)", t.RemotePenalty)
	}
	var dramSum, nvmSum int
	for i, n := range t.Nodes {
		if n.DRAMPages < 1 {
			return fmt.Errorf("tiered: node %d: DRAM pool needs at least 1 frame, got %d", i, n.DRAMPages)
		}
		if n.NVMPages < 1 {
			return fmt.Errorf("tiered: node %d: NVM pool needs at least 1 frame, got %d", i, n.NVMPages)
		}
		dramSum += n.DRAMPages
		nvmSum += n.NVMPages
	}
	if dramSum != dramPages || nvmSum != nvmPages {
		return fmt.Errorf("tiered: node pools total %d DRAM + %d NVM frames, config says %d + %d",
			dramSum, nvmSum, dramPages, nvmPages)
	}
	return nil
}

// numa folds the topology into the memspec cost model.
func (t Topology) numa() memspec.NUMA {
	return memspec.NUMA{Nodes: t.NumNodes(), RemoteFactor: t.RemotePenalty}
}

// PromotionCostNS returns the latency of migrating one page from NVM into
// DRAM under spec: the cost the paper sizes its thresholds against,
// inflated by the remote penalty when the only free DRAM frame is on
// another node.
func (t Topology) PromotionCostNS(spec memspec.Spec, remote bool) float64 {
	return t.numa().MigrationCostNS(spec, spec.NVM, spec.DRAM, remote)
}

// BreakEvenHitsRemote is BreakEvenHits for a cross-node promotion: the
// page's round trip pays the interconnect penalty in both directions, so
// a remote migration must convert proportionally more NVM hits into DRAM
// hits before it pays for itself. tierd reports it next to the local
// figure so the -numa emulation's migration economics are visible.
func (t Topology) BreakEvenHitsRemote(spec memspec.Spec) int {
	n := t.numa()
	cost := n.MigrationCostNS(spec, spec.NVM, spec.DRAM, true) +
		n.MigrationCostNS(spec, spec.DRAM, spec.NVM, true)
	save := spec.NVM.ReadLatencyNS - spec.DRAM.ReadLatencyNS
	if save <= 0 {
		return 1
	}
	be := int(cost/save) + 1
	if be < 1 {
		be = 1
	}
	return be
}

// nodeState is one NUMA node's runtime state: the CAS-exact frame pools
// (the per-node split of the old global dramUsed/nvmUsed), the local-vs-
// remote placement counters, and the node's slice of the migration daemon
// (its own promotion queue, node-pinned workers and scan scratch). The
// contended pool levels and the counters each sit on their own cache line.
type nodeState struct {
	id              int
	dramCap, nvmCap int64

	_        [cacheLine]byte
	dramUsed atomic.Int64
	_        [cacheLine - 8]byte
	nvmUsed  atomic.Int64
	_        [cacheLine - 8]byte

	// Placement counters, attributed to the page's home node: a fault or
	// promotion is local when the frame it claimed is on the home node,
	// remote when the home node could not hand the tenant a frame (pool
	// full, or node share spent with the spill pool dry) and it came from
	// another node. Demotions are attributed to the node that held the
	// DRAM frame (local when the page lands in that node's NVM pool).
	faultsLocal, faultsRemote padCounter
	promosLocal, promosRemote padCounter
	demosLocal, demosRemote   padCounter

	// accesses stripes the node's served-access tally by the same
	// key-derived stripe as the engine's serve cells; only maintained on
	// multi-node engines (the single-node hot path stays untouched).
	accesses []padCounter

	// Daemon slice: the node's promotion queue, drained by the node's own
	// workers, and the per-tenant scan scratch (indexed by tenant list
	// position; guarded by the engine's scanMu).
	batchCh     chan *promoBatch
	scanBufs    [][]candidate
	scanQueues  [][]candidate
	scanWeights []int
	scanOrder   []candidate

	// Daemon introspection. queueHW is the deepest the promotion queue
	// has been at enqueue time (written only by the scanner, which is
	// single-threaded). drops counts batches shed on a full queue, the
	// per-node slice of the engine's queueDrops. lagLast/lagMax track
	// promotion lag — enqueue-to-drain latency of a batch — in
	// nanoseconds; lagMax is CAS-maintained because a node can run
	// several workers.
	queueHW         atomic.Int64
	drops           padCounter
	lagLast, lagMax atomic.Int64
}

// NodeStats is a snapshot of one node's pools and placement counters, the
// per-node breakdown of Stats.
type NodeStats struct {
	ID int
	// DRAMPages and NVMPages are the node's configured pools;
	// ResidentDRAM and ResidentNVM the current occupancies.
	DRAMPages, NVMPages       int64
	ResidentDRAM, ResidentNVM int64
	// Accesses counts served accesses to pages homed on this node
	// (maintained only on multi-node engines; 0 on a single node, where
	// Stats.Accesses is the same number).
	Accesses int64
	// FaultsLocal/FaultsRemote split the faults of pages homed here by
	// whether the frame they loaded into was node-local. Promotions
	// likewise. DemotionsLocal/DemotionsRemote split demotions of DRAM
	// frames on this node by whether the page landed in this node's NVM.
	FaultsLocal, FaultsRemote         int64
	PromotionsLocal, PromotionsRemote int64
	DemotionsLocal, DemotionsRemote   int64
}

// Sub returns the event-count deltas since prev; the pool levels are
// carried over unchanged.
func (s NodeStats) Sub(prev NodeStats) NodeStats {
	d := s
	d.Accesses -= prev.Accesses
	d.FaultsLocal -= prev.FaultsLocal
	d.FaultsRemote -= prev.FaultsRemote
	d.PromotionsLocal -= prev.PromotionsLocal
	d.PromotionsRemote -= prev.PromotionsRemote
	d.DemotionsLocal -= prev.DemotionsLocal
	d.DemotionsRemote -= prev.DemotionsRemote
	return d
}

// NumNodes returns the engine's node count.
func (e *Engine) NumNodes() int { return len(e.nodes) }

// Topology returns the engine's effective (default-filled) topology.
func (e *Engine) Topology() Topology { return e.cfg.Topology }

// NodeStats returns a snapshot of every node's pools and placement
// counters, in node order. Safe to call concurrently with Serve.
func (e *Engine) NodeStats() []NodeStats {
	out := make([]NodeStats, len(e.nodes))
	for i, ns := range e.nodes {
		st := NodeStats{
			ID:               ns.id,
			DRAMPages:        ns.dramCap,
			NVMPages:         ns.nvmCap,
			ResidentDRAM:     ns.dramUsed.Load(),
			ResidentNVM:      ns.nvmUsed.Load(),
			FaultsLocal:      ns.faultsLocal.Load(),
			FaultsRemote:     ns.faultsRemote.Load(),
			PromotionsLocal:  ns.promosLocal.Load(),
			PromotionsRemote: ns.promosRemote.Load(),
			DemotionsLocal:   ns.demosLocal.Load(),
			DemotionsRemote:  ns.demosRemote.Load(),
		}
		for j := range ns.accesses {
			st.Accesses += ns.accesses[j].Load()
		}
		out[i] = st
	}
	return out
}
