package tiered

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hybridmem/internal/mm"
	"hybridmem/internal/trace"
)

// TestLockFreeTableChurnConcurrent hammers the lock-free table with the
// full insert/remove/move/touch/scan/victim mix from many goroutines over
// a deliberately tiny key range, so slot tombstoning, reuse and bucket-
// array rebuilds happen constantly under concurrent lock-free readers.
// Run under -race in CI. Each goroutine tallies its successful inserts and
// removes; the quiesced population must equal the net.
func TestLockFreeTableChurnConcurrent(t *testing.T) {
	tbl, err := NewTable(4)
	if err != nil {
		t.Fatal(err)
	}
	const (
		goroutines = 8
		opsEach    = 20000
		pages      = 128
	)
	var inserted, removed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsEach; i++ {
				tn := TenantID(rng.Intn(2))
				p := uint64(rng.Intn(pages))
				switch rng.Intn(8) {
				case 0:
					loc := mm.LocNVM
					if rng.Intn(2) == 0 {
						loc = mm.LocDRAM
					}
					if tbl.Insert(tn, p, loc) {
						inserted.Add(1)
					}
				case 1:
					from := mm.LocNVM
					if rng.Intn(2) == 0 {
						from = mm.LocDRAM
					}
					if tbl.RemoveIf(tn, p, from) {
						removed.Add(1)
					}
				case 2:
					tbl.MoveIf(tn, p, mm.LocNVM, mm.LocDRAM)
				case 3:
					tbl.MoveIf(tn, p, mm.LocDRAM, mm.LocNVM)
				case 4:
					tbl.ClockVictim(mm.LocNVM, tn, rng.Intn(2) == 0)
				case 5:
					tbl.ScanShard(int(p)%tbl.NumShards(), rng.Intn(2) == 0,
						func(TenantID, uint64, mm.Location, int, uint64, uint64) {})
				case 6:
					tbl.Peek(tn, p)
				default:
					tbl.Touch(tn, p, trace.OpRead)
				}
			}
		}(int64(w) + 1)
	}
	wg.Wait()

	want := int(inserted.Load() - removed.Load())
	if got := tbl.Len(); got != want {
		t.Fatalf("Len = %d after churn, want net %d (%d inserted - %d removed)",
			got, want, inserted.Load(), removed.Load())
	}
	if d, n := tbl.Residents(mm.LocDRAM), tbl.Residents(mm.LocNVM); d+n != want {
		t.Fatalf("Residents %d+%d != net %d", d, n, want)
	}
}

// TestServeDaemonQuotaStress is the engine-level -race gate for the
// lock-free serve path: concurrent multi-tenant Serve traffic, the ticker
// daemon's lock-free shard scans, forced ScanOnce storms and tenant-quota
// demotions (tenant 0's working set far exceeds its quota, so it demotes
// its own pages continuously) all run against the same table. Quiesced,
// every occupancy/quota/spill invariant must hold exactly.
func TestServeDaemonQuotaStress(t *testing.T) {
	e, err := New(Config{
		Policy:    Proposed,
		DRAMPages: 48,
		NVMPages:  512,
		Shards:    8,
		Core:      smallCore(),
		Tenants: []TenantConfig{
			{ID: 0, Name: "hog", DRAMQuota: 16},
			{ID: 1, Name: "neighbor", DRAMQuota: 16},
			// 16 frames stay unquota'd: the shared spill pool.
		},
		ScanInterval: 100 * time.Microsecond,
		Workers:      2,
		BatchSize:    16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}

	const (
		goroutines = 6
		opsEach    = 12000
	)
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			tn := TenantID(seed % 2)
			footprint := 256
			if tn == 1 {
				footprint = 64
			}
			for i := 0; i < opsEach; i++ {
				op := trace.OpRead
				if rng.Intn(3) == 0 {
					op = trace.OpWrite
				}
				p := uint64(rng.Intn(footprint))
				if rng.Intn(2) == 0 {
					p = uint64(rng.Intn(footprint / 8))
				}
				if _, err := e.ServeTenant(tn, p*4096, op); err != nil {
					t.Error(err)
					return
				}
				if i%512 == 0 {
					_ = e.ScanOnce()
				}
			}
		}(int64(w))
	}
	// Concurrent readers of every aggregate the engine publishes.
	stopObs := make(chan struct{})
	var obsWG sync.WaitGroup
	obsWG.Add(1)
	go func() {
		defer obsWG.Done()
		for {
			select {
			case <-stopObs:
				return
			default:
				_ = e.Stats()
				_, _ = e.TenantStats(0)
				_, _ = e.TenantStats(1)
			}
		}
	}()
	wg.Wait()
	close(stopObs)
	obsWG.Wait()
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}

	st := e.Stats()
	if st.Accesses != goroutines*opsEach {
		t.Fatalf("accesses = %d, want %d", st.Accesses, goroutines*opsEach)
	}
	if st.Hits()+st.Faults != st.Accesses {
		t.Fatalf("hits %d + faults %d != accesses %d", st.Hits(), st.Faults, st.Accesses)
	}
	for _, id := range e.TenantIDs() {
		ts, _ := e.TenantStats(id)
		if ts.ResidentDRAM > ts.DRAMCap {
			t.Fatalf("tenant %d holds %d DRAM frames, cap %d", id, ts.ResidentDRAM, ts.DRAMCap)
		}
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestServeHitPathZeroAllocs is the regression gate behind the benchmark's
// 0 allocs/op claim: a steady-state hit — lock-free probe, striped tallies
// and all — must not allocate, at the table level and through the full
// engine Serve path, for reads and writes, hitting DRAM and NVM.
func TestServeHitPathZeroAllocs(t *testing.T) {
	tbl, err := NewTable(8)
	if err != nil {
		t.Fatal(err)
	}
	tbl.Insert(DefaultTenant, 7, mm.LocNVM)
	if n := testing.AllocsPerRun(1000, func() {
		tbl.Touch(DefaultTenant, 7, trace.OpRead)
	}); n != 0 {
		t.Errorf("Table.Touch allocates %.1f/op, want 0", n)
	}

	e, err := New(Config{
		DRAMPages: 64, NVMPages: 64, Shards: 8,
		// No epochs during the measurement: the daemon's own allocation
		// discipline is asserted separately.
		ScanInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	// Fault a small working set in (proposed policy faults into DRAM),
	// and plant one page in NVM so both hit flavors are measured.
	for p := uint64(0); p < 16; p++ {
		if _, err := e.Serve(p*4096, trace.OpRead); err != nil {
			t.Fatal(err)
		}
	}
	tbl2 := e.tbl
	tbl2.Insert(DefaultTenant, 99, mm.LocNVM)
	e.nodes[0].nvmUsed.Add(1)

	for _, tc := range []struct {
		name string
		addr uint64
		op   trace.Op
	}{
		{"read-dram", 3 * 4096, trace.OpRead},
		{"write-dram", 5 * 4096, trace.OpWrite},
		{"read-nvm", 99 * 4096, trace.OpRead},
		{"write-nvm", 99 * 4096, trace.OpWrite},
	} {
		if n := testing.AllocsPerRun(1000, func() {
			if _, err := e.Serve(tc.addr, tc.op); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Errorf("%s: Serve hit allocates %.1f/op, want 0", tc.name, n)
		}
	}
}

// TestScanEpochSteadyStateAllocFree pins the daemon satellite: once its
// buffers have warmed, a scan epoch that finds no promotion candidates
// allocates nothing, and epochs that do find candidates recycle their
// candidate lists and batch buffers through the pool (a small bound covers
// sort scratch jitter).
func TestScanEpochSteadyStateAllocFree(t *testing.T) {
	e, err := New(Config{
		DRAMPages: 32, NVMPages: 256, Shards: 4, Core: smallCore(),
		ScanInterval: time.Hour, // only manual scans
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	// Populate NVM with cold pages: lots to sweep, nothing hot.
	for p := uint64(0); p < 128; p++ {
		e.tbl.Insert(DefaultTenant, p, mm.LocNVM)
		e.nodes[0].nvmUsed.Add(1)
	}
	if err := e.ScanOnce(); err != nil { // warm the scratch buffers
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := e.ScanOnce(); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("cold-sweep scan epoch allocates %.1f/op, want 0", n)
	}

	// With one perpetually hot NVM page the epoch exercises the candidate,
	// ordering, interleave and batch machinery every time; the buffers must
	// be recycled rather than regrown. Each round re-heats the page and
	// demotes it back by hand (reversing the inline promotion's occupancy
	// moves), so every scan finds it hot in NVM again.
	heat := func() {
		for i := 0; i < 5; i++ {
			e.tbl.Touch(DefaultTenant, 42, trace.OpWrite)
		}
	}
	round := func() {
		heat()
		if err := e.ScanOnce(); err != nil {
			t.Fatal(err)
		}
		if e.tbl.MoveIf(DefaultTenant, 42, mm.LocDRAM, mm.LocNVM) {
			e.nodes[0].dramUsed.Add(-1)
			e.def.dramUsed.Add(-1)
			e.def.nodeUsed[0].Add(-1)
			e.nodes[0].nvmUsed.Add(1)
		} else {
			t.Fatal("hot page was not promoted")
		}
	}
	round() // warm the candidate/batch buffers
	if n := testing.AllocsPerRun(100, round); n > 1 {
		t.Errorf("hot-candidate scan epoch allocates %.1f/op, want <= 1", n)
	}
}
