package tiered

import (
	"strconv"

	"hybridmem/internal/mm"
	"hybridmem/internal/obs"
)

// DaemonNodeStats is one node's slice of the migration daemon's
// introspection: the live promotion-queue depth, its high-water mark,
// batches shed on a full queue, and the enqueue-to-drain promotion lag.
type DaemonNodeStats struct {
	ID             int
	QueueDepth     int
	QueueHighWater int64
	BatchesDropped int64
	// PromotionLagNS is the last batch's enqueue-to-drain latency;
	// PromotionLagMaxNS the worst seen.
	PromotionLagNS    int64
	PromotionLagMaxNS int64
}

// DaemonStats is a snapshot of the migration daemon's introspection
// counters: scan-epoch timing, candidate accounting and the per-node
// pipeline state. Safe to call concurrently with Serve and the daemon
// itself; the same lazy-read consistency model as Stats applies.
type DaemonStats struct {
	// Epochs counts completed scan epochs (== Stats.Scans).
	Epochs int64
	// LastScanNS and MaxScanNS are the last and worst epoch durations.
	LastScanNS, MaxScanNS int64
	// LastCandidates is the hot-page count of the last epoch;
	// Candidates the cumulative total across epochs.
	LastCandidates, Candidates int64
	// Coalesced counts candidates skipped because a previous epoch's
	// promotion of the same page was still in flight.
	Coalesced int64
	// Batches and BatchesDropped mirror Stats.Batches/QueueDrops.
	Batches, BatchesDropped int64
	Nodes                   []DaemonNodeStats
}

// DaemonStats returns the daemon introspection snapshot.
func (e *Engine) DaemonStats() DaemonStats {
	st := DaemonStats{
		Epochs:         e.c.scans.Load(),
		LastScanNS:     e.scanDurLast.Load(),
		MaxScanNS:      e.scanDurMax.Load(),
		LastCandidates: e.candLast.Load(),
		Candidates:     e.c.candidates.Load(),
		Coalesced:      e.c.coalesced.Load(),
		Batches:        e.c.batches.Load(),
		BatchesDropped: e.c.queueDrops.Load(),
		Nodes:          make([]DaemonNodeStats, len(e.nodes)),
	}
	for i, ns := range e.nodes {
		st.Nodes[i] = DaemonNodeStats{
			ID:                ns.id,
			QueueDepth:        len(ns.batchCh),
			QueueHighWater:    ns.queueHW.Load(),
			BatchesDropped:    ns.drops.Load(),
			PromotionLagNS:    ns.lagLast.Load(),
			PromotionLagMaxNS: ns.lagMax.Load(),
		}
	}
	return st
}

// Running reports whether the engine is between Start and Stop — the
// admin plane's readiness signal.
func (e *Engine) Running() bool { return e.state.Load() == stateStarted }

// SnapshotResidency walks the whole table over its published RCU
// snapshots, reporting every resident page's tenant, page number,
// location, frame node and windowed counters without resetting the
// windows. This is the persistence checkpoint's consistent cut: no lock
// is taken, no serve or scan path stalls, and a page migrating mid-walk
// is reported with whichever state the snapshot saw (the restore path
// re-validates everything anyway). Safe at any lifecycle state.
func (e *Engine) SnapshotResidency(fn func(tenant TenantID, page uint64, loc mm.Location, node int, reads, writes uint64)) {
	for i := 0; i < e.tbl.NumShards(); i++ {
		e.tbl.ScanShard(i, false, fn)
	}
}

// NumShards returns the page table's shard count — the granularity of the
// incremental checkpointer's dirty tracking.
func (e *Engine) NumShards() int { return e.tbl.NumShards() }

// ShardGen returns shard i's residency-mutation generation (see
// Table.ShardGen). The incremental checkpointer reads it before cutting a
// shard: an unchanged generation means the shard's residency is exactly
// what the previous cut saw, and the shard can be skipped.
func (e *Engine) ShardGen(i int) uint64 { return e.tbl.ShardGen(i) }

// SnapshotShardResidency is SnapshotResidency restricted to one shard —
// the incremental checkpointer's unit of work. Same consistency model:
// the shard's published RCU snapshot, no locks, windows not reset.
func (e *Engine) SnapshotShardResidency(i int, fn func(tenant TenantID, page uint64, loc mm.Location, node int, reads, writes uint64)) {
	e.tbl.ScanShard(i, false, fn)
}

// SpillUsed returns the number of spill-pool frames currently borrowed
// across all tenants.
func (e *Engine) SpillUsed() int64 { return e.spillUsed.Load() }

// sumServe sums one field of the striped serve cells, selected by f.
func (e *Engine) sumServe(f func(*serveCell) int64) int64 {
	var t int64
	for i := range e.serveCells {
		t += f(&e.serveCells[i])
	}
	return t
}

// RegisterMetrics registers the engine's full metric catalog — engine
// aggregates, daemon introspection, per-tenant series (labeled by tenant
// name) and per-node series (labeled by node id) — into reg. Every
// series is a func-backed view over counters the engine already
// maintains, so registering an observer adds no writes to any serve or
// migration path; values are read lazily at scrape time under the Stats
// consistency model. Call once per registry, before serving traffic.
// The catalog is documented in docs/observability.md.
func (e *Engine) RegisterMetrics(reg *obs.Registry) {
	// Engine aggregates.
	reg.CounterFunc("tierd_engine_accesses_total", "Accesses served, all tenants.",
		func() int64 { return e.sumServe(func(c *serveCell) int64 { return c.accesses.Load() }) })
	for _, s := range []struct {
		tier, op string
		f        func(*serveCell) int64
	}{
		{"dram", "read", func(c *serveCell) int64 { return c.readsDRAM.Load() }},
		{"dram", "write", func(c *serveCell) int64 { return c.writesDRAM.Load() }},
		{"nvm", "read", func(c *serveCell) int64 { return c.readsNVM.Load() }},
		{"nvm", "write", func(c *serveCell) int64 { return c.writesNVM.Load() }},
	} {
		f := s.f
		reg.CounterFunc("tierd_engine_hits_total", "Non-faulting accesses by tier and op.",
			func() int64 { return e.sumServe(f) }, obs.L("tier", s.tier), obs.L("op", s.op))
	}
	reg.CounterFunc("tierd_engine_faults_total", "Page faults (page not resident).",
		e.c.faults.Load)
	reg.CounterFunc("tierd_engine_fault_loads_total", "Faults by the tier the page loaded into.",
		e.c.faultsToDRAM.Load, obs.L("tier", "dram"))
	reg.CounterFunc("tierd_engine_fault_loads_total", "Faults by the tier the page loaded into.",
		e.c.faultsToNVM.Load, obs.L("tier", "nvm"))
	reg.CounterFunc("tierd_engine_promotions_total", "Pages migrated NVM to DRAM.",
		e.c.promotions.Load)
	reg.CounterFunc("tierd_engine_demotions_total", "Pages migrated DRAM to NVM.",
		e.c.demotions.Load)
	reg.CounterFunc("tierd_engine_demotions_by_reason_total", "Demotions by trigger.",
		e.c.demotionsFault.Load, obs.L("reason", "fault"))
	reg.CounterFunc("tierd_engine_demotions_by_reason_total", "Demotions by trigger.",
		e.c.demotionsPromo.Load, obs.L("reason", "promotion"))
	reg.CounterFunc("tierd_engine_demotions_by_reason_total", "Demotions by trigger.",
		e.c.demotionsClean.Load, obs.L("reason", "clean"))
	reg.CounterFunc("tierd_engine_evictions_total", "Pages evicted from memory (incl. Drop).",
		e.c.evictions.Load)
	reg.GaugeFunc("tierd_engine_resident_pages", "Resident pages by tier.",
		func() int64 {
			var t int64
			for _, ns := range e.nodes {
				t += ns.dramUsed.Load()
			}
			return t
		}, obs.L("tier", "dram"))
	reg.GaugeFunc("tierd_engine_resident_pages", "Resident pages by tier.",
		func() int64 {
			var t int64
			for _, ns := range e.nodes {
				t += ns.nvmUsed.Load()
			}
			return t
		}, obs.L("tier", "nvm"))
	reg.GaugeFunc("tierd_engine_capacity_pages", "Configured frame capacity by tier.",
		func() int64 { return e.dramCap }, obs.L("tier", "dram"))
	reg.GaugeFunc("tierd_engine_capacity_pages", "Configured frame capacity by tier.",
		func() int64 { return e.nvmCap }, obs.L("tier", "nvm"))
	reg.GaugeFunc("tierd_spill_pool_frames", "DRAM frames in the shared spill pool.",
		func() int64 { return e.spill })
	reg.GaugeFunc("tierd_spill_borrowed_frames", "Spill frames currently borrowed.",
		e.spillUsed.Load)

	// Daemon introspection.
	reg.CounterFunc("tierd_daemon_scans_total", "Completed scan epochs.", e.c.scans.Load)
	reg.CounterFunc("tierd_daemon_batches_total", "Promotion batches handed to workers.", e.c.batches.Load)
	reg.CounterFunc("tierd_daemon_batch_drops_total", "Batches shed on a full queue.", e.c.queueDrops.Load)
	reg.CounterFunc("tierd_daemon_candidates_total", "Hot pages found by scans.", e.c.candidates.Load)
	reg.CounterFunc("tierd_daemon_coalesced_total", "Candidates skipped as already in flight.", e.c.coalesced.Load)
	reg.GaugeFunc("tierd_daemon_scan_duration_ns", "Scan epoch duration.",
		e.scanDurLast.Load, obs.L("window", "last"))
	reg.GaugeFunc("tierd_daemon_scan_duration_ns", "Scan epoch duration.",
		e.scanDurMax.Load, obs.L("window", "max"))
	reg.GaugeFunc("tierd_daemon_candidates_last", "Hot pages found by the last epoch.", e.candLast.Load)

	// Per-tenant series, labeled by the tenant's configured name.
	for _, ts := range e.tenantList {
		ts := ts
		tn := obs.L("tenant", ts.name)
		reg.CounterFunc("tierd_tenant_accesses_total", "Accesses served per tenant.",
			func() int64 { a, _, _ := ts.serveTotals(); return a }, tn)
		reg.CounterFunc("tierd_tenant_hits_total", "Non-faulting accesses per tenant and tier.",
			func() int64 { _, h, _ := ts.serveTotals(); return h }, tn, obs.L("tier", "dram"))
		reg.CounterFunc("tierd_tenant_hits_total", "Non-faulting accesses per tenant and tier.",
			func() int64 { _, _, h := ts.serveTotals(); return h }, tn, obs.L("tier", "nvm"))
		reg.CounterFunc("tierd_tenant_faults_total", "Page faults per tenant.", ts.c.faults.Load, tn)
		reg.CounterFunc("tierd_tenant_promotions_total", "Promotions per tenant.", ts.c.promotions.Load, tn)
		reg.CounterFunc("tierd_tenant_demotions_total", "Demotions per tenant.", ts.c.demotions.Load, tn)
		reg.CounterFunc("tierd_tenant_evictions_total", "Evictions per tenant.", ts.c.evictions.Load, tn)
		reg.GaugeFunc("tierd_tenant_resident_dram_pages", "Tenant's resident DRAM pages.", ts.dramUsed.Load, tn)
		reg.GaugeFunc("tierd_tenant_dram_quota_pages", "Tenant's dedicated DRAM quota.",
			func() int64 { return ts.quota }, tn)
	}

	// Per-node series, labeled by node id.
	for _, ns := range e.nodes {
		ns := ns
		nl := obs.L("node", strconv.Itoa(ns.id))
		reg.GaugeFunc("tierd_node_resident_pages", "Node's resident pages by tier.",
			ns.dramUsed.Load, nl, obs.L("tier", "dram"))
		reg.GaugeFunc("tierd_node_resident_pages", "Node's resident pages by tier.",
			ns.nvmUsed.Load, nl, obs.L("tier", "nvm"))
		reg.GaugeFunc("tierd_node_capacity_pages", "Node's frame pools by tier.",
			func() int64 { return ns.dramCap }, nl, obs.L("tier", "dram"))
		reg.GaugeFunc("tierd_node_capacity_pages", "Node's frame pools by tier.",
			func() int64 { return ns.nvmCap }, nl, obs.L("tier", "nvm"))
		reg.CounterFunc("tierd_node_faults_total", "Faults of pages homed on the node, by frame locality.",
			ns.faultsLocal.Load, nl, obs.L("locality", "local"))
		reg.CounterFunc("tierd_node_faults_total", "Faults of pages homed on the node, by frame locality.",
			ns.faultsRemote.Load, nl, obs.L("locality", "remote"))
		reg.CounterFunc("tierd_node_promotions_total", "Promotions of pages homed on the node, by frame locality.",
			ns.promosLocal.Load, nl, obs.L("locality", "local"))
		reg.CounterFunc("tierd_node_promotions_total", "Promotions of pages homed on the node, by frame locality.",
			ns.promosRemote.Load, nl, obs.L("locality", "remote"))
		reg.CounterFunc("tierd_node_demotions_total", "Demotions of DRAM frames on the node, by landing locality.",
			ns.demosLocal.Load, nl, obs.L("locality", "local"))
		reg.CounterFunc("tierd_node_demotions_total", "Demotions of DRAM frames on the node, by landing locality.",
			ns.demosRemote.Load, nl, obs.L("locality", "remote"))
		if e.multiNode {
			reg.CounterFunc("tierd_node_accesses_total", "Accesses to pages homed on the node.",
				func() int64 {
					var t int64
					for i := range ns.accesses {
						t += ns.accesses[i].Load()
					}
					return t
				}, nl)
		}
		reg.GaugeFunc("tierd_node_queue_depth", "Promotion batches queued on the node.",
			func() int64 { return int64(len(ns.batchCh)) }, nl)
		reg.GaugeFunc("tierd_node_queue_high_water", "Deepest the node's promotion queue has been.",
			ns.queueHW.Load, nl)
		reg.CounterFunc("tierd_node_batch_drops_total", "Batches shed on the node's full queue.",
			ns.drops.Load, nl)
		reg.GaugeFunc("tierd_node_promotion_lag_ns", "Batch enqueue-to-drain latency.",
			ns.lagLast.Load, nl, obs.L("window", "last"))
		reg.GaugeFunc("tierd_node_promotion_lag_ns", "Batch enqueue-to-drain latency.",
			ns.lagMax.Load, nl, obs.L("window", "max"))
	}

	// Restore / warm-up accounting (restore.go). All zero on a process
	// that started cold.
	reg.CounterFunc("tierd_restore_pages_total", "Pages restored into NVM from a checkpoint.",
		e.restored.Load)
	reg.CounterFunc("tierd_restore_skipped_total", "Checkpoint records dropped at restore (unknown tenant, duplicate, capacity).",
		e.restoreSkips.Load)
	reg.CounterFunc("tierd_restore_warm_direct_total", "Hot pages restored straight into DRAM by age-tiered warm-up.",
		e.warmDirect.Load)
	reg.GaugeFunc("tierd_warmup_pending", "Restored-hot pages awaiting the warm-up promotion storm.",
		e.warmPending.Load)
	reg.CounterFunc("tierd_warmup_enqueued_total", "Restored-hot pages handed to the promotion queues.",
		e.warmEnqueued.Load)

	// Event-ring accounting, when a trace ring is attached.
	if e.ring != nil {
		reg.CounterFunc("tierd_events_published_total", "Migration events published to the trace ring.",
			func() int64 { return int64(e.ring.Published()) })
		reg.CounterFunc("tierd_events_overwritten_total", "Trace events lost to ring wraparound.",
			func() int64 { return int64(e.ring.Overwritten()) })
	}
}
