package tiered

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
	"time"

	"hybridmem/internal/trace"
)

// Hist is a logarithmic latency histogram: bucket i holds durations whose
// nanosecond count has bit length i, so buckets are powers of two wide.
// Each load-generator worker owns one (no synchronization on the record
// path) and the per-worker histograms merge after the run.
type Hist struct {
	buckets [65]uint64
	count   uint64
	max     time.Duration
}

// Record adds one observation.
func (h *Hist) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bits.Len64(uint64(d))]++
	h.count++
	if d > h.max {
		h.max = d
	}
}

// Add merges another histogram into h.
func (h *Hist) Add(o *Hist) {
	for i, n := range o.buckets {
		h.buckets[i] += n
	}
	h.count += o.count
	if o.max > h.max {
		h.max = o.max
	}
}

// Count returns the number of observations.
func (h *Hist) Count() uint64 { return h.count }

// Max returns the largest observation.
func (h *Hist) Max() time.Duration { return h.max }

// Quantile estimates the q-quantile (0 < q <= 1) as the geometric middle
// of the bucket the quantile falls in, so the estimate is within 2x of the
// true value. Returns 0 on an empty histogram.
func (h *Hist) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, n := range h.buckets {
		seen += n
		if seen >= rank {
			if i == 0 {
				return 0
			}
			// Bucket i spans [2^(i-1), 2^i); its geometric middle is
			// 0.75 * 2^i.
			return time.Duration(0.75 * math.Pow(2, float64(i)))
		}
	}
	return h.max
}

// LoadConfig describes one closed-loop load-generation run: workers replay
// a trace into the engine, each issuing its next access as soon as the
// previous one returns.
type LoadConfig struct {
	// Goroutines is the number of concurrent closed-loop workers
	// (single-tenant RunLoad only; RunTenantLoad takes per-tenant counts).
	Goroutines int
	// Ops is the total access budget across all workers and tenants.
	// 0 means run until Duration expires.
	Ops int64
	// Duration is the wall-clock budget. 0 means run until Ops are done.
	// With both set, whichever limit is hit first ends the run.
	Duration time.Duration
	// Batch groups each worker's accesses into ServeTenantBatch calls of
	// this size (0 or 1 serves one access at a time through ServeTenant) —
	// the A/B lever for measuring what batch amortization buys the serve
	// path. Latency is then recorded as the per-access share of each
	// batch's wall time, so Ops and throughput stay comparable across
	// batch sizes. Not available on synchronous engines.
	Batch int
}

// LoadReport is the outcome of one load run (or one tenant's share of it).
type LoadReport struct {
	// Ops is the number of accesses actually served.
	Ops int64
	// Elapsed is the wall-clock time from first to last access.
	Elapsed time.Duration
	// OpsPerSec is the aggregate closed-loop throughput.
	OpsPerSec float64
	// P50, P95, P99 and Max summarize per-access service latency as
	// measured at the caller (bucketed; quantiles are within 2x).
	P50, P95, P99, Max time.Duration
	// Hist is the merged latency histogram.
	Hist Hist
}

// reportFrom summarizes a merged histogram over a wall-clock window.
func reportFrom(h Hist, elapsed time.Duration) LoadReport {
	rep := LoadReport{Elapsed: elapsed, Hist: h}
	rep.Ops = int64(h.Count())
	if elapsed > 0 {
		rep.OpsPerSec = float64(rep.Ops) / elapsed.Seconds()
	}
	rep.P50 = rep.Hist.Quantile(0.50)
	rep.P95 = rep.Hist.Quantile(0.95)
	rep.P99 = rep.Hist.Quantile(0.99)
	rep.Max = rep.Hist.Max()
	return rep
}

// TenantLoad is one tenant's slice of a multi-tenant load run: its own
// trace (workload and seed chosen per tenant) replayed by its own
// closed-loop workers.
type TenantLoad struct {
	// Tenant is the namespace the accesses are served under; it must be
	// configured on the engine.
	Tenant TenantID
	// Recs is the trace the tenant's workers replay circularly.
	Recs []trace.Record
	// Goroutines is the tenant's closed-loop worker count.
	Goroutines int
}

// TenantReport is one tenant's outcome within a multi-tenant run.
type TenantReport struct {
	Tenant TenantID
	Report LoadReport
}

// MultiLoadReport is the outcome of a multi-tenant load run: the merged
// aggregate plus each tenant's own throughput and latency distribution.
type MultiLoadReport struct {
	Aggregate LoadReport
	// Tenants is ordered as the loads were given.
	Tenants []TenantReport
}

// RunLoad drives the engine with cfg.Goroutines closed-loop workers on the
// default tenant, each replaying recs (circularly, starting at a
// worker-specific offset so the workers do not march in lockstep) until
// the op or time budget runs out. The engine must be started. Used by
// cmd/tierd, the scaling tests and the serve benchmarks, so they all
// measure the same loop.
func RunLoad(e *Engine, recs []trace.Record, cfg LoadConfig) (*LoadReport, error) {
	if cfg.Goroutines < 1 {
		return nil, fmt.Errorf("tiered: load needs at least 1 goroutine, got %d", cfg.Goroutines)
	}
	m, err := RunTenantLoad(e, []TenantLoad{
		{Tenant: DefaultTenant, Recs: recs, Goroutines: cfg.Goroutines},
	}, cfg)
	if err != nil {
		return nil, err
	}
	rep := m.Aggregate
	return &rep, nil
}

// RunTenantLoad drives the engine with several tenants' workers
// concurrently — the live form of the paper's consolidated `mix` study.
// cfg.Ops is the total budget, split evenly across tenants (earlier
// tenants take the remainder) and then across each tenant's workers;
// cfg.Duration bounds all of them together. The engine must be started.
func RunTenantLoad(e *Engine, loads []TenantLoad, cfg LoadConfig) (*MultiLoadReport, error) {
	if len(loads) == 0 {
		return nil, fmt.Errorf("tiered: load needs at least one tenant")
	}
	for _, l := range loads {
		if len(l.Recs) == 0 {
			return nil, fmt.Errorf("tiered: load needs a non-empty trace (tenant %d)", l.Tenant)
		}
		if l.Goroutines < 1 {
			return nil, fmt.Errorf("tiered: load needs at least 1 goroutine, got %d (tenant %d)",
				l.Goroutines, l.Tenant)
		}
	}
	if cfg.Ops <= 0 && cfg.Duration <= 0 {
		return nil, fmt.Errorf("tiered: load needs an op or time budget")
	}
	if cfg.Batch < 0 {
		return nil, fmt.Errorf("tiered: load batch size must be >= 0, got %d", cfg.Batch)
	}

	// hists[t][w] is tenant t's worker w histogram; errs aligns with it.
	hists := make([][]Hist, len(loads))
	errs := make([][]error, len(loads))
	for t, l := range loads {
		hists[t] = make([]Hist, l.Goroutines)
		errs[t] = make([]error, l.Goroutines)
	}
	var deadline time.Time
	start := time.Now()
	if cfg.Duration > 0 {
		deadline = start.Add(cfg.Duration)
	}

	var wg sync.WaitGroup
	for t, l := range loads {
		tenantOps := int64(math.MaxInt64)
		if cfg.Ops > 0 {
			tenantOps = cfg.Ops / int64(len(loads))
			if int64(t) < cfg.Ops%int64(len(loads)) {
				tenantOps++
			}
		}
		g := l.Goroutines
		for w := 0; w < g; w++ {
			opsBudget := tenantOps
			if cfg.Ops > 0 {
				opsBudget = tenantOps / int64(g)
				if int64(w) < tenantOps%int64(g) {
					opsBudget++
				}
			}
			wg.Add(1)
			go func(l TenantLoad, t, w int, budget int64) {
				defer wg.Done()
				h := &hists[t][w]
				recs := l.Recs
				i := len(recs) * w / l.Goroutines
				prev := time.Now()
				if cfg.Batch > 1 {
					// Batched closed loop: fill the next slice of the
					// circular trace and serve it in one engine call.
					addrs := make([]uint64, cfg.Batch)
					ops := make([]trace.Op, cfg.Batch)
					res := make([]ServeResult, cfg.Batch)
					for n := int64(0); n < budget; {
						k := cfg.Batch
						if rem := budget - n; int64(k) > rem {
							k = int(rem)
						}
						for j := 0; j < k; j++ {
							r := recs[i]
							i++
							if i == len(recs) {
								i = 0
							}
							addrs[j], ops[j] = r.Addr, r.Op
						}
						if _, err := e.ServeTenantBatch(l.Tenant, addrs[:k], ops[:k], res[:k]); err != nil {
							errs[t][w] = err
							return
						}
						now := time.Now()
						per := now.Sub(prev) / time.Duration(k)
						for j := 0; j < k; j++ {
							h.Record(per)
						}
						prev = now
						n += int64(k)
						if !deadline.IsZero() && now.After(deadline) {
							return
						}
					}
					return
				}
				for n := int64(0); n < budget; n++ {
					r := recs[i]
					i++
					if i == len(recs) {
						i = 0
					}
					if _, err := e.ServeTenant(l.Tenant, r.Addr, r.Op); err != nil {
						errs[t][w] = err
						return
					}
					now := time.Now()
					h.Record(now.Sub(prev))
					prev = now
					if !deadline.IsZero() && now.After(deadline) {
						return
					}
				}
			}(l, t, w, opsBudget)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	out := &MultiLoadReport{Tenants: make([]TenantReport, len(loads))}
	var all Hist
	for t, l := range loads {
		var merged Hist
		for w := range hists[t] {
			if errs[t][w] != nil {
				return nil, errs[t][w]
			}
			merged.Add(&hists[t][w])
		}
		all.Add(&merged)
		out.Tenants[t] = TenantReport{Tenant: l.Tenant, Report: reportFrom(merged, elapsed)}
	}
	out.Aggregate = reportFrom(all, elapsed)
	return out, nil
}
