package tiered

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
	"time"

	"hybridmem/internal/trace"
)

// Hist is a logarithmic latency histogram: bucket i holds durations whose
// nanosecond count has bit length i, so buckets are powers of two wide.
// Each load-generator worker owns one (no synchronization on the record
// path) and the per-worker histograms merge after the run.
type Hist struct {
	buckets [65]uint64
	count   uint64
	max     time.Duration
}

// Record adds one observation.
func (h *Hist) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bits.Len64(uint64(d))]++
	h.count++
	if d > h.max {
		h.max = d
	}
}

// Add merges another histogram into h.
func (h *Hist) Add(o *Hist) {
	for i, n := range o.buckets {
		h.buckets[i] += n
	}
	h.count += o.count
	if o.max > h.max {
		h.max = o.max
	}
}

// Count returns the number of observations.
func (h *Hist) Count() uint64 { return h.count }

// Max returns the largest observation.
func (h *Hist) Max() time.Duration { return h.max }

// Quantile estimates the q-quantile (0 < q <= 1) as the geometric middle
// of the bucket the quantile falls in, so the estimate is within 2x of the
// true value. Returns 0 on an empty histogram.
func (h *Hist) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, n := range h.buckets {
		seen += n
		if seen >= rank {
			if i == 0 {
				return 0
			}
			// Bucket i spans [2^(i-1), 2^i); its geometric middle is
			// 0.75 * 2^i.
			return time.Duration(0.75 * math.Pow(2, float64(i)))
		}
	}
	return h.max
}

// LoadConfig describes one closed-loop load-generation run: Goroutines
// workers replay a trace into the engine, each issuing its next access as
// soon as the previous one returns.
type LoadConfig struct {
	// Goroutines is the number of concurrent closed-loop workers.
	Goroutines int
	// Ops is the total access budget across all workers. 0 means run
	// until Duration expires.
	Ops int64
	// Duration is the wall-clock budget. 0 means run until Ops are done.
	// With both set, whichever limit is hit first ends the run.
	Duration time.Duration
}

// LoadReport is the outcome of one load run.
type LoadReport struct {
	// Ops is the number of accesses actually served.
	Ops int64
	// Elapsed is the wall-clock time from first to last access.
	Elapsed time.Duration
	// OpsPerSec is the aggregate closed-loop throughput.
	OpsPerSec float64
	// P50, P95, P99 and Max summarize per-access service latency as
	// measured at the caller (bucketed; quantiles are within 2x).
	P50, P95, P99, Max time.Duration
	// Hist is the merged latency histogram.
	Hist Hist
}

// RunLoad drives the engine with cfg.Goroutines closed-loop workers, each
// replaying recs (circularly, starting at a worker-specific offset so the
// workers do not march in lockstep) until the op or time budget runs out.
// The engine must be started. Used by cmd/tierd, the scaling tests and the
// serve benchmarks, so they all measure the same loop.
func RunLoad(e *Engine, recs []trace.Record, cfg LoadConfig) (*LoadReport, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("tiered: load needs a non-empty trace")
	}
	if cfg.Goroutines < 1 {
		return nil, fmt.Errorf("tiered: load needs at least 1 goroutine, got %d", cfg.Goroutines)
	}
	if cfg.Ops <= 0 && cfg.Duration <= 0 {
		return nil, fmt.Errorf("tiered: load needs an op or time budget")
	}

	g := cfg.Goroutines
	hists := make([]Hist, g)
	errs := make([]error, g)
	var deadline time.Time
	start := time.Now()
	if cfg.Duration > 0 {
		deadline = start.Add(cfg.Duration)
	}

	var wg sync.WaitGroup
	wg.Add(g)
	for w := 0; w < g; w++ {
		opsBudget := int64(math.MaxInt64)
		if cfg.Ops > 0 {
			opsBudget = cfg.Ops / int64(g)
			if int64(w) < cfg.Ops%int64(g) {
				opsBudget++
			}
		}
		go func(w int, budget int64) {
			defer wg.Done()
			h := &hists[w]
			i := len(recs) * w / g
			prev := time.Now()
			for n := int64(0); n < budget; n++ {
				r := recs[i]
				i++
				if i == len(recs) {
					i = 0
				}
				if _, err := e.Serve(r.Addr, r.Op); err != nil {
					errs[w] = err
					return
				}
				now := time.Now()
				h.Record(now.Sub(prev))
				prev = now
				if !deadline.IsZero() && now.After(deadline) {
					return
				}
			}
		}(w, opsBudget)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &LoadReport{Elapsed: elapsed}
	for w := range hists {
		if errs[w] != nil {
			return nil, errs[w]
		}
		rep.Hist.Add(&hists[w])
	}
	rep.Ops = int64(rep.Hist.Count())
	if elapsed > 0 {
		rep.OpsPerSec = float64(rep.Ops) / elapsed.Seconds()
	}
	rep.P50 = rep.Hist.Quantile(0.50)
	rep.P95 = rep.Hist.Quantile(0.95)
	rep.P99 = rep.Hist.Quantile(0.99)
	rep.Max = rep.Hist.Max()
	return rep, nil
}
