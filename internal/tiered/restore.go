package tiered

import (
	"errors"
	"time"

	"hybridmem/internal/mm"
	"hybridmem/internal/obs"
)

// Restore lifecycle errors.
var (
	// ErrRestoreStarted is returned by Restore after Start: residency can
	// only be rebuilt into a quiesced table.
	ErrRestoreStarted = errors.New("tiered: Restore must run before Start")
	// ErrRestoreSync is returned in synchronous mode, where the reference
	// policy owns residency and a side-channel insert would break the
	// count-exact sim equivalence.
	ErrRestoreSync = errors.New("tiered: Restore is unavailable in synchronous mode")
)

// RestoredPage is one checkpointed page handed back to the engine at
// restart. Pages restore into NVM — the durable tier — regardless of the
// tier they occupied at checkpoint time; Warm marks the ones that were
// DRAM-resident (or otherwise hot), which the warm-up feeder replays as a
// rate-limited promotion storm once the daemon starts.
type RestoredPage struct {
	Tenant TenantID
	Page   uint64
	// Node is the preferred frame pool (the node that held the page at
	// checkpoint time); out-of-range values fall back to the page's home
	// node under the current topology.
	Node int
	Warm bool
	// Score orders the warm-up storm (hottest first). Reads/Writes seed
	// the page's windowed counters so the first scan epochs after restart
	// see pre-crash heat.
	Score         uint64
	Reads, Writes uint64
}

// RestoreStats reports what Restore did with the checkpoint's records.
type RestoreStats struct {
	// Restored pages were inserted as NVM residents.
	Restored int
	// Duplicates were already resident (two records for one page — only
	// possible with a corrupt or concatenated checkpoint).
	Duplicates int
	// Skipped records named a tenant the current config does not have, or
	// a page outside the keyspace.
	Skipped int
	// CapacityDrops were lost because every NVM pool was full — the
	// current geometry is smaller than the checkpoint's.
	CapacityDrops int
	// WarmQueued pages await the warm-up promotion storm.
	WarmQueued int
	// WarmDirect pages went straight into DRAM at restore — the age-tiered
	// warm-up path (Config.WarmupDRAMTopK), which skips the storm for the
	// hottest checkpoint-warm pages.
	WarmDirect int
}

// Restore rebuilds residency from checkpoint records. It must run between
// New and Start, on an asynchronous engine: every record is inserted as an
// NVM resident (frame accounting goes through the same per-node pools the
// fault path uses, so CheckInvariants holds afterwards), counters are
// seeded with the checkpointed window, and Warm records queue for the
// warm-up promotion storm that Start launches. With Config.WarmupDRAMTopK
// set, the K hottest Warm records instead restore directly into DRAM —
// the age-tiered warm-up: each goes through the same CAS-exact quota and
// node-pool reservation a fault-time load uses, and one that finds no
// frame falls back to the NVM + storm path. Records that no longer fit —
// unknown tenant, out-of-range page, NVM full — are counted and skipped,
// never fatal: a checkpoint from a larger or differently-configured
// deployment restores as much as the current geometry allows.
func (e *Engine) Restore(pages []RestoredPage) (RestoreStats, error) {
	var st RestoreStats
	if e.backing != nil {
		return st, ErrRestoreSync
	}
	if e.state.Load() != stateNew {
		return st, ErrRestoreStarted
	}
	topK := e.topWarmSet(pages)
	for _, rp := range pages {
		ts := e.tenants[rp.Tenant]
		if ts == nil || rp.Page > maxTablePage {
			st.Skipped++
			continue
		}
		prefer := rp.Node
		if prefer < 0 || prefer >= len(e.nodes) {
			prefer = e.tbl.HomeNode(rp.Tenant, rp.Page)
		}
		if _, hot := topK[tableKey(rp.Tenant, rp.Page)]; hot {
			if node, r := e.reserveDRAM(ts, prefer); r == dramReserved {
				if !e.tbl.InsertNode(rp.Tenant, rp.Page, mm.LocDRAM, node) {
					e.releaseDRAM(ts, node)
					st.Duplicates++
					continue
				}
				if rp.Reads|rp.Writes != 0 {
					e.tbl.SeedCounters(rp.Tenant, rp.Page, rp.Reads, rp.Writes)
				}
				st.Restored++
				st.WarmDirect++
				e.publishEvent(rp.Tenant, rp.Page, node, obs.TierNone, obs.TierDRAM, obs.ReasonRestore, rp.Score)
				continue
			}
			// Quota, node pools and spill all exhausted for this tenant:
			// fall through to the NVM + storm path.
		}
		node, ok := e.reserveNVM(prefer)
		if !ok {
			st.CapacityDrops++
			continue
		}
		if !e.tbl.InsertNode(rp.Tenant, rp.Page, mm.LocNVM, node) {
			e.releaseNVM(node)
			st.Duplicates++
			continue
		}
		if rp.Reads|rp.Writes != 0 {
			e.tbl.SeedCounters(rp.Tenant, rp.Page, rp.Reads, rp.Writes)
		}
		st.Restored++
		e.publishEvent(rp.Tenant, rp.Page, node, obs.TierNone, obs.TierNVM, obs.ReasonRestore, rp.Score)
		if rp.Warm {
			e.warmup = append(e.warmup, candidate{key: tableKey(rp.Tenant, rp.Page), score: rp.Score})
			st.WarmQueued++
		}
	}
	orderCandidates(e.warmup)
	e.restored.Add(int64(st.Restored))
	e.restoreSkips.Add(int64(st.Duplicates + st.Skipped + st.CapacityDrops))
	e.warmDirect.Add(int64(st.WarmDirect))
	e.warmPending.Store(int64(len(e.warmup)))
	return st, nil
}

// topWarmSet picks the table keys of the WarmupDRAMTopK hottest
// checkpoint-warm records that the current config could restore at all —
// the set Restore places directly into DRAM. Nil when the feature is off.
func (e *Engine) topWarmSet(pages []RestoredPage) map[uint64]struct{} {
	k := e.cfg.WarmupDRAMTopK
	if k <= 0 {
		return nil
	}
	cands := make([]candidate, 0, len(pages))
	for _, rp := range pages {
		if !rp.Warm || e.tenants[rp.Tenant] == nil || rp.Page > maxTablePage {
			continue
		}
		cands = append(cands, candidate{key: tableKey(rp.Tenant, rp.Page), score: rp.Score})
	}
	orderCandidates(cands)
	if k > len(cands) {
		k = len(cands)
	}
	set := make(map[uint64]struct{}, k)
	for _, c := range cands[:k] {
		set[c.key] = struct{}{}
	}
	return set
}

// WarmupPending returns how many restored-hot pages still await the
// warm-up feeder. Zero once the post-restart promotion storm has been
// fully handed to the daemon queues.
func (e *Engine) WarmupPending() int64 { return e.warmPending.Load() }

// warmupLoop replays the checkpointed hot set through the per-node daemon
// queues: each ScanInterval tick it cuts up to WarmupRate pages per node
// into promotion batches and enqueues them for that node's workers, which
// apply them through the same applyPromotion path scan-found candidates
// take (location re-verified, quota-checked, event-published). The sends
// block when a queue is full — warm-up yields to live scan traffic rather
// than dropping — and every blocking point also watches stopCh, so
// Engine.Stop mid-storm abandons the remainder cleanly. Runs on its own
// goroutine, launched by Start when Restore queued warm pages.
func (e *Engine) warmupLoop() {
	defer e.warmWG.Done()
	perNode := make([][]candidate, len(e.nodes))
	for _, c := range e.warmup {
		n := e.tbl.HomeNodeKey(c.key)
		perNode[n] = append(perNode[n], c)
	}
	ticker := time.NewTicker(e.cfg.ScanInterval)
	defer ticker.Stop()
	for {
		select {
		case <-e.stopCh:
			return
		case <-ticker.C:
		}
		remaining := false
		for n, ns := range e.nodes {
			budget := e.cfg.WarmupRate
			for budget > 0 && len(perNode[n]) > 0 {
				take := e.cfg.BatchSize
				if take > budget {
					take = budget
				}
				if take > len(perNode[n]) {
					take = len(perNode[n])
				}
				b := e.newBatch()
				for _, cand := range perNode[n][:take] {
					if !e.markInflight(cand.key) {
						// The scanner beat us to this page (seeded counters
						// can qualify it): one promotion suffices.
						e.c.coalesced.Add(1)
						continue
					}
					b.c = append(b.c, cand)
				}
				perNode[n] = perNode[n][take:]
				budget -= take
				e.warmPending.Add(-int64(take))
				if len(b.c) == 0 {
					e.putBatch(b)
					continue
				}
				b.at = time.Now()
				// A successful send transfers b to the worker, which may
				// reset it immediately — snapshot the count first.
				enq := int64(len(b.c))
				select {
				case ns.batchCh <- b:
					e.c.batches.Add(1)
					e.warmEnqueued.Add(enq)
				case <-e.stopCh:
					for _, cand := range b.c {
						e.unmarkInflight(cand.key)
					}
					e.putBatch(b)
					return
				}
			}
			if len(perNode[n]) > 0 {
				remaining = true
			}
		}
		if !remaining {
			return
		}
	}
}
