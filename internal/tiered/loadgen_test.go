package tiered

import (
	"testing"
	"time"

	"hybridmem/internal/trace"
)

func TestHistQuantiles(t *testing.T) {
	var h Hist
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile not 0")
	}
	// 90 observations near 1us, 10 near 1ms: the median lands in the 1us
	// bucket, the p99 in the 1ms bucket. Log buckets guarantee estimates
	// within 2x of the recorded values.
	for i := 0; i < 90; i++ {
		h.Record(1 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Record(1 * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	if p50 := h.Quantile(0.50); p50 < 512*time.Nanosecond || p50 > 2*time.Microsecond {
		t.Fatalf("P50 = %v, want ~1us", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 512*time.Microsecond || p99 > 2*time.Millisecond {
		t.Fatalf("P99 = %v, want ~1ms", p99)
	}
	if h.Max() != time.Millisecond {
		t.Fatalf("Max = %v", h.Max())
	}

	// Merging preserves counts and extremes.
	var a, b Hist
	a.Record(time.Microsecond)
	b.Record(time.Second)
	a.Add(&b)
	if a.Count() != 2 || a.Max() != time.Second {
		t.Fatalf("after merge: count=%d max=%v", a.Count(), a.Max())
	}
}

func TestRunLoadExactOps(t *testing.T) {
	e, err := New(Config{DRAMPages: 16, NVMPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()

	recs := make([]trace.Record, 100)
	for i := range recs {
		recs[i] = trace.Record{Addr: uint64(i%40) * 4096, Op: trace.OpRead}
	}
	// An op budget that does not divide evenly across workers must still
	// be served exactly.
	rep, err := RunLoad(e, recs, LoadConfig{Goroutines: 3, Ops: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops != 1000 {
		t.Fatalf("Ops = %d, want 1000", rep.Ops)
	}
	if got := e.Stats().Accesses; got != 1000 {
		t.Fatalf("engine saw %d accesses, want 1000", got)
	}
	if rep.OpsPerSec <= 0 || rep.Elapsed <= 0 {
		t.Fatalf("degenerate report: %+v", rep)
	}
	if rep.P50 > rep.P99 || rep.P99 > rep.Max && rep.Max > 0 {
		t.Fatalf("quantiles not monotone: %+v", rep)
	}
}

func TestRunLoadDurationBudget(t *testing.T) {
	e, err := New(Config{DRAMPages: 16, NVMPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()

	recs := []trace.Record{{Addr: 0, Op: trace.OpRead}, {Addr: 4096, Op: trace.OpWrite}}
	rep, err := RunLoad(e, recs, LoadConfig{Goroutines: 2, Duration: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops == 0 {
		t.Fatal("duration-bounded run served nothing")
	}
}

func TestRunTenantLoad(t *testing.T) {
	e, err := New(Config{
		DRAMPages: 16, NVMPages: 64,
		Tenants: []TenantConfig{{ID: 0, DRAMQuota: 8}, {ID: 1, DRAMQuota: 6}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()

	mkRecs := func(n int) []trace.Record {
		recs := make([]trace.Record, n)
		for i := range recs {
			recs[i] = trace.Record{Addr: uint64(i%20) * 4096, Op: trace.OpRead}
		}
		return recs
	}
	loads := []TenantLoad{
		{Tenant: 0, Recs: mkRecs(50), Goroutines: 2},
		{Tenant: 1, Recs: mkRecs(80), Goroutines: 3},
	}
	// 1001 ops split 501/500 across tenants, then unevenly across each
	// tenant's workers: every op must still be served exactly once.
	rep, err := RunTenantLoad(e, loads, LoadConfig{Ops: 1001})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Aggregate.Ops != 1001 {
		t.Fatalf("aggregate ops = %d, want 1001", rep.Aggregate.Ops)
	}
	if len(rep.Tenants) != 2 {
		t.Fatalf("per-tenant reports: %d, want 2", len(rep.Tenants))
	}
	if got := rep.Tenants[0].Report.Ops; got != 501 {
		t.Fatalf("tenant 0 ops = %d, want 501", got)
	}
	if got := rep.Tenants[1].Report.Ops; got != 500 {
		t.Fatalf("tenant 1 ops = %d, want 500", got)
	}
	for _, tr := range rep.Tenants {
		st, ok := e.TenantStats(tr.Tenant)
		if !ok || st.Accesses != tr.Report.Ops {
			t.Fatalf("tenant %d engine saw %d accesses, report says %d", tr.Tenant, st.Accesses, tr.Report.Ops)
		}
		if tr.Report.OpsPerSec <= 0 {
			t.Fatalf("tenant %d degenerate throughput: %+v", tr.Tenant, tr.Report)
		}
	}
	if got := e.Stats().Accesses; got != 1001 {
		t.Fatalf("engine saw %d accesses, want 1001", got)
	}

	// Validation: unknown tenants surface the serve error, bad loads are
	// rejected up front.
	if _, err := RunTenantLoad(e, []TenantLoad{{Tenant: 9, Recs: mkRecs(5), Goroutines: 1}}, LoadConfig{Ops: 1}); err == nil {
		t.Error("unknown tenant accepted")
	}
	if _, err := RunTenantLoad(e, nil, LoadConfig{Ops: 1}); err == nil {
		t.Error("empty load set accepted")
	}
	if _, err := RunTenantLoad(e, []TenantLoad{{Tenant: 0, Recs: mkRecs(5), Goroutines: 0}}, LoadConfig{Ops: 1}); err == nil {
		t.Error("zero goroutines accepted")
	}
}

func TestRunLoadValidation(t *testing.T) {
	e, err := New(Config{DRAMPages: 2, NVMPages: 2})
	if err != nil {
		t.Fatal(err)
	}
	recs := []trace.Record{{Addr: 0}}
	if _, err := RunLoad(e, nil, LoadConfig{Goroutines: 1, Ops: 1}); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := RunLoad(e, recs, LoadConfig{Goroutines: 0, Ops: 1}); err == nil {
		t.Error("zero goroutines accepted")
	}
	if _, err := RunLoad(e, recs, LoadConfig{Goroutines: 1}); err == nil {
		t.Error("missing budget accepted")
	}
	// Serving a stopped engine surfaces the lifecycle error.
	if _, err := RunLoad(e, recs, LoadConfig{Goroutines: 1, Ops: 1}); err == nil {
		t.Error("unstarted engine accepted")
	}
}
