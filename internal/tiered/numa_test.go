package tiered

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"hybridmem/internal/memspec"
	"hybridmem/internal/mm"
	"hybridmem/internal/trace"
)

// pagesHomedOn collects count page numbers whose home node is the given
// node under the engine's table topology.
func pagesHomedOn(t *testing.T, e *Engine, node, count int) []uint64 {
	t.Helper()
	var out []uint64
	for p := uint64(0); len(out) < count; p++ {
		if p > 1<<20 {
			t.Fatalf("could not find %d pages homed on node %d", count, node)
		}
		if e.tbl.HomeNode(DefaultTenant, p) == node {
			out = append(out, p)
		}
	}
	return out
}

func TestEvenTopologySplit(t *testing.T) {
	topo := EvenTopology(3, 10, 8)
	wantDRAM, wantNVM := []int{4, 3, 3}, []int{3, 3, 2}
	var dramSum, nvmSum int
	for i, n := range topo.Nodes {
		if n.DRAMPages != wantDRAM[i] || n.NVMPages != wantNVM[i] {
			t.Fatalf("node %d pools = %d/%d, want %d/%d", i, n.DRAMPages, n.NVMPages, wantDRAM[i], wantNVM[i])
		}
		dramSum += n.DRAMPages
		nvmSum += n.NVMPages
	}
	if dramSum != 10 || nvmSum != 8 {
		t.Fatalf("pools total %d/%d, want 10/8", dramSum, nvmSum)
	}
}

func TestApportionQuotas(t *testing.T) {
	nodes := []NodeConfig{{DRAMPages: 4}, {DRAMPages: 12}}
	rows := apportionQuotas([]int64{9, 0}, nodes, 16)
	shares := rows[0]
	if shares[0]+shares[1] != 9 {
		t.Fatalf("shares %v do not sum to the quota", shares)
	}
	// 9*4/16 = 2 and 9*12/16 = 6, remainder 1 to node 0 (headroom left).
	if shares[0] != 3 || shares[1] != 6 {
		t.Fatalf("shares = %v, want [3 6]", shares)
	}
	if rows[1][0] != 0 || rows[1][1] != 0 {
		t.Fatalf("zero quota apportioned to %v", rows[1])
	}
	one := apportionQuotas([]int64{7}, []NodeConfig{{DRAMPages: 16}}, 16)
	if len(one[0]) != 1 || one[0][0] != 7 {
		t.Fatalf("single-node apportionment = %v, want [7]", one[0])
	}
}

// TestApportionQuotasNeverOversubscribesANode pins the joint-apportionment
// guarantee: remainders are steered by remaining node headroom, so the
// tenants' shares on any node never exceed that node's pool (naive
// earliest-node remainder placement would put 26+26 > 51 on node 0 here,
// leaving a within-quota tenant unable to ever reach its quota).
func TestApportionQuotasNeverOversubscribesANode(t *testing.T) {
	cases := []struct {
		quotas []int64
		nodes  []NodeConfig
	}{
		{[]int64{50, 50}, []NodeConfig{{DRAMPages: 51}, {DRAMPages: 49}}},
		{[]int64{1, 1, 1}, []NodeConfig{{DRAMPages: 2}, {DRAMPages: 2}}},
		{[]int64{7, 5, 3}, []NodeConfig{{DRAMPages: 5}, {DRAMPages: 5}, {DRAMPages: 6}}},
		// Three small-quota tenants' remainders must not eat the node-0
		// headroom tenant 3's floor share (1 on node 0) still needs: with
		// interleaved placement node 0 would back 4 shares on a 3-frame
		// pool.
		{[]int64{1, 1, 1, 5}, []NodeConfig{{DRAMPages: 3}, {DRAMPages: 5}}},
	}
	for _, tc := range cases {
		var total int64
		for _, n := range tc.nodes {
			total += int64(n.DRAMPages)
		}
		rows := apportionQuotas(tc.quotas, tc.nodes, total)
		perNode := make([]int64, len(tc.nodes))
		for t2, shares := range rows {
			var sum int64
			for n, s := range shares {
				sum += s
				perNode[n] += s
			}
			if sum != tc.quotas[t2] {
				t.Fatalf("quotas %v nodes %v: tenant %d shares %v sum to %d, want %d",
					tc.quotas, tc.nodes, t2, shares, sum, tc.quotas[t2])
			}
		}
		for n := range perNode {
			if perNode[n] > int64(tc.nodes[n].DRAMPages) {
				t.Fatalf("quotas %v nodes %v: node %d backs %d shares, pool is %d (rows %v)",
					tc.quotas, tc.nodes, n, perNode[n], tc.nodes[n].DRAMPages, rows)
			}
		}
	}
}

// TestTopologyValidation pins the per-node configuration errors: a bad
// pool names the offending node index, and pools that do not tile the
// configured totals are rejected.
func TestTopologyValidation(t *testing.T) {
	cases := []struct {
		cfg  Config
		want string
	}{
		{Config{DRAMPages: 8, NVMPages: 8, Topology: Topology{
			Nodes: []NodeConfig{{DRAMPages: 8, NVMPages: 8}, {DRAMPages: 0, NVMPages: 4}},
		}}, "node 1: DRAM pool"},
		{Config{DRAMPages: 8, NVMPages: 8, Topology: Topology{
			Nodes: []NodeConfig{{DRAMPages: 4, NVMPages: 0}, {DRAMPages: 4, NVMPages: 8}},
		}}, "node 0: NVM pool"},
		{Config{DRAMPages: 8, NVMPages: 8, Topology: Topology{
			Nodes: []NodeConfig{{DRAMPages: 4, NVMPages: 4}, {DRAMPages: 2, NVMPages: 4}},
		}}, "node pools total"},
		{Config{DRAMPages: 8, NVMPages: 8, Topology: Topology{
			Nodes:         []NodeConfig{{DRAMPages: 8, NVMPages: 8}},
			RemotePenalty: 0.5,
		}}, "remote penalty"},
		{Config{DRAMPages: 8, NVMPages: 8, Synchronous: true, Topology: EvenTopology(2, 8, 8)},
			"single-node topology"},
	}
	for i, tc := range cases {
		_, err := New(tc.cfg)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("config %d: error %v, want substring %q", i, err, tc.want)
		}
	}
	// A well-formed two-node topology is accepted, and the engine reports
	// its geometry.
	e, err := New(Config{DRAMPages: 8, NVMPages: 8, Topology: EvenTopology(2, 8, 8)})
	if err != nil {
		t.Fatal(err)
	}
	if e.NumNodes() != 2 || e.tbl.NumNodes() != 2 {
		t.Fatalf("engine reports %d/%d nodes, want 2/2", e.NumNodes(), e.tbl.NumNodes())
	}
	ns := e.NodeStats()
	if len(ns) != 2 || ns[0].DRAMPages != 4 || ns[1].NVMPages != 4 {
		t.Fatalf("NodeStats = %+v", ns)
	}
}

// TestTableTopologyMap pins the shard-group-to-home-node mapping: the node
// ranges tile the shard space contiguously and agree with HomeNodeShard.
func TestTableTopologyMap(t *testing.T) {
	for _, nodes := range []int{1, 2, 3, 5} {
		tbl, err := NewTableNUMA(8, nodes)
		if err != nil {
			t.Fatal(err)
		}
		covered := 0
		for n := 0; n < nodes; n++ {
			lo, hi := tbl.NodeShards(n)
			if hi <= lo {
				t.Fatalf("nodes=%d: node %d owns empty shard range [%d,%d)", nodes, n, lo, hi)
			}
			for s := lo; s < hi; s++ {
				if got := tbl.HomeNodeShard(s); got != n {
					t.Fatalf("nodes=%d: shard %d homed on %d, range says %d", nodes, s, got, n)
				}
				covered++
			}
		}
		if covered != tbl.NumShards() {
			t.Fatalf("nodes=%d: ranges cover %d of %d shards", nodes, covered, tbl.NumShards())
		}
	}
	// Fewer shards than nodes: the table rounds the shard count up.
	tbl, err := NewTableNUMA(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumShards() < 4 {
		t.Fatalf("4-node table has %d shards", tbl.NumShards())
	}
}

// TestPromotionPrefersHomeNode is the deterministic locality contract:
// with room on the home node every promotion is local, and remote
// promotions appear only once the home pool is exhausted.
func TestPromotionPrefersHomeNode(t *testing.T) {
	build := func(node0DRAM, node1DRAM int) *Engine {
		t.Helper()
		e, err := New(Config{
			Policy: Proposed, DRAMPages: node0DRAM + node1DRAM, NVMPages: 64,
			Core:   smallCore(),
			Shards: 8,
			Topology: Topology{Nodes: []NodeConfig{
				{DRAMPages: node0DRAM, NVMPages: 32},
				{DRAMPages: node1DRAM, NVMPages: 32},
			}},
			ScanInterval: time.Hour, // manual scans only
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Start(); err != nil {
			t.Fatal(err)
		}
		return e
	}
	// Plant hot NVM pages homed (and framed) on node 0, then scan.
	heatAndScan := func(e *Engine, pages []uint64) {
		t.Helper()
		for _, p := range pages {
			if !e.tbl.InsertNode(DefaultTenant, p, mm.LocNVM, 0) {
				t.Fatalf("page %d already resident", p)
			}
			e.nodes[0].nvmUsed.Add(1)
			for i := 0; i < 5; i++ {
				e.tbl.Touch(DefaultTenant, p, trace.OpWrite)
			}
		}
		if err := e.ScanOnce(); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("ample-home", func(t *testing.T) {
		e := build(8, 8)
		defer e.Stop()
		heatAndScan(e, pagesHomedOn(t, e, 0, 4))
		ns := e.NodeStats()
		if ns[0].PromotionsLocal != 4 || ns[0].PromotionsRemote != 0 {
			t.Fatalf("node 0 promotions local/remote = %d/%d, want 4/0",
				ns[0].PromotionsLocal, ns[0].PromotionsRemote)
		}
		if st := e.Stats(); st.RemotePromotions != 0 || st.Promotions != 4 {
			t.Fatalf("stats %+v", st)
		}
		if err := e.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("exhausted-home", func(t *testing.T) {
		e := build(2, 16)
		defer e.Stop()
		heatAndScan(e, pagesHomedOn(t, e, 0, 6))
		ns := e.NodeStats()
		if ns[0].PromotionsLocal != 2 {
			t.Fatalf("node 0 local promotions = %d, want 2 (its whole pool)", ns[0].PromotionsLocal)
		}
		if ns[0].PromotionsRemote != 4 {
			t.Fatalf("node 0 remote promotions = %d, want 4 (home exhausted)", ns[0].PromotionsRemote)
		}
		if ns[0].ResidentDRAM != 2 || ns[1].ResidentDRAM != 4 {
			t.Fatalf("DRAM occupancy %d/%d, want 2/4", ns[0].ResidentDRAM, ns[1].ResidentDRAM)
		}
		if st := e.Stats(); st.RemotePromotions != 4 {
			t.Fatalf("stats remote promotions = %d, want 4", st.RemotePromotions)
		}
		if err := e.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestTwoNodeServeScanStress is the NUMA -race gate: a two-node engine
// under concurrent serve traffic, scan storms and the ticker daemon, with
// node 0's DRAM pool deliberately tiny so cross-node placements happen
// continuously. Quiesced, the per-node pools must never exceed their
// capacity, every local/remote counter must reconcile with the totals,
// and the full per-node invariant suite must hold.
func TestTwoNodeServeScanStress(t *testing.T) {
	e, err := New(Config{
		Policy: Proposed, DRAMPages: 40, NVMPages: 256,
		Core:   smallCore(),
		Shards: 8,
		Topology: Topology{Nodes: []NodeConfig{
			{DRAMPages: 8, NVMPages: 128},
			{DRAMPages: 32, NVMPages: 128},
		}},
		ScanInterval: 100 * time.Microsecond,
		Workers:      2,
		BatchSize:    16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}

	const (
		goroutines = 6
		opsEach    = 12000
		footprint  = 512 // ~1.7x memory: faults and evictions stay hot
	)
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsEach; i++ {
				op := trace.OpRead
				if rng.Intn(3) == 0 {
					op = trace.OpWrite
				}
				p := uint64(rng.Intn(footprint))
				if rng.Intn(2) == 0 {
					p = uint64(rng.Intn(footprint / 8))
				}
				if _, err := e.Serve(p*4096, op); err != nil {
					t.Error(err)
					return
				}
				if i%512 == 0 {
					_ = e.ScanOnce()
				}
			}
		}(int64(w) + 1)
	}
	stopObs := make(chan struct{})
	var obsWG sync.WaitGroup
	obsWG.Add(1)
	go func() {
		defer obsWG.Done()
		for {
			select {
			case <-stopObs:
				return
			default:
				_ = e.Stats()
				_ = e.NodeStats()
			}
		}
	}()
	wg.Wait()
	close(stopObs)
	obsWG.Wait()
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}

	st := e.Stats()
	if st.Accesses != goroutines*opsEach {
		t.Fatalf("accesses = %d, want %d", st.Accesses, goroutines*opsEach)
	}
	nodes := e.NodeStats()
	var accesses, faults, promos, demos, remotePromos int64
	for _, ns := range nodes {
		if ns.ResidentDRAM > ns.DRAMPages || ns.ResidentNVM > ns.NVMPages {
			t.Fatalf("node %d occupancy %d/%d exceeds pools %d/%d",
				ns.ID, ns.ResidentDRAM, ns.ResidentNVM, ns.DRAMPages, ns.NVMPages)
		}
		// The table is the ground truth for where each frame sits.
		if d := int64(e.tbl.NodeResidents(ns.ID, mm.LocDRAM)); d != ns.ResidentDRAM {
			t.Fatalf("node %d table holds %d DRAM frames, pool says %d", ns.ID, d, ns.ResidentDRAM)
		}
		if n := int64(e.tbl.NodeResidents(ns.ID, mm.LocNVM)); n != ns.ResidentNVM {
			t.Fatalf("node %d table holds %d NVM frames, pool says %d", ns.ID, n, ns.ResidentNVM)
		}
		accesses += ns.Accesses
		faults += ns.FaultsLocal + ns.FaultsRemote
		promos += ns.PromotionsLocal + ns.PromotionsRemote
		demos += ns.DemotionsLocal + ns.DemotionsRemote
		remotePromos += ns.PromotionsRemote
	}
	if accesses != st.Accesses {
		t.Fatalf("per-node accesses total %d, engine served %d", accesses, st.Accesses)
	}
	if faults != st.Faults || promos != st.Promotions || demos != st.Demotions {
		t.Fatalf("per-node counters %d/%d/%d do not reconcile with totals %d/%d/%d",
			faults, promos, demos, st.Faults, st.Promotions, st.Demotions)
	}
	if remotePromos != st.RemotePromotions {
		t.Fatalf("remote promotions %d vs stats %d", remotePromos, st.RemotePromotions)
	}
	// Node 0's 8-frame pool under a ~45-frame hot set: the home pool is
	// exhausted essentially always, so both local and remote migrations
	// must have happened for the run to have exercised the topology.
	if st.Promotions == 0 || st.RemotePromotions == 0 {
		t.Fatalf("stress run too tame: %d promotions, %d remote", st.Promotions, st.RemotePromotions)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestNodeAccessAttribution: on a multi-node engine every served access is
// attributed to its page's home node.
func TestNodeAccessAttribution(t *testing.T) {
	e, err := New(Config{
		DRAMPages: 16, NVMPages: 16, Shards: 4,
		Topology:     EvenTopology(2, 16, 16),
		ScanInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	n0 := pagesHomedOn(t, e, 0, 3)
	n1 := pagesHomedOn(t, e, 1, 2)
	for _, p := range n0 {
		for i := 0; i < 4; i++ {
			if _, err := e.Serve(p*4096, trace.OpRead); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, p := range n1 {
		if _, err := e.Serve(p*4096, trace.OpWrite); err != nil {
			t.Fatal(err)
		}
	}
	ns := e.NodeStats()
	if ns[0].Accesses != 12 || ns[1].Accesses != 2 {
		t.Fatalf("node accesses = %d/%d, want 12/2", ns[0].Accesses, ns[1].Accesses)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestTopologyCostModel pins the memspec-derived migration economics: a
// remote promotion costs more than a local one, so its break-even hit
// count is strictly higher, and both scale with the penalty.
func TestTopologyCostModel(t *testing.T) {
	spec := memspec.Default()
	topo := EvenTopology(2, 8, 8)
	topo = topo.withDefaults(8, 8)
	local := topo.PromotionCostNS(spec, false)
	remote := topo.PromotionCostNS(spec, true)
	if remote <= local {
		t.Fatalf("remote promotion cost %g not above local %g", remote, local)
	}
	if be, beR := BreakEvenHits(spec), topo.BreakEvenHitsRemote(spec); beR <= be {
		t.Fatalf("remote break-even %d not above local %d", beR, be)
	}
	steep := Topology{Nodes: topo.Nodes, RemotePenalty: 3}
	if steep.BreakEvenHitsRemote(spec) <= topo.BreakEvenHitsRemote(spec) {
		t.Fatal("break-even did not grow with the penalty")
	}
}
