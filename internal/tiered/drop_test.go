package tiered

import (
	"errors"
	"fmt"
	"testing"

	"hybridmem/internal/trace"
)

func TestTenantByName(t *testing.T) {
	e, err := New(Config{
		DRAMPages: 8,
		NVMPages:  32,
		Tenants: []TenantConfig{
			{ID: 0, Name: "alpha", DRAMQuota: 4},
			{ID: 3, Name: "gamma", DRAMQuota: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if id, ok := e.TenantByName("gamma"); !ok || id != 3 {
		t.Fatalf("gamma resolved to (%d, %v)", id, ok)
	}
	if id, ok := e.TenantByName("alpha"); !ok || id != 0 {
		t.Fatalf("alpha resolved to (%d, %v)", id, ok)
	}
	if _, ok := e.TenantByName("nosuch"); ok {
		t.Fatal("unknown name resolved")
	}
	// A single-tenant engine resolves the implicit default tenant as
	// "default"; explicitly configured unnamed tenants get "tenant-<ID>".
	e2, err := New(Config{DRAMPages: 8, NVMPages: 32})
	if err != nil {
		t.Fatal(err)
	}
	if id, ok := e2.TenantByName("default"); !ok || id != DefaultTenant {
		t.Fatalf("default name resolved to (%d, %v)", id, ok)
	}
	e3, err := New(Config{DRAMPages: 8, NVMPages: 32,
		Tenants: []TenantConfig{{ID: 5, DRAMQuota: 4}}})
	if err != nil {
		t.Fatal(err)
	}
	if id, ok := e3.TenantByName("tenant-5"); !ok || id != 5 {
		t.Fatalf("generated name resolved to (%d, %v)", id, ok)
	}
}

func TestDrop(t *testing.T) {
	e, err := New(Config{DRAMPages: 4, NVMPages: 16, Shards: 4, Core: smallCore()})
	if err != nil {
		t.Fatal(err)
	}
	// Lifecycle: Drop before Start and after Stop fails like Serve does.
	if _, err := e.Drop(DefaultTenant, 0); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("Drop before Start: %v", err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}

	// Fill DRAM past capacity so pages sit in both tiers.
	for p := uint64(0); p < 6; p++ {
		if _, err := e.Serve(p*4096, trace.OpWrite); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.ResidentDRAM+st.ResidentNVM != 6 {
		t.Fatalf("resident %d+%d, want 6", st.ResidentDRAM, st.ResidentNVM)
	}

	// Dropping a non-resident page is a no-op, not an error.
	if ok, err := e.Drop(DefaultTenant, 999*4096); ok || err != nil {
		t.Fatalf("Drop(absent) = (%v, %v)", ok, err)
	}
	// Unknown tenants are rejected.
	if _, err := e.Drop(7, 0); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("Drop(unknown tenant): %v", err)
	}

	// Drop every resident page; the frames must all come back.
	for p := uint64(0); p < 6; p++ {
		ok, err := e.Drop(DefaultTenant, p*4096)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("page %d was resident but Drop found nothing", p)
		}
		if err := e.CheckInvariants(); err != nil {
			t.Fatalf("after dropping page %d: %v", p, err)
		}
	}
	st = e.Stats()
	if st.ResidentDRAM != 0 || st.ResidentNVM != 0 {
		t.Fatalf("residency after dropping all: %d DRAM, %d NVM", st.ResidentDRAM, st.ResidentNVM)
	}
	if st.Evictions < 6 {
		t.Fatalf("evictions = %d, want at least 6 (drops are accounted as evictions)", st.Evictions)
	}

	// A dropped page faults back in on the next access.
	res, err := e.Serve(0, trace.OpRead)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fault {
		t.Fatal("re-access after Drop did not fault")
	}

	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Drop(DefaultTenant, 0); !errors.Is(err, ErrStopped) {
		t.Fatalf("Drop after Stop: %v", err)
	}
}

// TestDropQuotaAccounting drops pages belonging to a quota-bound tenant
// and checks the freed DRAM is returned to the right ledger: the tenant
// can immediately fault new pages back in without borrowing spill.
func TestDropQuotaAccounting(t *testing.T) {
	e, err := New(Config{
		DRAMPages: 8,
		NVMPages:  32,
		Shards:    4,
		Core:      smallCore(),
		Tenants: []TenantConfig{
			{ID: 0, Name: "a", DRAMQuota: 4},
			{ID: 1, Name: "b", DRAMQuota: 4},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()

	// Both tenants fill their quotas.
	for id := TenantID(0); id < 2; id++ {
		for p := uint64(0); p < 4; p++ {
			if _, err := e.ServeTenant(id, p*4096, trace.OpWrite); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Tenant a frees half its quota.
	for p := uint64(0); p < 2; p++ {
		if ok, err := e.Drop(0, p*4096); !ok || err != nil {
			t.Fatalf("Drop = (%v, %v)", ok, err)
		}
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	a, _ := e.TenantStats(0)
	if a.ResidentDRAM != 2 {
		t.Fatalf("tenant a resident DRAM = %d, want 2", a.ResidentDRAM)
	}
	// The freed frames go back to tenant a's quota: faulting two fresh
	// pages must land in DRAM without demoting anything of tenant b's.
	demotionsBefore := e.Stats().Demotions
	for p := uint64(10); p < 12; p++ {
		res, err := e.ServeTenant(0, p*4096, trace.OpWrite)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Fault {
			t.Fatalf("page %d did not fault", p)
		}
	}
	if d := e.Stats().Demotions - demotionsBefore; d != 0 {
		t.Fatalf("%d demotions while refilling freed quota, want 0", d)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDropSynchronousModeRejected(t *testing.T) {
	e, err := New(Config{DRAMPages: 4, NVMPages: 16, Synchronous: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	if _, err := e.Serve(0, trace.OpRead); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Drop(DefaultTenant, 0); err == nil {
		t.Fatal("Drop succeeded in synchronous mode")
	} else if fmt.Sprint(err) == "" {
		t.Fatal("empty error")
	}
}
