// Package tiered is the online, concurrent tiered-memory engine: it serves
// line-sized accesses from many goroutines simultaneously while the paper's
// migration policy runs continuously in the background.
//
// The package decouples the access fast path from migration decisions, the
// way MigrantStore (Sohail et al.) argues an online hybrid memory must: a
// hit is entirely lock-free — an atomic snapshot load, an open-addressing
// probe and two atomic counter updates, with no shared mutex word written —
// and all page movement happens either on the (rare, disk-bound) fault path
// or in a background daemon that drains a batched promotion queue fed by
// per-shard hotness scans. The single-threaded reference implementation in
// internal/sim remains the semantic oracle: an Engine built with
// Config.Synchronous routes every access through the same policy code the
// simulator runs, and VerifyAgainstSim asserts count-exact equivalence.
//
// The keyspace is multi-tenant: every page belongs to a TenantID whose
// namespace is folded into the table key, each tenant has a DRAM quota
// (plus a shared spill pool) and its own policy state, and the daemon
// apportions its promotion budget across tenants by priority-weighted
// round-robin so one hot tenant cannot monopolize the migration queue.
//
// Memory is organized as a topology of NUMA domains: shard groups map to
// home nodes, each node owns CAS-exact DRAM/NVM frame pools, placement
// prefers the home node (going remote only when the home node cannot
// hand the tenant a frame — pool full, or node share spent with the
// spill pool dry; counted per node), and the daemon runs one
// scan/promotion pipeline per node. A single-tenant, single-node engine
// is bit-compatible
// with the original flat engine, which keeps the sim-equivalence gate
// count-exact.
package tiered

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"hybridmem/internal/mm"
	"hybridmem/internal/trace"
)

// maxShards bounds the shard count to something a laptop can allocate.
const maxShards = 1 << 16

// minSlots is the smallest bucket array a shard starts with.
const minSlots = 16

// entry is one resident page's online metadata. Entries are shared by
// pointer between successive bucket arrays of a shard, so a state change
// (move, removal) is visible even to a reader probing a snapshot taken
// before the array was rebuilt. The struct is padded to a full cache line:
// two hot pages' counters never share one.
type entry struct {
	// key is the namespaced tenant+page key, immutable after the entry is
	// published into a slot.
	key    uint64
	reads  atomic.Uint64
	writes atomic.Uint64
	ref    atomic.Uint32
	// state holds the page's mm.Location. LocDisk (the zero value, never a
	// resident location) marks the entry removed: stale-snapshot readers
	// that still reach the entry treat it as a miss.
	state atomic.Uint32
	// node is the NUMA node whose pool holds the page's current frame
	// (written under the shard mutex together with state; read lock-free).
	// It can differ from the page's home node when the home pool was full
	// at placement time.
	node atomic.Uint32
	_    [28]byte
}

// tombstone marks a vacated slot. Probes skip it and keep going (the key
// they want may live further down the chain); inserts may reuse the slot.
// It is recognized by pointer identity — its key field (zero) must never be
// compared, because 0 is a valid table key (tenant 0, page 0).
var tombstone = new(entry)

// buckets is one published open-addressing array. The slot pointers are the
// only mutable parts: readers load them atomically and probe linearly;
// writers (serialized by the shard mutex) fill empty slots, tombstone
// removed ones, and publish a whole new array when the load factor demands.
type buckets struct {
	slots []atomic.Pointer[entry]
	mask  uint64
}

func newBuckets(n int) *buckets {
	return &buckets{slots: make([]atomic.Pointer[entry], n), mask: uint64(n - 1)}
}

// find probes for key, returning the entry and its slot when resident. When
// absent, insertAt is the first reusable slot (a tombstone on the probe
// path, else the terminating empty slot); -1 means the array has no room on
// this chain and must be rebuilt. Callers that mutate must hold the shard
// mutex; the loads are atomic so concurrent lock-free readers are safe.
func (b *buckets) find(key, h uint64) (e *entry, slot, insertAt int) {
	free := -1
	for i := uint64(0); i <= b.mask; i++ {
		idx := int((h + i) & b.mask)
		p := b.slots[idx].Load()
		if p == nil {
			if free < 0 {
				free = idx
			}
			return nil, -1, free
		}
		if p == tombstone {
			if free < 0 {
				free = idx
			}
			continue
		}
		if p.key == key {
			return p, idx, -1
		}
	}
	return nil, -1, free
}

// shard is one write-serialization domain of the table. Readers never take
// the mutex: they load the published bucket array and probe it. The struct
// is padded so adjacent shards' mutexes and pointers sit on separate cache
// lines.
type shard struct {
	mu sync.Mutex
	b  atomic.Pointer[buckets]
	// live and dead count resident entries and tombstones in the current
	// array (writer-guarded); their sum drives the rebuild threshold.
	live int
	dead int
	// gen counts residency mutations (insert/move/remove), bumped as the
	// last step of each successful one. The incremental checkpointer reads
	// it before scanning: an unchanged gen means the shard's residency is
	// exactly what the last cut persisted, so the scan can be skipped.
	// Counter-only traffic (the serve path) never touches it.
	gen atomic.Uint64
	_   [80]byte
}

// grow rebuilds the shard's bucket array sized for the live population,
// copying live entry pointers (counters travel with the entry, so no access
// history is lost) and dropping tombstones, then publishes it. Returns the
// new array. Caller holds the shard mutex.
func (s *shard) grow() *buckets {
	n := minSlots
	for n < (s.live+1)*2 {
		n <<= 1
	}
	nb := newBuckets(n)
	old := s.b.Load()
	for i := range old.slots {
		e := old.slots[i].Load()
		if e == nil || e == tombstone {
			continue
		}
		h := mix(e.key)
		for j := uint64(0); ; j++ {
			idx := int((h + j) & nb.mask)
			if nb.slots[idx].Load() == nil {
				nb.slots[idx].Store(e)
				break
			}
		}
	}
	s.dead = 0
	s.b.Store(nb)
	return nb
}

// Table is a sharded concurrent page table with a lock-free read path: the
// online replacement for the single-threaded mm residence map. Namespaced
// pages hash onto power-of-two shards; each shard publishes an immutable-
// shape open-addressing array via an atomic pointer (the RCU-style snapshot
// pattern), so Touch and Peek never block — they probe the snapshot with
// atomic loads and bump the entry's counters in place. Writers (insert,
// move, remove, rebuild) serialize on a per-shard mutex that readers never
// touch.
type Table struct {
	shards []shard
	shift  uint
	// nodes is the NUMA node count the shard space is tiled over:
	// contiguous shard groups map to home nodes (shard s belongs to node
	// s*nodes/len(shards)), so the splitmix64 shard selector doubles as
	// the topology map and one node's pages spread over its own shard
	// range exactly as the flat table spread them over all shards.
	nodes int
	// cursor is the CLOCK hand for victim selection, in shard granularity,
	// padded onto its own line so demotion-path contention on it never
	// dirties the shard metadata.
	cursor atomic.Uint64
	_      [56]byte
}

// mix is the splitmix64 finalizer: the table's hash. Its high bits pick the
// shard and its low bits the probe start, so sequential page numbers spread
// across shards and within each bucket array (and one tenant's pages spread
// the same way as every other's).
func mix(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xBF58476D1CE4E5B9
	k ^= k >> 27
	k *= 0x94D049BB133111EB
	k ^= k >> 31
	return k
}

// NewTable returns a single-node table with shardCount shards, rounded up
// to the next power of two. shardCount 1 is the single-shard baseline the
// benchmarks compare against.
func NewTable(shardCount int) (*Table, error) {
	return NewTableNUMA(shardCount, 1)
}

// NewTableNUMA returns a table whose shard space is tiled over the given
// number of NUMA home nodes. The shard count is rounded up to a power of
// two and raised to at least the node count, so every node owns at least
// one shard.
func NewTableNUMA(shardCount, nodes int) (*Table, error) {
	if shardCount < 1 || shardCount > maxShards {
		return nil, fmt.Errorf("tiered: shard count %d outside [1,%d]", shardCount, maxShards)
	}
	if nodes < 1 || nodes > maxNodes {
		return nil, fmt.Errorf("tiered: node count %d outside [1,%d]", nodes, maxNodes)
	}
	if shardCount < nodes {
		shardCount = nodes
	}
	n := 1
	for n < shardCount {
		n <<= 1
	}
	t := &Table{
		shards: make([]shard, n),
		shift:  uint(64 - bits.Len(uint(n-1))),
		nodes:  nodes,
	}
	for i := range t.shards {
		t.shards[i].b.Store(newBuckets(minSlots))
	}
	return t, nil
}

// NumShards returns the (power-of-two) shard count.
func (t *Table) NumShards() int { return len(t.shards) }

// ShardGen returns shard i's residency-mutation generation. Read it
// before ScanShard: if a later read returns the same value, the scan saw
// every residency change (mutations publish before bumping, so a bump
// racing the scan only makes the next comparison conservatively rescan).
func (t *Table) ShardGen(i int) uint64 { return t.shards[i].gen.Load() }

// NumNodes returns the NUMA node count the shard space is tiled over.
func (t *Table) NumNodes() int { return t.nodes }

// HomeNodeShard returns the home node owning shard s: contiguous shard
// groups, node n owning shards [ceil(n*S/N), ceil((n+1)*S/N)).
func (t *Table) HomeNodeShard(s int) int { return s * t.nodes / len(t.shards) }

// NodeShards returns the half-open shard range [lo, hi) homed on node n.
func (t *Table) NodeShards(n int) (lo, hi int) {
	s := len(t.shards)
	return (n*s + t.nodes - 1) / t.nodes, ((n+1)*s + t.nodes - 1) / t.nodes
}

// HomeNodeKey returns the home node of a table key: the node owning the
// shard the key hashes to.
func (t *Table) HomeNodeKey(key uint64) int {
	return t.HomeNodeHash(mix(key))
}

// HomeNodeHash is HomeNodeKey for a pre-computed key hash: the serve path
// hashes each key once and reuses it for the probe and the home lookup.
func (t *Table) HomeNodeHash(h uint64) int {
	return t.HomeNodeShard(int(h >> t.shift))
}

// HomeNode returns the home node of a tenant's page.
func (t *Table) HomeNode(tenant TenantID, page uint64) int {
	return t.HomeNodeKey(tableKey(tenant, page))
}

// shardFor returns the owning shard and the key's hash.
func (t *Table) shardFor(key uint64) (*shard, uint64) {
	h := mix(key)
	return &t.shards[h>>t.shift], h
}

// lookup probes the owning shard's published snapshot for key, lock-free.
// It returns the entry whether live or freshly removed; callers check the
// state. A nil return means the key is absent from the snapshot — possibly
// a stale miss during a concurrent insert, which callers resolve on the
// fault path under the writer mutex.
func (t *Table) lookup(key uint64) *entry {
	return t.lookupHash(key, mix(key))
}

// lookupHash is lookup with the key's hash supplied by the caller.
func (t *Table) lookupHash(key, h uint64) *entry {
	s := &t.shards[h>>t.shift]
	slots := s.b.Load().slots
	// Indexing with &(len-1) lets the compiler prove the access in bounds:
	// no bounds check in the probe loop.
	mask := uint64(len(slots) - 1)
	for i := uint64(0); i <= mask; i++ {
		e := slots[(h+i)&mask].Load()
		if e == nil {
			return nil
		}
		if e.key == key && e != tombstone {
			return e
		}
	}
	return nil
}

// Touch services a hit: it looks the tenant's page up and, when resident,
// records one access of the given kind in the page's windowed counters and
// sets its CLOCK reference bit. The whole operation is lock-free — no
// mutex word is written, only the page's own cache line — and this is the
// engine's hot path. The counters are observed by ScanShard.
func (t *Table) Touch(tenant TenantID, page uint64, op trace.Op) (mm.Location, bool) {
	return t.TouchKey(tableKey(tenant, page), op)
}

// TouchKey is Touch for a pre-computed table key: the engine folds the
// tenant in once and reuses the key for counter striping.
func (t *Table) TouchKey(key uint64, op trace.Op) (mm.Location, bool) {
	return t.TouchHash(key, mix(key), op)
}

// TouchHash is TouchKey with the key's hash supplied by the caller: the
// engine hashes each access once and reuses it for the probe and the
// home-node lookup, so the hot path never mixes twice.
func (t *Table) TouchHash(key, h uint64, op trace.Op) (mm.Location, bool) {
	e := t.lookupHash(key, h)
	if e == nil {
		return 0, false
	}
	loc := mm.Location(e.state.Load())
	if !loc.IsMemory() {
		return 0, false
	}
	if op == trace.OpWrite {
		e.writes.Add(1)
	} else {
		e.reads.Add(1)
	}
	// Check-then-set: re-arming an already-set bit would bounce the cache
	// line exclusive on every hit.
	if e.ref.Load() == 0 {
		e.ref.Store(1)
	}
	return loc, true
}

// Peek returns a tenant's page location without recording an access.
// Lock-free, like Touch.
func (t *Table) Peek(tenant TenantID, page uint64) (mm.Location, bool) {
	e := t.lookup(tableKey(tenant, page))
	if e == nil {
		return 0, false
	}
	loc := mm.Location(e.state.Load())
	return loc, loc.IsMemory()
}

// Insert adds a non-resident page at loc on its home node, with fresh
// counters and the reference bit set. It reports false (and changes
// nothing) if the page is already resident — two goroutines faulting on
// the same page race here and exactly one wins.
func (t *Table) Insert(tenant TenantID, page uint64, loc mm.Location) bool {
	return t.InsertNode(tenant, page, loc, t.HomeNode(tenant, page))
}

// InsertNode is Insert with the frame's node chosen by the caller: the
// engine reserves a frame from a specific node's pool (home preferred,
// remote when the home pool is full) and records which pool holds it.
func (t *Table) InsertNode(tenant TenantID, page uint64, loc mm.Location, node int) bool {
	key := tableKey(tenant, page)
	s, h := t.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.b.Load()
	e, _, at := b.find(key, h)
	if e != nil {
		return false
	}
	// Rebuild before the array gets past 3/4 full (tombstones included), so
	// probes stay short and always terminate at an empty slot.
	if at < 0 || (s.live+s.dead+1)*4 > len(b.slots)*3 {
		b = s.grow()
		_, _, at = b.find(key, h)
	}
	ne := &entry{key: key}
	ne.ref.Store(1)
	ne.state.Store(uint32(loc))
	ne.node.Store(uint32(node))
	if b.slots[at].Load() == tombstone {
		s.dead--
	}
	// Publishing the pointer is the release: a reader that loads the slot
	// sees the fully initialized entry.
	b.slots[at].Store(ne)
	s.live++
	s.gen.Add(1)
	return true
}

// MoveIf relocates a resident page from one zone to the other on the same
// node, but only if it is still where the caller believes: migration
// decisions are made from scans that may be stale by the time they apply.
// The move resets the page's counters (it must re-earn hotness in its new
// zone, mirroring the fresh-counter MRU insertion of the reference policy)
// and re-arms the reference bit. Reports whether the move happened.
func (t *Table) MoveIf(tenant TenantID, page uint64, from, to mm.Location) bool {
	_, ok := t.MoveIfNode(tenant, page, from, to, -1)
	return ok
}

// MoveIfNode is MoveIf with the destination frame's node chosen by the
// caller (-1 keeps the page on its current node). It returns the node the
// page's old frame was on — read under the shard mutex, so the caller can
// release exactly that pool — and whether the move happened.
func (t *Table) MoveIfNode(tenant TenantID, page uint64, from, to mm.Location, toNode int) (fromNode int, ok bool) {
	key := tableKey(tenant, page)
	s, h := t.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, _, _ := s.b.Load().find(key, h)
	if e == nil || mm.Location(e.state.Load()) != from {
		return 0, false
	}
	fromNode = int(e.node.Load())
	e.reads.Store(0)
	e.writes.Store(0)
	e.ref.Store(1)
	if toNode >= 0 {
		e.node.Store(uint32(toNode))
	}
	e.state.Store(uint32(to))
	s.gen.Add(1)
	return fromNode, true
}

// RemoveIf evicts a resident page, but only if it is still in the zone the
// caller observed. Reports whether the removal happened.
func (t *Table) RemoveIf(tenant TenantID, page uint64, from mm.Location) bool {
	_, ok := t.RemoveIfNode(tenant, page, from)
	return ok
}

// RemoveIfNode is RemoveIf, additionally returning the node whose pool
// held the evicted frame (read under the shard mutex, authoritative even
// if the page migrated between the caller's observation and now). The
// entry is marked dead before its slot is tombstoned, so a reader probing
// an older snapshot of the shard (which still references the entry) also
// observes the removal.
func (t *Table) RemoveIfNode(tenant TenantID, page uint64, from mm.Location) (node int, ok bool) {
	key := tableKey(tenant, page)
	s, h := t.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.b.Load()
	e, slot, _ := b.find(key, h)
	if e == nil || mm.Location(e.state.Load()) != from {
		return 0, false
	}
	node = int(e.node.Load())
	e.state.Store(uint32(mm.LocDisk))
	b.slots[slot].Store(tombstone)
	s.live--
	s.dead++
	s.gen.Add(1)
	return node, true
}

// Len returns the total number of resident pages across all tenants. Taken
// lock-free over the published snapshots: exact when quiesced, a consistent
// approximation under concurrent churn.
func (t *Table) Len() int {
	n := 0
	for i := range t.shards {
		b := t.shards[i].b.Load()
		for j := range b.slots {
			if e := b.slots[j].Load(); e != nil && e != tombstone &&
				mm.Location(e.state.Load()).IsMemory() {
				n++
			}
		}
	}
	return n
}

// Residents counts the pages resident in one zone across all tenants.
func (t *Table) Residents(loc mm.Location) int {
	n := 0
	for i := range t.shards {
		b := t.shards[i].b.Load()
		for j := range b.slots {
			if e := b.slots[j].Load(); e != nil && e != tombstone &&
				mm.Location(e.state.Load()) == loc {
				n++
			}
		}
	}
	return n
}

// TenantResidents counts one tenant's pages resident in one zone — the
// table-side ground truth the engine's per-tenant occupancy counters are
// checked against.
func (t *Table) TenantResidents(tenant TenantID, loc mm.Location) int {
	n := 0
	for i := range t.shards {
		b := t.shards[i].b.Load()
		for j := range b.slots {
			e := b.slots[j].Load()
			if e == nil || e == tombstone || mm.Location(e.state.Load()) != loc {
				continue
			}
			if kt, _ := splitKey(e.key); kt == tenant {
				n++
			}
		}
	}
	return n
}

// NodeResidents counts the pages whose frame sits in one node's pool of
// the given zone — the table-side ground truth the engine's per-node
// occupancy pools are checked against.
func (t *Table) NodeResidents(node int, loc mm.Location) int {
	n := 0
	for i := range t.shards {
		b := t.shards[i].b.Load()
		for j := range b.slots {
			e := b.slots[j].Load()
			if e == nil || e == tombstone || mm.Location(e.state.Load()) != loc {
				continue
			}
			if int(e.node.Load()) == node {
				n++
			}
		}
	}
	return n
}

// SeedCounters overwrites a resident page's windowed counters. It exists
// for checkpoint restore: a page re-inserted at startup carries the
// hotness the checkpoint recorded, so the first scan epochs after a
// restart see pre-crash heat instead of a blank window. Lock-free (the
// counters are the entry's own atomics); a no-op when the page is not
// resident.
func (t *Table) SeedCounters(tenant TenantID, page uint64, reads, writes uint64) {
	e := t.lookup(tableKey(tenant, page))
	if e == nil || !mm.Location(e.state.Load()).IsMemory() {
		return
	}
	e.reads.Store(reads)
	e.writes.Store(writes)
}

// ScanShard visits every page of shard i, reporting each page's tenant,
// page number, location, frame node and windowed counters. With reset, the
// counters are atomically swapped to zero as they are read: successive
// scans then see per-epoch windowed counts, the online approximation of
// the paper's LRU windows, and every concurrent Touch lands in exactly one
// window. The scan walks the published snapshot without taking any lock,
// so it never stalls the serve or migration paths; a page moved or removed
// mid-scan may be reported with a mix of old and new state, which is fine
// for an advisory hotness sweep (the daemon re-verifies locations at apply
// time).
func (t *Table) ScanShard(i int, reset bool, fn func(tenant TenantID, page uint64, loc mm.Location, node int, reads, writes uint64)) {
	b := t.shards[i].b.Load()
	for j := range b.slots {
		e := b.slots[j].Load()
		if e == nil || e == tombstone {
			continue
		}
		loc := mm.Location(e.state.Load())
		if !loc.IsMemory() {
			continue
		}
		var r, w uint64
		if reset {
			r, w = e.reads.Swap(0), e.writes.Swap(0)
		} else {
			r, w = e.reads.Load(), e.writes.Load()
		}
		tenant, page := splitKey(e.key)
		fn(tenant, page, loc, int(e.node.Load()), r, w)
	}
}

// ClockVictim picks an eviction/demotion victim from the given zone with a
// second-chance sweep over every node's frames.
func (t *Table) ClockVictim(loc mm.Location, tenant TenantID, tenantOnly bool) (TenantID, uint64, bool) {
	kt, page, _, ok := t.ClockVictimNode(loc, -1, tenant, tenantOnly)
	return kt, page, ok
}

// ClockVictimNode picks an eviction/demotion victim from the given zone
// with a second-chance sweep: referenced pages get their bit cleared and
// are passed over; the first page found with a clear bit is the victim.
// With node >= 0, only pages whose frame sits in that node's pool are
// considered — the per-node capacity-enforcement case, where freeing a
// specific pool is the point. With tenantOnly, only the given tenant's
// pages are considered (and only their reference bits touched) — the
// quota-enforcement case, where an over-budget tenant must demote one of
// its own pages. The hand advances in shard granularity and each shard is
// swept in slot order over its published snapshot, lock-free. A final lap
// accepts any qualifying resident page, so the call only fails when the
// zone (or the requested slice of it) is empty. The returned frameNode is
// the node observed holding the victim's frame — a placement hint for the
// caller (the frame may migrate before the caller acts; the MoveIf/
// RemoveIf node returns stay authoritative).
func (t *Table) ClockVictimNode(loc mm.Location, node int, tenant TenantID, tenantOnly bool) (_ TenantID, page uint64, frameNode int, ok bool) {
	n := uint64(len(t.shards))
	for lap := 0; lap < 3; lap++ {
		ignoreRef := lap == 2
		for k := uint64(0); k < n; k++ {
			b := t.shards[(t.cursor.Add(1)-1)%n].b.Load()
			for j := range b.slots {
				e := b.slots[j].Load()
				if e == nil || e == tombstone || mm.Location(e.state.Load()) != loc {
					continue
				}
				if node >= 0 && int(e.node.Load()) != node {
					continue
				}
				kt, page := splitKey(e.key)
				if tenantOnly && kt != tenant {
					continue
				}
				if !ignoreRef && e.ref.Load() != 0 {
					e.ref.Store(0)
					continue
				}
				return kt, page, int(e.node.Load()), true
			}
		}
	}
	return 0, 0, 0, false
}
