// Package tiered is the online, concurrent tiered-memory engine: it serves
// line-sized accesses from many goroutines simultaneously while the paper's
// migration policy runs continuously in the background.
//
// The package decouples the access fast path from migration decisions, the
// way MigrantStore (Sohail et al.) argues an online hybrid memory must: a
// hit costs one sharded-map lookup plus two atomic counter updates, and all
// page movement happens either on the (rare, disk-bound) fault path or in a
// background daemon that drains a batched promotion queue fed by per-shard
// hotness scans. The single-threaded reference implementation in
// internal/sim remains the semantic oracle: an Engine built with
// Config.Synchronous routes every access through the same policy code the
// simulator runs, and VerifyAgainstSim asserts count-exact equivalence.
//
// The keyspace is multi-tenant: every page belongs to a TenantID whose
// namespace is folded into the table key, each tenant has a DRAM quota
// (plus a shared spill pool) and its own policy state, and the daemon
// apportions its promotion budget round-robin across tenants so one hot
// tenant cannot monopolize the migration queue. A single-tenant engine is
// bit-compatible with the pre-tenant one.
package tiered

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"hybridmem/internal/mm"
	"hybridmem/internal/trace"
)

// maxShards bounds the shard count to something a laptop can allocate.
const maxShards = 1 << 16

// entry is one resident page's online metadata. The location is guarded by
// the owning shard's lock; the counters and the CLOCK reference bit are
// atomics so the hit path can update them under the shared (read) lock.
type entry struct {
	reads  atomic.Uint64
	writes atomic.Uint64
	ref    atomic.Uint32
	loc    mm.Location
}

// shard is one lock domain of the table. Maps are keyed by the namespaced
// tenant+page key, so the same page number under two tenants is two
// entries.
type shard struct {
	mu    sync.RWMutex
	pages map[uint64]*entry
}

// Table is a sharded concurrent page table: the online replacement for the
// single-threaded mm residence map. Namespaced pages hash onto power-of-two
// shards; the hit path takes only the owning shard's read lock and updates
// the page's windowed access counters atomically, so concurrent readers of
// different (and mostly even the same) shards do not serialize.
type Table struct {
	shards []shard
	shift  uint
	// cursor is the CLOCK hand for victim selection, in shard granularity.
	cursor atomic.Uint64
}

// NewTable returns a table with shardCount shards, rounded up to the next
// power of two. shardCount 1 is the single-lock baseline the benchmarks
// compare against.
func NewTable(shardCount int) (*Table, error) {
	if shardCount < 1 || shardCount > maxShards {
		return nil, fmt.Errorf("tiered: shard count %d outside [1,%d]", shardCount, maxShards)
	}
	n := 1
	for n < shardCount {
		n <<= 1
	}
	t := &Table{
		shards: make([]shard, n),
		shift:  uint(64 - bits.Len(uint(n-1))),
	}
	for i := range t.shards {
		t.shards[i].pages = make(map[uint64]*entry)
	}
	return t, nil
}

// NumShards returns the (power-of-two) shard count.
func (t *Table) NumShards() int { return len(t.shards) }

// shardOf maps a table key onto its shard with a Fibonacci hash, so
// sequential page numbers spread across shards instead of clustering (and
// one tenant's pages spread the same way as every other's).
func (t *Table) shardOf(key uint64) *shard {
	return &t.shards[(key*0x9E3779B97F4A7C15)>>t.shift]
}

// Touch services a hit: it looks the tenant's page up and, when resident,
// records one access of the given kind in the page's windowed counters and
// sets its CLOCK reference bit. Only the owning shard's read lock is taken
// and nothing beyond the increment is read — this is the engine's hot
// path. The counters are observed by ScanShard.
func (t *Table) Touch(tenant TenantID, page uint64, op trace.Op) (loc mm.Location, ok bool) {
	key := tableKey(tenant, page)
	s := t.shardOf(key)
	s.mu.RLock()
	e, ok := s.pages[key]
	if !ok {
		s.mu.RUnlock()
		return 0, false
	}
	if op == trace.OpWrite {
		e.writes.Add(1)
	} else {
		e.reads.Add(1)
	}
	e.ref.Store(1)
	loc = e.loc
	s.mu.RUnlock()
	return loc, true
}

// Peek returns a tenant's page location without recording an access.
func (t *Table) Peek(tenant TenantID, page uint64) (mm.Location, bool) {
	key := tableKey(tenant, page)
	s := t.shardOf(key)
	s.mu.RLock()
	e, ok := s.pages[key]
	var loc mm.Location
	if ok {
		loc = e.loc
	}
	s.mu.RUnlock()
	return loc, ok
}

// Insert adds a non-resident page at loc with fresh counters and the
// reference bit set. It reports false (and changes nothing) if the page is
// already resident — two goroutines faulting on the same page race here and
// exactly one wins.
func (t *Table) Insert(tenant TenantID, page uint64, loc mm.Location) bool {
	key := tableKey(tenant, page)
	s := t.shardOf(key)
	s.mu.Lock()
	if _, exists := s.pages[key]; exists {
		s.mu.Unlock()
		return false
	}
	e := &entry{loc: loc}
	e.ref.Store(1)
	s.pages[key] = e
	s.mu.Unlock()
	return true
}

// MoveIf relocates a resident page from one zone to the other, but only if
// it is still where the caller believes: migration decisions are made from
// scans that may be stale by the time they apply. The move resets the
// page's counters (it must re-earn hotness in its new zone, mirroring the
// fresh-counter MRU insertion of the reference policy) and re-arms the
// reference bit. Reports whether the move happened.
func (t *Table) MoveIf(tenant TenantID, page uint64, from, to mm.Location) bool {
	key := tableKey(tenant, page)
	s := t.shardOf(key)
	s.mu.Lock()
	e, ok := s.pages[key]
	if !ok || e.loc != from {
		s.mu.Unlock()
		return false
	}
	e.loc = to
	e.reads.Store(0)
	e.writes.Store(0)
	e.ref.Store(1)
	s.mu.Unlock()
	return true
}

// RemoveIf evicts a resident page, but only if it is still in the zone the
// caller observed. Reports whether the removal happened.
func (t *Table) RemoveIf(tenant TenantID, page uint64, from mm.Location) bool {
	key := tableKey(tenant, page)
	s := t.shardOf(key)
	s.mu.Lock()
	e, ok := s.pages[key]
	if !ok || e.loc != from {
		s.mu.Unlock()
		return false
	}
	delete(s.pages, key)
	s.mu.Unlock()
	return true
}

// Len returns the total number of resident pages across all tenants.
func (t *Table) Len() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		n += len(s.pages)
		s.mu.RUnlock()
	}
	return n
}

// Residents counts the pages resident in one zone across all tenants.
func (t *Table) Residents(loc mm.Location) int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		for _, e := range s.pages {
			if e.loc == loc {
				n++
			}
		}
		s.mu.RUnlock()
	}
	return n
}

// TenantResidents counts one tenant's pages resident in one zone — the
// table-side ground truth the engine's per-tenant occupancy counters are
// checked against.
func (t *Table) TenantResidents(tenant TenantID, loc mm.Location) int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		for key, e := range s.pages {
			if kt, _ := splitKey(key); kt == tenant && e.loc == loc {
				n++
			}
		}
		s.mu.RUnlock()
	}
	return n
}

// ScanShard visits every page of shard i under the shard's read lock,
// reporting each page's tenant, page number, location and windowed
// counters. With reset, the counters are cleared after being read:
// successive scans then see per-epoch windowed counts, the online
// approximation of the paper's LRU-position counter windows.
func (t *Table) ScanShard(i int, reset bool, fn func(tenant TenantID, page uint64, loc mm.Location, reads, writes uint64)) {
	s := &t.shards[i]
	s.mu.RLock()
	for key, e := range s.pages {
		var r, w uint64
		if reset {
			// Swap, not load-then-store: a concurrent Touch holds the same
			// shared lock, and its increment must land in exactly one
			// epoch window.
			r, w = e.reads.Swap(0), e.writes.Swap(0)
		} else {
			r, w = e.reads.Load(), e.writes.Load()
		}
		tenant, page := splitKey(key)
		fn(tenant, page, e.loc, r, w)
	}
	s.mu.RUnlock()
}

// ClockVictim picks an eviction/demotion victim from the given zone with a
// second-chance sweep: referenced pages get their bit cleared and are
// passed over; the first page found with a clear bit is the victim. With
// tenantOnly, only the given tenant's pages are considered (and only their
// reference bits touched) — the quota-enforcement case, where an
// over-budget tenant must demote one of its own pages. The hand advances
// in shard granularity (within a shard the visit order is Go's map order,
// an acceptable degradation of CLOCK toward random-with-second-chance). A
// final lap accepts any qualifying resident page, so the call only fails
// when the zone (or the tenant's slice of it) is empty.
func (t *Table) ClockVictim(loc mm.Location, tenant TenantID, tenantOnly bool) (TenantID, uint64, bool) {
	n := uint64(len(t.shards))
	for lap := 0; lap < 3; lap++ {
		ignoreRef := lap == 2
		for k := uint64(0); k < n; k++ {
			s := &t.shards[(t.cursor.Add(1)-1)%n]
			var victimTenant TenantID
			var victim uint64
			found := false
			s.mu.RLock()
			for key, e := range s.pages {
				if e.loc != loc {
					continue
				}
				kt, page := splitKey(key)
				if tenantOnly && kt != tenant {
					continue
				}
				if !ignoreRef && e.ref.Load() != 0 {
					e.ref.Store(0)
					continue
				}
				victimTenant, victim, found = kt, page, true
				break
			}
			s.mu.RUnlock()
			if found {
				return victimTenant, victim, true
			}
		}
	}
	return 0, 0, false
}
