package tiered

import (
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hybridmem/internal/core"
	"hybridmem/internal/memspec"
	"hybridmem/internal/mm"
	"hybridmem/internal/trace"
	"hybridmem/internal/workload"
)

// genTrace materializes one workload (warmup then ROI, the same sequence
// the experiments replay) and returns the paper-rule zone sizing.
func genTrace(t testing.TB, name string, scale float64, seed int64) (recs []trace.Record, dram, nvm int) {
	t.Helper()
	spec, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown workload %q", name)
	}
	gen, err := workload.NewGenerator(spec, scale, seed)
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []trace.Source{gen.WarmupSource(seed + 1), gen} {
		part, err := trace.Materialize(src, 0)
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, part...)
	}
	dram, nvm = memspec.DefaultSizing().Partition(gen.Pages())
	return recs, dram, nvm
}

// TestEngineMatchesSimSingleGoroutine is the subsystem's equivalence
// guarantee: served from one goroutine in synchronous mode, the online
// engine produces the exact hit/fault/promotion/demotion counts of the
// single-threaded reference simulator, for every supported policy.
func TestEngineMatchesSimSingleGoroutine(t *testing.T) {
	recs, dram, nvm := genTrace(t, "bodytrack", 0.05, 11)
	for _, kind := range Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			stats, err := VerifyAgainstSim(Config{
				Policy:    kind,
				DRAMPages: dram,
				NVMPages:  nvm,
			}, recs)
			if err != nil {
				t.Fatal(err)
			}
			if stats.Accesses != int64(len(recs)) {
				t.Fatalf("verified %d accesses, trace has %d", stats.Accesses, len(recs))
			}
			if stats.Hits() == 0 || stats.Faults == 0 {
				t.Fatalf("degenerate trace: hits=%d faults=%d", stats.Hits(), stats.Faults)
			}
		})
	}
}

// smallCore returns a proposed-scheme config with tiny thresholds so tests
// can trigger migrations with a handful of accesses.
func smallCore() core.Config {
	return core.Config{ReadPerc: 0.5, WritePerc: 0.5, ReadThreshold: 3, WriteThreshold: 3}
}

func TestAsyncFaultDemotionPromotionCycle(t *testing.T) {
	e, err := New(Config{
		Policy:    Proposed,
		DRAMPages: 4,
		NVMPages:  16,
		Shards:    4,
		Core:      smallCore(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()

	// Five faults into a 4-frame DRAM: the fifth demotes one victim to NVM.
	pages := []uint64{100, 101, 102, 103, 104}
	for _, p := range pages {
		res, err := e.Serve(p*4096, trace.OpRead)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Fault || res.ServedFrom != mm.LocDRAM {
			t.Fatalf("page %d: fault=%v from=%v, want DRAM fault", p, res.Fault, res.ServedFrom)
		}
	}
	st := e.Stats()
	if st.Faults != 5 || st.Demotions != 1 || st.DemotionsFault != 1 {
		t.Fatalf("after faults: %+v", st)
	}

	// Find the demoted page and hammer it past the write threshold.
	var hot uint64
	found := false
	for _, p := range pages {
		if loc, ok := e.tbl.Peek(DefaultTenant, p); ok && loc == mm.LocNVM {
			hot, found = p, true
			break
		}
	}
	if !found {
		t.Fatal("no page landed in NVM")
	}
	for i := 0; i < 5; i++ {
		res, err := e.Serve(hot*4096, trace.OpWrite)
		if err != nil {
			t.Fatal(err)
		}
		if res.Fault || res.ServedFrom != mm.LocNVM {
			t.Fatalf("write %d on %d: fault=%v from=%v", i, hot, res.Fault, res.ServedFrom)
		}
	}

	// One scan epoch finds it hot (5 writes > threshold 3) and promotes it,
	// demoting some DRAM victim to make room.
	if err := e.ScanOnce(); err != nil {
		t.Fatal(err)
	}
	if loc, ok := e.tbl.Peek(DefaultTenant, hot); !ok || loc != mm.LocDRAM {
		t.Fatalf("hot page %d at %v/%v after scan, want DRAM", hot, loc, ok)
	}
	st = e.Stats()
	if st.Promotions != 1 || st.DemotionsPromo != 1 || st.Scans != 1 {
		t.Fatalf("after scan: %+v", st)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// The scan reset the window: an immediate rescan promotes nothing.
	if err := e.ScanOnce(); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().Promotions; got != 1 {
		t.Fatalf("second scan promoted again: %d", got)
	}
}

func TestClockDWFOnlineFaultZones(t *testing.T) {
	e, err := New(Config{Policy: ClockDWF, DRAMPages: 4, NVMPages: 8, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()

	if res, err := e.Serve(0, trace.OpRead); err != nil || res.ServedFrom != mm.LocNVM {
		t.Fatalf("read fault: %+v, %v; want NVM", res, err)
	}
	if res, err := e.Serve(4096, trace.OpWrite); err != nil || res.ServedFrom != mm.LocDRAM {
		t.Fatalf("write fault: %+v, %v; want DRAM", res, err)
	}
	// A single write to the NVM-resident page marks it hot.
	if _, err := e.Serve(0, trace.OpWrite); err != nil {
		t.Fatal(err)
	}
	if err := e.ScanOnce(); err != nil {
		t.Fatal(err)
	}
	if loc, _ := e.tbl.Peek(DefaultTenant, 0); loc != mm.LocDRAM {
		t.Fatalf("written NVM page not promoted, at %v", loc)
	}
}

func TestAdaptiveOnlineEpoch(t *testing.T) {
	cfg := core.DefaultAdaptiveConfig()
	pol, err := newOnlinePolicy(Adaptive, smallCore(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := pol.(*adaptiveOnline)

	// Migrations without utility double the thresholds.
	a.Epoch(EpochStats{Accesses: 1000, HitsDRAM: 0, Promotions: 100})
	if a.readThresh != 6 || a.writeThresh != 6 {
		t.Fatalf("thresholds %d/%d after useless migrations, want 6/6", a.readThresh, a.writeThresh)
	}
	// No migrations at all probe downward.
	a.Epoch(EpochStats{Accesses: 1000})
	if a.readThresh != 5 || a.writeThresh != 5 {
		t.Fatalf("thresholds %d/%d after idle epoch, want 5/5", a.readThresh, a.writeThresh)
	}
	// An empty epoch changes nothing.
	a.Epoch(EpochStats{})
	if a.readThresh != 5 || a.Adjustments != 2 {
		t.Fatalf("empty epoch adjusted: %d/%d", a.readThresh, a.Adjustments)
	}
	// Thresholds stay within the configured bounds.
	for i := 0; i < 20; i++ {
		a.Epoch(EpochStats{Accesses: 1000, Promotions: 100})
	}
	if a.readThresh > cfg.MaxThreshold {
		t.Fatalf("threshold %d exceeds bound %d", a.readThresh, cfg.MaxThreshold)
	}
}

func TestBreakEvenHits(t *testing.T) {
	n := BreakEvenHits(memspec.Default())
	if n < 1 {
		t.Fatalf("BreakEvenHits = %d", n)
	}
	// With Table IV parameters the break-even is on the order of tens to a
	// few hundred hits — the regime the default thresholds sit in.
	if n > 10000 {
		t.Fatalf("BreakEvenHits = %d, implausibly large", n)
	}
}

func TestEngineLifecycle(t *testing.T) {
	e, err := New(Config{DRAMPages: 2, NVMPages: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Serve(0, trace.OpRead); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("Serve before Start: %v", err)
	}
	if err := e.Stop(); err == nil {
		t.Fatal("Stop before Start should fail")
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err == nil {
		t.Fatal("double Start should fail")
	}
	if _, err := e.Serve(0, trace.OpRead); err != nil {
		t.Fatal(err)
	}
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := e.Stop(); err != nil {
		t.Fatalf("second Stop: %v", err)
	}
	if _, err := e.Serve(0, trace.OpRead); !errors.Is(err, ErrStopped) {
		t.Fatalf("Serve after Stop: %v", err)
	}
}

// TestConcurrentServeStress exercises the full concurrent machinery — the
// sharded fast path, the fault/demotion/eviction cascade, the scanner, the
// workers and the stats reader — under -race, then validates capacity and
// occupancy invariants once quiesced.
func TestConcurrentServeStress(t *testing.T) {
	e, err := New(Config{
		Policy:       Proposed,
		DRAMPages:    64,
		NVMPages:     256,
		Shards:       16,
		Core:         smallCore(),
		ScanInterval: 200 * time.Microsecond,
		Workers:      2,
		BatchSize:    32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}

	const (
		goroutines = 8
		opsEach    = 15000
		footprint  = 1024 // pages; 3.2x memory, so eviction stays hot
	)
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsEach; i++ {
				op := trace.OpRead
				if rng.Intn(4) == 0 {
					op = trace.OpWrite
				}
				// Skewed accesses: half the traffic on 1/8 of the pages.
				p := uint64(rng.Intn(footprint))
				if rng.Intn(2) == 0 {
					p = uint64(rng.Intn(footprint / 8))
				}
				if _, err := e.Serve(p*4096, op); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(w))
	}
	// Concurrent observers: stats snapshots and forced scans.
	stopObs := make(chan struct{})
	var obsWG sync.WaitGroup
	obsWG.Add(1)
	go func() {
		defer obsWG.Done()
		for {
			select {
			case <-stopObs:
				return
			default:
				_ = e.Stats()
				_ = e.ScanOnce()
				runtime.Gosched()
			}
		}
	}()
	wg.Wait()
	close(stopObs)
	obsWG.Wait()
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}

	st := e.Stats()
	if st.Accesses != goroutines*opsEach {
		t.Fatalf("accesses = %d, want %d", st.Accesses, goroutines*opsEach)
	}
	if st.Hits()+st.Faults != st.Accesses {
		t.Fatalf("hits %d + faults %d != accesses %d", st.Hits(), st.Faults, st.Accesses)
	}
	if st.Promotions == 0 || st.Evictions == 0 {
		t.Fatalf("stress run too tame: %+v", st)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestStopUnderTraffic stops the engine while serving goroutines are live:
// they must see ErrStopped, never a corrupt table.
func TestStopUnderTraffic(t *testing.T) {
	e, err := New(Config{
		DRAMPages:    32,
		NVMPages:     128,
		Core:         smallCore(),
		ScanInterval: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	var served, rejected atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				_, err := e.Serve(uint64(rng.Intn(512))*4096, trace.OpRead)
				if errors.Is(err, ErrStopped) {
					rejected.Add(1)
					return
				}
				if err != nil {
					t.Error(err)
					return
				}
				served.Add(1)
			}
		}(int64(w))
	}
	time.Sleep(5 * time.Millisecond)
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if served.Load() == 0 || rejected.Load() != 4 {
		t.Fatalf("served=%d rejected=%d", served.Load(), rejected.Load())
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestServeScaling is the scaling sanity gate: the sharded engine at many
// goroutines must out-serve one goroutine. The margin is deliberately
// generous (strictly higher, best of three) and the test skips on machines
// without real parallelism.
func TestServeScaling(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skipf("GOMAXPROCS=%d: no parallelism to measure", runtime.GOMAXPROCS(0))
	}
	recs, dram, nvm := genTrace(t, "bodytrack", 0.05, 3)

	run := func(goroutines int) float64 {
		best := 0.0
		for rep := 0; rep < 3; rep++ {
			e, err := New(Config{DRAMPages: dram, NVMPages: nvm})
			if err != nil {
				t.Fatal(err)
			}
			if err := e.Start(); err != nil {
				t.Fatal(err)
			}
			// Warm: one serial pass populates the table.
			for _, r := range recs {
				if _, err := e.Serve(r.Addr, r.Op); err != nil {
					t.Fatal(err)
				}
			}
			rep, err := RunLoad(e, recs, LoadConfig{Goroutines: goroutines, Ops: 200000})
			if err != nil {
				t.Fatal(err)
			}
			if err := e.Stop(); err != nil {
				t.Fatal(err)
			}
			if rep.OpsPerSec > best {
				best = rep.OpsPerSec
			}
		}
		return best
	}

	serial := run(1)
	parallel := run(16)
	t.Logf("ops/s: 1 goroutine %.0f, 16 goroutines %.0f (%.2fx)", serial, parallel, parallel/serial)
	if parallel <= serial {
		t.Fatalf("16 goroutines served %.0f ops/s, not above the single-goroutine %.0f", parallel, serial)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	bad := []Config{
		{DRAMPages: 0, NVMPages: 8},
		{DRAMPages: 8, NVMPages: 0},
		{DRAMPages: 8, NVMPages: 8, Policy: Kind("nope")},
		{DRAMPages: 8, NVMPages: 8, Core: core.Config{ReadPerc: 2, WritePerc: 0.3, ReadThreshold: 1, WriteThreshold: 1}},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d (%+v) accepted", i, cfg)
		}
	}
	for _, kind := range Kinds() {
		if _, err := New(Config{Policy: kind, DRAMPages: 8, NVMPages: 8}); err != nil {
			t.Errorf("kind %s rejected: %v", kind, err)
		}
		if _, err := New(Config{Policy: kind, DRAMPages: 8, NVMPages: 8, Synchronous: true}); err != nil {
			t.Errorf("kind %s (sync) rejected: %v", kind, err)
		}
	}
}
