package tiered

import (
	"math/rand"
	"sync"
	"testing"

	"hybridmem/internal/mm"
	"hybridmem/internal/trace"
)

func TestTableShardCountRoundsUp(t *testing.T) {
	cases := []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {100, 128},
	}
	for _, c := range cases {
		tbl, err := NewTable(c.in)
		if err != nil {
			t.Fatalf("NewTable(%d): %v", c.in, err)
		}
		if got := tbl.NumShards(); got != c.want {
			t.Errorf("NewTable(%d).NumShards() = %d, want %d", c.in, got, c.want)
		}
	}
	if _, err := NewTable(0); err == nil {
		t.Error("NewTable(0) should fail")
	}
	if _, err := NewTable(maxShards + 1); err == nil {
		t.Error("NewTable(maxShards+1) should fail")
	}
}

// pageCounters reads a page's windowed counters via a non-resetting scan.
func pageCounters(tbl *Table, page uint64) (reads, writes uint64) {
	for i := 0; i < tbl.NumShards(); i++ {
		tbl.ScanShard(i, false, func(p uint64, _ mm.Location, r, w uint64) {
			if p == page {
				reads, writes = r, w
			}
		})
	}
	return reads, writes
}

func TestTableBasics(t *testing.T) {
	for _, shards := range []int{1, 8} {
		tbl, err := NewTable(shards)
		if err != nil {
			t.Fatal(err)
		}

		if _, ok := tbl.Touch(42, trace.OpRead); ok {
			t.Fatal("Touch on empty table reported a hit")
		}
		if !tbl.Insert(42, mm.LocNVM) {
			t.Fatal("Insert of new page failed")
		}
		if tbl.Insert(42, mm.LocDRAM) {
			t.Fatal("double Insert succeeded")
		}
		if loc, ok := tbl.Peek(42); !ok || loc != mm.LocNVM {
			t.Fatalf("Peek(42) = %v, %v; want NVM, true", loc, ok)
		}

		// Counters accumulate per access kind.
		for i := 1; i <= 3; i++ {
			loc, ok := tbl.Touch(42, trace.OpRead)
			if !ok || loc != mm.LocNVM {
				t.Fatalf("read %d: got loc=%v ok=%v", i, loc, ok)
			}
		}
		tbl.Touch(42, trace.OpWrite)
		if r, w := pageCounters(tbl, 42); r != 3 || w != 1 {
			t.Fatalf("counters r=%d w=%d, want 3/1", r, w)
		}

		// A move flips the location and resets the counters.
		if tbl.MoveIf(42, mm.LocDRAM, mm.LocNVM) {
			t.Fatal("MoveIf with wrong from-zone succeeded")
		}
		if !tbl.MoveIf(42, mm.LocNVM, mm.LocDRAM) {
			t.Fatal("MoveIf failed")
		}
		if loc, ok := tbl.Touch(42, trace.OpRead); !ok || loc != mm.LocDRAM {
			t.Fatalf("after move: loc=%v ok=%v", loc, ok)
		}
		if r, w := pageCounters(tbl, 42); r != 1 || w != 0 {
			t.Fatalf("counters not reset by move: r=%d w=%d", r, w)
		}

		if tbl.RemoveIf(42, mm.LocNVM) {
			t.Fatal("RemoveIf with wrong from-zone succeeded")
		}
		if !tbl.RemoveIf(42, mm.LocDRAM) {
			t.Fatal("RemoveIf failed")
		}
		if tbl.Len() != 0 {
			t.Fatalf("Len = %d after removal, want 0", tbl.Len())
		}
	}
}

func TestTableResidents(t *testing.T) {
	tbl, err := NewTable(4)
	if err != nil {
		t.Fatal(err)
	}
	for p := uint64(0); p < 10; p++ {
		loc := mm.LocDRAM
		if p >= 4 {
			loc = mm.LocNVM
		}
		tbl.Insert(p, loc)
	}
	if d, n := tbl.Residents(mm.LocDRAM), tbl.Residents(mm.LocNVM); d != 4 || n != 6 {
		t.Fatalf("Residents = %d/%d, want 4/6", d, n)
	}
	if tbl.Len() != 10 {
		t.Fatalf("Len = %d, want 10", tbl.Len())
	}
}

func TestTableScanShardWindows(t *testing.T) {
	tbl, err := NewTable(1)
	if err != nil {
		t.Fatal(err)
	}
	tbl.Insert(7, mm.LocNVM)
	tbl.Touch(7, trace.OpWrite)
	tbl.Touch(7, trace.OpWrite)
	tbl.Touch(7, trace.OpRead)

	var scanned int
	tbl.ScanShard(0, true, func(page uint64, loc mm.Location, reads, writes uint64) {
		scanned++
		if page != 7 || loc != mm.LocNVM || reads != 1 || writes != 2 {
			t.Errorf("scan saw page=%d loc=%v r=%d w=%d", page, loc, reads, writes)
		}
	})
	if scanned != 1 {
		t.Fatalf("scan visited %d pages, want 1", scanned)
	}
	// The reset closed the window: a second scan sees zero counters.
	tbl.ScanShard(0, false, func(_ uint64, _ mm.Location, reads, writes uint64) {
		if reads != 0 || writes != 0 {
			t.Errorf("window not reset: r=%d w=%d", reads, writes)
		}
	})
}

func TestClockVictimPrefersUnreferenced(t *testing.T) {
	tbl, err := NewTable(4)
	if err != nil {
		t.Fatal(err)
	}
	pages := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	for _, p := range pages {
		tbl.Insert(p, mm.LocDRAM)
	}
	// First sweep clears every reference bit (all pages were just
	// inserted) and returns some page.
	if _, ok := tbl.ClockVictim(mm.LocDRAM); !ok {
		t.Fatal("ClockVictim found nothing in a populated zone")
	}
	// Re-reference everything except page 8: it is now the only page
	// whose bit is clear, so it must be the next victim.
	for _, p := range pages[:7] {
		tbl.Touch(p, trace.OpRead)
	}
	v, ok := tbl.ClockVictim(mm.LocDRAM)
	if !ok || v != 8 {
		t.Fatalf("ClockVictim = %d, %v; want 8, true", v, ok)
	}

	if _, ok := tbl.ClockVictim(mm.LocNVM); ok {
		t.Fatal("ClockVictim found a page in an empty zone")
	}
}

// TestTableConcurrent hammers every operation from many goroutines; run
// under -race it validates the locking discipline.
func TestTableConcurrent(t *testing.T) {
	tbl, err := NewTable(8)
	if err != nil {
		t.Fatal(err)
	}
	const pages = 256
	for p := uint64(0); p < pages; p++ {
		tbl.Insert(p, mm.LocNVM)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 5000; i++ {
				p := uint64(rng.Intn(pages))
				switch rng.Intn(5) {
				case 0:
					tbl.MoveIf(p, mm.LocNVM, mm.LocDRAM)
				case 1:
					tbl.MoveIf(p, mm.LocDRAM, mm.LocNVM)
				case 2:
					tbl.ClockVictim(mm.LocNVM)
				case 3:
					tbl.ScanShard(int(p)%tbl.NumShards(), false, func(uint64, mm.Location, uint64, uint64) {})
				default:
					tbl.Touch(p, trace.OpWrite)
				}
			}
		}(int64(w))
	}
	wg.Wait()
	// No page was inserted or removed, only moved: the population is intact.
	if got := tbl.Len(); got != pages {
		t.Fatalf("Len = %d after concurrent churn, want %d", got, pages)
	}
	if d, n := tbl.Residents(mm.LocDRAM), tbl.Residents(mm.LocNVM); d+n != pages {
		t.Fatalf("Residents %d+%d != %d", d, n, pages)
	}
}
