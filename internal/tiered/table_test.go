package tiered

import (
	"math/bits"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"hybridmem/internal/mm"
	"hybridmem/internal/trace"
)

// otherLoc flips a memory zone.
func otherLoc(l mm.Location) mm.Location {
	if l == mm.LocDRAM {
		return mm.LocNVM
	}
	return mm.LocDRAM
}

func TestTableShardCountRoundsUp(t *testing.T) {
	cases := []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {100, 128},
	}
	for _, c := range cases {
		tbl, err := NewTable(c.in)
		if err != nil {
			t.Fatalf("NewTable(%d): %v", c.in, err)
		}
		if got := tbl.NumShards(); got != c.want {
			t.Errorf("NewTable(%d).NumShards() = %d, want %d", c.in, got, c.want)
		}
	}
	if _, err := NewTable(0); err == nil {
		t.Error("NewTable(0) should fail")
	}
	if _, err := NewTable(maxShards + 1); err == nil {
		t.Error("NewTable(maxShards+1) should fail")
	}
}

func TestTableKeyRoundTrip(t *testing.T) {
	cases := []struct {
		tenant TenantID
		page   uint64
	}{
		{DefaultTenant, 0}, {DefaultTenant, 42}, {1, 42}, {65535, maxTablePage},
	}
	for _, c := range cases {
		gotT, gotP := splitKey(tableKey(c.tenant, c.page))
		if gotT != c.tenant || gotP != c.page {
			t.Errorf("splitKey(tableKey(%d, %d)) = %d, %d", c.tenant, c.page, gotT, gotP)
		}
	}
	// Tenant 0 keys are bit-identical to raw page numbers: the
	// single-tenant table is the pre-tenant table.
	if tableKey(DefaultTenant, 12345) != 12345 {
		t.Errorf("default-tenant key %d != page 12345", tableKey(DefaultTenant, 12345))
	}
}

// pageCounters reads a page's windowed counters via a non-resetting scan.
func pageCounters(tbl *Table, tenant TenantID, page uint64) (reads, writes uint64) {
	for i := 0; i < tbl.NumShards(); i++ {
		tbl.ScanShard(i, false, func(kt TenantID, p uint64, _ mm.Location, _ int, r, w uint64) {
			if kt == tenant && p == page {
				reads, writes = r, w
			}
		})
	}
	return reads, writes
}

func TestTableBasics(t *testing.T) {
	for _, shards := range []int{1, 8} {
		tbl, err := NewTable(shards)
		if err != nil {
			t.Fatal(err)
		}

		if _, ok := tbl.Touch(DefaultTenant, 42, trace.OpRead); ok {
			t.Fatal("Touch on empty table reported a hit")
		}
		if !tbl.Insert(DefaultTenant, 42, mm.LocNVM) {
			t.Fatal("Insert of new page failed")
		}
		if tbl.Insert(DefaultTenant, 42, mm.LocDRAM) {
			t.Fatal("double Insert succeeded")
		}
		if loc, ok := tbl.Peek(DefaultTenant, 42); !ok || loc != mm.LocNVM {
			t.Fatalf("Peek(42) = %v, %v; want NVM, true", loc, ok)
		}

		// Counters accumulate per access kind.
		for i := 1; i <= 3; i++ {
			loc, ok := tbl.Touch(DefaultTenant, 42, trace.OpRead)
			if !ok || loc != mm.LocNVM {
				t.Fatalf("read %d: got loc=%v ok=%v", i, loc, ok)
			}
		}
		tbl.Touch(DefaultTenant, 42, trace.OpWrite)
		if r, w := pageCounters(tbl, DefaultTenant, 42); r != 3 || w != 1 {
			t.Fatalf("counters r=%d w=%d, want 3/1", r, w)
		}

		// A move flips the location and resets the counters.
		if tbl.MoveIf(DefaultTenant, 42, mm.LocDRAM, mm.LocNVM) {
			t.Fatal("MoveIf with wrong from-zone succeeded")
		}
		if !tbl.MoveIf(DefaultTenant, 42, mm.LocNVM, mm.LocDRAM) {
			t.Fatal("MoveIf failed")
		}
		if loc, ok := tbl.Touch(DefaultTenant, 42, trace.OpRead); !ok || loc != mm.LocDRAM {
			t.Fatalf("after move: loc=%v ok=%v", loc, ok)
		}
		if r, w := pageCounters(tbl, DefaultTenant, 42); r != 1 || w != 0 {
			t.Fatalf("counters not reset by move: r=%d w=%d", r, w)
		}

		if tbl.RemoveIf(DefaultTenant, 42, mm.LocNVM) {
			t.Fatal("RemoveIf with wrong from-zone succeeded")
		}
		if !tbl.RemoveIf(DefaultTenant, 42, mm.LocDRAM) {
			t.Fatal("RemoveIf failed")
		}
		if tbl.Len() != 0 {
			t.Fatalf("Len = %d after removal, want 0", tbl.Len())
		}
	}
}

// TestTableTenantNamespaces proves the same page number under two tenants
// is two independent entries: separate locations, counters and lifetimes.
func TestTableTenantNamespaces(t *testing.T) {
	tbl, err := NewTable(4)
	if err != nil {
		t.Fatal(err)
	}
	const page = 42
	if !tbl.Insert(1, page, mm.LocDRAM) || !tbl.Insert(2, page, mm.LocNVM) {
		t.Fatal("cross-tenant Insert of the same page number collided")
	}
	if loc, ok := tbl.Peek(1, page); !ok || loc != mm.LocDRAM {
		t.Fatalf("tenant 1 Peek = %v, %v", loc, ok)
	}
	if loc, ok := tbl.Peek(2, page); !ok || loc != mm.LocNVM {
		t.Fatalf("tenant 2 Peek = %v, %v", loc, ok)
	}
	if _, ok := tbl.Peek(3, page); ok {
		t.Fatal("tenant 3 sees another tenant's page")
	}

	// Touching tenant 1's page leaves tenant 2's counters untouched.
	tbl.Touch(1, page, trace.OpWrite)
	if r, w := pageCounters(tbl, 2, page); r != 0 || w != 0 {
		t.Fatalf("tenant 2 counters %d/%d after tenant 1 touch", r, w)
	}

	// Removing tenant 1's page leaves tenant 2's resident.
	if !tbl.RemoveIf(1, page, mm.LocDRAM) {
		t.Fatal("RemoveIf failed")
	}
	if _, ok := tbl.Peek(2, page); !ok {
		t.Fatal("tenant 2 page vanished with tenant 1's removal")
	}
	if got := tbl.TenantResidents(2, mm.LocNVM); got != 1 {
		t.Fatalf("TenantResidents(2, NVM) = %d, want 1", got)
	}
	if got := tbl.TenantResidents(1, mm.LocDRAM); got != 0 {
		t.Fatalf("TenantResidents(1, DRAM) = %d, want 0", got)
	}
}

func TestTableResidents(t *testing.T) {
	tbl, err := NewTable(4)
	if err != nil {
		t.Fatal(err)
	}
	for p := uint64(0); p < 10; p++ {
		loc := mm.LocDRAM
		if p >= 4 {
			loc = mm.LocNVM
		}
		tbl.Insert(DefaultTenant, p, loc)
	}
	if d, n := tbl.Residents(mm.LocDRAM), tbl.Residents(mm.LocNVM); d != 4 || n != 6 {
		t.Fatalf("Residents = %d/%d, want 4/6", d, n)
	}
	if tbl.Len() != 10 {
		t.Fatalf("Len = %d, want 10", tbl.Len())
	}
}

func TestTableScanShardWindows(t *testing.T) {
	tbl, err := NewTable(1)
	if err != nil {
		t.Fatal(err)
	}
	tbl.Insert(DefaultTenant, 7, mm.LocNVM)
	tbl.Touch(DefaultTenant, 7, trace.OpWrite)
	tbl.Touch(DefaultTenant, 7, trace.OpWrite)
	tbl.Touch(DefaultTenant, 7, trace.OpRead)

	var scanned int
	tbl.ScanShard(0, true, func(tenant TenantID, page uint64, loc mm.Location, _ int, reads, writes uint64) {
		scanned++
		if tenant != DefaultTenant || page != 7 || loc != mm.LocNVM || reads != 1 || writes != 2 {
			t.Errorf("scan saw tenant=%d page=%d loc=%v r=%d w=%d", tenant, page, loc, reads, writes)
		}
	})
	if scanned != 1 {
		t.Fatalf("scan visited %d pages, want 1", scanned)
	}
	// The reset closed the window: a second scan sees zero counters.
	tbl.ScanShard(0, false, func(_ TenantID, _ uint64, _ mm.Location, _ int, reads, writes uint64) {
		if reads != 0 || writes != 0 {
			t.Errorf("window not reset: r=%d w=%d", reads, writes)
		}
	})
}

func TestClockVictimPrefersUnreferenced(t *testing.T) {
	tbl, err := NewTable(4)
	if err != nil {
		t.Fatal(err)
	}
	pages := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	for _, p := range pages {
		tbl.Insert(DefaultTenant, p, mm.LocDRAM)
	}
	// First sweep clears every reference bit (all pages were just
	// inserted) and returns some page.
	if _, _, ok := tbl.ClockVictim(mm.LocDRAM, DefaultTenant, false); !ok {
		t.Fatal("ClockVictim found nothing in a populated zone")
	}
	// Re-reference everything except page 8: it is now the only page
	// whose bit is clear, so it must be the next victim.
	for _, p := range pages[:7] {
		tbl.Touch(DefaultTenant, p, trace.OpRead)
	}
	vt, v, ok := tbl.ClockVictim(mm.LocDRAM, DefaultTenant, false)
	if !ok || v != 8 || vt != DefaultTenant {
		t.Fatalf("ClockVictim = %d/%d, %v; want tenant 0 page 8, true", vt, v, ok)
	}

	if _, _, ok := tbl.ClockVictim(mm.LocNVM, DefaultTenant, false); ok {
		t.Fatal("ClockVictim found a page in an empty zone")
	}
}

// TestClockVictimTenantOnly shows the quota-enforcement sweep: restricted
// to one tenant, the victim always belongs to it, and other tenants'
// reference bits are not consumed by the search.
func TestClockVictimTenantOnly(t *testing.T) {
	tbl, err := NewTable(4)
	if err != nil {
		t.Fatal(err)
	}
	for p := uint64(0); p < 8; p++ {
		tbl.Insert(1, p, mm.LocDRAM)
		tbl.Insert(2, p, mm.LocDRAM)
	}
	for i := 0; i < 32; i++ {
		vt, v, ok := tbl.ClockVictim(mm.LocDRAM, 2, true)
		if !ok {
			t.Fatalf("sweep %d found no victim in tenant 2's populated zone", i)
		}
		if vt != 2 {
			t.Fatalf("tenant-only sweep returned tenant %d page %d", vt, v)
		}
	}
	// Tenant 1's pages were never victim candidates, so their reference
	// bits are still set from insertion: a one-lap global victim search
	// would pass over all of them. Check directly via a restricted sweep.
	if vt, _, ok := tbl.ClockVictim(mm.LocDRAM, 1, true); !ok || vt != 1 {
		t.Fatalf("tenant 1 sweep = tenant %d, ok %v", vt, ok)
	}

	if _, _, ok := tbl.ClockVictim(mm.LocDRAM, 3, true); ok {
		t.Fatal("found a victim for a tenant with no pages")
	}
}

// TestTableConcurrent hammers every operation from many goroutines across
// two tenants; run under -race it validates the locking discipline.
func TestTableConcurrent(t *testing.T) {
	tbl, err := NewTable(8)
	if err != nil {
		t.Fatal(err)
	}
	const pages = 256
	tenants := []TenantID{0, 1}
	for _, tn := range tenants {
		for p := uint64(0); p < pages; p++ {
			tbl.Insert(tn, p, mm.LocNVM)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 5000; i++ {
				p := uint64(rng.Intn(pages))
				tn := tenants[rng.Intn(len(tenants))]
				switch rng.Intn(6) {
				case 0:
					tbl.MoveIf(tn, p, mm.LocNVM, mm.LocDRAM)
				case 1:
					tbl.MoveIf(tn, p, mm.LocDRAM, mm.LocNVM)
				case 2:
					tbl.ClockVictim(mm.LocNVM, tn, false)
				case 3:
					tbl.ClockVictim(mm.LocDRAM, tn, true)
				case 4:
					tbl.ScanShard(int(p)%tbl.NumShards(), false, func(TenantID, uint64, mm.Location, int, uint64, uint64) {})
				default:
					tbl.Touch(tn, p, trace.OpWrite)
				}
			}
		}(int64(w))
	}
	wg.Wait()
	// No page was inserted or removed, only moved: the population is intact.
	if got := tbl.Len(); got != 2*pages {
		t.Fatalf("Len = %d after concurrent churn, want %d", got, 2*pages)
	}
	if d, n := tbl.Residents(mm.LocDRAM), tbl.Residents(mm.LocNVM); d+n != 2*pages {
		t.Fatalf("Residents %d+%d != %d", d, n, 2*pages)
	}
	for _, tn := range tenants {
		if d, n := tbl.TenantResidents(tn, mm.LocDRAM), tbl.TenantResidents(tn, mm.LocNVM); d+n != pages {
			t.Fatalf("tenant %d residents %d+%d != %d", tn, d, n, pages)
		}
	}
}

// ---------------------------------------------------------------------------
// Reference implementation: the pre-lock-free table (RWMutex + map shards),
// kept test-only as the oracle the lock-free table is property-checked and
// benchmarked against. Select it in benchmarks with
// -bench 'BenchmarkServeParallel/impl=locked'.

type lockedEntry struct {
	reads  atomic.Uint64
	writes atomic.Uint64
	ref    atomic.Uint32
	loc    mm.Location
}

type lockedShard struct {
	mu    sync.RWMutex
	pages map[uint64]*lockedEntry
}

// lockedTable is the old sharded table: the hit path takes the owning
// shard's read lock and looks the key up in a Go map.
type lockedTable struct {
	shards []lockedShard
	shift  uint
}

func newLockedTable(shardCount int) *lockedTable {
	n := 1
	for n < shardCount {
		n <<= 1
	}
	t := &lockedTable{shards: make([]lockedShard, n), shift: uint(64 - bits.Len(uint(n-1)))}
	for i := range t.shards {
		t.shards[i].pages = make(map[uint64]*lockedEntry)
	}
	return t
}

func (t *lockedTable) shardOf(key uint64) *lockedShard {
	return &t.shards[(key*0x9E3779B97F4A7C15)>>t.shift]
}

func (t *lockedTable) Touch(tenant TenantID, page uint64, op trace.Op) (mm.Location, bool) {
	key := tableKey(tenant, page)
	s := t.shardOf(key)
	s.mu.RLock()
	e, ok := s.pages[key]
	if !ok {
		s.mu.RUnlock()
		return 0, false
	}
	if op == trace.OpWrite {
		e.writes.Add(1)
	} else {
		e.reads.Add(1)
	}
	e.ref.Store(1)
	loc := e.loc
	s.mu.RUnlock()
	return loc, true
}

func (t *lockedTable) Peek(tenant TenantID, page uint64) (mm.Location, bool) {
	key := tableKey(tenant, page)
	s := t.shardOf(key)
	s.mu.RLock()
	e, ok := s.pages[key]
	var loc mm.Location
	if ok {
		loc = e.loc
	}
	s.mu.RUnlock()
	return loc, ok
}

func (t *lockedTable) Insert(tenant TenantID, page uint64, loc mm.Location) bool {
	key := tableKey(tenant, page)
	s := t.shardOf(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.pages[key]; exists {
		return false
	}
	e := &lockedEntry{loc: loc}
	e.ref.Store(1)
	s.pages[key] = e
	return true
}

func (t *lockedTable) MoveIf(tenant TenantID, page uint64, from, to mm.Location) bool {
	key := tableKey(tenant, page)
	s := t.shardOf(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.pages[key]
	if !ok || e.loc != from {
		return false
	}
	e.loc = to
	e.reads.Store(0)
	e.writes.Store(0)
	e.ref.Store(1)
	return true
}

func (t *lockedTable) RemoveIf(tenant TenantID, page uint64, from mm.Location) bool {
	key := tableKey(tenant, page)
	s := t.shardOf(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.pages[key]
	if !ok || e.loc != from {
		return false
	}
	delete(s.pages, key)
	return true
}

func (t *lockedTable) Len() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		n += len(s.pages)
		s.mu.RUnlock()
	}
	return n
}

func (t *lockedTable) Residents(loc mm.Location) int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		for _, e := range s.pages {
			if e.loc == loc {
				n++
			}
		}
		s.mu.RUnlock()
	}
	return n
}

// counters returns a key's windowed counters, for cross-checking.
func (t *lockedTable) counters(tenant TenantID, page uint64) (r, w uint64, ok bool) {
	key := tableKey(tenant, page)
	s := t.shardOf(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, found := s.pages[key]
	if !found {
		return 0, 0, false
	}
	return e.reads.Load(), e.writes.Load(), true
}

// TestTablePropertyVsLockedModel drives the lock-free table and the
// mutex-map reference through the same randomized op sequence and demands
// identical observable behavior at every step: op return values, per-page
// locations and windowed counters, population and zone occupancy. Victim
// selection (whose order legitimately differs between a map sweep and a
// slot sweep) is checked for validity against the model instead. Small key
// ranges force heavy insert/remove churn, so slot reuse and bucket-array
// rebuilds are exercised constantly.
func TestTablePropertyVsLockedModel(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4} {
		rng := rand.New(rand.NewSource(seed))
		tbl, err := NewTable(4)
		if err != nil {
			t.Fatal(err)
		}
		model := newLockedTable(4)
		tenants := []TenantID{0, 1, 7}
		const pages = 96 // small: collisions, tombstone reuse and rebuilds galore
		locs := []mm.Location{mm.LocDRAM, mm.LocNVM}

		for step := 0; step < 30000; step++ {
			tn := tenants[rng.Intn(len(tenants))]
			p := uint64(rng.Intn(pages))
			switch rng.Intn(10) {
			case 0, 1, 2:
				loc := locs[rng.Intn(2)]
				got, want := tbl.Insert(tn, p, loc), model.Insert(tn, p, loc)
				if got != want {
					t.Fatalf("seed %d step %d: Insert(%d,%d,%v) = %v, model %v", seed, step, tn, p, loc, got, want)
				}
			case 3:
				from := locs[rng.Intn(2)]
				got, want := tbl.RemoveIf(tn, p, from), model.RemoveIf(tn, p, from)
				if got != want {
					t.Fatalf("seed %d step %d: RemoveIf(%d,%d,%v) = %v, model %v", seed, step, tn, p, from, got, want)
				}
			case 4, 5:
				from := locs[rng.Intn(2)]
				got, want := tbl.MoveIf(tn, p, from, otherLoc(from)), model.MoveIf(tn, p, from, otherLoc(from))
				if got != want {
					t.Fatalf("seed %d step %d: MoveIf(%d,%d,%v) = %v, model %v", seed, step, tn, p, from, got, want)
				}
			case 6:
				vt, vp, ok := tbl.ClockVictim(locs[rng.Intn(2)], tn, rng.Intn(2) == 0)
				if ok {
					// The victim must exist in the model at the swept zone's
					// location per the table's own view.
					loc, resident := tbl.Peek(vt, vp)
					mloc, mresident := model.Peek(vt, vp)
					if !resident || !mresident || loc != mloc {
						t.Fatalf("seed %d step %d: victim %d/%d invalid (table %v/%v, model %v/%v)",
							seed, step, vt, vp, loc, resident, mloc, mresident)
					}
					// Consume the model's ref state too so both CLOCK states
					// stay comparable-ish; validity is all we assert.
				}
			default:
				op := trace.OpRead
				if rng.Intn(3) == 0 {
					op = trace.OpWrite
				}
				gotLoc, gotOK := tbl.Touch(tn, p, op)
				wantLoc, wantOK := model.Touch(tn, p, op)
				if gotOK != wantOK || (gotOK && gotLoc != wantLoc) {
					t.Fatalf("seed %d step %d: Touch(%d,%d) = %v/%v, model %v/%v",
						seed, step, tn, p, gotLoc, gotOK, wantLoc, wantOK)
				}
			}
			if step%997 == 0 {
				if got, want := tbl.Len(), model.Len(); got != want {
					t.Fatalf("seed %d step %d: Len = %d, model %d", seed, step, got, want)
				}
				for _, loc := range locs {
					if got, want := tbl.Residents(loc), model.Residents(loc); got != want {
						t.Fatalf("seed %d step %d: Residents(%v) = %d, model %d", seed, step, loc, got, want)
					}
				}
			}
		}

		// Final sweep: every key's location and windowed counters agree.
		for _, tn := range tenants {
			for p := uint64(0); p < pages; p++ {
				gotLoc, gotOK := tbl.Peek(tn, p)
				wantLoc, wantOK := model.Peek(tn, p)
				if gotOK != wantOK || (gotOK && gotLoc != wantLoc) {
					t.Fatalf("seed %d: final Peek(%d,%d) = %v/%v, model %v/%v",
						seed, tn, p, gotLoc, gotOK, wantLoc, wantOK)
				}
				if gotOK {
					r, w := pageCounters(tbl, tn, p)
					mr, mw, _ := model.counters(tn, p)
					if r != mr || w != mw {
						t.Fatalf("seed %d: final counters(%d,%d) = %d/%d, model %d/%d",
							seed, tn, p, r, w, mr, mw)
					}
				}
			}
		}
	}
}
