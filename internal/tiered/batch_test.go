package tiered

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"hybridmem/internal/mm"
	"hybridmem/internal/obs"
	"hybridmem/internal/trace"
)

// TestServeTenantBatchEquivalence is the batch API's count-exact property
// test: two identical engines replay the same randomized mixed GET/SET
// stream — one through ServeTenantBatch, one through per-access
// ServeTenant calls — and must agree on every ServeResult, every
// engine/tenant/node counter, and every occupancy invariant, on single-
// and multi-node topologies. Hits and faults both occur (the footprint
// exceeds the quotas), so the fault fallthrough is covered too.
func TestServeTenantBatchEquivalence(t *testing.T) {
	for _, nodes := range []int{1, 2} {
		t.Run(fmt.Sprintf("nodes=%d", nodes), func(t *testing.T) {
			mk := func() *Engine {
				cfg := Config{
					Policy:    Proposed,
					DRAMPages: 64,
					NVMPages:  512,
					Shards:    8,
					Core:      smallCore(),
					Tenants: []TenantConfig{
						{ID: 0, Name: "a", DRAMQuota: 24},
						{ID: 1, Name: "b", DRAMQuota: 24},
					},
					ScanInterval: time.Hour, // no background epochs: lockstep stays deterministic
				}
				if nodes > 1 {
					cfg.Topology = EvenTopology(nodes, cfg.DRAMPages, cfg.NVMPages)
				}
				e, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := e.Start(); err != nil {
					t.Fatal(err)
				}
				return e
			}
			eb, er := mk(), mk()
			defer eb.Stop()
			defer er.Stop()

			rng := rand.New(rand.NewSource(7))
			addrs := make([]uint64, 0, 64)
			ops := make([]trace.Op, 0, 64)
			out := make([]ServeResult, 64)
			for round := 0; round < 200; round++ {
				tn := TenantID(rng.Intn(2))
				n := 1 + rng.Intn(64)
				addrs, ops = addrs[:0], ops[:0]
				for i := 0; i < n; i++ {
					p := uint64(rng.Intn(300))
					if rng.Intn(2) == 0 {
						p = uint64(rng.Intn(32)) // hot subset: plenty of hits
					}
					op := trace.OpRead
					if rng.Intn(3) == 0 {
						op = trace.OpWrite
					}
					addrs = append(addrs, p*4096)
					ops = append(ops, op)
				}
				done, err := eb.ServeTenantBatch(tn, addrs, ops, out[:n])
				if err != nil {
					t.Fatalf("round %d: batch: %v", round, err)
				}
				if done != n {
					t.Fatalf("round %d: batch served %d of %d", round, done, n)
				}
				for i := 0; i < n; i++ {
					want, err := er.ServeTenant(tn, addrs[i], ops[i])
					if err != nil {
						t.Fatalf("round %d: reference access %d: %v", round, i, err)
					}
					if out[i] != want {
						t.Fatalf("round %d access %d: batch %+v, sequential %+v", round, i, out[i], want)
					}
				}
				if err := eb.CheckInvariants(); err != nil {
					t.Fatalf("round %d: batch engine: %v", round, err)
				}
				if err := er.CheckInvariants(); err != nil {
					t.Fatalf("round %d: reference engine: %v", round, err)
				}
			}

			if got, want := eb.Stats(), er.Stats(); got != want {
				t.Errorf("Stats diverge:\nbatch      %+v\nsequential %+v", got, want)
			}
			for _, id := range eb.TenantIDs() {
				got, _ := eb.TenantStats(id)
				want, _ := er.TenantStats(id)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("TenantStats(%d) diverge:\nbatch      %+v\nsequential %+v", id, got, want)
				}
			}
			if got, want := eb.NodeStats(), er.NodeStats(); !reflect.DeepEqual(got, want) {
				t.Errorf("NodeStats diverge:\nbatch      %+v\nsequential %+v", got, want)
			}
		})
	}
}

// TestServeTenantBatchRejections pins the batch API's whole-batch error
// contract: mismatched slice lengths, engine lifecycle, unknown tenants,
// synchronous mode and out-of-range addresses all reject the batch before
// any access is tallied.
func TestServeTenantBatchRejections(t *testing.T) {
	addrs := []uint64{0, 4096}
	ops := []trace.Op{trace.OpRead, trace.OpWrite}
	out := make([]ServeResult, 2)

	e, err := New(Config{DRAMPages: 16, NVMPages: 16, Shards: 4, ScanInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ServeTenantBatch(DefaultTenant, addrs, ops, out); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("before Start: err = %v, want ErrNotStarted", err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ServeTenantBatch(DefaultTenant, addrs, ops[:1], out); !errors.Is(err, ErrBatchLengths) {
		t.Fatalf("short ops: err = %v, want ErrBatchLengths", err)
	}
	if _, err := e.ServeTenantBatch(DefaultTenant, addrs, ops, out[:1]); !errors.Is(err, ErrBatchLengths) {
		t.Fatalf("short out: err = %v, want ErrBatchLengths", err)
	}
	if _, err := e.ServeTenantBatch(42, addrs, ops, out); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("unknown tenant: err = %v, want ErrUnknownTenant", err)
	}
	if n, err := e.ServeTenantBatch(DefaultTenant, nil, nil, nil); n != 0 || err != nil {
		t.Fatalf("empty batch: (%d, %v), want (0, nil)", n, err)
	}

	// One bad address rejects the whole batch with no partial accounting.
	before := e.Stats()
	bad := []uint64{0, math.MaxUint64, 4096}
	n, err := e.ServeTenantBatch(DefaultTenant,
		bad, []trace.Op{trace.OpRead, trace.OpRead, trace.OpRead}, make([]ServeResult, 3))
	if n != 0 || !errors.Is(err, ErrPageRange) {
		t.Fatalf("out-of-range batch: (%d, %v), want (0, ErrPageRange)", n, err)
	}
	if after := e.Stats(); after != before {
		t.Errorf("rejected batch changed counters:\nbefore %+v\nafter  %+v", before, after)
	}
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ServeTenantBatch(DefaultTenant, addrs, ops, out); !errors.Is(err, ErrStopped) {
		t.Fatalf("after Stop: err = %v, want ErrStopped", err)
	}

	// Synchronous mode rejects the batch API explicitly: the reference
	// policy path must stay one access at a time.
	es, err := New(Config{DRAMPages: 16, NVMPages: 16, Synchronous: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	defer es.Stop()
	if _, err := es.ServeTenantBatch(DefaultTenant, addrs, ops, out); !errors.Is(err, ErrBatchSync) {
		t.Fatalf("synchronous engine: err = %v, want ErrBatchSync", err)
	}
}

// TestServePageRangeErrorNoAlloc is the regression gate for the hoisted
// out-of-range sentinel: rejecting a flood of un-mappable addresses —
// hashed string keys cover the full 64-bit space — must not allocate, on
// the serve, batch and drop paths alike.
func TestServePageRangeErrorNoAlloc(t *testing.T) {
	e, err := New(Config{DRAMPages: 16, NVMPages: 16, Shards: 4, ScanInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	const bad = uint64(math.MaxUint64)
	if _, err := e.Serve(bad, trace.OpRead); !errors.Is(err, ErrPageRange) {
		t.Fatalf("Serve(out-of-range) = %v, want ErrPageRange", err)
	}
	if n := testing.AllocsPerRun(1000, func() {
		e.Serve(bad, trace.OpRead)
	}); n != 0 {
		t.Errorf("Serve out-of-range rejection allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		e.Drop(DefaultTenant, bad)
	}); n != 0 {
		t.Errorf("Drop out-of-range rejection allocates %.1f/op, want 0", n)
	}
	addrs := []uint64{bad}
	ops := []trace.Op{trace.OpRead}
	out := make([]ServeResult, 1)
	e.ServeTenantBatch(DefaultTenant, addrs, ops, out) // warm the scratch pool
	if n := testing.AllocsPerRun(1000, func() {
		e.ServeTenantBatch(DefaultTenant, addrs, ops, out)
	}); n != 0 {
		t.Errorf("batch out-of-range rejection allocates %.1f/op, want 0", n)
	}
}

// batchAllocEngine builds a started engine with a warm DRAM working set
// and one planted NVM page, so a batch mixes DRAM/NVM hits across reads
// and writes.
func batchAllocEngine(t *testing.T, ring *obs.EventRing) *Engine {
	t.Helper()
	e, err := New(Config{
		DRAMPages: 64, NVMPages: 64, Shards: 8,
		ScanInterval: time.Hour,
		Events:       ring,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	for p := uint64(0); p < 16; p++ {
		if _, err := e.Serve(p*4096, trace.OpRead); err != nil {
			t.Fatal(err)
		}
	}
	e.tbl.Insert(DefaultTenant, 99, mm.LocNVM)
	e.nodes[0].nvmUsed.Add(1)
	return e
}

// batchAllocArgs builds a 64-access hit-only batch over the working set
// batchAllocEngine warms: both tiers, both op kinds.
func batchAllocArgs() ([]uint64, []trace.Op, []ServeResult) {
	const n = 64
	addrs := make([]uint64, n)
	ops := make([]trace.Op, n)
	for i := range addrs {
		addrs[i] = uint64(i%16) * 4096
		ops[i] = trace.OpRead
		if i%3 == 0 {
			ops[i] = trace.OpWrite
		}
		if i%7 == 0 {
			addrs[i] = 99 * 4096 // the planted NVM page
		}
	}
	return addrs, ops, make([]ServeResult, n)
}

// TestServeBatchZeroAllocs gates the batch hot path: once the pooled
// scratch has warmed, a steady-state all-hit batch allocates nothing.
func TestServeBatchZeroAllocs(t *testing.T) {
	e := batchAllocEngine(t, nil)
	defer e.Stop()
	addrs, ops, out := batchAllocArgs()
	if _, err := e.ServeTenantBatch(DefaultTenant, addrs, ops, out); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(1000, func() {
		if _, err := e.ServeTenantBatch(DefaultTenant, addrs, ops, out); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("batch serve allocates %.1f/batch, want 0", n)
	}
}

// TestServeBatchZeroAllocWithRing re-runs the batch zero-alloc gate with a
// trace ring attached, mirroring TestServeZeroAllocWithRing: observability
// must not put allocations — or publishes, hits are not migration events —
// on the batch path.
func TestServeBatchZeroAllocWithRing(t *testing.T) {
	ring := obs.NewEventRing(256)
	e := batchAllocEngine(t, ring)
	defer e.Stop()
	addrs, ops, out := batchAllocArgs()
	if _, err := e.ServeTenantBatch(DefaultTenant, addrs, ops, out); err != nil {
		t.Fatal(err)
	}
	before := ring.Published()
	if n := testing.AllocsPerRun(1000, func() {
		if _, err := e.ServeTenantBatch(DefaultTenant, addrs, ops, out); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("batch serve with ring attached allocates %.1f/batch, want 0", n)
	}
	if got := ring.Published(); got != before {
		t.Errorf("batched hits published %d events, want 0", got-before)
	}
}

// TestServeBatchDaemonQuotaStress is the -race gate for the batch path:
// concurrent batched multi-tenant traffic, the ticker daemon's lock-free
// scans, forced ScanOnce storms and tenant-quota demotions all run against
// the same table (the batched mirror of TestServeDaemonQuotaStress).
// Quiesced, the access total and every occupancy invariant must hold
// exactly — the per-stripe delta flush loses nothing under contention.
func TestServeBatchDaemonQuotaStress(t *testing.T) {
	e, err := New(Config{
		Policy:    Proposed,
		DRAMPages: 48,
		NVMPages:  512,
		Shards:    8,
		Core:      smallCore(),
		Tenants: []TenantConfig{
			{ID: 0, Name: "hog", DRAMQuota: 16},
			{ID: 1, Name: "neighbor", DRAMQuota: 16},
			// 16 frames stay unquota'd: the shared spill pool.
		},
		ScanInterval: 100 * time.Microsecond,
		Workers:      2,
		BatchSize:    16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}

	const (
		goroutines = 6
		batches    = 750
		batchLen   = 16
	)
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			tn := TenantID(seed % 2)
			footprint := 256
			if tn == 1 {
				footprint = 64
			}
			addrs := make([]uint64, batchLen)
			ops := make([]trace.Op, batchLen)
			out := make([]ServeResult, batchLen)
			for b := 0; b < batches; b++ {
				for j := range addrs {
					op := trace.OpRead
					if rng.Intn(3) == 0 {
						op = trace.OpWrite
					}
					p := uint64(rng.Intn(footprint))
					if rng.Intn(2) == 0 {
						p = uint64(rng.Intn(footprint / 8))
					}
					addrs[j], ops[j] = p*4096, op
				}
				if n, err := e.ServeTenantBatch(tn, addrs, ops, out); err != nil || n != batchLen {
					t.Errorf("batch %d: (%d, %v)", b, n, err)
					return
				}
				if b%32 == 0 {
					_ = e.ScanOnce()
				}
			}
		}(int64(w))
	}
	// Concurrent readers of every aggregate the engine publishes.
	stopObs := make(chan struct{})
	var obsWG sync.WaitGroup
	obsWG.Add(1)
	go func() {
		defer obsWG.Done()
		for {
			select {
			case <-stopObs:
				return
			default:
				_ = e.Stats()
				_, _ = e.TenantStats(0)
				_, _ = e.TenantStats(1)
			}
		}
	}()
	wg.Wait()
	close(stopObs)
	obsWG.Wait()
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}

	st := e.Stats()
	if want := int64(goroutines * batches * batchLen); st.Accesses != want {
		t.Fatalf("accesses = %d, want %d", st.Accesses, want)
	}
	if st.Hits()+st.Faults != st.Accesses {
		t.Fatalf("hits %d + faults %d != accesses %d", st.Hits(), st.Faults, st.Accesses)
	}
	for _, id := range e.TenantIDs() {
		ts, _ := e.TenantStats(id)
		if ts.ResidentDRAM > ts.DRAMCap {
			t.Fatalf("tenant %d holds %d DRAM frames, cap %d", id, ts.ResidentDRAM, ts.DRAMCap)
		}
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
