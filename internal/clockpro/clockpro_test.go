package clockpro

import (
	"math/rand"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(1); err == nil {
		t.Error("1-frame cache should error")
	}
	if _, err := New(0); err == nil {
		t.Error("0-frame cache should error")
	}
}

func TestBasicHitMiss(t *testing.T) {
	c, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	if hit, _, _ := c.Access(1); hit {
		t.Error("cold access reported hit")
	}
	if hit, _, _ := c.Access(1); !hit {
		t.Error("resident access reported miss")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Errorf("stats = %d/%d", c.Hits, c.Misses)
	}
	if !c.Contains(1) || c.Contains(2) {
		t.Error("Contains wrong")
	}
}

func TestCapacityRespected(t *testing.T) {
	c, _ := New(4)
	for p := uint64(0); p < 100; p++ {
		c.Access(p)
		if c.Len() > 4 {
			t.Fatalf("resident %d > 4 frames", c.Len())
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	if c.Evictions == 0 {
		t.Error("no evictions under pressure")
	}
}

func TestTestPeriodPromotion(t *testing.T) {
	// A page evicted during its test period and quickly re-faulted becomes
	// hot: the short-reuse-distance signal CLOCK-Pro is built around.
	c, _ := New(4)
	c.Access(1)
	// Flood just enough to evict page 1 while its test metadata survives
	// (the non-resident list is bounded by the frame count).
	for p := uint64(10); p < 15; p++ {
		c.Access(p)
	}
	if c.Contains(1) {
		t.Skip("page 1 survived the flood; pattern needs adjusting")
	}
	c.Access(1) // fault within test period -> hot
	e := c.entries[1]
	if e == nil || e.kind != hot {
		t.Errorf("re-faulted page kind = %v, want hot", e)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHotPagesSurviveScan(t *testing.T) {
	// Hot set accessed repeatedly, plus a one-pass scan: the hot pages must
	// survive the scan (the LIRS/CLOCK-Pro advantage over LRU).
	c, _ := New(8)
	hot := []uint64{1, 2, 3}
	for round := 0; round < 30; round++ {
		for _, p := range hot {
			c.Access(p)
		}
		c.Access(uint64(100 + round)) // scan page, never reused
	}
	for _, p := range hot {
		if !c.Contains(p) {
			t.Errorf("hot page %d evicted by scan", p)
		}
	}
}

func TestLoopPatternBeatsLRU(t *testing.T) {
	// Cyclic access over frames+2 pages: LRU misses every access after
	// warmup; CLOCK-Pro keeps part of the loop resident.
	const frames = 16
	const loop = frames + 2
	c, _ := New(frames)
	// LRU reference: sliding window over a cycle always misses.
	total, hits := 0, int64(0)
	for i := 0; i < loop*50; i++ {
		p := uint64(i % loop)
		if h, _, _ := c.Access(p); h {
			hits++
		}
		total++
	}
	lruHits := 0 // LRU provably gets zero hits on a cyclic scan > capacity
	if int(hits) <= lruHits {
		t.Errorf("CLOCK-Pro hits = %d on a loop; expected to beat LRU's %d", hits, lruHits)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	c, _ := New(32)
	for i := 0; i < 50000; i++ {
		var p uint64
		if rng.Intn(10) < 7 {
			p = uint64(rng.Intn(16)) // hot region
		} else {
			p = uint64(16 + rng.Intn(500))
		}
		c.Access(p)
		if i%1000 == 0 {
			if err := c.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if c.HitRatio() < 0.3 {
		t.Errorf("hit ratio %v too low for a hot-region workload", c.HitRatio())
	}
}

func TestEvictionReporting(t *testing.T) {
	c, _ := New(2)
	c.Access(1)
	c.Access(2)
	sawEviction := false
	for p := uint64(3); p < 30; p++ {
		_, _, ok := c.Access(p)
		if ok {
			sawEviction = true
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	if !sawEviction {
		t.Error("no eviction reported under pressure")
	}
}
