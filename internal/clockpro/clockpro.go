// Package clockpro implements the CLOCK-Pro page replacement algorithm
// (Jiang, Chen & Zhang, USENIX ATC 2005), the third algorithm the paper
// discusses: CLOCK-DWF "outperforms previous studies such as CLOCK-PRO",
// and the proposed scheme in turn outperforms CLOCK-DWF.
//
// CLOCK-Pro approximates LIRS reuse-distance tracking with clock machinery:
// pages are hot or cold; resident cold pages carry a test period in which a
// re-reference promotes them to hot; non-resident cold pages are remembered
// (bounded by memory size) so that short-reuse-distance faults can adapt the
// hot/cold balance. Three hands sweep one circular list: hand-cold finds the
// eviction victim, hand-hot demotes stale hot pages and retires old
// metadata, hand-test expires test periods and shrinks the cold target.
//
// In this repository CLOCK-Pro manages a single memory zone; the
// replacement-quality comparison (LRU vs CLOCK vs CLOCK-Pro hit ratios)
// backs the paper's related-work ordering without inventing an unpublished
// hybrid variant.
package clockpro

import (
	"fmt"
)

type kind uint8

const (
	hot kind = iota
	cold
	test // non-resident cold page still in its test period
)

type entry struct {
	page       uint64
	kind       kind
	ref        bool
	inTest     bool // resident cold pages: test period active
	prev, next *entry
}

// Cache is a CLOCK-Pro managed memory of a fixed frame count.
type Cache struct {
	frames     int
	coldTarget int
	entries    map[uint64]*entry
	// hand positions on the circular list; nil when empty.
	handHot, handCold, handTest *entry
	countHot, countCold         int // resident pages by kind
	countTest                   int // non-resident metadata entries

	// Stats.
	Hits, Misses, Evictions int64
}

// New returns a CLOCK-Pro cache with the given capacity.
func New(frames int) (*Cache, error) {
	if frames < 2 {
		return nil, fmt.Errorf("clockpro: need at least 2 frames, got %d", frames)
	}
	return &Cache{
		frames:     frames,
		coldTarget: frames / 2,
		entries:    make(map[uint64]*entry),
	}, nil
}

// Len returns the number of resident pages.
func (c *Cache) Len() int { return c.countHot + c.countCold }

// Contains reports whether the page is resident.
func (c *Cache) Contains(page uint64) bool {
	e, ok := c.entries[page]
	return ok && e.kind != test
}

// insert links e just behind handHot (the list position new pages take).
func (c *Cache) insert(e *entry) {
	if c.handHot == nil {
		e.prev, e.next = e, e
		c.handHot, c.handCold, c.handTest = e, e, e
		return
	}
	e.prev = c.handHot.prev
	e.next = c.handHot
	e.prev.next = e
	e.next.prev = e
}

// remove unlinks e, fixing any hand that pointed at it.
func (c *Cache) remove(e *entry) {
	for _, h := range []**entry{&c.handHot, &c.handCold, &c.handTest} {
		if *h == e {
			if e.next == e {
				*h = nil
			} else {
				*h = e.next
			}
		}
	}
	if e.next == e {
		c.handHot, c.handCold, c.handTest = nil, nil, nil
	} else {
		e.prev.next = e.next
		e.next.prev = e.prev
	}
	delete(c.entries, e.page)
}

// Access services one reference. It returns whether it hit, and the page
// evicted to make room on a miss (ok reports an eviction happened).
func (c *Cache) Access(page uint64) (hit bool, evicted uint64, ok bool) {
	if e, present := c.entries[page]; present && e.kind != test {
		e.ref = true
		c.Hits++
		return true, 0, false
	}
	c.Misses++

	// Make room first: resident set must stay within frames.
	for c.Len() >= c.frames {
		if v, vok := c.runHandCold(); vok {
			evicted, ok = v, true
		}
	}

	if e, present := c.entries[page]; present {
		// Fault within the test period: the reuse distance is short, so the
		// page deserves hot status and cold pages in general deserve more
		// room.
		c.adjustColdTarget(+1)
		c.countTest--
		c.remove(e)
		c.makeHotRoom()
		c.insert(&entry{page: page, kind: hot})
		c.entries[page] = c.handHot.prev
		c.countHot++
		return false, evicted, ok
	}

	// First fault (or test period long expired): resident cold with a
	// fresh test period.
	e := &entry{page: page, kind: cold, inTest: true}
	c.insert(e)
	c.entries[page] = e
	c.countCold++
	return false, evicted, ok
}

// makeHotRoom demotes hot pages until the hot set respects its budget.
func (c *Cache) makeHotRoom() {
	budget := c.frames - c.coldTarget
	for c.countHot >= budget && c.countHot > 0 {
		c.runHandHot()
	}
}

// runHandCold advances hand-cold over resident cold pages, returning an
// evicted page when one is reclaimed.
func (c *Cache) runHandCold() (uint64, bool) {
	e := c.findFrom(&c.handCold, func(e *entry) bool { return e.kind == cold })
	if e == nil {
		// No cold pages: force a hot demotion and retry on the next loop.
		c.runHandHot()
		return 0, false
	}
	c.handCold = e.next
	if e.ref {
		e.ref = false
		if e.inTest {
			// Re-referenced within its test period: promote to hot.
			e.kind = hot
			e.inTest = false
			c.countCold--
			c.countHot++
			c.makeHotRoom()
			return 0, false
		}
		// Re-referenced after the test period: grant a fresh one.
		e.inTest = true
		return 0, false
	}
	// Unreferenced cold page: reclaim the frame.
	page := e.page
	c.Evictions++
	if e.inTest {
		// Keep metadata so a quick return is detected.
		e.kind = test
		c.countCold--
		c.countTest++
		for c.countTest > c.frames {
			c.runHandTest()
		}
	} else {
		c.countCold--
		c.remove(e)
	}
	return page, true
}

// runHandHot advances hand-hot: stale hot pages demote to cold (no test
// period); non-resident metadata it passes is retired.
func (c *Cache) runHandHot() {
	e := c.findFrom(&c.handHot, func(e *entry) bool { return e.kind == hot })
	if e == nil {
		return
	}
	c.handHot = e.next
	if e.ref {
		e.ref = false
		return
	}
	e.kind = cold
	e.inTest = false
	c.countHot--
	c.countCold++
}

// runHandTest expires the test period of the next cold page: non-resident
// metadata is dropped and the cold target shrinks (long reuse distances).
func (c *Cache) runHandTest() {
	e := c.findFrom(&c.handTest, func(e *entry) bool { return e.kind != hot })
	if e == nil {
		return
	}
	c.handTest = e.next
	c.adjustColdTarget(-1)
	if e.kind == test {
		c.countTest--
		c.remove(e)
		return
	}
	e.inTest = false
}

// findFrom advances a hand until match returns true, at most one full lap.
func (c *Cache) findFrom(hand **entry, match func(*entry) bool) *entry {
	if *hand == nil {
		return nil
	}
	e := *hand
	for i := 0; i <= len(c.entries); i++ {
		if match(e) {
			*hand = e
			return e
		}
		e = e.next
	}
	return nil
}

func (c *Cache) adjustColdTarget(delta int) {
	c.coldTarget += delta
	if c.coldTarget < 1 {
		c.coldTarget = 1
	}
	if c.coldTarget > c.frames-1 {
		c.coldTarget = c.frames - 1
	}
}

// HitRatio returns hits/(hits+misses).
func (c *Cache) HitRatio() float64 {
	if t := c.Hits + c.Misses; t > 0 {
		return float64(c.Hits) / float64(t)
	}
	return 0
}

// CheckInvariants validates counts and capacity.
func (c *Cache) CheckInvariants() error {
	nh, nc, nt := 0, 0, 0
	for _, e := range c.entries {
		switch e.kind {
		case hot:
			nh++
		case cold:
			nc++
		case test:
			nt++
		}
	}
	if nh != c.countHot || nc != c.countCold || nt != c.countTest {
		return fmt.Errorf("clockpro: counts drifted: %d/%d/%d vs %d/%d/%d",
			nh, nc, nt, c.countHot, c.countCold, c.countTest)
	}
	if c.Len() > c.frames {
		return fmt.Errorf("clockpro: %d resident pages in %d frames", c.Len(), c.frames)
	}
	if c.countTest > c.frames {
		return fmt.Errorf("clockpro: %d test entries exceed %d frames", c.countTest, c.frames)
	}
	if c.coldTarget < 1 || c.coldTarget > c.frames-1 {
		return fmt.Errorf("clockpro: cold target %d outside [1,%d]", c.coldTarget, c.frames-1)
	}
	return nil
}
