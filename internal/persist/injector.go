package persist

import (
	"math/rand"
	"sync"
)

// Op names a durability point the Injector can intercept. Every file
// operation the checkpoint writer performs passes through exactly one.
type Op uint8

const (
	// OpCreate is the target file's creation (and region mapping).
	OpCreate Op = iota
	// OpWrite is one frame's store into the region. Call indices count
	// frames: 0 is the preamble, 1 the meta frame, then page frames, and
	// the last call is the commit frame.
	OpWrite
	// OpSync is the region flush (msync/fsync analog).
	OpSync
	// OpRename is the atomic publish of the finished checkpoint.
	OpRename
	// OpDeltaCreate..OpDeltaRename are the same durability points on
	// delta-file writes. Keeping them as a separate op family lets a
	// chaos scenario target "the second delta's commit frame" without
	// counting the base snapshot's calls.
	OpDeltaCreate
	OpDeltaWrite
	OpDeltaSync
	OpDeltaRename
	numOps
)

func (o Op) String() string {
	switch o {
	case OpCreate:
		return "create"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpRename:
		return "rename"
	case OpDeltaCreate:
		return "delta-create"
	case OpDeltaWrite:
		return "delta-write"
	case OpDeltaSync:
		return "delta-sync"
	case OpDeltaRename:
		return "delta-rename"
	}
	return "unknown"
}

// FaultKind is what happens when an armed fault fires.
type FaultKind uint8

const (
	// KindError fails the operation cleanly (ErrInjected): the caller
	// sees the error, aborts, and cleans up. Models EIO / ENOSPC.
	KindError FaultKind = iota
	// KindShortWrite persists only Keep bytes of the operation's data and
	// then fails cleanly. Models a partial write the caller noticed.
	KindShortWrite
	// KindTornWrite persists only Keep bytes and then simulates process
	// death (ErrCrashed): no error handling, no cleanup — the torn bytes
	// stay wherever they landed. Models power loss mid-store, the case
	// frame-level recovery exists for.
	KindTornWrite
	// KindCrash simulates process death at the operation boundary, before
	// any of its effect: ErrCrashed with zero bytes persisted.
	KindCrash
)

// Fault is one armed fault: it fires on the Call-th invocation (0-based)
// of Op. Keep is the persisted-byte count for short/torn writes; a
// negative Keep picks a random prefix from the injector's seeded source.
type Fault struct {
	Op   Op
	Call int
	Kind FaultKind
	Keep int
}

// Injector deterministically injects durability faults into a checkpoint
// writer. Arm faults with the chainable helpers, pass the injector in
// WriteOptions (or Checkpointer Config), and the armed calls fail the
// scripted way; a nil *Injector is inert. All randomness (random tear
// points) comes from the constructor seed, so every chaos scenario
// replays bit-identically.
type Injector struct {
	mu     sync.Mutex
	rng    *rand.Rand
	faults []Fault
	calls  [numOps]int
	fired  int
}

// NewInjector returns an injector whose random choices derive from seed.
func NewInjector(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed))}
}

// Arm adds one fault. Returns the injector for chaining.
func (in *Injector) Arm(f Fault) *Injector {
	in.mu.Lock()
	in.faults = append(in.faults, f)
	in.mu.Unlock()
	return in
}

// Fail arms a clean failure of the call-th op.
func (in *Injector) Fail(op Op, call int) *Injector {
	return in.Arm(Fault{Op: op, Call: call, Kind: KindError})
}

// ShortWrite arms a noticed partial write: the call-th OpWrite persists
// keep bytes, then errors.
func (in *Injector) ShortWrite(call, keep int) *Injector {
	return in.Arm(Fault{Op: OpWrite, Call: call, Kind: KindShortWrite, Keep: keep})
}

// TornWrite arms a silent tear: the call-th OpWrite persists keep bytes
// (negative keep = random prefix), then the process "dies".
func (in *Injector) TornWrite(call, keep int) *Injector {
	return in.Arm(Fault{Op: OpWrite, Call: call, Kind: KindTornWrite, Keep: keep})
}

// CrashAt arms process death at the call-th invocation of op, before the
// op takes effect.
func (in *Injector) CrashAt(op Op, call int) *Injector {
	return in.Arm(Fault{Op: op, Call: call, Kind: KindCrash})
}

// Fired returns how many armed faults have fired.
func (in *Injector) Fired() int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired
}

// check advances op's call counter and returns the fault armed for this
// invocation, if any. size is the operation's data length, used to
// resolve random tear points. Nil receivers report no fault.
func (in *Injector) check(op Op, size int) (Fault, bool) {
	if in == nil {
		return Fault{}, false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	call := in.calls[op]
	in.calls[op]++
	for _, f := range in.faults {
		if f.Op != op || f.Call != call {
			continue
		}
		if f.Keep < 0 && size > 0 {
			f.Keep = in.rng.Intn(size)
		}
		if f.Keep > size {
			f.Keep = size
		}
		in.fired++
		return f, true
	}
	return Fault{}, false
}
