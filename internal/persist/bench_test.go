package persist

import (
	"fmt"
	"testing"
	"time"

	"hybridmem/internal/tiered"
	"hybridmem/internal/trace"
)

// BenchmarkCheckpointCut measures one checkpoint cut against a ~2000-page
// resident set. mode=full rewrites the whole residency every cut — the
// pre-delta-log behavior and the restore-side worst case. mode=delta
// emits only the pages dirtied since the previous cut; dirty=N is the
// approximate percent of the resident set churned between cuts. The
// delta rows are the tentpole's claim: cut cost O(dirty), not
// O(resident), in both bytes (reported as bytes/op) and latency.
//
// Cuts fsync, so iterations are milliseconds — the Makefile runs this
// suite with its own CKPT_BENCHTIME instead of the serve-path BENCHTIME.
func BenchmarkCheckpointCut(b *testing.B) {
	const resident = 2000
	run := func(b *testing.B, fullEvery, dirtyPages int) {
		e, err := tiered.New(tiered.Config{
			DRAMPages: 256, NVMPages: 8192, ScanInterval: time.Hour,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := e.Start(); err != nil {
			b.Fatal(err)
		}
		defer e.Stop()
		ps := uint64(e.Config().Spec.Geometry.PageSizeBytes)
		next := uint64(0)
		touch := func(n int) {
			for i := 0; i < n; i++ {
				if _, err := e.Serve(next*ps, trace.OpRead); err != nil {
					b.Fatal(err)
				}
				next++
			}
		}
		touch(resident)
		c, err := NewCheckpointer(e, Config{
			Dir: b.TempDir(), Interval: time.Hour,
			FullEvery: fullEvery, MaxDeltaRatio: -1, // the bench picks the cut kind, not the ratio trigger
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := c.CheckpointNow(); err != nil { // base outside the timer
			b.Fatal(err)
		}
		start := c.Stats()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if dirtyPages > 0 {
				b.StopTimer()
				touch(dirtyPages) // fresh pages: inserts, then evict churn
				b.StartTimer()
			}
			if err := c.CheckpointNow(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		st := c.Stats()
		b.ReportMetric(float64(st.BytesTotal-start.BytesTotal)/float64(b.N), "bytes/op")
		if fullEvery > 1 && st.FullCuts != start.FullCuts {
			b.Fatalf("delta bench compacted mid-run: %d extra full cuts", st.FullCuts-start.FullCuts)
		}
	}
	b.Run("mode=full", func(b *testing.B) { run(b, 1, 0) })
	for _, dirty := range []int{1, 25} {
		b.Run(fmt.Sprintf("mode=delta/dirty=%d", dirty), func(b *testing.B) {
			run(b, 1<<30, resident*dirty/100)
		})
	}
}
