//go:build !unix

package persist

import (
	"errors"
	"os"
)

// mapFile always fails on platforms without syscall.Mmap; the region
// degrades to plain file writes with identical durability semantics.
func mapFile(*os.File, int) ([]byte, error) {
	return nil, errors.New("persist: mmap unavailable")
}

func unmapFile([]byte) error { return nil }
