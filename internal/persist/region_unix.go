//go:build unix

package persist

import (
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-write and shared: stores land in the
// page cache and reach the file through the mapping.
func mapFile(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
}

// unmapFile releases a mapFile mapping.
func unmapFile(b []byte) error { return syscall.Munmap(b) }
