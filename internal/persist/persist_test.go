package persist

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hybridmem/internal/tiered"
	"hybridmem/internal/trace"
)

// newEngine builds a small started async engine and loads pop pages of
// the default tenant, returning the engine and its page size.
func newEngine(t *testing.T, pop int) (*tiered.Engine, uint64) {
	t.Helper()
	e, err := tiered.New(tiered.Config{
		DRAMPages: 64,
		NVMPages:  1024,
		// A long interval keeps the scanner out of the way; tests that
		// want migration call ScanOnce.
		ScanInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	ps := uint64(e.Config().Spec.Geometry.PageSizeBytes)
	for p := 0; p < pop; p++ {
		if _, err := e.Serve(uint64(p)*ps, trace.OpRead); err != nil {
			t.Fatal(err)
		}
	}
	return e, ps
}

// restoredEngine builds a fresh stopped-state engine with the same
// geometry newEngine uses.
func restoredEngine(t *testing.T) *tiered.Engine {
	t.Helper()
	e, err := tiered.New(tiered.Config{DRAMPages: 64, NVMPages: 1024, ScanInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func ckptConfig(t *testing.T) Config {
	t.Helper()
	return Config{Dir: t.TempDir(), Interval: time.Hour}
}

// checkpointOnce populates an engine, cuts one checkpoint, stops the
// engine, and returns the checkpoint path and the resident count.
func checkpointOnce(t *testing.T, cfg Config, pop int) (string, int) {
	t.Helper()
	e, _ := newEngine(t, pop)
	defer e.Stop()
	c, err := NewCheckpointer(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	return c.Path(), int(st.ResidentDRAM + st.ResidentNVM)
}

// restoreAndVerify restores path into a fresh engine and fails the test
// unless the invariants hold and the restored count matches want.
func restoreAndVerify(t *testing.T, dir string, want int) tiered.RestoreStats {
	t.Helper()
	e2 := restoredEngine(t)
	c2, err := NewCheckpointer(e2, Config{Dir: dir, Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	_, rs, err := c2.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Restored != want {
		t.Fatalf("restored %d pages, want %d (stats %+v)", rs.Restored, want, rs)
	}
	if err := e2.CheckInvariants(); err != nil {
		t.Fatalf("invariants after restore: %v", err)
	}
	return rs
}

func TestRoundTrip(t *testing.T) {
	cfg := ckptConfig(t)
	path, resident := checkpointOnce(t, cfg, 500)
	snap, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Complete || snap.Truncated {
		t.Fatalf("snapshot complete=%v truncated=%v, want complete", snap.Complete, snap.Truncated)
	}
	if len(snap.Records) != resident {
		t.Fatalf("checkpoint has %d records, engine had %d residents", len(snap.Records), resident)
	}
	if snap.Seq != 1 || snap.DRAMPages != 64 || snap.NVMPages != 1024 || snap.Nodes != 1 {
		t.Fatalf("snapshot header %+v wrong", snap)
	}
	warm := 0
	for _, r := range snap.Records {
		if r.Warm {
			warm++
		}
	}
	// The proposed policy faults reads into DRAM until it fills, so some
	// records must be warm.
	if warm == 0 {
		t.Fatal("no warm records in a checkpoint with DRAM residents")
	}
	rs := restoreAndVerify(t, cfg.Dir, resident)
	if rs.WarmQueued != warm {
		t.Fatalf("queued %d warm pages, checkpoint had %d", rs.WarmQueued, warm)
	}
}

func TestRestoreSequenceResumes(t *testing.T) {
	cfg := ckptConfig(t)
	checkpointOnce(t, cfg, 100)
	e2 := restoredEngine(t)
	c2, err := NewCheckpointer(e2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c2.Restore(); err != nil {
		t.Fatal(err)
	}
	if err := e2.Start(); err != nil {
		t.Fatal(err)
	}
	defer e2.Stop()
	if err := c2.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	snap, err := ReadSnapshot(c2.Path())
	if err != nil {
		t.Fatal(err)
	}
	if snap.Seq != 2 {
		t.Fatalf("post-restore checkpoint seq = %d, want 2", snap.Seq)
	}
}

func TestColdStart(t *testing.T) {
	e := restoredEngine(t)
	c, err := NewCheckpointer(e, ckptConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	snap, rs, err := c.Restore()
	if err != nil || snap != nil || rs.Restored != 0 {
		t.Fatalf("cold start: snap=%v rs=%+v err=%v, want all zero", snap, rs, err)
	}
}

// TestRecoverTruncated chops a valid checkpoint at every interesting
// length and asserts each prefix restores cleanly with a record count
// that never exceeds the bytes' worth of full frames.
func TestRecoverTruncated(t *testing.T) {
	cfg := ckptConfig(t)
	path, resident := checkpointOnce(t, cfg, 300)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cuts := []int{
		len(full) - 1,                           // inside the commit frame
		len(full) - frameOverhead - 17,          // just before the commit frame
		preambleSize + frameOverhead + 32 + 100, // mid page frame
		preambleSize + frameOverhead + 32,       // after the meta frame
		preambleSize + 3,                        // mid meta header
		preambleSize,                            // preamble only
	}
	for _, cut := range cuts {
		if cut < 0 || cut > len(full) {
			continue
		}
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		snap, err := ReadSnapshot(path)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if snap.Complete {
			t.Fatalf("cut %d: truncated file decoded as complete", cut)
		}
		if len(snap.Records) > resident {
			t.Fatalf("cut %d: %d records from a %d-resident checkpoint", cut, len(snap.Records), resident)
		}
		restoreAndVerify(t, cfg.Dir, len(snap.Records))
	}
}

// TestRecoverCorrupted flips a byte in each region of a valid checkpoint:
// the reader must keep everything before the damaged frame and drop the
// rest, and the prefix must restore cleanly.
func TestRecoverCorrupted(t *testing.T) {
	cfg := ckptConfig(t)
	path, _ := checkpointOnce(t, cfg, 300)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, flip := range []int{preambleSize + 6, preambleSize + frameOverhead + 32 + 20, len(full) - 2} {
		b := append([]byte(nil), full...)
		b[flip] ^= 0xFF
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		snap, err := ReadSnapshot(path)
		if err != nil {
			t.Fatalf("flip %d: %v", flip, err)
		}
		if snap.Complete {
			t.Fatalf("flip %d: corrupt file decoded as complete", flip)
		}
		if !snap.Truncated {
			t.Fatalf("flip %d: corruption not reported", flip)
		}
		restoreAndVerify(t, cfg.Dir, len(snap.Records))
	}
}

func TestNotACheckpoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, FileName)
	if err := os.WriteFile(path, []byte("definitely not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(path); !errors.Is(err, ErrNotCheckpoint) {
		t.Fatalf("err = %v, want ErrNotCheckpoint", err)
	}
}

// TestTornWriteEveryFrame tears each write call of an in-place rewrite at
// a seeded random point and asserts the file always recovers to a valid
// frame prefix that restores with clean invariants.
func TestTornWriteEveryFrame(t *testing.T) {
	for call := 0; call < 4; call++ {
		dir := t.TempDir()
		e, _ := newEngine(t, 400)
		c, err := NewCheckpointer(e, Config{Dir: dir, Interval: time.Hour, InPlace: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.CheckpointNow(); err != nil {
			t.Fatal(err)
		}
		// Re-arm: tear the call-th frame of the in-place rewrite.
		c2, err := NewCheckpointer(e, Config{
			Dir: dir, Interval: time.Hour, InPlace: true,
			Injector: NewInjector(int64(call)+1).TornWrite(call, -1),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := c2.CheckpointNow(); !errors.Is(err, ErrCrashed) {
			t.Fatalf("call %d: err = %v, want ErrCrashed", call, err)
		}
		// A tear inside the preamble destroys the magic: the file is no
		// longer a checkpoint and recovery degrades to a cold start.
		want := 0
		snap, err := ReadSnapshot(c.Path())
		if err == nil {
			want = len(snap.Records)
		} else if !errors.Is(err, ErrNotCheckpoint) {
			t.Fatalf("call %d: %v", call, err)
		}
		e.Stop()
		restoreAndVerify(t, dir, want)
	}
}

// TestFaultsPreserveAtomicCheckpoint arms every clean-failure mode
// against the atomic (temp + rename) writer and asserts the previously
// published checkpoint survives intact every time.
func TestFaultsPreserveAtomicCheckpoint(t *testing.T) {
	faults := map[string]*Injector{
		"create-fail":  NewInjector(1).Fail(OpCreate, 0),
		"write-fail":   NewInjector(2).Fail(OpWrite, 1),
		"short-write":  NewInjector(3).ShortWrite(2, 5),
		"fsync-fail":   NewInjector(4).Fail(OpSync, 0),
		"rename-fail":  NewInjector(5).Fail(OpRename, 0),
		"crash-write":  NewInjector(6).CrashAt(OpWrite, 2),
		"crash-sync":   NewInjector(7).CrashAt(OpSync, 0),
		"crash-rename": NewInjector(8).CrashAt(OpRename, 0),
		"torn-write":   NewInjector(9).TornWrite(1, -1),
	}
	for name, inj := range faults {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			e, _ := newEngine(t, 200)
			defer e.Stop()
			good, err := NewCheckpointer(e, Config{Dir: dir, Interval: time.Hour})
			if err != nil {
				t.Fatal(err)
			}
			if err := good.CheckpointNow(); err != nil {
				t.Fatal(err)
			}
			want, err := ReadSnapshot(good.Path())
			if err != nil || !want.Complete {
				t.Fatalf("baseline checkpoint bad: %v", err)
			}
			bad, err := NewCheckpointer(e, Config{Dir: dir, Interval: time.Hour, Injector: inj})
			if err != nil {
				t.Fatal(err)
			}
			if err := bad.CheckpointNow(); err == nil {
				t.Fatal("injected fault did not surface")
			}
			if inj.Fired() == 0 {
				t.Fatal("fault never fired")
			}
			got, err := ReadSnapshot(good.Path())
			if err != nil {
				t.Fatal(err)
			}
			if !got.Complete || got.Seq != want.Seq || len(got.Records) != len(want.Records) {
				t.Fatalf("published checkpoint damaged by failed write: %+v", got)
			}
			if bad.Stats().Failures != 1 {
				t.Fatalf("failures = %d, want 1", bad.Stats().Failures)
			}
		})
	}
}

// TestWarmupPromotes restores a checkpoint with warm pages and lets the
// warm-up feeder drive them through the daemon queues: promotions must
// happen with no serve traffic at all.
func TestWarmupPromotes(t *testing.T) {
	cfg := ckptConfig(t)
	checkpointOnce(t, cfg, 500)
	e2, err := tiered.New(tiered.Config{
		DRAMPages:    64,
		NVMPages:     1024,
		ScanInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewCheckpointer(e2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, rs, err := c2.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if rs.WarmQueued == 0 {
		t.Fatal("no warm pages queued")
	}
	if err := e2.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for e2.WarmupPending() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if p := e2.WarmupPending(); p != 0 {
		t.Fatalf("%d warm pages still pending after 10s", p)
	}
	if err := e2.Stop(); err != nil {
		t.Fatal(err)
	}
	if got := e2.Stats().Promotions; got == 0 {
		t.Fatal("warm-up storm produced no promotions")
	}
	if err := e2.CheckInvariants(); err != nil {
		t.Fatalf("invariants after warm-up: %v", err)
	}
}

// TestStopDuringWarmup stops the engine while the warm-up storm is still
// feeding the queues; the feeder must exit promptly and leave the table
// consistent. Run under -race, this is the satellite's warm-up race test.
func TestStopDuringWarmup(t *testing.T) {
	cfg := ckptConfig(t)
	checkpointOnce(t, cfg, 800)
	for i := 0; i < 5; i++ {
		e2, err := tiered.New(tiered.Config{
			DRAMPages:    64,
			NVMPages:     1024,
			ScanInterval: 100 * time.Microsecond,
			WarmupRate:   8, // tiny rate: Stop always lands mid-storm
		})
		if err != nil {
			t.Fatal(err)
		}
		c2, err := NewCheckpointer(e2, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := c2.Restore(); err != nil {
			t.Fatal(err)
		}
		if err := e2.Start(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Duration(i) * 200 * time.Microsecond)
		if err := e2.Stop(); err != nil {
			t.Fatal(err)
		}
		if err := e2.CheckInvariants(); err != nil {
			t.Fatalf("iteration %d: invariants after Stop mid-warm-up: %v", i, err)
		}
	}
}

// TestStopRacesCheckpoint runs Engine.Stop concurrently with an in-flight
// CheckpointNow and the periodic loop: the checkpoint must either
// complete or fail cleanly, and the engine must quiesce with invariants
// intact. Run under -race, this is the satellite's shutdown race test.
func TestStopRacesCheckpoint(t *testing.T) {
	for i := 0; i < 5; i++ {
		e, _ := newEngine(t, 400)
		c, err := NewCheckpointer(e, Config{Dir: t.TempDir(), Interval: 100 * time.Microsecond})
		if err != nil {
			t.Fatal(err)
		}
		c.Start()
		done := make(chan error, 1)
		go func() { done <- c.CheckpointNow() }()
		time.Sleep(time.Duration(i) * 100 * time.Microsecond)
		if err := e.Stop(); err != nil {
			t.Fatal(err)
		}
		if err := <-done; err != nil {
			t.Fatalf("in-flight checkpoint failed: %v", err)
		}
		if err := c.Stop(true); err != nil {
			t.Fatalf("final checkpoint failed: %v", err)
		}
		if err := e.CheckInvariants(); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		snap, err := ReadSnapshot(c.Path())
		if err != nil || !snap.Complete {
			t.Fatalf("final checkpoint unreadable: %v", err)
		}
	}
}

func TestRestoreLifecycleErrors(t *testing.T) {
	e, _ := newEngine(t, 10)
	defer e.Stop()
	if _, err := e.Restore(nil); !errors.Is(err, tiered.ErrRestoreStarted) {
		t.Fatalf("Restore after Start: %v", err)
	}
	sync, err := tiered.New(tiered.Config{DRAMPages: 8, NVMPages: 8, Synchronous: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sync.Restore(nil); !errors.Is(err, tiered.ErrRestoreSync) {
		t.Fatalf("Restore on sync engine: %v", err)
	}
}

// TestRestoreSkipsMisfits feeds records the current config cannot hold:
// unknown tenants and more pages than NVM frames. Everything that fits
// restores; the rest is counted, and invariants still hold.
func TestRestoreSkipsMisfits(t *testing.T) {
	e, err := tiered.New(tiered.Config{DRAMPages: 8, NVMPages: 32, ScanInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	pages := []tiered.RestoredPage{
		{Tenant: tiered.DefaultTenant, Page: 0},
		{Tenant: tiered.DefaultTenant, Page: 0}, // duplicate, hits while NVM has room
	}
	for p := 1; p < 40; p++ {
		pages = append(pages, tiered.RestoredPage{Tenant: tiered.DefaultTenant, Page: uint64(p)})
	}
	for p := 0; p < 10; p++ {
		pages = append(pages, tiered.RestoredPage{Tenant: 7, Page: uint64(p)})
	}
	rs, err := e.Restore(pages)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Restored != 32 || rs.CapacityDrops != 8 || rs.Skipped != 10 || rs.Duplicates != 1 {
		t.Fatalf("stats %+v, want 32 restored / 8 capacity / 10 skipped / 1 dup", rs)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestServeZeroAllocWithCheckpointer guards the tentpole's perf
// constraint: attaching a checkpointer (and having it publish a
// checkpoint) must not put allocations on the engine's serve hit path —
// the checkpointer reads RCU snapshots off-path and never hooks Serve.
func TestServeZeroAllocWithCheckpointer(t *testing.T) {
	modes := []struct {
		name      string
		fullEvery int
		cuts      int
	}{
		{"full", 1, 1},
		{"delta", 4, 3}, // one base + two delta cuts before measuring
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			e, ps := newEngine(t, 32)
			defer e.Stop()
			cfg := ckptConfig(t)
			cfg.FullEvery = mode.fullEvery
			c, err := NewCheckpointer(e, cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Stop(false)
			for i := 0; i < mode.cuts; i++ {
				if err := c.CheckpointNow(); err != nil {
					t.Fatal(err)
				}
			}
			if mode.fullEvery > 1 && c.Stats().DeltaCuts == 0 {
				t.Fatal("delta mode never cut a delta")
			}
			i := 0
			if n := testing.AllocsPerRun(1000, func() {
				if _, err := e.Serve(uint64(i%32)*ps, trace.OpRead); err != nil {
					t.Fatal(err)
				}
				i++
			}); n > 0 {
				t.Fatalf("serve path allocated %.1f times per op with a checkpointer attached, want 0", n)
			}
		})
	}
}
