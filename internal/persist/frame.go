package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"time"
)

// castagnoli is the CRC-32C polynomial table (the checksum NVM-aware
// formats use; hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// le is the stream's byte order.
var le = binary.LittleEndian

// appendFrame appends one self-validating frame to dst:
// length(4) | kind(1) | payload | crc32c(kind|payload)(4).
func appendFrame(dst []byte, kind byte, payload []byte) []byte {
	dst = le.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, kind)
	dst = append(dst, payload...)
	crc := crc32.Update(0, castagnoli, []byte{kind})
	crc = crc32.Update(crc, castagnoli, payload)
	return le.AppendUint32(dst, crc)
}

// appendPreamble appends the 16-byte file preamble.
func appendPreamble(dst []byte) []byte {
	dst = append(dst, magic...)
	dst = le.AppendUint32(dst, Version)
	return le.AppendUint32(dst, 0) // reserved
}

// appendMeta appends the stream's meta frame: frameMeta (32 bytes) for a
// full snapshot, frameDeltaMeta (36 bytes, adding the base-chain linkage)
// for a delta cut.
func appendMeta(buf []byte, snap *Snapshot) []byte {
	if snap.Delta {
		var meta [delMetaSize]byte
		le.PutUint64(meta[0:], snap.Seq)
		le.PutUint64(meta[8:], snap.BaseSeq)
		le.PutUint64(meta[16:], uint64(snap.Taken.UnixNano()))
		le.PutUint32(meta[24:], uint32(snap.DRAMPages))
		le.PutUint32(meta[28:], uint32(snap.NVMPages))
		le.PutUint32(meta[32:], uint32(snap.Nodes))
		return appendFrame(buf, frameDeltaMeta, meta[:])
	}
	var meta [32]byte
	le.PutUint64(meta[0:], snap.Seq)
	le.PutUint64(meta[8:], uint64(snap.Taken.UnixNano()))
	le.PutUint32(meta[16:], uint32(snap.DRAMPages))
	le.PutUint32(meta[20:], uint32(snap.NVMPages))
	le.PutUint32(meta[24:], uint32(snap.Nodes))
	return appendFrame(buf, frameMeta, meta[:])
}

// appendPagesPayload fills pl with one page frame's payload.
func appendPagesPayload(pl []byte, chunk []Record) []byte {
	pl = le.AppendUint32(pl, uint32(len(chunk)))
	for _, r := range chunk {
		pl = le.AppendUint64(pl, uint64(r.Tenant)<<48|r.Page)
		flags := byte(0)
		if r.Warm {
			flags |= flagWarm
		}
		pl = append(pl, r.Node, flags, 0, 0)
		pl = le.AppendUint32(pl, r.Reads)
		pl = le.AppendUint32(pl, r.Writes)
	}
	return pl
}

// appendRemovedPayload fills pl with one removed-keys frame's payload.
func appendRemovedPayload(pl []byte, chunk []PageKey) []byte {
	pl = le.AppendUint32(pl, uint32(len(chunk)))
	for _, k := range chunk {
		pl = le.AppendUint64(pl, uint64(k.Tenant)<<48|k.Page)
	}
	return pl
}

// appendCommit appends the commit frame: total element count (records
// plus removed keys) and a sequence echo.
func appendCommit(buf []byte, snap *Snapshot) []byte {
	var commit [16]byte
	le.PutUint64(commit[0:], uint64(len(snap.Records)+len(snap.Removed)))
	le.PutUint64(commit[8:], snap.Seq)
	return appendFrame(buf, frameCommit, commit[:])
}

// encode serializes a snapshot into the framed stream, reusing buf's
// capacity. The layout is preamble, meta frame, page frames of up to
// recsPerFrame records, removed-key frames (delta streams only), commit
// frame.
func encode(buf []byte, snap *Snapshot) []byte {
	buf = appendPreamble(buf[:0])
	buf = appendMeta(buf, snap)

	var pl []byte
	for off := 0; off < len(snap.Records); off += recsPerFrame {
		end := off + recsPerFrame
		if end > len(snap.Records) {
			end = len(snap.Records)
		}
		pl = appendPagesPayload(pl[:0], snap.Records[off:end])
		buf = appendFrame(buf, framePages, pl)
	}
	for off := 0; off < len(snap.Removed); off += recsPerFrame {
		end := off + recsPerFrame
		if end > len(snap.Removed) {
			end = len(snap.Removed)
		}
		pl = appendRemovedPayload(pl[:0], snap.Removed[off:end])
		buf = appendFrame(buf, frameRemoved, pl)
	}
	return appendCommit(buf, snap)
}

// chunkedSize returns the framed size of n elements of recBytes each,
// chunked at recsPerFrame per frame.
func chunkedSize(n, recBytes int) int {
	full, rem := n/recsPerFrame, n%recsPerFrame
	size := full * (frameOverhead + 4 + recsPerFrame*recBytes)
	if rem > 0 {
		size += frameOverhead + 4 + rem*recBytes
	}
	return size
}

// encodedSize returns the exact stream size for snap: the region the
// writer maps is sized to this before any byte is stored.
func encodedSize(snap *Snapshot) int {
	metaBytes := 32
	if snap.Delta {
		metaBytes = delMetaSize
	}
	size := preambleSize + frameOverhead + metaBytes
	size += chunkedSize(len(snap.Records), recSize)
	size += chunkedSize(len(snap.Removed), delRecSize)
	return size + frameOverhead + 16 // commit
}

// decode parses a checkpoint stream, recovering the longest valid prefix:
// parsing stops — without error — at the first frame that is short, has a
// bad CRC, or is structurally invalid, and everything validated up to
// that point is returned with Truncated set. Only a missing or alien
// preamble is an error (there is nothing to recover from a file that was
// never a checkpoint).
func decode(b []byte) (*Snapshot, error) {
	if len(b) < preambleSize || string(b[:8]) != magic {
		return nil, ErrNotCheckpoint
	}
	if v := le.Uint32(b[8:]); v != Version {
		return nil, fmt.Errorf("%w: version %d (reader understands %d)", ErrNotCheckpoint, v, Version)
	}
	snap := &Snapshot{}
	sawMeta := false
	off := preambleSize
	for {
		if off == len(b) {
			break // clean end of stream (complete only if a commit frame said so)
		}
		if len(b)-off < frameOverhead {
			snap.Truncated = true
			break
		}
		n := int(le.Uint32(b[off:]))
		kind := b[off+4]
		if n > len(b)-off-frameOverhead {
			snap.Truncated = true
			break
		}
		payload := b[off+5 : off+5+n]
		crc := crc32.Update(0, castagnoli, b[off+4:off+5])
		crc = crc32.Update(crc, castagnoli, payload)
		if crc != le.Uint32(b[off+5+n:]) {
			snap.Truncated = true
			break
		}
		valid := true
		switch kind {
		case frameMeta:
			if len(payload) != 32 || sawMeta {
				valid = false
				break
			}
			sawMeta = true
			snap.Seq = le.Uint64(payload[0:])
			snap.Taken = time.Unix(0, int64(le.Uint64(payload[8:])))
			snap.DRAMPages = int(le.Uint32(payload[16:]))
			snap.NVMPages = int(le.Uint32(payload[20:]))
			snap.Nodes = int(le.Uint32(payload[24:]))
		case frameDeltaMeta:
			if len(payload) != delMetaSize || sawMeta {
				valid = false
				break
			}
			sawMeta = true
			snap.Delta = true
			snap.Seq = le.Uint64(payload[0:])
			snap.BaseSeq = le.Uint64(payload[8:])
			snap.Taken = time.Unix(0, int64(le.Uint64(payload[16:])))
			snap.DRAMPages = int(le.Uint32(payload[24:]))
			snap.NVMPages = int(le.Uint32(payload[28:]))
			snap.Nodes = int(le.Uint32(payload[32:]))
		case framePages:
			if !sawMeta || len(payload) < 4 {
				valid = false
				break
			}
			count := int(le.Uint32(payload))
			if len(payload) != 4+count*recSize {
				valid = false
				break
			}
			for i := 0; i < count; i++ {
				p := payload[4+i*recSize:]
				key := le.Uint64(p)
				snap.Records = append(snap.Records, Record{
					Tenant: uint16(key >> 48),
					Page:   key & (1<<48 - 1),
					Node:   p[8],
					Warm:   p[9]&flagWarm != 0,
					Reads:  le.Uint32(p[12:]),
					Writes: le.Uint32(p[16:]),
				})
			}
		case frameRemoved:
			// Removal keys are a delta-stream concept: a full snapshot is
			// already the complete residency, so one here is structural
			// damage and truncates.
			if !sawMeta || !snap.Delta || len(payload) < 4 {
				valid = false
				break
			}
			count := int(le.Uint32(payload))
			if len(payload) != 4+count*delRecSize {
				valid = false
				break
			}
			for i := 0; i < count; i++ {
				key := le.Uint64(payload[4+i*delRecSize:])
				snap.Removed = append(snap.Removed, PageKey{
					Tenant: uint16(key >> 48),
					Page:   key & (1<<48 - 1),
				})
			}
		case frameCommit:
			if !sawMeta || len(payload) != 16 {
				valid = false
				break
			}
			if le.Uint64(payload) == uint64(len(snap.Records)+len(snap.Removed)) && le.Uint64(payload[8:]) == snap.Seq {
				snap.Complete = true
			} else {
				valid = false
			}
		default:
			valid = false
		}
		if !valid {
			snap.Truncated = true
			break
		}
		off += frameOverhead + n
		if snap.Complete {
			// Anything after the commit frame (e.g. a stale longer
			// checkpoint underneath an in-place rewrite) is not ours.
			break
		}
	}
	if !sawMeta {
		// A valid preamble but no intact meta frame: structurally a
		// checkpoint, semantically empty. Recoverable as zero records.
		snap.Truncated = true
	}
	return snap, nil
}
