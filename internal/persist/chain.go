package persist

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// Chain is a decoded checkpoint chain: the newest valid base snapshot
// plus every delta that replayed cleanly on top of it. Records is the
// merged residency — base records overlaid by each delta's changes and
// removals in sequence order, last writer wins — which is what the
// engine restores.
type Chain struct {
	// Base is the full snapshot the chain hangs off.
	Base *Snapshot
	// Seq is the last replayed cut's sequence number (Base.Seq when no
	// delta applied); the checkpointer resumes numbering above it.
	Seq uint64
	// Deltas counts the delta cuts replayed; DeltaRecords and
	// DeltaRemoved the changed-page records and removal keys they
	// carried. Replay cost is O(len(Base.Records) + DeltaRecords +
	// DeltaRemoved) — the restore bound.
	Deltas       int
	DeltaRecords int
	DeltaRemoved int
	// Truncated reports that replay stopped before the chain's end: a
	// torn cut (its valid prefix still applied), a broken sequence link,
	// or an unreadable delta. Records holds everything up to the stop.
	Truncated bool
	// Records is the merged residency, in first-seen order.
	Records []Record
}

// ReadChain reads the checkpoint chain rooted at dir's base snapshot and
// replays its deltas: delta Seq = base.Seq+1, base.Seq+2, ... each
// chained by BaseSeq. Replay stops — without error, keeping everything
// already applied — at the first missing file (the chain's natural end),
// torn frame, wrong linkage, or unreadable delta; only a missing or
// alien base fails (fs.ErrNotExist / ErrNotCheckpoint), exactly like
// ReadSnapshot. A truncated base keeps its valid prefix but replays no
// deltas: their diffs assume the base's complete content.
func ReadChain(dir string) (*Chain, error) {
	base, err := ReadSnapshot(filepath.Join(dir, FileName))
	if err != nil {
		return nil, err
	}
	if base.Delta {
		return nil, fmt.Errorf("%w: base is a delta stream", ErrNotCheckpoint)
	}
	ch := &Chain{Base: base, Seq: base.Seq, Truncated: base.Truncated}

	merged := make(map[uint64]Record, len(base.Records))
	var order []uint64
	apply := func(r Record) {
		key := uint64(r.Tenant)<<48 | r.Page
		if _, ok := merged[key]; !ok {
			order = append(order, key)
		}
		merged[key] = r
	}
	for _, r := range base.Records {
		apply(r)
	}

	if base.Complete {
		for seq := base.Seq + 1; ; seq++ {
			d, err := ReadSnapshot(filepath.Join(dir, DeltaFileName(seq)))
			if errors.Is(err, fs.ErrNotExist) {
				break // the chain's end
			}
			if err != nil || !d.Delta || d.Seq != seq || d.BaseSeq != base.Seq {
				// Unreadable, or a stale orphan from a pruned chain:
				// nothing past it can be trusted to follow this base.
				ch.Truncated = true
				break
			}
			for _, r := range d.Records {
				apply(r)
			}
			for _, k := range d.Removed {
				delete(merged, uint64(k.Tenant)<<48|k.Page)
			}
			ch.Deltas++
			ch.DeltaRecords += len(d.Records)
			ch.DeltaRemoved += len(d.Removed)
			ch.Seq = seq
			if !d.Complete {
				// Torn delta: its valid prefix applied, nothing follows.
				ch.Truncated = true
				break
			}
		}
	}

	// order can repeat a key that was removed and later re-added, so
	// consume merged entries as they materialize to emit each page once.
	ch.Records = make([]Record, 0, len(merged))
	for _, key := range order {
		if r, ok := merged[key]; ok {
			ch.Records = append(ch.Records, r)
			delete(merged, key)
		}
	}
	return ch, nil
}

// pruneDeltas removes every delta file (and stale delta temp file) in
// dir, returning how many published deltas were removed. Called after a
// full cut publishes: the new base subsumes the chain. Best-effort — a
// file that refuses removal becomes an orphan the sequence linkage
// already protects restore from.
func pruneDeltas(dir string) int {
	pruned := 0
	matches, _ := filepath.Glob(filepath.Join(dir, "delta-*.ckpt"))
	for _, m := range matches {
		if os.Remove(m) == nil {
			pruned++
		}
	}
	tmps, _ := filepath.Glob(filepath.Join(dir, "delta-*.ckpt.tmp"))
	for _, m := range tmps {
		os.Remove(m)
	}
	return pruned
}
