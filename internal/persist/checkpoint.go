package persist

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"hybridmem/internal/mm"
	"hybridmem/internal/obs"
	"hybridmem/internal/tiered"
)

// FileName is the published checkpoint's name inside the persistence
// directory. The writer stages at FileName + ".tmp".
const FileName = "checkpoint.ckpt"

// WriteOptions tunes one checkpoint write.
type WriteOptions struct {
	// InPlace rewrites the target file directly instead of staging at a
	// temp path and renaming. A crash then tears the live checkpoint —
	// which frame-level recovery handles — in exchange for never needing
	// a second file's worth of space. The default (atomic) mode leaves
	// the previous checkpoint untouched until the new one is durable.
	InPlace bool
	// Injector, when non-nil, intercepts every durability point.
	Injector *Injector
}

// WriteSnapshot writes snap as a framed checkpoint stream at path,
// returning the bytes written. The stream goes through a file-mapped
// region sized exactly to the encoding, one frame per store, then sync;
// in atomic mode the temp file is then renamed over path and the
// directory synced, so the publish is all-or-nothing. On a clean failure
// (ErrInjected or a real I/O error) the temp file is removed; on an
// injected crash (ErrCrashed) nothing is cleaned up, leaving the exact
// bytes a dead process would have left.
func WriteSnapshot(path string, snap *Snapshot, opt WriteOptions) (int64, error) {
	target := path
	if !opt.InPlace {
		target = path + ".tmp"
	}
	size := encodedSize(len(snap.Records))
	r, err := createRegion(target, size, opt.Injector)
	if err != nil {
		return 0, err
	}
	abort := func(err error) (int64, error) {
		if errors.Is(err, ErrCrashed) {
			r.abandon()
			return 0, err
		}
		r.close()
		if !opt.InPlace {
			os.Remove(target)
		}
		return 0, err
	}

	// One write call per frame (see Op docs): preamble, meta, page
	// chunks, commit. buf is reused across frames.
	buf := appendPreamble(nil)
	if err := r.write(buf); err != nil {
		return abort(err)
	}
	var meta [32]byte
	le.PutUint64(meta[0:], snap.Seq)
	le.PutUint64(meta[8:], uint64(snap.Taken.UnixNano()))
	le.PutUint32(meta[16:], uint32(snap.DRAMPages))
	le.PutUint32(meta[20:], uint32(snap.NVMPages))
	le.PutUint32(meta[24:], uint32(snap.Nodes))
	if err := r.write(appendFrame(buf[:0], frameMeta, meta[:])); err != nil {
		return abort(err)
	}
	var pl []byte
	for off := 0; off < len(snap.Records); off += recsPerFrame {
		end := off + recsPerFrame
		if end > len(snap.Records) {
			end = len(snap.Records)
		}
		chunk := snap.Records[off:end]
		pl = pl[:0]
		pl = le.AppendUint32(pl, uint32(len(chunk)))
		for _, rec := range chunk {
			pl = le.AppendUint64(pl, uint64(rec.Tenant)<<48|rec.Page)
			flags := byte(0)
			if rec.Warm {
				flags |= flagWarm
			}
			pl = append(pl, rec.Node, flags, 0, 0)
			pl = le.AppendUint32(pl, rec.Reads)
			pl = le.AppendUint32(pl, rec.Writes)
		}
		if err := r.write(appendFrame(buf[:0], framePages, pl)); err != nil {
			return abort(err)
		}
	}
	var commit [16]byte
	le.PutUint64(commit[0:], uint64(len(snap.Records)))
	le.PutUint64(commit[8:], snap.Seq)
	if err := r.write(appendFrame(buf[:0], frameCommit, commit[:])); err != nil {
		return abort(err)
	}

	if err := r.sync(); err != nil {
		return abort(err)
	}
	written := int64(r.off)
	if err := r.close(); err != nil {
		return abort(err)
	}
	if !opt.InPlace {
		if f, ok := opt.Injector.check(OpRename, 0); ok {
			if f.Kind == KindCrash || f.Kind == KindTornWrite {
				return 0, ErrCrashed
			}
			os.Remove(target)
			return 0, fmt.Errorf("rename: %w", ErrInjected)
		}
		if err := os.Rename(target, path); err != nil {
			os.Remove(target)
			return 0, err
		}
		syncDir(filepath.Dir(path))
	}
	return written, nil
}

// syncDir makes a rename durable by fsyncing the containing directory.
// Best-effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// ReadSnapshot decodes the checkpoint at path, recovering the longest
// valid frame prefix of a torn or truncated stream (Snapshot.Truncated
// reports when that happened). Only a file that was never a checkpoint
// fails (ErrNotCheckpoint), along with real read errors.
func ReadSnapshot(path string) (*Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return decode(b)
}

// Config tunes a Checkpointer.
type Config struct {
	// Dir is the persistence directory; the checkpoint lives at
	// Dir/FileName. Created if missing.
	Dir string
	// Interval is the periodic checkpoint cadence (default 1s).
	Interval time.Duration
	// InPlace and Injector are passed to every write (see WriteOptions).
	InPlace  bool
	Injector *Injector
}

// Checkpointer periodically cuts the engine's residency over the RCU
// table snapshots and persists it. One goroutine writes; the serve path
// is never locked or touched. Restore, Start, CheckpointNow and Stop
// wire into the server lifecycle: restore before Engine.Start, periodic
// checkpoints while serving, a final checkpoint at drain.
type Checkpointer struct {
	e    *tiered.Engine
	cfg  Config
	path string

	// mu serializes checkpoint writes (ticker loop, CheckpointNow, the
	// final checkpoint in Stop) and guards seq and the record scratch.
	mu   sync.Mutex
	seq  uint64
	recs []Record

	stopOnce sync.Once
	stopCh   chan struct{}
	wg       sync.WaitGroup

	written, failures        atomic.Int64
	lastRecords, lastBytes   atomic.Int64
	lastDurNS, lastUnixMilli atomic.Int64
}

// NewCheckpointer builds a checkpointer for e. The engine must be
// asynchronous (checkpointing is part of the online serve stack).
func NewCheckpointer(e *tiered.Engine, cfg Config) (*Checkpointer, error) {
	if cfg.Dir == "" {
		return nil, errors.New("persist: Config.Dir is required")
	}
	if cfg.Interval == 0 {
		cfg.Interval = time.Second
	}
	if cfg.Interval < 0 {
		return nil, fmt.Errorf("persist: negative interval %v", cfg.Interval)
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	return &Checkpointer{
		e:      e,
		cfg:    cfg,
		path:   filepath.Join(cfg.Dir, FileName),
		stopCh: make(chan struct{}),
	}, nil
}

// Path returns the published checkpoint's location.
func (c *Checkpointer) Path() string { return c.path }

// Restore reads the published checkpoint and rebuilds the engine's NVM
// residency from it; call between tiered.New and Engine.Start. A missing
// checkpoint is a cold start: nil snapshot, zero stats, no error. A torn
// or truncated checkpoint restores its valid prefix. The checkpoint
// sequence resumes above the restored snapshot's.
func (c *Checkpointer) Restore() (*Snapshot, tiered.RestoreStats, error) {
	snap, err := ReadSnapshot(c.path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, tiered.RestoreStats{}, nil
	}
	if errors.Is(err, ErrNotCheckpoint) {
		// An in-place rewrite torn inside the preamble destroys the
		// magic: there is no valid frame left, and recovery-to-empty —
		// a cold start — is exactly "the last valid frame" here.
		return nil, tiered.RestoreStats{}, nil
	}
	if err != nil {
		return nil, tiered.RestoreStats{}, err
	}
	pages := make([]tiered.RestoredPage, len(snap.Records))
	for i, r := range snap.Records {
		pages[i] = tiered.RestoredPage{
			Tenant: tiered.TenantID(r.Tenant),
			Page:   r.Page,
			Node:   int(r.Node),
			Warm:   r.Warm,
			Score:  r.Score(),
			Reads:  uint64(r.Reads),
			Writes: uint64(r.Writes),
		}
	}
	rs, err := c.e.Restore(pages)
	if err != nil {
		return snap, rs, err
	}
	c.mu.Lock()
	c.seq = snap.Seq
	c.mu.Unlock()
	return snap, rs, nil
}

// Start launches the periodic checkpoint loop.
func (c *Checkpointer) Start() {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		ticker := time.NewTicker(c.cfg.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-c.stopCh:
				return
			case <-ticker.C:
				c.CheckpointNow() // failures are counted, not fatal
			}
		}
	}()
}

// Stop halts the periodic loop and, with final set, writes one last
// checkpoint — the drain path's durable cut. Idempotent; safe if Start
// was never called.
func (c *Checkpointer) Stop(final bool) error {
	c.stopOnce.Do(func() { close(c.stopCh) })
	c.wg.Wait()
	if final {
		return c.CheckpointNow()
	}
	return nil
}

// CheckpointNow cuts and persists one checkpoint synchronously.
// Serializes with the periodic loop; safe to call concurrently with
// Serve, the daemon, and Engine.Stop.
func (c *Checkpointer) CheckpointNow() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	ecfg := c.e.Config()
	snap := &Snapshot{
		Seq:       c.seq + 1,
		Taken:     time.Now(),
		DRAMPages: ecfg.DRAMPages,
		NVMPages:  ecfg.NVMPages,
		Nodes:     ecfg.Topology.NumNodes(),
	}
	c.recs = c.recs[:0]
	c.e.SnapshotResidency(func(t tiered.TenantID, page uint64, loc mm.Location, node int, reads, writes uint64) {
		c.recs = append(c.recs, Record{
			Tenant: uint16(t),
			Page:   page,
			Node:   uint8(node),
			Warm:   loc == mm.LocDRAM,
			Reads:  clamp32(reads),
			Writes: clamp32(writes),
		})
	})
	snap.Records = c.recs
	start := time.Now()
	n, err := WriteSnapshot(c.path, snap, WriteOptions{InPlace: c.cfg.InPlace, Injector: c.cfg.Injector})
	if err != nil {
		c.failures.Add(1)
		return err
	}
	c.seq = snap.Seq
	c.written.Add(1)
	c.lastRecords.Store(int64(len(snap.Records)))
	c.lastBytes.Store(n)
	c.lastDurNS.Store(time.Since(start).Nanoseconds())
	c.lastUnixMilli.Store(snap.Taken.UnixMilli())
	return nil
}

// Stats is a snapshot of the checkpointer's counters.
type Stats struct {
	// Written and Failures count completed and failed checkpoint writes.
	Written, Failures int64
	// Seq is the last published checkpoint's sequence number.
	Seq uint64
	// LastRecords, LastBytes and LastDurNS describe the last successful
	// write; LastUnixMilli its cut time.
	LastRecords, LastBytes, LastDurNS, LastUnixMilli int64
}

// Stats returns the current counter snapshot.
func (c *Checkpointer) Stats() Stats {
	c.mu.Lock()
	seq := c.seq
	c.mu.Unlock()
	return Stats{
		Written:       c.written.Load(),
		Failures:      c.failures.Load(),
		Seq:           seq,
		LastRecords:   c.lastRecords.Load(),
		LastBytes:     c.lastBytes.Load(),
		LastDurNS:     c.lastDurNS.Load(),
		LastUnixMilli: c.lastUnixMilli.Load(),
	}
}

// RegisterMetrics adds the checkpointer's series to reg, alongside the
// engine catalog (docs/observability.md).
func (c *Checkpointer) RegisterMetrics(reg *obs.Registry) {
	reg.CounterFunc("tierd_checkpoints_total", "Checkpoints published.", c.written.Load)
	reg.CounterFunc("tierd_checkpoint_failures_total", "Checkpoint writes that failed.", c.failures.Load)
	reg.GaugeFunc("tierd_checkpoint_records_last", "Records in the last checkpoint.", c.lastRecords.Load)
	reg.GaugeFunc("tierd_checkpoint_bytes_last", "Size of the last checkpoint.", c.lastBytes.Load)
	reg.GaugeFunc("tierd_checkpoint_duration_ns", "Duration of the last checkpoint write.",
		c.lastDurNS.Load, obs.L("window", "last"))
	reg.GaugeFunc("tierd_checkpoint_age_ms", "Milliseconds since the last checkpoint's cut.",
		func() int64 {
			t := c.lastUnixMilli.Load()
			if t == 0 {
				return -1
			}
			return time.Now().UnixMilli() - t
		})
}

// clamp32 saturates a windowed counter into the record's 32-bit field.
func clamp32(v uint64) uint32 {
	if v > 1<<32-1 {
		return 1<<32 - 1
	}
	return uint32(v)
}
