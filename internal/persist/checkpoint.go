package persist

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"hybridmem/internal/mm"
	"hybridmem/internal/obs"
	"hybridmem/internal/tiered"
)

// FileName is the published base checkpoint's name inside the
// persistence directory. The writer stages at FileName + ".tmp". Delta
// cuts live alongside it, named by DeltaFileName.
const FileName = "checkpoint.ckpt"

// DeltaFileName names the delta cut with the given sequence number. The
// fixed-width hex keeps lexical and sequence order identical.
func DeltaFileName(seq uint64) string {
	return fmt.Sprintf("delta-%016x.ckpt", seq)
}

// WriteOptions tunes one checkpoint write.
type WriteOptions struct {
	// InPlace rewrites the target file directly instead of staging at a
	// temp path and renaming. A crash then tears the live checkpoint —
	// which frame-level recovery handles — in exchange for never needing
	// a second file's worth of space. The default (atomic) mode leaves
	// the previous checkpoint untouched until the new one is durable.
	InPlace bool
	// Injector, when non-nil, intercepts every durability point.
	Injector *Injector
}

// WriteSnapshot writes snap as a framed checkpoint stream at path,
// returning the bytes written. Full and delta snapshots share the same
// path through here; a delta stream's durability points report to the
// injector as the OpDelta* family. The stream goes through a file-mapped
// region sized exactly to the encoding, one frame per store, then sync;
// in atomic mode the temp file is then renamed over path and the
// directory synced, so the publish is all-or-nothing. On a clean failure
// (ErrInjected or a real I/O error) the temp file is removed; on an
// injected crash (ErrCrashed) nothing is cleaned up, leaving the exact
// bytes a dead process would have left.
func WriteSnapshot(path string, snap *Snapshot, opt WriteOptions) (int64, error) {
	ops := baseOps
	if snap.Delta {
		ops = deltaOps
	}
	target := path
	if !opt.InPlace {
		target = path + ".tmp"
	}
	size := encodedSize(snap)
	r, err := createRegion(target, size, opt.Injector, ops)
	if err != nil {
		return 0, err
	}
	abort := func(err error) (int64, error) {
		if errors.Is(err, ErrCrashed) {
			r.abandon()
			return 0, err
		}
		r.close()
		if !opt.InPlace {
			os.Remove(target)
		}
		return 0, err
	}

	// One write call per frame (see Op docs): preamble, meta, page
	// chunks, removed-key chunks (deltas), commit. buf is reused across
	// frames.
	buf := appendPreamble(nil)
	if err := r.write(buf); err != nil {
		return abort(err)
	}
	if err := r.write(appendMeta(buf[:0], snap)); err != nil {
		return abort(err)
	}
	var pl []byte
	for off := 0; off < len(snap.Records); off += recsPerFrame {
		end := off + recsPerFrame
		if end > len(snap.Records) {
			end = len(snap.Records)
		}
		pl = appendPagesPayload(pl[:0], snap.Records[off:end])
		if err := r.write(appendFrame(buf[:0], framePages, pl)); err != nil {
			return abort(err)
		}
	}
	for off := 0; off < len(snap.Removed); off += recsPerFrame {
		end := off + recsPerFrame
		if end > len(snap.Removed) {
			end = len(snap.Removed)
		}
		pl = appendRemovedPayload(pl[:0], snap.Removed[off:end])
		if err := r.write(appendFrame(buf[:0], frameRemoved, pl)); err != nil {
			return abort(err)
		}
	}
	if err := r.write(appendCommit(buf[:0], snap)); err != nil {
		return abort(err)
	}

	if err := r.sync(); err != nil {
		return abort(err)
	}
	written := int64(r.off)
	if err := r.close(); err != nil {
		return abort(err)
	}
	if !opt.InPlace {
		if f, ok := opt.Injector.check(ops.rename, 0); ok {
			if f.Kind == KindCrash || f.Kind == KindTornWrite {
				return 0, ErrCrashed
			}
			os.Remove(target)
			return 0, fmt.Errorf("rename: %w", ErrInjected)
		}
		if err := os.Rename(target, path); err != nil {
			os.Remove(target)
			return 0, err
		}
		syncDir(filepath.Dir(path))
	}
	return written, nil
}

// syncDir makes a rename durable by fsyncing the containing directory.
// Best-effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// ReadSnapshot decodes the checkpoint at path, recovering the longest
// valid frame prefix of a torn or truncated stream (Snapshot.Truncated
// reports when that happened). Only a file that was never a checkpoint
// fails (ErrNotCheckpoint), along with real read errors.
func ReadSnapshot(path string) (*Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return decode(b)
}

// Config tunes a Checkpointer.
type Config struct {
	// Dir is the persistence directory; the base checkpoint lives at
	// Dir/FileName and delta cuts alongside it. Created if missing.
	Dir string
	// Interval is the periodic checkpoint cadence (default 1s).
	Interval time.Duration
	// FullEvery makes every FullEvery-th cut a full snapshot, with
	// incremental delta cuts in between. <= 1 (and the zero default)
	// means every cut is full — the pre-delta-log behavior. With deltas
	// on, the first cut after construction or Restore is always full (it
	// establishes the chain's base), and a full cut prunes the previous
	// chain's deltas (compaction).
	FullEvery int
	// MaxDeltaRatio forces the next cut full when the chain's accumulated
	// delta bytes exceed MaxDeltaRatio × the base's bytes, bounding both
	// chain length on churny workloads and restore replay cost. 0 means
	// the default 0.75; negative disables the trigger.
	MaxDeltaRatio float64
	// InPlace and Injector are passed to every write (see WriteOptions).
	InPlace  bool
	Injector *Injector
}

// Checkpointer periodically cuts the engine's residency over the RCU
// table snapshots and persists it — full snapshots at the chain cadence,
// O(dirty) delta cuts in between, diffed against the last persisted state
// via the table's per-shard mutation generations. One goroutine writes;
// the serve path is never locked or touched. Restore, Start,
// CheckpointNow and Stop wire into the server lifecycle: restore before
// Engine.Start, periodic checkpoints while serving, a final checkpoint
// at drain.
type Checkpointer struct {
	e    *tiered.Engine
	cfg  Config
	path string

	// mu serializes checkpoint writes (ticker loop, CheckpointNow, the
	// final checkpoint in Stop) and guards seq, the scratch slices, and
	// the diff state below.
	mu   sync.Mutex
	seq  uint64
	recs []Record
	rems []PageKey
	// gens and state are the dirty-tracking diff base: per table shard,
	// the mutation generation and the key→record residency the last
	// successful cut persisted. Both advance only after a write lands, so
	// a failed cut leaves the diff base intact and the next delta simply
	// re-emits. nil state means no base exists yet (fresh checkpointer,
	// or just restored) and forces the next cut full.
	gens          []uint64
	state         []map[uint64]Record
	cutsSinceBase int
	baseSeq       uint64

	stopOnce sync.Once
	stopCh   chan struct{}
	wg       sync.WaitGroup

	written, failures        atomic.Int64
	fullCuts, deltaCuts      atomic.Int64
	compactions              atomic.Int64
	bytesTotal               atomic.Int64
	baseBytes                atomic.Int64
	chainDeltaBytes          atomic.Int64
	lastDeltaBytes           atomic.Int64
	lastRecords, lastBytes   atomic.Int64
	lastDurNS, lastUnixMilli atomic.Int64
}

// NewCheckpointer builds a checkpointer for e. The engine must be
// asynchronous (checkpointing is part of the online serve stack).
func NewCheckpointer(e *tiered.Engine, cfg Config) (*Checkpointer, error) {
	if cfg.Dir == "" {
		return nil, errors.New("persist: Config.Dir is required")
	}
	if cfg.Interval == 0 {
		cfg.Interval = time.Second
	}
	if cfg.Interval < 0 {
		return nil, fmt.Errorf("persist: negative interval %v", cfg.Interval)
	}
	if cfg.MaxDeltaRatio == 0 {
		cfg.MaxDeltaRatio = 0.75
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	return &Checkpointer{
		e:      e,
		cfg:    cfg,
		path:   filepath.Join(cfg.Dir, FileName),
		stopCh: make(chan struct{}),
	}, nil
}

// Path returns the published base checkpoint's location.
func (c *Checkpointer) Path() string { return c.path }

// Restore reads the published checkpoint chain — newest valid base plus
// its replayable deltas — and rebuilds the engine's NVM (and, with
// age-tiered warm-up, DRAM) residency from it; call between tiered.New
// and Engine.Start. A missing checkpoint is a cold start: nil chain, zero
// stats, no error. A torn or truncated chain restores its valid prefix.
// The checkpoint sequence resumes above the last replayed cut's, and the
// first cut after Restore is always full — re-basing the chain, which
// also prunes whatever deltas the previous life left behind.
func (c *Checkpointer) Restore() (*Chain, tiered.RestoreStats, error) {
	ch, err := ReadChain(c.cfg.Dir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, tiered.RestoreStats{}, nil
	}
	if errors.Is(err, ErrNotCheckpoint) {
		// An in-place rewrite torn inside the preamble destroys the
		// magic: there is no valid frame left, and recovery-to-empty —
		// a cold start — is exactly "the last valid frame" here.
		return nil, tiered.RestoreStats{}, nil
	}
	if err != nil {
		return nil, tiered.RestoreStats{}, err
	}
	pages := make([]tiered.RestoredPage, len(ch.Records))
	for i, r := range ch.Records {
		pages[i] = tiered.RestoredPage{
			Tenant: tiered.TenantID(r.Tenant),
			Page:   r.Page,
			Node:   int(r.Node),
			Warm:   r.Warm,
			Score:  r.Score(),
			Reads:  uint64(r.Reads),
			Writes: uint64(r.Writes),
		}
	}
	rs, err := c.e.Restore(pages)
	if err != nil {
		return ch, rs, err
	}
	c.mu.Lock()
	c.seq = ch.Seq
	c.gens, c.state = nil, nil // next cut re-bases the chain
	c.mu.Unlock()
	return ch, rs, nil
}

// Start launches the periodic checkpoint loop.
func (c *Checkpointer) Start() {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		ticker := time.NewTicker(c.cfg.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-c.stopCh:
				return
			case <-ticker.C:
				c.CheckpointNow() // failures are counted, not fatal
			}
		}
	}()
}

// Stop halts the periodic loop and, with final set, writes one last
// checkpoint — the drain path's durable cut. Idempotent; safe if Start
// was never called.
func (c *Checkpointer) Stop(final bool) error {
	c.stopOnce.Do(func() { close(c.stopCh) })
	c.wg.Wait()
	if final {
		return c.CheckpointNow()
	}
	return nil
}

// CheckpointNow cuts and persists one checkpoint synchronously — full or
// delta per the chain policy. Serializes with the periodic loop; safe to
// call concurrently with Serve, the daemon, and Engine.Stop.
func (c *Checkpointer) CheckpointNow() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	full := c.state == nil || c.cfg.FullEvery <= 1 || c.cutsSinceBase+1 >= c.cfg.FullEvery
	if !full && c.cfg.MaxDeltaRatio >= 0 &&
		float64(c.chainDeltaBytes.Load()) > c.cfg.MaxDeltaRatio*float64(c.baseBytes.Load()) {
		full = true
	}
	if full {
		return c.cutFull()
	}
	return c.cutDelta()
}

// snapRecord converts one SnapshotResidency callback into a Record.
func snapRecord(t tiered.TenantID, page uint64, loc mm.Location, node int, reads, writes uint64) Record {
	return Record{
		Tenant: uint16(t),
		Page:   page,
		Node:   uint8(node),
		Warm:   loc == mm.LocDRAM,
		Reads:  clamp32(reads),
		Writes: clamp32(writes),
	}
}

// cutFull scans every shard, writes a full snapshot, re-bases the chain
// and prunes the now-compacted deltas. Caller holds mu.
func (c *Checkpointer) cutFull() error {
	ecfg := c.e.Config()
	ns := c.e.NumShards()
	newGens := make([]uint64, ns)
	newState := make([]map[uint64]Record, ns)
	c.recs = c.recs[:0]
	for i := 0; i < ns; i++ {
		// Generation read strictly before the scan: a mutation landing
		// mid-scan bumps past this value, so the next cut rescans the
		// shard whether or not this scan saw the change.
		newGens[i] = c.e.ShardGen(i)
		m := make(map[uint64]Record)
		c.e.SnapshotShardResidency(i, func(t tiered.TenantID, page uint64, loc mm.Location, node int, reads, writes uint64) {
			rec := snapRecord(t, page, loc, node, reads, writes)
			m[uint64(rec.Tenant)<<48|rec.Page] = rec
			c.recs = append(c.recs, rec)
		})
		newState[i] = m
	}
	snap := &Snapshot{
		Seq:       c.seq + 1,
		Taken:     time.Now(),
		DRAMPages: ecfg.DRAMPages,
		NVMPages:  ecfg.NVMPages,
		Nodes:     ecfg.Topology.NumNodes(),
		Records:   c.recs,
	}
	start := time.Now()
	n, err := WriteSnapshot(c.path, snap, WriteOptions{InPlace: c.cfg.InPlace, Injector: c.cfg.Injector})
	if err != nil {
		c.failures.Add(1)
		return err
	}
	c.seq = snap.Seq
	c.gens, c.state = newGens, newState
	c.cutsSinceBase = 0
	c.baseSeq = snap.Seq
	c.baseBytes.Store(n)
	c.chainDeltaBytes.Store(0)
	c.lastDeltaBytes.Store(0)
	// The new base subsumes every earlier delta; pruning them is the
	// compaction. Deltas are only ever read below their base's sequence
	// link, so a crash between the rename above and this prune leaves
	// orphans that are skipped on restore and removed here next time.
	if pruneDeltas(c.cfg.Dir) > 0 {
		c.compactions.Add(1)
	}
	c.written.Add(1)
	c.fullCuts.Add(1)
	c.bytesTotal.Add(n)
	c.lastRecords.Store(int64(len(snap.Records)))
	c.lastBytes.Store(n)
	c.lastDurNS.Store(time.Since(start).Nanoseconds())
	c.lastUnixMilli.Store(snap.Taken.UnixMilli())
	return nil
}

// cutDelta diffs the shards whose generation moved against the last
// persisted state and writes only the changed records and removed keys,
// chained to the current base. The diff base advances only after the
// write lands. Caller holds mu.
func (c *Checkpointer) cutDelta() error {
	ecfg := c.e.Config()
	c.recs = c.recs[:0]
	c.rems = c.rems[:0]
	type pendShard struct {
		i   int
		gen uint64
		m   map[uint64]Record
	}
	var pend []pendShard
	for i := range c.gens {
		g := c.e.ShardGen(i)
		if g == c.gens[i] {
			continue // residency unchanged since the last cut: skip the scan
		}
		old := c.state[i]
		m := make(map[uint64]Record, len(old))
		c.e.SnapshotShardResidency(i, func(t tiered.TenantID, page uint64, loc mm.Location, node int, reads, writes uint64) {
			rec := snapRecord(t, page, loc, node, reads, writes)
			m[uint64(rec.Tenant)<<48|rec.Page] = rec
		})
		for key, rec := range m {
			// Dirty means residency moved (tier or node); counter-only
			// drift does not re-emit a page, so restored heat can lag the
			// window by up to one chain — the storm re-ranks anyway.
			if o, ok := old[key]; !ok || o.Node != rec.Node || o.Warm != rec.Warm {
				c.recs = append(c.recs, rec)
			}
		}
		for key := range old {
			if _, ok := m[key]; !ok {
				c.rems = append(c.rems, PageKey{Tenant: uint16(key >> 48), Page: key & (1<<48 - 1)})
			}
		}
		pend = append(pend, pendShard{i: i, gen: g, m: m})
	}
	// An empty delta still gets written: the chain's sequence numbers
	// must stay contiguous for replay to find its end by absence.
	snap := &Snapshot{
		Seq:       c.seq + 1,
		Delta:     true,
		BaseSeq:   c.baseSeq,
		Taken:     time.Now(),
		DRAMPages: ecfg.DRAMPages,
		NVMPages:  ecfg.NVMPages,
		Nodes:     ecfg.Topology.NumNodes(),
		Records:   c.recs,
		Removed:   c.rems,
	}
	start := time.Now()
	n, err := WriteSnapshot(filepath.Join(c.cfg.Dir, DeltaFileName(snap.Seq)), snap,
		WriteOptions{InPlace: c.cfg.InPlace, Injector: c.cfg.Injector})
	if err != nil {
		c.failures.Add(1)
		return err
	}
	for _, p := range pend {
		c.gens[p.i] = p.gen
		c.state[p.i] = p.m
	}
	c.seq = snap.Seq
	c.cutsSinceBase++
	c.written.Add(1)
	c.deltaCuts.Add(1)
	c.bytesTotal.Add(n)
	c.chainDeltaBytes.Add(n)
	c.lastDeltaBytes.Store(n)
	c.lastRecords.Store(int64(len(snap.Records) + len(snap.Removed)))
	c.lastBytes.Store(n)
	c.lastDurNS.Store(time.Since(start).Nanoseconds())
	c.lastUnixMilli.Store(snap.Taken.UnixMilli())
	return nil
}

// Stats is a snapshot of the checkpointer's counters.
type Stats struct {
	// Written and Failures count completed and failed checkpoint writes.
	Written, Failures int64
	// FullCuts and DeltaCuts split Written by cut kind; Compactions
	// counts full cuts that pruned a delta chain.
	FullCuts, DeltaCuts, Compactions int64
	// Seq is the last published cut's sequence number.
	Seq uint64
	// LastRecords, LastBytes and LastDurNS describe the last successful
	// write; LastUnixMilli its cut time.
	LastRecords, LastBytes, LastDurNS, LastUnixMilli int64
	// BytesTotal is cumulative published checkpoint bytes. BaseBytes is
	// the current chain's base snapshot size, DeltaBytes its accumulated
	// delta bytes since that base, LastDeltaBytes the newest delta's size.
	BytesTotal, BaseBytes, DeltaBytes, LastDeltaBytes int64
}

// Stats returns the current counter snapshot.
func (c *Checkpointer) Stats() Stats {
	c.mu.Lock()
	seq := c.seq
	c.mu.Unlock()
	return Stats{
		Written:        c.written.Load(),
		Failures:       c.failures.Load(),
		FullCuts:       c.fullCuts.Load(),
		DeltaCuts:      c.deltaCuts.Load(),
		Compactions:    c.compactions.Load(),
		Seq:            seq,
		LastRecords:    c.lastRecords.Load(),
		LastBytes:      c.lastBytes.Load(),
		LastDurNS:      c.lastDurNS.Load(),
		LastUnixMilli:  c.lastUnixMilli.Load(),
		BytesTotal:     c.bytesTotal.Load(),
		BaseBytes:      c.baseBytes.Load(),
		DeltaBytes:     c.chainDeltaBytes.Load(),
		LastDeltaBytes: c.lastDeltaBytes.Load(),
	}
}

// RegisterMetrics adds the checkpointer's series to reg, alongside the
// engine catalog (docs/observability.md).
func (c *Checkpointer) RegisterMetrics(reg *obs.Registry) {
	reg.CounterFunc("tierd_checkpoints_total", "Checkpoints published (full + delta).", c.written.Load)
	reg.CounterFunc("tierd_checkpoint_failures_total", "Checkpoint writes that failed.", c.failures.Load)
	reg.CounterFunc("tierd_checkpoint_bytes_total", "Checkpoint bytes published (bases + deltas).", c.bytesTotal.Load)
	reg.CounterFunc("tierd_checkpoint_delta_cuts_total", "Incremental (delta) cuts published.", c.deltaCuts.Load)
	reg.CounterFunc("tierd_checkpoint_compactions_total", "Delta chains compacted into a fresh full snapshot.", c.compactions.Load)
	reg.GaugeFunc("tierd_checkpoint_records_last", "Records in the last checkpoint.", c.lastRecords.Load)
	reg.GaugeFunc("tierd_checkpoint_bytes_last", "Size of the last checkpoint.", c.lastBytes.Load)
	reg.GaugeFunc("tierd_checkpoint_duration_ns", "Duration of the last checkpoint write.",
		c.lastDurNS.Load, obs.L("window", "last"))
	reg.GaugeFunc("tierd_checkpoint_age_ms", "Milliseconds since the last checkpoint's cut.",
		func() int64 {
			t := c.lastUnixMilli.Load()
			if t == 0 {
				return -1
			}
			return time.Now().UnixMilli() - t
		})
}

// clamp32 saturates a windowed counter into the record's 32-bit field.
func clamp32(v uint64) uint32 {
	if v > 1<<32-1 {
		return 1<<32 - 1
	}
	return uint32(v)
}
