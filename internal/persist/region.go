package persist

import (
	"fmt"
	"os"
)

// region is the checkpoint's durable byte arena: a fixed-size file the
// writer fills with plain store instructions and flushes explicitly —
// the software analog of an app-direct NVM region written through the
// page cache. On unix the file is memory-mapped (region_unix.go); where
// mmap is unavailable the same interface falls back to buffered file
// writes (region_fallback.go). Sync relies on fsync, which flushes pages
// dirtied through a shared mapping as well as through write(2).
type region struct {
	f      *os.File
	data   []byte // mapped view, nil in fallback mode
	size   int
	off    int
	inject *Injector
	ops    opSet
}

// opSet names the injector op family a stream's durability points report
// as, so base snapshots and delta files fault independently.
type opSet struct {
	create, write, sync, rename Op
}

var (
	baseOps  = opSet{OpCreate, OpWrite, OpSync, OpRename}
	deltaOps = opSet{OpDeltaCreate, OpDeltaWrite, OpDeltaSync, OpDeltaRename}
)

// createRegion creates (truncating) path as a size-byte region.
func createRegion(path string, size int, inject *Injector, ops opSet) (*region, error) {
	if f, ok := inject.check(ops.create, size); ok {
		if f.Kind == KindCrash || f.Kind == KindTornWrite {
			return nil, ErrCrashed
		}
		return nil, fmt.Errorf("create %s: %w", path, ErrInjected)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(int64(size)); err != nil {
		f.Close()
		return nil, err
	}
	r := &region{f: f, size: size, inject: inject, ops: ops}
	if size > 0 {
		// Best-effort: a failed map (or a non-unix build) degrades to
		// file I/O, not to an error.
		r.data, _ = mapFile(f, size)
	}
	return r, nil
}

// write appends b at the region's cursor, honoring armed write faults:
// on a short or torn write only the fault's Keep prefix is stored.
func (r *region) write(b []byte) error {
	f, armed := r.inject.check(r.ops.write, len(b))
	if armed {
		switch f.Kind {
		case KindCrash:
			return ErrCrashed
		case KindError:
			return fmt.Errorf("write: %w", ErrInjected)
		default:
			b = b[:f.Keep]
		}
	}
	var err error
	if r.data != nil {
		copy(r.data[r.off:], b)
	} else {
		_, err = r.f.WriteAt(b, int64(r.off))
	}
	r.off += len(b)
	if err != nil {
		return err
	}
	if armed {
		if f.Kind == KindTornWrite {
			return ErrCrashed
		}
		return fmt.Errorf("write: %w", ErrInjected)
	}
	return nil
}

// sync makes every store so far durable.
func (r *region) sync() error {
	if f, ok := r.inject.check(r.ops.sync, r.off); ok {
		if f.Kind == KindCrash || f.Kind == KindTornWrite {
			return ErrCrashed
		}
		return fmt.Errorf("sync: %w", ErrInjected)
	}
	return r.f.Sync()
}

// close unmaps, trims the file to the bytes actually written, and closes
// it. Safe after a failed write (the trim preserves the valid prefix).
func (r *region) close() error {
	var err error
	if r.data != nil {
		err = unmapFile(r.data)
		r.data = nil
	}
	if terr := r.f.Truncate(int64(r.off)); err == nil {
		err = terr
	}
	if cerr := r.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// abandon releases the mapping and handle without trimming: the injected-
// crash path, leaving the file exactly as the "dead process" left it.
func (r *region) abandon() {
	if r.data != nil {
		unmapFile(r.data)
		r.data = nil
	}
	r.f.Close()
}
