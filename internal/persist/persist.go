// Package persist makes the NVM tier durable. The paper's premise is
// that NVM is persistent main memory; this package closes the loop for
// the online engine: the page table's resident entries are periodically
// checkpointed — a consistent cut taken over the table's published RCU
// snapshots, with no serve-path locking — into a file-mapped region, and
// on restart the engine rebuilds NVM residency from the last valid
// checkpoint and replays the checkpointed hot set as a rate-limited
// warm-up promotion storm.
//
// The checkpoint is a versioned, CRC-framed record stream: a fixed
// preamble, then self-validating frames (length, kind, payload, CRC-32C),
// ending in a commit frame. Because every frame validates independently,
// a torn, truncated or otherwise damaged file is never fatal — the reader
// recovers the longest valid prefix and restores exactly those records.
// Writes go through a memory-mapped region (store instructions plus an
// explicit sync, the software analog of writing NVM through the page
// cache) and publish via fsync + atomic rename, so a crash at any
// instruction leaves either the previous checkpoint or a recoverable
// prefix of the new one.
//
// Checkpoints are log-structured: periodic full snapshots (the base)
// with incremental delta cuts chained between them, each carrying only
// the pages whose residency changed — or vanished — since the previous
// cut, so steady-state checkpoint I/O is O(dirty) instead of O(table).
// Every FullEvery cuts (or when the chain outgrows the base by
// MaxDeltaRatio) the chain compacts into a fresh full snapshot and the
// deltas are pruned. Restore loads the newest valid base and replays its
// deltas in sequence order, stopping at the first gap, torn frame or
// broken linkage, which bounds restore cost by O(base + replay length).
//
// Injector provides deterministic, seeded fault injection at every
// durability point (create, write, sync, rename — with a parallel op set
// for delta files): failed calls, short writes, torn writes and
// crash-at-point, which the chaos suite uses to prove the recovery path
// against each corruption mode.
package persist

import (
	"errors"
	"time"
)

// Checkpoint stream geometry.
const (
	// magic opens every checkpoint file. 8 bytes, human-greppable.
	magic = "HMNVMCK\n"
	// Version is the stream format version written by this package. A
	// reader refuses preambles from the future; old versions would be
	// migrated here.
	Version = 1
	// recSize is the on-disk size of one page record: key(8) + node(1) +
	// flags(1) + reserved(2) + reads(4) + writes(4).
	recSize = 20
	// recsPerFrame chunks the record stream so one flipped bit costs at
	// most this many records, not the whole table.
	recsPerFrame = 1024
	// frameOverhead is length(4) + kind(1) + crc(4).
	frameOverhead = 9
	// preambleSize is magic(8) + version(4) + reserved(4).
	preambleSize = 16
)

// Frame kinds.
const (
	frameMeta      = 1 // checkpoint sequence, timestamp, geometry
	framePages     = 2 // a chunk of page records
	frameCommit    = 3 // record count + sequence echo; marks the stream complete
	frameDeltaMeta = 4 // delta sequence, base-chain linkage, timestamp, geometry
	frameRemoved   = 5 // a chunk of removed-page keys (delta streams only)
)

// Delta stream geometry.
const (
	// delMetaSize is the delta meta payload: seq(8) + baseSeq(8) +
	// timestamp(8) + dram(4) + nvm(4) + nodes(4).
	delMetaSize = 36
	// delRecSize is one removed-page key on disk.
	delRecSize = 8
)

// Record flag bits.
const flagWarm = 1 // page was DRAM-resident (hot) at checkpoint time

var (
	// ErrNotCheckpoint means the file exists but its preamble is not a
	// checkpoint of a version this reader understands.
	ErrNotCheckpoint = errors.New("persist: not a checkpoint file")
	// ErrInjected is returned by operations an Injector failed on purpose.
	ErrInjected = errors.New("persist: injected fault")
	// ErrCrashed is returned when an Injector simulated process death
	// mid-operation: the write is abandoned in place, no cleanup runs.
	ErrCrashed = errors.New("persist: injected crash")
)

// Record is one checkpointed page: the namespaced residency the restore
// path rebuilds, plus the windowed counters that seed post-restart heat.
type Record struct {
	Tenant uint16
	Page   uint64
	// Node is the NUMA pool that held the page's frame.
	Node uint8
	// Warm marks the page DRAM-resident at checkpoint time: its durable
	// copy restores into NVM, and the warm-up storm promotes it back.
	Warm          bool
	Reads, Writes uint32
}

// Score is the warm-up ordering key: the record's windowed counter
// magnitude, matching the daemon's candidate scoring.
func (r Record) Score() uint64 { return uint64(r.Reads) + uint64(r.Writes) }

// PageKey names one page without residency payload: the removal records
// a delta stream carries for pages that left memory since the last cut.
type PageKey struct {
	Tenant uint16
	Page   uint64
}

// Snapshot is one decoded checkpoint stream — a full cut or, with Delta
// set, an incremental cut carrying only the pages that changed (Records)
// or vanished (Removed) since the previous cut in its chain.
type Snapshot struct {
	// Seq is the cut sequence number (monotonic per Checkpointer).
	Seq uint64
	// Delta marks an incremental stream; BaseSeq is then the sequence of
	// the full snapshot its chain hangs off (every delta in one chain
	// names the same base, and chains replay in Seq order: base.Seq+1,
	// base.Seq+2, ...).
	Delta   bool
	BaseSeq uint64
	// Taken is the checkpoint's cut timestamp.
	Taken time.Time
	// DRAMPages, NVMPages and Nodes record the writing engine's geometry,
	// so a restore into a different shape can be detected and reported.
	DRAMPages, NVMPages, Nodes int
	Records                    []Record
	// Removed holds the keys a delta cut observed leaving memory; replay
	// deletes them from the reconstructed residency. Empty on full cuts.
	Removed []PageKey
	// Complete reports that the commit frame was present and consistent
	// (sequence echo and record count both match).
	Complete bool
	// Truncated reports that trailing bytes were discarded at a torn,
	// short or corrupt frame; Records holds the valid prefix.
	Truncated bool
}
