package persist

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hybridmem/internal/mm"
	"hybridmem/internal/tiered"
	"hybridmem/internal/trace"
)

// rec builds one synthetic default-tenant record for hand-built chains.
func rec(page uint64, warm bool, reads uint32) Record {
	return Record{Tenant: uint16(tiered.DefaultTenant), Page: page, Warm: warm, Reads: reads}
}

// key folds a record the way the chain merge does.
func key(r Record) uint64 { return uint64(r.Tenant)<<48 | r.Page }

// writeCut writes snap into dir under its chain name (FileName for a
// full snapshot, DeltaFileName(seq) for a delta).
func writeCut(t *testing.T, dir string, snap *Snapshot) string {
	t.Helper()
	name := FileName
	if snap.Delta {
		name = DeltaFileName(snap.Seq)
	}
	path := filepath.Join(dir, name)
	if _, err := WriteSnapshot(path, snap, WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	return path
}

// fullSnap and deltaSnap build synthetic cuts with the test geometry.
func fullSnap(seq uint64, recs []Record) *Snapshot {
	return &Snapshot{Seq: seq, Taken: time.Now(), DRAMPages: 64, NVMPages: 1024, Nodes: 1, Records: recs}
}

func deltaSnap(seq, baseSeq uint64, recs []Record, removed []PageKey) *Snapshot {
	return &Snapshot{Seq: seq, Delta: true, BaseSeq: baseSeq, Taken: time.Now(),
		DRAMPages: 64, NVMPages: 1024, Nodes: 1, Records: recs, Removed: removed}
}

// pagesN builds records for pages [lo, hi).
func pagesN(lo, hi uint64, warm bool) []Record {
	var rs []Record
	for p := lo; p < hi; p++ {
		rs = append(rs, rec(p, warm, 1))
	}
	return rs
}

// TestDeltaRoundTrip drives the checkpointer itself through a chain:
// full base, churn, delta cuts, then a chain read and a restore that must
// land exactly on the engine's residency.
func TestDeltaRoundTrip(t *testing.T) {
	dir := t.TempDir()
	e, ps := newEngine(t, 300)
	defer e.Stop()
	c, err := NewCheckpointer(e, Config{Dir: dir, Interval: time.Hour, FullEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CheckpointNow(); err != nil { // full base
		t.Fatal(err)
	}
	// Churn: fault in 20 new pages, then cut a delta.
	for p := 300; p < 320; p++ {
		if _, err := e.Serve(uint64(p)*ps, trace.OpRead); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CheckpointNow(); err != nil { // delta seq 2
		t.Fatal(err)
	}
	if err := c.CheckpointNow(); err != nil { // delta seq 3, no churn: empty
		t.Fatal(err)
	}
	st := c.Stats()
	if st.FullCuts != 1 || st.DeltaCuts != 2 {
		t.Fatalf("cuts %+v, want 1 full + 2 delta", st)
	}
	if st.LastDeltaBytes*5 > st.BaseBytes {
		t.Fatalf("quiescent delta is %d bytes vs %d base — not O(dirty)", st.LastDeltaBytes, st.BaseBytes)
	}
	d, err := ReadSnapshot(filepath.Join(dir, DeltaFileName(2)))
	if err != nil || !d.Delta || d.BaseSeq != 1 || !d.Complete {
		t.Fatalf("delta 2 bad: %+v err %v", d, err)
	}
	ch, err := ReadChain(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Deltas != 2 || ch.Seq != 3 || ch.Truncated {
		t.Fatalf("chain %+v, want 2 deltas to seq 3", ch)
	}
	est := e.Stats()
	if got, want := len(ch.Records), int(est.ResidentDRAM+est.ResidentNVM); got != want {
		t.Fatalf("chain merged %d records, engine has %d residents", got, want)
	}
	restoreAndVerify(t, dir, len(ch.Records))
}

// TestDeltaWithoutBase covers the orphan cases: a delta with no base at
// all is a cold start, and a delta stream sitting at the base's path is
// rejected as not-a-checkpoint (also a cold start through Restore).
func TestDeltaWithoutBase(t *testing.T) {
	dir := t.TempDir()
	writeCut(t, dir, deltaSnap(2, 1, pagesN(0, 10, false), nil))
	if _, err := ReadChain(dir); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("chain with no base: %v, want ErrNotExist", err)
	}
	restoreAndVerify(t, dir, 0)

	// A delta stream at the base path: structurally valid, semantically
	// not a base.
	snap := deltaSnap(2, 1, pagesN(0, 10, false), nil)
	if _, err := WriteSnapshot(filepath.Join(dir, FileName), snap, WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadChain(dir); !errors.Is(err, ErrNotCheckpoint) {
		t.Fatalf("delta at base path: %v, want ErrNotCheckpoint", err)
	}
	restoreAndVerify(t, dir, 0)
}

// TestDeltaSequenceGap removes the middle delta of a three-delta chain:
// replay must stop at the gap and never apply the orphan past it.
func TestDeltaSequenceGap(t *testing.T) {
	dir := t.TempDir()
	writeCut(t, dir, fullSnap(1, pagesN(0, 100, false)))
	writeCut(t, dir, deltaSnap(2, 1, pagesN(100, 110, false), nil))
	gone := writeCut(t, dir, deltaSnap(3, 1, pagesN(110, 120, false), nil))
	writeCut(t, dir, deltaSnap(4, 1, pagesN(120, 130, false), nil))
	if err := os.Remove(gone); err != nil {
		t.Fatal(err)
	}
	ch, err := ReadChain(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Deltas != 1 || ch.Seq != 2 || len(ch.Records) != 110 {
		t.Fatalf("chain %+v with %d records, want delta 2 only (110 records)", ch, len(ch.Records))
	}
	restoreAndVerify(t, dir, 110)
}

// TestDeltaWrongLinkage plants a stale orphan (chained to a pruned base)
// at the next sequence: the linkage check must refuse it.
func TestDeltaWrongLinkage(t *testing.T) {
	dir := t.TempDir()
	writeCut(t, dir, fullSnap(5, pagesN(0, 50, false)))
	// Right sequence number, wrong base.
	writeCut(t, dir, deltaSnap(6, 2, pagesN(50, 60, false), nil))
	ch, err := ReadChain(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Deltas != 0 || !ch.Truncated || len(ch.Records) != 50 {
		t.Fatalf("chain %+v (%d records), want base only + truncated", ch, len(ch.Records))
	}
	restoreAndVerify(t, dir, 50)
}

// TestTornDeltaTail truncates a delta at every interesting byte count:
// replay applies the longest valid prefix and stops, and every prefix
// restores with clean invariants.
func TestTornDeltaTail(t *testing.T) {
	dir := t.TempDir()
	writeCut(t, dir, fullSnap(1, pagesN(0, 100, false)))
	dpath := writeCut(t, dir, deltaSnap(2, 1, pagesN(100, 150, false), []PageKey{{Page: 0}, {Page: 1}}))
	full, err := os.ReadFile(dpath)
	if err != nil {
		t.Fatal(err)
	}
	afterMeta := preambleSize + frameOverhead + delMetaSize
	cuts := []struct {
		name string
		n    int
		want int // merged chain records
	}{
		{"inside-commit", len(full) - 1, 148},                              // records + removals applied
		{"inside-removed", len(full) - frameOverhead - 17 - 3, 150},        // removals lost, 50 adds kept
		{"mid-pages", afterMeta + frameOverhead + 4 + 10*recSize + 2, 100}, // frames are atomic: torn pages frame drops whole
		{"after-meta", afterMeta, 100},                                     // base only
		{"mid-meta", preambleSize + 3, 100},                                // delta unreadable
	}
	for _, cut := range cuts {
		t.Run(cut.name, func(t *testing.T) {
			if err := os.WriteFile(dpath, full[:cut.n], 0o644); err != nil {
				t.Fatal(err)
			}
			ch, err := ReadChain(dir)
			if err != nil {
				t.Fatal(err)
			}
			if !ch.Truncated {
				t.Fatalf("torn delta not reported: %+v", ch)
			}
			if len(ch.Records) != cut.want {
				t.Fatalf("merged %d records, want %d", len(ch.Records), cut.want)
			}
			restoreAndVerify(t, dir, cut.want)
		})
	}
}

// TestDeltaLastWriterWins overlays the same page across base and deltas
// (and duplicates it inside one stream): the newest record must win, and
// removals must erase earlier records.
func TestDeltaLastWriterWins(t *testing.T) {
	dir := t.TempDir()
	writeCut(t, dir, fullSnap(1, []Record{
		rec(5, false, 1),
		rec(5, false, 2), // duplicate inside one stream: the later one wins
		rec(6, false, 1),
		rec(7, true, 1),
	}))
	writeCut(t, dir, deltaSnap(2, 1, []Record{rec(5, true, 9)}, []PageKey{{Page: 7}}))
	writeCut(t, dir, deltaSnap(3, 1, []Record{rec(7, false, 4)}, nil)) // 7 comes back
	ch, err := ReadChain(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := map[uint64]Record{}
	for _, r := range ch.Records {
		got[key(r)] = r
	}
	if len(ch.Records) != 3 || len(got) != 3 {
		t.Fatalf("merged %d records (%d unique), want 3", len(ch.Records), len(got))
	}
	if r := got[key(rec(5, false, 0))]; !r.Warm || r.Reads != 9 {
		t.Fatalf("page 5 = %+v, want the delta's warm/reads=9 version", r)
	}
	if r := got[key(rec(7, false, 0))]; r.Warm || r.Reads != 4 {
		t.Fatalf("page 7 = %+v, want the re-added cold version", r)
	}
	restoreAndVerify(t, dir, 3)
}

// TestDeltaFaultsPreserveChain arms every delta-targeted fault mode and
// asserts the published chain — base plus the one good delta — survives
// each failed delta cut untouched.
func TestDeltaFaultsPreserveChain(t *testing.T) {
	faults := map[string]*Injector{
		"create-fail":  NewInjector(1).Fail(OpDeltaCreate, 0),
		"write-fail":   NewInjector(2).Fail(OpDeltaWrite, 1),
		"torn-write":   NewInjector(3).Arm(Fault{Op: OpDeltaWrite, Call: 1, Kind: KindTornWrite, Keep: -1}),
		"sync-fail":    NewInjector(4).Fail(OpDeltaSync, 0),
		"rename-fail":  NewInjector(5).Fail(OpDeltaRename, 0),
		"crash-rename": NewInjector(6).CrashAt(OpDeltaRename, 0),
	}
	for name, inj := range faults {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			e, ps := newEngine(t, 200)
			defer e.Stop()
			good, err := NewCheckpointer(e, Config{Dir: dir, Interval: time.Hour, FullEvery: 8})
			if err != nil {
				t.Fatal(err)
			}
			if err := good.CheckpointNow(); err != nil { // base
				t.Fatal(err)
			}
			for p := 200; p < 210; p++ {
				if _, err := e.Serve(uint64(p)*ps, trace.OpRead); err != nil {
					t.Fatal(err)
				}
			}
			if err := good.CheckpointNow(); err != nil { // delta seq 2
				t.Fatal(err)
			}
			want, err := ReadChain(dir)
			if err != nil || want.Truncated || want.Deltas != 1 {
				t.Fatalf("baseline chain bad: %+v err %v", want, err)
			}
			bad, err := NewCheckpointer(e, Config{Dir: dir, Interval: time.Hour, FullEvery: 8, Injector: inj})
			if err != nil {
				t.Fatal(err)
			}
			// Re-base (injector only arms delta ops, so this full succeeds),
			// then fail the following delta cut.
			if err := bad.CheckpointNow(); err != nil {
				t.Fatal(err)
			}
			if err := bad.CheckpointNow(); err == nil {
				t.Fatal("injected delta fault did not surface")
			}
			if inj.Fired() == 0 {
				t.Fatal("fault never fired")
			}
			if bad.Stats().Failures != 1 {
				t.Fatalf("failures = %d, want 1", bad.Stats().Failures)
			}
			got, err := ReadChain(dir)
			if err != nil {
				t.Fatal(err)
			}
			// bad's full cut re-based the chain: same residency, no deltas.
			if got.Truncated || got.Deltas != 0 || len(got.Records) != len(want.Records) {
				t.Fatalf("chain after failed delta: %+v (%d records), want %d records clean",
					got, len(got.Records), len(want.Records))
			}
			restoreAndVerify(t, dir, len(got.Records))
		})
	}
}

// TestCompactionCrashAtRename crashes the compacting full cut at its
// rename: the old base+delta chain must survive, and retrying the cut
// must compact cleanly (idempotence).
func TestCompactionCrashAtRename(t *testing.T) {
	dir := t.TempDir()
	e, ps := newEngine(t, 200)
	defer e.Stop()
	a, err := NewCheckpointer(e, Config{Dir: dir, Interval: time.Hour, FullEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.CheckpointNow(); err != nil { // base seq 1
		t.Fatal(err)
	}
	for p := 200; p < 220; p++ {
		if _, err := e.Serve(uint64(p)*ps, trace.OpRead); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.CheckpointNow(); err != nil { // delta seq 2
		t.Fatal(err)
	}
	want, err := ReadChain(dir)
	if err != nil || want.Deltas != 1 {
		t.Fatalf("baseline chain bad: %+v err %v", want, err)
	}

	// FullEvery 1 forces the next cut full — the compaction — and the
	// injector kills it at the publish rename.
	inj := NewInjector(7).CrashAt(OpRename, 0)
	b, err := NewCheckpointer(e, Config{Dir: dir, Interval: time.Hour, FullEvery: 1, Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.CheckpointNow(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	got, err := ReadChain(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Deltas != want.Deltas || got.Seq != want.Seq || len(got.Records) != len(want.Records) {
		t.Fatalf("chain damaged by crashed compaction: %+v, want %+v", got, want)
	}

	// Retry on the same checkpointer: the injector is spent, the cut must
	// publish and prune the chain.
	if err := b.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	if st := b.Stats(); st.Compactions != 1 {
		t.Fatalf("compactions = %d, want 1", st.Compactions)
	}
	after, err := ReadChain(dir)
	if err != nil {
		t.Fatal(err)
	}
	if after.Deltas != 0 || after.Truncated {
		t.Fatalf("post-compaction chain %+v, want a lone base", after)
	}
	if left, _ := filepath.Glob(filepath.Join(dir, "delta-*.ckpt")); len(left) != 0 {
		t.Fatalf("deltas not pruned: %v", left)
	}
	est := e.Stats()
	if got, want := len(after.Records), int(est.ResidentDRAM+est.ResidentNVM); got != want {
		t.Fatalf("compacted base has %d records, engine has %d residents", got, want)
	}
	restoreAndVerify(t, dir, len(after.Records))
}

// TestDeltaRatioTrigger floods the chain with churny deltas: once their
// accumulated bytes pass MaxDeltaRatio of the base, the next cut must
// compact even though FullEvery is far away.
func TestDeltaRatioTrigger(t *testing.T) {
	dir := t.TempDir()
	e, ps := newEngine(t, 100)
	defer e.Stop()
	c, err := NewCheckpointer(e, Config{Dir: dir, Interval: time.Hour, FullEvery: 1000, MaxDeltaRatio: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	page := 100
	for cut := 0; cut < 50; cut++ {
		for i := 0; i < 60; i++ {
			if _, err := e.Serve(uint64(page)*ps, trace.OpRead); err != nil {
				t.Fatal(err)
			}
			page++
		}
		if err := c.CheckpointNow(); err != nil {
			t.Fatal(err)
		}
		if c.Stats().FullCuts > 1 {
			break
		}
	}
	st := c.Stats()
	if st.FullCuts < 2 {
		t.Fatalf("size-ratio trigger never compacted: %+v", st)
	}
	if st.Compactions == 0 {
		t.Fatalf("compaction not counted: %+v", st)
	}
	restoreAndVerify(t, dir, int(e.Stats().ResidentDRAM+e.Stats().ResidentNVM))
}

// TestDeltaBytesAtOnePercentDirty pins the acceptance ratio: with ~1% of
// the resident set churned between cuts, a delta cut must write at least
// 5x fewer bytes than the full base it hangs off.
func TestDeltaBytesAtOnePercentDirty(t *testing.T) {
	dir := t.TempDir()
	e, ps := newEngine(t, 1000)
	defer e.Stop()
	c, err := NewCheckpointer(e, Config{Dir: dir, Interval: time.Hour, FullEvery: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	for p := 1000; p < 1010; p++ { // 1% of 1000 pages
		if _, err := e.Serve(uint64(p)*ps, trace.OpRead); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.DeltaCuts != 1 {
		t.Fatalf("stats %+v, want exactly one delta cut", st)
	}
	if st.LastDeltaBytes*5 > st.BaseBytes {
		t.Fatalf("1%%-dirty delta wrote %d bytes vs %d base — want >=5x reduction",
			st.LastDeltaBytes, st.BaseBytes)
	}
	restoreAndVerify(t, dir, int(e.Stats().ResidentDRAM+e.Stats().ResidentNVM))
}

// TestRestoreWarmupDRAMTopK exercises age-tiered warm-up: the K hottest
// warm records restore straight into DRAM with exact frame accounting,
// the rest take the NVM + storm path.
func TestRestoreWarmupDRAMTopK(t *testing.T) {
	e, err := tiered.New(tiered.Config{
		DRAMPages: 16, NVMPages: 1024, ScanInterval: time.Hour, WarmupDRAMTopK: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	var pages []tiered.RestoredPage
	for p := 0; p < 100; p++ {
		pages = append(pages, tiered.RestoredPage{
			Tenant: tiered.DefaultTenant, Page: uint64(p),
			Warm: p < 40, Score: uint64(p), Reads: uint64(p),
		})
	}
	rs, err := e.Restore(pages)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Restored != 100 || rs.WarmDirect != 8 || rs.WarmQueued != 32 {
		t.Fatalf("stats %+v, want 100 restored / 8 direct / 32 queued", rs)
	}
	st := e.Stats()
	if st.ResidentDRAM != 8 || st.ResidentNVM != 92 {
		t.Fatalf("residency DRAM %d / NVM %d, want 8 / 92", st.ResidentDRAM, st.ResidentNVM)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The hottest warm pages (scores 39 down to 32) must be the DRAM ones.
	dram := map[uint64]bool{}
	e.SnapshotResidency(func(_ tiered.TenantID, page uint64, loc mm.Location, _ int, _, _ uint64) {
		if loc == mm.LocDRAM {
			dram[page] = true
		}
	})
	for p := uint64(32); p < 40; p++ {
		if !dram[p] {
			t.Fatalf("page %d not DRAM-resident after top-K restore", p)
		}
	}
}

// TestRestoreWarmupTopKQuotaBound gives top-K more candidates than DRAM
// frames: the overflow must fall back to NVM + storm, never over-commit.
func TestRestoreWarmupTopKQuotaBound(t *testing.T) {
	e, err := tiered.New(tiered.Config{
		DRAMPages: 4, NVMPages: 64, ScanInterval: time.Hour, WarmupDRAMTopK: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	var pages []tiered.RestoredPage
	for p := 0; p < 32; p++ {
		pages = append(pages, tiered.RestoredPage{
			Tenant: tiered.DefaultTenant, Page: uint64(p), Warm: true, Score: uint64(p),
		})
	}
	rs, err := e.Restore(pages)
	if err != nil {
		t.Fatal(err)
	}
	if rs.WarmDirect != 4 || rs.Restored != 32 || rs.WarmQueued != 28 {
		t.Fatalf("stats %+v, want 4 direct / 32 restored / 28 queued", rs)
	}
	if st := e.Stats(); st.ResidentDRAM != 4 || st.ResidentNVM != 28 {
		t.Fatalf("residency DRAM %d / NVM %d, want 4 / 28", st.ResidentDRAM, st.ResidentNVM)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
