package core

import (
	"math/rand"
	"testing"

	"hybridmem/internal/mm"
	"hybridmem/internal/policy"
	"hybridmem/internal/trace"
)

func mustNew(t *testing.T, dram, nvm int, cfg Config) *Scheme {
	t.Helper()
	s, err := New(dram, nvm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// cfgWide gives windows covering the whole NVM queue so positional resets
// never interfere with threshold tests.
func cfgWide(readThr, writeThr int) Config {
	return Config{ReadPerc: 1, WritePerc: 1, ReadThreshold: readThr, WriteThreshold: writeThr}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{ReadPerc: 0, WritePerc: 0.3, ReadThreshold: 1, WriteThreshold: 1},
		{ReadPerc: 0.1, WritePerc: 1.5, ReadThreshold: 1, WriteThreshold: 1},
		{ReadPerc: 0.1, WritePerc: 0.3, ReadThreshold: 0, WriteThreshold: 1},
		{ReadPerc: 0.1, WritePerc: 0.3, ReadThreshold: 1, WriteThreshold: 0},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", c)
		}
	}
}

func TestDefaultConfigFollowsPaperOrdering(t *testing.T) {
	// Section IV: write-side parameters are set higher than read-side ones.
	c := DefaultConfig()
	if c.WritePerc <= c.ReadPerc {
		t.Errorf("WritePerc %v <= ReadPerc %v", c.WritePerc, c.ReadPerc)
	}
	if c.WriteThreshold < c.ReadThreshold {
		t.Errorf("WriteThreshold %d < ReadThreshold %d", c.WriteThreshold, c.ReadThreshold)
	}
}

func TestFaultsAlwaysLoadIntoDRAM(t *testing.T) {
	s := mustNew(t, 2, 4, DefaultConfig())
	for _, op := range []trace.Op{trace.OpRead, trace.OpWrite} {
		page := uint64(op) + 1
		res, err := s.Access(page, op)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Fault || res.ServedFrom != mm.LocDRAM {
			t.Errorf("fault on %v: %+v", op, res)
		}
		if s.sys.Loc(page) != mm.LocDRAM {
			t.Errorf("page %d at %v, want DRAM (Section IV: all faults to DRAM)",
				page, s.sys.Loc(page))
		}
	}
}

func TestFaultCascadeDemotesAndEvicts(t *testing.T) {
	s := mustNew(t, 1, 1, cfgWide(100, 100))
	s.Access(1, trace.OpRead) // 1 -> DRAM
	s.Access(2, trace.OpRead) // 1 demoted to NVM, 2 -> DRAM
	if s.sys.Loc(1) != mm.LocNVM || s.sys.Loc(2) != mm.LocDRAM {
		t.Fatal("first demotion wrong")
	}
	res, err := s.Access(3, trace.OpRead)
	if err != nil {
		t.Fatal(err)
	}
	// Order: evict NVM tail (1) to disk, demote DRAM tail (2), fault 3 in.
	if len(res.Moves) != 3 {
		t.Fatalf("moves = %v", res.Moves)
	}
	if res.Moves[0].Reason != policy.ReasonEvict || res.Moves[0].Page != 1 {
		t.Errorf("move 0 = %v", res.Moves[0])
	}
	if res.Moves[1].Reason != policy.ReasonDemoteFault || res.Moves[1].Page != 2 {
		t.Errorf("move 1 = %v", res.Moves[1])
	}
	if res.Moves[2].Reason != policy.ReasonFault || res.Moves[2].Page != 3 {
		t.Errorf("move 2 = %v", res.Moves[2])
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNVMHitServedFromNVM(t *testing.T) {
	// Unlike CLOCK-DWF, a write below the threshold is serviced by NVM.
	s := mustNew(t, 1, 2, cfgWide(100, 100))
	s.Access(1, trace.OpRead)
	s.Access(2, trace.OpRead) // 1 -> NVM
	res, _ := s.Access(1, trace.OpWrite)
	if res.ServedFrom != mm.LocNVM || res.Fault || len(res.Moves) != 0 {
		t.Errorf("NVM write hit: %+v", res)
	}
}

func TestThresholdTriggersPromotion(t *testing.T) {
	s := mustNew(t, 1, 2, cfgWide(100, 2)) // promote after 3rd write
	s.Access(1, trace.OpRead)
	s.Access(2, trace.OpRead) // 1 in NVM
	for i := 0; i < 2; i++ {
		res, _ := s.Access(1, trace.OpWrite)
		if len(res.Moves) != 0 {
			t.Fatalf("write %d should not migrate yet: %v", i+1, res.Moves)
		}
	}
	if _, w, _ := s.Counters(1); w != 2 {
		t.Fatalf("write counter = %d, want 2", w)
	}
	res, _ := s.Access(1, trace.OpWrite) // counter 3 > 2: migrate
	if res.ServedFrom != mm.LocNVM {
		t.Errorf("triggering hit served from %v, want NVM", res.ServedFrom)
	}
	if len(res.Moves) != 2 {
		t.Fatalf("moves = %v", res.Moves)
	}
	if res.Moves[0].Reason != policy.ReasonPromotion || res.Moves[0].Page != 1 {
		t.Errorf("promotion = %v", res.Moves[0])
	}
	if res.Moves[1].Reason != policy.ReasonDemotePromo || res.Moves[1].Page != 2 {
		t.Errorf("demotion = %v", res.Moves[1])
	}
	if s.sys.Loc(1) != mm.LocDRAM || s.sys.Loc(2) != mm.LocNVM {
		t.Error("swap placement wrong")
	}
	if s.Migrations != 1 {
		t.Errorf("Migrations = %d, want 1", s.Migrations)
	}
}

func TestReadThresholdIndependentOfWrites(t *testing.T) {
	s := mustNew(t, 1, 2, cfgWide(2, 100))
	s.Access(1, trace.OpRead)
	s.Access(2, trace.OpRead)
	// Mix of writes must not advance the read counter.
	s.Access(1, trace.OpWrite)
	s.Access(1, trace.OpRead)
	s.Access(1, trace.OpWrite)
	s.Access(1, trace.OpRead)
	r, w, _ := s.Counters(1)
	if r != 2 || w != 2 {
		t.Fatalf("counters = %d/%d, want 2/2", r, w)
	}
	res, _ := s.Access(1, trace.OpRead) // read counter 3 > 2: migrate
	if len(res.Moves) == 0 || res.Moves[0].Reason != policy.ReasonPromotion {
		t.Errorf("expected promotion, got %v", res.Moves)
	}
}

func TestCounterResetOnWindowExit(t *testing.T) {
	// NVM of 4 frames; read window covers 1 position (25%), write window 2.
	s := mustNew(t, 1, 4, Config{ReadPerc: 0.25, WritePerc: 0.5, ReadThreshold: 2, WriteThreshold: 2})
	// Fill: faults go to DRAM and demote, so pages 1..4 end up in NVM.
	for p := uint64(1); p <= 5; p++ {
		s.Access(p, trace.OpRead)
	}
	// NVM holds [4 3 2 1] (MRU..LRU); read window = {4}, write window = {4 3}.
	s.Access(4, trace.OpRead) // in window: counter -> 1... position was MRU already
	if r, _, _ := s.Counters(4); r != 1 {
		t.Fatalf("read counter = %d, want 1", r)
	}
	s.Access(4, trace.OpRead)
	if r, _, _ := s.Counters(4); r != 2 {
		t.Fatalf("read counter = %d, want 2", r)
	}
	// Touch 3: it enters the read window, pushing 4 out -> 4's read counter
	// resets to 0.
	s.Access(3, trace.OpRead)
	if r, _, _ := s.Counters(4); r != 0 {
		t.Fatalf("read counter after window exit = %d, want 0", r)
	}
	// 4 is still within the write window (top 2), so a write counts from
	// its retained value.
	s.Access(4, trace.OpRead) // back in read window, counter = 1 (was outside when hit)
	if r, _, _ := s.Counters(4); r != 1 {
		t.Fatalf("read counter after re-entry = %d, want 1", r)
	}
}

func TestOutsideWindowHitSetsCounterToOne(t *testing.T) {
	// Algorithm 1 lines 13-14/19-20: a hit outside the window sets the
	// counter to 1 rather than incrementing.
	s := mustNew(t, 1, 10, Config{ReadPerc: 0.2, WritePerc: 0.2, ReadThreshold: 99, WriteThreshold: 99})
	for p := uint64(1); p <= 11; p++ {
		s.Access(p, trace.OpRead)
	}
	// NVM MRU..LRU: [10 9 8 7 6 5 4 3 2 1]; window = top 2 = {10, 9}.
	// Hit page 1 (deep outside window): counter = 1, then it re-enters.
	s.Access(1, trace.OpRead)
	if r, _, _ := s.Counters(1); r != 1 {
		t.Fatalf("counter = %d, want 1", r)
	}
	// Now page 1 is MRU (inside window): next hit increments.
	s.Access(1, trace.OpRead)
	if r, _, _ := s.Counters(1); r != 2 {
		t.Fatalf("counter = %d, want 2", r)
	}
}

func TestPromotionWithFreeDRAMDoesNotDemote(t *testing.T) {
	s := mustNew(t, 2, 2, cfgWide(1, 1))
	s.Access(1, trace.OpRead)
	s.Access(2, trace.OpRead)
	s.Access(3, trace.OpRead) // DRAM [3 2], NVM [1]
	// Remove 3's DRAM slot... Access 1 twice to cross read threshold 1.
	s.Access(1, trace.OpRead)
	res, _ := s.Access(1, trace.OpRead) // counter 2 > 1: promote
	found := false
	for _, m := range res.Moves {
		if m.Reason == policy.ReasonDemotePromo {
			found = true
		}
	}
	if s.sys.Residents(mm.LocDRAM) == s.sys.Cap(mm.LocDRAM) && found {
		t.Log("DRAM was full; demotion expected")
	}
	if s.sys.Loc(1) != mm.LocDRAM {
		t.Error("promoted page should be in DRAM")
	}
}

func TestRandomWorkloadInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	// Low thresholds and wide windows so the random workload exercises the
	// full promotion/demotion machinery.
	s := mustNew(t, 6, 18, Config{ReadPerc: 0.5, WritePerc: 0.5, ReadThreshold: 3, WriteThreshold: 4})
	for i := 0; i < 8000; i++ {
		// Skewed traffic: 70% of accesses hit a 10-page hot set, so hot
		// pages that land in NVM accumulate counter hits and promote.
		var page uint64
		if rng.Intn(10) < 7 {
			page = uint64(rng.Intn(10))
		} else {
			page = uint64(10 + rng.Intn(70))
		}
		op := trace.OpRead
		if rng.Intn(3) == 0 {
			op = trace.OpWrite
		}
		res, err := s.Access(page, op)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		// The access leaves the page resident; DRAM for faults, and for
		// hits wherever it was (possibly DRAM after promotion).
		if got := s.sys.Loc(page); got == mm.LocDisk {
			t.Fatalf("step %d: page %d not resident after access", i, page)
		}
		if res.Fault && s.sys.Loc(page) != mm.LocDRAM {
			t.Fatalf("step %d: faulted page not in DRAM", i)
		}
		if i%500 == 0 {
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if s.Migrations == 0 {
		t.Error("expected some promotions in a hot random workload")
	}
}

// TestFewerMigrationsThanClockDWFStyle checks the paper's core claim at the
// policy level: with thresholds, repeated cold writes to NVM pages do not
// each trigger a migration.
func TestColdWritesDoNotThrash(t *testing.T) {
	s := mustNew(t, 2, 8, DefaultConfig())
	// Fill memory.
	for p := uint64(1); p <= 10; p++ {
		s.Access(p, trace.OpRead)
	}
	start := s.Migrations
	// One write each to many distinct NVM pages: all below threshold.
	for p := uint64(1); p <= 8; p++ {
		if s.sys.Loc(p) == mm.LocNVM {
			s.Access(p, trace.OpWrite)
		}
	}
	if s.Migrations != start {
		t.Errorf("single cold writes caused %d migrations", s.Migrations-start)
	}
}
