package core

import (
	"math/rand"
	"testing"

	"hybridmem/internal/trace"
)

func TestAdaptiveConfigValidate(t *testing.T) {
	if err := DefaultAdaptiveConfig().Validate(); err != nil {
		t.Fatalf("default adaptive config invalid: %v", err)
	}
	bad := []AdaptiveConfig{
		{EpochLength: 0, TargetUtility: 1, MinThreshold: 1, MaxThreshold: 2},
		{EpochLength: 10, TargetUtility: 0, MinThreshold: 1, MaxThreshold: 2},
		{EpochLength: 10, TargetUtility: 1, MinThreshold: 0, MaxThreshold: 2},
		{EpochLength: 10, TargetUtility: 1, MinThreshold: 4, MaxThreshold: 2},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", c)
		}
	}
}

func TestSetThresholds(t *testing.T) {
	s := mustNew(t, 2, 4, DefaultConfig())
	if err := s.SetThresholds(7, 9); err != nil {
		t.Fatal(err)
	}
	r, w := s.Thresholds()
	if r != 7 || w != 9 {
		t.Errorf("thresholds = %d/%d, want 7/9", r, w)
	}
	if err := s.SetThresholds(0, 9); err == nil {
		t.Error("zero threshold should error")
	}
}

func TestAdaptiveProbesDownWhenNoMigrations(t *testing.T) {
	base := Config{ReadPerc: 0.5, WritePerc: 0.5, ReadThreshold: 50, WriteThreshold: 50}
	a, err := NewAdaptive(2, 8, base, AdaptiveConfig{
		EpochLength: 100, TargetUtility: 4, MinThreshold: 1, MaxThreshold: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Cold uniform traffic: no page crosses a threshold of 50, so each
	// epoch lowers the thresholds by one.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		a.Access(uint64(rng.Intn(40)), trace.OpRead)
	}
	r, w := a.Thresholds()
	if r >= 50 || w >= 50 {
		t.Errorf("thresholds = %d/%d, want lowered from 50", r, w)
	}
	if a.Adjustments == 0 {
		t.Error("expected at least one adjustment")
	}
}

func TestAdaptiveRaisesOnUselessMigrations(t *testing.T) {
	// Threshold 1 with a scan pattern: pages are promoted and then never
	// touched again before being demoted -> zero utility -> thresholds rise.
	base := Config{ReadPerc: 1, WritePerc: 1, ReadThreshold: 1, WriteThreshold: 1}
	a, err := NewAdaptive(2, 8, base, AdaptiveConfig{
		EpochLength: 200, TargetUtility: 8, MinThreshold: 1, MaxThreshold: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Cycle over a resident footprint (9 pages in 2+8 frames): each pass, a
	// page in NVM takes two reads, crosses the threshold on the second and
	// is promoted — then demoted by later promotions before it is ever hit
	// in DRAM. Pure non-beneficial migrations.
	for i := 0; i < 1000; i++ {
		page := uint64(i % 9)
		a.Access(page, trace.OpRead)
		a.Access(page, trace.OpRead)
	}
	r, w := a.Thresholds()
	if r <= 1 || w <= 1 {
		t.Errorf("thresholds = %d/%d, want raised above 1", r, w)
	}
}

func TestAdaptiveBoundsRespected(t *testing.T) {
	base := Config{ReadPerc: 1, WritePerc: 1, ReadThreshold: 2, WriteThreshold: 2}
	a, err := NewAdaptive(2, 6, base, AdaptiveConfig{
		EpochLength: 50, TargetUtility: 1000, MinThreshold: 1, MaxThreshold: 8})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 5000; i++ {
		page := uint64(rng.Intn(12))
		op := trace.OpRead
		if rng.Intn(2) == 0 {
			op = trace.OpWrite
		}
		a.Access(page, op)
		r, w := a.Thresholds()
		if r < 1 || r > 8 || w < 1 || w > 8 {
			t.Fatalf("step %d: thresholds %d/%d outside [1,8]", i, r, w)
		}
	}
}

func TestAdaptiveBehavesLikeSchemeWithinEpoch(t *testing.T) {
	// Before the first epoch boundary, Adaptive and Scheme must agree on
	// every result (same placements, same moves).
	base := DefaultConfig()
	a, _ := NewAdaptive(3, 9, base, AdaptiveConfig{
		EpochLength: 1 << 30, TargetUtility: 32, MinThreshold: 1, MaxThreshold: 64})
	s := mustNew(t, 3, 9, base)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 3000; i++ {
		page := uint64(rng.Intn(30))
		op := trace.Op(rng.Intn(2))
		ra, errA := a.Access(page, op)
		rs, errS := s.Access(page, op)
		if (errA == nil) != (errS == nil) {
			t.Fatalf("step %d: error mismatch %v vs %v", i, errA, errS)
		}
		if ra.ServedFrom != rs.ServedFrom || ra.Fault != rs.Fault ||
			len(ra.Moves) != len(rs.Moves) {
			t.Fatalf("step %d: results diverged: %+v vs %+v", i, ra, rs)
		}
	}
}
