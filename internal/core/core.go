// Package core implements the paper's proposed OS-level data migration
// scheme (Section IV, Algorithm 1) for a hybrid DRAM-NVM main memory.
//
// Two unmodified LRU queues manage the two memories. The NVM queue
// additionally keeps per-page read and write counters, but only while a page
// sits within the top ReadPerc / WritePerc fraction of the queue; a page
// pushed across either window boundary has that counter reset (Algorithm 1
// lines 8-9). A counter exceeding its threshold marks the page hot, and the
// page migrates to the DRAM MRU position, displacing the DRAM LRU tail into
// the NVM MRU position. Page faults always load into DRAM (Section IV):
// since DRAM is full in steady state, loading anywhere costs one NVM page
// write either way, and the new page is the most likely to be re-accessed.
//
// The thresholds make migrations conditional on demonstrated reuse inside
// the hot region of the NVM queue, which is exactly what removes the
// non-beneficial migrations that dominate CLOCK-DWF's power and AMAT.
package core

import (
	"fmt"

	"hybridmem/internal/lru"
	"hybridmem/internal/mm"
	"hybridmem/internal/policy"
	"hybridmem/internal/trace"
)

// Config holds the four tuning parameters of Algorithm 1.
//
// The paper sets the write-side parameters higher than the read-side ones
// (Section IV): the larger write window dominates, so write-dominant pages
// still reach their threshold far more easily, matching the stated intent
// that they get migration priority (an NVM write costs 3.5x the latency and
// 10x the energy of a DRAM write, Table IV).
type Config struct {
	// ReadPerc is the fraction of the NVM queue (from the MRU end) within
	// which read counters accumulate; outside it they reset.
	ReadPerc float64
	// WritePerc is the analogous window for write counters.
	WritePerc float64
	// ReadThreshold is the read count (within the window) above which a
	// page migrates to DRAM.
	ReadThreshold int
	// WriteThreshold is the analogous write count.
	WriteThreshold int
}

// DefaultConfig returns the parameter set used for the paper-reproduction
// experiments.
//
// The thresholds are sized relative to the migration cost (Section IV: they
// are "closely related to the cost of the migration between DRAM and NVM"):
// moving a page costs PageFactor (64) line transfers each way, so a page
// must demonstrate more reuse than one full sequential sweep of its lines
// before a migration can pay off. That also makes streaming pages — which
// receive up to PageFactor consecutive hits and then go cold — ineligible.
func DefaultConfig() Config {
	return Config{
		ReadPerc:       0.10,
		WritePerc:      0.30,
		ReadThreshold:  96,
		WriteThreshold: 128,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.ReadPerc <= 0 || c.ReadPerc > 1 {
		return fmt.Errorf("core: ReadPerc %v outside (0,1]", c.ReadPerc)
	}
	if c.WritePerc <= 0 || c.WritePerc > 1 {
		return fmt.Errorf("core: WritePerc %v outside (0,1]", c.WritePerc)
	}
	if c.ReadThreshold < 1 {
		return fmt.Errorf("core: ReadThreshold %d < 1", c.ReadThreshold)
	}
	if c.WriteThreshold < 1 {
		return fmt.Errorf("core: WriteThreshold %d < 1", c.WriteThreshold)
	}
	return nil
}

// counters is the per-page housekeeping stored in the NVM queue. At two
// machine words per page it matches the paper's ~0.04% overhead estimate
// for 4KB pages.
type counters struct {
	reads, writes int
}

// Scheme is the proposed migration policy.
type Scheme struct {
	cfg      Config
	dram     *lru.List[struct{}]
	nvm      *lru.List[counters]
	readWin  lru.MarkerID
	writeWin lru.MarkerID
	sys      *mm.System
	moves    []policy.Move

	// Migrations counts NVM->DRAM promotions (exposed for the adaptive
	// extension and for tests).
	Migrations int64
}

var _ policy.Policy = (*Scheme)(nil)

// New returns the proposed scheme over the given zone sizes.
func New(dramFrames, nvmFrames int, cfg Config) (*Scheme, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if dramFrames < 1 || nvmFrames < 1 {
		return nil, fmt.Errorf("core: both zones need frames, got %d/%d", dramFrames, nvmFrames)
	}
	sys, err := mm.NewSystem(dramFrames, nvmFrames)
	if err != nil {
		return nil, err
	}
	s := &Scheme{
		cfg:  cfg,
		dram: lru.New[struct{}](),
		nvm:  lru.New[counters](),
		sys:  sys,
	}
	readCap := windowCap(cfg.ReadPerc, nvmFrames)
	writeCap := windowCap(cfg.WritePerc, nvmFrames)
	if s.readWin, err = s.nvm.AddMarker(readCap, func(_ uint64, v *counters) {
		v.reads = 0
	}); err != nil {
		return nil, err
	}
	if s.writeWin, err = s.nvm.AddMarker(writeCap, func(_ uint64, v *counters) {
		v.writes = 0
	}); err != nil {
		return nil, err
	}
	return s, nil
}

// windowCap converts a queue fraction into a position count (at least 1).
func windowCap(perc float64, frames int) int {
	c := int(perc*float64(frames) + 0.5)
	if c < 1 {
		c = 1
	}
	return c
}

// Name implements policy.Policy.
func (s *Scheme) Name() string { return "proposed" }

// System implements policy.Policy.
func (s *Scheme) System() *mm.System { return s.sys }

// Access implements policy.Policy, following Algorithm 1.
func (s *Scheme) Access(page uint64, op trace.Op) (policy.Result, error) {
	s.moves = s.moves[:0]

	// Line 1-3: DRAM holds the hottest pages, search it first.
	if _, ok := s.dram.Touch(page); ok {
		return policy.Result{ServedFrom: mm.LocDRAM}, nil
	}

	if s.nvm.Contains(page) {
		// Lines 7-9: the LRU update pushes one page across each window
		// boundary; the marker demotion callbacks reset its counters.
		// Window membership is sampled before the update: "request is
		// within readperc" refers to the page's position when it is hit.
		inRead := s.nvm.InWindow(page, s.readWin)
		inWrite := s.nvm.InWindow(page, s.writeWin)
		v, _ := s.nvm.Touch(page)

		// Lines 10-22: update the counter for the request's kind.
		migrate := false
		if op == trace.OpRead {
			if inRead {
				v.reads++
			} else {
				v.reads = 1
			}
			migrate = v.reads > s.cfg.ReadThreshold
		} else {
			if inWrite {
				v.writes++
			} else {
				v.writes = 1
			}
			migrate = v.writes > s.cfg.WriteThreshold
		}

		// Lines 23-25: past the threshold, the page is hot; migrate it.
		// The request itself was serviced by NVM before the DMA copy.
		if migrate {
			if err := s.promote(page); err != nil {
				return policy.Result{}, err
			}
		}
		return policy.Result{ServedFrom: mm.LocNVM, Moves: s.moves}, nil
	}

	// Lines 27-28: page fault, always into DRAM.
	if err := s.fault(page); err != nil {
		return policy.Result{}, err
	}
	return policy.Result{ServedFrom: mm.LocDRAM, Fault: true, Moves: s.moves}, nil
}

// promote migrates a hot NVM page to the DRAM MRU position, demoting the
// DRAM LRU tail into the vacated NVM frame when DRAM is full.
func (s *Scheme) promote(page uint64) error {
	s.nvm.Remove(page) // counters are dropped with the queue entry
	s.Migrations++
	if s.dram.Len() == s.sys.Cap(mm.LocDRAM) {
		victim, _, _ := s.dram.RemoveBack()
		if err := s.sys.Swap(page, victim); err != nil {
			return err
		}
		// The demoted page enters the NVM queue like any newly arriving
		// page: at the MRU head with fresh counters (Section IV).
		if err := s.nvm.PushFront(victim, counters{}); err != nil {
			return err
		}
		s.moves = append(s.moves,
			policy.Move{Page: page, From: mm.LocNVM, To: mm.LocDRAM, Reason: policy.ReasonPromotion},
			policy.Move{Page: victim, From: mm.LocDRAM, To: mm.LocNVM, Reason: policy.ReasonDemotePromo})
	} else {
		if _, err := s.sys.Migrate(page, mm.LocDRAM); err != nil {
			return err
		}
		s.moves = append(s.moves, policy.Move{
			Page: page, From: mm.LocNVM, To: mm.LocDRAM, Reason: policy.ReasonPromotion})
	}
	return s.dram.PushFront(page, struct{}{})
}

// fault loads a missing page into DRAM, cascading the DRAM tail into NVM and
// the NVM tail to disk as capacity requires.
func (s *Scheme) fault(page uint64) error {
	if s.dram.Len() == s.sys.Cap(mm.LocDRAM) {
		victim, _, _ := s.dram.RemoveBack()
		if s.nvm.Len() == s.sys.Cap(mm.LocNVM) {
			nvmVictim, _, _ := s.nvm.RemoveBack()
			if err := s.sys.EvictToDisk(nvmVictim); err != nil {
				return err
			}
			s.moves = append(s.moves, policy.Move{
				Page: nvmVictim, From: mm.LocNVM, To: mm.LocDisk, Reason: policy.ReasonEvict})
		}
		if _, err := s.sys.Migrate(victim, mm.LocNVM); err != nil {
			return err
		}
		if err := s.nvm.PushFront(victim, counters{}); err != nil {
			return err
		}
		s.moves = append(s.moves, policy.Move{
			Page: victim, From: mm.LocDRAM, To: mm.LocNVM, Reason: policy.ReasonDemoteFault})
	}
	if _, err := s.sys.Place(page, mm.LocDRAM); err != nil {
		return err
	}
	if err := s.dram.PushFront(page, struct{}{}); err != nil {
		return err
	}
	s.moves = append(s.moves, policy.Move{
		Page: page, From: mm.LocDisk, To: mm.LocDRAM, Reason: policy.ReasonFault})
	return nil
}

// Counters returns the current read/write counters of an NVM-resident page
// (for tests and debugging).
func (s *Scheme) Counters(page uint64) (reads, writes int, ok bool) {
	v, ok := s.nvm.Get(page)
	if !ok {
		return 0, 0, false
	}
	return v.reads, v.writes, true
}

// Residents returns the queue lengths (for tests).
func (s *Scheme) Residents() (dram, nvm int) { return s.dram.Len(), s.nvm.Len() }

// CheckInvariants cross-validates the LRU queues against the physical map.
func (s *Scheme) CheckInvariants() error {
	if err := s.dram.CheckInvariants(); err != nil {
		return err
	}
	if err := s.nvm.CheckInvariants(); err != nil {
		return err
	}
	if err := s.sys.CheckInvariants(); err != nil {
		return err
	}
	if s.dram.Len() != s.sys.Residents(mm.LocDRAM) {
		return fmt.Errorf("core: DRAM queue %d pages, system %d",
			s.dram.Len(), s.sys.Residents(mm.LocDRAM))
	}
	if s.nvm.Len() != s.sys.Residents(mm.LocNVM) {
		return fmt.Errorf("core: NVM queue %d pages, system %d",
			s.nvm.Len(), s.sys.Residents(mm.LocNVM))
	}
	for _, k := range s.dram.Keys() {
		if s.sys.Loc(k) != mm.LocDRAM {
			return fmt.Errorf("core: page %d in DRAM queue but at %s", k, s.sys.Loc(k))
		}
	}
	for _, k := range s.nvm.Keys() {
		if s.sys.Loc(k) != mm.LocNVM {
			return fmt.Errorf("core: page %d in NVM queue but at %s", k, s.sys.Loc(k))
		}
	}
	return nil
}
