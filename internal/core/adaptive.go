package core

import (
	"fmt"

	"hybridmem/internal/mm"
	"hybridmem/internal/policy"
	"hybridmem/internal/trace"
)

// SetThresholds changes the migration thresholds at runtime (used by the
// adaptive extension). Both must be at least 1.
func (s *Scheme) SetThresholds(read, write int) error {
	if read < 1 || write < 1 {
		return fmt.Errorf("core: thresholds %d/%d must be >= 1", read, write)
	}
	s.cfg.ReadThreshold = read
	s.cfg.WriteThreshold = write
	return nil
}

// Thresholds returns the current migration thresholds.
func (s *Scheme) Thresholds() (read, write int) {
	return s.cfg.ReadThreshold, s.cfg.WriteThreshold
}

// AdaptiveConfig tunes the adaptive-threshold controller, the paper's stated
// ongoing work ("using adaptive threshold prediction can further improve the
// efficiency of the proposed scheme", Section V-B).
type AdaptiveConfig struct {
	// EpochLength is the number of accesses between threshold adjustments.
	EpochLength int
	// TargetUtility is the number of DRAM hits a migrated page must earn
	// for its migration to have paid off. The break-even point is roughly
	// the migration cost divided by the per-access saving; with Table IV
	// parameters and PageFactor 64 that is on the order of tens of hits.
	TargetUtility float64
	// MinThreshold and MaxThreshold bound the hill climb.
	MinThreshold, MaxThreshold int
}

// DefaultAdaptiveConfig returns a controller tuned for the Table IV
// parameters.
func DefaultAdaptiveConfig() AdaptiveConfig {
	return AdaptiveConfig{
		EpochLength:   20000,
		TargetUtility: 32,
		MinThreshold:  1,
		MaxThreshold:  64,
	}
}

// Validate reports whether the controller configuration is usable.
func (c AdaptiveConfig) Validate() error {
	if c.EpochLength < 1 {
		return fmt.Errorf("core: EpochLength %d < 1", c.EpochLength)
	}
	if c.TargetUtility <= 0 {
		return fmt.Errorf("core: TargetUtility %v <= 0", c.TargetUtility)
	}
	if c.MinThreshold < 1 || c.MaxThreshold < c.MinThreshold {
		return fmt.Errorf("core: threshold bounds [%d,%d] invalid",
			c.MinThreshold, c.MaxThreshold)
	}
	return nil
}

// Adaptive wraps the proposed scheme with an online threshold controller.
// Each epoch it measures migration utility — DRAM hits earned by pages that
// were promoted — and hill-climbs the thresholds: migrations that do not
// earn their cost back raise the bar, abundant utility lowers it. This
// addresses the raytrace observation in Section V-B, where the fixed
// thresholds are wrong for one workload.
type Adaptive struct {
	inner *Scheme
	cfg   AdaptiveConfig

	epochAccesses   int
	epochPromotions int64
	epochUseful     int64
	promoted        map[uint64]bool

	// Adjustments counts threshold changes (for tests and reports).
	Adjustments int
}

var _ policy.Policy = (*Adaptive)(nil)

// NewAdaptive returns the adaptive variant of the proposed scheme.
func NewAdaptive(dramFrames, nvmFrames int, base Config, cfg AdaptiveConfig) (*Adaptive, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	inner, err := New(dramFrames, nvmFrames, base)
	if err != nil {
		return nil, err
	}
	return &Adaptive{inner: inner, cfg: cfg, promoted: make(map[uint64]bool)}, nil
}

// Name implements policy.Policy.
func (a *Adaptive) Name() string { return "proposed-adaptive" }

// System implements policy.Policy.
func (a *Adaptive) System() *mm.System { return a.inner.System() }

// Thresholds returns the controller's current thresholds.
func (a *Adaptive) Thresholds() (read, write int) { return a.inner.Thresholds() }

// Access implements policy.Policy.
func (a *Adaptive) Access(page uint64, op trace.Op) (policy.Result, error) {
	res, err := a.inner.Access(page, op)
	if err != nil {
		return res, err
	}
	// A DRAM hit on a page we promoted is utility earned by its migration.
	if !res.Fault && res.ServedFrom == mm.LocDRAM && len(res.Moves) == 0 && a.promoted[page] {
		a.epochUseful++
	}
	for _, m := range res.Moves {
		switch m.Reason {
		case policy.ReasonPromotion:
			a.promoted[m.Page] = true
			a.epochPromotions++
		case policy.ReasonDemoteFault, policy.ReasonDemotePromo, policy.ReasonEvict:
			delete(a.promoted, m.Page)
		}
	}
	a.epochAccesses++
	if a.epochAccesses >= a.cfg.EpochLength {
		a.adapt()
	}
	return res, nil
}

// adapt applies one hill-climbing step at an epoch boundary.
func (a *Adaptive) adapt() {
	read, write := a.inner.Thresholds()
	newRead, newWrite := read, write
	switch {
	case a.epochPromotions == 0:
		// No migrations happened: probe downward so hot pages stuck in NVM
		// get a chance to move.
		newRead, newWrite = read-1, write-1
	default:
		utility := float64(a.epochUseful) / float64(a.epochPromotions)
		if utility < a.cfg.TargetUtility {
			// Migrations are not earning their cost: demand more evidence.
			newRead, newWrite = read*2, write*2
		} else if utility >= 2*a.cfg.TargetUtility {
			// Plenty of headroom: migrate more eagerly.
			newRead, newWrite = read-1, write-1
		}
	}
	newRead = clamp(newRead, a.cfg.MinThreshold, a.cfg.MaxThreshold)
	newWrite = clamp(newWrite, a.cfg.MinThreshold, a.cfg.MaxThreshold)
	if newRead != read || newWrite != write {
		// Both bounds are >= 1, so SetThresholds cannot fail.
		if err := a.inner.SetThresholds(newRead, newWrite); err != nil {
			panic(err)
		}
		a.Adjustments++
	}
	a.epochAccesses = 0
	a.epochPromotions = 0
	a.epochUseful = 0
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
