package lru

import (
	"testing"
	"testing/quick"
)

// mirror is a brute-force reference model of the segmented LRU: a slice
// ordered front-to-back with windows recomputed from positions.
type mirror struct {
	keys []uint64
	caps []int
}

func (m *mirror) indexOf(k uint64) int {
	for i, kk := range m.keys {
		if kk == k {
			return i
		}
	}
	return -1
}

func (m *mirror) pushFront(k uint64) { m.keys = append([]uint64{k}, m.keys...) }

func (m *mirror) touch(k uint64) {
	i := m.indexOf(k)
	m.keys = append(m.keys[:i], m.keys[i+1:]...)
	m.pushFront(k)
}

func (m *mirror) remove(k uint64) {
	i := m.indexOf(k)
	m.keys = append(m.keys[:i], m.keys[i+1:]...)
}

func (m *mirror) removeBack() uint64 {
	k := m.keys[len(m.keys)-1]
	m.keys = m.keys[:len(m.keys)-1]
	return k
}

func (m *mirror) inWindow(k uint64, w int) bool {
	i := m.indexOf(k)
	return i >= 0 && i < m.caps[w]
}

// TestQuickOpsMatchMirror replays quick-generated operation sequences
// against the real list and the brute-force mirror, comparing the complete
// observable state (key order and window membership) after every step.
func TestQuickOpsMatchMirror(t *testing.T) {
	f := func(ops []uint16, cap1, cap2 uint8) bool {
		c1 := int(cap1%9) + 1
		c2 := int(cap2%9) + 1
		l := New[int]()
		if _, err := l.AddMarker(c1, nil); err != nil {
			return false
		}
		if _, err := l.AddMarker(c2, nil); err != nil {
			return false
		}
		m := &mirror{caps: []int{c1, c2}}
		nextKey := uint64(1)

		for _, op := range ops {
			kind := op % 4
			switch {
			case kind == 0 || len(m.keys) == 0:
				l.PushFront(nextKey, 0)
				m.pushFront(nextKey)
				nextKey++
			case kind == 1:
				k := m.keys[int(op/4)%len(m.keys)]
				if _, ok := l.Touch(k); !ok {
					return false
				}
				m.touch(k)
			case kind == 2:
				k := m.keys[int(op/4)%len(m.keys)]
				if _, ok := l.Remove(k); !ok {
					return false
				}
				m.remove(k)
			default:
				k, _, ok := l.RemoveBack()
				if !ok {
					return false
				}
				if want := m.removeBack(); k != want {
					return false
				}
			}
			// Full-state comparison.
			keys := l.Keys()
			if len(keys) != len(m.keys) {
				return false
			}
			for i, k := range keys {
				if k != m.keys[i] {
					return false
				}
			}
			for w := 0; w < 2; w++ {
				for _, k := range m.keys {
					if l.InWindow(k, MarkerID(w)) != m.inWindow(k, w) {
						return false
					}
				}
			}
			if err := l.CheckInvariants(); err != nil {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
